// Observability overhead: served-retrieve throughput with tracing + heat
// tracking on versus everything off (DESIGN.md §16).
//
// K closed-loop client threads drive one ObjService (the same Execute()
// path the network server's workers call) for a timed window, twice per
// repeat: once with the trace ring and the heat map disabled (baseline)
// and once with both enabled (the always-on production posture). The
// request stream is identical — skewed retrieves, so the heat map has a
// real ranking to report — and the database, buffer pool, and strategy
// session pool are shared across both modes, so the only difference is
// the observability hooks themselves. Modes are interleaved and the
// median repeat is reported to keep one noisy scheduler quantum from
// deciding the number.
//
// The committed floor (tools/check_bench_json.py --obs): enabling
// tracing + heat costs at most 5% of retrieve throughput at 8 threads.
// The emitted JSON also carries one PROFILE-flagged request's
// RetrieveProfile (checked for exact per-tag I/O sums) and the heat
// map's post-run snapshot (checked for a non-empty, heat-sorted top-k).
//
//   $ ./build/bench/obs_overhead
//   $ ./build/bench/obs_overhead --quick          (CI smoke)
//   $ ./build/bench/obs_overhead --json=BENCH_obs_overhead.json
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "net/protocol.h"
#include "net/service.h"
#include "obs/heat_map.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "objstore/database.h"

namespace objrep {
namespace bench {
namespace {

constexpr uint32_t kNumTop = 8;

DatabaseSpec ObsSpec() {
  DatabaseSpec spec;
  // Larger than the buffer pool so retrieves keep doing page I/O (the
  // per-tag counters have something to attribute), zero device latency so
  // the run is CPU-bound — the honest worst case for hook overhead, which
  // a simulated seek would otherwise hide.
  spec.num_parents = 2000;
  spec.size_unit = 5;
  spec.use_factor = 1;
  spec.overlap_factor = 1;
  spec.num_child_rels = 1;
  spec.buffer_pages = 96;
  spec.seed = 211;
  spec.io_latency_us = 0;
  return spec;
}

/// Runs `threads` closed-loop clients against `service` for ~`seconds`
/// and returns aggregate retrieves per second. Parent ranges are skewed
/// (u^2 toward low ids) so the heat map ranks a real hot set.
double MeasureRps(net::ObjService* service, uint32_t num_parents,
                  int threads, double seconds) {
  std::atomic<bool> stop{false};
  std::atomic<bool> go{false};
  std::atomic<int> ready{0};
  std::atomic<uint64_t> total_ops{0};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  const uint32_t span = num_parents > kNumTop ? num_parents - kNumTop : 1;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      std::mt19937_64 rng(0x9e3779b97f4a7c15ull + 0x100000001b3ull *
                          static_cast<uint64_t>(t + 1));
      std::uniform_real_distribution<double> uni(0.0, 1.0);
      uint64_t ops = 0;
      ready.fetch_add(1, std::memory_order_release);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      while (!stop.load(std::memory_order_relaxed)) {
        const double u = uni(rng);
        net::Request req;
        req.verb = net::Verb::kRetrieve;
        req.id = ops;
        req.lo_parent = static_cast<uint32_t>(u * u * span);
        req.num_top = kNumTop;
        req.attr_index = 0;
        net::Response resp = service->Execute(req);
        OBJREP_CHECK_MSG(resp.status == net::RespStatus::kOk,
                         resp.error.c_str());
        ++ops;
      }
      total_ops.fetch_add(ops, std::memory_order_relaxed);
    });
  }
  while (ready.load(std::memory_order_acquire) < threads) {
    std::this_thread::yield();
  }
  const auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : workers) w.join();
  const double dt = std::chrono::duration<double>(
      std::chrono::steady_clock::now() - t0).count();
  return static_cast<double>(total_ops.load()) / dt;
}

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

void SetObservability(bool on) {
  Trace::SetEnabled(on);
  HeatMap::Global().SetEnabled(on);
}

void WriteJson(const char* path, int threads, double duration_seconds,
               int repeats, double baseline_rps, double enabled_rps,
               double overhead_pct, const std::string& profile_json,
               const std::string& heat_json) {
  std::FILE* f = std::fopen(path, "w");
  OBJREP_CHECK_MSG(f != nullptr, "cannot open json output");
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"obs_overhead\",\n");
  std::fprintf(f, "  \"threads\": %d,\n", threads);
  std::fprintf(f, "  \"duration_seconds\": %.3f,\n", duration_seconds);
  std::fprintf(f, "  \"repeats\": %d,\n", repeats);
  std::fprintf(f, "  \"baseline_rps\": %.4f,\n", baseline_rps);
  std::fprintf(f, "  \"enabled_rps\": %.4f,\n", enabled_rps);
  std::fprintf(f, "  \"overhead_pct\": %.6f,\n", overhead_pct);
  std::fprintf(f, "  \"profile\": %s,\n", profile_json.c_str());
  std::fprintf(f, "  \"heat\": %s\n", heat_json.c_str());
  std::fprintf(f, "}\n");
  std::fclose(f);
}

int Run(int threads, double duration_seconds, int repeats,
        const char* json_path) {
  PrintTitle("obs_overhead: served retrieve throughput, tracing+heat "
             "on vs off",
             "closed loop, skewed parents, shared database and sessions");

  DatabaseSpec spec = ObsSpec();
  std::unique_ptr<ComplexDatabase> db;
  Status s = BuildDatabase(spec, &db);
  OBJREP_CHECK_MSG(s.ok(), s.ToString().c_str());
  net::ObjService service(db.get(), StrategyKind::kDfs, StrategyOptions{});

  // Warm the buffer pool and session pool outside any timed window.
  SetObservability(false);
  MeasureRps(&service, spec.num_parents, threads,
             std::max(0.1, duration_seconds * 0.25));

  std::vector<double> baseline_runs;
  std::vector<double> enabled_runs;
  std::printf("%-8s %14s %14s\n", "repeat", "baseline rps", "enabled rps");
  for (int r = 0; r < repeats; ++r) {
    SetObservability(false);
    baseline_runs.push_back(
        MeasureRps(&service, spec.num_parents, threads, duration_seconds));
    SetObservability(true);
    enabled_runs.push_back(
        MeasureRps(&service, spec.num_parents, threads, duration_seconds));
    std::printf("%-8d %14.0f %14.0f\n", r, baseline_runs.back(),
                enabled_runs.back());
  }
  const double baseline_rps = Median(baseline_runs);
  const double enabled_rps = Median(enabled_runs);
  const double overhead_pct =
      100.0 * (baseline_rps - enabled_rps) / baseline_rps;
  PrintRule();
  std::printf("median baseline %.0f rps, enabled %.0f rps, "
              "overhead %.2f%%\n", baseline_rps, enabled_rps, overhead_pct);

  // One PROFILE-flagged request with observability still on: the profile
  // that rides in the JSON is exactly what a client with --profile sees.
  net::Request preq;
  preq.verb = net::Verb::kRetrieve;
  preq.flags = net::kReqFlagProfile;
  preq.lo_parent = 0;
  preq.num_top = kNumTop;
  preq.attr_index = 0;
  net::Response presp = service.Execute(preq);
  OBJREP_CHECK_MSG(presp.status == net::RespStatus::kOk,
                   presp.error.c_str());
  OBJREP_CHECK_MSG(!presp.profile_json.empty(),
                   "PROFILE flag produced no profile");
  const std::string heat_json = HeatMap::Global().ToJson(10);
  OBJREP_CHECK_MSG(HeatMap::Global().touches() > 0,
                   "enabled run recorded no heat touches");
  std::printf("\nprofile: %s\n", presp.profile_json.c_str());
  std::printf("heat:    %s\n", heat_json.c_str());

  if (json_path != nullptr) {
    WriteJson(json_path, threads, duration_seconds, repeats, baseline_rps,
              enabled_rps, overhead_pct, presp.profile_json, heat_json);
    std::printf("\nwrote %s\n", json_path);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace objrep

int main(int argc, char** argv) {
  int threads = 8;
  double duration = 1.5;
  int repeats = 3;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      // Short windows are noisier; keep 3 repeats so the median can
      // still throw away one bad scheduler quantum.
      duration = 0.4;
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--duration=", 11) == 0) {
      duration = std::atof(argv[i] + 11);
    } else if (std::strncmp(argv[i], "--repeats=", 10) == 0) {
      repeats = std::atoi(argv[i] + 10);
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json_path = "BENCH_obs_overhead.json";
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--threads=K] [--duration=SECONDS] "
                   "[--repeats=N] [--quick] [--json[=PATH]]\n", argv[0]);
      return 2;
    }
  }
  if (threads < 1 || repeats < 1 || duration <= 0) {
    std::fprintf(stderr, "obs_overhead: bad flag value\n");
    return 2;
  }
  return objrep::bench::Run(threads, duration, repeats, json_path);
}
