// Join-method sweep for the paper's §3.1 observation, extended: "The
// optimal joining strategy in this query depends on the sizes of the
// relations involved. Iterative substitution is best when temp is small
// ... merge-join is the optimal strategy when the size of the temporary
// is large." DFS *is* iterative substitution; BFS is the merge join; we
// add the hash join INGRES 5 lacked and see where each regime starts.
#include "bench/bench_util.h"

using namespace objrep;
using namespace objrep::bench;

int main() {
  PrintTitle("Join methods across temp sizes (paper 3.1, extended)",
             "iterative substitution (DFS) vs merge join (BFS) vs hash join");

  const std::vector<StrategyKind> kinds = {
      StrategyKind::kDfs, StrategyKind::kBfs, StrategyKind::kBfsHash};
  std::printf("%8s %12s %12s %12s   %s\n", "NumTop", "iter-subst",
              "merge-join", "hash-join", "best");
  for (uint32_t nt : {1u, 10u, 50u, 200u, 1000u, 5000u, 10000u}) {
    DatabaseSpec spec;
    WorkloadSpec wl;
    wl.num_top = nt;
    wl.pr_update = 0.0;
    wl.num_queries = AutoNumQueries(nt, 150);
    wl.seed = 55000 + nt;
    double io[3];
    for (size_t i = 0; i < kinds.size(); ++i) {
      io[i] = MeasureStrategy(spec, wl, kinds[i]).AvgRetrieveIo();
    }
    const char* best = io[0] <= io[1] && io[0] <= io[2] ? "iter-subst"
                       : io[1] <= io[2]                 ? "merge-join"
                                                        : "hash-join";
    std::printf("%8u %12.1f %12.1f %12.1f   %s\n", nt, io[0], io[1], io[2],
                best);
  }
  PrintRule();
  std::printf(
      "Expected three regimes: iterative substitution at small temps,\n"
      "merge join in the middle, hash join once the temporary covers most\n"
      "of ChildRel anyway (the saved sort passes beat the extra cold\n"
      "leaves of a full scan).\n");
  return 0;
}
