// Figure 3 (paper §5.1): DFS vs BFS vs BFSNODUP, average I/O per retrieve
// as a function of NumTop, at ShareFactor = 5 (UseFactor 5, Overlap 1) and
// Pr(UPDATE) = 0.
//
// Expected shape (paper): DFS loses once NumTop exceeds ~50 (nested-loop
// vs merge join); at very low NumTop, BFS is slightly worse than DFS
// because of the cost of forming the temporary; BFSNODUP is "not much
// better than simple BFS" even though ShareFactor = 5.
#include "bench/bench_util.h"

using namespace objrep;
using namespace objrep::bench;

int main() {
  PrintTitle(
      "Figure 3: performance comparison without clustering or caching",
      "ShareFactor=5 (Use=5, Overlap=1), Pr(UPDATE)=0, |ParentRel|=10000");

  const std::vector<uint32_t> num_tops = {1,   2,    5,    10,   20,  50, 100,
                                          200, 500, 1000, 2000, 5000, 10000};
  const std::vector<StrategyKind> kinds = {
      StrategyKind::kDfs, StrategyKind::kBfs, StrategyKind::kBfsNoDup};

  std::printf("%8s %12s %12s %12s   %s\n", "NumTop", "DFS", "BFS", "BFSNODUP",
              "best");
  double crossover = -1;
  double prev_dfs = 0, prev_bfs = 0;
  uint32_t prev_top = 0;
  for (uint32_t num_top : num_tops) {
    DatabaseSpec spec;  // paper defaults
    WorkloadSpec wl;
    wl.num_top = num_top;
    wl.pr_update = 0.0;
    wl.num_queries = AutoNumQueries(num_top);
    wl.seed = 1000 + num_top;

    double io[3];
    for (size_t i = 0; i < kinds.size(); ++i) {
      RunResult r = MeasureStrategy(spec, wl, kinds[i]);
      io[i] = r.AvgIoPerQuery();
    }
    const char* best = io[0] <= io[1] && io[0] <= io[2]   ? "DFS"
                       : io[1] <= io[2]                   ? "BFS"
                                                          : "BFSNODUP";
    std::printf("%8u %12.1f %12.1f %12.1f   %s\n", num_top, io[0], io[1],
                io[2], best);
    if (crossover < 0 && prev_top > 0 && prev_dfs <= prev_bfs &&
        io[0] > io[1]) {
      // Linear interpolation of the DFS/BFS crossover in NumTop.
      double d0 = prev_bfs - prev_dfs, d1 = io[0] - io[1];
      crossover = prev_top + (num_top - prev_top) * (d0 / (d0 + d1));
    }
    prev_dfs = io[0];
    prev_bfs = io[1];
    prev_top = num_top;
  }
  PrintRule();
  if (crossover > 0) {
    std::printf("DFS/BFS crossover at NumTop ~= %.0f (paper: ~50)\n",
                crossover);
  } else {
    std::printf("DFS/BFS crossover not bracketed by the sweep\n");
  }
  std::printf(
      "Expected: DFS loses beyond NumTop ~50; BFSNODUP ~= BFS throughout.\n");
  return 0;
}
