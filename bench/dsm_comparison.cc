// N-ary (row) storage vs the Decomposed Storage Model for the subobjects
// ([COPE85]/[VALD86], the alternative the paper's §2 positions itself
// against). Three workloads:
//
//   1. The paper's retrieve (one projected ret attribute) — DSM's best
//      case: the projected column is ~7x denser than the row.
//   2. Full-subobject materialization (person.all) — DSM's weak case:
//      every column pays a probe.
//   3. In-place ret1 updates — DSM touches one small column.
#include "bench/bench_util.h"
#include "core/dsm.h"
#include "util/random.h"

using namespace objrep;
using namespace objrep::bench;

int main() {
  PrintTitle("Row storage (NSM) vs Decomposed Storage Model (DSM)",
             "ShareFactor=5; projection, reconstruction, and update costs");

  std::printf("%8s | %10s %10s | %10s %10s | %12s\n", "NumTop", "NSM proj",
              "DSM proj", "NSM recon", "DSM recon", "(DFS I/O/query)");
  for (uint32_t nt : {5u, 50u, 500u}) {
    DatabaseSpec spec;
    std::unique_ptr<ComplexDatabase> src;
    OBJREP_CHECK(BuildDatabase(spec, &src).ok());
    std::unique_ptr<DsmDatabase> dsm;
    OBJREP_CHECK(DsmDatabase::Build(*src, &dsm).ok());
    std::unique_ptr<Strategy> row_dfs;
    OBJREP_CHECK(MakeStrategy(StrategyKind::kDfs, src.get(),
                              StrategyOptions{}, &row_dfs)
                     .ok());

    Rng rng(300 + nt);
    uint32_t queries = AutoNumQueries(nt, 120);
    uint64_t nsm_proj = 0, dsm_proj = 0, nsm_recon = 0, dsm_recon = 0;
    for (uint32_t i = 0; i < queries; ++i) {
      Query q;
      q.kind = Query::Kind::kRetrieve;
      q.num_top = nt;
      q.lo_parent =
          static_cast<uint32_t>(rng.Uniform(spec.num_parents - nt + 1));
      q.attr_index = static_cast<int>(rng.Uniform(3));
      RetrieveResult r;
      // NSM projection (row DFS decodes one field of the row).
      IoCounters b = src->disk->counters();
      OBJREP_CHECK(row_dfs->ExecuteRetrieve(q, &r).ok());
      nsm_proj += (src->disk->counters() - b).total();
      // NSM reconstruction costs the same probes (the row holds it all).
      nsm_recon = nsm_proj;
      // DSM projection.
      r = RetrieveResult{};
      b = dsm->disk()->counters();
      OBJREP_CHECK(dsm->RetrieveDfs(q, &r).ok());
      dsm_proj += (dsm->disk()->counters() - b).total();
      // DSM reconstruction.
      r = RetrieveResult{};
      b = dsm->disk()->counters();
      OBJREP_CHECK(dsm->RetrieveReconstruct(q, &r).ok());
      dsm_recon += (dsm->disk()->counters() - b).total();
    }
    std::printf("%8u | %10.1f %10.1f | %10.1f %10.1f |\n", nt,
                static_cast<double>(nsm_proj) / queries,
                static_cast<double>(dsm_proj) / queries,
                static_cast<double>(nsm_recon) / queries,
                static_cast<double>(dsm_recon) / queries);
  }

  // Storage + update cost.
  {
    DatabaseSpec spec;
    std::unique_ptr<ComplexDatabase> src;
    OBJREP_CHECK(BuildDatabase(spec, &src).ok());
    std::unique_ptr<DsmDatabase> dsm;
    OBJREP_CHECK(DsmDatabase::Build(*src, &dsm).ok());
    std::printf("\nstorage: NSM %llu pages, DSM %u pages "
                "(ret columns: %u + %u + %u leaves)\n",
                static_cast<unsigned long long>(src->TotalPages()),
                dsm->total_pages(),
                dsm->column_leaf_pages(0), dsm->column_leaf_pages(1),
                dsm->column_leaf_pages(2));
    // 200 update batches against each.
    Rng rng(9);
    uint64_t nsm_upd = 0, dsm_upd = 0;
    std::unique_ptr<Strategy> row_dfs;
    OBJREP_CHECK(MakeStrategy(StrategyKind::kDfs, src.get(),
                              StrategyOptions{}, &row_dfs)
                     .ok());
    for (int i = 0; i < 200; ++i) {
      Query q;
      q.kind = Query::Kind::kUpdate;
      for (int j = 0; j < 5; ++j) {
        q.update_targets.push_back(Oid{
            src->child_rels[0]->rel_id(),
            static_cast<uint32_t>(rng.Uniform(spec.num_children_total()))});
      }
      q.new_ret1 = static_cast<int32_t>(rng.Uniform(1000));
      IoCounters b = src->disk->counters();
      OBJREP_CHECK(row_dfs->ExecuteUpdate(q).ok());
      nsm_upd += (src->disk->counters() - b).total();
      b = dsm->disk()->counters();
      OBJREP_CHECK(dsm->ExecuteUpdate(q).ok());
      dsm_upd += (dsm->disk()->counters() - b).total();
    }
    std::printf("updates: NSM %.1f, DSM %.1f I/O per 5-tuple batch\n",
                nsm_upd / 200.0, dsm_upd / 200.0);
  }
  PrintRule();
  std::printf(
      "Expected: DSM wins the paper's single-attribute projection (denser\n"
      "column, more of it buffer-resident) and the narrow update; it loses\n"
      "reconstruction, paying one probe per column. The paper's row-stored\n"
      "setup is the conservative middle ground across the query mix.\n");
  return 0;
}
