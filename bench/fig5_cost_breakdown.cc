// Figure 5 (paper §5.2.1): ParCost / ChildCost / TotCost as a function of
// ShareFactor, at NumTop = 200, in the high-update regime (Pr(UPDATE)->1,
// where caching is out of the picture), for (a) DFSCLUST and (b) BFS.
//
// Expected shapes (paper):
//  (a) DFSCLUST: ParCost increases as ShareFactor decreases (better
//      clustering interleaves more subobjects into the contiguous scan);
//      ChildCost decreases as ShareFactor decreases (more subobjects are
//      local); TotCost is dominated by ChildCost.
//  (b) BFS: ParCost flat; ChildCost *decreases* as ShareFactor increases
//      (|ChildRel| = 50000/ShareFactor shrinks, eqn. 1).
//  The curves cross at a moderate ShareFactor (paper: ~4.7): below it
//  DFSCLUST wins, above it BFS wins.
#include "bench/bench_util.h"

using namespace objrep;
using namespace objrep::bench;

int main() {
  PrintTitle("Figure 5: cost breakdown vs ShareFactor",
             "NumTop=200, Pr(UPDATE)->1 (retrieve costs shown), Overlap=1");

  // UseFactor sweep with Overlap=1 => ShareFactor = UseFactor.
  const std::vector<uint32_t> share_factors = {1, 2, 4, 5, 8, 10};

  std::printf("%12s | %28s | %28s\n", "", "(a) DFSCLUST", "(b) BFS");
  std::printf("%12s | %8s %9s %9s | %8s %9s %9s\n", "ShareFactor", "ParCost",
              "ChildCost", "TotCost", "ParCost", "ChildCost", "TotCost");

  double prev_clust = -1, prev_bfs = -1, crossover = -1;
  uint32_t prev_sf = 0;
  for (uint32_t sf : share_factors) {
    DatabaseSpec spec;
    spec.use_factor = sf;
    spec.overlap_factor = 1;
    spec.build_cluster = true;

    WorkloadSpec wl;
    wl.num_top = 200;
    // Pr(UPDATE)->1: almost all updates; retrieve cost is still what the
    // figure reports, so keep enough retrieves to average.
    wl.pr_update = 0.9;
    wl.num_queries = 400;
    wl.seed = 900 + sf;

    RunResult clust = MeasureStrategy(spec, wl, StrategyKind::kDfsClust);
    RunResult bfs = MeasureStrategy(spec, wl, StrategyKind::kBfs);

    double cp = clust.AvgParCost(), cc = clust.AvgChildCost();
    double bp = bfs.AvgParCost(), bc = bfs.AvgChildCost();
    std::printf("%12u | %8.1f %9.1f %9.1f | %8.1f %9.1f %9.1f\n", sf, cp, cc,
                cp + cc, bp, bc, bp + bc);

    double tot_clust = cp + cc, tot_bfs = bp + bc;
    if (crossover < 0 && prev_clust >= 0 && prev_clust <= prev_bfs &&
        tot_clust > tot_bfs) {
      double d0 = prev_bfs - prev_clust, d1 = tot_clust - tot_bfs;
      crossover = prev_sf + (sf - prev_sf) * (d0 / (d0 + d1));
    }
    prev_clust = tot_clust;
    prev_bfs = tot_bfs;
    prev_sf = sf;
  }
  PrintRule();
  if (crossover > 0) {
    std::printf(
        "DFSCLUST/BFS crossover at ShareFactor ~= %.1f (paper: ~4.7)\n",
        crossover);
  } else {
    std::printf("DFSCLUST/BFS crossover not bracketed by the sweep\n");
  }
  std::printf(
      "Expected: DFSCLUST ParCost falls / ChildCost rises with ShareFactor;\n"
      "BFS ChildCost falls with ShareFactor; totals cross at a moderate SF.\n");
  return 0;
}
