// Demand-miss read concurrency (DESIGN.md §17): fixed strategy, swept
// thread count, serialized-miss baseline vs overlapped miss I/O.
//
// K closed-loop client threads drive one ComplexDatabase through the
// concurrent runner for a timed window, once with the pre-§17 behavior
// (SetSerializeMissIo(true): every demand-miss read and dirty-victim
// write-back runs under the pool-global evict_mu_, so misses across the
// whole process queue behind one latch) and once with the shipped path
// (the in-flight claim table lets each misser read with evict_mu_
// released, coalescing duplicate missers onto one device read). Same
// database shape, same query stream, same simulated device: the sweep
// isolates what holding evict_mu_ across ReadPage costs.
//
// The spec is deliberately cache-hostile: the working set is far larger
// than the buffer, updates are off, so nearly every retrieve pays a
// demand miss at --io-latency-us a page. Serialized, aggregate
// throughput is capped near one device's worth regardless of K;
// overlapped, K misses wait on the device concurrently. The committed
// floor (tools/check_bench_json.py --readconc): at 8 threads the
// concurrent path sustains >= 3x the serialized aggregate retrieve
// throughput.
//
//   $ ./build/bench/read_concurrency
//   $ ./build/bench/read_concurrency --quick      (CI smoke: no floor point)
//   $ ./build/bench/read_concurrency --json=BENCH_read_concurrency.json
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "exec/concurrent_runner.h"
#include "objstore/database.h"
#include "objstore/workload.h"

namespace objrep {
namespace bench {
namespace {

DatabaseSpec ColdSpec(uint32_t io_latency_us) {
  DatabaseSpec spec;
  // Working set well beyond the buffer: retrieves keep missing, so the
  // bench measures the miss path itself, not cache hits around it.
  spec.num_parents = 8000;
  spec.size_unit = 5;
  spec.use_factor = 1;
  spec.overlap_factor = 1;
  spec.num_child_rels = 1;
  spec.buffer_pages = 64;
  spec.seed = 211;
  spec.enable_wal = true;
  spec.io_latency_us = io_latency_us;
  return spec;
}

WorkloadSpec ReadOnlyMix() {
  WorkloadSpec wl;
  wl.num_queries = 400;
  // Point-ish retrieves: each touches a handful of pages, so the per-miss
  // latch cost dominates and queuing behind evict_mu_ is visible.
  wl.num_top = 2;
  wl.pr_update = 0.0;
  wl.seed = 151;
  return wl;
}

double RunMode(bool serialize_miss_io, uint32_t threads,
               double duration_seconds, uint32_t io_latency_us) {
  std::unique_ptr<ComplexDatabase> db;
  Status s = BuildDatabase(ColdSpec(io_latency_us), &db);
  OBJREP_CHECK_MSG(s.ok(), s.ToString().c_str());
  std::vector<Query> queries;
  s = GenerateWorkload(ReadOnlyMix(), *db, &queries);
  OBJREP_CHECK_MSG(s.ok(), s.ToString().c_str());

  db->pool->SetSerializeMissIo(serialize_miss_io);

  ConcurrentRunOptions options;
  options.num_threads = threads;
  options.seed = 23;
  // Warmup at a fraction of the window settles pools; the cache-hostile
  // spec keeps the measured window miss-dominated regardless.
  options.duration_seconds = duration_seconds * 0.25;
  ConcurrentRunResult warmup;
  s = RunConcurrentWorkload(StrategyKind::kDfs, {}, db.get(), queries,
                            options, &warmup);
  OBJREP_CHECK_MSG(s.ok(), s.ToString().c_str());

  options.duration_seconds = duration_seconds;
  ConcurrentRunResult result;
  s = RunConcurrentWorkload(StrategyKind::kDfs, {}, db.get(), queries,
                            options, &result);
  OBJREP_CHECK_MSG(s.ok(), s.ToString().c_str());

  if (result.wall_seconds <= 0) return 0.0;
  return static_cast<double>(result.combined.num_retrieves) /
         result.wall_seconds;
}

struct SweepPoint {
  uint32_t threads;
  double serialized_retrieves_per_sec;
  double concurrent_retrieves_per_sec;
  double speedup;  // concurrent over serialized aggregate retrieves/s
};

void WriteJson(const char* path, double duration_seconds,
               uint32_t io_latency_us, const std::vector<SweepPoint>& pts) {
  std::FILE* f = std::fopen(path, "w");
  OBJREP_CHECK_MSG(f != nullptr, "cannot open JSON output path");
  std::fprintf(f,
               "{\n  \"bench\": \"read_concurrency\",\n"
               "  \"strategy\": \"DFS\",\n"
               "  \"duration_seconds\": %.3f,\n  \"io_latency_us\": %u,\n"
               "  \"points\": [",
               duration_seconds, io_latency_us);
  for (size_t i = 0; i < pts.size(); ++i) {
    const SweepPoint& p = pts[i];
    std::fprintf(f,
                 "%s\n    {\"threads\": %u, "
                 "\"serialized_retrieves_per_sec\": %.2f, "
                 "\"concurrent_retrieves_per_sec\": %.2f, "
                 "\"speedup\": %.3f}",
                 i == 0 ? "" : ",", p.threads,
                 p.serialized_retrieves_per_sec,
                 p.concurrent_retrieves_per_sec, p.speedup);
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
}

void RunSweep(double duration_seconds, uint32_t io_latency_us, bool quick,
              const char* json_path) {
  // The quick sweep stays below the floor point (8 threads): CI smoke
  // validates the harness; the committed JSON carries the claim.
  const std::vector<uint32_t> thread_counts =
      quick ? std::vector<uint32_t>{1, 4}
            : std::vector<uint32_t>{1, 2, 4, 8};

  std::printf("%-8s %16s %16s %10s\n", "threads", "serial ret/s",
              "overlap ret/s", "speedup");
  std::vector<SweepPoint> points;
  for (uint32_t k : thread_counts) {
    SweepPoint p;
    p.threads = k;
    p.serialized_retrieves_per_sec =
        RunMode(true, k, duration_seconds, io_latency_us);
    p.concurrent_retrieves_per_sec =
        RunMode(false, k, duration_seconds, io_latency_us);
    p.speedup = p.serialized_retrieves_per_sec > 0
                    ? p.concurrent_retrieves_per_sec /
                          p.serialized_retrieves_per_sec
                    : 0.0;
    points.push_back(p);
    std::printf("%-8u %16.0f %16.0f %9.2fx\n", k,
                p.serialized_retrieves_per_sec,
                p.concurrent_retrieves_per_sec, p.speedup);
  }
  if (json_path != nullptr) {
    WriteJson(json_path, duration_seconds, io_latency_us, points);
    std::printf("\nwrote %s\n", json_path);
  }
}

}  // namespace
}  // namespace bench
}  // namespace objrep

int main(int argc, char** argv) {
  double duration = 2.0;
  uint32_t io_latency_us = 100;
  bool quick = false;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--duration=", 11) == 0) {
      duration = std::strtod(argv[i] + 11, nullptr);
    } else if (std::strncmp(argv[i], "--io-latency-us=", 16) == 0) {
      io_latency_us =
          static_cast<uint32_t>(std::strtoul(argv[i] + 16, nullptr, 10));
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
      duration = 0.4;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json_path = "BENCH_read_concurrency.json";
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--duration=S] [--io-latency-us=N] [--quick] "
                   "[--json[=PATH]]\n",
                   argv[0]);
      return 2;
    }
  }
  objrep::bench::PrintTitle(
      "Read concurrency: miss I/O under evict_mu_ vs coalesced overlap",
      "closed-loop clients; cold cache-hostile retrieves, swept threads");
  objrep::bench::RunSweep(duration, io_latency_us, quick, json_path);
  return 0;
}
