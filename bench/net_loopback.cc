// net_loopback — wire-level capacity bench for the object server
// (DESIGN.md §13): can one ObjServer multiplex >= 10k concurrent loopback
// connections, and does admission control keep latency bounded when the
// in-flight budget is slashed mid-run?
//
//   $ ./build/bench/net_loopback                # full: 10k connections
//   $ ./build/bench/net_loopback --quick        # CI smoke: 512 connections
//
// The client side is NOT thread-per-connection (10k threads would bench
// the scheduler, not the server) and not even same-process: the per-process
// fd limit must cover the server's 10k sockets, so it cannot also hold the
// client ends. Each client loop is a forked child process with its own fd
// table, driving ~1k closed-loop connections off one epoll — every
// connection keeps exactly one request outstanding, so offered load is
// self-limiting and the measured latencies are honest queueing delay.
// Phase control lives in a shared anonymous mapping; children stream their
// latency samples back over pipes. Two phases against one server:
//
//   steady   — budget provisioned above the connection count, so nothing
//              is shed; per-verb p50/p99/p999 recorded.
//   overload — set_max_inflight() drops the budget to a handful while
//              every connection keeps firing; the server must answer the
//              excess with SERVER_BUSY (cheap, loop-side) and the few
//              admitted requests must stay fast — shedding, not collapse.
//
// Results land in BENCH_net.json; tools/check_bench_json.py --net
// validates the schema and enforces the overload bound.
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/mman.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <new>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.h"
#include "net/protocol.h"
#include "net/server.h"
#include "objstore/database.h"
#include "util/macros.h"

using namespace objrep;

namespace {

struct BenchFlags {
  uint32_t connections = 10000;
  uint32_t client_procs = 8;
  uint32_t server_workers = 8;
  double steady_seconds = 5.0;
  double overload_seconds = 2.0;
  uint32_t overload_inflight = 4;
  uint32_t num_parents = 2000;
  std::string out = "BENCH_net.json";
  // Update-target space, filled from the built database before the
  // children fork (child relation id + keys per relation).
  uint32_t update_rel = 0;
  uint32_t update_keys = 1;
};

// Phases double as indices into the per-phase accumulators.
enum Phase : int { kWait = -1, kSteady = 0, kOverload = 1, kDone = 2 };

/// Parent/children rendezvous, in a MAP_SHARED anonymous page: the parent
/// flips the phase, every child polls it.
struct SharedCtl {
  std::atomic<uint32_t> connected;
  std::atomic<int> phase;
};
SharedCtl* g_ctl = nullptr;

constexpr int kVerbSlots = 3;  // RETRIEVE, UPDATE, PING
const char* kVerbNames[kVerbSlots] = {"RETRIEVE", "UPDATE", "PING"};

struct Conn {
  int fd = -1;
  net::FrameDecoder decoder;
  std::string out;      // encoded request frame being sent
  size_t out_off = 0;
  int verb_slot = 0;
  int phase_at_send = kSteady;
  std::chrono::steady_clock::time_point send_ts;
  uint64_t next_id = 1;
  std::mt19937_64 rng;
};

/// One child's share of the measurement: latencies in microseconds, split
/// by (phase, verb); SERVER_BUSY counts by phase-at-arrival (the busy
/// verdict is made server-side at receipt — a request sent late in steady
/// can be rejected after the budget drop, and that rejection belongs to
/// the overload phase).
struct LoopResult {
  std::vector<uint32_t> lat[2][kVerbSlots];
  uint64_t busy[2] = {0, 0};
  uint64_t other_errors = 0;  // BAD_REQUEST etc — any is a bench bug
  uint64_t dead_conns = 0;
};

uint64_t Pct(const std::vector<uint32_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

void BuildRequest(const BenchFlags& flags, Conn* c) {
  int phase = g_ctl->phase.load(std::memory_order_relaxed);
  net::Request req;
  req.id = c->next_id++;
  double coin = std::uniform_real_distribution<double>(0, 1)(c->rng);
  if (coin < 0.10) {
    c->verb_slot = 2;
    req.verb = net::Verb::kPing;
  } else if (coin < 0.20 && phase != kOverload) {
    // Overload measures RETRIEVE shedding only: updates take X table
    // locks and would serialize the admitted trickle behind each other.
    c->verb_slot = 1;
    req.verb = net::Verb::kUpdate;
    req.new_ret1 = static_cast<int32_t>(c->rng() & 0x7FFF);
    req.update_targets.push_back(
        Oid{flags.update_rel,
            static_cast<uint32_t>(c->rng() % flags.update_keys)});
  } else {
    c->verb_slot = 0;
    req.verb = net::Verb::kRetrieve;
    req.lo_parent = static_cast<uint32_t>(c->rng() % (flags.num_parents - 4));
    req.num_top = 4;
    req.attr_index = 0;
  }
  c->out = net::EncodeFrame(net::EncodeRequest(req));
  c->out_off = 0;
  c->phase_at_send = phase < kSteady ? kSteady : phase;
  c->send_ts = std::chrono::steady_clock::now();
}

/// Sends as much of c->out as the socket accepts. Returns false on a dead
/// connection; *want_out says whether EPOLLOUT must stay armed.
bool PumpSend(Conn* c, bool* want_out) {
  while (c->out_off < c->out.size()) {
    ssize_t n = ::send(c->fd, c->out.data() + c->out_off,
                       c->out.size() - c->out_off, MSG_NOSIGNAL);
    if (n > 0) {
      c->out_off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      *want_out = true;
      return true;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  *want_out = false;
  return true;
}

void RunClientLoop(const BenchFlags& flags, uint16_t port, uint32_t num_conns,
                   uint64_t seed, LoopResult* result) {
  int ep = ::epoll_create1(0);
  OBJREP_CHECK(ep >= 0);
  std::vector<Conn> conns(num_conns);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  for (uint32_t i = 0; i < num_conns; ++i) {
    Conn& c = conns[i];
    c.rng.seed(seed + i);
    c.fd = ::socket(AF_INET, SOCK_STREAM, 0);
    OBJREP_CHECK_MSG(c.fd >= 0, "socket() failed — fd limit too low?");
    OBJREP_CHECK_MSG(::connect(c.fd, reinterpret_cast<sockaddr*>(&addr),
                               sizeof(addr)) == 0,
                     "connect() failed");
    int one = 1;
    setsockopt(c.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    OBJREP_CHECK(::fcntl(c.fd, F_SETFL, O_NONBLOCK) == 0);
    epoll_event ev{};
    ev.data.u32 = i;
    ev.events = EPOLLIN;
    OBJREP_CHECK(::epoll_ctl(ep, EPOLL_CTL_ADD, c.fd, &ev) == 0);
    g_ctl->connected.fetch_add(1);
  }
  while (g_ctl->phase.load() == kWait) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  auto rearm = [&](uint32_t idx, bool want_out) {
    epoll_event ev{};
    ev.data.u32 = idx;
    ev.events = EPOLLIN | (want_out ? static_cast<uint32_t>(EPOLLOUT) : 0u);
    OBJREP_CHECK(::epoll_ctl(ep, EPOLL_CTL_MOD, conns[idx].fd, &ev) == 0);
  };
  auto kill = [&](uint32_t idx) {
    ::epoll_ctl(ep, EPOLL_CTL_DEL, conns[idx].fd, nullptr);
    ::close(conns[idx].fd);
    conns[idx].fd = -1;
    result->dead_conns++;
  };

  // Fire the first request on every connection.
  for (uint32_t i = 0; i < num_conns; ++i) {
    BuildRequest(flags, &conns[i]);
    bool want_out = false;
    if (!PumpSend(&conns[i], &want_out)) {
      kill(i);
      continue;
    }
    if (want_out) rearm(i, true);
  }

  std::vector<epoll_event> events(512);
  std::vector<char> buf(64 * 1024);
  while (g_ctl->phase.load(std::memory_order_relaxed) != kDone) {
    int n = ::epoll_wait(ep, events.data(), static_cast<int>(events.size()),
                         50);
    for (int e = 0; e < n; ++e) {
      uint32_t idx = events[e].data.u32;
      Conn& c = conns[idx];
      if (c.fd < 0) continue;
      if (events[e].events & (EPOLLERR | EPOLLHUP)) {
        kill(idx);
        continue;
      }
      if (events[e].events & EPOLLOUT) {
        bool want_out = false;
        if (!PumpSend(&c, &want_out)) {
          kill(idx);
          continue;
        }
        if (!want_out) rearm(idx, false);
      }
      if (!(events[e].events & EPOLLIN)) continue;
      ssize_t r = ::recv(c.fd, buf.data(), buf.size(), 0);
      if (r == 0 || (r < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                     errno != EINTR)) {
        kill(idx);
        continue;
      }
      if (r < 0) continue;
      c.decoder.Feed(buf.data(), static_cast<size_t>(r));
      bool advanced = false;
      for (;;) {
        std::string payload;
        bool ready = false;
        if (!c.decoder.Next(&payload, &ready).ok()) {
          kill(idx);
          break;
        }
        if (!ready) break;
        net::Response resp;
        OBJREP_CHECK(net::DecodeResponse(payload, &resp).ok());
        uint64_t us = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - c.send_ts)
                .count());
        int now_phase = g_ctl->phase.load(std::memory_order_relaxed);
        if (resp.status == net::RespStatus::kOk) {
          if (c.phase_at_send < kDone) {
            result->lat[c.phase_at_send][c.verb_slot].push_back(
                static_cast<uint32_t>(std::min<uint64_t>(us, UINT32_MAX)));
          }
        } else if (resp.status == net::RespStatus::kServerBusy) {
          if (now_phase == kSteady || now_phase == kOverload) {
            result->busy[now_phase]++;
          }
        } else {
          result->other_errors++;
        }
        // Closed loop: the response IS the permission to send again.
        if (now_phase == kDone) break;
        BuildRequest(flags, &c);
        advanced = true;
      }
      if (c.fd < 0) continue;
      if (advanced) {
        bool want_out = false;
        if (!PumpSend(&c, &want_out)) {
          kill(idx);
          continue;
        }
        if (want_out) rearm(idx, true);
      }
    }
  }
  for (Conn& c : conns) {
    if (c.fd >= 0) ::close(c.fd);
  }
  ::close(ep);
}

void WriteFull(int fd, const void* data, size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    ssize_t n = ::write(fd, p, len);
    if (n < 0 && errno == EINTR) continue;
    OBJREP_CHECK_MSG(n > 0, "result pipe write failed");
    p += n;
    len -= static_cast<size_t>(n);
  }
}

bool ReadFull(int fd, void* data, size_t len) {
  char* p = static_cast<char*>(data);
  while (len > 0) {
    ssize_t n = ::read(fd, p, len);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    p += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

/// Child-side result marshalling: fixed counters, then (count, samples)
/// per (phase, verb). The parent reads the mirror image.
void SendResult(int fd, const LoopResult& r) {
  uint64_t head[4] = {r.busy[0], r.busy[1], r.other_errors, r.dead_conns};
  WriteFull(fd, head, sizeof(head));
  for (int ph = 0; ph < 2; ++ph) {
    for (int vb = 0; vb < kVerbSlots; ++vb) {
      uint64_t count = r.lat[ph][vb].size();
      WriteFull(fd, &count, sizeof(count));
      if (count > 0) {
        WriteFull(fd, r.lat[ph][vb].data(), count * sizeof(uint32_t));
      }
    }
  }
}

bool RecvResult(int fd, LoopResult* r) {
  uint64_t head[4];
  if (!ReadFull(fd, head, sizeof(head))) return false;
  r->busy[0] = head[0];
  r->busy[1] = head[1];
  r->other_errors = head[2];
  r->dead_conns = head[3];
  for (int ph = 0; ph < 2; ++ph) {
    for (int vb = 0; vb < kVerbSlots; ++vb) {
      uint64_t count = 0;
      if (!ReadFull(fd, &count, sizeof(count))) return false;
      r->lat[ph][vb].resize(count);
      if (count > 0 &&
          !ReadFull(fd, r->lat[ph][vb].data(), count * sizeof(uint32_t))) {
        return false;
      }
    }
  }
  return true;
}

/// The server process holds one fd per connection (the clients' ends live
/// in the forked children): raise RLIMIT_NOFILE best-effort, then scale
/// the connection count to what the limit affords.
void FitFdBudget(BenchFlags* flags) {
  rlimit lim{};
  OBJREP_CHECK(getrlimit(RLIMIT_NOFILE, &lim) == 0);
  rlim_t needed = static_cast<rlim_t>(flags->connections) + 1024;
  if (lim.rlim_cur < needed) {
    rlimit want{needed, std::max<rlim_t>(needed, lim.rlim_max)};
    if (setrlimit(RLIMIT_NOFILE, &want) != 0) {
      want = {lim.rlim_max, lim.rlim_max};
      setrlimit(RLIMIT_NOFILE, &want);
      OBJREP_CHECK(getrlimit(RLIMIT_NOFILE, &lim) == 0);
      if (lim.rlim_cur < needed) {
        uint32_t fit = static_cast<uint32_t>(lim.rlim_cur - 1024);
        std::fprintf(stderr,
                     "net_loopback: fd limit %llu caps the bench at %u "
                     "connections (wanted %u)\n",
                     static_cast<unsigned long long>(lim.rlim_cur), fit,
                     flags->connections);
        flags->connections = fit;
      }
    }
  }
}

struct VerbSummary {
  uint64_t count = 0, p50 = 0, p99 = 0, p999 = 0, max = 0;
};

VerbSummary Summarize(std::vector<uint32_t>& lat) {
  std::sort(lat.begin(), lat.end());
  VerbSummary s;
  s.count = lat.size();
  s.p50 = Pct(lat, 0.50);
  s.p99 = Pct(lat, 0.99);
  s.p999 = Pct(lat, 0.999);
  s.max = lat.empty() ? 0 : lat.back();
  return s;
}

void EmitVerb(std::FILE* f, const char* name, const VerbSummary& s,
              bool last) {
  std::fprintf(f,
               "      \"%s\": {\"count\": %llu, \"p50_us\": %llu, "
               "\"p99_us\": %llu, \"p999_us\": %llu, \"max_us\": %llu}%s\n",
               name, static_cast<unsigned long long>(s.count),
               static_cast<unsigned long long>(s.p50),
               static_cast<unsigned long long>(s.p99),
               static_cast<unsigned long long>(s.p999),
               static_cast<unsigned long long>(s.max), last ? "" : ",");
}

int Usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [--connections=N] [--procs=N] [--workers=N]\n"
               "          [--steady=S] [--overload=S] [--overload-inflight=N]\n"
               "          [--out=FILE] [--quick]\n",
               prog);
  return 2;
}

bool ParseFlag(const char* arg, const char* name, const char** value) {
  size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *value = arg + n + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags;
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (ParseFlag(argv[i], "--connections", &v)) {
      flags.connections = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (ParseFlag(argv[i], "--procs", &v)) {
      flags.client_procs = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (ParseFlag(argv[i], "--workers", &v)) {
      flags.server_workers =
          static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (ParseFlag(argv[i], "--steady", &v)) {
      flags.steady_seconds = std::strtod(v, nullptr);
    } else if (ParseFlag(argv[i], "--overload", &v)) {
      flags.overload_seconds = std::strtod(v, nullptr);
    } else if (ParseFlag(argv[i], "--overload-inflight", &v)) {
      flags.overload_inflight =
          static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (ParseFlag(argv[i], "--out", &v)) {
      flags.out = v;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      flags.connections = 512;
      flags.steady_seconds = 2.0;
      flags.overload_seconds = 1.0;
    } else {
      return Usage(argv[0]);
    }
  }
  if (flags.connections == 0 || flags.client_procs == 0 ||
      flags.server_workers == 0 || flags.overload_inflight == 0) {
    return Usage(argv[0]);
  }
  FitFdBudget(&flags);

  g_ctl = static_cast<SharedCtl*>(
      ::mmap(nullptr, sizeof(SharedCtl), PROT_READ | PROT_WRITE,
             MAP_SHARED | MAP_ANONYMOUS, -1, 0));
  OBJREP_CHECK(g_ctl != MAP_FAILED);
  new (g_ctl) SharedCtl{};
  g_ctl->phase.store(kWait);

  DatabaseSpec spec;
  spec.num_parents = flags.num_parents;
  spec.size_unit = 5;
  spec.use_factor = 5;
  spec.build_cache = true;
  spec.build_cluster = true;
  spec.size_cache = 200;
  spec.cache_buckets = 64;
  spec.seed = 42;
  std::unique_ptr<ComplexDatabase> db;
  Status s = BuildDatabase(spec, &db);
  OBJREP_CHECK_MSG(s.ok(), s.ToString().c_str());
  flags.update_rel = db->child_rels[0]->rel_id();
  flags.update_keys = static_cast<uint32_t>(db->child_rows[0].size());

  net::ServerConfig sc;
  sc.num_workers = flags.server_workers;
  // Steady phase must never shed: budget above the worst-case offered
  // load (every connection has exactly one request outstanding).
  sc.max_inflight = flags.connections + 64;
  sc.max_conn_inflight = 8;
  sc.default_strategy = StrategyKind::kDfsCache;
  net::ObjServer server(db.get(), sc);
  s = server.Start();
  OBJREP_CHECK_MSG(s.ok(), s.ToString().c_str());
  std::printf(
      "net_loopback: %u connections x %u client procs, %u workers, port %u\n",
      flags.connections, flags.client_procs, flags.server_workers,
      server.port());
  std::fflush(nullptr);  // nothing buffered crosses the forks twice

  uint32_t base = flags.connections / flags.client_procs;
  uint32_t extra = flags.connections % flags.client_procs;
  std::vector<pid_t> kids;
  std::vector<int> pipes;
  for (uint32_t t = 0; t < flags.client_procs; ++t) {
    uint32_t share = base + (t < extra ? 1 : 0);
    int pfd[2];
    OBJREP_CHECK(::pipe(pfd) == 0);
    pid_t pid = ::fork();
    OBJREP_CHECK_MSG(pid >= 0, "fork failed");
    if (pid == 0) {
      ::close(pfd[0]);
      for (int other : pipes) ::close(other);
      LoopResult result;
      RunClientLoop(flags, server.port(), share, 1000 + 100000ULL * t,
                    &result);
      SendResult(pfd[1], result);
      ::close(pfd[1]);
      ::_exit(0);  // skip parent-inherited atexit/stdio teardown
    }
    ::close(pfd[1]);
    kids.push_back(pid);
    pipes.push_back(pfd[0]);
  }

  while (g_ctl->connected.load() < flags.connections) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  std::printf("net_loopback: all %u connected, steady phase %.1fs\n",
              g_ctl->connected.load(), flags.steady_seconds);

  auto t0 = std::chrono::steady_clock::now();
  g_ctl->phase.store(kSteady);
  std::this_thread::sleep_for(
      std::chrono::duration<double>(flags.steady_seconds));
  double steady_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::printf("net_loopback: overload phase %.1fs (budget -> %u)\n",
              flags.overload_seconds, flags.overload_inflight);
  server.set_max_inflight(flags.overload_inflight);
  auto t1 = std::chrono::steady_clock::now();
  g_ctl->phase.store(kOverload);
  std::this_thread::sleep_for(
      std::chrono::duration<double>(flags.overload_seconds));
  double overload_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t1)
          .count();

  // Snapshot before the children tear down: abrupt client closes leave
  // half-sent frames behind, which would show up as teardown noise in
  // bad_frames/responses.
  net::ObjServer::Stats st = server.stats();
  g_ctl->phase.store(kDone);

  // Merge the children's accumulators.
  std::vector<uint32_t> lat[2][kVerbSlots];
  uint64_t busy[2] = {0, 0};
  uint64_t other_errors = 0, dead = 0;
  for (size_t i = 0; i < kids.size(); ++i) {
    LoopResult r;
    OBJREP_CHECK_MSG(RecvResult(pipes[i], &r),
                     "client process died before reporting");
    ::close(pipes[i]);
    int wstatus = 0;
    OBJREP_CHECK(::waitpid(kids[i], &wstatus, 0) == kids[i]);
    OBJREP_CHECK_MSG(WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0,
                     "client process exited abnormally");
    for (int ph = 0; ph < 2; ++ph) {
      busy[ph] += r.busy[ph];
      for (int vb = 0; vb < kVerbSlots; ++vb) {
        lat[ph][vb].insert(lat[ph][vb].end(), r.lat[ph][vb].begin(),
                           r.lat[ph][vb].end());
      }
    }
    other_errors += r.other_errors;
    dead += r.dead_conns;
  }
  server.Stop();

  VerbSummary steady[kVerbSlots];
  uint64_t steady_ok = 0;
  for (int vb = 0; vb < kVerbSlots; ++vb) {
    steady[vb] = Summarize(lat[kSteady][vb]);
    steady_ok += steady[vb].count;
  }
  // "Admitted" under overload is RETRIEVE alone: PING bypasses admission
  // and stays cheap, so folding it in would flatter the p99.
  VerbSummary admitted = Summarize(lat[kOverload][0]);

  OBJREP_CHECK_MSG(dead == 0, "connections died during the run");
  OBJREP_CHECK_MSG(other_errors == 0, "unexpected error responses");
  OBJREP_CHECK_MSG(steady_ok > 0, "steady phase produced no responses");
  OBJREP_CHECK_MSG(busy[kSteady] == 0,
                   "steady phase shed load despite provisioned budget");
  OBJREP_CHECK_MSG(busy[kOverload] > 0,
                   "overload phase never answered SERVER_BUSY");
  OBJREP_CHECK_MSG(admitted.count > 0,
                   "overload phase admitted no requests at all");

  std::FILE* f = std::fopen(flags.out.c_str(), "w");
  OBJREP_CHECK_MSG(f != nullptr, "cannot open output file");
  std::fprintf(f,
               "{\n  \"bench\": \"net_loopback\",\n"
               "  \"connections\": %u,\n  \"client_procs\": %u,\n"
               "  \"server_workers\": %u,\n",
               flags.connections, flags.client_procs, flags.server_workers);
  std::fprintf(f,
               "  \"steady\": {\n    \"seconds\": %.3f,\n"
               "    \"max_inflight\": %u,\n    \"requests_ok\": %llu,\n"
               "    \"busy\": %llu,\n    \"throughput_rps\": %.1f,\n"
               "    \"verbs\": {\n",
               steady_s, flags.connections + 64,
               static_cast<unsigned long long>(steady_ok),
               static_cast<unsigned long long>(busy[kSteady]),
               static_cast<double>(steady_ok) / steady_s);
  for (int vb = 0; vb < kVerbSlots; ++vb) {
    EmitVerb(f, kVerbNames[vb], steady[vb], vb == kVerbSlots - 1);
  }
  std::fprintf(f, "    }\n  },\n");
  std::fprintf(f,
               "  \"overload\": {\n    \"seconds\": %.3f,\n"
               "    \"max_inflight\": %u,\n"
               "    \"busy_rejections\": %llu,\n    \"admitted\": {\n",
               overload_s, flags.overload_inflight,
               static_cast<unsigned long long>(busy[kOverload]));
  std::fprintf(f,
               "      \"count\": %llu, \"p50_us\": %llu, \"p99_us\": %llu, "
               "\"p999_us\": %llu, \"max_us\": %llu\n    }\n  },\n",
               static_cast<unsigned long long>(admitted.count),
               static_cast<unsigned long long>(admitted.p50),
               static_cast<unsigned long long>(admitted.p99),
               static_cast<unsigned long long>(admitted.p999),
               static_cast<unsigned long long>(admitted.max));
  std::fprintf(f,
               "  \"server\": {\"accepted\": %llu, \"requests_admitted\": "
               "%llu, \"responses\": %llu, \"busy_rejected\": %llu, "
               "\"bad_frames\": %llu}\n}\n",
               static_cast<unsigned long long>(st.accepted),
               static_cast<unsigned long long>(st.requests_admitted),
               static_cast<unsigned long long>(st.responses),
               static_cast<unsigned long long>(st.busy_rejected),
               static_cast<unsigned long long>(st.bad_frames));
  std::fclose(f);

  std::printf(
      "steady:   %.0f req/s  RETRIEVE p50=%lluus p99=%lluus p999=%lluus\n",
      static_cast<double>(steady_ok) / steady_s,
      static_cast<unsigned long long>(steady[0].p50),
      static_cast<unsigned long long>(steady[0].p99),
      static_cast<unsigned long long>(steady[0].p999));
  std::printf(
      "overload: admitted=%llu busy=%llu  admitted p99=%lluus (budget %u)\n",
      static_cast<unsigned long long>(admitted.count),
      static_cast<unsigned long long>(busy[kOverload]),
      static_cast<unsigned long long>(admitted.p99),
      flags.overload_inflight);
  std::printf("wrote %s\n", flags.out.c_str());
  return 0;
}
