// Section 6.2: subobjects drawn from NumChildRel different relations.
//
// "Increasing the number of relations ... has little effect on DFS
// strategies ... it affects BFS significantly [in structure]: BFS executes
// n <= NumChildRel queries ... but the deterioration is far slower than
// expected" because each ChildRel (and each temporary) shrinks
// proportionally. Deterioration only appears when NumChildRel approaches
// NumTop.
#include "bench/bench_util.h"

using namespace objrep;
using namespace objrep::bench;

int main() {
  PrintTitle("Section 6.2: effect of NumChildRel",
             "ShareFactor=5, Pr(UPDATE)=0, NumTop in {8, 200, 2000}");

  const std::vector<uint32_t> num_rels = {1, 2, 4, 8, 16};
  const std::vector<uint32_t> num_tops = {8, 200, 2000};

  for (uint32_t nt : num_tops) {
    std::printf("\nNumTop = %u\n", nt);
    std::printf("%12s %12s %12s %12s\n", "NumChildRel", "DFS", "BFS",
                "DFSCACHE");
    for (uint32_t n : num_rels) {
      DatabaseSpec spec;
      spec.num_child_rels = n;
      spec.build_cache = true;
      WorkloadSpec wl;
      wl.num_top = nt;
      wl.pr_update = 0.0;
      wl.num_queries = AutoNumQueries(nt, 200);
      wl.seed = 62000 + n * 7 + nt;
      double dfs = MeasureStrategy(spec, wl, StrategyKind::kDfs)
                       .AvgIoPerQuery();
      double bfs = MeasureStrategy(spec, wl, StrategyKind::kBfs)
                       .AvgIoPerQuery();
      double cache = MeasureStrategy(spec, wl, StrategyKind::kDfsCache)
                         .AvgIoPerQuery();
      std::printf("%12u %12.1f %12.1f %12.1f\n", n, dfs, bfs, cache);
    }
  }
  PrintRule();
  std::printf(
      "Expected: DFS and DFSCACHE flat in NumChildRel; BFS degrades only\n"
      "when NumChildRel approaches NumTop (visible at NumTop=8, n=8/16).\n");
  return 0;
}
