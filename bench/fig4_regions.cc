// Figure 4 (paper §5.2): the 3-D map of which strategy — BFS, DFSCACHE, or
// DFSCLUST — wins as a function of ShareFactor, NumTop and Pr(UPDATE).
// The paper evaluated ~300 grid points and extrapolated the regions; we
// print the winner at every grid point, plus the 2-D faces the paper
// discusses (§5.2.1-5.2.4).
//
// Expected regions (paper):
//  * Pr(UPDATE)->1 face: caching unviable; DFSCLUST only near ShareFactor
//    1-2 (higher at NumTop->1), BFS elsewhere.
//  * Pr(UPDATE)->0: DFSCACHE expands, squeezing DFSCLUST (its boundary
//    drops) and BFS (which keeps only the high-NumTop region).
//  * High ShareFactor: clustering useless; DFSCACHE wins at low NumTop
//    and low Pr(UPDATE), BFS otherwise.
#include "bench/bench_util.h"

using namespace objrep;
using namespace objrep::bench;

namespace {

const std::vector<uint32_t> kShareFactors = {1, 2, 4, 8, 20, 50};
const std::vector<uint32_t> kNumTops = {1, 10, 50, 200, 1000, 5000};
// 0.95 stands in for the paper's Pr(UPDATE)->1 face: at exactly 1.0 a
// sequence contains no retrieves at all and the strategies degenerate to
// their update paths.
const std::vector<double> kPrUpdates = {0.0, 0.25, 0.5, 0.86, 0.95};

const char* ShortName(StrategyKind k) {
  switch (k) {
    case StrategyKind::kBfs: return "BFS  ";
    case StrategyKind::kDfsCache: return "CACHE";
    case StrategyKind::kDfsClust: return "CLUST";
    default: return "?    ";
  }
}

}  // namespace

int main() {
  PrintTitle("Figure 4: best strategy over (ShareFactor, NumTop, Pr(UPDATE))",
             "grid winners among BFS / DFSCACHE / DFSCLUST  "
             "(Overlap=1, SizeCache=1000)");

  const std::vector<StrategyKind> kinds = {
      StrategyKind::kBfs, StrategyKind::kDfsCache, StrategyKind::kDfsClust};

  int points = 0;
  for (double pr : kPrUpdates) {
    std::printf("\nPr(UPDATE) = %.2f\n", pr);
    std::printf("%18s", "ShareFactor \\ NumTop");
    for (uint32_t nt : kNumTops) std::printf(" %7u", nt);
    std::printf("\n");
    for (uint32_t sf : kShareFactors) {
      std::printf("%18u", sf);
      for (uint32_t nt : kNumTops) {
        DatabaseSpec spec = WithStructuresFor(DatabaseSpec{}, kinds);
        spec.use_factor = sf;
        WorkloadSpec wl;
        wl.num_top = nt;
        wl.pr_update = pr;
        wl.num_queries = AutoNumQueries(nt, 160);
        wl.seed = 40000 + sf * 131 + nt;

        double best = 0;
        StrategyKind best_kind = kinds[0];
        for (StrategyKind k : kinds) {
          RunResult r = MeasureStrategy(spec, wl, k);
          double avg = r.AvgIoPerQuery();
          if (best == 0 || avg < best) {
            best = avg;
            best_kind = k;
          }
        }
        std::printf(" %7s", ShortName(best_kind));
        ++points;
      }
      std::printf("\n");
    }
  }
  PrintRule();
  std::printf("%d grid points evaluated (paper: ~300 points).\n", points);
  std::printf(
      "Expected: CLUST only at ShareFactor~1 (shrinking with Pr(UPDATE) low\n"
      "as CACHE expands); CACHE at low NumTop & low Pr(UPDATE), growing\n"
      "with ShareFactor; BFS at high NumTop and high Pr(UPDATE).\n");
  return 0;
}
