// Micro-benchmarks of the storage substrate (google-benchmark): B-tree
// probes and scans, hash-file probes, external sort, buffer-pool hit path.
// These are engineering benchmarks (M1 in DESIGN.md), not paper figures.
#include <benchmark/benchmark.h>

#include "access/btree.h"
#include "access/hash_file.h"
#include "relational/external_sort.h"
#include "relational/temp_file.h"
#include "util/random.h"

namespace objrep {
namespace {

struct TreeFixture {
  TreeFixture(uint32_t n, uint32_t buffer_pages)
      : pool(&disk, buffer_pages) {
    std::vector<BPlusTree::Entry> entries;
    entries.reserve(n);
    for (uint32_t k = 0; k < n; ++k) {
      entries.push_back({k, std::string(100, 'v')});
    }
    OBJREP_CHECK(BPlusTree::BulkLoad(&pool, entries, 1.0, &tree).ok());
  }
  DiskManager disk;
  BufferPool pool;
  BPlusTree tree;
};

void BM_BTreeProbeCold(benchmark::State& state) {
  TreeFixture f(50000, 100);  // tree far larger than the buffer
  Rng rng(1);
  std::string v;
  for (auto _ : state) {
    uint64_t k = rng.Uniform(50000);
    benchmark::DoNotOptimize(f.tree.Get(k, &v));
  }
  state.counters["io_per_op"] = benchmark::Counter(
      static_cast<double>(f.disk.counters().total()),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_BTreeProbeCold);

void BM_BTreeProbeHot(benchmark::State& state) {
  TreeFixture f(5000, 1000);  // tree fits in the buffer
  Rng rng(2);
  std::string v;
  for (auto _ : state) {
    uint64_t k = rng.Uniform(5000);
    benchmark::DoNotOptimize(f.tree.Get(k, &v));
  }
}
BENCHMARK(BM_BTreeProbeHot);

void BM_BTreeScan(benchmark::State& state) {
  TreeFixture f(20000, 100);
  for (auto _ : state) {
    auto it = f.tree.NewIterator();
    OBJREP_CHECK(it.SeekToFirst().ok());
    uint64_t count = 0;
    while (it.valid()) {
      ++count;
      OBJREP_CHECK(it.Next().ok());
    }
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_BTreeScan);

void BM_BTreeInsertRandom(benchmark::State& state) {
  DiskManager disk;
  BufferPool pool(&disk, 200);
  BPlusTree tree;
  OBJREP_CHECK(BPlusTree::Create(&pool, &tree).ok());
  Rng rng(3);
  uint64_t next = 0;
  for (auto _ : state) {
    // Mixed-density keys, unique by construction.
    uint64_t k = (next++ << 16) | rng.Uniform(65536);
    OBJREP_CHECK(tree.Insert(k, std::string(60, 'i')).ok());
  }
}
BENCHMARK(BM_BTreeInsertRandom);

void BM_HashProbe(benchmark::State& state) {
  DiskManager disk;
  BufferPool pool(&disk, 100);
  HashFile hash;
  OBJREP_CHECK(HashFile::Create(&pool, 512, &hash).ok());
  for (uint64_t k = 0; k < 1000; ++k) {
    OBJREP_CHECK(hash.Insert(k, std::string(500, 'c')).ok());
  }
  Rng rng(4);
  std::string v;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash.Lookup(rng.Uniform(1000), &v));
  }
  state.counters["io_per_op"] = benchmark::Counter(
      static_cast<double>(disk.counters().total()),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_HashProbe);

void BM_ExternalSort(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  DiskManager disk;
  BufferPool pool(&disk, 100);
  Rng rng(5);
  for (auto _ : state) {
    TempFile input;
    OBJREP_CHECK(TempFile::Create(&pool, &input).ok());
    for (uint32_t i = 0; i < n; ++i) {
      OBJREP_CHECK(input.Append(rng.Next()).ok());
    }
    input.Seal();
    TempFile sorted;
    SortOptions opts;
    opts.work_mem_pages = 16;
    OBJREP_CHECK(ExternalSort(&pool, input, opts, &sorted).ok());
    benchmark::DoNotOptimize(sorted.num_entries());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ExternalSort)->Arg(10000)->Arg(100000);

void BM_BufferPoolHit(benchmark::State& state) {
  DiskManager disk;
  BufferPool pool(&disk, 16);
  PageGuard g;
  OBJREP_CHECK(pool.NewPage(&g).ok());
  PageId pid = g.page_id();
  g.Release();
  for (auto _ : state) {
    PageGuard h;
    OBJREP_CHECK(pool.FetchPage(pid, &h).ok());
    benchmark::DoNotOptimize(h.page());
  }
}
BENCHMARK(BM_BufferPoolHit);

}  // namespace
}  // namespace objrep

BENCHMARK_MAIN();
