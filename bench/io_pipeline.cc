// Wall-clock effect of the batched I/O & prefetch pipeline (DESIGN.md §9)
// on a simulated disk with per-seek latency.
//
// The I/O *counts* are identical with prefetch on or off by construction
// (tests/prefetch_equivalence_test.cc asserts it); what changes is the
// shape of the reads. Sorted hint batches over bulk-loaded leaves form
// contiguous page runs, so the vectored read pays one seek where demand
// paging pays one per page — and with background I/O workers the staging
// reads overlap query compute on top of that. This harness makes the win
// visible: a disk-bound database (every child probed, tiny buffer pool),
// a nonzero --io-latency-us, and a sweep of prefetch configurations.
//
//   $ ./build/bench/io_pipeline                  # full sweep, 100us seeks
//   $ ./build/bench/io_pipeline --quick          # CI smoke (seconds)
//   $ ./build/bench/io_pipeline --io-latency-us=250
//   $ ./build/bench/io_pipeline --json           # also BENCH_throughput.json
//   $ ./build/bench/io_pipeline --json=out.json
//
// DFSCLUST is run at use_factor=1 (every child belongs to its parent's
// cluster), where its ClusterRel extent scan is nearly all sequential and
// extent read-ahead approaches the device's transfer-bound floor.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "obs/io_context.h"

namespace objrep {
namespace bench {
namespace {

struct RunPoint {
  bool prefetch = false;
  uint32_t workers = 0;  // meaningful only when prefetch is on
  double seconds = 0;
  double qps = 0;
  double avg_io = 0;
  double seq_pct = 0;
  uint64_t io_total = 0;      // raw pages over the run, == sum of io_by_tag
  IoTagBreakdown io_by_tag;
};

DatabaseSpec DiskBoundSpec(uint32_t io_latency_us,
                           uint32_t io_transfer_us) {
  DatabaseSpec spec;
  spec.num_parents = 2000;
  spec.size_unit = 5;
  spec.use_factor = 1;     // every child in-cluster: DFSCLUST extent-bound
  spec.overlap_factor = 1;
  spec.buffer_pages = 100;  // the paper's buffer: working set never fits
  spec.build_cluster = true;
  spec.io_latency_us = io_latency_us;
  spec.io_transfer_us = io_transfer_us;
  spec.seed = 53;
  return spec;
}

RunPoint MeasurePoint(StrategyKind kind, const WorkloadSpec& wl,
                      uint32_t io_latency_us, uint32_t io_transfer_us,
                      bool prefetch, uint32_t workers) {
  DatabaseSpec spec = DiskBoundSpec(io_latency_us, io_transfer_us);
  spec.prefetch = prefetch;
  spec.prefetch_workers = workers;
  std::unique_ptr<ComplexDatabase> db;
  Status s = BuildDatabase(spec, &db);
  OBJREP_CHECK_MSG(s.ok(), s.ToString().c_str());
  std::vector<Query> queries;
  s = GenerateWorkload(wl, *db, &queries);
  OBJREP_CHECK_MSG(s.ok(), s.ToString().c_str());
  std::unique_ptr<Strategy> strategy;
  s = MakeStrategy(kind, db.get(), {}, &strategy);
  OBJREP_CHECK_MSG(s.ok(), s.ToString().c_str());
  RunResult r;
  auto t0 = std::chrono::steady_clock::now();
  s = RunWorkload(strategy.get(), db.get(), queries, &r);
  auto t1 = std::chrono::steady_clock::now();
  OBJREP_CHECK_MSG(s.ok(), s.ToString().c_str());
  RunPoint p;
  p.prefetch = prefetch;
  p.workers = workers;
  p.seconds = std::chrono::duration<double>(t1 - t0).count();
  p.qps = p.seconds > 0 ? r.num_queries / p.seconds : 0;
  p.avg_io = r.AvgIoPerQuery();
  p.seq_pct = 100.0 * r.io.seq_fraction();
  p.io_total = r.io.total();
  p.io_by_tag = r.io_by_tag;
  return p;
}

// The workload is deterministic and the disk is simulated, so every run
// of a cell does identical work; host-side noise (scheduler, frequency,
// neighbors) can only slow a run down, never speed it up. The fastest of
// five runs is therefore the least-perturbed estimate of the cell's
// throughput, and is far more stable run-to-run than any single timing.
RunPoint MeasurePointStable(StrategyKind kind, const WorkloadSpec& wl,
                            uint32_t io_latency_us, uint32_t io_transfer_us,
                            bool prefetch, uint32_t workers) {
  RunPoint best;
  for (int i = 0; i < 5; ++i) {
    RunPoint p = MeasurePoint(kind, wl, io_latency_us, io_transfer_us,
                              prefetch, workers);
    if (i == 0 || p.qps > best.qps) best = p;
  }
  return best;
}

struct StrategySweep {
  StrategyKind kind;
  std::vector<RunPoint> points;  // [0] is the prefetch-off baseline
};

void WriteJson(const std::string& path, uint32_t io_latency_us,
               uint32_t io_transfer_us, const WorkloadSpec& wl,
               const std::vector<StrategySweep>& sweeps) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  OBJREP_CHECK_MSG(f != nullptr, "cannot open JSON output path");
  std::fprintf(f,
               "{\n  \"bench\": \"io_pipeline\",\n"
               "  \"io_latency_us\": %u,\n  \"io_transfer_us\": %u,\n"
               "  \"num_queries\": %u,\n"
               "  \"strategies\": [",
               io_latency_us, io_transfer_us, wl.num_queries);
  for (size_t i = 0; i < sweeps.size(); ++i) {
    const StrategySweep& sw = sweeps[i];
    const double base_qps = sw.points[0].qps;
    std::fprintf(f, "%s\n    {\n      \"strategy\": \"%s\",\n"
                    "      \"runs\": [",
                 i == 0 ? "" : ",", StrategyKindName(sw.kind));
    for (size_t j = 0; j < sw.points.size(); ++j) {
      const RunPoint& p = sw.points[j];
      std::fprintf(
          f,
          "%s\n        {\"prefetch\": %s, \"workers\": %u, "
          "\"seconds\": %.4f, \"queries_per_sec\": %.2f, "
          "\"speedup\": %.3f, \"avg_io_per_query\": %.2f, "
          "\"seq_read_pct\": %.1f, \"io_total\": %llu, "
          "\"io_by_tag\": {",
          j == 0 ? "" : ",", p.prefetch ? "true" : "false", p.workers,
          p.seconds, p.qps, base_qps > 0 ? p.qps / base_qps : 0.0, p.avg_io,
          p.seq_pct, static_cast<unsigned long long>(p.io_total));
      bool first_tag = true;
      for (size_t t = 0; t < kNumIoTags; ++t) {
        uint64_t n = p.io_by_tag.total_for(static_cast<IoTag>(t));
        if (n == 0) continue;
        std::fprintf(f, "%s\"%s\": %llu", first_tag ? "" : ", ",
                     IoTagName(static_cast<IoTag>(t)),
                     static_cast<unsigned long long>(n));
        first_tag = false;
      }
      std::fprintf(f, "}}");
    }
    std::fprintf(f, "\n      ]\n    }");
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
}

void RunBench(uint32_t io_latency_us, uint32_t io_transfer_us, bool quick,
              const char* json_path) {
  const std::vector<StrategyKind> kinds = {
      StrategyKind::kBfs, StrategyKind::kDfs, StrategyKind::kDfsClust};
  const std::vector<uint32_t> worker_counts =
      quick ? std::vector<uint32_t>{0, 8}
            : std::vector<uint32_t>{0, 1, 2, 4, 8, 16};
  // Quick mode trims the worker sweep, not the query stream: the stream
  // must match the full run's so a --quick measurement is comparable,
  // cell for cell, against a committed full-sweep baseline.
  WorkloadSpec wl;
  wl.num_queries = 40;
  wl.num_top = 50;
  wl.pr_update = 0.0;
  wl.seed = 54;

  std::printf("%-10s %-14s %9s %11s %9s %11s %7s\n", "strategy", "prefetch",
              "seconds", "queries/s", "speedup", "avg I/O", "seq%");
  std::vector<StrategySweep> sweeps;
  for (StrategyKind kind : kinds) {
    StrategySweep sweep;
    sweep.kind = kind;
    sweep.points.push_back(MeasurePointStable(
        kind, wl, io_latency_us, io_transfer_us, /*prefetch=*/false, 0));
    for (uint32_t w : worker_counts) {
      sweep.points.push_back(MeasurePointStable(
          kind, wl, io_latency_us, io_transfer_us, /*prefetch=*/true, w));
    }
    const double base_qps = sweep.points[0].qps;
    for (const RunPoint& p : sweep.points) {
      char mode[32];
      if (!p.prefetch) {
        std::snprintf(mode, sizeof mode, "off");
      } else if (p.workers == 0) {
        std::snprintf(mode, sizeof mode, "on (sync)");
      } else {
        std::snprintf(mode, sizeof mode, "on (%uw)", p.workers);
      }
      std::printf("%-10s %-14s %9.3f %11.0f %8.2fx %11.1f %6.1f%%\n",
                  StrategyKindName(kind), mode, p.seconds, p.qps,
                  base_qps > 0 ? p.qps / base_qps : 0.0, p.avg_io, p.seq_pct);
    }
    sweeps.push_back(std::move(sweep));
  }
  if (json_path != nullptr) {
    WriteJson(json_path, io_latency_us, io_transfer_us, wl, sweeps);
    std::printf("\nwrote %s\n", json_path);
  }
}

}  // namespace
}  // namespace bench
}  // namespace objrep

int main(int argc, char** argv) {
  uint32_t io_latency_us = 100;
  uint32_t io_transfer_us = 50;
  bool quick = false;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--io-latency-us=", 16) == 0) {
      io_latency_us =
          static_cast<uint32_t>(std::strtoul(argv[i] + 16, nullptr, 10));
    } else if (std::strncmp(argv[i], "--io-transfer-us=", 17) == 0) {
      io_transfer_us =
          static_cast<uint32_t>(std::strtoul(argv[i] + 17, nullptr, 10));
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json_path = "BENCH_throughput.json";
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--io-latency-us=N] [--io-transfer-us=N] "
                   "[--quick] [--json[=PATH]]\n",
                   argv[0]);
      return 2;
    }
  }
  objrep::bench::PrintTitle(
      "I/O pipeline: vectored reads + read-ahead on a seek-charging disk",
      "identical I/O counts; seeks coalesce and overlap query compute");
  objrep::bench::RunBench(io_latency_us, io_transfer_us, quick, json_path);
  return 0;
}
