// Cost-model validation: analytic estimates vs measured I/O, and the
// advisor's picks vs the measured winner across NumTop — automating the
// paper's §3.1 observation that "the optimal joining strategy depends on
// the sizes of the relations involved".
#include "bench/bench_util.h"
#include "core/cost_model.h"

using namespace objrep;
using namespace objrep::bench;

int main() {
  PrintTitle("Cost model: estimates, advisor picks, and the oracle",
             "ShareFactor=5, Pr(UPDATE)=0  (DFS/BFS only: the modelled pair)");

  DatabaseSpec spec;
  std::unique_ptr<ComplexDatabase> shape_db;
  OBJREP_CHECK(BuildDatabase(spec, &shape_db).ok());
  DbShape shape = DbShape::Of(*shape_db);
  shape_db.reset();

  std::printf("%8s %10s %10s %10s %10s %8s %8s %6s\n", "NumTop", "DFS meas",
              "DFS est", "BFS meas", "BFS est", "advisor", "oracle", "ok?");
  int agree = 0, points = 0;
  for (uint32_t nt : {1u, 5u, 20u, 50u, 100u, 200u, 500u, 2000u, 10000u}) {
    WorkloadSpec wl;
    wl.num_top = nt;
    wl.pr_update = 0.0;
    wl.num_queries = AutoNumQueries(nt, 200);
    wl.seed = 31000 + nt;
    double dfs_meas =
        MeasureStrategy(spec, wl, StrategyKind::kDfs).AvgRetrieveIo();
    double bfs_meas =
        MeasureStrategy(spec, wl, StrategyKind::kBfs).AvgRetrieveIo();
    double dfs_est = EstimateRetrieveIo(StrategyKind::kDfs, shape, nt);
    double bfs_est = EstimateRetrieveIo(StrategyKind::kBfs, shape, nt);
    StrategyKind advisor = ChooseStrategy(shape, nt);
    StrategyKind oracle =
        dfs_meas <= bfs_meas ? StrategyKind::kDfs : StrategyKind::kBfs;
    bool ok = advisor == oracle;
    agree += ok ? 1 : 0;
    ++points;
    std::printf("%8u %10.1f %10.1f %10.1f %10.1f %8s %8s %6s\n", nt,
                dfs_meas, dfs_est, bfs_meas, bfs_est,
                StrategyKindName(advisor), StrategyKindName(oracle),
                ok ? "yes" : "NO");
  }
  PrintRule();
  std::printf("advisor agreed with the measured winner on %d/%d points\n",
              agree, points);
  std::printf("model-predicted DFS/BFS crossover: NumTop ~= %u "
              "(measured: ~46, paper: ~50)\n",
              PredictDfsBfsCrossover(shape));
  return 0;
}
