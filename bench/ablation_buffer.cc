// Ablation A2 (DESIGN.md): buffer-pool size.
//
// The paper fixes a 100-page INGRES buffer and notes that results scale to
// larger databases "provided a proportionally larger cache and main memory
// buffer is used". This ablation shows how the Figure 3 comparison shifts
// with the buffer: more memory flattens DFS's random probes faster than it
// helps BFS's scans.
#include "bench/bench_util.h"

using namespace objrep;
using namespace objrep::bench;

int main() {
  PrintTitle("Ablation: buffer-pool size",
             "ShareFactor=5, Pr(UPDATE)=0, NumTop in {50, 1000}");

  for (uint32_t nt : {50u, 1000u}) {
    std::printf("\nNumTop = %u\n", nt);
    std::printf("%10s %12s %12s %16s\n", "buffer", "DFS", "BFS", "DFS/BFS");
    for (uint32_t pages : {25u, 50u, 100u, 200u, 400u, 800u}) {
      DatabaseSpec spec;
      spec.buffer_pages = pages;
      WorkloadSpec wl;
      wl.num_top = nt;
      wl.pr_update = 0.0;
      wl.num_queries = AutoNumQueries(nt, 200);
      wl.seed = 777 + pages;
      double dfs =
          MeasureStrategy(spec, wl, StrategyKind::kDfs).AvgIoPerQuery();
      double bfs =
          MeasureStrategy(spec, wl, StrategyKind::kBfs).AvgIoPerQuery();
      std::printf("%10u %12.1f %12.1f %16.2f\n", pages, dfs, bfs,
                  bfs > 0 ? dfs / bfs : 0);
    }
  }
  PrintRule();
  std::printf(
      "Expected: both strategies improve with memory; DFS improves faster\n"
      "(its random probes turn into buffer hits), so the DFS/BFS crossover\n"
      "moves to higher NumTop as the buffer grows.\n");
  return 0;
}
