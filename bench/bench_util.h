// Shared helpers for the experiment harnesses in bench/.
//
// Each figure/table binary sweeps parameters, and for every point builds a
// fresh database (same seed => identical data across strategies), generates
// a deterministic query sequence, and measures average I/O per query —
// exactly the paper's methodology (§4).
#ifndef OBJREP_BENCH_BENCH_UTIL_H_
#define OBJREP_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/runner.h"
#include "core/strategy.h"
#include "objstore/database.h"
#include "objstore/workload.h"

namespace objrep {
namespace bench {

/// Builds a fresh database, generates the workload, and runs it under one
/// strategy. Aborts on any Status failure (harness code).
inline RunResult MeasureStrategy(const DatabaseSpec& db_spec,
                                 const WorkloadSpec& wl_spec,
                                 StrategyKind kind,
                                 const StrategyOptions& options = {}) {
  std::unique_ptr<ComplexDatabase> db;
  Status s = BuildDatabase(db_spec, &db);
  OBJREP_CHECK_MSG(s.ok(), s.ToString().c_str());
  std::vector<Query> queries;
  s = GenerateWorkload(wl_spec, *db, &queries);
  OBJREP_CHECK_MSG(s.ok(), s.ToString().c_str());
  std::unique_ptr<Strategy> strategy;
  s = MakeStrategy(kind, db.get(), options, &strategy);
  OBJREP_CHECK_MSG(s.ok(), s.ToString().c_str());
  RunResult result;
  s = RunWorkload(strategy.get(), db.get(), queries, &result);
  OBJREP_CHECK_MSG(s.ok(), s.ToString().c_str());
  return result;
}

/// Query count that keeps per-point work bounded while averaging enough:
/// roughly constant total touched subobjects across NumTop values.
inline uint32_t AutoNumQueries(uint32_t num_top, uint32_t budget = 400) {
  uint32_t n = 1500000u / (num_top * 5u + 500u);
  return std::clamp<uint32_t>(n, 24u, budget);
}

/// Marks the database spec to carry every structure a strategy set needs.
inline DatabaseSpec WithStructuresFor(DatabaseSpec spec,
                                      const std::vector<StrategyKind>& kinds) {
  for (StrategyKind k : kinds) {
    if (k == StrategyKind::kDfsCache || k == StrategyKind::kSmart) {
      spec.build_cache = true;
    }
    if (k == StrategyKind::kDfsClust) spec.build_cluster = true;
  }
  return spec;
}

// --- Table printing ---

inline void PrintRule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void PrintTitle(const std::string& title,
                       const std::string& subtitle = "") {
  PrintRule();
  std::printf("%s\n", title.c_str());
  if (!subtitle.empty()) std::printf("%s\n", subtitle.c_str());
  PrintRule();
}

}  // namespace bench
}  // namespace objrep

#endif  // OBJREP_BENCH_BENCH_UTIL_H_
