// MVCC vs two-phase locking under a contended update mix (DESIGN.md §15):
// fixed strategy, swept thread count and update probability.
//
// K closed-loop client threads drive one ComplexDatabase through the
// concurrent runner for a timed window, once in 2PL mode (table S/X
// locks, write-through WAL transactions per update) and once in MVCC mode
// (snapshot retrieves without any table lock, version-store commits with
// one logical WAL record). Same database shape, same query stream, same
// simulated device: the sweep isolates what the concurrency control
// protocol costs.
//
// Under 2PL every update X-locks the single ChildRel: it serializes
// behind other updates and stalls every retrieve for the duration of its
// write-through commit (per-target page installs plus the log sync, all
// at --io-latency-us a page). Under MVCC retrieves never wait and an
// update is a version install plus one small logical record and sync, so
// device waits overlap across clients even on one core. The committed
// floor (tools/check_bench_json.py --mvcc): at 8 threads and
// Pr(UPDATE) = 0.3, MVCC aggregate retrieve throughput >= 2x 2PL's.
//
// The MVCC fold (applying versions to base pages) runs after the timed
// window closes — it is quiescent-point maintenance, not per-query work,
// and the runner excludes it from the measured wall time on both sides.
//
//   $ ./build/bench/mvcc_contention
//   $ ./build/bench/mvcc_contention --quick       (CI smoke: no floor point)
//   $ ./build/bench/mvcc_contention --json=BENCH_mvcc.json
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "exec/concurrent_runner.h"
#include "objstore/database.h"
#include "objstore/workload.h"

namespace objrep {
namespace bench {
namespace {

DatabaseSpec ContentionSpec(bool mvcc, uint32_t io_latency_us) {
  DatabaseSpec spec;
  // Well beyond the buffer so retrieves keep paying device waits — the
  // resource 2PL's X locks serialize and MVCC overlaps.
  spec.num_parents = 4000;
  spec.size_unit = 5;
  spec.use_factor = 1;
  spec.overlap_factor = 1;
  // One child relation: the worst case for table-granularity X locks and
  // therefore the honest baseline for the lock-scope claim.
  spec.num_child_rels = 1;
  spec.buffer_pages = 96;
  spec.seed = 137;
  spec.enable_wal = true;
  spec.enable_mvcc = mvcc;
  spec.io_latency_us = io_latency_us;
  return spec;
}

WorkloadSpec MixSpec(double pr_update) {
  WorkloadSpec wl;
  wl.num_queries = 400;
  // OLTP shape: point-ish retrieves racing batch updates. Wide retrieves
  // would bury the protocol cost under their own object I/O; a 2-object
  // retrieve against a 16-target update keeps both sides visible.
  wl.num_top = 2;
  wl.pr_update = pr_update;
  wl.update_batch = 16;
  wl.seed = 131;
  return wl;
}

struct ModeResult {
  double retrieves_per_sec = 0;
  double queries_per_sec = 0;
};

ModeResult RunMode(bool mvcc, uint32_t threads, double pr_update,
                   double duration_seconds, uint32_t io_latency_us) {
  std::unique_ptr<ComplexDatabase> db;
  Status s = BuildDatabase(ContentionSpec(mvcc, io_latency_us), &db);
  OBJREP_CHECK_MSG(s.ok(), s.ToString().c_str());
  std::vector<Query> queries;
  s = GenerateWorkload(MixSpec(pr_update), *db, &queries);
  OBJREP_CHECK_MSG(s.ok(), s.ToString().c_str());

  ConcurrentRunOptions options;
  options.num_threads = threads;
  options.seed = 17;
  // Warmup at a fraction of the window settles pools and caches.
  options.duration_seconds = duration_seconds * 0.25;
  ConcurrentRunResult warmup;
  s = RunConcurrentWorkload(StrategyKind::kDfs, {}, db.get(), queries,
                            options, &warmup);
  OBJREP_CHECK_MSG(s.ok(), s.ToString().c_str());

  options.duration_seconds = duration_seconds;
  ConcurrentRunResult result;
  s = RunConcurrentWorkload(StrategyKind::kDfs, {}, db.get(), queries,
                            options, &result);
  OBJREP_CHECK_MSG(s.ok(), s.ToString().c_str());

  ModeResult out;
  if (result.wall_seconds > 0) {
    out.retrieves_per_sec =
        static_cast<double>(result.combined.num_retrieves) /
        result.wall_seconds;
    out.queries_per_sec = result.queries_per_sec;
  }
  return out;
}

struct SweepPoint {
  uint32_t threads;
  double pr_update;
  ModeResult twopl;
  ModeResult mvcc;
  double retrieve_speedup;  // mvcc retrieves/s over 2PL retrieves/s
};

void WriteJson(const char* path, double duration_seconds,
               uint32_t io_latency_us, const std::vector<SweepPoint>& pts) {
  std::FILE* f = std::fopen(path, "w");
  OBJREP_CHECK_MSG(f != nullptr, "cannot open JSON output path");
  std::fprintf(f,
               "{\n  \"bench\": \"mvcc_contention\",\n"
               "  \"strategy\": \"DFS\",\n"
               "  \"duration_seconds\": %.3f,\n  \"io_latency_us\": %u,\n"
               "  \"points\": [",
               duration_seconds, io_latency_us);
  for (size_t i = 0; i < pts.size(); ++i) {
    const SweepPoint& p = pts[i];
    std::fprintf(
        f,
        "%s\n    {\"threads\": %u, \"pr_update\": %.2f, "
        "\"twopl_retrieves_per_sec\": %.2f, "
        "\"twopl_queries_per_sec\": %.2f, "
        "\"mvcc_retrieves_per_sec\": %.2f, "
        "\"mvcc_queries_per_sec\": %.2f, "
        "\"retrieve_speedup\": %.3f}",
        i == 0 ? "" : ",", p.threads, p.pr_update,
        p.twopl.retrieves_per_sec, p.twopl.queries_per_sec,
        p.mvcc.retrieves_per_sec, p.mvcc.queries_per_sec,
        p.retrieve_speedup);
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
}

void RunSweep(double duration_seconds, uint32_t io_latency_us, bool quick,
              const char* json_path) {
  // The quick sweep stays below the floor point (8 threads, PrU 0.3):
  // CI smoke validates the harness; the committed JSON carries the claim.
  const std::vector<uint32_t> thread_counts =
      quick ? std::vector<uint32_t>{1, 4} : std::vector<uint32_t>{1, 4, 8};
  const std::vector<double> mixes =
      quick ? std::vector<double>{0.0, 0.3}
            : std::vector<double>{0.0, 0.1, 0.3, 0.5};

  std::printf("%-8s %10s %14s %14s %10s\n", "threads", "pr_upd",
              "2pl ret/s", "mvcc ret/s", "speedup");
  std::vector<SweepPoint> points;
  for (uint32_t k : thread_counts) {
    for (double pr : mixes) {
      SweepPoint p;
      p.threads = k;
      p.pr_update = pr;
      p.twopl = RunMode(false, k, pr, duration_seconds, io_latency_us);
      p.mvcc = RunMode(true, k, pr, duration_seconds, io_latency_us);
      p.retrieve_speedup =
          p.twopl.retrieves_per_sec > 0
              ? p.mvcc.retrieves_per_sec / p.twopl.retrieves_per_sec
              : 0.0;
      points.push_back(p);
      std::printf("%-8u %10.2f %14.0f %14.0f %9.2fx\n", k, pr,
                  p.twopl.retrieves_per_sec, p.mvcc.retrieves_per_sec,
                  p.retrieve_speedup);
    }
  }
  if (json_path != nullptr) {
    WriteJson(json_path, duration_seconds, io_latency_us, points);
    std::printf("\nwrote %s\n", json_path);
  }
}

}  // namespace
}  // namespace bench
}  // namespace objrep

int main(int argc, char** argv) {
  double duration = 2.0;
  uint32_t io_latency_us = 100;
  bool quick = false;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--duration=", 11) == 0) {
      duration = std::strtod(argv[i] + 11, nullptr);
    } else if (std::strncmp(argv[i], "--io-latency-us=", 16) == 0) {
      io_latency_us =
          static_cast<uint32_t>(std::strtoul(argv[i] + 16, nullptr, 10));
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
      duration = 0.4;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json_path = "BENCH_mvcc.json";
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--duration=S] [--io-latency-us=N] [--quick] "
                   "[--json[=PATH]]\n",
                   argv[0]);
      return 2;
    }
  }
  objrep::bench::PrintTitle(
      "MVCC vs 2PL under contention: swept threads and update mix",
      "closed-loop clients; snapshot reads vs table S/X locks");
  objrep::bench::RunSweep(duration, io_latency_us, quick, json_path);
  return 0;
}
