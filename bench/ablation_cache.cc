// Ablation A1 (DESIGN.md): cache sizing and admission policy for DFSCACHE.
//
// The paper fixes SizeCache = 1000 units ("about 10% of a typical database
// size") and does not specify the admission policy under a full cache; we
// default to LRU eviction and compare it against rejecting new units.
#include "bench/bench_util.h"

using namespace objrep;
using namespace objrep::bench;

int main() {
  PrintTitle("Ablation: cache size and admission policy (DFSCACHE)",
             "ShareFactor=5 (2000 units), NumTop=10, Pr(UPDATE)=0.1");

  std::printf("%10s %12s %12s %14s %14s\n", "SizeCache", "LRU-evict",
              "reject-full", "LRU hit-rate", "rej hit-rate");
  for (uint32_t cache_units : {100u, 250u, 500u, 1000u, 2000u, 4000u}) {
    double io[2], hit[2];
    int i = 0;
    for (CacheAdmission adm :
         {CacheAdmission::kEvictLru, CacheAdmission::kRejectWhenFull}) {
      DatabaseSpec spec;
      spec.build_cache = true;
      spec.size_cache = cache_units;
      spec.cache_admission = adm;
      WorkloadSpec wl;
      wl.num_top = 10;
      wl.pr_update = 0.1;
      wl.num_queries = 400;
      wl.seed = 4242;
      RunResult r = MeasureStrategy(spec, wl, StrategyKind::kDfsCache);
      io[i] = r.AvgIoPerQuery();
      uint64_t probes = r.cache_stats.hits + r.cache_stats.misses;
      hit[i] = probes ? 100.0 * r.cache_stats.hits / probes : 0;
      ++i;
    }
    std::printf("%10u %12.1f %12.1f %13.1f%% %13.1f%%\n", cache_units, io[0],
                io[1], hit[0], hit[1]);
  }
  std::printf(
      "\n-- Skewed access (80%% of retrieves in the hottest 10%% of objects)"
      " --\n");
  std::printf("%10s %12s %12s %14s %14s\n", "SizeCache", "LRU-evict",
              "reject-full", "LRU hit-rate", "rej hit-rate");
  for (uint32_t cache_units : {100u, 250u, 500u, 1000u}) {
    double io[2], hit[2];
    int i = 0;
    for (CacheAdmission adm :
         {CacheAdmission::kEvictLru, CacheAdmission::kRejectWhenFull}) {
      DatabaseSpec spec;
      spec.build_cache = true;
      spec.size_cache = cache_units;
      spec.cache_admission = adm;
      WorkloadSpec wl;
      wl.num_top = 10;
      wl.pr_update = 0.1;
      wl.num_queries = 400;
      wl.seed = 4243;
      wl.hot_access_prob = 0.8;
      wl.hot_region_fraction = 0.1;
      RunResult r = MeasureStrategy(spec, wl, StrategyKind::kDfsCache);
      io[i] = r.AvgIoPerQuery();
      uint64_t probes = r.cache_stats.hits + r.cache_stats.misses;
      hit[i] = probes ? 100.0 * r.cache_stats.hits / probes : 0;
      ++i;
    }
    std::printf("%10u %12.1f %12.1f %13.1f%% %13.1f%%\n", cache_units, io[0],
                io[1], hit[0], hit[1]);
  }

  PrintRule();
  std::printf(
      "Finding: hit rate tracks SizeCache/NumUnits and is nearly identical\n"
      "under both policies (uniform or hot/cold accesses; invalidations let\n"
      "even the frozen cache slowly re-adapt) — but every LRU eviction pays\n"
      "a hash-relation delete+insert, so reject-when-full wins on I/O until\n"
      "the cache holds the whole working set. Churn, not retention, is the\n"
      "cost that matters at the paper's cache size.\n");
  return 0;
}
