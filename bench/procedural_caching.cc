// Procedural-representation caching (paper §2.3 / [JHIN88], the matrix's
// first column): EXEC vs outside caching vs inside caching.
//
// Expected ([JHIN88], summarized in §2.3 and §3.2 of this paper):
// "caching works, and outside caching is, in general, better than inside
// caching. This is especially true when the size of the cache is limited
// and there is some sharing of subobjects." The parameters that matter are
// Pr(UPDATE), the level of sharing, and the cache size.
#include "bench/bench_util.h"
#include "core/procedural.h"
#include "util/random.h"

using namespace objrep;
using namespace objrep::bench;

namespace {

struct ProcResult {
  double avg_io;
};

ProcResult RunProc(const DatabaseSpec& spec, const WorkloadSpec& wl,
                   ProcStrategy strategy) {
  std::unique_ptr<ProceduralDatabase> db;
  Status s = ProceduralDatabase::Build(spec, &db);
  OBJREP_CHECK_MSG(s.ok(), s.ToString().c_str());
  // Same query shapes as GenerateWorkload, produced against the
  // procedural database's relations.
  Rng rng(wl.seed);
  uint64_t total = 0;
  const uint32_t num_children = spec.num_children_total();
  for (uint32_t i = 0; i < wl.num_queries; ++i) {
    Query q;
    IoCounters before = db->disk()->counters();
    if (rng.Bernoulli(wl.pr_update)) {
      q.kind = Query::Kind::kUpdate;
      for (uint32_t j = 0; j < wl.update_batch; ++j) {
        q.update_targets.push_back(
            Oid{1, static_cast<uint32_t>(rng.Uniform(num_children))});
      }
      q.new_ret1 = static_cast<int32_t>(rng.Uniform(1000000));
      OBJREP_CHECK(db->ExecuteUpdate(q, strategy).ok());
    } else {
      q.kind = Query::Kind::kRetrieve;
      q.num_top = wl.num_top;
      q.lo_parent = static_cast<uint32_t>(
          rng.Uniform(spec.num_parents - wl.num_top + 1));
      q.attr_index = static_cast<int>(rng.Uniform(3));
      RetrieveResult r;
      OBJREP_CHECK(db->ExecuteRetrieve(q, strategy, &r).ok());
    }
    total += (db->disk()->counters() - before).total();
  }
  return ProcResult{static_cast<double>(total) / wl.num_queries};
}

}  // namespace

int main() {
  PrintTitle("Procedural representation: caching alternatives ([JHIN88])",
             "|ParentRel|=10000, SizeUnit=5, NumTop=4, SizeCache=1000 units");

  std::printf("-- Pr(UPDATE) sweep (UseFactor=5) --\n");
  std::printf("%10s %10s %12s %12s %12s %12s\n", "Pr(UPD)", "EXEC",
              "EXEC-IDX", "CACHE-VAL", "CACHE-OIDS", "CACHE-IN");
  for (double pr : {0.0, 0.1, 0.3, 0.6, 0.9}) {
    DatabaseSpec spec;
    spec.use_factor = 5;
    spec.build_cache = true;
    spec.build_tag_index = true;
    WorkloadSpec wl;
    wl.num_top = 4;
    wl.pr_update = pr;
    wl.num_queries = 150;
    wl.seed = 81;
    double exec = RunProc(spec, wl, ProcStrategy::kExec).avg_io;
    double indexed = RunProc(spec, wl, ProcStrategy::kExecIndexed).avg_io;
    double outside = RunProc(spec, wl, ProcStrategy::kCacheOutside).avg_io;
    double oids = RunProc(spec, wl, ProcStrategy::kCacheOids).avg_io;
    double inside = RunProc(spec, wl, ProcStrategy::kCacheInside).avg_io;
    std::printf("%10.2f %10.1f %12.1f %12.1f %12.1f %12.1f\n", pr, exec,
                indexed, outside, oids, inside);
  }

  std::printf("\n-- Sharing sweep (Pr(UPDATE)=0.1) --\n");
  std::printf("%10s %10s %14s %14s\n", "UseFactor", "EXEC", "CACHE-OUT",
              "CACHE-IN");
  for (uint32_t use : {1u, 5u, 20u}) {
    DatabaseSpec spec;
    spec.use_factor = use;
    spec.build_cache = true;
    WorkloadSpec wl;
    wl.num_top = 4;
    wl.pr_update = 0.1;
    wl.num_queries = 150;
    wl.seed = 82;
    double exec = RunProc(spec, wl, ProcStrategy::kExec).avg_io;
    double outside = RunProc(spec, wl, ProcStrategy::kCacheOutside).avg_io;
    double inside = RunProc(spec, wl, ProcStrategy::kCacheInside).avg_io;
    std::printf("%10u %10.1f %14.1f %14.1f\n", use, exec, outside, inside);
  }

  std::printf("\n-- Cache-size sweep (UseFactor=5, Pr(UPDATE)=0.1) --\n");
  std::printf("%10s %14s %14s\n", "SizeCache", "CACHE-OUT", "CACHE-IN");
  for (uint32_t cache_units : {50u, 200u, 1000u, 2000u}) {
    DatabaseSpec spec;
    spec.use_factor = 5;
    spec.build_cache = true;
    spec.size_cache = cache_units;
    WorkloadSpec wl;
    wl.num_top = 4;
    wl.pr_update = 0.1;
    wl.num_queries = 150;
    wl.seed = 83;
    double outside = RunProc(spec, wl, ProcStrategy::kCacheOutside).avg_io;
    double inside = RunProc(spec, wl, ProcStrategy::kCacheInside).avg_io;
    std::printf("%10u %14.1f %14.1f\n", cache_units, outside, inside);
  }
  PrintRule();
  std::printf(
      "Expected ([JHIN88]): caching beats EXEC except at very high\n"
      "Pr(UPDATE); outside caching >= inside caching, the gap widening with\n"
      "sharing (shared entries) and with a limited cache. A secondary index\n"
      "on the predicate attribute (EXEC-IDX) collapses the stored-query\n"
      "scan to a few probes - caching pays off precisely when procedures\n"
      "are expensive to run. Cached OIDs (2.3's other box) cost SizeUnit\n"
      "probes per hit instead of one fetch, but value updates never\n"
      "invalidate them - so they edge ahead of cached values once\n"
      "Pr(UPDATE) rises (and would win outright under update-heavy mixes\n"
      "with cheaper stored queries).\n");
  return 0;
}
