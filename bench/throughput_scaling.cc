// Throughput scaling of the concurrent execution engine (src/exec/).
//
// For each strategy, builds one cache-resident database (the buffer pool
// holds the whole working set, so after a sequential warmup pass every
// fetch is a hit and the hot path is the sharded page-table latch), then
// sweeps 1..16 worker threads in timed mode and reports queries/sec,
// speedup over 1 thread, and latency percentiles. On a multicore host the
// read-only sweep should scale near-linearly to the core count (>= 4x at
// 8 threads); on a single core it degenerates to ~1x, which is a property
// of the machine, not the engine.
//
//   $ ./build/bench/throughput_scaling
//   $ ./build/bench/throughput_scaling --duration=1.0
//   $ ./build/bench/throughput_scaling --io-latency-us=50
//
// --io-latency-us simulates device latency: every physical page I/O
// sleeps that long *outside* the DiskManager latch, so concurrent
// sessions overlap their I/O stalls exactly as real clients overlap
// device waits. With a cold pool this shows I/O-bound scaling even on
// one core.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "bench/bench_util.h"
#include "exec/concurrent_runner.h"
#include "obs/trace.h"

namespace objrep {
namespace bench {
namespace {

DatabaseSpec CacheResidentSpec() {
  DatabaseSpec spec;
  spec.num_parents = 300;
  spec.size_unit = 5;
  spec.use_factor = 5;
  spec.overlap_factor = 1;
  spec.num_child_rels = 2;
  spec.buffer_pages = 2048;  // whole database fits: reads hit after warmup
  spec.build_cache = true;
  spec.build_cluster = true;
  spec.build_join_index = true;
  spec.size_cache = 60;
  spec.cache_buckets = 64;
  spec.seed = 17;
  return spec;
}

WorkloadSpec ReadOnlySpec() {
  WorkloadSpec wl;
  wl.num_queries = 200;
  wl.num_top = 12;
  wl.pr_update = 0.0;
  wl.seed = 29;
  return wl;
}

struct SweepPoint {
  StrategyKind kind;
  uint32_t threads;
  double qps;
  double speedup;
  double p50_ms, p95_ms, p99_ms;
};

void WriteJson(const char* path, double duration_seconds,
               uint32_t io_latency_us, const std::vector<SweepPoint>& pts) {
  std::FILE* f = std::fopen(path, "w");
  OBJREP_CHECK_MSG(f != nullptr, "cannot open JSON output path");
  std::fprintf(f,
               "{\n  \"bench\": \"throughput_scaling\",\n"
               "  \"duration_seconds\": %.3f,\n  \"io_latency_us\": %u,\n"
               "  \"points\": [",
               duration_seconds, io_latency_us);
  for (size_t i = 0; i < pts.size(); ++i) {
    const SweepPoint& p = pts[i];
    std::fprintf(f,
                 "%s\n    {\"strategy\": \"%s\", \"threads\": %u, "
                 "\"queries_per_sec\": %.2f, \"speedup\": %.3f, "
                 "\"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f}",
                 i == 0 ? "" : ",", StrategyKindName(p.kind), p.threads,
                 p.qps, p.speedup, p.p50_ms, p.p95_ms, p.p99_ms);
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
}

void RunSweep(double duration_seconds, uint32_t io_latency_us,
              const char* json_path) {
  const std::vector<StrategyKind> kinds = {
      StrategyKind::kDfs,          StrategyKind::kBfs,
      StrategyKind::kBfsNoDup,     StrategyKind::kDfsCache,
      StrategyKind::kDfsClust,     StrategyKind::kSmart,
      StrategyKind::kDfsClustCache, StrategyKind::kBfsJoinIndex,
      StrategyKind::kBfsHash};
  const std::vector<uint32_t> thread_counts = {1, 2, 4, 8, 16};

  std::printf("%-16s %8s %12s %9s %10s %10s %10s\n", "strategy", "threads",
              "queries/s", "speedup", "p50 ms", "p95 ms", "p99 ms");
  std::vector<SweepPoint> points;
  for (StrategyKind kind : kinds) {
    std::unique_ptr<ComplexDatabase> db;
    Status s = BuildDatabase(CacheResidentSpec(), &db);
    OBJREP_CHECK_MSG(s.ok(), s.ToString().c_str());
    db->disk->set_io_latency_us(io_latency_us);
    std::vector<Query> queries;
    s = GenerateWorkload(ReadOnlySpec(), *db, &queries);
    OBJREP_CHECK_MSG(s.ok(), s.ToString().c_str());

    // Warmup: one sequential pass faults the working set into the pool
    // (and the subobject cache, for the caching strategies), so the timed
    // sweep measures the steady cache-resident state.
    std::unique_ptr<Strategy> warm;
    s = MakeStrategy(kind, db.get(), {}, &warm);
    OBJREP_CHECK_MSG(s.ok(), s.ToString().c_str());
    RunResult warm_result;
    s = RunWorkload(warm.get(), db.get(), queries, &warm_result);
    OBJREP_CHECK_MSG(s.ok(), s.ToString().c_str());

    double base_qps = 0;
    for (uint32_t k : thread_counts) {
      ConcurrentRunOptions opts;
      opts.num_threads = k;
      opts.duration_seconds = duration_seconds;
      opts.seed = 101;
      ConcurrentRunResult r;
      s = RunConcurrentWorkload(kind, {}, db.get(), queries, opts, &r);
      OBJREP_CHECK_MSG(s.ok(), s.ToString().c_str());
      if (k == 1) base_qps = r.queries_per_sec;
      const double speedup =
          base_qps > 0 ? r.queries_per_sec / base_qps : 0.0;
      std::printf("%-16s %8u %12.0f %8.2fx %10.3f %10.3f %10.3f\n",
                  StrategyKindName(kind), k, r.queries_per_sec, speedup,
                  r.latency.p50_us / 1000.0, r.latency.p95_us / 1000.0,
                  r.latency.p99_us / 1000.0);
      points.push_back({kind, k, r.queries_per_sec, speedup,
                        r.latency.p50_us / 1000.0, r.latency.p95_us / 1000.0,
                        r.latency.p99_us / 1000.0});
    }
  }
  if (json_path != nullptr) {
    WriteJson(json_path, duration_seconds, io_latency_us, points);
    std::printf("\nwrote %s\n", json_path);
  }
}

}  // namespace
}  // namespace bench
}  // namespace objrep

int main(int argc, char** argv) {
  double duration = 0.25;
  uint32_t io_latency_us = 0;
  const char* json_path = nullptr;
  const char* trace_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--duration=", 11) == 0) {
      duration = std::strtod(argv[i] + 11, nullptr);
    } else if (std::strncmp(argv[i], "--io-latency-us=", 16) == 0) {
      io_latency_us = static_cast<uint32_t>(
          std::strtoul(argv[i] + 16, nullptr, 10));
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json_path = "BENCH_throughput.json";
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      // Tracing on for the whole sweep: this is the overhead yardstick —
      // enabled-vs-disabled throughput at 8 threads must stay within 5%.
      trace_path = argv[i] + 12;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--duration=S] [--io-latency-us=N] "
                   "[--json[=PATH]] [--trace-out=PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (trace_path != nullptr) objrep::Trace::SetEnabled(true);
  objrep::bench::PrintTitle(
      "Throughput scaling: concurrent sessions over one shared database",
      "cache-resident read-only stream; timed sweep per (strategy, K)");
  objrep::bench::RunSweep(duration, io_latency_us, json_path);
  if (trace_path != nullptr) {
    objrep::Status s = objrep::Trace::FlushToFile(trace_path);
    if (!s.ok()) {
      std::fprintf(stderr, "trace flush failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", trace_path);
  }
  return 0;
}
