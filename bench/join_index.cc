// Join index ([VALD86], the paper's §2 citation for complex-object
// implementation techniques at MCC): BFS vs BFS over a dense join index.
//
// The join index replaces the OID-collection scan over ~200-byte ParentRel
// tuples with a scan over ~20-byte (object, position) -> OID entries. Its
// benefit is confined to ParCost — sort and merge join are unchanged — so
// it matters most when NumTop is large and the projected attribute list is
// narrow (here: OIDs only).
#include "bench/bench_util.h"

using namespace objrep;
using namespace objrep::bench;

int main() {
  PrintTitle("BFS vs BFS over a join index ([VALD86])",
             "ShareFactor=5, Pr(UPDATE)=0; ParCost is where the index acts");

  std::printf("%8s | %9s %9s | %9s %9s | %9s %9s\n", "NumTop", "BFS",
              "BFS-JI", "BFS par", "JI par", "BFS child", "JI child");
  for (uint32_t nt : {10u, 100u, 1000u, 10000u}) {
    DatabaseSpec spec;
    spec.build_join_index = true;
    WorkloadSpec wl;
    wl.num_top = nt;
    wl.pr_update = 0.0;
    wl.num_queries = AutoNumQueries(nt, 150);
    wl.seed = 46000 + nt;
    RunResult bfs = MeasureStrategy(spec, wl, StrategyKind::kBfs);
    RunResult ji = MeasureStrategy(spec, wl, StrategyKind::kBfsJoinIndex);
    std::printf("%8u | %9.1f %9.1f | %9.1f %9.1f | %9.1f %9.1f\n", nt,
                bfs.AvgRetrieveIo(), ji.AvgRetrieveIo(), bfs.AvgParCost(),
                ji.AvgParCost(), bfs.AvgChildCost(), ji.AvgChildCost());
  }
  PrintRule();
  std::printf(
      "Expected: identical ChildCost; the join index divides ParCost by\n"
      "roughly the tuple-width ratio (~10x), which shows at high NumTop\n"
      "where the collection scan is a visible share of the query.\n");
  return 0;
}
