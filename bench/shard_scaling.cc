// Scale-out of the horizontally sharded engine (src/shard/, DESIGN.md
// §14): fixed offered concurrency, swept shard count.
//
// K closed-loop client threads drive one ShardedEngine with a mixed
// RETRIEVE/UPDATE stream (the Figure-3 shape plus updates) for a timed
// window, at 1, 2, 4, and 8 shards. The single-shard point is the
// baseline: same engine code path, one lock manager, one WAL, one buffer
// pool — so every update X-locks the only ChildRel instance and stalls
// the whole stream for its I/O. With N shards an update only X-locks the
// holder shards and each shard commits on its own WAL, so independent
// clients overlap; with --io-latency-us > 0 the stalls are real device
// waits and the aggregate retrieve throughput should scale out (>= 1.6x
// at 2 shards, >= 2.5x at 4 — the floors tools/check_bench_json.py
// --shard enforces).
//
// Each shard gets the full buffer/cache budget, the scale-out semantics
// of a cluster where every node brings its own memory; the sweep measures
// the whole proposition (partitioned locks + WALs + pools + memory), not
// lock splitting alone.
//
//   $ ./build/bench/shard_scaling
//   $ ./build/bench/shard_scaling --quick          (CI smoke: 1 and 2)
//   $ ./build/bench/shard_scaling --json=BENCH_shard_scaling.json
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/experiment_config.h"
#include "shard/engine.h"
#include "shard/sharded_db.h"

namespace objrep {
namespace bench {
namespace {

DatabaseSpec ShardBenchSpec() {
  DatabaseSpec spec;
  // Large enough that even an 8-shard split leaves each shard's slice
  // well beyond its buffer: every point stays I/O-bound and the sweep
  // measures parallelism (per-shard locks, WALs, overlapping device
  // waits), not the aggregate-memory windfall of N pools.
  spec.num_parents = 20000;
  spec.size_unit = 5;
  // ShareFactor 1: private subobjects, the partitionable workload a
  // horizontal deployment exists for. Shared subobjects are replicated to
  // every holder shard and their updates fan out (the oracle tests cover
  // that path); here each update routes to exactly one shard, so the
  // sweep isolates what sharding buys on shardable data.
  spec.use_factor = 1;
  spec.overlap_factor = 1;
  spec.num_child_rels = 1;
  // Below the working set: the single-shard baseline keeps paying
  // physical I/O, and each added shard brings both another lock/WAL
  // domain and another pool.
  spec.buffer_pages = 128;
  spec.seed = 71;
  spec.enable_wal = true;
  return spec;
}

WorkloadSpec MixedSpec() {
  WorkloadSpec wl;
  wl.num_queries = 600;
  wl.num_top = 8;
  wl.pr_update = 0.25;
  wl.update_batch = 4;
  wl.seed = 83;
  return wl;
}

struct WorkerStats {
  uint64_t retrieves = 0;
  uint64_t updates = 0;
};

void ClientLoop(shard::ShardedEngine* engine, StrategyKind kind,
                const std::vector<Query>* queries, size_t start,
                std::atomic<bool>* stop, WorkerStats* out) {
  size_t i = start;
  while (!stop->load(std::memory_order_relaxed)) {
    const Query& q = (*queries)[i++ % queries->size()];
    if (q.kind == Query::Kind::kRetrieve) {
      RetrieveResult result;
      Status s = engine->ExecuteRetrieve(kind, q, &result);
      OBJREP_CHECK_MSG(s.ok(), s.ToString().c_str());
      ++out->retrieves;
    } else {
      Status s = engine->ExecuteUpdate(kind, q);
      OBJREP_CHECK_MSG(s.ok(), s.ToString().c_str());
      ++out->updates;
    }
  }
}

struct SweepPoint {
  uint32_t shards;
  double retrieves_per_sec;
  double queries_per_sec;
  double scaleout;  // retrieves_per_sec / 1-shard retrieves_per_sec
};

void WriteJson(const char* path, StrategyKind kind, uint32_t clients,
               double duration_seconds, uint32_t io_latency_us,
               const std::vector<SweepPoint>& pts) {
  std::FILE* f = std::fopen(path, "w");
  OBJREP_CHECK_MSG(f != nullptr, "cannot open JSON output path");
  std::fprintf(f,
               "{\n  \"bench\": \"shard_scaling\",\n"
               "  \"strategy\": \"%s\",\n  \"clients\": %u,\n"
               "  \"duration_seconds\": %.3f,\n  \"io_latency_us\": %u,\n"
               "  \"points\": [",
               StrategyKindName(kind), clients, duration_seconds,
               io_latency_us);
  for (size_t i = 0; i < pts.size(); ++i) {
    const SweepPoint& p = pts[i];
    std::fprintf(f,
                 "%s\n    {\"shards\": %u, \"retrieves_per_sec\": %.2f, "
                 "\"queries_per_sec\": %.2f, \"scaleout\": %.3f}",
                 i == 0 ? "" : ",", p.shards, p.retrieves_per_sec,
                 p.queries_per_sec, p.scaleout);
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
}

void RunSweep(StrategyKind kind, uint32_t clients, double duration_seconds,
              uint32_t io_latency_us, bool quick, const char* json_path) {
  const std::vector<uint32_t> shard_counts =
      quick ? std::vector<uint32_t>{1, 2} : std::vector<uint32_t>{1, 2, 4, 8};

  std::printf("%-8s %10s %14s %12s %10s\n", "shards", "clients",
              "retrieves/s", "queries/s", "scaleout");
  std::vector<SweepPoint> points;
  double base_rps = 0;
  for (uint32_t n : shard_counts) {
    std::unique_ptr<shard::ShardedDatabase> sdb;
    Status s = shard::BuildShardedDatabase(ShardBenchSpec(), n, &sdb);
    OBJREP_CHECK_MSG(s.ok(), s.ToString().c_str());
    for (const auto& sh : sdb->shards) {
      sh->disk->set_io_latency_us(io_latency_us);
    }
    // The retained reference database gives every shard count the same
    // query stream.
    std::vector<Query> queries;
    s = GenerateWorkload(MixedSpec(), *sdb->reference, &queries);
    OBJREP_CHECK_MSG(s.ok(), s.ToString().c_str());
    shard::ShardedEngine engine(sdb.get(), {});

    // Warmup: one sequential pass over the stream settles the pools
    // before the timed window.
    for (const Query& q : queries) {
      if (q.kind == Query::Kind::kRetrieve) {
        RetrieveResult result;
        s = engine.ExecuteRetrieve(kind, q, &result);
      } else {
        s = engine.ExecuteUpdate(kind, q);
      }
      OBJREP_CHECK_MSG(s.ok(), s.ToString().c_str());
    }

    std::atomic<bool> stop{false};
    std::vector<WorkerStats> stats(clients);
    std::vector<std::thread> threads;
    threads.reserve(clients);
    auto t0 = std::chrono::steady_clock::now();
    for (uint32_t c = 0; c < clients; ++c) {
      threads.emplace_back(ClientLoop, &engine, kind, &queries,
                           static_cast<size_t>(c) * 17, &stop, &stats[c]);
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double>(duration_seconds));
    stop.store(true, std::memory_order_relaxed);
    for (std::thread& t : threads) t.join();
    double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    uint64_t retrieves = 0, total = 0;
    for (const WorkerStats& w : stats) {
      retrieves += w.retrieves;
      total += w.retrieves + w.updates;
    }
    SweepPoint p;
    p.shards = n;
    p.retrieves_per_sec =
        elapsed > 0 ? static_cast<double>(retrieves) / elapsed : 0.0;
    p.queries_per_sec =
        elapsed > 0 ? static_cast<double>(total) / elapsed : 0.0;
    if (n == 1) base_rps = p.retrieves_per_sec;
    p.scaleout = base_rps > 0 ? p.retrieves_per_sec / base_rps : 0.0;
    points.push_back(p);
    std::printf("%-8u %10u %14.0f %12.0f %9.2fx\n", n, clients,
                p.retrieves_per_sec, p.queries_per_sec, p.scaleout);
  }
  if (json_path != nullptr) {
    WriteJson(json_path, kind, clients, duration_seconds, io_latency_us,
              points);
    std::printf("\nwrote %s\n", json_path);
  }
}

}  // namespace
}  // namespace bench
}  // namespace objrep

int main(int argc, char** argv) {
  using objrep::StrategyKind;
  StrategyKind kind = StrategyKind::kDfs;
  uint32_t clients = 16;
  double duration = 2.0;
  uint32_t io_latency_us = 150;
  bool quick = false;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--clients=", 10) == 0) {
      clients = static_cast<uint32_t>(std::strtoul(argv[i] + 10, nullptr, 10));
    } else if (std::strncmp(argv[i], "--duration=", 11) == 0) {
      duration = std::strtod(argv[i] + 11, nullptr);
    } else if (std::strncmp(argv[i], "--io-latency-us=", 16) == 0) {
      io_latency_us =
          static_cast<uint32_t>(std::strtoul(argv[i] + 16, nullptr, 10));
    } else if (std::strncmp(argv[i], "--strategy=", 11) == 0) {
      if (!objrep::ParseStrategyName(argv[i] + 11, &kind).ok()) {
        std::fprintf(stderr, "unknown strategy: %s\n", argv[i] + 11);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
      duration = 0.5;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json_path = "BENCH_shard_scaling.json";
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--clients=K] [--duration=S] "
                   "[--io-latency-us=N] [--strategy=NAME] [--quick] "
                   "[--json[=PATH]]\n",
                   argv[0]);
      return 2;
    }
  }
  if (clients == 0) return 2;
  objrep::bench::PrintTitle(
      "Shard scale-out: fixed offered concurrency, swept shard count",
      "closed-loop mixed stream; per-shard locks, WALs, and pools");
  objrep::bench::RunSweep(kind, clients, duration, io_latency_us, quick,
                          json_path);
  return 0;
}
