// Verifying the shaded box (paper §3.4): "Both clustering and caching
// attempt to improve performance by reducing the number of page accesses
// required to fetch the values of the subobjects. However, the approaches
// taken in the two cases are different. Thus it does not make sense to
// combine the two."
//
// We implement the combination anyway (DFSCLUST+CACHE: a clustered scan
// whose non-local units go through the outside cache) and measure whether
// it ever beats the better of its two parents.
#include "bench/bench_util.h"

using namespace objrep;
using namespace objrep::bench;

int main() {
  PrintTitle("Shaded-box ablation: DFSCLUST + caching combined (paper 3.4)",
             "NumTop=20, SizeCache=1000; sweep ShareFactor x Pr(UPDATE)");

  const std::vector<StrategyKind> kinds = {StrategyKind::kDfsClust,
                                           StrategyKind::kDfsCache,
                                           StrategyKind::kDfsClustCache};
  std::printf("%6s %8s %12s %12s %16s %10s\n", "SF", "Pr(UPD)", "DFSCLUST",
              "DFSCACHE", "DFSCLUST+CACHE", "combo wins?");
  int combo_wins = 0, points = 0;
  for (uint32_t sf : {1u, 5u, 20u}) {
    for (double pr : {0.0, 0.3}) {
      DatabaseSpec spec = WithStructuresFor(DatabaseSpec{}, kinds);
      spec.use_factor = sf;
      WorkloadSpec wl;
      wl.num_top = 20;
      wl.pr_update = pr;
      wl.num_queries = 250;
      wl.seed = 34000 + sf;
      double io[3];
      for (size_t i = 0; i < kinds.size(); ++i) {
        io[i] = MeasureStrategy(spec, wl, kinds[i]).AvgIoPerQuery();
      }
      bool wins = io[2] < io[0] && io[2] < io[1];
      combo_wins += wins ? 1 : 0;
      ++points;
      std::printf("%6u %8.2f %12.1f %12.1f %16.1f %10s\n", sf, pr, io[0],
                  io[1], io[2], wins ? "YES" : "no");
    }
  }
  PrintRule();
  std::printf(
      "Combination beat both parents at %d/%d points. The paper's 3.4\n"
      "intuition: the cluster scan has already paid for the local\n"
      "subobjects before the cache can answer, so caching can only save\n"
      "the remote fetches while charging full maintenance and\n"
      "invalidation. Wherever one parent is strong the combination only\n"
      "adds the other's overhead.\n",
      combo_wins, points);
  return 0;
}
