// The paper's scaling claim (§4): "The results for larger database sizes
// can be obtained from scaling the results at this cardinality, provided a
// proportionally larger cache and main memory buffer is used."
//
// Check: grow |ParentRel|, buffer, SizeCache and NumTop together by k and
// verify that average I/O per query grows by ~k (equivalently, I/O per
// *selected object* stays flat) for each strategy.
#include "bench/bench_util.h"

using namespace objrep;
using namespace objrep::bench;

int main() {
  PrintTitle("Scaling check (paper 4)",
             "DB, buffer, cache and NumTop scaled together by k");

  const std::vector<StrategyKind> kinds = {
      StrategyKind::kDfs, StrategyKind::kBfs, StrategyKind::kDfsCache,
      StrategyKind::kDfsClust};
  std::printf("%6s %8s | %10s %10s %10s %10s   (I/O per selected object)\n",
              "k", "parents", "DFS", "BFS", "DFSCACHE", "DFSCLUST");
  for (uint32_t k : {1u, 2u, 4u}) {
    DatabaseSpec spec = WithStructuresFor(DatabaseSpec{}, kinds);
    spec.num_parents = 10000 * k;
    spec.buffer_pages = 100 * k;
    spec.size_cache = 1000 * k;
    spec.cache_buckets = 512 * k;
    WorkloadSpec wl;
    wl.num_top = 100 * k;
    wl.pr_update = 0.1;
    wl.num_queries = 120;
    wl.seed = 2025;
    std::printf("%6u %8u |", k, spec.num_parents);
    for (StrategyKind kind : kinds) {
      RunResult r = MeasureStrategy(spec, wl, kind);
      std::printf(" %10.2f", r.AvgRetrieveIo() / wl.num_top);
    }
    std::printf("\n");
  }
  PrintRule();
  std::printf(
      "Expected: each column roughly flat in k - per-object cost is scale-\n"
      "free when buffer and cache grow with the data, as the paper claims.\n");
  return 0;
}
