// Representation matrix (paper §2): storage requirements and basic access
// costs of the three primary representations — the properties §2.4 says
// "need be studied" for each box of the matrix.
//
//   Procedural  — object stores a query; smallest objects, costliest
//                 retrieval (execute the query = scan).
//   OID         — object stores subobject identifiers; one copy of each
//                 subobject; retrieval costs probes or a join.
//   Value-based — object inlines subobject values; replication grows with
//                 ShareFactor, retrieval is a pure scan, updates touch
//                 every replica.
#include "bench/bench_util.h"
#include "core/procedural.h"
#include "core/value_rep.h"

using namespace objrep;
using namespace objrep::bench;

int main() {
  PrintTitle("Representation matrix: storage and access (paper 2)",
             "|ParentRel|=10000, SizeUnit=5, Overlap=1; NumTop=10 retrieves");

  std::printf("%6s %12s %12s %12s %14s %14s\n", "SF", "rep", "pages",
              "MB", "retr I/O", "update I/O");
  for (uint32_t sf : {1u, 5u, 20u}) {
    // --- OID representation. ---
    DatabaseSpec spec;
    spec.use_factor = sf;
    std::unique_ptr<ComplexDatabase> db;
    OBJREP_CHECK(BuildDatabase(spec, &db).ok());
    WorkloadSpec wl;
    wl.num_top = 10;
    wl.pr_update = 0.3;
    wl.num_queries = 200;
    wl.seed = 33 + sf;
    std::vector<Query> queries;
    OBJREP_CHECK(GenerateWorkload(wl, *db, &queries).ok());

    // Value-based copy built from the same logical database.
    std::unique_ptr<ValueRepDatabase> vdb;
    OBJREP_CHECK(ValueRepDatabase::Build(*db, &vdb).ok());

    // Procedural copy of the same parameters.
    DatabaseSpec pspec = spec;
    pspec.build_cache = false;
    std::unique_ptr<ProceduralDatabase> pdb;
    OBJREP_CHECK(ProceduralDatabase::Build(pspec, &pdb).ok());

    // OID: run through DFS (probe-based access).
    db->disk->ResetCounters();
    std::unique_ptr<Strategy> dfs;
    OBJREP_CHECK(
        MakeStrategy(StrategyKind::kDfs, db.get(), StrategyOptions{}, &dfs)
            .ok());
    RunResult oid_run;
    OBJREP_CHECK(RunWorkload(dfs.get(), db.get(), queries, &oid_run).ok());

    // Value-based: same queries.
    uint64_t v_retr = 0, v_upd = 0;
    uint32_t v_nr = 0, v_nu = 0;
    for (const Query& q : queries) {
      IoCounters before = vdb->disk()->counters();
      if (q.kind == Query::Kind::kRetrieve) {
        RetrieveResult r;
        OBJREP_CHECK(vdb->ExecuteRetrieve(q, &r).ok());
        v_retr += (vdb->disk()->counters() - before).total();
        ++v_nr;
      } else {
        OBJREP_CHECK(vdb->ExecuteUpdate(q).ok());
        v_upd += (vdb->disk()->counters() - before).total();
        ++v_nu;
      }
    }

    // Procedural: same queries through EXEC.
    uint64_t p_retr = 0, p_upd = 0;
    uint32_t p_nr = 0, p_nu = 0;
    for (const Query& q : queries) {
      IoCounters before = pdb->disk()->counters();
      if (q.kind == Query::Kind::kRetrieve) {
        RetrieveResult r;
        OBJREP_CHECK(pdb->ExecuteRetrieve(q, ProcStrategy::kExec, &r).ok());
        p_retr += (pdb->disk()->counters() - before).total();
        ++p_nr;
      } else {
        OBJREP_CHECK(pdb->ExecuteUpdate(q, ProcStrategy::kExec).ok());
        p_upd += (pdb->disk()->counters() - before).total();
        ++p_nu;
      }
    }

    auto mb = [](uint32_t pages) {
      return pages * static_cast<double>(kPageSize) / (1024.0 * 1024.0);
    };
    uint32_t oid_pages = static_cast<uint32_t>(db->TotalPages());
    uint32_t val_pages = vdb->total_pages();
    uint32_t proc_pages = pdb->disk()->num_pages();
    std::printf("%6u %12s %12u %12.2f %14.1f %14.1f\n", sf, "procedural",
                proc_pages, mb(proc_pages),
                p_nr ? static_cast<double>(p_retr) / p_nr : 0,
                p_nu ? static_cast<double>(p_upd) / p_nu : 0);
    std::printf("%6u %12s %12u %12.2f %14.1f %14.1f\n", sf, "OID", oid_pages,
                mb(oid_pages), oid_run.AvgRetrieveIo(),
                oid_run.AvgUpdateIo());
    std::printf("%6u %12s %12u %12.2f %14.1f %14.1f\n", sf, "value-based",
                val_pages, mb(val_pages),
                v_nr ? static_cast<double>(v_retr) / v_nr : 0,
                v_nu ? static_cast<double>(v_upd) / v_nu : 0);
  }
  PrintRule();
  std::printf(
      "Expected: procedural smallest but costliest retrieve (stored-query\n"
      "scan per object); value-based largest (replication grows as sharing\n"
      "rises since |ValueRel| inlines SizeUnit copies regardless of SF) with\n"
      "the cheapest retrieves and update cost amplified by UseFactor; OID in\n"
      "between - one subobject copy, probe-based retrieves.\n");
  return 0;
}
