// Adaptive-strategy regret vs. the oracle-best fixed strategy
// (DESIGN.md §12).
//
// At every sweep point the oracle is the cheapest of ADAPTIVE's candidate
// set (DFS, BFS, DFSCACHE, SMART, DFSCLUST) measured under the identical
// protocol; regret is how much worse ADAPTIVE's average *retrieve* I/O
// did relative to it:
//
//   regret = max(0, adaptive_io - oracle_io) / max(oracle_io, 1.0)
//
// (the denominator floor keeps sub-page-per-query points from amplifying
// noise into huge relative numbers — below 1 page/query the regret is
// effectively absolute).
//
// Retrieve I/O is the comparison axis — it is what plan selection
// controls — and every entrant, oracle candidates included, runs as the
// adaptive engine with its plan *pinned* (AdaptiveStrategy::PinPlan).
// Updates must write through to every representation (ChildRel, the
// ClusterRel translation, cache invalidation) so any plan sees consistent
// data; a bare fixed strategy maintains only its own structure, silently
// letting the others go stale and sparing itself the buffer pressure the
// maintenance traffic exerts on its retrieves. Pinning gives every
// entrant the identical update path, isolating plan choice.
//
// Protocol per (point, strategy): fresh database, same seed; the same
// query sequence is run TWICE with one strategy instance. The first run is
// warm-up — ADAPTIVE spends it on exploration and calibration, DFSCACHE
// spends it filling the cache — and the second run is the measurement.
// Every strategy gets the same two-run treatment, so the oracle is a warm
// oracle and ADAPTIVE cannot win (or lose) on warm-up effects.
//
// Sweep points: the Figure 3 NumTop sweep (ShareFactor 5, retrieves only)
// and a Figure 4 sub-grid over (ShareFactor, NumTop, Pr(UPDATE)) covering
// the corners where different strategies win.
//
// Usage:
//   $ ./build/bench/adaptive_regret                  # full sweep
//   $ ./build/bench/adaptive_regret --quick          # CI subset
//   $ ./build/bench/adaptive_regret --json=out.json  # + machine-readable
//
// Validate the JSON with: tools/check_bench_json.py --adaptive out.json
#include <cinttypes>
#include <cmath>
#include <cstring>

#include "bench/bench_util.h"
#include "core/adaptive.h"

using namespace objrep;
using namespace objrep::bench;

namespace {

struct SweepPoint {
  const char* figure;  // "fig3" or "fig4"
  uint32_t share_factor;
  uint32_t num_top;
  double pr_update;
  uint32_t query_budget;
};

struct PointResult {
  SweepPoint point;
  uint32_t num_queries = 0;
  StrategyKind oracle_kind = StrategyKind::kDfs;
  double oracle_io = 0;
  double adaptive_io = 0;
  double regret = 0;
  StrategyKind dominant_plan = StrategyKind::kDfs;  // of the measured run
};

std::vector<SweepPoint> BuildSweep(bool quick) {
  std::vector<SweepPoint> points;
  // Figure 3: NumTop sweep at the paper defaults, retrieves only.
  const std::vector<uint32_t> fig3_tops =
      quick ? std::vector<uint32_t>{1, 20, 200, 2000}
            : std::vector<uint32_t>{1,   2,   5,    10,   20,   50,  100,
                                    200, 500, 1000, 2000, 5000, 10000};
  for (uint32_t nt : fig3_tops) {
    points.push_back({"fig3", 5, nt, 0.0, 400});
  }
  // Figure 4 sub-grid: the corners of the (ShareFactor, NumTop,
  // Pr(UPDATE)) cube where the winning regions meet (clustering near
  // ShareFactor 1, caching at low NumTop / low Pr(UPDATE), BFS at high
  // NumTop / high Pr(UPDATE)).
  const std::vector<uint32_t> fig4_sfs =
      quick ? std::vector<uint32_t>{1, 50} : std::vector<uint32_t>{1, 8, 50};
  const std::vector<uint32_t> fig4_tops =
      quick ? std::vector<uint32_t>{1, 1000}
            : std::vector<uint32_t>{1, 50, 1000};
  const std::vector<double> fig4_prs =
      quick ? std::vector<double>{0.0, 0.95}
            : std::vector<double>{0.0, 0.5, 0.95};
  for (uint32_t sf : fig4_sfs) {
    for (uint32_t nt : fig4_tops) {
      for (double pr : fig4_prs) {
        points.push_back({"fig4", sf, nt, pr, 160});
      }
    }
  }
  return points;
}

DatabaseSpec SpecFor(const SweepPoint& p) {
  DatabaseSpec spec;
  spec.use_factor = p.share_factor;  // overlap stays 1
  spec.build_cache = true;           // full candidate set everywhere
  spec.build_cluster = true;
  return spec;
}

WorkloadSpec WorkloadFor(const SweepPoint& p) {
  WorkloadSpec wl;
  wl.num_top = p.num_top;
  wl.pr_update = p.pr_update;
  // Update-heavy mixes dilute the retrieve sample the regret is computed
  // over; stretch the sequence (bounded) so enough retrieves land in the
  // measured run.
  uint32_t n = AutoNumQueries(p.num_top, p.query_budget);
  if (p.pr_update > 0) {
    double scale = 1.0 / std::max(0.05, 1.0 - p.pr_update);
    n = std::min<uint32_t>(static_cast<uint32_t>(n * scale),
                           20 * p.query_budget);
  }
  wl.num_queries = n;
  wl.seed = 70000 + p.share_factor * 977 + p.num_top * 13 +
            static_cast<uint64_t>(p.pr_update * 100);
  return wl;
}

/// Warm-up run then measured run with one adaptive-engine instance on one
/// fresh database; returns the measured avg retrieve I/O. `pin` other
/// than kAdaptive runs the engine pinned to that plan (an oracle
/// entrant). *dominant (free-running entrant only) gets the plan chosen
/// most often during the measured run.
double MeasureWarm(const SweepPoint& p, StrategyKind pin,
                   const StrategyOptions& options,
                   StrategyKind* dominant = nullptr) {
  std::unique_ptr<ComplexDatabase> db;
  Status s = BuildDatabase(SpecFor(p), &db);
  OBJREP_CHECK_MSG(s.ok(), s.ToString().c_str());
  std::vector<Query> queries;
  s = GenerateWorkload(WorkloadFor(p), *db, &queries);
  OBJREP_CHECK_MSG(s.ok(), s.ToString().c_str());

  auto adaptive = std::make_unique<AdaptiveStrategy>(db.get(), options);
  if (pin != StrategyKind::kAdaptive) {
    OBJREP_CHECK_MSG(adaptive->PinPlan(pin), "oracle plan not a candidate");
  }

  // At small NumTop the dynamic strategies' structures (cache contents,
  // cluster residency) take hundreds of queries to reach steady state, so
  // those points get a second warm-up pass; large-NumTop queries converge
  // within a run.
  const int warmup_runs = p.num_top <= 50 ? 2 : 1;
  RunResult warmup, measured;
  for (int w = 0; w < warmup_runs; ++w) {
    s = RunWorkload(adaptive.get(), db.get(), queries, &warmup);
    OBJREP_CHECK_MSG(s.ok(), s.ToString().c_str());
  }
  uint64_t before[16] = {};
  for (StrategyKind k : adaptive->candidates()) {
    before[static_cast<size_t>(k)] = adaptive->plan_count(k);
  }
  s = RunWorkload(adaptive.get(), db.get(), queries, &measured);
  OBJREP_CHECK_MSG(s.ok(), s.ToString().c_str());
  if (dominant != nullptr) {
    uint64_t best = 0;
    *dominant = adaptive->candidates().front();
    for (StrategyKind k : adaptive->candidates()) {
      uint64_t n = adaptive->plan_count(k) - before[static_cast<size_t>(k)];
      if (n > best) {
        best = n;
        *dominant = k;
      }
    }
  }
  return measured.AvgRetrieveIo();
}

PointResult MeasurePoint(const SweepPoint& p,
                         const StrategyOptions& options) {
  const std::vector<StrategyKind> candidates = {
      StrategyKind::kDfs, StrategyKind::kBfs, StrategyKind::kDfsCache,
      StrategyKind::kSmart, StrategyKind::kDfsClust};
  PointResult r;
  r.point = p;
  r.num_queries = WorkloadFor(p).num_queries;
  for (StrategyKind k : candidates) {
    double io = MeasureWarm(p, k, options);
    if (r.oracle_io == 0 || io < r.oracle_io) {
      r.oracle_io = io;
      r.oracle_kind = k;
    }
  }
  r.adaptive_io =
      MeasureWarm(p, StrategyKind::kAdaptive, options, &r.dominant_plan);
  r.regret = std::max(0.0, r.adaptive_io - r.oracle_io) /
             std::max(r.oracle_io, 1.0);
  return r;
}

void WriteJson(const char* path, const std::vector<PointResult>& results) {
  FILE* f = std::fopen(path, "w");
  OBJREP_CHECK_MSG(f != nullptr, "cannot open JSON output file");
  double max_regret = 0, sum_regret = 0;
  for (const PointResult& r : results) {
    max_regret = std::max(max_regret, r.regret);
    sum_regret += r.regret;
  }
  std::fprintf(f, "{\n  \"bench\": \"adaptive_regret\",\n");
  std::fprintf(f, "  \"candidates\": [\"DFS\", \"BFS\", \"DFSCACHE\", "
                  "\"SMART\", \"DFSCLUST\"],\n");
  std::fprintf(f, "  \"max_regret\": %.6f,\n", max_regret);
  std::fprintf(f, "  \"mean_regret\": %.6f,\n",
               results.empty() ? 0.0 : sum_regret / results.size());
  std::fprintf(f, "  \"points\": [");
  bool first = true;
  for (const PointResult& r : results) {
    std::fprintf(f, "%s\n    {\"figure\": \"%s\", \"share_factor\": %u, "
                 "\"num_top\": %u, \"pr_update\": %.2f, "
                 "\"num_queries\": %u, \"oracle\": \"%s\", "
                 "\"oracle_io\": %.4f, \"adaptive_io\": %.4f, "
                 "\"regret\": %.6f, \"dominant_plan\": \"%s\"}",
                 first ? "" : ",", r.point.figure, r.point.share_factor,
                 r.point.num_top, r.point.pr_update, r.num_queries,
                 StrategyKindName(r.oracle_kind), r.oracle_io,
                 r.adaptive_io, r.regret,
                 StrategyKindName(r.dominant_plan));
    first = false;
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
}

int Run(bool quick, const char* json_path, uint32_t calibration_window) {
  PrintTitle("Adaptive regret vs. oracle-best fixed strategy",
             "warm runs; candidates DFS/BFS/DFSCACHE/SMART/DFSCLUST; "
             "regret over avg retrieve I/O");
  StrategyOptions options;
  options.calibration_window = calibration_window;

  std::printf("%5s %4s %7s %6s %9s %11s %11s %8s   %s\n", "fig", "SF",
              "NumTop", "PrUpd", "oracle", "oracle I/O", "adaptive",
              "regret", "plan");
  std::vector<PointResult> results;
  double max_regret = 0;
  for (const SweepPoint& p : BuildSweep(quick)) {
    PointResult r = MeasurePoint(p, options);
    std::printf("%5s %4u %7u %6.2f %9s %11.1f %11.1f %7.1f%%   %s\n",
                p.figure, p.share_factor, p.num_top, p.pr_update,
                StrategyKindName(r.oracle_kind), r.oracle_io, r.adaptive_io,
                100 * r.regret, StrategyKindName(r.dominant_plan));
    max_regret = std::max(max_regret, r.regret);
    results.push_back(r);
  }
  PrintRule();
  std::printf("%zu points, max regret %.1f%% (acceptance: <= 10%% at every "
              "point)\n", results.size(), 100 * max_regret);
  if (json_path != nullptr) {
    WriteJson(json_path, results);
    std::printf("wrote %s\n", json_path);
  }
  return max_regret <= 0.10 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  const char* json_path = nullptr;
  uint32_t window = StrategyOptions{}.calibration_window;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json_path = "BENCH_adaptive_regret.json";
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--calibration-window=", 21) == 0) {
      window = static_cast<uint32_t>(std::atoi(argv[i] + 21));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--json[=PATH]] "
                   "[--calibration-window=N]\n", argv[0]);
      return 2;
    }
  }
  return Run(quick, json_path, window);
}
