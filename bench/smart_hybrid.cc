// SMART (paper §5.3): the hybrid that uses DFSCACHE below NumTop = N and a
// cache-aware, non-maintaining breadth-first pass above it.
//
// Two experiments:
//  1. NumTop sweep at fixed Pr(UPDATE): SMART vs BFS vs DFSCACHE. Expected:
//     SMART tracks DFSCACHE at low NumTop and stays competitive with BFS at
//     high NumTop (its temporary is never larger than BFS's, since cached
//     units' OIDs are excluded).
//  2. A mixed sequence alternating low- and high-NumTop retrieves — the
//     "good query mix" for which the paper recommends SMART: the low-NumTop
//     queries keep the cache maintained, the high-NumTop queries exploit it.
#include "bench/bench_util.h"

using namespace objrep;
using namespace objrep::bench;

namespace {

// Mixed-workload runner: interleaves two NumTop classes in one sequence.
RunResult RunMixed(const DatabaseSpec& db_spec, StrategyKind kind,
                   uint32_t low_top, uint32_t high_top, uint32_t num_queries,
                   double pr_update, uint64_t seed) {
  std::unique_ptr<ComplexDatabase> db;
  Status s = BuildDatabase(db_spec, &db);
  OBJREP_CHECK_MSG(s.ok(), s.ToString().c_str());

  // Generate two workloads and interleave deterministically.
  WorkloadSpec lo;
  lo.num_top = low_top;
  lo.pr_update = pr_update;
  lo.num_queries = num_queries / 2;
  lo.seed = seed;
  WorkloadSpec hi = lo;
  hi.num_top = high_top;
  hi.seed = seed + 1;
  std::vector<Query> a, b, mixed;
  OBJREP_CHECK(GenerateWorkload(lo, *db, &a).ok());
  OBJREP_CHECK(GenerateWorkload(hi, *db, &b).ok());
  for (size_t i = 0; i < a.size(); ++i) {
    mixed.push_back(a[i]);
    mixed.push_back(b[i]);
  }
  std::unique_ptr<Strategy> strategy;
  OBJREP_CHECK(MakeStrategy(kind, db.get(), StrategyOptions{}, &strategy).ok());
  RunResult r;
  OBJREP_CHECK(RunWorkload(strategy.get(), db.get(), mixed, &r).ok());
  return r;
}

}  // namespace

int main() {
  const std::vector<StrategyKind> kinds = {
      StrategyKind::kBfs, StrategyKind::kDfsCache, StrategyKind::kSmart};

  PrintTitle("SMART hybrid (paper 5.3) - NumTop sweep",
             "ShareFactor=5, Pr(UPDATE)=0.1, SizeCache=1000, N=300");
  std::printf("%8s %12s %12s %12s   %s\n", "NumTop", "BFS", "DFSCACHE",
              "SMART", "best");
  for (uint32_t nt : {5u, 20u, 100u, 300u, 500u, 1000u, 3000u, 10000u}) {
    DatabaseSpec spec = WithStructuresFor(DatabaseSpec{}, kinds);
    WorkloadSpec wl;
    wl.num_top = nt;
    wl.pr_update = 0.1;
    wl.num_queries = AutoNumQueries(nt, 300);
    wl.seed = 5500 + nt;
    double io[3];
    for (size_t i = 0; i < kinds.size(); ++i) {
      io[i] = MeasureStrategy(spec, wl, kinds[i]).AvgIoPerQuery();
    }
    const char* best = io[0] <= io[1] && io[0] <= io[2]   ? "BFS"
                       : io[1] <= io[2]                   ? "DFSCACHE"
                                                          : "SMART";
    std::printf("%8u %12.1f %12.1f %12.1f   %s\n", nt, io[0], io[1], io[2],
                best);
  }
  std::printf(
      "Expected: SMART == DFSCACHE for NumTop <= 300; above, SMART drops the\n"
      "maintenance and stays near BFS while DFSCACHE degrades.\n\n");

  PrintTitle("SMART hybrid - mixed query sizes (the 'good query mix')",
             "alternating NumTop=20 and NumTop=2000, Pr(UPDATE)=0.05,\n"
             "ShareFactor = 5 and 20 (denser sharing favours the cache)");
  std::printf("%6s %12s %16s %14s\n", "SF", "strategy", "avg I/O per query",
              "cache hits");
  for (uint32_t sf : {5u, 20u}) {
    for (StrategyKind k : kinds) {
      DatabaseSpec spec = WithStructuresFor(DatabaseSpec{}, kinds);
      spec.use_factor = sf;
      RunResult r = RunMixed(spec, k, 20, 2000, 300, 0.05, 77);
      std::printf("%6u %12s %16.1f %14llu\n", sf, StrategyKindName(k),
                  r.AvgIoPerQuery(),
                  static_cast<unsigned long long>(r.cache_stats.hits));
    }
  }
  std::printf(
      "Expected: the low-NumTop queries maintain the cache and the\n"
      "high-NumTop queries exploit it, so SMART keeps DFSCACHE's low-NumTop\n"
      "behaviour while avoiding its high-NumTop collapse (order-of-magnitude\n"
      "vs DFSCACHE on the mix). Note the paper *proposes* SMART (5.3)\n"
      "without measuring it; in this substrate a cached-unit fetch costs\n"
      "~1 I/O per object, so plain BFS keeps a raw-I/O edge on the mix --\n"
      "see EXPERIMENTS.md for the discussion.\n");
  return 0;
}
