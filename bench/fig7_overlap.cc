// Figure 7 (paper §6.1): the effect of OverlapFactor on clustering.
//
// Cost(DFSCLUST) / Cost(BFS) vs NumTop for two databases with the same
// ShareFactor = 5 composed differently:
//   curve 1: OverlapFactor=1, UseFactor=5  (sharing in whole units)
//   curve 2: OverlapFactor=5, UseFactor=1  (random sharing of subobjects)
// Pr(UPDATE) = 1 in the paper so caching is out of the picture; we measure
// retrieve-only cost, which is equivalent for this ratio.
//
// Expected (paper): the Overlap=5 curve lies well above the Overlap=1
// curve (fragmented units force extra random accesses), and the NumTop at
// which BFS starts to beat DFSCLUST (ratio crosses 1) moves *down* as
// OverlapFactor grows.
#include "bench/bench_util.h"

using namespace objrep;
using namespace objrep::bench;

int main() {
  PrintTitle("Figure 7: effect of OverlapFactor on clustering",
             "ShareFactor=5 both curves; ratio Cost(DFSCLUST)/Cost(BFS)");

  const std::vector<uint32_t> num_tops = {1,   5,    20,   50,  100,
                                          200, 500, 1000, 3000, 10000};
  struct Config {
    uint32_t overlap, use;
  };
  const Config configs[2] = {{1, 5}, {5, 1}};

  std::printf("%8s %18s %18s\n", "NumTop", "Ov=1,Use=5", "Ov=5,Use=1");
  double cross[2] = {-1, -1};
  double prev_ratio[2] = {0, 0};
  uint32_t prev_top = 0;
  for (uint32_t num_top : num_tops) {
    double ratio[2];
    for (int c = 0; c < 2; ++c) {
      DatabaseSpec spec;
      spec.overlap_factor = configs[c].overlap;
      spec.use_factor = configs[c].use;
      spec.build_cluster = true;
      WorkloadSpec wl;
      wl.num_top = num_top;
      wl.pr_update = 0.0;  // ratio of retrieve costs
      wl.num_queries = AutoNumQueries(num_top, 200);
      wl.seed = 7000 + num_top + static_cast<uint64_t>(c);
      RunResult clust = MeasureStrategy(spec, wl, StrategyKind::kDfsClust);
      RunResult bfs = MeasureStrategy(spec, wl, StrategyKind::kBfs);
      ratio[c] = bfs.AvgRetrieveIo() > 0
                     ? clust.AvgRetrieveIo() / bfs.AvgRetrieveIo()
                     : 0;
      if (cross[c] < 0 && prev_top > 0 && prev_ratio[c] <= 1.0 &&
          ratio[c] > 1.0) {
        double d0 = 1.0 - prev_ratio[c], d1 = ratio[c] - 1.0;
        cross[c] = prev_top + (num_top - prev_top) * (d0 / (d0 + d1));
      }
      prev_ratio[c] = ratio[c];
    }
    prev_top = num_top;
    std::printf("%8u %18.2f %18.2f\n", num_top, ratio[0], ratio[1]);
  }
  PrintRule();
  for (int c = 0; c < 2; ++c) {
    if (cross[c] > 0) {
      std::printf("Overlap=%u: BFS beats DFSCLUST beyond NumTop ~= %.0f\n",
                  configs[c].overlap, cross[c]);
    } else {
      std::printf("Overlap=%u: no ratio crossover inside the sweep\n",
                  configs[c].overlap);
    }
  }
  std::printf(
      "Expected: Overlap=5 curve above Overlap=1; its crossover (point A)\n"
      "at lower NumTop than Overlap=1's (point B).\n");
  return 0;
}
