// Multi-level retrievals (paper §3 / §5.1): DFS vs BFS vs BFSNODUP when
// "more levels of relationships [are] explored".
//
// The paper claims: "It is clear that the benefits of BFSNODUP will
// increase with an increase in the number of levels explored. But our
// experiments have shown that the benefit so obtained is marginal at
// best." With sharing at every level the duplicate OIDs compound
// multiplicatively across levels, so duplicate elimination removes more
// work the deeper the query — this bench quantifies how much.
#include "bench/bench_util.h"
#include "core/hierarchy.h"
#include "util/random.h"

using namespace objrep;
using namespace objrep::bench;

namespace {

double AvgIo(HierarchyDatabase* db, uint32_t num_top, uint32_t num_queries,
             uint64_t seed, int mode /*0=DFS 1=BFS 2=NODUP*/) {
  Rng rng(seed);
  uint64_t total = 0;
  const uint32_t n = db->spec().num_roots;
  for (uint32_t i = 0; i < num_queries; ++i) {
    Query q;
    q.kind = Query::Kind::kRetrieve;
    q.num_top = num_top;
    q.lo_parent = static_cast<uint32_t>(rng.Uniform(n - num_top + 1));
    q.attr_index = static_cast<int>(rng.Uniform(3));
    RetrieveResult r;
    Status s = mode == 0 ? db->RetrieveDfs(q, &r)
                         : db->RetrieveBfs(q, mode == 2, &r);
    OBJREP_CHECK_MSG(s.ok(), s.ToString().c_str());
    total += r.cost.total();
  }
  return static_cast<double>(total) / num_queries;
}

}  // namespace

int main() {
  PrintTitle("Multi-level retrieves: levels explored vs BFSNODUP benefit",
             "10000 roots, SizeUnit=5, UseFactor=5 at every level, "
             "NumTop=500");

  std::printf("%8s %10s %10s %10s %14s\n", "levels", "DFS", "BFS",
              "BFSNODUP", "NODUP gain");
  for (uint32_t depth : {2u, 3u, 4u}) {
    HierarchySpec spec;
    spec.num_roots = 10000;
    spec.depth = depth;
    spec.size_unit = 5;
    spec.use_factor = 5;
    spec.seed = 99;
    std::unique_ptr<HierarchyDatabase> db;
    Status s = HierarchyDatabase::Build(spec, &db);
    OBJREP_CHECK_MSG(s.ok(), s.ToString().c_str());

    const uint32_t queries = depth == 4 ? 12 : 24;
    double dfs = AvgIo(db.get(), 500, queries, 5, 0);
    double bfs = AvgIo(db.get(), 500, queries, 5, 1);
    double nodup = AvgIo(db.get(), 500, queries, 5, 2);
    std::printf("%8u %10.1f %10.1f %10.1f %13.1f%%\n", depth - 1, dfs, bfs,
                nodup, 100.0 * (bfs - nodup) / bfs);
  }
  PrintRule();
  std::printf(
      "Expected: BFSNODUP's gain over BFS grows with the number of levels\n"
      "(duplicates compound multiplicatively under per-level sharing) while\n"
      "remaining far from an order of magnitude - the paper's 'increases\n"
      "with levels, but marginal at best'. DFS's disadvantage compounds\n"
      "with depth as well.\n");
  return 0;
}
