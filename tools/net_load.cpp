// net_load — closed-loop load driver for the object server (DESIGN.md
// §13), the wire-level analog of objrep_driver's --threads mode.
//
//   $ ./build/tools/net_load --port=4700 --clients=64 --duration=5
//   $ ./build/tools/net_load --port=4700 --clients=16 --pr-update=0.1
//         --strategy=adaptive --shutdown   (one command line)
//   $ ./build/tools/net_load --endpoints=127.0.0.1:4700,127.0.0.1:4701
//         --clients=32        (round-robin across several servers)
//
// Each client thread owns one connection and issues a RETRIEVE/UPDATE mix
// (PINGs when --pr-ping is set), recording per-request latency. The
// workload shape is bootstrapped from the server's STATS response — the
// "db" section carries |ParentRel|, the child relation ids, and the keys
// per relation — so the driver needs no copy of the server's config. The
// exit code is 0 only if every client connected and at least one request
// succeeded, which is what the CI smoke job asserts.
//
// --endpoints takes a comma-separated list; clients are assigned
// round-robin and the summary adds a per-endpoint accounting line
// (clients, connected, ok/busy/rejected/transport splits), so an
// unreachable or sick member of a server group is visible at a glance
// rather than averaged away. All endpoints must serve the same database
// shape (the bootstrap probes the first one).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment_config.h"
#include "net/client.h"
#include "net/protocol.h"
#include "obs/trace.h"

using namespace objrep;

namespace {

/// One server address; clients are assigned endpoints round-robin.
struct Endpoint {
  std::string host;
  uint16_t port = 0;
};

struct LoadFlags {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::vector<Endpoint> endpoints;  // --endpoints=h:p,h:p (overrides host/port)
  uint32_t clients = 8;
  double duration_seconds = 5.0;
  double pr_update = 0.0;
  double pr_ping = 0.0;
  uint32_t num_top = 5;
  uint32_t update_batch = 5;
  uint8_t attr_index = 0;
  uint8_t strategy = net::kDefaultStrategyByte;
  uint64_t seed = 42;
  bool shutdown = false;   // send SHUTDOWN when done
  std::string json_out;    // --json=FILE: machine-readable summary
  std::string trace_out;   // --trace-out=FILE: client-side span file,
                           // mergeable with the server's via trace ids
};

/// Schema facts parsed from the server's STATS "db" section.
struct DbShape {
  uint32_t num_parents = 0;
  uint32_t children_per_rel = 0;
  std::vector<uint32_t> child_rels;
};

/// Minimal extraction from the server's well-formed JSON: the value after
/// `"key":`. Good enough for a tool talking to one known producer.
bool FindU64(const std::string& json, const char* key, uint64_t* out) {
  std::string needle = std::string("\"") + key + "\":";
  size_t pos = json.find(needle);
  if (pos == std::string::npos) return false;
  *out = std::strtoull(json.c_str() + pos + needle.size(), nullptr, 10);
  return true;
}

bool ParseDbShape(const std::string& json, DbShape* out) {
  uint64_t v = 0;
  if (!FindU64(json, "num_parents", &v)) return false;
  out->num_parents = static_cast<uint32_t>(v);
  if (!FindU64(json, "children_per_rel", &v)) return false;
  out->children_per_rel = static_cast<uint32_t>(v);
  size_t pos = json.find("\"child_rels\":[");
  if (pos == std::string::npos) return false;
  const char* p = json.c_str() + pos + std::strlen("\"child_rels\":[");
  while (*p != ']' && *p != '\0') {
    char* end = nullptr;
    out->child_rels.push_back(
        static_cast<uint32_t>(std::strtoul(p, &end, 10)));
    if (end == p) return false;
    p = end;
    if (*p == ',') ++p;
  }
  return !out->child_rels.empty() && out->num_parents > 0 &&
         out->children_per_rel > 0;
}

struct ClientResult {
  uint64_t ok = 0;
  uint64_t busy = 0;
  uint64_t rejected = 0;  // SHUTTING_DOWN / BAD_REQUEST / ERROR
  uint64_t transport_errors = 0;
  std::vector<uint64_t> latencies_us;  // OK responses only
  bool connected = false;
};

uint64_t Percentile(std::vector<uint64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

void ClientLoop(const LoadFlags& flags, const Endpoint& ep,
                const DbShape& shape, uint64_t seed, std::atomic<bool>* stop,
                ClientResult* out) {
  net::ObjClient client;
  if (!client.Connect(ep.host, ep.port).ok()) return;
  out->connected = true;

  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  const uint32_t max_lo =
      shape.num_parents > flags.num_top ? shape.num_parents - flags.num_top
                                        : 0;
  std::uniform_int_distribution<uint32_t> lo_dist(0, max_lo);
  std::uniform_int_distribution<uint32_t> key_dist(
      0, shape.children_per_rel - 1);
  std::uniform_int_distribution<size_t> rel_dist(0,
                                                 shape.child_rels.size() - 1);

  while (!stop->load(std::memory_order_relaxed)) {
    net::Request req;
    req.strategy = flags.strategy;
    double c = coin(rng);
    if (c < flags.pr_ping) {
      req.verb = net::Verb::kPing;
    } else if (c < flags.pr_ping + flags.pr_update) {
      req.verb = net::Verb::kUpdate;
      req.new_ret1 = static_cast<int32_t>(rng() & 0x7FFF);
      for (uint32_t i = 0; i < flags.update_batch; ++i) {
        req.update_targets.push_back(
            Oid{shape.child_rels[rel_dist(rng)], key_dist(rng)});
      }
    } else {
      req.verb = net::Verb::kRetrieve;
      req.lo_parent = lo_dist(rng);
      req.num_top = std::min(flags.num_top, shape.num_parents);
      req.attr_index = flags.attr_index;
    }

    auto t0 = std::chrono::steady_clock::now();
    net::Response resp;
    Status s = client.Call(std::move(req), &resp);
    if (!s.ok()) {
      out->transport_errors++;
      return;  // Call() closed the connection; this client is done
    }
    if (resp.status == net::RespStatus::kOk) {
      out->ok++;
      out->latencies_us.push_back(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()));
    } else if (resp.status == net::RespStatus::kServerBusy) {
      out->busy++;
    } else {
      out->rejected++;
    }
  }
}

bool ParseFlag(const char* arg, const char* name, const char** value) {
  size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *value = arg + n + 1;
  return true;
}

/// "host:port,host:port,..." — every element needs both parts and a
/// nonzero port.
bool ParseEndpoints(const char* v, std::vector<Endpoint>* out) {
  std::string s(v);
  size_t pos = 0;
  while (pos <= s.size()) {
    size_t comma = s.find(',', pos);
    std::string item = s.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    pos = comma == std::string::npos ? s.size() + 1 : comma + 1;
    size_t colon = item.rfind(':');
    if (colon == std::string::npos || colon == 0) return false;
    Endpoint ep;
    ep.host = item.substr(0, colon);
    char* end = nullptr;
    unsigned long p = std::strtoul(item.c_str() + colon + 1, &end, 10);
    if (end != item.c_str() + item.size() || p == 0 || p > 65535) {
      return false;
    }
    ep.port = static_cast<uint16_t>(p);
    out->push_back(std::move(ep));
  }
  return !out->empty();
}

int Usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s --port=N [--host=ADDR] [--clients=N]\n"
               "          [--endpoints=HOST:PORT,HOST:PORT,...]\n"
               "          [--duration=S] [--pr-update=P] [--pr-ping=P]\n"
               "          [--num-top=K] [--update-batch=B] [--attr=I]\n"
               "          [--strategy=NAME] [--seed=N] [--shutdown]\n"
               "--endpoints spreads clients round-robin over several\n"
               "servers (overrides --host/--port) and reports per-endpoint\n"
               "connection accounting\n"
               "--shutdown sends the SHUTDOWN verb after the run (every\n"
               "server drains and exits)\n"
               "--json=FILE writes a machine-readable summary with overall\n"
               "and per-endpoint latency percentiles (p50/p99/p999/max)\n"
               "--trace-out=FILE records client_call spans; merge with the\n"
               "server's trace via tools/trace_summary.py (spans stitch by\n"
               "trace id)\n",
               prog);
  return 2;
}

/// One endpoint's (or the whole run's) accounting + latency summary.
struct EndpointSummary {
  uint32_t clients = 0;
  uint32_t connected = 0;
  uint64_t ok = 0;
  uint64_t busy = 0;
  uint64_t rejected = 0;
  uint64_t transport_errors = 0;
  uint64_t p50 = 0, p99 = 0, p999 = 0, max = 0;

  void WriteJson(std::ofstream& out) const {
    out << "\"clients\":" << clients << ",\"connected\":" << connected
        << ",\"ok\":" << ok << ",\"busy\":" << busy
        << ",\"rejected\":" << rejected
        << ",\"transport_errors\":" << transport_errors
        << ",\"p50_us\":" << p50 << ",\"p99_us\":" << p99
        << ",\"p999_us\":" << p999 << ",\"max_us\":" << max;
  }
};

EndpointSummary Summarize(const std::vector<ClientResult>& results,
                          size_t first, size_t stride) {
  EndpointSummary s;
  std::vector<uint64_t> lat;
  for (size_t i = first; i < results.size(); i += stride) {
    ++s.clients;
    if (results[i].connected) ++s.connected;
    s.ok += results[i].ok;
    s.busy += results[i].busy;
    s.rejected += results[i].rejected;
    s.transport_errors += results[i].transport_errors;
    lat.insert(lat.end(), results[i].latencies_us.begin(),
               results[i].latencies_us.end());
  }
  std::sort(lat.begin(), lat.end());
  s.p50 = Percentile(lat, 0.50);
  s.p99 = Percentile(lat, 0.99);
  s.p999 = Percentile(lat, 0.999);
  s.max = lat.empty() ? 0 : lat.back();
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  LoadFlags flags;
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (ParseFlag(argv[i], "--host", &v)) {
      flags.host = v;
    } else if (ParseFlag(argv[i], "--port", &v)) {
      flags.port = static_cast<uint16_t>(std::strtoul(v, nullptr, 10));
    } else if (ParseFlag(argv[i], "--clients", &v)) {
      flags.clients = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (ParseFlag(argv[i], "--duration", &v)) {
      flags.duration_seconds = std::strtod(v, nullptr);
    } else if (ParseFlag(argv[i], "--pr-update", &v)) {
      flags.pr_update = std::strtod(v, nullptr);
    } else if (ParseFlag(argv[i], "--pr-ping", &v)) {
      flags.pr_ping = std::strtod(v, nullptr);
    } else if (ParseFlag(argv[i], "--num-top", &v)) {
      flags.num_top = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (ParseFlag(argv[i], "--update-batch", &v)) {
      flags.update_batch =
          static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (ParseFlag(argv[i], "--attr", &v)) {
      flags.attr_index = static_cast<uint8_t>(std::strtoul(v, nullptr, 10));
    } else if (ParseFlag(argv[i], "--strategy", &v)) {
      StrategyKind kind;
      if (!ParseStrategyName(v, &kind).ok()) return Usage(argv[0]);
      flags.strategy = static_cast<uint8_t>(kind);
    } else if (ParseFlag(argv[i], "--seed", &v)) {
      flags.seed = std::strtoull(v, nullptr, 10);
    } else if (ParseFlag(argv[i], "--endpoints", &v)) {
      flags.endpoints.clear();
      if (!ParseEndpoints(v, &flags.endpoints)) return Usage(argv[0]);
    } else if (ParseFlag(argv[i], "--json", &v)) {
      flags.json_out = v;
    } else if (ParseFlag(argv[i], "--trace-out", &v)) {
      flags.trace_out = v;
    } else if (std::strcmp(argv[i], "--shutdown") == 0) {
      flags.shutdown = true;
    } else {
      return Usage(argv[0]);
    }
  }
  if (!flags.trace_out.empty()) Trace::SetEnabled(true);
  if (flags.endpoints.empty() && flags.port != 0) {
    flags.endpoints.push_back(Endpoint{flags.host, flags.port});
  }
  if (flags.endpoints.empty() || flags.clients == 0 ||
      flags.num_top == 0 || flags.update_batch == 0 ||
      flags.attr_index > 2 || flags.pr_update < 0 || flags.pr_ping < 0 ||
      flags.pr_update + flags.pr_ping > 1.0) {
    return Usage(argv[0]);
  }

  // Bootstrap the workload shape from the first server; the group is
  // assumed homogeneous (same config on every endpoint).
  DbShape shape;
  {
    net::ObjClient probe;
    Status s = probe.Connect(flags.endpoints[0].host,
                             flags.endpoints[0].port);
    if (!s.ok()) {
      std::fprintf(stderr, "connect failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::string stats;
    s = probe.Stats(&stats);
    if (!s.ok() || !ParseDbShape(stats, &shape)) {
      std::fprintf(stderr, "STATS bootstrap failed: %s\n",
                   s.ToString().c_str());
      return 1;
    }
  }
  if (flags.num_top > shape.num_parents) flags.num_top = shape.num_parents;

  std::atomic<bool> stop{false};
  std::vector<ClientResult> results(flags.clients);
  std::vector<std::thread> threads;
  threads.reserve(flags.clients);
  auto t0 = std::chrono::steady_clock::now();
  for (uint32_t i = 0; i < flags.clients; ++i) {
    const Endpoint& ep = flags.endpoints[i % flags.endpoints.size()];
    threads.emplace_back(ClientLoop, std::cref(flags), std::cref(ep),
                         std::cref(shape), flags.seed + i, &stop,
                         &results[i]);
  }
  std::this_thread::sleep_for(
      std::chrono::duration<double>(flags.duration_seconds));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : threads) t.join();
  double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  ClientResult total;
  total.connected = true;
  std::vector<uint64_t> lat;
  for (ClientResult& r : results) {
    total.ok += r.ok;
    total.busy += r.busy;
    total.rejected += r.rejected;
    total.transport_errors += r.transport_errors;
    if (!r.connected) total.connected = false;
    lat.insert(lat.end(), r.latencies_us.begin(), r.latencies_us.end());
  }
  std::sort(lat.begin(), lat.end());

  std::printf(
      "clients=%u duration=%.1fs ok=%llu busy=%llu rejected=%llu "
      "transport_errors=%llu\n",
      flags.clients, elapsed, static_cast<unsigned long long>(total.ok),
      static_cast<unsigned long long>(total.busy),
      static_cast<unsigned long long>(total.rejected),
      static_cast<unsigned long long>(total.transport_errors));
  std::printf(
      "throughput=%.0f req/s  p50=%lluus p99=%lluus p999=%lluus max=%lluus\n",
      elapsed > 0 ? static_cast<double>(total.ok) / elapsed : 0.0,
      static_cast<unsigned long long>(Percentile(lat, 0.50)),
      static_cast<unsigned long long>(Percentile(lat, 0.99)),
      static_cast<unsigned long long>(Percentile(lat, 0.999)),
      static_cast<unsigned long long>(lat.empty() ? 0 : lat.back()));

  // Per-endpoint accounting: with several servers, an unreachable or sick
  // member must not hide inside the aggregate.
  if (flags.endpoints.size() > 1) {
    for (size_t e = 0; e < flags.endpoints.size(); ++e) {
      uint32_t clients = 0, connected = 0;
      uint64_t ok = 0, busy = 0, rejected = 0, transport = 0;
      for (size_t i = e; i < results.size(); i += flags.endpoints.size()) {
        ++clients;
        if (results[i].connected) ++connected;
        ok += results[i].ok;
        busy += results[i].busy;
        rejected += results[i].rejected;
        transport += results[i].transport_errors;
      }
      std::printf(
          "endpoint %s:%u clients=%u connected=%u ok=%llu busy=%llu "
          "rejected=%llu transport_errors=%llu\n",
          flags.endpoints[e].host.c_str(), flags.endpoints[e].port, clients,
          connected, static_cast<unsigned long long>(ok),
          static_cast<unsigned long long>(busy),
          static_cast<unsigned long long>(rejected),
          static_cast<unsigned long long>(transport));
    }
  }

  if (!flags.json_out.empty()) {
    std::ofstream out(flags.json_out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", flags.json_out.c_str());
      return 1;
    }
    EndpointSummary overall = Summarize(results, 0, 1);
    out << "{\"bench\":\"net_load\",\"duration_s\":" << elapsed
        << ",\"throughput_rps\":"
        << (elapsed > 0 ? static_cast<double>(total.ok) / elapsed : 0.0)
        << ",\"overall\":{";
    overall.WriteJson(out);
    out << "},\"endpoints\":[";
    for (size_t e = 0; e < flags.endpoints.size(); ++e) {
      if (e > 0) out << ",";
      out << "{\"host\":\"" << flags.endpoints[e].host
          << "\",\"port\":" << flags.endpoints[e].port << ",";
      Summarize(results, e, flags.endpoints.size()).WriteJson(out);
      out << "}";
    }
    out << "]}\n";
  }

  if (flags.shutdown) {
    for (const Endpoint& ep : flags.endpoints) {
      net::ObjClient c;
      if (c.Connect(ep.host, ep.port).ok()) {
        Status s = c.Shutdown();
        std::printf("shutdown %s:%u: %s\n", ep.host.c_str(), ep.port,
                    s.ok() ? "ok" : s.ToString().c_str());
      }
    }
  }
  if (!flags.trace_out.empty()) {
    Status ts = Trace::FlushToFile(flags.trace_out);
    if (!ts.ok()) {
      std::fprintf(stderr, "trace write failed: %s\n", ts.ToString().c_str());
      return 1;
    }
  }
  return total.connected && total.ok > 0 ? 0 : 1;
}
