file(REMOVE_RECURSE
  "CMakeFiles/objrep_driver.dir/objrep_driver.cpp.o"
  "CMakeFiles/objrep_driver.dir/objrep_driver.cpp.o.d"
  "objrep_driver"
  "objrep_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/objrep_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
