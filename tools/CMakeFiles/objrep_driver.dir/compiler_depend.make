# Empty compiler generated dependencies file for objrep_driver.
# This may be replaced when dependencies are built.
