# Empty dependencies file for net_load.
# This may be replaced when dependencies are built.
