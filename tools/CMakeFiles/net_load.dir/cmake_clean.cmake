file(REMOVE_RECURSE
  "CMakeFiles/net_load.dir/net_load.cpp.o"
  "CMakeFiles/net_load.dir/net_load.cpp.o.d"
  "net_load"
  "net_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
