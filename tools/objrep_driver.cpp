// objrep_driver — the analog of the paper's EQUEL/C driver (§4): reads an
// experiment config, builds the database, generates the query sequence,
// runs it under each named strategy, and reports average I/O.
//
//   $ ./build/tools/objrep_driver configs/fig3_point.cfg
//   $ ./build/tools/objrep_driver -        # read config from stdin
//
// Concurrent mode (the execution engine, src/exec/): with --threads=K the
// query stream is partitioned across K worker sessions over one shared
// database, and the report adds throughput (queries/sec) and latency
// percentiles alongside the aggregate I/O bill.
//
//   $ ./build/tools/objrep_driver --threads=8 configs/fig3_point.cfg
//   $ ./build/tools/objrep_driver --threads=8 --duration=5 cfg   # timed run
//   $ ./build/tools/objrep_driver --num-queries=5000 cfg
//
// Observability (DESIGN.md §11): --trace-out=FILE writes a Chrome/Perfetto
// trace of the run, --metrics-json=FILE dumps the metrics registry at
// exit, --metrics-interval=MS streams registry snapshots to stderr while
// running. After the per-strategy report the driver prints an I/O
// attribution table splitting each strategy's page traffic by component
// tag (parent scan, index probes, temp/sort, cache, ...).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <csignal>

#include "core/adaptive.h"
#include "core/experiment_config.h"
#include "core/runner.h"
#include "exec/concurrent_runner.h"
#include "net/server.h"
#include "obs/io_context.h"
#include "shard/engine.h"
#include "shard/sharded_db.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "objstore/database.h"
#include "storage/fault_injector.h"

using namespace objrep;

namespace {

struct DriverFlags {
  uint32_t threads = 0;       // 0: sequential runner (the default report)
  uint32_t num_queries = 0;   // 0: keep the config's value
  double duration_seconds = 0;  // >0: timed run (resamples the stream)
  // I/O scheduling overrides (-1: keep the config's value).
  int prefetch = -1;            // --prefetch=on/off
  int64_t readahead_pages = -1;   // --readahead-pages=N
  int64_t io_latency_us = -1;     // --io-latency-us=U (seek per segment)
  // Durability / fault injection (DESIGN.md §10).
  int wal = -1;                 // --wal=on/off (overrides the WAL key)
  int mvcc = -1;                // --mvcc=on/off (overrides the MVCC key)
  uint64_t fault_seed = 0;      // --fault-seed=N (injector rng)
  double fault_rate = 0;        // --fault-rate=P (per-I/O failure prob.)
  std::string fault_crash_point;  // --fault-crash-point=NAME[:HIT]
  // Observability (DESIGN.md §11).
  std::string metrics_json;     // --metrics-json=FILE (registry at exit)
  std::string trace_out;        // --trace-out=FILE (Chrome/Perfetto JSON)
  uint64_t metrics_interval_ms = 0;  // --metrics-interval=MS (to stderr)
  // Adaptive engine (DESIGN.md §12).
  std::string strategy;         // --strategy=NAME (override config list)
  int64_t calibration_window = -1;  // --calibration-window=N
  // Network server (DESIGN.md §13).
  bool serve = false;           // --serve: run the server, not the report
  int64_t port = -1;            // --port=N (overrides net_port)
  int64_t max_inflight = -1;    // --max-inflight=N (overrides config)
  // Per-query profiles & heat (DESIGN.md §16).
  bool profile = false;         // --profile: print a RetrieveProfile and exit
  int64_t slow_query_us = 0;    // --slow-query-us=N (serve: arm the ring)
  int heat = -1;                // --heat=on/off (serve: heat-map tracking)
  // Horizontal sharding (DESIGN.md §14).
  int64_t shards = -1;          // --shards=N (overrides the shards key)
  std::string config_path;
};

net::ObjServer* g_server = nullptr;  // SIGINT/SIGTERM -> graceful drain

void HandleStopSignal(int) {
  if (g_server != nullptr) g_server->RequestStop();  // async-signal-safe
}

/// --serve: build the database once, serve it until SIGINT/SIGTERM or a
/// SHUTDOWN verb, then drain and report. With shards > 1 the server fronts
/// a scatter-gather ShardedEngine instead of a single database.
int RunServer(const DriverFlags& flags, const ExperimentConfig& config) {
  std::unique_ptr<ComplexDatabase> db;
  std::unique_ptr<shard::ShardedDatabase> sdb;
  std::unique_ptr<shard::ShardedEngine> engine;
  Status s;
  if (config.shards > 1) {
    s = shard::BuildShardedDatabase(config.db, config.shards, &sdb);
    if (s.ok()) {
      engine =
          std::make_unique<shard::ShardedEngine>(sdb.get(), config.options);
    }
  } else {
    s = BuildDatabase(config.db, &db);
  }
  if (!s.ok()) {
    std::fprintf(stderr, "build failed: %s\n", s.ToString().c_str());
    return 1;
  }

  net::ServerConfig sc;
  sc.port = static_cast<uint16_t>(
      flags.port >= 0 ? flags.port : config.net_port);
  sc.num_workers = config.net_workers;
  sc.max_inflight = flags.max_inflight > 0
                        ? static_cast<uint32_t>(flags.max_inflight)
                        : config.net_max_inflight;
  sc.default_strategy = config.strategies.front();
  sc.strategy_options = config.options;
  sc.slow_query_us = static_cast<uint64_t>(flags.slow_query_us);
  if (flags.heat >= 0) sc.enable_heat = flags.heat == 1;
  if (!flags.trace_out.empty()) Trace::SetEnabled(true);

  std::unique_ptr<net::ObjServer> server =
      engine != nullptr ? std::make_unique<net::ObjServer>(engine.get(), sc)
                        : std::make_unique<net::ObjServer>(db.get(), sc);
  s = server->Start();
  if (!s.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", s.ToString().c_str());
    return 1;
  }
  g_server = server.get();
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);

  std::printf(
      "serving on %s:%u (workers=%u max_inflight=%u default=%s shards=%u)\n",
      sc.host.c_str(), server->port(), sc.num_workers, sc.max_inflight,
      StrategyKindName(sc.default_strategy),
      engine != nullptr ? engine->num_shards() : 1);
  std::fflush(stdout);

  server->Wait();
  net::ObjServer::Stats st = server->stats();
  server->Stop();
  g_server = nullptr;
  std::printf(
      "server drained: %llu conns, %llu admitted, %llu responses, "
      "%llu busy-rejected, %llu bad frames\n",
      static_cast<unsigned long long>(st.accepted),
      static_cast<unsigned long long>(st.requests_admitted),
      static_cast<unsigned long long>(st.responses),
      static_cast<unsigned long long>(st.busy_rejected),
      static_cast<unsigned long long>(st.bad_frames));
  if (!flags.trace_out.empty()) {
    // Server-side half of a cross-process trace: merge with the client's
    // file via tools/trace_summary.py (spans stitch by trace id).
    Status ts = Trace::FlushToFile(flags.trace_out);
    if (!ts.ok()) {
      std::fprintf(stderr, "trace write failed: %s\n", ts.ToString().c_str());
      return 1;
    }
  }
  return 0;
}

/// --profile: one profiled RETRIEVE per configured strategy, through the
/// same ObjService path the wire's PROFILE flag takes — the printed JSON
/// is byte-identical to what a remote client receives.
int RunProfileReport(const DriverFlags& flags, const ExperimentConfig& config) {
  (void)flags;
  for (StrategyKind kind : config.strategies) {
    std::unique_ptr<ComplexDatabase> db;
    std::unique_ptr<shard::ShardedDatabase> sdb;
    std::unique_ptr<shard::ShardedEngine> engine;
    std::unique_ptr<net::ObjService> service;
    Status s;
    if (config.shards > 1) {
      s = shard::BuildShardedDatabase(config.db, config.shards, &sdb);
      if (s.ok()) {
        engine =
            std::make_unique<shard::ShardedEngine>(sdb.get(), config.options);
        service = std::make_unique<net::ObjService>(engine.get(), kind,
                                                    config.options);
      }
    } else {
      s = BuildDatabase(config.db, &db);
      if (s.ok()) {
        service =
            std::make_unique<net::ObjService>(db.get(), kind, config.options);
      }
    }
    if (!s.ok()) {
      std::fprintf(stderr, "build failed: %s\n", s.ToString().c_str());
      return 1;
    }

    net::Request req;
    req.verb = net::Verb::kRetrieve;
    req.flags = net::kReqFlagProfile;
    req.lo_parent = 0;
    req.num_top = config.workload.num_top;
    req.attr_index = 0;
    net::Response resp = service->Execute(req);
    if (resp.status != net::RespStatus::kOk) {
      std::fprintf(stderr, "%s: %s\n", StrategyKindName(kind),
                   resp.error.c_str());
      return 1;
    }
    std::printf("%s %s\n", StrategyKindName(kind), resp.profile_json.c_str());
  }
  return 0;
}

/// Physical I/O summed across every shard's disk (the sharded analog of
/// db->disk->counters()).
IoCounters SumShardCounters(const shard::ShardedDatabase& sdb) {
  IoCounters total;
  for (const auto& sh : sdb.shards) total += sh->disk->counters();
  return total;
}

/// shards > 1 without --serve: the sequential report over a scatter-gather
/// engine. Same table shape as the single-engine report; avg I/O is the
/// aggregate over all shards (each sub-query runs on its owning shard, so
/// the sum is the cross-cluster bill for the same logical workload).
int RunShardedReport(const ExperimentConfig& config) {
  std::printf("\n%-16s %12s %12s %12s %12s\n", "strategy", "avg I/O",
              "retrieve", "update", "result-sum");
  for (StrategyKind kind : config.strategies) {
    // Fresh sharded store per strategy, mirroring the single-engine loop:
    // identical contents (same seed), no inherited buffer or cache state.
    std::unique_ptr<shard::ShardedDatabase> sdb;
    Status s = shard::BuildShardedDatabase(config.db, config.shards, &sdb);
    if (!s.ok()) {
      std::fprintf(stderr, "build failed: %s\n", s.ToString().c_str());
      return 1;
    }
    // The retained reference database gives the generator the same shape —
    // and therefore the same query stream — as an unsharded run.
    std::vector<Query> queries;
    s = GenerateWorkload(config.workload, *sdb->reference, &queries);
    if (!s.ok()) {
      std::fprintf(stderr, "workload failed: %s\n", s.ToString().c_str());
      return 1;
    }
    shard::ShardedEngine engine(sdb.get(), config.options);

    uint64_t retrieve_io = 0, update_io = 0;
    uint32_t num_retrieves = 0, num_updates = 0;
    int64_t result_sum = 0;
    IoCounters run_start = SumShardCounters(*sdb);
    for (const Query& q : queries) {
      IoCounters before = SumShardCounters(*sdb);
      if (q.kind == Query::Kind::kRetrieve) {
        RetrieveResult result;
        s = engine.ExecuteRetrieve(kind, q, &result);
        if (!s.ok()) break;
        retrieve_io += (SumShardCounters(*sdb) - before).total();
        for (int32_t v : result.values) result_sum += v;
        ++num_retrieves;
      } else {
        s = engine.ExecuteUpdate(kind, q);
        if (!s.ok()) break;
        update_io += (SumShardCounters(*sdb) - before).total();
        ++num_updates;
      }
    }
    if (s.ok()) {
      // Deferred dirty pages are part of the bill, as in RunWorkload.
      for (const auto& sh : sdb->shards) {
        s = sh->pool->FlushAll();
        if (!s.ok()) break;
      }
    }
    if (!s.ok()) {
      std::fprintf(stderr, "%s: %s\n", StrategyKindName(kind),
                   s.ToString().c_str());
      return 1;
    }
    uint64_t total_io = (SumShardCounters(*sdb) - run_start).total();
    uint32_t num_queries = num_retrieves + num_updates;
    std::printf("%-16s %12.1f %12.1f %12.1f %12lld\n", StrategyKindName(kind),
                num_queries ? static_cast<double>(total_io) / num_queries : 0.0,
                num_retrieves
                    ? static_cast<double>(retrieve_io) / num_retrieves
                    : 0.0,
                num_updates ? static_cast<double>(update_io) / num_updates
                            : 0.0,
                static_cast<long long>(result_sum));
  }
  return 0;
}

/// The plans ADAPTIVE may pick. Plan choices are exposed through the
/// metrics registry ("adaptive.plan.<NAME>" counters, the registry pattern
/// the per-worker calibration state reports through), so the driver can
/// delta-snapshot them around a run in both sequential and concurrent mode.
constexpr StrategyKind kAdaptivePlans[] = {
    StrategyKind::kDfs, StrategyKind::kBfs, StrategyKind::kDfsCache,
    StrategyKind::kSmart, StrategyKind::kDfsClust,
};

struct PlanCountSnapshot {
  uint64_t counts[std::size(kAdaptivePlans)] = {};

  static PlanCountSnapshot Take() {
    PlanCountSnapshot s;
    for (size_t i = 0; i < std::size(kAdaptivePlans); ++i) {
      s.counts[i] = MetricsRegistry::Global()
                        .GetCounter(std::string("adaptive.plan.") +
                                    StrategyKindName(kAdaptivePlans[i]))
                        ->value();
    }
    return s;
  }
};

void PrintPlanChoices(const PlanCountSnapshot& before) {
  PlanCountSnapshot after = PlanCountSnapshot::Take();
  std::printf("%-16s", "  plan choices:");
  for (size_t i = 0; i < std::size(kAdaptivePlans); ++i) {
    uint64_t n = after.counts[i] - before.counts[i];
    if (n == 0) continue;
    std::printf(" %s=%llu", StrategyKindName(kAdaptivePlans[i]),
                static_cast<unsigned long long>(n));
  }
  std::printf("\n");
}

/// Background snapshot streamer for --metrics-interval: one JSON line of
/// the whole registry to stderr every interval until stopped.
class MetricsStreamer {
 public:
  explicit MetricsStreamer(uint64_t interval_ms) : interval_ms_(interval_ms) {
    if (interval_ms_ > 0) thread_ = std::thread([this] { Loop(); });
  }
  ~MetricsStreamer() {
    if (!thread_.joinable()) return;
    {
      std::lock_guard<std::mutex> l(mu_);
      stop_ = true;
    }
    cv_.notify_one();
    thread_.join();
  }

 private:
  void Loop() {
    std::unique_lock<std::mutex> l(mu_);
    while (!cv_.wait_for(l, std::chrono::milliseconds(interval_ms_),
                         [this] { return stop_; })) {
      std::string json = MetricsRegistry::Global().ToJson();
      std::fprintf(stderr, "metrics: %s\n", json.c_str());
    }
  }

  const uint64_t interval_ms_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

/// One row of the attribution table.
struct AttributionRow {
  std::string strategy;
  IoTagBreakdown tags;
};

void PrintAttributionTable(const std::vector<AttributionRow>& rows) {
  if (rows.empty()) return;
  // Only tags that moved for at least one strategy get a column.
  std::vector<IoTag> cols;
  for (size_t t = 0; t < kNumIoTags; ++t) {
    for (const AttributionRow& row : rows) {
      if (row.tags.total_for(static_cast<IoTag>(t)) > 0) {
        cols.push_back(static_cast<IoTag>(t));
        break;
      }
    }
  }
  std::printf("\nI/O attribution (pages; %% of strategy total):\n");
  std::printf("%-16s", "strategy");
  for (IoTag t : cols) std::printf(" %18s", IoTagName(t));
  std::printf(" %12s\n", "total");
  for (const AttributionRow& row : rows) {
    uint64_t total = row.tags.total();
    std::printf("%-16s", row.strategy.c_str());
    for (IoTag t : cols) {
      uint64_t n = row.tags.total_for(t);
      double pct = total > 0 ? 100.0 * static_cast<double>(n) /
                                   static_cast<double>(total)
                             : 0.0;
      std::printf(" %10llu (%4.1f%%)", static_cast<unsigned long long>(n),
                  pct);
    }
    std::printf(" %12llu\n", static_cast<unsigned long long>(total));
  }
}

bool ParseFlag(const char* arg, const char* name, const char** value) {
  size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *value = arg + n + 1;
  return true;
}

int Usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [--threads=K] [--num-queries=N] [--duration=S]\n"
               "          [--prefetch=on|off] [--readahead-pages=N] "
               "[--io-latency-us=U]\n"
               "          [--wal=on|off] [--mvcc=on|off] [--fault-seed=N] "
               "[--fault-rate=P]\n"
               "          [--fault-crash-point=NAME[:HIT]]\n"
               "          [--metrics-json=FILE] [--trace-out=FILE]\n"
               "          [--metrics-interval=MS] [--strategy=NAME]\n"
               "          [--calibration-window=N]\n"
               "          [--serve] [--port=N] [--max-inflight=N]\n"
               "          [--slow-query-us=N] [--heat=on|off]\n"
               "          [--profile]\n"
               "          [--shards=N]\n"
               "          <config-file | ->\n"
               "--serve runs the network server (DESIGN.md §13) over the\n"
               "config's database until SIGINT/SIGTERM or a SHUTDOWN verb;\n"
               "the first configured strategy is the server default\n"
               "--profile prints one RetrieveProfile (EXPLAIN ANALYZE) per\n"
               "strategy: per-tag I/O, cache hits, waits, per-shard timing\n"
               "--slow-query-us arms the slow-query ring while serving;\n"
               "--heat=off disables the traffic heat map (DESIGN.md §16)\n"
               "--shards=N hash-partitions the store across N engine\n"
               "instances with scatter-gather execution (DESIGN.md §14)\n"
               "--strategy overrides the config's STRATEGIES list (e.g.\n"
               "--strategy=adaptive); --calibration-window sets ADAPTIVE's\n"
               "EWMA horizon\n"
               "see src/core/experiment_config.h for the config format;\n"
               "--fault-crash-point=list prints the registered points\n",
               prog);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  DriverFlags flags;
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (ParseFlag(argv[i], "--threads", &v)) {
      flags.threads = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
      if (flags.threads == 0) return Usage(argv[0]);
    } else if (ParseFlag(argv[i], "--num-queries", &v)) {
      flags.num_queries = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (ParseFlag(argv[i], "--duration", &v)) {
      flags.duration_seconds = std::strtod(v, nullptr);
    } else if (ParseFlag(argv[i], "--prefetch", &v)) {
      if (std::strcmp(v, "on") == 0) flags.prefetch = 1;
      else if (std::strcmp(v, "off") == 0) flags.prefetch = 0;
      else return Usage(argv[0]);
    } else if (ParseFlag(argv[i], "--readahead-pages", &v)) {
      flags.readahead_pages =
          static_cast<int64_t>(std::strtoul(v, nullptr, 10));
    } else if (ParseFlag(argv[i], "--io-latency-us", &v)) {
      flags.io_latency_us =
          static_cast<int64_t>(std::strtoul(v, nullptr, 10));
    } else if (ParseFlag(argv[i], "--wal", &v)) {
      if (std::strcmp(v, "on") == 0) flags.wal = 1;
      else if (std::strcmp(v, "off") == 0) flags.wal = 0;
      else return Usage(argv[0]);
    } else if (ParseFlag(argv[i], "--mvcc", &v)) {
      if (std::strcmp(v, "on") == 0) flags.mvcc = 1;
      else if (std::strcmp(v, "off") == 0) flags.mvcc = 0;
      else return Usage(argv[0]);
    } else if (ParseFlag(argv[i], "--fault-seed", &v)) {
      flags.fault_seed = std::strtoull(v, nullptr, 10);
    } else if (ParseFlag(argv[i], "--fault-rate", &v)) {
      flags.fault_rate = std::strtod(v, nullptr);
      if (flags.fault_rate < 0 || flags.fault_rate > 1) return Usage(argv[0]);
    } else if (ParseFlag(argv[i], "--fault-crash-point", &v)) {
      flags.fault_crash_point = v;
    } else if (ParseFlag(argv[i], "--metrics-json", &v)) {
      flags.metrics_json = v;
    } else if (ParseFlag(argv[i], "--trace-out", &v)) {
      flags.trace_out = v;
    } else if (ParseFlag(argv[i], "--metrics-interval", &v)) {
      flags.metrics_interval_ms = std::strtoull(v, nullptr, 10);
    } else if (ParseFlag(argv[i], "--strategy", &v)) {
      flags.strategy = v;
    } else if (ParseFlag(argv[i], "--calibration-window", &v)) {
      flags.calibration_window =
          static_cast<int64_t>(std::strtoul(v, nullptr, 10));
      if (flags.calibration_window <= 0) return Usage(argv[0]);
    } else if (std::strcmp(argv[i], "--serve") == 0) {
      flags.serve = true;
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      flags.profile = true;
    } else if (ParseFlag(argv[i], "--slow-query-us", &v)) {
      flags.slow_query_us = static_cast<int64_t>(std::strtoul(v, nullptr, 10));
    } else if (ParseFlag(argv[i], "--heat", &v)) {
      if (std::strcmp(v, "on") == 0) flags.heat = 1;
      else if (std::strcmp(v, "off") == 0) flags.heat = 0;
      else return Usage(argv[0]);
    } else if (ParseFlag(argv[i], "--port", &v)) {
      flags.port = static_cast<int64_t>(std::strtoul(v, nullptr, 10));
      if (flags.port > 65535) return Usage(argv[0]);
    } else if (ParseFlag(argv[i], "--max-inflight", &v)) {
      flags.max_inflight =
          static_cast<int64_t>(std::strtoul(v, nullptr, 10));
      if (flags.max_inflight <= 0) return Usage(argv[0]);
    } else if (ParseFlag(argv[i], "--shards", &v)) {
      flags.shards = static_cast<int64_t>(std::strtoul(v, nullptr, 10));
      if (flags.shards <= 0) return Usage(argv[0]);
    } else if (argv[i][0] == '-' && argv[i][1] == '-') {
      return Usage(argv[0]);
    } else if (flags.config_path.empty()) {
      flags.config_path = argv[i];
    } else {
      return Usage(argv[0]);
    }
  }
  if (flags.config_path.empty()) return Usage(argv[0]);

  std::string text;
  if (flags.config_path == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    text = ss.str();
  } else {
    std::ifstream in(flags.config_path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", flags.config_path.c_str());
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    text = ss.str();
  }

  ExperimentConfig config;
  Status s = ParseExperimentConfig(text, &config);
  if (!s.ok()) {
    std::fprintf(stderr, "config error: %s\n", s.ToString().c_str());
    return 1;
  }
  if (!flags.strategy.empty()) {
    StrategyKind kind;
    s = ParseStrategyName(flags.strategy, &kind);
    if (!s.ok()) {
      std::fprintf(stderr, "config error: %s\n", s.ToString().c_str());
      return 2;
    }
    config.strategies.assign(1, kind);
    // Mirror the config parser's auto-provisioning for the override.
    if (kind == StrategyKind::kDfsCache || kind == StrategyKind::kSmart ||
        kind == StrategyKind::kDfsClustCache) {
      config.db.build_cache = true;
    }
    if (kind == StrategyKind::kDfsClust ||
        kind == StrategyKind::kDfsClustCache) {
      config.db.build_cluster = true;
    }
    if (kind == StrategyKind::kBfsJoinIndex) {
      config.db.build_join_index = true;
    }
  }
  if (flags.calibration_window > 0) {
    config.options.calibration_window =
        static_cast<uint32_t>(flags.calibration_window);
  }
  if (flags.num_queries > 0) config.workload.num_queries = flags.num_queries;
  if (flags.prefetch >= 0) config.db.prefetch = flags.prefetch == 1;
  if (flags.readahead_pages >= 0) {
    config.db.readahead_pages =
        static_cast<uint32_t>(flags.readahead_pages);
  }
  if (flags.io_latency_us >= 0) {
    config.db.io_latency_us = static_cast<uint32_t>(flags.io_latency_us);
  }
  if (flags.wal >= 0) config.db.enable_wal = flags.wal == 1;
  if (flags.mvcc >= 0) config.db.enable_mvcc = flags.mvcc == 1;
  if (flags.shards > 0) config.shards = static_cast<uint32_t>(flags.shards);

  if (flags.serve) return RunServer(flags, config);
  if (flags.profile) return RunProfileReport(flags, config);

  if (flags.fault_crash_point == "list") {
    for (const std::string& name : FaultInjector::RegisteredCrashPoints()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }
  std::string crash_point = flags.fault_crash_point;
  uint64_t crash_hit = 1;
  if (size_t colon = crash_point.find(':'); colon != std::string::npos) {
    crash_hit = std::strtoull(crash_point.c_str() + colon + 1, nullptr, 10);
    if (crash_hit == 0) crash_hit = 1;
    crash_point.resize(colon);
  }
  if (!crash_point.empty()) {
    const auto& points = FaultInjector::RegisteredCrashPoints();
    if (std::find(points.begin(), points.end(), crash_point) ==
        points.end()) {
      std::fprintf(stderr,
                   "unknown crash point '%s' (--fault-crash-point=list)\n",
                   crash_point.c_str());
      return 2;
    }
  }
  const bool faults = flags.fault_rate > 0 || !crash_point.empty();
  if (faults && !config.db.enable_wal) {
    std::fprintf(stderr,
                 "note: faults without --wal=on; failures will not be "
                 "recoverable\n");
  }

  std::printf(
      "database: |ParentRel|=%u SizeUnit=%u Use=%u Overlap=%u "
      "(ShareFactor=%u) child_rels=%u buffer=%u%s%s\n",
      config.db.num_parents, config.db.size_unit, config.db.use_factor,
      config.db.overlap_factor, config.db.share_factor(),
      config.db.num_child_rels, config.db.buffer_pages,
      config.db.build_cache ? " cache" : "",
      config.db.build_cluster ? " cluster" : "");
  std::printf(
      "workload: %u queries, NumTop=%u, Pr(UPDATE)=%.2f, batch=%u, "
      "seed=%llu\n",
      config.workload.num_queries, config.workload.num_top,
      config.workload.pr_update, config.workload.update_batch,
      static_cast<unsigned long long>(config.workload.seed));

  if (config.shards > 1) {
    if (flags.threads > 0 || faults) {
      std::fprintf(stderr,
                   "--shards report mode supports neither --threads nor "
                   "fault injection; use --serve for a concurrent sharded "
                   "server\n");
      return 2;
    }
    std::printf("engine: %u shards (scatter-gather)\n", config.shards);
    return RunShardedReport(config);
  }

  if (!flags.trace_out.empty()) Trace::SetEnabled(true);
  MetricsStreamer streamer(flags.metrics_interval_ms);
  std::vector<AttributionRow> attribution;

  const bool concurrent = flags.threads > 0;
  if (concurrent) {
    std::printf("engine: %u worker threads%s\n\n", flags.threads,
                flags.duration_seconds > 0 ? " (timed)" : "");
    std::printf("%-16s %10s %10s %10s %10s %10s %12s\n", "strategy",
                "queries/s", "p50 ms", "p95 ms", "p99 ms", "avg I/O",
                "result-sum");
  } else {
    std::printf("\n%-16s %12s %12s %12s %10s %8s %12s\n", "strategy",
                "avg I/O", "retrieve", "update", "hit-rate", "seq%",
                "result-sum");
  }

  for (StrategyKind kind : config.strategies) {
    // Fresh database per strategy: identical contents (same seed), no
    // inherited buffer or cache state.
    std::unique_ptr<ComplexDatabase> db;
    s = BuildDatabase(config.db, &db);
    if (!s.ok()) {
      std::fprintf(stderr, "build failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::vector<Query> queries;
    s = GenerateWorkload(config.workload, *db, &queries);
    if (!s.ok()) {
      std::fprintf(stderr, "workload failed: %s\n", s.ToString().c_str());
      return 1;
    }
    if (faults) {
      FaultInjector* fi = db->disk->fault_injector();
      fi->Configure(flags.fault_seed, flags.fault_rate, flags.fault_rate);
      if (!crash_point.empty()) {
        fi->ArmCrash(crash_point, static_cast<uint32_t>(crash_hit));
      }
    }

    PlanCountSnapshot plans_before = PlanCountSnapshot::Take();
    if (concurrent) {
      ConcurrentRunOptions opts;
      opts.num_threads = flags.threads;
      opts.duration_seconds = flags.duration_seconds;
      opts.seed = config.workload.seed;
      ConcurrentRunResult r;
      s = RunConcurrentWorkload(kind, config.options, db.get(), queries, opts,
                                &r);
      if (!s.ok()) {
        if (db->disk->fault_injector()->crashed() && db->wal != nullptr) {
          std::fprintf(stderr, "%s: %s\n", StrategyKindName(kind),
                       s.ToString().c_str());
          RecoveryReport rep;
          Status rs = RecoverDatabase(db.get(), &rep);
          if (!rs.ok()) {
            std::fprintf(stderr, "recovery failed: %s\n",
                         rs.ToString().c_str());
            return 1;
          }
          std::printf(
              "%-16s recovered: %llu txns redone, %llu pages, %llu frees, "
              "%llu frames dropped\n",
              StrategyKindName(kind),
              static_cast<unsigned long long>(rep.wal.txns_redone),
              static_cast<unsigned long long>(rep.wal.pages_redone),
              static_cast<unsigned long long>(rep.wal.frees_redone),
              static_cast<unsigned long long>(rep.frames_dropped));
          continue;
        }
        std::fprintf(stderr, "%s: %s\n", StrategyKindName(kind),
                     s.ToString().c_str());
        if (flags.fault_rate > 0) continue;  // faults were requested
        return 1;
      }
      std::printf("%-16s %10.0f %10.3f %10.3f %10.3f %10.1f %12lld\n",
                  StrategyKindName(kind), r.queries_per_sec,
                  r.latency.p50_us / 1000.0, r.latency.p95_us / 1000.0,
                  r.latency.p99_us / 1000.0, r.avg_io_per_query,
                  static_cast<long long>(r.combined.result_sum));
      attribution.push_back(
          AttributionRow{StrategyKindName(kind), r.combined.io_by_tag});
      if (kind == StrategyKind::kAdaptive) PrintPlanChoices(plans_before);
      continue;
    }

    std::unique_ptr<Strategy> strategy;
    s = MakeStrategy(kind, db.get(), config.options, &strategy);
    if (!s.ok()) {
      std::fprintf(stderr, "%s: %s\n", StrategyKindName(kind),
                   s.ToString().c_str());
      return 1;
    }
    RunResult r;
    s = RunWorkload(strategy.get(), db.get(), queries, &r);
    if (!s.ok()) {
      if (db->disk->fault_injector()->crashed() && db->wal != nullptr) {
        std::fprintf(stderr, "run crashed: %s\n", s.ToString().c_str());
        RecoveryReport rep;
        Status rs = RecoverDatabase(db.get(), &rep);
        if (!rs.ok()) {
          std::fprintf(stderr, "recovery failed: %s\n", rs.ToString().c_str());
          return 1;
        }
        std::printf(
            "%-16s recovered: %llu txns redone, %llu pages, %llu frees, "
            "%llu frames dropped\n",
            StrategyKindName(kind),
            static_cast<unsigned long long>(rep.wal.txns_redone),
            static_cast<unsigned long long>(rep.wal.pages_redone),
            static_cast<unsigned long long>(rep.wal.frees_redone),
            static_cast<unsigned long long>(rep.frames_dropped));
        continue;
      }
      std::fprintf(stderr, "run failed: %s\n", s.ToString().c_str());
      // A rate fault the user injected is an expected outcome for this
      // strategy's run, not a reason to abandon the rest of the table;
      // every strategy gets a fresh database, so nothing is shared.
      if (flags.fault_rate > 0) continue;
      return 1;
    }
    uint64_t probes = r.cache_stats.hits + r.cache_stats.misses;
    std::printf("%-16s %12.1f %12.1f %12.1f %9.1f%% %7.1f%% %12lld\n",
                StrategyKindName(kind), r.AvgIoPerQuery(), r.AvgRetrieveIo(),
                r.AvgUpdateIo(),
                probes ? 100.0 * r.cache_stats.hits / probes : 0.0,
                100.0 * r.io.seq_fraction(),
                static_cast<long long>(r.result_sum));
    attribution.push_back(AttributionRow{StrategyKindName(kind), r.io_by_tag});
    if (kind == StrategyKind::kAdaptive) PrintPlanChoices(plans_before);
  }

  PrintAttributionTable(attribution);

  if (!flags.metrics_json.empty()) {
    std::ofstream out(flags.metrics_json);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", flags.metrics_json.c_str());
      return 1;
    }
    MetricsRegistry::Global().WriteJson(out);
    out << "\n";
  }
  if (!flags.trace_out.empty()) {
    if (uint64_t dropped = Trace::dropped_events(); dropped > 0) {
      std::fprintf(stderr,
                   "trace: %llu events dropped to ring overwrite\n",
                   static_cast<unsigned long long>(dropped));
    }
    Status ts = Trace::FlushToFile(flags.trace_out);
    if (!ts.ok()) {
      std::fprintf(stderr, "trace write failed: %s\n", ts.ToString().c_str());
      return 1;
    }
  }
  return 0;
}
