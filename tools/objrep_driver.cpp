// objrep_driver — the analog of the paper's EQUEL/C driver (§4): reads an
// experiment config, builds the database, generates the query sequence,
// runs it under each named strategy, and reports average I/O.
//
//   $ ./build/tools/objrep_driver configs/fig3_point.cfg
//   $ ./build/tools/objrep_driver -        # read config from stdin
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/experiment_config.h"
#include "core/runner.h"
#include "objstore/database.h"

using namespace objrep;

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr,
                 "usage: %s <config-file | ->\n"
                 "see src/core/experiment_config.h for the format\n",
                 argv[0]);
    return 2;
  }
  std::string text;
  if (std::string(argv[1]) == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    text = ss.str();
  } else {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    text = ss.str();
  }

  ExperimentConfig config;
  Status s = ParseExperimentConfig(text, &config);
  if (!s.ok()) {
    std::fprintf(stderr, "config error: %s\n", s.ToString().c_str());
    return 1;
  }

  std::printf(
      "database: |ParentRel|=%u SizeUnit=%u Use=%u Overlap=%u "
      "(ShareFactor=%u) child_rels=%u buffer=%u%s%s\n",
      config.db.num_parents, config.db.size_unit, config.db.use_factor,
      config.db.overlap_factor, config.db.share_factor(),
      config.db.num_child_rels, config.db.buffer_pages,
      config.db.build_cache ? " cache" : "",
      config.db.build_cluster ? " cluster" : "");
  std::printf(
      "workload: %u queries, NumTop=%u, Pr(UPDATE)=%.2f, batch=%u, "
      "seed=%llu\n\n",
      config.workload.num_queries, config.workload.num_top,
      config.workload.pr_update, config.workload.update_batch,
      static_cast<unsigned long long>(config.workload.seed));

  std::printf("%-16s %12s %12s %12s %10s %12s\n", "strategy", "avg I/O",
              "retrieve", "update", "hit-rate", "result-sum");
  for (StrategyKind kind : config.strategies) {
    // Fresh database per strategy: identical contents (same seed), no
    // inherited buffer or cache state.
    std::unique_ptr<ComplexDatabase> db;
    s = BuildDatabase(config.db, &db);
    if (!s.ok()) {
      std::fprintf(stderr, "build failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::vector<Query> queries;
    s = GenerateWorkload(config.workload, *db, &queries);
    if (!s.ok()) {
      std::fprintf(stderr, "workload failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::unique_ptr<Strategy> strategy;
    s = MakeStrategy(kind, db.get(), config.options, &strategy);
    if (!s.ok()) {
      std::fprintf(stderr, "%s: %s\n", StrategyKindName(kind),
                   s.ToString().c_str());
      return 1;
    }
    RunResult r;
    s = RunWorkload(strategy.get(), db.get(), queries, &r);
    if (!s.ok()) {
      std::fprintf(stderr, "run failed: %s\n", s.ToString().c_str());
      return 1;
    }
    uint64_t probes = r.cache_stats.hits + r.cache_stats.misses;
    std::printf("%-16s %12.1f %12.1f %12.1f %9.1f%% %12lld\n",
                StrategyKindName(kind), r.AvgIoPerQuery(), r.AvgRetrieveIo(),
                r.AvgUpdateIo(),
                probes ? 100.0 * r.cache_stats.hits / probes : 0.0,
                static_cast<long long>(r.result_sum));
  }
  return 0;
}
