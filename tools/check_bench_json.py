#!/usr/bin/env python3
"""Schema check for bench/io_pipeline JSON output (BENCH_throughput.json).

Validates structure and value sanity so CI catches a bench whose emitter
drifted (missing fields, wrong types, nonsensical numbers) even when the
JSON still parses. Stdlib only.

Usage: check_bench_json.py FILE [--baseline FILE --tolerance PCT]
       check_bench_json.py --metrics FILE
       check_bench_json.py --adaptive FILE [--max-regret FRAC]
       check_bench_json.py --net FILE [--min-connections N]
                          [--baseline FILE --tolerance PCT]
       check_bench_json.py --shard FILE
       check_bench_json.py --mvcc FILE
       check_bench_json.py --readconc FILE
       check_bench_json.py --obs FILE [--max-overhead PCT]

With --metrics, FILE is instead a metrics-registry dump (the driver's
--metrics-json output) and only its schema is validated: the three
top-level sections, counter/gauge value types, and per-histogram summary
fields with ordered percentiles.

With --adaptive, FILE is a bench/adaptive_regret dump: every sweep point
must carry a finite regret >= 0 consistent with its oracle/adaptive I/O
figures, and --max-regret (default 0.10, the acceptance bound) caps the
worst point.

With --net, FILE is a bench/net_loopback dump (BENCH_net.json): the
steady phase must have shed nothing and carry ordered per-verb
percentiles, the overload phase must show SERVER_BUSY shedding with the
admitted requests' p99 bounded (no worse than twice the steady RETRIEVE
p99 — shedding keeps admitted latency at least as good as the unshedded
closed loop), and --min-connections (default 10000) enforces the
capacity floor. With --baseline, per-verb steady p99 and throughput are
also held to the baseline within --tolerance percent (default 25 for
--net: latency is host-sensitive, so this gate only means something
against a baseline from the same machine).

With --shard, FILE is a bench/shard_scaling dump (BENCH_shard_scaling
.json): shard counts must be unique and increasing starting at the
1-shard baseline (scaleout exactly 1), every point's scaleout must be
consistent with its retrieve throughput, and the scale-out-efficiency
floors are enforced for whichever points are present: >= 1.6x at 2
shards and >= 2.5x at 4 (a --quick run sweeps only 1 and 2, so the
4-shard floor binds only on the committed full sweep).

With --mvcc, FILE is a bench/mvcc_contention dump (BENCH_mvcc.json):
sweep points must be unique with self-consistent throughput and speedup
figures, and every point at >= 8 threads with Pr(UPDATE) = 0.3 must show
MVCC retrieving at >= 2x the 2PL rate (the acceptance floor; a --quick
run sweeps below that point, so the floor binds only on the committed
full sweep).

With --readconc, FILE is a bench/read_concurrency dump
(BENCH_read_concurrency.json): sweep points must be unique with
self-consistent throughput and speedup figures, and every point at >= 8
threads must show the overlapped miss path retrieving at >= 3x the
serialized-under-evict_mu_ rate (the acceptance floor; a --quick run
sweeps below that point, so the floor binds only on the committed full
sweep).

With --obs, FILE is a bench/obs_overhead dump (BENCH_obs_overhead.json):
the baseline and enabled throughput figures must be self-consistent with
overhead_pct, the enabled-tracing overhead is capped by --max-overhead
(default 5, the acceptance bound), the embedded RetrieveProfile must obey
the exact-sum invariant (per-tag reads/writes summing to its totals, per
I/O block, including every per-shard slice), and the heat section must
carry non-negative EWMA heats.

With --baseline (default mode), also compares per-(strategy, prefetch,
workers) run results against the baseline file. Two signals are checked:

- avg_io_per_query must match the baseline within 1% (the pipeline is
  deterministic; drift here is a real behavior change, machine-independent)
- queries_per_sec must not regress by more than PCT percent (default 3).
  Wall clock is host-sensitive, so this gate is only meaningful against a
  baseline recorded on the same machine; CI's smoke uses schema-only mode.

Speedups never fail the check.
"""

import argparse
import json
import sys

RUN_FIELDS = {
    "prefetch": bool,
    "workers": int,
    "seconds": (int, float),
    "queries_per_sec": (int, float),
    "speedup": (int, float),
    "avg_io_per_query": (int, float),
    "seq_read_pct": (int, float),
    "io_total": int,
    "io_by_tag": dict,
}

# Tag names bench emitters may use (src/obs/io_context.h). "none" is
# legitimate: setup I/O inside the measured window is untagged.
IO_TAGS = {
    "none", "parent_scan", "index_probe", "heap_fetch", "cluster_scan",
    "temp_sort", "cache_fetch", "cache_maint", "update", "prefetch", "wal",
    "mvcc_commit", "mvcc_fold",
}


def fail(msg):
    print(f"check_bench_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_type(obj, field, types, ctx):
    if field not in obj:
        fail(f"{ctx}: missing field '{field}'")
    if not isinstance(obj[field], types):
        fail(f"{ctx}: field '{field}' has type {type(obj[field]).__name__}")
    return obj[field]


def validate(doc):
    if not isinstance(doc, dict):
        fail("top level is not an object")
    check_type(doc, "bench", str, "top level")
    check_type(doc, "io_latency_us", int, "top level")
    check_type(doc, "io_transfer_us", int, "top level")
    num_queries = check_type(doc, "num_queries", int, "top level")
    if num_queries <= 0:
        fail("num_queries must be positive")
    strategies = check_type(doc, "strategies", list, "top level")
    if not strategies:
        fail("strategies is empty")

    runs_by_key = {}
    for s in strategies:
        name = check_type(s, "strategy", str, "strategy entry")
        runs = check_type(s, "runs", list, f"strategy {name}")
        if not runs:
            fail(f"strategy {name}: runs is empty")
        for run in runs:
            ctx = f"strategy {name} run {run.get('workers', '?')}w"
            for field, types in RUN_FIELDS.items():
                check_type(run, field, types, ctx)
            if run["seconds"] <= 0 or run["queries_per_sec"] <= 0:
                fail(f"{ctx}: non-positive timing")
            if run["speedup"] <= 0 or run["avg_io_per_query"] < 0:
                fail(f"{ctx}: nonsensical speedup/io")
            if not 0 <= run["seq_read_pct"] <= 100:
                fail(f"{ctx}: seq_read_pct out of [0, 100]")
            if run["workers"] < 0:
                fail(f"{ctx}: negative workers")
            if run["io_total"] < 0:
                fail(f"{ctx}: negative io_total")
            for tag, count in run["io_by_tag"].items():
                if tag not in IO_TAGS:
                    fail(f"{ctx}: unknown io_by_tag key '{tag}'")
                if not isinstance(count, int) or count <= 0:
                    fail(f"{ctx}: io_by_tag['{tag}'] must be a positive int"
                         " (zero tags are omitted)")
            if sum(run["io_by_tag"].values()) != run["io_total"]:
                fail(f"{ctx}: io_by_tag does not sum to io_total — "
                     "attribution lost pages")
            runs_by_key[(name, run["prefetch"], run["workers"])] = run
        # The first run of each strategy is the no-prefetch baseline the
        # speedups are computed against.
        base = runs[0]
        if base["prefetch"] or base["workers"] != 0:
            fail(f"strategy {name}: first run is not the baseline config")
    return runs_by_key


def compare(current, baseline, tolerance):
    # Compare over the intersection of run configs: a --quick run sweeps a
    # subset of the committed full sweep's (strategy, prefetch, workers)
    # points, and those points must still hit baseline throughput.
    matched = 0
    worst = 0.0
    for key, cur_run in current.items():
        base_run = baseline.get(key)
        if base_run is None:
            continue
        matched += 1
        base_io = base_run["avg_io_per_query"]
        cur_io = cur_run["avg_io_per_query"]
        if base_io > 0 and abs(cur_io - base_io) / base_io > 0.01:
            fail(
                f"run {key}: avg_io_per_query {cur_io:.2f} vs baseline "
                f"{base_io:.2f} — the I/O pipeline changed behavior"
            )
        base_qps = base_run["queries_per_sec"]
        cur_qps = cur_run["queries_per_sec"]
        drop_pct = 100.0 * (base_qps - cur_qps) / base_qps
        worst = max(worst, drop_pct)
        if drop_pct > tolerance:
            fail(
                f"run {key}: {cur_qps:.2f} q/s vs baseline "
                f"{base_qps:.2f} q/s ({drop_pct:.1f}% regression, "
                f"tolerance {tolerance}%)"
            )
    if matched == 0:
        fail("no run config in common with the baseline")
    print(f"check_bench_json: {matched} runs within {tolerance}% of "
          f"baseline (worst regression {worst:.1f}%)")


def validate_metrics(doc):
    if not isinstance(doc, dict):
        fail("metrics: top level is not an object")
    counters = check_type(doc, "counters", dict, "metrics")
    gauges = check_type(doc, "gauges", dict, "metrics")
    histograms = check_type(doc, "histograms", dict, "metrics")
    for name, v in counters.items():
        if not isinstance(v, int) or v < 0:
            fail(f"metrics: counter '{name}' is not a non-negative int")
    for name, v in gauges.items():
        if not isinstance(v, int):
            fail(f"metrics: gauge '{name}' is not an int")
    for name, h in histograms.items():
        ctx = f"metrics: histogram '{name}'"
        for field in ("count", "sum", "max", "p50", "p90", "p99"):
            v = check_type(h, field, int, ctx)
            if v < 0:
                fail(f"{ctx}: negative {field}")
        if not h["p50"] <= h["p90"] <= h["p99"] <= h["max"]:
            fail(f"{ctx}: percentiles not ordered")
        if h["count"] == 0 and (h["sum"] or h["max"]):
            fail(f"{ctx}: empty histogram with nonzero sum/max")
    return len(counters) + len(gauges) + len(histograms)


ADAPTIVE_POINT_FIELDS = {
    "figure": str,
    "share_factor": int,
    "num_top": int,
    "pr_update": (int, float),
    "num_queries": int,
    "oracle": str,
    "oracle_io": (int, float),
    "adaptive_io": (int, float),
    "regret": (int, float),
    "dominant_plan": str,
}


def validate_adaptive(doc, max_regret):
    import math

    if not isinstance(doc, dict):
        fail("adaptive: top level is not an object")
    if check_type(doc, "bench", str, "adaptive") != "adaptive_regret":
        fail("adaptive: bench field is not 'adaptive_regret'")
    candidates = check_type(doc, "candidates", list, "adaptive")
    if not candidates or not all(isinstance(c, str) for c in candidates):
        fail("adaptive: candidates must be a non-empty list of names")
    points = check_type(doc, "points", list, "adaptive")
    if not points:
        fail("adaptive: points is empty")
    worst = 0.0
    for p in points:
        ctx = (f"point ({p.get('figure', '?')}, sf={p.get('share_factor', '?')}, "
               f"top={p.get('num_top', '?')}, pr={p.get('pr_update', '?')})")
        for field, types in ADAPTIVE_POINT_FIELDS.items():
            check_type(p, field, types, ctx)
        if p["figure"] not in ("fig3", "fig4", "fig5"):
            fail(f"{ctx}: unknown figure '{p['figure']}'")
        if p["oracle"] not in candidates:
            fail(f"{ctx}: oracle '{p['oracle']}' not in candidates")
        if p["num_queries"] <= 0:
            fail(f"{ctx}: non-positive num_queries")
        if not 0 <= p["pr_update"] <= 1:
            fail(f"{ctx}: pr_update out of [0, 1]")
        if p["oracle_io"] <= 0 or p["adaptive_io"] < 0:
            fail(f"{ctx}: nonsensical I/O figures")
        regret = p["regret"]
        if not math.isfinite(regret) or regret < 0:
            fail(f"{ctx}: regret must be finite and >= 0, got {regret}")
        expect = max(0.0, p["adaptive_io"] - p["oracle_io"]) / \
            max(p["oracle_io"], 1.0)
        if abs(regret - expect) > 1e-4:
            fail(f"{ctx}: regret {regret:.6f} inconsistent with I/O figures "
                 f"(expected {expect:.6f})")
        worst = max(worst, regret)
        if max_regret is not None and regret > max_regret:
            fail(f"{ctx}: regret {100 * regret:.1f}% exceeds the "
                 f"{100 * max_regret:.0f}% bound (oracle {p['oracle']} "
                 f"{p['oracle_io']:.1f} vs adaptive {p['adaptive_io']:.1f})")
    for field in ("max_regret", "mean_regret"):
        v = check_type(doc, field, (int, float), "adaptive")
        if not math.isfinite(v) or v < 0:
            fail(f"adaptive: {field} must be finite and >= 0")
    if abs(doc["max_regret"] - worst) > 1e-4:
        fail("adaptive: max_regret does not match the worst point")
    return len(points), worst


# Scale-out-efficiency floors by shard count (the acceptance bounds for
# bench/shard_scaling). Only points actually present are held to them.
SHARD_SCALEOUT_FLOORS = {2: 1.6, 4: 2.5}


def validate_shard(doc):
    if not isinstance(doc, dict):
        fail("shard: top level is not an object")
    if check_type(doc, "bench", str, "shard") != "shard_scaling":
        fail("shard: bench field is not 'shard_scaling'")
    check_type(doc, "strategy", str, "shard")
    if check_type(doc, "clients", int, "shard") <= 0:
        fail("shard: non-positive clients")
    if check_type(doc, "duration_seconds", (int, float), "shard") <= 0:
        fail("shard: non-positive duration")
    if check_type(doc, "io_latency_us", int, "shard") < 0:
        fail("shard: negative io_latency_us")
    points = check_type(doc, "points", list, "shard")
    if not points:
        fail("shard: points is empty")
    base_rps = None
    prev_shards = 0
    for p in points:
        ctx = f"shard point {p.get('shards', '?')}"
        shards = check_type(p, "shards", int, ctx)
        rps = check_type(p, "retrieves_per_sec", (int, float), ctx)
        qps = check_type(p, "queries_per_sec", (int, float), ctx)
        scaleout = check_type(p, "scaleout", (int, float), ctx)
        if shards <= prev_shards:
            fail(f"{ctx}: shard counts must be unique and increasing")
        prev_shards = shards
        if rps <= 0 or qps < rps:
            fail(f"{ctx}: nonsensical throughput figures")
        if base_rps is None:
            if shards != 1:
                fail("shard: first point is not the 1-shard baseline")
            if abs(scaleout - 1.0) > 1e-6:
                fail("shard: baseline scaleout is not 1")
            base_rps = rps
        expect = rps / base_rps
        if abs(scaleout - expect) > max(1e-3, 1e-3 * expect):
            fail(f"{ctx}: scaleout {scaleout:.3f} inconsistent with "
                 f"throughput (expected {expect:.3f})")
        floor = SHARD_SCALEOUT_FLOORS.get(shards)
        if floor is not None and scaleout < floor:
            fail(f"{ctx}: scaleout {scaleout:.2f}x is below the {floor}x "
                 f"floor ({rps:.0f} vs baseline {base_rps:.0f} retrieves/s)")
    return points


# The MVCC acceptance floor (bench/mvcc_contention): at >= 8 threads and
# Pr(UPDATE) = 0.3, snapshot execution must retrieve at >= 2x the 2PL
# rate. A --quick run sweeps below that point, so the floor binds only on
# the committed full-sweep JSON.
MVCC_SPEEDUP_FLOOR = 2.0
MVCC_FLOOR_THREADS = 8
MVCC_FLOOR_PR_UPDATE = 0.3

MVCC_POINT_FIELDS = {
    "threads": int,
    "pr_update": (int, float),
    "twopl_retrieves_per_sec": (int, float),
    "twopl_queries_per_sec": (int, float),
    "mvcc_retrieves_per_sec": (int, float),
    "mvcc_queries_per_sec": (int, float),
    "retrieve_speedup": (int, float),
}


def validate_mvcc(doc):
    if not isinstance(doc, dict):
        fail("mvcc: top level is not an object")
    if check_type(doc, "bench", str, "mvcc") != "mvcc_contention":
        fail("mvcc: bench field is not 'mvcc_contention'")
    check_type(doc, "strategy", str, "mvcc")
    if check_type(doc, "duration_seconds", (int, float), "mvcc") <= 0:
        fail("mvcc: non-positive duration")
    if check_type(doc, "io_latency_us", int, "mvcc") < 0:
        fail("mvcc: negative io_latency_us")
    points = check_type(doc, "points", list, "mvcc")
    if not points:
        fail("mvcc: points is empty")
    seen = set()
    floor_points = 0
    for p in points:
        ctx = (f"mvcc point ({p.get('threads', '?')} threads, "
               f"pr={p.get('pr_update', '?')})")
        for field, types in MVCC_POINT_FIELDS.items():
            check_type(p, field, types, ctx)
        if p["threads"] <= 0:
            fail(f"{ctx}: non-positive threads")
        if not 0 <= p["pr_update"] <= 1:
            fail(f"{ctx}: pr_update out of [0, 1]")
        key = (p["threads"], round(p["pr_update"], 6))
        if key in seen:
            fail(f"{ctx}: duplicate sweep point")
        seen.add(key)
        for field in ("twopl_retrieves_per_sec", "mvcc_retrieves_per_sec"):
            if p[field] <= 0:
                fail(f"{ctx}: non-positive {field}")
        for mode in ("twopl", "mvcc"):
            if p[f"{mode}_queries_per_sec"] < p[f"{mode}_retrieves_per_sec"]:
                fail(f"{ctx}: {mode} retrieves exceed total queries")
        expect = p["mvcc_retrieves_per_sec"] / p["twopl_retrieves_per_sec"]
        if abs(p["retrieve_speedup"] - expect) > max(1e-3, 1e-3 * expect):
            fail(f"{ctx}: retrieve_speedup {p['retrieve_speedup']:.3f} "
                 f"inconsistent with throughput (expected {expect:.3f})")
        if (p["threads"] >= MVCC_FLOOR_THREADS and
                abs(p["pr_update"] - MVCC_FLOOR_PR_UPDATE) < 1e-6):
            floor_points += 1
            if p["retrieve_speedup"] < MVCC_SPEEDUP_FLOOR:
                fail(f"{ctx}: retrieve speedup {p['retrieve_speedup']:.2f}x "
                     f"is below the {MVCC_SPEEDUP_FLOOR}x floor "
                     f"({p['mvcc_retrieves_per_sec']:.0f} vs "
                     f"{p['twopl_retrieves_per_sec']:.0f} retrieves/s)")
    return points, floor_points


# The read-concurrency acceptance floor (bench/read_concurrency): at
# >= 8 threads the coalesced overlapped miss path must retrieve at >= 3x
# the serialized baseline (miss I/O held under evict_mu_). A --quick run
# sweeps below that point, so the floor binds only on the committed
# full-sweep JSON.
READCONC_SPEEDUP_FLOOR = 3.0
READCONC_FLOOR_THREADS = 8

READCONC_POINT_FIELDS = {
    "threads": int,
    "serialized_retrieves_per_sec": (int, float),
    "concurrent_retrieves_per_sec": (int, float),
    "speedup": (int, float),
}


def validate_readconc(doc):
    if not isinstance(doc, dict):
        fail("readconc: top level is not an object")
    if check_type(doc, "bench", str, "readconc") != "read_concurrency":
        fail("readconc: bench field is not 'read_concurrency'")
    check_type(doc, "strategy", str, "readconc")
    if check_type(doc, "duration_seconds", (int, float), "readconc") <= 0:
        fail("readconc: non-positive duration")
    if check_type(doc, "io_latency_us", int, "readconc") < 0:
        fail("readconc: negative io_latency_us")
    points = check_type(doc, "points", list, "readconc")
    if not points:
        fail("readconc: points is empty")
    seen = set()
    floor_points = 0
    for p in points:
        ctx = f"readconc point ({p.get('threads', '?')} threads)"
        for field, types in READCONC_POINT_FIELDS.items():
            check_type(p, field, types, ctx)
        if p["threads"] <= 0:
            fail(f"{ctx}: non-positive threads")
        if p["threads"] in seen:
            fail(f"{ctx}: duplicate sweep point")
        seen.add(p["threads"])
        for field in ("serialized_retrieves_per_sec",
                      "concurrent_retrieves_per_sec"):
            if p[field] <= 0:
                fail(f"{ctx}: non-positive {field}")
        expect = (p["concurrent_retrieves_per_sec"] /
                  p["serialized_retrieves_per_sec"])
        if abs(p["speedup"] - expect) > max(1e-3, 1e-3 * expect):
            fail(f"{ctx}: speedup {p['speedup']:.3f} inconsistent with "
                 f"throughput (expected {expect:.3f})")
        if p["threads"] >= READCONC_FLOOR_THREADS:
            floor_points += 1
            if p["speedup"] < READCONC_SPEEDUP_FLOOR:
                fail(f"{ctx}: speedup {p['speedup']:.2f}x is below the "
                     f"{READCONC_SPEEDUP_FLOOR}x floor "
                     f"({p['concurrent_retrieves_per_sec']:.0f} vs "
                     f"{p['serialized_retrieves_per_sec']:.0f} retrieves/s)")
    return points, floor_points


def check_profile_io(io, ctx):
    """One RetrieveProfile I/O block: known tags, positive entries, and
    per-tag reads/writes summing exactly to the block's totals."""
    total_reads = check_type(io, "total_reads", int, ctx)
    total_writes = check_type(io, "total_writes", int, ctx)
    if total_reads < 0 or total_writes < 0:
        fail(f"{ctx}: negative totals")
    tags = check_type(io, "tags", dict, ctx)
    sum_reads = sum_writes = 0
    for tag, entry in tags.items():
        if tag not in IO_TAGS:
            fail(f"{ctx}: unknown tag '{tag}'")
        r = check_type(entry, "reads", int, f"{ctx} tag {tag}")
        w = check_type(entry, "writes", int, f"{ctx} tag {tag}")
        if r < 0 or w < 0 or (r == 0 and w == 0):
            fail(f"{ctx}: tag '{tag}' entries must be non-negative and "
                 "nonzero (zero tags are omitted)")
        sum_reads += r
        sum_writes += w
    if sum_reads != total_reads or sum_writes != total_writes:
        fail(f"{ctx}: tags sum to {sum_reads}r/{sum_writes}w but totals "
             f"claim {total_reads}r/{total_writes}w — attribution lost pages")


def validate_profile(p, ctx):
    for field in ("trace_id", "total_us", "lock_wait_us", "commit_wait_us",
                  "cache_hits", "cache_misses", "rows"):
        if check_type(p, field, int, ctx) < 0:
            fail(f"{ctx}: negative {field}")
    check_type(p, "verb", str, ctx)
    check_type(p, "plan", int, ctx)
    check_profile_io(check_type(p, "io", dict, ctx), f"{ctx} io")
    shards = check_type(p, "shards", list, ctx)
    seen = set()
    for s in shards:
        sctx = f"{ctx} shard {s.get('shard', '?')}"
        k = check_type(s, "shard", int, sctx)
        if k in seen:
            fail(f"{sctx}: duplicate shard slice")
        seen.add(k)
        if check_type(s, "us", int, sctx) < 0:
            fail(f"{sctx}: negative us")
        check_profile_io(check_type(s, "io", dict, sctx), sctx)


def validate_obs(doc, max_overhead):
    if not isinstance(doc, dict):
        fail("obs: top level is not an object")
    if check_type(doc, "bench", str, "obs") != "obs_overhead":
        fail("obs: bench field is not 'obs_overhead'")
    if check_type(doc, "threads", int, "obs") <= 0:
        fail("obs: non-positive threads")
    if check_type(doc, "duration_seconds", (int, float), "obs") <= 0:
        fail("obs: non-positive duration")
    baseline = check_type(doc, "baseline_rps", (int, float), "obs")
    enabled = check_type(doc, "enabled_rps", (int, float), "obs")
    if baseline <= 0 or enabled <= 0:
        fail("obs: non-positive throughput")
    overhead = check_type(doc, "overhead_pct", (int, float), "obs")
    expect = 100.0 * (baseline - enabled) / baseline
    if abs(overhead - expect) > max(0.01, 1e-3 * abs(expect)):
        fail(f"obs: overhead_pct {overhead:.3f} inconsistent with "
             f"throughput figures (expected {expect:.3f})")
    if max_overhead is not None and overhead > max_overhead:
        fail(f"obs: enabled-tracing overhead {overhead:.2f}% exceeds the "
             f"{max_overhead:.0f}% bound ({enabled:.0f} vs baseline "
             f"{baseline:.0f} retrieves/s)")
    validate_profile(check_type(doc, "profile", dict, "obs"), "obs profile")
    heat = check_type(doc, "heat", dict, "obs")
    if check_type(heat, "touches", int, "obs heat") <= 0:
        fail("obs heat: the tracked run recorded no touches")
    tops = check_type(heat, "top_parents", list, "obs heat")
    if not tops:
        fail("obs heat: top_parents is empty")
    prev = None
    for t in tops:
        ctx = f"obs heat parent {t.get('parent', '?')}"
        check_type(t, "parent", int, ctx)
        h = check_type(t, "heat", (int, float), ctx)
        if h < 0:
            fail(f"{ctx}: negative heat")
        if prev is not None and h > prev + 1e-9:
            fail("obs heat: top_parents not sorted by heat")
        prev = h
    return overhead


NET_VERBS = ("RETRIEVE", "UPDATE", "PING")


def check_percentiles(obj, ctx):
    """Validates an ordered count/p50/p99/p999/max summary block."""
    for field in ("count", "p50_us", "p99_us", "p999_us", "max_us"):
        v = check_type(obj, field, int, ctx)
        if v < 0:
            fail(f"{ctx}: negative {field}")
    if not obj["p50_us"] <= obj["p99_us"] <= obj["p999_us"] <= obj["max_us"]:
        fail(f"{ctx}: percentiles not ordered")
    if obj["count"] == 0 and obj["max_us"]:
        fail(f"{ctx}: empty summary with nonzero max")


def validate_net(doc, min_connections):
    if not isinstance(doc, dict):
        fail("net: top level is not an object")
    if check_type(doc, "bench", str, "net") != "net_loopback":
        fail("net: bench field is not 'net_loopback'")
    connections = check_type(doc, "connections", int, "net")
    if connections < min_connections:
        fail(f"net: only {connections} connections — the capacity floor "
             f"is {min_connections} (pass --min-connections for quick runs)")
    for field in ("client_procs", "server_workers"):
        if check_type(doc, field, int, "net") <= 0:
            fail(f"net: non-positive {field}")

    steady = check_type(doc, "steady", dict, "net")
    if check_type(steady, "seconds", (int, float), "net steady") <= 0:
        fail("net steady: non-positive seconds")
    if check_type(steady, "throughput_rps", (int, float), "net steady") <= 0:
        fail("net steady: non-positive throughput")
    if check_type(steady, "requests_ok", int, "net steady") <= 0:
        fail("net steady: no successful requests")
    if check_type(steady, "busy", int, "net steady") != 0:
        fail("net steady: shed load despite a provisioned budget")
    if check_type(steady, "max_inflight", int, "net steady") < connections:
        fail("net steady: budget below the connection count — the phase "
             "was not actually unshedded")
    verbs = check_type(steady, "verbs", dict, "net steady")
    for name in NET_VERBS:
        if name not in verbs:
            fail(f"net steady: verb '{name}' missing")
        check_percentiles(verbs[name], f"net steady verb {name}")
        if verbs[name]["count"] == 0:
            fail(f"net steady: verb '{name}' has no samples")
    for name in verbs:
        if name not in NET_VERBS:
            fail(f"net steady: unknown verb '{name}'")

    overload = check_type(doc, "overload", dict, "net")
    if check_type(overload, "seconds", (int, float), "net overload") <= 0:
        fail("net overload: non-positive seconds")
    budget = check_type(overload, "max_inflight", int, "net overload")
    if not 0 < budget < connections:
        fail("net overload: budget was not an overload "
             f"({budget} vs {connections} connections)")
    if check_type(overload, "busy_rejections", int, "net overload") <= 0:
        fail("net overload: no SERVER_BUSY rejections — admission control "
             "never engaged")
    admitted = check_type(overload, "admitted", dict, "net overload")
    check_percentiles(admitted, "net overload admitted")
    if admitted["count"] <= 0:
        fail("net overload: nothing was admitted — that is collapse, "
             "not shedding")
    # The shedding contract: the few admitted requests must be served at
    # least as fast as the unshedded steady closed loop (2x slack for
    # measurement noise; 20ms floor so near-idle quick runs don't flap).
    bound = max(2 * verbs["RETRIEVE"]["p99_us"], 20000)
    if admitted["p99_us"] > bound:
        fail(f"net overload: admitted p99 {admitted['p99_us']}us exceeds "
             f"the {bound}us bound — shedding is not keeping admitted "
             "latency bounded")

    server = check_type(doc, "server", dict, "net")
    for field in ("accepted", "requests_admitted", "responses",
                  "busy_rejected", "bad_frames"):
        if check_type(server, field, int, "net server") < 0:
            fail(f"net server: negative {field}")
    if server["accepted"] < connections:
        fail("net server: accepted fewer connections than the bench claims")
    if server["bad_frames"] != 0:
        fail("net server: bad frames on a clean loopback run")
    return doc


def check_netload_summary(obj, ctx):
    """Validates one net_load client/latency summary block."""
    for field in ("clients", "connected", "ok", "busy", "rejected",
                  "transport_errors", "p50_us", "p99_us", "p999_us",
                  "max_us"):
        if check_type(obj, field, int, ctx) < 0:
            fail(f"{ctx}: negative {field}")
    if obj["connected"] > obj["clients"]:
        fail(f"{ctx}: more connections than clients")
    if not obj["p50_us"] <= obj["p99_us"] <= obj["p999_us"] <= obj["max_us"]:
        fail(f"{ctx}: percentiles not ordered")


def validate_netload(doc):
    """tools/net_load --json dump: overall + per-endpoint percentiles."""
    if not isinstance(doc, dict):
        fail("netload: top level is not an object")
    if check_type(doc, "bench", str, "netload") != "net_load":
        fail("netload: bench field is not 'net_load'")
    if check_type(doc, "duration_s", (int, float), "netload") <= 0:
        fail("netload: non-positive duration")
    if check_type(doc, "throughput_rps", (int, float), "netload") < 0:
        fail("netload: negative throughput")
    overall = check_type(doc, "overall", dict, "netload")
    check_netload_summary(overall, "netload overall")
    if overall["ok"] <= 0:
        fail("netload: no successful requests")
    if overall["transport_errors"] != 0:
        fail("netload: transport errors on the run")
    endpoints = check_type(doc, "endpoints", list, "netload")
    if not endpoints:
        fail("netload: endpoints is empty")
    for e in endpoints:
        ctx = f"netload endpoint {e.get('host', '?')}:{e.get('port', '?')}"
        check_type(e, "host", str, ctx)
        check_type(e, "port", int, ctx)
        check_netload_summary(e, ctx)
    if sum(e["ok"] for e in endpoints) != overall["ok"]:
        fail("netload: per-endpoint ok counts do not sum to overall")
    return overall


def compare_net(current, baseline, tolerance):
    """Holds steady per-verb p99 and throughput to the baseline."""
    checked = 0
    worst = 0.0
    for name in NET_VERBS:
        base_p99 = baseline["steady"]["verbs"][name]["p99_us"]
        cur_p99 = current["steady"]["verbs"][name]["p99_us"]
        if base_p99 > 0:
            growth = 100.0 * (cur_p99 - base_p99) / base_p99
            worst = max(worst, growth)
            checked += 1
            if growth > tolerance:
                fail(f"net: steady {name} p99 {cur_p99}us vs baseline "
                     f"{base_p99}us (+{growth:.1f}%, tolerance {tolerance}%)")
    base_rps = baseline["steady"]["throughput_rps"]
    cur_rps = current["steady"]["throughput_rps"]
    drop = 100.0 * (base_rps - cur_rps) / base_rps
    worst = max(worst, drop)
    if drop > tolerance:
        fail(f"net: throughput {cur_rps:.0f} rps vs baseline "
             f"{base_rps:.0f} rps (-{drop:.1f}%, tolerance {tolerance}%)")
    print(f"check_bench_json: net within {tolerance}% of baseline "
          f"({checked} verbs + throughput, worst +{worst:.1f}%)")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("file")
    parser.add_argument("--baseline")
    parser.add_argument("--tolerance", type=float, default=None,
                        help="regression tolerance PCT (default 3, "
                             "or 25 with --net)")
    parser.add_argument("--net", action="store_true",
                        help="FILE is a bench/net_loopback dump")
    parser.add_argument("--min-connections", type=int, default=10000,
                        help="capacity floor for --net (lower it for "
                             "--quick bench runs)")
    parser.add_argument("--metrics", action="store_true",
                        help="FILE is a metrics-registry dump, not bench JSON")
    parser.add_argument("--adaptive", action="store_true",
                        help="FILE is a bench/adaptive_regret dump")
    parser.add_argument("--shard", action="store_true",
                        help="FILE is a bench/shard_scaling dump")
    parser.add_argument("--mvcc", action="store_true",
                        help="FILE is a bench/mvcc_contention dump")
    parser.add_argument("--readconc", action="store_true",
                        help="FILE is a bench/read_concurrency dump")
    parser.add_argument("--obs", action="store_true",
                        help="FILE is a bench/obs_overhead dump")
    parser.add_argument("--netload", action="store_true",
                        help="FILE is a tools/net_load --json dump")
    parser.add_argument("--max-regret", type=float, default=0.10,
                        help="worst-point regret bound for --adaptive "
                             "(fraction; negative disables the gate)")
    parser.add_argument("--max-overhead", type=float, default=5.0,
                        help="enabled-tracing overhead bound for --obs "
                             "(percent; negative disables the gate)")
    args = parser.parse_args()
    tolerance = args.tolerance
    if tolerance is None:
        tolerance = 25.0 if args.net else 3.0

    if args.net:
        if args.metrics or args.adaptive:
            fail("--net does not combine with --metrics/--adaptive")
        with open(args.file) as f:
            current = validate_net(json.load(f), args.min_connections)
        print(f"check_bench_json: {args.file}: net schema OK "
              f"({current['connections']} connections, "
              f"{current['overload']['busy_rejections']} shed)")
        if args.baseline:
            with open(args.baseline) as f:
                baseline = validate_net(json.load(f), args.min_connections)
            compare_net(current, baseline, tolerance)
        return

    if args.shard:
        if args.baseline or args.metrics or args.adaptive or args.net or \
                args.mvcc:
            fail("--shard does not combine with other modes")
        with open(args.file) as f:
            points = validate_shard(json.load(f))
        peak = max(p["scaleout"] for p in points)
        print(f"check_bench_json: {args.file}: shard schema OK "
              f"({len(points)} points, peak scaleout {peak:.2f}x)")
        return

    if args.obs:
        if args.baseline or args.metrics or args.adaptive or args.net or \
                args.shard or args.mvcc:
            fail("--obs does not combine with other modes")
        bound = None if args.max_overhead < 0 else args.max_overhead
        with open(args.file) as f:
            overhead = validate_obs(json.load(f), bound)
        print(f"check_bench_json: {args.file}: obs schema OK "
              f"(enabled-tracing overhead {overhead:.2f}%)")
        return

    if args.netload:
        if args.baseline or args.metrics or args.adaptive or args.net or \
                args.shard or args.mvcc or args.obs:
            fail("--netload does not combine with other modes")
        with open(args.file) as f:
            overall = validate_netload(json.load(f))
        print(f"check_bench_json: {args.file}: netload schema OK "
              f"({overall['ok']} requests, p99 {overall['p99_us']}us)")
        return

    if args.readconc:
        if args.baseline or args.metrics or args.adaptive or args.net or \
                args.shard or args.mvcc or args.obs or args.netload:
            fail("--readconc does not combine with other modes")
        with open(args.file) as f:
            points, floor_points = validate_readconc(json.load(f))
        peak = max(p["speedup"] for p in points)
        print(f"check_bench_json: {args.file}: readconc schema OK "
              f"({len(points)} points, {floor_points} at the floor, "
              f"peak speedup {peak:.2f}x)")
        return

    if args.mvcc:
        if args.baseline or args.metrics or args.adaptive or args.net or \
                args.shard:
            fail("--mvcc does not combine with other modes")
        with open(args.file) as f:
            points, floor_points = validate_mvcc(json.load(f))
        peak = max(p["retrieve_speedup"] for p in points)
        print(f"check_bench_json: {args.file}: mvcc schema OK "
              f"({len(points)} points, {floor_points} at the floor, "
              f"peak speedup {peak:.2f}x)")
        return

    if args.adaptive:
        if args.baseline or args.metrics:
            fail("--adaptive does not combine with --baseline/--metrics")
        bound = None if args.max_regret < 0 else args.max_regret
        with open(args.file) as f:
            n, worst = validate_adaptive(json.load(f), bound)
        print(f"check_bench_json: {args.file}: adaptive schema OK "
              f"({n} points, max regret {100 * worst:.1f}%)")
        return

    if args.metrics:
        if args.baseline:
            fail("--metrics does not take a --baseline")
        with open(args.file) as f:
            n = validate_metrics(json.load(f))
        print(f"check_bench_json: {args.file}: metrics schema OK "
              f"({n} metrics)")
        return

    with open(args.file) as f:
        current = validate(json.load(f))
    print(f"check_bench_json: {args.file}: schema OK ({len(current)} runs)")

    if args.baseline:
        with open(args.baseline) as f:
            baseline = validate(json.load(f))
        compare(current, baseline, tolerance)


if __name__ == "__main__":
    main()
