#!/usr/bin/env python3
"""Validate and summarize traces written by --trace-out (DESIGN.md §11, §16).

Structural checks (any failure exits nonzero):

- each file parses as a JSON array of event objects
- every event has name/cat/ph/pid/tid/ts; ph is 'X' (complete, with a
  'dur') or 'i' (instant); ts/dur are non-negative numbers; an optional
  'trace' field (the request's 64-bit trace id) is a positive integer
- per (file, pid, tid), 'X' spans are properly nested or disjoint
  ("balanced"): sorted by start time, each span either contains the next
  or ends before it starts. The writer records spans only at scope exit
  and drops whole events on ring overwrite, so a violation means a writer
  bug, not an unlucky flush.

Then prints, per span name: count, total/mean/max wall time, and mean I/O
per span for spans carrying an "io" arg. Instants are tallied by name.

With several FILEs (e.g. a client's trace and a server's), events are
merged and spans carrying the same 'trace' id are stitched into one
per-request view: processes share CLOCK_MONOTONIC on one machine, so the
client_call span and the server-side spans it caused nest on a common
timeline, and the deepest chain is the request's critical path.

Usage: trace_summary.py FILE [FILE ...] [--quiet] [--traces=N]
"""

import argparse
import json
import sys
from collections import defaultdict


def fail(msg):
    print(f"trace_summary: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def validate(events, label):
    if not isinstance(events, list):
        fail(f"{label}: top level is not a JSON array")
    spans_by_tid = defaultdict(list)
    for i, ev in enumerate(events):
        ctx = f"{label}: event {i}"
        if not isinstance(ev, dict):
            fail(f"{ctx}: not an object")
        for field in ("name", "cat", "ph", "pid", "tid", "ts"):
            if field not in ev:
                fail(f"{ctx}: missing '{field}'")
        if not isinstance(ev["name"], str) or not isinstance(ev["cat"], str):
            fail(f"{ctx}: name/cat must be strings")
        if ev["ph"] not in ("X", "i"):
            fail(f"{ctx}: unknown phase '{ev['ph']}'")
        if not isinstance(ev["ts"], (int, float)) or ev["ts"] < 0:
            fail(f"{ctx}: bad ts")
        if "trace" in ev:
            if not isinstance(ev["trace"], int) or ev["trace"] <= 0:
                fail(f"{ctx}: 'trace' must be a positive integer")
        if ev["ph"] == "X":
            if "dur" not in ev:
                fail(f"{ctx}: 'X' event without dur")
            if not isinstance(ev["dur"], (int, float)) or ev["dur"] < 0:
                fail(f"{ctx}: bad dur")
            spans_by_tid[(ev["pid"], ev["tid"])].append(ev)
        if "args" in ev:
            if not isinstance(ev["args"], dict):
                fail(f"{ctx}: args is not an object")
            for k, v in ev["args"].items():
                if not isinstance(v, (int, float)):
                    fail(f"{ctx}: arg '{k}' is not a number")

    # Balanced-span check: per thread, sorted by (start, -dur), maintain a
    # stack of open intervals; each span must fit inside the innermost open
    # one or start after it closes.
    for tid, spans in spans_by_tid.items():
        spans.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack = []
        for ev in spans:
            start, end = ev["ts"], ev["ts"] + ev["dur"]
            while stack and start >= stack[-1]:
                stack.pop()
            if stack and end > stack[-1]:
                fail(
                    f"{label}: tid {tid}: span '{ev['name']}' "
                    f"[{start}, {end}) overlaps an enclosing span ending "
                    f"at {stack[-1]} without nesting"
                )
            stack.append(end)


def summarize(events):
    spans = defaultdict(lambda: {"n": 0, "total": 0.0, "max": 0.0,
                                 "io": 0, "io_n": 0})
    instants = defaultdict(int)
    tids = set()
    for ev in events:
        tids.add((ev["_file"], ev["pid"], ev["tid"]))
        if ev["ph"] == "i":
            instants[ev["name"]] += 1
            continue
        s = spans[ev["name"]]
        s["n"] += 1
        s["total"] += ev["dur"]
        s["max"] = max(s["max"], ev["dur"])
        io = ev.get("args", {}).get("io")
        if io is not None:
            s["io"] += io
            s["io_n"] += 1

    print(f"{len(events)} events, {len(tids)} threads")
    if spans:
        print(f"\n{'span':<16} {'count':>8} {'total ms':>12} "
              f"{'mean ms':>10} {'max ms':>10} {'mean io':>9}")
        for name in sorted(spans, key=lambda n: -spans[n]["total"]):
            s = spans[name]
            mean_io = (f"{s['io'] / s['io_n']:9.1f}"
                       if s["io_n"] else f"{'-':>9}")
            print(f"{name:<16} {s['n']:>8} {s['total'] / 1000:>12.3f} "
                  f"{s['total'] / s['n'] / 1000:>10.3f} "
                  f"{s['max'] / 1000:>10.3f} {mean_io}")
    if instants:
        print(f"\n{'instant':<20} {'count':>8}")
        for name in sorted(instants, key=lambda n: -instants[n]):
            print(f"{name:<20} {instants[name]:>8}")


def stitch_traces(events, files, top_n):
    """Group spans by trace id across all files and print, for the top_n
    longest requests, the nested per-request view plus its critical path
    (the deepest chain; ties broken toward the longer leaf)."""
    by_trace = defaultdict(list)
    for ev in events:
        if ev["ph"] == "X" and "trace" in ev:
            by_trace[ev["trace"]].append(ev)
    if not by_trace:
        return
    multi = sum(1 for spans in by_trace.values()
                if len({s["_file"] for s in spans}) > 1)
    print(f"\n{len(by_trace)} traced requests "
          f"({multi} spanning more than one process)")

    def extent(spans):
        lo = min(s["ts"] for s in spans)
        hi = max(s["ts"] + s["dur"] for s in spans)
        return hi - lo

    ranked = sorted(by_trace, key=lambda t: -extent(by_trace[t]))[:top_n]
    for trace_id in ranked:
        spans = sorted(by_trace[trace_id], key=lambda e: (e["ts"], -e["dur"]))
        t0 = spans[0]["ts"]
        procs = {s["_file"] for s in spans}
        print(f"\ntrace {trace_id:#018x}: {len(spans)} spans, "
              f"{len(procs)} process(es), {extent(spans):.0f}us")
        # Containment on the shared monotonic timeline gives the nesting;
        # the deepest stack when a span is pushed is the candidate
        # critical path ending at that span.
        stack = []       # (end_ts, name)
        best_chain = []
        best_key = (-1, -1.0)  # (depth, leaf dur)
        for ev in spans:
            start, end = ev["ts"], ev["ts"] + ev["dur"]
            while stack and start >= stack[-1][0]:
                stack.pop()
            depth = len(stack)
            label = f"{ev['name']}({ev['cat']})"
            src = files[ev["_file"]]
            print(f"  {'  ' * depth}{label:<28} [{src}] "
                  f"+{start - t0:.0f}us {ev['dur']:.0f}us")
            stack.append((end, label))
            key = (depth, float(ev["dur"]))
            if key > best_key:
                best_key = key
                best_chain = [name for _, name in stack]
        print(f"  critical path: {' > '.join(best_chain)}")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("files", nargs="+", metavar="FILE")
    parser.add_argument("--quiet", action="store_true",
                        help="validate only, no summary")
    parser.add_argument("--traces", type=int, default=5,
                        help="how many stitched requests to print")
    args = parser.parse_args()

    merged = []
    for idx, path in enumerate(args.files):
        with open(path) as f:
            try:
                events = json.load(f)
            except json.JSONDecodeError as e:
                fail(f"{path} does not parse: {e}")
        validate(events, path)
        for ev in events:
            ev["_file"] = idx  # distinguishes processes with equal pids
        merged.extend(events)
    print(f"trace_summary: {', '.join(args.files)}: structure OK")
    if not args.quiet:
        summarize(merged)
        stitch_traces(merged, args.files, args.traces)


if __name__ == "__main__":
    try:
        main()
    except BrokenPipeError:
        # Output was piped into something like `head` that closed early;
        # that is not an error for a report generator.
        sys.exit(0)
