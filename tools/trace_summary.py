#!/usr/bin/env python3
"""Validate and summarize a trace written by --trace-out (DESIGN.md §11).

Structural checks (any failure exits nonzero):

- the file parses as a JSON array of event objects
- every event has name/cat/ph/pid/tid/ts; ph is 'X' (complete, with a
  'dur') or 'i' (instant); ts/dur are non-negative numbers
- per thread, 'X' spans are properly nested or disjoint ("balanced"):
  sorted by start time, each span either contains the next or ends before
  it starts. The writer records spans only at scope exit and drops whole
  events on ring overwrite, so a violation means a writer bug, not an
  unlucky flush.

Then prints, per span name: count, total/mean/max wall time, and mean I/O
per span for spans carrying an "io" arg (the runner attaches the page
delta to each query span). Instants are tallied by name.

Usage: trace_summary.py FILE [--quiet]
"""

import argparse
import json
import sys
from collections import defaultdict


def fail(msg):
    print(f"trace_summary: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def validate(events):
    if not isinstance(events, list):
        fail("top level is not a JSON array")
    spans_by_tid = defaultdict(list)
    for i, ev in enumerate(events):
        ctx = f"event {i}"
        if not isinstance(ev, dict):
            fail(f"{ctx}: not an object")
        for field in ("name", "cat", "ph", "pid", "tid", "ts"):
            if field not in ev:
                fail(f"{ctx}: missing '{field}'")
        if not isinstance(ev["name"], str) or not isinstance(ev["cat"], str):
            fail(f"{ctx}: name/cat must be strings")
        if ev["ph"] not in ("X", "i"):
            fail(f"{ctx}: unknown phase '{ev['ph']}'")
        if not isinstance(ev["ts"], (int, float)) or ev["ts"] < 0:
            fail(f"{ctx}: bad ts")
        if ev["ph"] == "X":
            if "dur" not in ev:
                fail(f"{ctx}: 'X' event without dur")
            if not isinstance(ev["dur"], (int, float)) or ev["dur"] < 0:
                fail(f"{ctx}: bad dur")
            spans_by_tid[ev["tid"]].append(ev)
        if "args" in ev:
            if not isinstance(ev["args"], dict):
                fail(f"{ctx}: args is not an object")
            for k, v in ev["args"].items():
                if not isinstance(v, (int, float)):
                    fail(f"{ctx}: arg '{k}' is not a number")

    # Balanced-span check: per thread, sorted by (start, -dur), maintain a
    # stack of open intervals; each span must fit inside the innermost open
    # one or start after it closes.
    for tid, spans in spans_by_tid.items():
        spans.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack = []
        for ev in spans:
            start, end = ev["ts"], ev["ts"] + ev["dur"]
            while stack and start >= stack[-1]:
                stack.pop()
            if stack and end > stack[-1]:
                fail(
                    f"tid {tid}: span '{ev['name']}' [{start}, {end}) "
                    f"overlaps an enclosing span ending at {stack[-1]} "
                    "without nesting"
                )
            stack.append(end)


def summarize(events):
    spans = defaultdict(lambda: {"n": 0, "total": 0.0, "max": 0.0,
                                 "io": 0, "io_n": 0})
    instants = defaultdict(int)
    tids = set()
    for ev in events:
        tids.add(ev["tid"])
        if ev["ph"] == "i":
            instants[ev["name"]] += 1
            continue
        s = spans[ev["name"]]
        s["n"] += 1
        s["total"] += ev["dur"]
        s["max"] = max(s["max"], ev["dur"])
        io = ev.get("args", {}).get("io")
        if io is not None:
            s["io"] += io
            s["io_n"] += 1

    print(f"{len(events)} events, {len(tids)} threads")
    if spans:
        print(f"\n{'span':<16} {'count':>8} {'total ms':>12} "
              f"{'mean ms':>10} {'max ms':>10} {'mean io':>9}")
        for name in sorted(spans, key=lambda n: -spans[n]["total"]):
            s = spans[name]
            mean_io = (f"{s['io'] / s['io_n']:9.1f}"
                       if s["io_n"] else f"{'-':>9}")
            print(f"{name:<16} {s['n']:>8} {s['total'] / 1000:>12.3f} "
                  f"{s['total'] / s['n'] / 1000:>10.3f} "
                  f"{s['max'] / 1000:>10.3f} {mean_io}")
    if instants:
        print(f"\n{'instant':<20} {'count':>8}")
        for name in sorted(instants, key=lambda n: -instants[n]):
            print(f"{name:<20} {instants[name]:>8}")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("file")
    parser.add_argument("--quiet", action="store_true",
                        help="validate only, no summary")
    args = parser.parse_args()

    with open(args.file) as f:
        try:
            events = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"{args.file} does not parse: {e}")
    validate(events)
    print(f"trace_summary: {args.file}: structure OK")
    if not args.quiet:
        summarize(events)


if __name__ == "__main__":
    main()
