#include "relational/temp_file.h"

#include <algorithm>
#include <cstring>

#include "obs/io_context.h"
#include "storage/fault_injector.h"
#include "util/macros.h"

namespace objrep {

namespace {

uint32_t PageNext(const Page& p) {
  uint32_t v;
  std::memcpy(&v, p.data, 4);
  return v;
}
uint32_t PageCount(const Page& p) {
  uint32_t v;
  std::memcpy(&v, p.data + 4, 4);
  return v;
}
void SetPageNext(Page* p, uint32_t v) { std::memcpy(p->data, &v, 4); }
void SetPageCount(Page* p, uint32_t v) { std::memcpy(p->data + 4, &v, 4); }
uint64_t EntryAt(const Page& p, uint32_t i) {
  uint64_t v;
  std::memcpy(&v, p.data + 8 + 8 * i, 8);
  return v;
}
void SetEntryAt(Page* p, uint32_t i, uint64_t v) {
  std::memcpy(p->data + 8 + 8 * i, &v, 8);
}

}  // namespace

Status TempFile::Create(BufferPool* pool, TempFile* out) {
  // All temp-file traffic — page allocation, appends (whose deferred
  // write-backs inherit the tag via the frames' dirty_tag), stream reads,
  // and reclaim — is the BFS family's sort/temp cost (paper §5).
  ScopedIoTag tag(IoTag::kTempSort);
  out->pool_ = pool;
  PageGuard guard;
  OBJREP_RETURN_NOT_OK(pool->NewPage(&guard));
  SetPageNext(guard.page(), kInvalidPageId);
  SetPageCount(guard.page(), 0);
  guard.MarkDirty();
  out->first_page_ = guard.page_id();
  out->pages_ = std::make_shared<std::vector<PageId>>();
  out->pages_->push_back(guard.page_id());
  out->tail_guard_ = std::move(guard);
  out->num_pages_ = 1;
  out->num_entries_ = 0;
  return Status::OK();
}

Status TempFile::Append(uint64_t v) {
  ScopedIoTag tag(IoTag::kTempSort);
  OBJREP_CHECK(tail_guard_.valid());  // Append after Seal() is a bug
  Page* p = tail_guard_.page();
  uint32_t count = PageCount(*p);
  if (count == kEntriesPerPage) {
    PageGuard fresh;
    OBJREP_RETURN_NOT_OK(pool_->NewPage(&fresh));
    SetPageNext(fresh.page(), kInvalidPageId);
    SetPageCount(fresh.page(), 0);
    fresh.MarkDirty();
    SetPageNext(p, fresh.page_id());
    tail_guard_.MarkDirty();
    pages_->push_back(fresh.page_id());
    tail_guard_ = std::move(fresh);
    p = tail_guard_.page();
    count = 0;
    ++num_pages_;
  }
  SetEntryAt(p, count, v);
  SetPageCount(p, count + 1);
  tail_guard_.MarkDirty();
  ++num_entries_;
  return Status::OK();
}

Status TempFile::FreePages() {
  ScopedIoTag tag(IoTag::kTempSort);
  if (pool_ == nullptr) return Status::OK();
  tail_guard_.Release();
  Status s = Status::OK();
  if (pages_ != nullptr && !pages_->empty()) {
    // Under a WAL the reclaim is one transaction: the frees are deferred
    // to commit, so a crash mid-reclaim returns either none or all of the
    // file's pages — never a half-freed chain.
    const bool txn = pool_->wal() != nullptr;
    if (txn) s = pool_->BeginTxn();
    if (s.ok()) {
      FaultInjector* fi = pool_->disk()->fault_injector();
      bool first = true;
      for (PageId pid : *pages_) {
        pool_->FreePage(pid);  // false (still pinned) just leaks that page
        if (first) {
          first = false;
          s = fi->MaybeCrash("temp.reclaim.mid");
          if (!s.ok()) break;
        }
      }
      if (txn) {
        if (s.ok()) {
          s = pool_->CommitTxn();
        } else {
          pool_->AbortTxn();
        }
      }
    }
    pages_->clear();
  }
  first_page_ = kInvalidPageId;
  num_pages_ = 0;
  num_entries_ = 0;
  return s;
}

TempFile::Reader::Reader(BufferPool* pool,
                         std::shared_ptr<const std::vector<PageId>> pages,
                         uint64_t num_entries)
    : pool_(pool), pages_(std::move(pages)), remaining_(num_entries) {
  if (remaining_ == 0 || pages_ == nullptr || pages_->empty()) {
    valid_ = false;
    return;
  }
  Status s = LoadPage(0);
  if (!s.ok()) {
    valid_ = false;
    return;
  }
  value_ = EntryAt(*guard_.page(), 0);
  valid_ = true;
}

Status TempFile::Reader::LoadPage(uint32_t ordinal) {
  // Demand reads of the stream are temp traffic; the PrefetchHint's actual
  // disk reads re-tag themselves kPrefetch inside BufferPool::Prefetch.
  ScopedIoTag tag(IoTag::kTempSort);
  if (pool_->prefetch_enabled()) {
    // Hint the next pages of the stream. Only pages this reader will
    // actually consume are offered: interior pages are always full, so the
    // page count still to be read follows exactly from `remaining_`.
    uint64_t entries_here =
        std::min<uint64_t>(remaining_, kEntriesPerPage);
    uint64_t entries_after = remaining_ - entries_here;
    uint64_t pages_after =
        (entries_after + kEntriesPerPage - 1) / kEntriesPerPage;
    uint64_t avail = pages_->size() - ordinal - 1;
    size_t n = static_cast<size_t>(std::min<uint64_t>(
        std::min<uint64_t>(pages_after, avail), kReadaheadPages));
    if (n > 0) {
      pool_->PrefetchHint(pages_->data() + ordinal + 1, n);
    }
  }
  OBJREP_RETURN_NOT_OK(pool_->FetchPage((*pages_)[ordinal], &guard_));
  ordinal_ = ordinal;
  index_in_page_ = 0;
  count_in_page_ = PageCount(*guard_.page());
  return Status::OK();
}

Status TempFile::Reader::Next() {
  if (!valid_) return Status::OK();
  if (--remaining_ == 0) {
    valid_ = false;
    guard_.Release();
    return Status::OK();
  }
  if (++index_in_page_ == count_in_page_) {
    PageId next = PageNext(*guard_.page());
    if (next == kInvalidPageId) {
      valid_ = false;
      guard_.Release();
      return Status::OK();
    }
    OBJREP_RETURN_NOT_OK(LoadPage(ordinal_ + 1));
  }
  value_ = EntryAt(*guard_.page(), index_in_page_);
  return Status::OK();
}

void TempFile::Reader::PeekCurrentPage(std::vector<uint64_t>* out) const {
  if (!valid_) return;
  uint64_t n = std::min<uint64_t>(count_in_page_ - index_in_page_,
                                  remaining_);
  for (uint64_t i = 0; i < n; ++i) {
    out->push_back(EntryAt(*guard_.page(), index_in_page_ + i));
  }
}

}  // namespace objrep
