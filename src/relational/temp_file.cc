#include "relational/temp_file.h"

#include <cstring>

#include "util/macros.h"

namespace objrep {

namespace {

uint32_t PageNext(const Page& p) {
  uint32_t v;
  std::memcpy(&v, p.data, 4);
  return v;
}
uint32_t PageCount(const Page& p) {
  uint32_t v;
  std::memcpy(&v, p.data + 4, 4);
  return v;
}
void SetPageNext(Page* p, uint32_t v) { std::memcpy(p->data, &v, 4); }
void SetPageCount(Page* p, uint32_t v) { std::memcpy(p->data + 4, &v, 4); }
uint64_t EntryAt(const Page& p, uint32_t i) {
  uint64_t v;
  std::memcpy(&v, p.data + 8 + 8 * i, 8);
  return v;
}
void SetEntryAt(Page* p, uint32_t i, uint64_t v) {
  std::memcpy(p->data + 8 + 8 * i, &v, 8);
}

}  // namespace

Status TempFile::Create(BufferPool* pool, TempFile* out) {
  out->pool_ = pool;
  PageGuard guard;
  OBJREP_RETURN_NOT_OK(pool->NewPage(&guard));
  SetPageNext(guard.page(), kInvalidPageId);
  SetPageCount(guard.page(), 0);
  guard.MarkDirty();
  out->first_page_ = guard.page_id();
  out->tail_guard_ = std::move(guard);
  out->num_pages_ = 1;
  out->num_entries_ = 0;
  return Status::OK();
}

Status TempFile::Append(uint64_t v) {
  OBJREP_CHECK(tail_guard_.valid());  // Append after Seal() is a bug
  Page* p = tail_guard_.page();
  uint32_t count = PageCount(*p);
  if (count == kEntriesPerPage) {
    PageGuard fresh;
    OBJREP_RETURN_NOT_OK(pool_->NewPage(&fresh));
    SetPageNext(fresh.page(), kInvalidPageId);
    SetPageCount(fresh.page(), 0);
    fresh.MarkDirty();
    SetPageNext(p, fresh.page_id());
    tail_guard_.MarkDirty();
    tail_guard_ = std::move(fresh);
    p = tail_guard_.page();
    count = 0;
    ++num_pages_;
  }
  SetEntryAt(p, count, v);
  SetPageCount(p, count + 1);
  tail_guard_.MarkDirty();
  ++num_entries_;
  return Status::OK();
}

TempFile::Reader::Reader(BufferPool* pool, PageId first_page,
                         uint64_t num_entries)
    : pool_(pool), remaining_(num_entries) {
  if (remaining_ == 0) {
    valid_ = false;
    return;
  }
  Status s = LoadPage(first_page);
  if (!s.ok()) {
    valid_ = false;
    return;
  }
  value_ = EntryAt(*guard_.page(), 0);
  index_in_page_ = 0;
  valid_ = true;
}

Status TempFile::Reader::LoadPage(PageId pid) {
  OBJREP_RETURN_NOT_OK(pool_->FetchPage(pid, &guard_));
  index_in_page_ = 0;
  count_in_page_ = PageCount(*guard_.page());
  return Status::OK();
}

Status TempFile::Reader::Next() {
  if (!valid_) return Status::OK();
  if (--remaining_ == 0) {
    valid_ = false;
    guard_.Release();
    return Status::OK();
  }
  if (++index_in_page_ == count_in_page_) {
    PageId next = PageNext(*guard_.page());
    if (next == kInvalidPageId) {
      valid_ = false;
      guard_.Release();
      return Status::OK();
    }
    OBJREP_RETURN_NOT_OK(LoadPage(next));
  }
  value_ = EntryAt(*guard_.page(), index_in_page_);
  return Status::OK();
}

}  // namespace objrep
