#include "relational/merge_join.h"

namespace objrep {

Status MergeJoinSortedKeys(
    TempFile::Reader keys, const BPlusTree& tree,
    const std::function<Status(uint64_t, std::string_view)>& on_match) {
  if (!keys.valid()) return Status::OK();
  BPlusTree::Iterator cursor = tree.NewIterator();
  OBJREP_RETURN_NOT_OK(cursor.Seek(keys.value()));
  bool have_match = false;
  uint64_t match_key = 0;
  std::string match_value;

  while (keys.valid()) {
    uint64_t k = keys.value();
    if (have_match && match_key == k) {
      // Duplicate stream key: re-deliver without touching the cursor.
      OBJREP_RETURN_NOT_OK(on_match(k, match_value));
      OBJREP_RETURN_NOT_OK(keys.Next());
      continue;
    }
    // Advance the tree cursor to the first entry >= k (sequential within
    // a leaf, probing across distant leaves — both ends of merge-join
    // behaviour on a sorted outer).
    OBJREP_RETURN_NOT_OK(cursor.SeekForward(k));
    if (!cursor.valid()) break;
    if (cursor.key() == k) {
      match_key = k;
      match_value.assign(cursor.value());
      have_match = true;
      OBJREP_RETURN_NOT_OK(on_match(k, match_value));
    }
    OBJREP_RETURN_NOT_OK(keys.Next());
  }
  return Status::OK();
}

}  // namespace objrep
