#include "relational/merge_join.h"

#include <cstdint>
#include <vector>

namespace objrep {

Status MergeJoinSortedKeys(
    TempFile::Reader keys, const BPlusTree& tree,
    const std::function<Status(uint64_t, std::string_view)>& on_match) {
  if (!keys.valid()) return Status::OK();
  // With prefetch enabled, the keys the join will probe next are sitting
  // in the reader's current (pinned) temp page — peek them once per page
  // and let each cursor re-descent read ahead along the leaf level. Costs
  // nothing when disabled: the seed's Seek/SeekForward path runs verbatim.
  const bool hinted = tree.pool() != nullptr && tree.pool()->prefetch_enabled();
  std::vector<uint64_t> upcoming;
  uint32_t peeked_ordinal = 0;
  if (hinted) {
    keys.PeekCurrentPage(&upcoming);
    peeked_ordinal = keys.page_ordinal();
  }
  BPlusTree::Iterator cursor = tree.NewIterator();
  if (hinted) {
    OBJREP_RETURN_NOT_OK(cursor.SeekHinted(keys.value(), upcoming.data() + 1,
                                           upcoming.size() - 1));
  } else {
    OBJREP_RETURN_NOT_OK(cursor.Seek(keys.value()));
  }
  bool have_match = false;
  uint64_t match_key = 0;
  std::string match_value;

  while (keys.valid()) {
    uint64_t k = keys.value();
    if (have_match && match_key == k) {
      // Duplicate stream key: re-deliver without touching the cursor.
      OBJREP_RETURN_NOT_OK(on_match(k, match_value));
      OBJREP_RETURN_NOT_OK(keys.Next());
      continue;
    }
    // Advance the tree cursor to the first entry >= k (sequential within
    // a leaf, probing across distant leaves — both ends of merge-join
    // behaviour on a sorted outer).
    if (hinted) {
      if (keys.page_ordinal() != peeked_ordinal) {
        upcoming.clear();
        keys.PeekCurrentPage(&upcoming);
        peeked_ordinal = keys.page_ordinal();
      }
      // Already-consumed peeked keys (< k) at the front are skipped by the
      // hint computation itself.
      OBJREP_RETURN_NOT_OK(
          cursor.SeekForwardHinted(k, upcoming.data(), upcoming.size()));
    } else {
      OBJREP_RETURN_NOT_OK(cursor.SeekForward(k));
    }
    if (!cursor.valid()) break;
    if (cursor.key() == k) {
      match_key = k;
      match_value.assign(cursor.value());
      have_match = true;
      OBJREP_RETURN_NOT_OK(on_match(k, match_value));
    }
    OBJREP_RETURN_NOT_OK(keys.Next());
  }
  return Status::OK();
}

}  // namespace objrep
