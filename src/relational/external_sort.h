// External merge sort over u64 temp files.
//
// BFS's competitiveness depends on a *sorted* temporary (so the join with
// the B-tree on OID is a merge join). The sorter uses bounded working
// memory: sorted runs of `work_mem_pages` pages, then (work_mem_pages - 1)-way
// merge passes — all I/O through the shared buffer pool, as INGRES would.
#ifndef OBJREP_RELATIONAL_EXTERNAL_SORT_H_
#define OBJREP_RELATIONAL_EXTERNAL_SORT_H_

#include <cstdint>

#include "relational/temp_file.h"
#include "util/status.h"

namespace objrep {

struct SortOptions {
  /// Pages of working memory for run formation / merge fan-in.
  uint32_t work_mem_pages = 16;
  /// Drop duplicate values while sorting (BFSNODUP's duplicate elimination
  /// step — the paper removes duplicates "before executing the query").
  bool dedup = false;
  /// Free the pages of intermediate runs as soon as a merge pass has
  /// consumed them, so a long workload's temp footprint stays bounded
  /// instead of growing monotonically. Off by default: freeing changes
  /// which dirty pages remain for the end-of-run flush, so the paper
  /// experiments keep the seed's leak-everything behaviour. The caller's
  /// `input` file is never freed.
  bool reclaim_runs = false;
};

/// Sorts `input` into a new temp file `out` (ascending).
Status ExternalSort(BufferPool* pool, const TempFile& input,
                    const SortOptions& options, TempFile* out);

}  // namespace objrep

#endif  // OBJREP_RELATIONAL_EXTERNAL_SORT_H_
