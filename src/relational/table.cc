#include "relational/table.h"

namespace objrep {

Status Table::BulkLoad(
    BufferPool* pool,
    const std::vector<std::pair<uint64_t, std::vector<Value>>>& rows,
    double fill_factor) {
  std::vector<BPlusTree::Entry> entries;
  entries.reserve(rows.size());
  for (const auto& [key, values] : rows) {
    std::string encoded;
    OBJREP_RETURN_NOT_OK(EncodeRecord(schema_, values, &encoded));
    entries.push_back(BPlusTree::Entry{key, std::move(encoded)});
  }
  return BPlusTree::BulkLoad(pool, entries, fill_factor, &tree_);
}

Status Table::CreateEmpty(BufferPool* pool) {
  return BPlusTree::Create(pool, &tree_);
}

Status Table::Insert(uint64_t key, const std::vector<Value>& values) {
  std::string encoded;
  OBJREP_RETURN_NOT_OK(EncodeRecord(schema_, values, &encoded));
  return tree_.Insert(key, encoded);
}

Status Table::Get(uint64_t key, std::vector<Value>* values) const {
  std::string raw;
  OBJREP_RETURN_NOT_OK(tree_.Get(key, &raw));
  return DecodeRecord(schema_, raw, values);
}

Status Table::GetField(uint64_t key, size_t field_index, Value* out) const {
  std::string raw;
  OBJREP_RETURN_NOT_OK(tree_.Get(key, &raw));
  return DecodeField(schema_, raw, field_index, out);
}

Status Table::UpdateInPlace(uint64_t key, const std::vector<Value>& values) {
  std::string encoded;
  OBJREP_RETURN_NOT_OK(EncodeRecord(schema_, values, &encoded));
  return tree_.UpdateInPlace(key, encoded);
}

Table* Catalog::Register(std::string name, Schema schema) {
  auto table = std::make_unique<Table>(
      std::move(name), static_cast<RelationId>(tables_.size() + 1),
      std::move(schema));
  tables_.push_back(std::move(table));
  return tables_.back().get();
}

Table* Catalog::Find(const std::string& name) {
  for (auto& t : tables_) {
    if (t->name() == name) return t.get();
  }
  return nullptr;
}

const Table* Catalog::Find(const std::string& name) const {
  for (const auto& t : tables_) {
    if (t->name() == name) return t.get();
  }
  return nullptr;
}

Table* Catalog::FindById(RelationId id) {
  for (auto& t : tables_) {
    if (t->rel_id() == id) return t.get();
  }
  return nullptr;
}

const Table* Catalog::FindById(RelationId id) const {
  for (const auto& t : tables_) {
    if (t->rel_id() == id) return t.get();
  }
  return nullptr;
}

}  // namespace objrep
