// Merge join between a sorted key stream and a B-tree.
//
// The BFS family executes
//     retrieve (ChildRel.attr) where ChildRel.OID = temp.OID
// by merge join: temp is sorted, ChildRel's B-tree delivers keys in order,
// so the join is one coordinated forward pass. Duplicate keys in the stream
// (shared subobjects, when duplicates were not removed) re-deliver the
// current match without moving the tree cursor.
#ifndef OBJREP_RELATIONAL_MERGE_JOIN_H_
#define OBJREP_RELATIONAL_MERGE_JOIN_H_

#include <functional>

#include "access/btree.h"
#include "relational/temp_file.h"
#include "util/status.h"

namespace objrep {

/// Invokes `on_match(key, value)` for every stream key found in `tree`,
/// in stream order. Stream keys absent from the tree are skipped.
/// `keys` must be sorted ascending (duplicates allowed).
Status MergeJoinSortedKeys(
    TempFile::Reader keys, const BPlusTree& tree,
    const std::function<Status(uint64_t, std::string_view)>& on_match);

}  // namespace objrep

#endif  // OBJREP_RELATIONAL_MERGE_JOIN_H_
