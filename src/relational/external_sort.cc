#include "relational/external_sort.h"

#include <algorithm>
#include <queue>
#include <vector>

#include "obs/metrics.h"
#include "util/macros.h"

namespace objrep {

namespace {

// Cumulative registry mirrors (DESIGN.md §11).
struct SortMetrics {
  Counter* sorts = MetricsRegistry::Global().GetCounter("sort.runs_started");
  Counter* runs = MetricsRegistry::Global().GetCounter("sort.runs_formed");
  Counter* merge_passes =
      MetricsRegistry::Global().GetCounter("sort.merge_passes");
  Counter* spill_pages =
      MetricsRegistry::Global().GetCounter("sort.spill_pages");
};

SortMetrics& Metrics() {
  static SortMetrics* m = new SortMetrics();
  return *m;
}

/// Merges `runs` k-way into `out`, optionally dropping duplicates.
Status MergeRuns(BufferPool* pool, std::vector<TempFile>* runs, bool dedup,
                 TempFile* out) {
  OBJREP_RETURN_NOT_OK(TempFile::Create(pool, out));
  struct HeapItem {
    uint64_t value;
    size_t run;
  };
  auto cmp = [](const HeapItem& a, const HeapItem& b) {
    return a.value > b.value;  // min-heap
  };
  std::priority_queue<HeapItem, std::vector<HeapItem>, decltype(cmp)> heap(cmp);
  std::vector<TempFile::Reader> readers;
  readers.reserve(runs->size());
  for (TempFile& run : *runs) {
    readers.push_back(run.Read());
    if (readers.back().valid()) {
      heap.push(HeapItem{readers.back().value(), readers.size() - 1});
    }
  }
  bool have_last = false;
  uint64_t last = 0;
  while (!heap.empty()) {
    HeapItem item = heap.top();
    heap.pop();
    if (!dedup || !have_last || item.value != last) {
      OBJREP_RETURN_NOT_OK(out->Append(item.value));
      last = item.value;
      have_last = true;
    }
    TempFile::Reader& r = readers[item.run];
    OBJREP_RETURN_NOT_OK(r.Next());
    if (r.valid()) {
      heap.push(HeapItem{r.value(), item.run});
    }
  }
  out->Seal();
  return Status::OK();
}

}  // namespace

Status ExternalSort(BufferPool* pool, const TempFile& input,
                    const SortOptions& options, TempFile* out) {
  if (options.work_mem_pages < 3) {
    return Status::InvalidArgument("external sort needs >= 3 pages");
  }
  Metrics().sorts->Add(1);
  const uint64_t run_capacity =
      static_cast<uint64_t>(options.work_mem_pages) * TempFile::kEntriesPerPage;

  // Phase 1: run formation.
  std::vector<TempFile> runs;
  {
    TempFile::Reader reader = input.Read();
    std::vector<uint64_t> buf;
    buf.reserve(static_cast<size_t>(
        std::min<uint64_t>(run_capacity, input.num_entries())));
    auto flush_run = [&]() -> Status {
      std::sort(buf.begin(), buf.end());
      if (options.dedup) {
        buf.erase(std::unique(buf.begin(), buf.end()), buf.end());
      }
      TempFile run;
      OBJREP_RETURN_NOT_OK(TempFile::Create(pool, &run));
      for (uint64_t v : buf) {
        OBJREP_RETURN_NOT_OK(run.Append(v));
      }
      run.Seal();
      Metrics().runs->Add(1);
      Metrics().spill_pages->Add(run.num_pages());
      runs.push_back(std::move(run));
      buf.clear();
      return Status::OK();
    };
    while (reader.valid()) {
      buf.push_back(reader.value());
      if (buf.size() == run_capacity) {
        OBJREP_RETURN_NOT_OK(flush_run());
      }
      OBJREP_RETURN_NOT_OK(reader.Next());
    }
    if (!buf.empty() || runs.empty()) {
      OBJREP_RETURN_NOT_OK(flush_run());
    }
  }

  // Phase 2: iterative k-way merges until a single run remains.
  const size_t fan_in = options.work_mem_pages - 1;
  while (runs.size() > 1) {
    Metrics().merge_passes->Add(1);
    std::vector<TempFile> next_runs;
    for (size_t i = 0; i < runs.size(); i += fan_in) {
      size_t end = std::min(runs.size(), i + fan_in);
      std::vector<TempFile> group(
          std::make_move_iterator(runs.begin() + static_cast<ptrdiff_t>(i)),
          std::make_move_iterator(runs.begin() + static_cast<ptrdiff_t>(end)));
      TempFile merged;
      OBJREP_RETURN_NOT_OK(MergeRuns(pool, &group, options.dedup, &merged));
      if (options.reclaim_runs) {
        // Every run here was created by this sort (phase 1 or an earlier
        // merge pass), never the caller's input, and its readers are gone.
        for (TempFile& consumed : group) {
          OBJREP_RETURN_NOT_OK(consumed.FreePages());
        }
      }
      next_runs.push_back(std::move(merged));
    }
    runs.swap(next_runs);
  }
  *out = std::move(runs[0]);
  return Status::OK();
}

}  // namespace objrep
