# Empty dependencies file for objrep_relational.
# This may be replaced when dependencies are built.
