file(REMOVE_RECURSE
  "libobjrep_relational.a"
)
