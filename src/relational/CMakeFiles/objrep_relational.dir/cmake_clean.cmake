file(REMOVE_RECURSE
  "CMakeFiles/objrep_relational.dir/external_sort.cc.o"
  "CMakeFiles/objrep_relational.dir/external_sort.cc.o.d"
  "CMakeFiles/objrep_relational.dir/merge_join.cc.o"
  "CMakeFiles/objrep_relational.dir/merge_join.cc.o.d"
  "CMakeFiles/objrep_relational.dir/table.cc.o"
  "CMakeFiles/objrep_relational.dir/table.cc.o.d"
  "CMakeFiles/objrep_relational.dir/temp_file.cc.o"
  "CMakeFiles/objrep_relational.dir/temp_file.cc.o.d"
  "libobjrep_relational.a"
  "libobjrep_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/objrep_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
