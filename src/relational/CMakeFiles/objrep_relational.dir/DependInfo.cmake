
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/relational/external_sort.cc" "src/relational/CMakeFiles/objrep_relational.dir/external_sort.cc.o" "gcc" "src/relational/CMakeFiles/objrep_relational.dir/external_sort.cc.o.d"
  "/root/repo/src/relational/merge_join.cc" "src/relational/CMakeFiles/objrep_relational.dir/merge_join.cc.o" "gcc" "src/relational/CMakeFiles/objrep_relational.dir/merge_join.cc.o.d"
  "/root/repo/src/relational/table.cc" "src/relational/CMakeFiles/objrep_relational.dir/table.cc.o" "gcc" "src/relational/CMakeFiles/objrep_relational.dir/table.cc.o.d"
  "/root/repo/src/relational/temp_file.cc" "src/relational/CMakeFiles/objrep_relational.dir/temp_file.cc.o" "gcc" "src/relational/CMakeFiles/objrep_relational.dir/temp_file.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/access/CMakeFiles/objrep_access.dir/DependInfo.cmake"
  "/root/repo/src/storage/CMakeFiles/objrep_storage.dir/DependInfo.cmake"
  "/root/repo/src/obs/CMakeFiles/objrep_obs.dir/DependInfo.cmake"
  "/root/repo/src/record/CMakeFiles/objrep_record.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
