// Sequential temporary files of u64 entries (packed OIDs).
//
// BFS-family strategies "collect the OID's from qualifying tuples into a
// temporary relation temp whose single attribute is OID" — this is that
// relation. All reads and writes flow through the buffer pool, so forming
// and re-reading a temporary costs real I/O, which is exactly the overhead
// that makes DFS competitive at low NumTop (paper §5.1).
#ifndef OBJREP_RELATIONAL_TEMP_FILE_H_
#define OBJREP_RELATIONAL_TEMP_FILE_H_

#include <cstdint>
#include <vector>

#include "storage/buffer_pool.h"
#include "util/status.h"

namespace objrep {

/// Append-only stream of u64 values over chained pages.
class TempFile {
 public:
  // Page layout: u32 next @0, u32 count @4, u64 entries from @8.
  static constexpr uint32_t kEntriesPerPage = (kPageSize - 8) / 8;

  TempFile() = default;

  /// Creates an empty temp file.
  static Status Create(BufferPool* pool, TempFile* out);

  /// Appends one value.
  Status Append(uint64_t v);

  /// Unpins the tail page (call when writing is done).
  void Seal() { tail_guard_.Release(); }

  uint64_t num_entries() const { return num_entries_; }
  uint32_t num_pages() const { return num_pages_; }
  PageId first_page() const { return first_page_; }

  /// Forward reader.
  class Reader {
   public:
    Reader() = default;
    Reader(BufferPool* pool, PageId first_page, uint64_t num_entries);

    bool valid() const { return valid_; }
    uint64_t value() const { return value_; }
    Status Next();

   private:
    Status LoadPage(PageId pid);

    BufferPool* pool_ = nullptr;
    PageGuard guard_;
    uint32_t index_in_page_ = 0;
    uint32_t count_in_page_ = 0;
    uint64_t remaining_ = 0;
    uint64_t value_ = 0;
    bool valid_ = false;
  };

  Reader Read() const { return Reader(pool_, first_page_, num_entries_); }

 private:
  BufferPool* pool_ = nullptr;
  PageId first_page_ = kInvalidPageId;
  PageGuard tail_guard_;  // keeps the tail pinned while appending
  uint32_t num_pages_ = 0;
  uint64_t num_entries_ = 0;
};

}  // namespace objrep

#endif  // OBJREP_RELATIONAL_TEMP_FILE_H_
