// Sequential temporary files of u64 entries (packed OIDs).
//
// BFS-family strategies "collect the OID's from qualifying tuples into a
// temporary relation temp whose single attribute is OID" — this is that
// relation. All reads and writes flow through the buffer pool, so forming
// and re-reading a temporary costs real I/O, which is exactly the overhead
// that makes DFS competitive at low NumTop (paper §5.1).
#ifndef OBJREP_RELATIONAL_TEMP_FILE_H_
#define OBJREP_RELATIONAL_TEMP_FILE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "storage/buffer_pool.h"
#include "util/status.h"

namespace objrep {

/// Append-only stream of u64 values over chained pages.
class TempFile {
 public:
  // Page layout: u32 next @0, u32 count @4, u64 entries from @8.
  static constexpr uint32_t kEntriesPerPage = (kPageSize - 8) / 8;

  TempFile() = default;

  /// Creates an empty temp file.
  static Status Create(BufferPool* pool, TempFile* out);

  /// Appends one value.
  Status Append(uint64_t v);

  /// Unpins the tail page (call when writing is done).
  void Seal() { tail_guard_.Release(); }

  /// Returns every page of this temp file to the disk free list (writing
  /// dirty ones back first, so I/O counts are unchanged) and resets to an
  /// unusable empty state. The caller must ensure no Reader over this file
  /// is still live. Pinned pages are skipped (and stay allocated), so
  /// calling with the tail still pinned just leaks that one page — Seal()
  /// first. Safe on a default-constructed file. With a WAL attached the
  /// reclaim is one redo-logged transaction (all pages freed or none);
  /// the only failures are injected faults at the "temp.reclaim.mid"
  /// crash point or during commit.
  Status FreePages();

  uint64_t num_entries() const { return num_entries_; }
  uint32_t num_pages() const { return num_pages_; }
  PageId first_page() const { return first_page_; }

  /// Forward reader.
  class Reader {
   public:
    Reader() = default;
    Reader(BufferPool* pool,
           std::shared_ptr<const std::vector<PageId>> pages,
           uint64_t num_entries);

    bool valid() const { return valid_; }
    uint64_t value() const { return value_; }
    Status Next();

    /// Ordinal (0-based) of the page the cursor is on. Changes exactly
    /// when the cursor crosses a page boundary — consumers use that as a
    /// cheap "time to re-peek" signal.
    uint32_t page_ordinal() const { return ordinal_; }

    /// Appends the not-yet-consumed entries of the current page (starting
    /// at the cursor, clipped to the stream end) to `*out`. Lets a join
    /// know every key it will see before the next page boundary without
    /// extra I/O — the page is already pinned.
    void PeekCurrentPage(std::vector<uint64_t>* out) const;

   private:
    // The stream is consumed front to back, so the next pages to be read
    // are known exactly from the page list; each page load hints a few
    // successors into the pool's staging frames. Kept moderate: with
    // external sort's 15-way merges every live reader wants a window, and
    // the staging frames are a shared budget (DESIGN.md §9).
    static constexpr uint32_t kReadaheadPages = 4;

    Status LoadPage(uint32_t ordinal);

    BufferPool* pool_ = nullptr;
    std::shared_ptr<const std::vector<PageId>> pages_;
    PageGuard guard_;
    uint32_t ordinal_ = 0;
    uint32_t index_in_page_ = 0;
    uint32_t count_in_page_ = 0;
    uint64_t remaining_ = 0;
    uint64_t value_ = 0;
    bool valid_ = false;
  };

  Reader Read() const { return Reader(pool_, pages_, num_entries_); }

 private:
  BufferPool* pool_ = nullptr;
  PageId first_page_ = kInvalidPageId;
  PageGuard tail_guard_;  // keeps the tail pinned while appending
  /// Every page of the file in chain order; shared with Readers so a
  /// Reader survives the TempFile being moved.
  std::shared_ptr<std::vector<PageId>> pages_;
  uint32_t num_pages_ = 0;
  uint64_t num_entries_ = 0;
};

}  // namespace objrep

#endif  // OBJREP_RELATIONAL_TEMP_FILE_H_
