// A relation: schema + B-tree primary structure keyed on a u64 primary key.
//
// ParentRel, ChildRel and ClusterRel are all Tables ("structured as B-trees
// on OID" / "on cluster#", paper §4).
#ifndef OBJREP_RELATIONAL_TABLE_H_
#define OBJREP_RELATIONAL_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "access/btree.h"
#include "record/record.h"
#include "record/schema.h"
#include "storage/buffer_pool.h"
#include "util/status.h"

namespace objrep {

using RelationId = uint32_t;

class Table {
 public:
  Table() = default;
  Table(std::string name, RelationId rel_id, Schema schema)
      : name_(std::move(name)), rel_id_(rel_id), schema_(std::move(schema)) {}

  /// Bulk loads rows sorted by strictly increasing key.
  Status BulkLoad(BufferPool* pool,
                  const std::vector<std::pair<uint64_t, std::vector<Value>>>&
                      rows,
                  double fill_factor = 1.0);

  /// Creates an empty (insertable) table.
  Status CreateEmpty(BufferPool* pool);

  Status Insert(uint64_t key, const std::vector<Value>& values);

  /// Fetches and decodes the whole row.
  Status Get(uint64_t key, std::vector<Value>* values) const;

  /// Fetches and decodes one field (projection fast path).
  Status GetField(uint64_t key, size_t field_index, Value* out) const;

  /// Same-size in-place update (the paper's updates modify ret fields).
  Status UpdateInPlace(uint64_t key, const std::vector<Value>& values);

  const std::string& name() const { return name_; }
  RelationId rel_id() const { return rel_id_; }
  const Schema& schema() const { return schema_; }
  const BPlusTree& tree() const { return tree_; }
  BPlusTree& tree() { return tree_; }

 private:
  std::string name_;
  RelationId rel_id_ = 0;
  Schema schema_;
  BPlusTree tree_;
};

/// Name -> table registry for one database instance.
class Catalog {
 public:
  /// Registers a table definition; returns the mutable slot to load into.
  Table* Register(std::string name, Schema schema);

  Table* Find(const std::string& name);
  const Table* Find(const std::string& name) const;
  Table* FindById(RelationId id);
  const Table* FindById(RelationId id) const;

  size_t num_tables() const { return tables_.size(); }

 private:
  std::vector<std::unique_ptr<Table>> tables_;
};

}  // namespace objrep

#endif  // OBJREP_RELATIONAL_TABLE_H_
