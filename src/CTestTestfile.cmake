# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("obs")
subdirs("storage")
subdirs("record")
subdirs("access")
subdirs("relational")
subdirs("objstore")
subdirs("core")
subdirs("exec")
subdirs("shard")
subdirs("net")
