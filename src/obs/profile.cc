#include "obs/profile.h"

#include <cstdio>

namespace objrep {

namespace {

ProfileCollector*& CurrentCollectorRef() {
  thread_local ProfileCollector* collector = nullptr;
  return collector;
}

void AppendU64(std::string* out, const char* key, uint64_t v) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\":%llu", key,
                static_cast<unsigned long long>(v));
  *out += buf;
}

/// {"total_reads":…,"total_writes":…,"tags":{"parent_scan":{"reads":…,
/// "writes":…},…}} — only tags with nonzero traffic appear, and the tag
/// entries sum exactly to the totals (same invariant as the volume
/// breakdown).
void AppendIoJson(std::string* out, const IoTagBreakdown& io) {
  *out += "{";
  AppendU64(out, "total_reads", io.total_reads());
  *out += ",";
  AppendU64(out, "total_writes", io.total_writes());
  *out += ",\"tags\":{";
  bool first = true;
  for (size_t i = 0; i < kNumIoTags; ++i) {
    if (io.reads[i] == 0 && io.writes[i] == 0) continue;
    if (!first) *out += ",";
    first = false;
    char buf[128];
    std::snprintf(buf, sizeof(buf), "\"%s\":{\"reads\":%llu,\"writes\":%llu}",
                  IoTagName(static_cast<IoTag>(i)),
                  static_cast<unsigned long long>(io.reads[i]),
                  static_cast<unsigned long long>(io.writes[i]));
    *out += buf;
  }
  *out += "}}";
}

}  // namespace

std::string RetrieveProfile::ToJson() const {
  std::string out = "{";
  AppendU64(&out, "trace_id", trace_id);
  out += ",\"verb\":\"";
  out += verb;
  out += "\",";
  AppendU64(&out, "total_us", total_us);
  out += ",";
  AppendU64(&out, "lock_wait_us", lock_wait_us);
  out += ",";
  AppendU64(&out, "commit_wait_us", commit_wait_us);
  char buf[64];
  std::snprintf(buf, sizeof(buf), ",\"plan\":%lld",
                static_cast<long long>(plan));
  out += buf;
  out += ",";
  AppendU64(&out, "cache_hits", cache_hits);
  out += ",";
  AppendU64(&out, "cache_misses", cache_misses);
  out += ",";
  AppendU64(&out, "rows", rows);
  out += ",\"io\":";
  AppendIoJson(&out, io);
  out += ",\"shards\":[";
  bool first = true;
  for (const ShardProfile& s : shards) {
    if (!first) out += ",";
    first = false;
    out += "{";
    AppendU64(&out, "shard", s.shard);
    out += ",";
    AppendU64(&out, "us", s.us);
    out += ",\"io\":";
    AppendIoJson(&out, s.io);
    out += "}";
  }
  out += "]}";
  return out;
}

ProfileCollector* ProfileCollector::Current() {
  return CurrentCollectorRef();
}

ProfileCollector::Scope::Scope(ProfileCollector* c)
    : prev_(CurrentCollectorRef()) {
  CurrentCollectorRef() = c;
}

ProfileCollector::Scope::~Scope() { CurrentCollectorRef() = prev_; }

SlowQueryRing& SlowQueryRing::Global() {
  static SlowQueryRing* r = new SlowQueryRing();
  return *r;
}

void SlowQueryRing::MaybeRecord(const RetrieveProfile& p) {
  const uint64_t bar = threshold_us();
  if (bar == 0 || p.total_us < bar) return;
  std::string json = p.ToJson();
  std::lock_guard<std::mutex> guard(mu_);
  if (entries_.size() >= kSlowRingCapacity) entries_.pop_front();
  entries_.push_back(std::move(json));
  captured_.fetch_add(1, std::memory_order_relaxed);
}

std::string SlowQueryRing::ToJson() const {
  std::lock_guard<std::mutex> guard(mu_);
  std::string out = "[";
  bool first = true;
  for (const std::string& e : entries_) {
    if (!first) out += ",";
    first = false;
    out += e;
  }
  out += "]";
  return out;
}

size_t SlowQueryRing::size() const {
  std::lock_guard<std::mutex> guard(mu_);
  return entries_.size();
}

void SlowQueryRing::Clear() {
  std::lock_guard<std::mutex> guard(mu_);
  entries_.clear();
  captured_.store(0, std::memory_order_relaxed);
}

}  // namespace objrep
