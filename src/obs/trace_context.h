// Request-scoped trace identity (DESIGN.md §16).
//
// A trace id is a 64-bit value minted once per request — by ObjClient when
// the request leaves the application, or by the server at admission for
// bare clients — and carried (a) on the wire in the v3 frame header and
// (b) across threads inside one process via this thread-local. Every trace
// event recorded while a ScopedTraceId is active is stamped with the id,
// so tools/trace_summary.py can stitch the spans of one request across
// client and server processes into a single critical path.
//
// Cost model: reading the current id is one thread-local load; there is no
// atomic, no lock, and nothing happens at all unless tracing or profiling
// actually consumes the id. Id 0 means "no request context" and is never
// minted.
#ifndef OBJREP_OBS_TRACE_CONTEXT_H_
#define OBJREP_OBS_TRACE_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace objrep {

inline uint64_t& CurrentTraceIdRef() {
  thread_local uint64_t id = 0;
  return id;
}

/// The trace id of the request this thread is currently executing, or 0.
inline uint64_t CurrentTraceId() { return CurrentTraceIdRef(); }

/// RAII request-context scope. Nested scopes stack (the exec ThreadPool
/// re-establishes the submitter's id around each task, so a worker that
/// interleaves tasks of different requests never bleeds ids).
class ScopedTraceId {
 public:
  explicit ScopedTraceId(uint64_t id) : prev_(CurrentTraceIdRef()) {
    CurrentTraceIdRef() = id;
  }
  ~ScopedTraceId() { CurrentTraceIdRef() = prev_; }

  ScopedTraceId(const ScopedTraceId&) = delete;
  ScopedTraceId& operator=(const ScopedTraceId&) = delete;

 private:
  uint64_t prev_;
};

/// Mints process-unique, never-zero trace ids. The per-process seed folds
/// in the startup clock so ids from a client and a server started seconds
/// apart cannot collide; the SplitMix64 finalizer spreads the sequence so
/// ids are useful hash keys.
class TraceIdGen {
 public:
  static uint64_t Next() {
    static std::atomic<uint64_t> counter{Seed()};
    uint64_t x = counter.fetch_add(0x9E3779B97F4A7C15ull,
                                   std::memory_order_relaxed);
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBull;
    x ^= x >> 31;
    return x != 0 ? x : 1;
  }

 private:
  static uint64_t Seed() {
    return static_cast<uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count()) ^
           (static_cast<uint64_t>(
                std::chrono::system_clock::now().time_since_epoch().count())
            << 1);
  }
};

}  // namespace objrep

#endif  // OBJREP_OBS_TRACE_CONTEXT_H_
