#include "obs/trace.h"

#include <chrono>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

namespace objrep {

namespace {

// Per-thread ring. ~64k events x 80 B = ~5 MB/thread worst case; overwrite
// keeps the newest events, which is what you want when diagnosing the end
// of a long run.
constexpr size_t kRingCapacity = 65536;

struct ThreadBuffer {
  std::mutex mu;  // uncontended except against a flush
  uint32_t tid = 0;
  std::vector<TraceEvent> ring;
  size_t next = 0;        // write cursor
  bool wrapped = false;   // ring has overwritten at least once
  uint64_t dropped = 0;   // events overwritten
};

struct BufferRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;  // survive thread exit
  uint32_t next_tid = 1;
};

BufferRegistry& Registry() {
  static BufferRegistry* r = new BufferRegistry();
  return *r;
}

ThreadBuffer& LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buf = [] {
    auto b = std::make_shared<ThreadBuffer>();
    b->ring.reserve(1024);
    BufferRegistry& reg = Registry();
    std::lock_guard<std::mutex> l(reg.mu);
    b->tid = reg.next_tid++;
    reg.buffers.push_back(b);
    return b;
  }();
  return *buf;
}

void AppendEvent(ThreadBuffer& buf, const TraceEvent& ev) {
  std::lock_guard<std::mutex> l(buf.mu);
  if (buf.ring.size() < kRingCapacity) {
    buf.ring.push_back(ev);
    return;
  }
  if (buf.next >= buf.ring.size()) buf.next = 0;
  buf.ring[buf.next++] = ev;
  buf.wrapped = true;
  ++buf.dropped;
}

void WriteOneEvent(std::ostream& os, const TraceEvent& ev) {
  os << "{\"name\":\"" << ev.name << "\",\"cat\":\"" << ev.cat
     << "\",\"ph\":\"" << ev.ph << "\",\"pid\":1,\"tid\":" << ev.tid
     << ",\"ts\":" << ev.ts_us;
  if (ev.ph == 'X') os << ",\"dur\":" << ev.dur_us;
  if (ev.ph == 'i') os << ",\"s\":\"t\"";  // thread-scoped instant
  // Top-level request identity; Chrome/Perfetto ignore unknown fields,
  // tools/trace_summary.py groups spans across processes by it.
  if (ev.trace_id != 0) os << ",\"trace\":" << ev.trace_id;
  if (ev.arg_names[0] != nullptr) {
    os << ",\"args\":{";
    for (size_t i = 0; i < 2 && ev.arg_names[i] != nullptr; ++i) {
      if (i) os << ",";
      os << "\"" << ev.arg_names[i] << "\":" << ev.arg_vals[i];
    }
    os << "}";
  }
  os << "}";
}

}  // namespace

uint64_t Trace::NowMicros() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

void Trace::Record(const TraceEvent& ev) {
  ThreadBuffer& buf = LocalBuffer();
  TraceEvent stamped = ev;
  stamped.tid = buf.tid;
  // Spans capture their request id at construction; anything else picks
  // up the thread's current request context here.
  if (stamped.trace_id == 0) stamped.trace_id = CurrentTraceId();
  AppendEvent(buf, stamped);
}

void Trace::Instant(const char* name, const char* cat, const char* arg_name,
                    uint64_t arg) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.ph = 'i';
  ev.ts_us = NowMicros();
  if (arg_name != nullptr) {
    ev.arg_names[0] = arg_name;
    ev.arg_vals[0] = arg;
  }
  Record(ev);
}

void Trace::Complete(const char* name, const char* cat, uint64_t ts_us,
                     uint64_t dur_us, const char* arg0_name, uint64_t arg0,
                     const char* arg1_name, uint64_t arg1) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.ph = 'X';
  ev.ts_us = ts_us;
  ev.dur_us = dur_us;
  if (arg0_name != nullptr) {
    ev.arg_names[0] = arg0_name;
    ev.arg_vals[0] = arg0;
  }
  if (arg1_name != nullptr) {
    ev.arg_names[1] = arg1_name;
    ev.arg_vals[1] = arg1;
  }
  Record(ev);
}

void Trace::WriteJson(std::ostream& os) {
  BufferRegistry& reg = Registry();
  std::lock_guard<std::mutex> rl(reg.mu);
  os << "[";
  bool first = true;
  for (const auto& buf : reg.buffers) {
    std::lock_guard<std::mutex> bl(buf->mu);
    // Oldest kept event first: [next, end) then [0, next) once wrapped.
    size_t n = buf->ring.size();
    size_t start = buf->wrapped ? buf->next % n : 0;
    for (size_t k = 0; k < n; ++k) {
      const TraceEvent& ev = buf->ring[(start + k) % n];
      if (!first) os << ",\n";
      first = false;
      WriteOneEvent(os, ev);
    }
  }
  os << "]\n";
}

Status Trace::FlushToFile(const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open trace file: " + path);
  WriteJson(out);
  out.flush();
  if (!out) return Status::IOError("failed writing trace file: " + path);
  return Status::OK();
}

void Trace::Clear() {
  BufferRegistry& reg = Registry();
  std::lock_guard<std::mutex> rl(reg.mu);
  for (const auto& buf : reg.buffers) {
    std::lock_guard<std::mutex> bl(buf->mu);
    buf->ring.clear();
    buf->next = 0;
    buf->wrapped = false;
    buf->dropped = 0;
  }
}

uint64_t Trace::dropped_events() {
  BufferRegistry& reg = Registry();
  std::lock_guard<std::mutex> rl(reg.mu);
  uint64_t total = 0;
  for (const auto& buf : reg.buffers) {
    std::lock_guard<std::mutex> bl(buf->mu);
    total += buf->dropped;
  }
  return total;
}

}  // namespace objrep
