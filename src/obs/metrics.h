// Process-wide metrics registry: named counters, gauges, and log-bucketed
// latency histograms (DESIGN.md §11).
//
// Hot-path cost model: callers look a metric up ONCE (mutex-guarded map)
// and cache the returned pointer — after that every update is a single
// relaxed atomic RMW, safe from any thread. Histograms use 64 log2 buckets
// of relaxed atomics; percentiles are computed at snapshot time from the
// bucket counts (reported as the bucket's upper edge, clamped to the
// observed max), and shards recorded on separate Histogram instances can be
// combined with Merge().
//
// Metrics are cumulative and monotonic for the life of the process
// (gauges except — they track a level). Per-run deltas belong to the
// subsystem stats structs (BufferPool stats, IoTagBreakdown), not here.
#ifndef OBJREP_OBS_METRICS_H_
#define OBJREP_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>

namespace objrep {

/// Monotonic event count.
class Counter {
 public:
  void Add(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Instantaneous level (queue depth, pinned frames). May go up and down.
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  void Sub(int64_t n = 1) { v_.fetch_sub(n, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Log2-bucketed histogram of non-negative integer samples (latencies in
/// microseconds, sizes in pages). Bucket i >= 1 holds values in
/// [2^(i-1), 2^i - 1]; bucket 0 holds the value 0. Recording is one relaxed
/// fetch_add per of {bucket, count, sum} plus a CAS loop for max.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 64;

  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t max = 0;
    uint64_t p50 = 0;
    uint64_t p90 = 0;
    uint64_t p99 = 0;
    double mean() const {
      return count == 0 ? 0.0 : static_cast<double>(sum) / count;
    }
  };

  void Record(uint64_t v) {
    buckets_[BucketOf(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    uint64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  /// Adds `other`'s samples into this histogram (per-thread shard merge).
  /// `other` must be quiescent for the merge to be exact.
  void Merge(const Histogram& other);

  /// Consistent-enough view for reporting: exact once recording threads are
  /// quiescent; during recording, counts may trail by in-flight samples.
  Snapshot TakeSnapshot() const;

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  /// Bucket index for a sample: 0 for 0, else 64 - countl_zero(v).
  static size_t BucketOf(uint64_t v) {
    size_t b = 0;
    while (v > 0) {
      ++b;
      v >>= 1;
    }
    return b < kNumBuckets ? b : kNumBuckets - 1;
  }
  /// Largest value bucket i reports (the percentile estimate for samples
  /// landing there).
  static uint64_t BucketUpperEdge(size_t i) {
    if (i == 0) return 0;
    if (i >= kNumBuckets - 1) return UINT64_MAX;
    return (uint64_t{1} << i) - 1;
  }

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

/// Name -> metric map. One process-wide instance (Global()); tests may
/// build private instances. Returned pointers are stable for the registry's
/// lifetime — cache them.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{name:
  /// {"count","sum","max","p50","p90","p99"}}}. Keys sorted (std::map).
  void WriteJson(std::ostream& os) const;
  std::string ToJson() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace objrep

#endif  // OBJREP_OBS_METRICS_H_
