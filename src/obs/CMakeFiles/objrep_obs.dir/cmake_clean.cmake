file(REMOVE_RECURSE
  "CMakeFiles/objrep_obs.dir/metrics.cc.o"
  "CMakeFiles/objrep_obs.dir/metrics.cc.o.d"
  "CMakeFiles/objrep_obs.dir/trace.cc.o"
  "CMakeFiles/objrep_obs.dir/trace.cc.o.d"
  "libobjrep_obs.a"
  "libobjrep_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/objrep_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
