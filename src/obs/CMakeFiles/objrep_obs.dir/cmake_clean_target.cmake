file(REMOVE_RECURSE
  "libobjrep_obs.a"
)
