# Empty dependencies file for objrep_obs.
# This may be replaced when dependencies are built.
