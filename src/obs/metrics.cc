#include "obs/metrics.h"

#include <sstream>

namespace objrep {

void Histogram::Merge(const Histogram& other) {
  for (size_t i = 0; i < kNumBuckets; ++i) {
    uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  uint64_t omax = other.max_.load(std::memory_order_relaxed);
  uint64_t cur = max_.load(std::memory_order_relaxed);
  while (omax > cur &&
         !max_.compare_exchange_weak(cur, omax, std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot s;
  uint64_t buckets[kNumBuckets];
  for (size_t i = 0; i < kNumBuckets; ++i) {
    buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    s.count += buckets[i];
  }
  s.sum = sum_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  if (s.count == 0) return s;
  // Percentile q: the bucket holding the ceil(q * count)-th sample, reported
  // as that bucket's upper edge clamped to the observed max.
  auto percentile = [&](double q) -> uint64_t {
    uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(s.count));
    if (rank == 0) rank = 1;
    uint64_t seen = 0;
    for (size_t i = 0; i < kNumBuckets; ++i) {
      seen += buckets[i];
      if (seen >= rank) {
        uint64_t edge = BucketUpperEdge(i);
        return edge < s.max ? edge : s.max;
      }
    }
    return s.max;
  };
  s.p50 = percentile(0.50);
  s.p90 = percentile(0.90);
  s.p99 = percentile(0.99);
  return s;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> l(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> l(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> l(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

void MetricsRegistry::WriteJson(std::ostream& os) const {
  std::lock_guard<std::mutex> l(mu_);
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":" << c->value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":" << g->value();
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ",";
    first = false;
    Histogram::Snapshot s = h->TakeSnapshot();
    os << "\"" << name << "\":{\"count\":" << s.count << ",\"sum\":" << s.sum
       << ",\"max\":" << s.max << ",\"p50\":" << s.p50
       << ",\"p90\":" << s.p90 << ",\"p99\":" << s.p99 << "}";
  }
  os << "}}";
}

std::string MetricsRegistry::ToJson() const {
  std::ostringstream oss;
  WriteJson(oss);
  return oss.str();
}

}  // namespace objrep
