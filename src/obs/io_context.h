// Per-component I/O attribution: a scoped, thread-local tag consumed by
// DiskManager so every counted physical read/write is attributed to the
// component that issued it (DESIGN.md §11).
//
// The tag is pure thread-local state — setting it is two stores, reading it
// one load, no atomics, no registry. Innermost scope wins: a strategy tags
// its child-probe loop kIndexProbe, and if the buffer pool evicts a dirty
// temp page while servicing that probe, the *write* is still attributed to
// the component that dirtied the page (BufferPool re-tags deferred
// write-backs with the frame's dirty_tag).
//
// The same thread-local block carries the simulated device arm position
// (last page read) so sequential-read classification is per reading thread,
// not global — two interleaved sequential scanners each see their own run
// (the seq/rand fix of PR 4).
#ifndef OBJREP_OBS_IO_CONTEXT_H_
#define OBJREP_OBS_IO_CONTEXT_H_

#include <cstddef>
#include <cstdint>

namespace objrep {

/// What the current thread is doing when it touches the disk. Tags mirror
/// the paper's cost taxonomy: parent scans, index probes into child
/// relations, heap fetches of child tuples, clustered-extent scans, temp
/// file + sort traffic, cache lookups vs cache maintenance, in-place
/// updates, prefetch reads, and WAL write-through.
enum class IoTag : uint8_t {
  kNone = 0,     // untagged (schema build, test setup)
  kParentScan,   // parent-relation B-tree range scan
  kIndexProbe,   // child-index probe (OID -> tuple), incl. ISAM lookups
  kHeapFetch,    // child tuple fetch during merge/hash join output
  kClusterScan,  // clustered child-relation extent scan (DFSCLUST)
  kTempSort,     // temp-file append/read + external-sort spill
  kCacheFetch,   // object-cache hit lookup
  kCacheMaint,   // object-cache install / invalidation / recovery reset
  kUpdate,       // in-place child update
  kPrefetch,     // staging-frame read-ahead (sync or async worker)
  kWal,          // commit write-through of logged pages
  kMvccCommit,   // MVCC commit path (FCW validation + version install)
  kMvccFold,     // MVCC fold of committed versions onto base pages
  kCount,
};

inline constexpr size_t kNumIoTags = static_cast<size_t>(IoTag::kCount);

/// Short stable name for JSON fields and table headers.
inline const char* IoTagName(IoTag tag) {
  switch (tag) {
    case IoTag::kNone: return "none";
    case IoTag::kParentScan: return "parent_scan";
    case IoTag::kIndexProbe: return "index_probe";
    case IoTag::kHeapFetch: return "heap_fetch";
    case IoTag::kClusterScan: return "cluster_scan";
    case IoTag::kTempSort: return "temp_sort";
    case IoTag::kCacheFetch: return "cache_fetch";
    case IoTag::kCacheMaint: return "cache_maint";
    case IoTag::kUpdate: return "update";
    case IoTag::kPrefetch: return "prefetch";
    case IoTag::kWal: return "wal";
    case IoTag::kMvccCommit: return "mvcc_commit";
    case IoTag::kMvccFold: return "mvcc_fold";
    case IoTag::kCount: break;
  }
  return "?";
}

/// Thread-local I/O state: the active attribution tag plus the simulated
/// device-arm position for sequential-read classification. The arm is keyed
/// by a per-DiskManager serial so a thread touching two volumes does not
/// splice their runs together (a stale serial reads as "arm unknown").
///
/// The reads/seq_reads/writes fields count this thread's own physical I/O,
/// monotonic for the thread's life. DiskManager bumps them at the same
/// sites as its global counters, so a strategy can delta-snapshot around a
/// query and observe exactly its own I/O even while other workers run —
/// the observation feed of the adaptive engine (DESIGN.md §12). Async
/// prefetch workers bill their own thread, so with prefetch_workers > 0 a
/// query's staged read-ahead is invisible to the issuing thread's counts
/// (synchronous prefetch, the deterministic default, is fully visible).
struct IoThreadState {
  IoTag tag = IoTag::kNone;
  uint64_t arm_serial = 0;            // DiskManager serial the arm belongs to
  uint64_t last_read = UINT64_MAX;    // page id of this thread's last read
  uint64_t reads = 0;                 // this thread's physical reads
  uint64_t seq_reads = 0;             // ... classified sequential
  uint64_t writes = 0;                // this thread's physical writes
  uint64_t tag_reads[kNumIoTags] = {};   // reads, split by active tag
  uint64_t tag_writes[kNumIoTags] = {};  // writes, split by active tag
  uint64_t cache_hits = 0;            // object-cache lookup hits
  uint64_t cache_misses = 0;          // object-cache lookup misses
};

inline IoThreadState& CurrentIoThreadState() {
  thread_local IoThreadState state;
  return state;
}

inline IoTag CurrentIoTag() { return CurrentIoThreadState().tag; }

/// Snapshot of the calling thread's own physical I/O counts. Subtract two
/// snapshots to measure the I/O a bracketed piece of work performed on
/// this thread, immune to concurrent workers (unlike DiskManager::
/// counters(), which is volume-global).
struct ThreadIoSnapshot {
  uint64_t reads = 0;
  uint64_t seq_reads = 0;
  uint64_t writes = 0;

  uint64_t rand_reads() const { return reads - seq_reads; }
  uint64_t total() const { return reads + writes; }
  ThreadIoSnapshot operator-(const ThreadIoSnapshot& rhs) const {
    return ThreadIoSnapshot{reads - rhs.reads, seq_reads - rhs.seq_reads,
                            writes - rhs.writes};
  }
};

inline ThreadIoSnapshot CurrentThreadIo() {
  const IoThreadState& st = CurrentIoThreadState();
  return ThreadIoSnapshot{st.reads, st.seq_reads, st.writes};
}

/// RAII tag scope. Nested scopes stack; the innermost wins.
class ScopedIoTag {
 public:
  explicit ScopedIoTag(IoTag tag) : prev_(CurrentIoThreadState().tag) {
    CurrentIoThreadState().tag = tag;
  }
  ~ScopedIoTag() { CurrentIoThreadState().tag = prev_; }

  ScopedIoTag(const ScopedIoTag&) = delete;
  ScopedIoTag& operator=(const ScopedIoTag&) = delete;

 private:
  IoTag prev_;
};

/// Per-tag physical I/O counts. Sum over all tags (kNone included) equals
/// the volume's IoCounters totals exactly — DiskManager bumps the tag slot
/// at the same site, by the same amount, as the flat counter.
struct IoTagBreakdown {
  uint64_t reads[kNumIoTags] = {};
  uint64_t writes[kNumIoTags] = {};

  uint64_t total_reads() const {
    uint64_t t = 0;
    for (uint64_t r : reads) t += r;
    return t;
  }
  uint64_t total_writes() const {
    uint64_t t = 0;
    for (uint64_t w : writes) t += w;
    return t;
  }
  uint64_t total() const { return total_reads() + total_writes(); }
  uint64_t reads_for(IoTag tag) const {
    return reads[static_cast<size_t>(tag)];
  }
  uint64_t writes_for(IoTag tag) const {
    return writes[static_cast<size_t>(tag)];
  }
  uint64_t total_for(IoTag tag) const {
    return reads_for(tag) + writes_for(tag);
  }

  IoTagBreakdown operator-(const IoTagBreakdown& rhs) const {
    IoTagBreakdown out;
    for (size_t i = 0; i < kNumIoTags; ++i) {
      out.reads[i] = reads[i] - rhs.reads[i];
      out.writes[i] = writes[i] - rhs.writes[i];
    }
    return out;
  }
  IoTagBreakdown& operator+=(const IoTagBreakdown& rhs) {
    for (size_t i = 0; i < kNumIoTags; ++i) {
      reads[i] += rhs.reads[i];
      writes[i] += rhs.writes[i];
    }
    return *this;
  }
};

/// Snapshot of the calling thread's own per-tag physical I/O counts
/// (monotonic for the thread's life; DiskManager bumps them at the same
/// sites as its global per-tag slots). Delta two snapshots to get the
/// exact per-tag I/O a bracketed piece of single-threaded work performed —
/// the per-shard attribution feed of RetrieveProfile. Async prefetch
/// workers bill their own thread, exactly as with the flat thread counts.
inline IoTagBreakdown CurrentThreadIoTags() {
  const IoThreadState& st = CurrentIoThreadState();
  IoTagBreakdown b;
  for (size_t i = 0; i < kNumIoTags; ++i) {
    b.reads[i] = st.tag_reads[i];
    b.writes[i] = st.tag_writes[i];
  }
  return b;
}

}  // namespace objrep

#endif  // OBJREP_OBS_IO_CONTEXT_H_
