// Traffic heat map: EWMA-decayed access counts per parent object and per
// child relation (DESIGN.md §16).
//
// This is the statistics feed for the online reclusterer (ROADMAP item 4,
// after Darmont's statistics-driven incremental reclustering line): it
// answers "which parents and which child relations are hot *right now*",
// not "which were ever touched".
//
// Cost model: the record path must be safe to leave on under full load.
// A touch is one relaxed fetch_add into a slot array sharded kHeatShards
// ways by thread (no CAS loops, no locks, no false sharing between
// concurrent writers); when disabled it is a single relaxed load. Huge
// parent ranges are stride-sampled so one full-database scan costs at most
// kMaxTouchesPerCall adds. All aggregation cost — summing shards, EWMA
// decay, ranking — is paid by the (rare) reader under a mutex.
//
// Decay: Decay(alpha) folds the counts accumulated since the previous
// decay into `ewma = ewma * alpha + delta`. The STATS path calls it at
// most once per kDecayIntervalUs, so heat is a half-life-weighted rate,
// and an object that stops being touched fades instead of staying hot
// forever. Heat reads add the not-yet-folded delta at full weight so a
// burst is visible before the next decay tick.
//
// Parent ids map to slots modulo kParentSlots: exact for databases with
// fewer than 64Ki parents (every configuration in this repo), a fold for
// larger ones — fine for a ranking signal.
#ifndef OBJREP_OBS_HEAT_MAP_H_
#define OBJREP_OBS_HEAT_MAP_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace objrep {

class HeatMap {
 public:
  static constexpr size_t kParentSlots = 65536;
  static constexpr size_t kRelSlots = 64;
  static constexpr size_t kHeatShards = 8;
  static constexpr uint64_t kMaxTouchesPerCall = 1024;
  static constexpr double kDefaultAlpha = 0.5;
  static constexpr uint64_t kDecayIntervalUs = 1000000;  // 1 s

  /// One process-wide tracker, like the metrics registry.
  static HeatMap& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void SetEnabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Records an access to parents [lo, lo + n). Ranges wider than
  /// kMaxTouchesPerCall are stride-sampled, each sampled slot charged the
  /// stride, so the total charged weight is always n.
  void TouchParents(uint64_t lo, uint64_t n);

  /// Records `n` subobject accesses against child relation `rel`.
  void TouchRel(uint32_t rel, uint64_t n = 1);

  /// Folds counts accumulated since the last decay into the EWMA:
  /// `ewma = ewma * alpha + delta`.
  void Decay(double alpha = kDefaultAlpha);

  /// Calls Decay(alpha) only if at least kDecayIntervalUs elapsed since
  /// the previous decay — the self-clocking hook for STATS/metrics paths
  /// that fire at arbitrary rates.
  void MaybeDecay(double alpha = kDefaultAlpha);

  struct ParentHeat {
    uint64_t parent = 0;
    double heat = 0.0;
  };
  struct RelHeat {
    uint32_t rel = 0;
    double heat = 0.0;
  };

  /// The k hottest parents, heat-descending (ties parent-ascending).
  /// Slots with zero heat are omitted.
  std::vector<ParentHeat> TopParents(size_t k) const;

  /// Heat of every child relation with nonzero heat, heat-descending.
  std::vector<RelHeat> RelHeats() const;

  /// Raw touch weight recorded since construction/Reset (monotonic).
  uint64_t touches() const {
    return touches_.load(std::memory_order_relaxed);
  }
  uint64_t decays() const { return decays_.load(std::memory_order_relaxed); }

  /// {"enabled":…,"touches":…,"decays":…,"top_parents":[…],"rels":[…]}
  std::string ToJson(size_t top_k) const;

  /// Drops all counts and EWMA state (tests / between driver runs).
  void Reset();

  HeatMap();
  HeatMap(const HeatMap&) = delete;
  HeatMap& operator=(const HeatMap&) = delete;

 private:
  size_t ThreadShard() const;
  /// Sums the write shards for `slot` of `counts` (relaxed reads).
  uint64_t SumParentSlot(size_t slot) const;
  uint64_t SumRelSlot(size_t slot) const;
  /// heat = ewma + not-yet-decayed delta. Caller holds mu_.
  double ParentHeatLocked(size_t slot) const;
  double RelHeatLocked(size_t slot) const;

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> touches_{0};
  std::atomic<uint64_t> decays_{0};

  /// Write side: kHeatShards independent slot arrays, relaxed atomics.
  struct Shard {
    std::unique_ptr<std::atomic<uint64_t>[]> parents;
    std::unique_ptr<std::atomic<uint64_t>[]> rels;
  };
  Shard shards_[kHeatShards];

  /// Read/decay side, all guarded by mu_.
  mutable std::mutex mu_;
  std::unique_ptr<uint64_t[]> parent_consumed_;  // folded-into-EWMA watermark
  std::unique_ptr<double[]> parent_ewma_;
  uint64_t rel_consumed_[kRelSlots] = {};
  double rel_ewma_[kRelSlots] = {};
  uint64_t last_decay_us_ = 0;
};

}  // namespace objrep

#endif  // OBJREP_OBS_HEAT_MAP_H_
