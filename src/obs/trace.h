// Span tracing: RAII spans and instant events recorded into per-thread
// ring buffers, flushed as Chrome/Perfetto trace-event JSON (DESIGN.md §11).
//
// Cost model: tracing is off by default. Every record site guards on one
// inline relaxed atomic load (`Trace::enabled()`), so the disabled path is
// a predicted-not-taken branch — no clock read, no allocation, no lock.
// When enabled, a record is one clock read plus an uncontended per-thread
// buffer append (the buffer mutex only ever contends with a flush).
//
// Spans are recorded as complete ('X') events at scope exit — begin/end
// can never be unbalanced, and a ring overwrite drops whole events, which
// preserves the nest-or-disjoint property tools/trace_summary.py checks.
// Event name/category/arg-name strings must have static storage duration
// (string literals): the buffer stores the pointers.
#ifndef OBJREP_OBS_TRACE_H_
#define OBJREP_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>

#include "obs/trace_context.h"
#include "util/status.h"

namespace objrep {

/// One buffered trace event (Chrome trace-event model, 'X' or 'i').
struct TraceEvent {
  const char* name = nullptr;
  const char* cat = nullptr;
  char ph = 'X';
  uint32_t tid = 0;
  uint64_t ts_us = 0;
  uint64_t dur_us = 0;  // 'X' only
  uint64_t trace_id = 0;  // request identity (0 = outside any request)
  const char* arg_names[2] = {nullptr, nullptr};
  uint64_t arg_vals[2] = {0, 0};
};

/// Global trace control + sinks. All static: there is one trace stream per
/// process, like the metrics registry.
class Trace {
 public:
  static bool enabled() { return enabled_.load(std::memory_order_relaxed); }
  static void SetEnabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Microseconds on the trace's steady clock (0 = first use).
  static uint64_t NowMicros();

  /// Records an instant ('i') event, e.g. a crash-point hit or an I-lock
  /// invalidation. No-op when disabled.
  static void Instant(const char* name, const char* cat,
                      const char* arg_name = nullptr, uint64_t arg = 0);

  /// Records a complete ('X') event with explicit timing — for sites that
  /// measure a duration themselves (e.g. a lock wait recorded only when the
  /// thread actually blocked). No-op when disabled.
  static void Complete(const char* name, const char* cat, uint64_t ts_us,
                       uint64_t dur_us, const char* arg0_name = nullptr,
                       uint64_t arg0 = 0, const char* arg1_name = nullptr,
                       uint64_t arg1 = 0);

  /// Serializes all buffered events as a JSON array (oldest kept event
  /// first per thread). Exact once recording threads are quiescent.
  static void WriteJson(std::ostream& os);
  static Status FlushToFile(const std::string& path);

  /// Drops all buffered events (tests; between driver strategy runs the
  /// buffers are intentionally kept — one trace per process run).
  static void Clear();

  /// Total events dropped to ring overwrite since the last Clear().
  static uint64_t dropped_events();

 private:
  friend class TraceSpan;
  static void Record(const TraceEvent& ev);  // stamps tid
  inline static std::atomic<bool> enabled_{false};
};

/// RAII span: captures the start time at construction, records one 'X'
/// event at destruction (or End()). Attach up to two integer args — e.g.
/// the I/O delta of the spanned work — any time before the span closes.
class TraceSpan {
 public:
  TraceSpan(const char* name, const char* cat) {
    if (Trace::enabled()) {
      active_ = true;
      ev_.name = name;
      ev_.cat = cat;
      ev_.ts_us = Trace::NowMicros();
      ev_.trace_id = CurrentTraceId();
    }
  }
  ~TraceSpan() { End(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  void SetArg(const char* name, uint64_t v) {
    if (!active_) return;
    for (auto& slot : ev_.arg_names) {
      size_t i = static_cast<size_t>(&slot - ev_.arg_names);
      if (ev_.arg_names[i] == nullptr || ev_.arg_names[i] == name) {
        ev_.arg_names[i] = name;
        ev_.arg_vals[i] = v;
        return;
      }
    }
  }

  void End() {
    if (!active_) return;
    active_ = false;
    ev_.dur_us = Trace::NowMicros() - ev_.ts_us;
    Trace::Record(ev_);
  }

 private:
  bool active_ = false;
  TraceEvent ev_;
};

}  // namespace objrep

#endif  // OBJREP_OBS_TRACE_H_
