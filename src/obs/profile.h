// Per-request profiles: EXPLAIN ANALYZE for one served request
// (DESIGN.md §16).
//
// A RetrieveProfile aggregates everything one request did: wall time,
// per-tag physical I/O (exact — fed by the thread-local per-tag counters
// that DiskManager bumps at the same sites as the volume counters),
// object-cache hits/misses, lock-wait and MVCC commit-retry wait, the
// adaptive planner's choice, and per-shard timing/IO. The shard layer can
// report per-shard slices because scatter-gather runs every shard
// sub-query sequentially on the calling thread, so bracketing each one
// with thread-local snapshots attributes its I/O exactly.
//
// Collection is pull-free: ObjService installs a ProfileCollector in a
// thread-local for the duration of one request (when the client set the
// PROFILE flag, or whenever the slow-query ring is armed), and the shard /
// adaptive / lock layers report into it if — and only if — one is
// installed. With no collector installed each hook is a single
// thread-local load, so the un-profiled hot path stays flat.
//
// The SlowQueryRing keeps the last kSlowRingCapacity profiles whose total
// latency crossed a threshold — the flight recorder the STATS verb
// exposes, so a slow request that already happened can still be explained.
#ifndef OBJREP_OBS_PROFILE_H_
#define OBJREP_OBS_PROFILE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "obs/io_context.h"

namespace objrep {

/// One shard sub-query's slice of a request.
struct ShardProfile {
  uint32_t shard = 0;
  uint64_t us = 0;
  IoTagBreakdown io;
};

/// Everything one request did, serializable as one JSON object.
struct RetrieveProfile {
  uint64_t trace_id = 0;
  const char* verb = "retrieve";  // static string ("retrieve" / "update")
  uint64_t total_us = 0;
  uint64_t lock_wait_us = 0;    // 2PL acquisition wait
  uint64_t commit_wait_us = 0;  // MVCC FCW retry wait
  int64_t plan = -1;            // adaptive plan choice (StrategyKind), -1 = fixed
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t rows = 0;  // subobjects returned
  IoTagBreakdown io;  // whole-request per-tag physical I/O
  std::vector<ShardProfile> shards;  // empty on an unsharded engine

  std::string ToJson() const;
};

/// Thread-local collection point for the request this thread is executing.
class ProfileCollector {
 public:
  /// The collector installed on this thread, or nullptr (the common case).
  static ProfileCollector* Current();

  /// RAII installer: makes `c` the thread's collector, restores the
  /// previous one on destruction (nesting is legal but unused).
  class Scope {
   public:
    explicit Scope(ProfileCollector* c);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    ProfileCollector* prev_;
  };

  /// Accumulates one shard sub-query's slice. Scatter-gather decomposes
  /// a range into many per-shard sub-queries, so slices for the same
  /// shard merge — the profile reports one entry per shard, not one per
  /// sub-range.
  void AddShard(uint32_t shard, uint64_t us, const IoTagBreakdown& io) {
    for (ShardProfile& s : profile.shards) {
      if (s.shard == shard) {
        s.us += us;
        s.io += io;
        return;
      }
    }
    profile.shards.push_back(ShardProfile{shard, us, io});
  }
  void SetPlan(int64_t plan) { profile.plan = plan; }
  void AddLockWait(uint64_t us) { profile.lock_wait_us += us; }
  void AddCommitWait(uint64_t us) { profile.commit_wait_us += us; }

  RetrieveProfile profile;
};

/// Bounded ring of recent slow-request profiles, exposed through STATS.
class SlowQueryRing {
 public:
  static constexpr size_t kSlowRingCapacity = 32;

  static SlowQueryRing& Global();

  /// Requests at or above this total latency are captured; 0 disarms the
  /// ring (and ObjService stops installing collectors for it).
  void set_threshold_us(uint64_t us) {
    threshold_us_.store(us, std::memory_order_relaxed);
  }
  uint64_t threshold_us() const {
    return threshold_us_.load(std::memory_order_relaxed);
  }
  bool armed() const { return threshold_us() != 0; }

  /// Captures `p` if the ring is armed and p.total_us clears the bar.
  void MaybeRecord(const RetrieveProfile& p);

  /// JSON array of captured profiles, oldest first.
  std::string ToJson() const;

  size_t size() const;
  uint64_t captured() const {
    return captured_.load(std::memory_order_relaxed);
  }
  void Clear();

 private:
  std::atomic<uint64_t> threshold_us_{0};
  std::atomic<uint64_t> captured_{0};  // total ever captured (ring drops old)
  mutable std::mutex mu_;
  std::deque<std::string> entries_;  // pre-serialized profiles
};

}  // namespace objrep

#endif  // OBJREP_OBS_PROFILE_H_
