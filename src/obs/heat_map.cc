#include "obs/heat_map.h"

#include <algorithm>
#include <cstdio>

#include "obs/trace.h"

namespace objrep {

HeatMap& HeatMap::Global() {
  static HeatMap* h = new HeatMap();
  return *h;
}

HeatMap::HeatMap() {
  for (Shard& s : shards_) {
    s.parents.reset(new std::atomic<uint64_t>[kParentSlots]);
    s.rels.reset(new std::atomic<uint64_t>[kRelSlots]);
    for (size_t i = 0; i < kParentSlots; ++i) {
      s.parents[i].store(0, std::memory_order_relaxed);
    }
    for (size_t i = 0; i < kRelSlots; ++i) {
      s.rels[i].store(0, std::memory_order_relaxed);
    }
  }
  parent_consumed_.reset(new uint64_t[kParentSlots]());
  parent_ewma_.reset(new double[kParentSlots]());
}

size_t HeatMap::ThreadShard() const {
  // Round-robin shard assignment at first touch per thread: spreads
  // concurrent writers without hashing, stable for the thread's life.
  static std::atomic<size_t> next{0};
  thread_local size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kHeatShards;
  return shard;
}

void HeatMap::TouchParents(uint64_t lo, uint64_t n) {
  if (!enabled() || n == 0) return;
  Shard& s = shards_[ThreadShard()];
  const uint64_t stride = n <= kMaxTouchesPerCall
                              ? 1
                              : (n + kMaxTouchesPerCall - 1) /
                                    kMaxTouchesPerCall;
  for (uint64_t p = lo; p < lo + n; p += stride) {
    const uint64_t weight = std::min(stride, lo + n - p);
    s.parents[p % kParentSlots].fetch_add(weight,
                                          std::memory_order_relaxed);
  }
  touches_.fetch_add(n, std::memory_order_relaxed);
}

void HeatMap::TouchRel(uint32_t rel, uint64_t n) {
  if (!enabled() || n == 0) return;
  shards_[ThreadShard()].rels[rel % kRelSlots].fetch_add(
      n, std::memory_order_relaxed);
}

uint64_t HeatMap::SumParentSlot(size_t slot) const {
  uint64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.parents[slot].load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t HeatMap::SumRelSlot(size_t slot) const {
  uint64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.rels[slot].load(std::memory_order_relaxed);
  }
  return total;
}

double HeatMap::ParentHeatLocked(size_t slot) const {
  return parent_ewma_[slot] +
         static_cast<double>(SumParentSlot(slot) - parent_consumed_[slot]);
}

double HeatMap::RelHeatLocked(size_t slot) const {
  return rel_ewma_[slot] +
         static_cast<double>(SumRelSlot(slot) - rel_consumed_[slot]);
}

void HeatMap::Decay(double alpha) {
  std::lock_guard<std::mutex> guard(mu_);
  for (size_t i = 0; i < kParentSlots; ++i) {
    const uint64_t total = SumParentSlot(i);
    const uint64_t delta = total - parent_consumed_[i];
    if (delta == 0 && parent_ewma_[i] == 0.0) continue;
    parent_consumed_[i] = total;
    parent_ewma_[i] = parent_ewma_[i] * alpha + static_cast<double>(delta);
    if (parent_ewma_[i] < 1e-6) parent_ewma_[i] = 0.0;
  }
  for (size_t i = 0; i < kRelSlots; ++i) {
    const uint64_t total = SumRelSlot(i);
    const uint64_t delta = total - rel_consumed_[i];
    rel_consumed_[i] = total;
    rel_ewma_[i] = rel_ewma_[i] * alpha + static_cast<double>(delta);
    if (rel_ewma_[i] < 1e-6) rel_ewma_[i] = 0.0;
  }
  last_decay_us_ = Trace::NowMicros();
  decays_.fetch_add(1, std::memory_order_relaxed);
}

void HeatMap::MaybeDecay(double alpha) {
  {
    std::lock_guard<std::mutex> guard(mu_);
    if (Trace::NowMicros() - last_decay_us_ < kDecayIntervalUs) return;
  }
  Decay(alpha);
}

std::vector<HeatMap::ParentHeat> HeatMap::TopParents(size_t k) const {
  std::vector<ParentHeat> out;
  std::lock_guard<std::mutex> guard(mu_);
  for (size_t i = 0; i < kParentSlots; ++i) {
    const double heat = ParentHeatLocked(i);
    if (heat > 0.0) out.push_back(ParentHeat{i, heat});
  }
  std::sort(out.begin(), out.end(),
            [](const ParentHeat& a, const ParentHeat& b) {
              if (a.heat != b.heat) return a.heat > b.heat;
              return a.parent < b.parent;
            });
  if (out.size() > k) out.resize(k);
  return out;
}

std::vector<HeatMap::RelHeat> HeatMap::RelHeats() const {
  std::vector<RelHeat> out;
  std::lock_guard<std::mutex> guard(mu_);
  for (size_t i = 0; i < kRelSlots; ++i) {
    const double heat = RelHeatLocked(i);
    if (heat > 0.0) out.push_back(RelHeat{static_cast<uint32_t>(i), heat});
  }
  std::sort(out.begin(), out.end(), [](const RelHeat& a, const RelHeat& b) {
    if (a.heat != b.heat) return a.heat > b.heat;
    return a.rel < b.rel;
  });
  return out;
}

std::string HeatMap::ToJson(size_t top_k) const {
  char num[64];
  std::string out = "{\"enabled\":";
  out += enabled() ? "true" : "false";
  std::snprintf(num, sizeof(num), ",\"touches\":%llu,\"decays\":%llu",
                static_cast<unsigned long long>(touches()),
                static_cast<unsigned long long>(decays()));
  out += num;
  out += ",\"top_parents\":[";
  bool first = true;
  for (const ParentHeat& p : TopParents(top_k)) {
    if (!first) out += ",";
    first = false;
    std::snprintf(num, sizeof(num), "{\"parent\":%llu,\"heat\":%.3f}",
                  static_cast<unsigned long long>(p.parent), p.heat);
    out += num;
  }
  out += "],\"rels\":[";
  first = true;
  for (const RelHeat& r : RelHeats()) {
    if (!first) out += ",";
    first = false;
    std::snprintf(num, sizeof(num), "{\"rel\":%u,\"heat\":%.3f}", r.rel,
                  r.heat);
    out += num;
  }
  out += "]}";
  return out;
}

void HeatMap::Reset() {
  std::lock_guard<std::mutex> guard(mu_);
  for (Shard& s : shards_) {
    for (size_t i = 0; i < kParentSlots; ++i) {
      s.parents[i].store(0, std::memory_order_relaxed);
    }
    for (size_t i = 0; i < kRelSlots; ++i) {
      s.rels[i].store(0, std::memory_order_relaxed);
    }
  }
  for (size_t i = 0; i < kParentSlots; ++i) {
    parent_consumed_[i] = 0;
    parent_ewma_[i] = 0.0;
  }
  for (size_t i = 0; i < kRelSlots; ++i) {
    rel_consumed_[i] = 0;
    rel_ewma_[i] = 0.0;
  }
  touches_.store(0, std::memory_order_relaxed);
  decays_.store(0, std::memory_order_relaxed);
  last_decay_us_ = 0;
}

}  // namespace objrep
