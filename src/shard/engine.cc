#include "shard/engine.h"

#include <algorithm>
#include <string>
#include <utility>

#include "exec/query_locks.h"
#include "mvcc/apply.h"
#include "mvcc/engine.h"
#include "obs/io_context.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace objrep {
namespace shard {

ShardedEngine::ShardedEngine(ShardedDatabase* db, StrategyOptions options)
    : db_(db), options_(options) {
  const uint32_t n = db_->num_shards();
  locks_.reserve(n);
  retrieve_subqueries_.reserve(n);
  update_subqueries_.reserve(n);
  MetricsRegistry& reg = MetricsRegistry::Global();
  for (uint32_t k = 0; k < n; ++k) {
    locks_.push_back(std::make_unique<LockManager>());
    std::string prefix = "shard." + std::to_string(k) + ".";
    retrieve_subqueries_.push_back(
        reg.GetCounter(prefix + "retrieve_subqueries"));
    update_subqueries_.push_back(reg.GetCounter(prefix + "update_subqueries"));
  }
}

ShardedEngine::Lease::~Lease() {
  if (engine_ != nullptr && session_ != nullptr) {
    engine_->Return(kind_, std::move(session_));
  }
}

Status ShardedEngine::Checkout(StrategyKind kind, Lease* out) {
  std::unique_ptr<Session> session;
  {
    std::lock_guard<std::mutex> guard(sessions_mu_);
    std::vector<std::unique_ptr<Session>>& pool = idle_[kind];
    if (!pool.empty()) {
      session = std::move(pool.back());
      pool.pop_back();
    }
  }
  if (session == nullptr) {
    // Built outside the mutex: MakeStrategy may allocate per-strategy
    // state (temp budgets, adaptive stats) and must not serialize peers.
    session = std::make_unique<Session>();
    session->per_shard.resize(db_->num_shards());
    for (uint32_t k = 0; k < db_->num_shards(); ++k) {
      OBJREP_RETURN_NOT_OK(MakeStrategy(kind, db_->shards[k].get(), options_,
                                        &session->per_shard[k]));
    }
  }
  *out = Lease(this, kind, std::move(session));
  return Status::OK();
}

void ShardedEngine::Return(StrategyKind kind,
                           std::unique_ptr<Session> session) {
  std::lock_guard<std::mutex> guard(sessions_mu_);
  idle_[kind].push_back(std::move(session));
}

bool ShardedEngine::IsPointwise(StrategyKind kind, const Query& q) const {
  switch (kind) {
    case StrategyKind::kDfs:
    case StrategyKind::kDfsCache:
    case StrategyKind::kDfsClust:
    case StrategyKind::kDfsClustCache:
      return true;
    case StrategyKind::kSmart:
      // At or below the threshold SMART is DFSCACHE; above it the
      // breadth-first pass fans out instead.
      return q.num_top <= options_.smart_threshold;
    default:
      return false;
  }
}

bool ShardedEngine::IsSortedMerge(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kBfs:
    case StrategyKind::kBfsNoDup:
    case StrategyKind::kBfsJoinIndex:
    case StrategyKind::kBfsHash:
      return true;
    default:
      return false;
  }
}

Status ShardedEngine::RunShardRetrieve(Session* session, uint32_t k,
                                       const Query& q, RetrieveResult* out) {
  ComplexDatabase* sdb = db_->shards[k].get();
  retrieve_subqueries_[k]->Add(1);
  // Sub-queries run sequentially on the calling thread, so the
  // thread-local per-tag I/O delta across this bracket is exactly this
  // shard's slice of the request — the profile's per-shard sums add up
  // to the flat counters by construction.
  ProfileCollector* collector = ProfileCollector::Current();
  uint64_t t0 = 0;
  IoTagBreakdown io_before;
  if (collector != nullptr) {
    t0 = Trace::NowMicros();
    io_before = CurrentThreadIoTags();
  }
  TraceSpan span("shard_retrieve", "shard");
  span.SetArg("shard", k);
  if (sdb->mvcc != nullptr) {
    // Snapshot per shard sub-query: the shard's base pages are frozen
    // while MVCC is active, so no lock manager interaction is needed.
    OBJREP_RETURN_NOT_OK(
        mvcc::SnapshotRetrieve(session->per_shard[k].get(), sdb, q, out));
  } else {
    ScopedLockSet locks(locks_[k].get(), LockRequestsFor(*sdb, q));
    OBJREP_RETURN_NOT_OK(session->per_shard[k]->ExecuteRetrieve(q, out));
  }
  if (collector != nullptr) {
    collector->AddShard(k, Trace::NowMicros() - t0,
                        CurrentThreadIoTags() - io_before);
  }
  if (out->values.size() != out->oids.size()) {
    return Status::Corruption("shard result values/oids out of step");
  }
  return Status::OK();
}

Status ShardedEngine::RetrievePointwise(Session* session, const Query& q,
                                        RetrieveResult* out) {
  const uint64_t end = static_cast<uint64_t>(q.lo_parent) + q.num_top;
  uint64_t p = q.lo_parent;
  while (p < end) {
    const uint32_t k = db_->router.ShardOfParent(static_cast<uint32_t>(p));
    uint64_t run_end = p + 1;
    while (run_end < end &&
           db_->router.ShardOfParent(static_cast<uint32_t>(run_end)) == k) {
      ++run_end;
    }
    Query sub = q;
    sub.lo_parent = static_cast<uint32_t>(p);
    sub.num_top = static_cast<uint32_t>(run_end - p);
    RetrieveResult part;
    OBJREP_RETURN_NOT_OK(RunShardRetrieve(session, k, sub, &part));
    out->values.insert(out->values.end(), part.values.begin(),
                       part.values.end());
    out->oids.insert(out->oids.end(), part.oids.begin(), part.oids.end());
    out->cost += part.cost;
    p = run_end;
  }
  return Status::OK();
}

Status ShardedEngine::RetrieveMerge(Session* session, const Query& q,
                                    bool dedup, RetrieveResult* out) {
  const uint32_t n = db_->num_shards();
  std::vector<RetrieveResult> parts(n);
  for (uint32_t k = 0; k < n; ++k) {
    OBJREP_RETURN_NOT_OK(RunShardRetrieve(session, k, q, &parts[k]));
    out->cost += parts[k].cost;
  }
  // K-way merge by packed OID. Every per-shard BFS-family stream is
  // (relation, key)-sorted, so the merged stream reproduces the single
  // engine's order; equal OIDs carry equal values, so ties need no
  // tie-break. With dedup (BFSNODUP) each shard already deduplicated
  // locally and duplicates across shards emerge adjacent here.
  std::vector<size_t> idx(n, 0);
  for (;;) {
    int best = -1;
    uint64_t best_key = 0;
    for (uint32_t k = 0; k < n; ++k) {
      if (idx[k] >= parts[k].oids.size()) continue;
      uint64_t packed = parts[k].oids[idx[k]].Packed();
      if (best < 0 || packed < best_key) {
        best = static_cast<int>(k);
        best_key = packed;
      }
    }
    if (best < 0) break;
    if (dedup && !out->oids.empty() &&
        out->oids.back().Packed() == best_key) {
      ++idx[best];
      continue;
    }
    out->values.push_back(parts[best].values[idx[best]]);
    out->oids.push_back(parts[best].oids[idx[best]]);
    ++idx[best];
  }
  return Status::OK();
}

Status ShardedEngine::RetrieveConcat(Session* session, const Query& q,
                                     RetrieveResult* out) {
  for (uint32_t k = 0; k < db_->num_shards(); ++k) {
    RetrieveResult part;
    OBJREP_RETURN_NOT_OK(RunShardRetrieve(session, k, q, &part));
    out->values.insert(out->values.end(), part.values.begin(),
                       part.values.end());
    out->oids.insert(out->oids.end(), part.oids.begin(), part.oids.end());
    out->cost += part.cost;
  }
  return Status::OK();
}

Status ShardedEngine::ExecuteRetrieve(StrategyKind kind, const Query& q,
                                      RetrieveResult* out) {
  Lease lease;
  OBJREP_RETURN_NOT_OK(Checkout(kind, &lease));
  if (IsPointwise(kind, q)) {
    return RetrievePointwise(lease.session(), q, out);
  }
  if (IsSortedMerge(kind)) {
    return RetrieveMerge(lease.session(), q,
                         /*dedup=*/kind == StrategyKind::kBfsNoDup, out);
  }
  return RetrieveConcat(lease.session(), q, out);
}

Status ShardedEngine::ExecuteUpdate(StrategyKind kind, const Query& q) {
  Lease lease;
  OBJREP_RETURN_NOT_OK(Checkout(kind, &lease));
  const uint32_t n = db_->num_shards();
  std::vector<std::vector<Oid>> targets_of(n);
  for (const Oid& oid : q.update_targets) {
    const std::vector<uint32_t>& holders =
        db_->router.HoldersOf(oid.Packed());
    if (holders.empty()) {
      return Status::InvalidArgument("update target unknown to shard router");
    }
    for (uint32_t k : holders) {
      targets_of[k].push_back(oid);
    }
  }
  if (db_->shards[0]->mvcc != nullptr) {
    // Hold the stripes of every target across the whole fan-out, acquired
    // in ascending stripe index so concurrent updates cannot deadlock.
    // This serializes conflicting updates engine-wide, which makes every
    // holder shard install their versions in the same relative order —
    // the replica-convergence guarantee FCW alone cannot give across
    // independent per-shard clocks.
    std::vector<size_t> stripes;
    stripes.reserve(q.update_targets.size());
    for (const Oid& oid : q.update_targets) {
      stripes.push_back(oid.Packed() % oid_stripes_.size());
    }
    std::sort(stripes.begin(), stripes.end());
    stripes.erase(std::unique(stripes.begin(), stripes.end()), stripes.end());
    std::vector<std::unique_lock<std::mutex>> held;
    held.reserve(stripes.size());
    for (size_t s : stripes) {
      held.emplace_back(oid_stripes_[s]);
    }
    for (uint32_t k = 0; k < n; ++k) {
      if (targets_of[k].empty()) continue;
      Query sub = q;
      sub.update_targets = std::move(targets_of[k]);
      update_subqueries_[k]->Add(1);
      OBJREP_RETURN_NOT_OK(mvcc::MvccUpdate(db_->shards[k].get(), sub));
    }
    return Status::OK();
  }
  for (uint32_t k = 0; k < n; ++k) {
    if (targets_of[k].empty()) continue;
    Query sub = q;
    sub.update_targets = std::move(targets_of[k]);
    ComplexDatabase* sdb = db_->shards[k].get();
    ScopedLockSet locks(locks_[k].get(), LockRequestsFor(*sdb, sub));
    update_subqueries_[k]->Add(1);
    const bool txn = sdb->pool->wal() != nullptr;
    if (txn) {
      OBJREP_RETURN_NOT_OK(sdb->pool->BeginTxn());
    }
    Status st = lease.session()->per_shard[k]->ExecuteUpdate(sub);
    if (txn) {
      if (st.ok()) {
        st = sdb->pool->CommitTxn();
      } else {
        sdb->pool->AbortTxn();
      }
    }
    OBJREP_RETURN_NOT_OK(st);
  }
  return Status::OK();
}

Status ShardedEngine::FoldAll() {
  for (uint32_t k = 0; k < db_->num_shards(); ++k) {
    ComplexDatabase* sdb = db_->shards[k].get();
    if (sdb->mvcc != nullptr) {
      OBJREP_RETURN_NOT_OK(mvcc::FoldMvcc(sdb));
    }
  }
  return Status::OK();
}

}  // namespace shard
}  // namespace objrep
