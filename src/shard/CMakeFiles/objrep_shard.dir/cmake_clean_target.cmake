file(REMOVE_RECURSE
  "libobjrep_shard.a"
)
