# Empty dependencies file for objrep_shard.
# This may be replaced when dependencies are built.
