file(REMOVE_RECURSE
  "CMakeFiles/objrep_shard.dir/engine.cc.o"
  "CMakeFiles/objrep_shard.dir/engine.cc.o.d"
  "CMakeFiles/objrep_shard.dir/router.cc.o"
  "CMakeFiles/objrep_shard.dir/router.cc.o.d"
  "CMakeFiles/objrep_shard.dir/sharded_db.cc.o"
  "CMakeFiles/objrep_shard.dir/sharded_db.cc.o.d"
  "libobjrep_shard.a"
  "libobjrep_shard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/objrep_shard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
