#include "shard/sharded_db.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "objstore/rows.h"
#include "util/macros.h"

namespace objrep {
namespace shard {

namespace {

/// Child-relation index (0..num_child_rels) of a catalog relation id.
/// Registration order is fixed, so this is the same on every shard.
Status ChildIndexOf(const ComplexDatabase& ref, RelationId rel_id,
                    size_t* out) {
  for (size_t r = 0; r < ref.child_rels.size(); ++r) {
    if (ref.child_rels[r]->rel_id() == rel_id) {
      *out = r;
      return Status::OK();
    }
  }
  return Status::Corruption("child OID references unknown relation");
}

/// Builds one shard: the subset of the reference database owned by
/// `local` (ascending parent keys), plus the orphan children parked here.
Status BuildOneShard(const ComplexDatabase& ref,
                     const std::vector<uint32_t>& local,
                     const std::vector<uint64_t>& local_orphans,
                     std::unique_ptr<ComplexDatabase>* out) {
  const DatabaseSpec& spec = ref.spec;
  auto db = std::make_unique<ComplexDatabase>();
  db->spec = spec;
  db->disk = std::make_unique<DiskManager>();
  db->pool = std::make_unique<BufferPool>(db->disk.get(), spec.buffer_pages);
  db->parent_dummy_width = ref.parent_dummy_width;
  db->child_dummy_width = ref.child_dummy_width;

  // Catalog registration mirrors BuildDatabase exactly: relation ids are
  // assigned by registration order, and they must match the reference so
  // packed OIDs mean the same thing on every shard.
  db->parent_rel = db->catalog.Register(
      "ParentRel", MakeParentSchema(db->parent_dummy_width));
  for (uint32_t r = 0; r < spec.num_child_rels; ++r) {
    std::string name = spec.num_child_rels == 1
                           ? std::string("ChildRel")
                           : "ChildRel" + std::to_string(r);
    db->child_rels.push_back(db->catalog.Register(
        std::move(name), MakeChildSchema(db->child_dummy_width)));
  }
  if (spec.build_cluster) {
    db->cluster_rel = db->catalog.Register(
        "ClusterRel", MakeClusterSchema(std::max(db->parent_dummy_width,
                                                 db->child_dummy_width)));
  }

  // --- Local working set: units my parents use, children those units
  //     reference, plus the orphans parked here. ---
  std::vector<uint32_t> used_units;
  for (uint32_t p : local) {
    used_units.push_back(ref.unit_of_parent[p]);
  }
  std::sort(used_units.begin(), used_units.end());
  used_units.erase(std::unique(used_units.begin(), used_units.end()),
                   used_units.end());

  std::unordered_set<uint64_t> local_children;
  for (uint32_t u : used_units) {
    for (const Oid& oid : ref.units[u]) {
      local_children.insert(oid.Packed());
    }
  }
  for (uint64_t packed : local_orphans) {
    local_children.insert(packed);
  }

  // --- Bulk load ParentRel from the reference rows. ---
  {
    std::vector<std::pair<uint64_t, std::vector<Value>>> rows;
    rows.reserve(local.size());
    for (uint32_t p : local) {
      std::vector<Value> vals;
      OBJREP_RETURN_NOT_OK(ref.parent_rel->Get(p, &vals));
      rows.emplace_back(p, std::move(vals));
    }
    OBJREP_RETURN_NOT_OK(
        db->parent_rel->BulkLoad(db->pool.get(), rows, spec.fill_factor));
  }

  // --- Bulk load each ChildRel: the local keys, ascending. ---
  const uint32_t children_per_rel =
      spec.num_children_total() / spec.num_child_rels;
  for (uint32_t r = 0; r < spec.num_child_rels; ++r) {
    RelationId rel_id = db->child_rels[r]->rel_id();
    std::vector<std::pair<uint64_t, std::vector<Value>>> rows;
    for (uint32_t k = 0; k < children_per_rel; ++k) {
      if (local_children.count(Oid{rel_id, k}.Packed()) == 0) continue;
      rows.emplace_back(
          k, ChildRowValues(ref.child_rows[r][k], db->child_dummy_width));
    }
    OBJREP_RETURN_NOT_OK(
        db->child_rels[r]->BulkLoad(db->pool.get(), rows, spec.fill_factor));
  }

  // --- ClusterRel: claim locally. The reference's random claim order
  //     interleaves all parents; a shard only sees its own, so it claims
  //     deterministically (units ascending) and keeps the reference owner
  //     when that owner is local, else the smallest local user. Physical
  //     placement differs from the reference — placement is an I/O cost
  //     concern, not a correctness one — but each local parent's cluster
  //     record carries the same unit list, and the local ISAM index covers
  //     every local child, so DFSCLUST answers are identical. ---
  if (spec.build_cluster) {
    std::unordered_map<uint32_t, std::vector<uint32_t>> users_local;
    for (uint32_t p : local) {  // ascending, so user lists come out sorted
      users_local[ref.unit_of_parent[p]].push_back(p);
    }
    std::unordered_set<uint64_t> placed;
    std::unordered_map<uint32_t, std::vector<Oid>> claimed;
    for (uint32_t u : used_units) {
      uint32_t ref_owner = ref.unit_owner[u];
      const std::vector<uint32_t>& users = users_local[u];
      OBJREP_CHECK(!users.empty());
      bool ref_owner_local =
          std::binary_search(users.begin(), users.end(), ref_owner);
      uint32_t owner = ref_owner_local ? ref_owner : users.front();
      for (const Oid& oid : ref.units[u]) {
        if (placed.insert(oid.Packed()).second) {
          claimed[owner].push_back(oid);
        }
      }
    }

    std::vector<std::pair<uint64_t, std::vector<Value>>> rows;
    std::vector<IsamIndex::Entry> isam_entries;
    for (uint32_t p : local) {
      ParentRow prow;
      prow.oid = Oid{db->parent_rel->rel_id(), p};
      std::vector<Value> parent_vals;
      OBJREP_RETURN_NOT_OK(ref.parent_rel->Get(p, &parent_vals));
      prow.ret1 = parent_vals[kParentRet1].as_int32();
      prow.ret2 = parent_vals[kParentRet2].as_int32();
      prow.ret3 = parent_vals[kParentRet3].as_int32();
      prow.children = ref.units[ref.unit_of_parent[p]];
      rows.emplace_back(ClusterKey(p, 0),
                        ClusterParentValues(prow, db->parent_dummy_width));
      uint32_t seq = 1;
      for (const Oid& oid : claimed[p]) {
        size_t r;
        OBJREP_RETURN_NOT_OK(ChildIndexOf(ref, oid.rel, &r));
        std::vector<Value> cvals = ClusterChildValues(
            ref.child_rows[r][oid.key], db->child_dummy_width);
        cvals[kClusterNo] = Value(static_cast<int64_t>(p));
        uint64_t key = ClusterKey(p, seq++);
        isam_entries.push_back(IsamIndex::Entry{oid.Packed(), key});
        rows.emplace_back(key, std::move(cvals));
      }
    }

    // Local children claimed by no local cluster (the orphans parked on
    // this shard): trailing clusters past the last parent, exactly like
    // the reference build, so no retrieve scan range ever reaches them.
    uint64_t orphan_cluster = spec.num_parents;
    uint32_t orphan_seq = 0;
    for (uint32_t r = 0; r < spec.num_child_rels; ++r) {
      RelationId rel_id = db->child_rels[r]->rel_id();
      for (uint32_t k = 0; k < children_per_rel; ++k) {
        uint64_t packed = Oid{rel_id, k}.Packed();
        if (local_children.count(packed) == 0) continue;
        if (placed.find(packed) != placed.end()) continue;
        if (orphan_seq == spec.size_unit) {
          ++orphan_cluster;
          orphan_seq = 0;
        }
        std::vector<Value> cvals = ClusterChildValues(
            ref.child_rows[r][k], db->child_dummy_width);
        cvals[kClusterNo] = Value(static_cast<int64_t>(orphan_cluster));
        uint64_t key = ClusterKey(orphan_cluster, orphan_seq++);
        isam_entries.push_back(IsamIndex::Entry{packed, key});
        rows.emplace_back(key, std::move(cvals));
      }
    }

    OBJREP_RETURN_NOT_OK(
        db->cluster_rel->BulkLoad(db->pool.get(), rows, spec.fill_factor));
    std::sort(isam_entries.begin(), isam_entries.end(),
              [](const IsamIndex::Entry& a, const IsamIndex::Entry& b) {
                return a.key < b.key;
              });
    OBJREP_RETURN_NOT_OK(IsamIndex::Build(db->pool.get(), isam_entries,
                                          &db->cluster_oid_index,
                                          spec.cluster_index_entry_bytes));
  }

  if (spec.build_join_index) {
    std::vector<BPlusTree::Entry> entries;
    for (uint32_t p : local) {
      const std::vector<Oid>& unit = ref.units[ref.unit_of_parent[p]];
      for (uint32_t j = 0; j < unit.size(); ++j) {
        uint64_t packed = unit[j].Packed();
        entries.push_back(BPlusTree::Entry{
            (static_cast<uint64_t>(p) << 12) | j,
            std::string(reinterpret_cast<const char*>(&packed), 8)});
      }
    }
    OBJREP_RETURN_NOT_OK(BPlusTree::BulkLoad(db->pool.get(), entries,
                                             spec.fill_factor,
                                             &db->join_index));
    db->has_join_index = true;
  }

  if (spec.build_cache) {
    db->cache = std::make_unique<CacheManager>(
        db->pool.get(), spec.size_cache, spec.cache_buckets,
        spec.cache_admission);
    OBJREP_RETURN_NOT_OK(db->cache->Init());
  }

  if (spec.enable_wal) {
    db->wal = std::make_unique<Wal>(db->disk.get());
    db->pool->AttachWal(db->wal.get());
  }
  if (spec.enable_mvcc) {
    // Per-shard version store and clock — snapshots are per-shard, like
    // the WAL transactions above (no cross-shard 2PC; see engine.h).
    db->mvcc = std::make_unique<MvccManager>(db->wal.get());
  }

  db->disk->set_io_latency_us(spec.io_latency_us);
  db->disk->set_transfer_us(spec.io_transfer_us);
  db->pool->SetPrefetchOptions(PrefetchOptions{
      spec.prefetch, spec.readahead_pages, spec.prefetch_workers});

  OBJREP_RETURN_NOT_OK(db->pool->FlushAll());
  db->disk->ResetCounters();
  *out = std::move(db);
  return Status::OK();
}

}  // namespace

Status BuildShardedDatabase(const DatabaseSpec& spec, uint32_t num_shards,
                            std::unique_ptr<ShardedDatabase>* out) {
  if (num_shards == 0) {
    return Status::InvalidArgument("num_shards must be positive");
  }
  auto sdb = std::make_unique<ShardedDatabase>();
  sdb->spec = spec;
  sdb->router = ShardRouter(num_shards);
  OBJREP_RETURN_NOT_OK(BuildDatabase(spec, &sdb->reference));
  const ComplexDatabase& ref = *sdb->reference;

  sdb->local_parents.resize(num_shards);
  for (uint32_t p = 0; p < spec.num_parents; ++p) {
    sdb->local_parents[sdb->router.ShardOfParent(p)].push_back(p);
  }

  // Children referenced by no unit (possible when OverlapFactor > 1) park
  // on a hash-chosen shard so every child row lives somewhere.
  std::unordered_set<uint64_t> in_some_unit;
  for (const std::vector<Oid>& unit : ref.units) {
    for (const Oid& oid : unit) {
      in_some_unit.insert(oid.Packed());
    }
  }
  std::vector<std::vector<uint64_t>> orphans_of(num_shards);
  for (const std::vector<ChildRow>& rows : ref.child_rows) {
    for (const ChildRow& row : rows) {
      uint64_t packed = row.oid.Packed();
      if (in_some_unit.find(packed) == in_some_unit.end()) {
        orphans_of[sdb->router.OrphanShardOf(packed)].push_back(packed);
      }
    }
  }

  sdb->shards.resize(num_shards);
  for (uint32_t k = 0; k < num_shards; ++k) {
    OBJREP_RETURN_NOT_OK(BuildOneShard(ref, sdb->local_parents[k],
                                       orphans_of[k], &sdb->shards[k]));
  }

  // Holder sets: shard k holds every child it replicated. Updates fan out
  // to all holders (DESIGN.md §14 invalidation protocol).
  for (uint32_t k = 0; k < num_shards; ++k) {
    for (uint32_t p : sdb->local_parents[k]) {
      for (const Oid& oid : ref.units[ref.unit_of_parent[p]]) {
        sdb->router.AddHolder(oid.Packed(), k);
      }
    }
    for (uint64_t packed : orphans_of[k]) {
      sdb->router.AddHolder(packed, k);
    }
  }
  *out = std::move(sdb);
  return Status::OK();
}

}  // namespace shard
}  // namespace objrep
