#include "shard/router.h"

#include <algorithm>

namespace objrep {
namespace shard {

void ShardRouter::AddHolder(uint64_t packed_oid, uint32_t shard) {
  std::vector<uint32_t>& holders = holders_[packed_oid];
  auto it = std::lower_bound(holders.begin(), holders.end(), shard);
  if (it == holders.end() || *it != shard) {
    holders.insert(it, shard);
  }
}

const std::vector<uint32_t>& ShardRouter::HoldersOf(
    uint64_t packed_oid) const {
  auto it = holders_.find(packed_oid);
  return it == holders_.end() ? no_holders_ : it->second;
}

}  // namespace shard
}  // namespace objrep
