// Horizontal sharding of one logical ComplexDatabase (DESIGN.md §14).
//
// A ShardedDatabase carves the logical database of `spec` into N fully
// independent engine instances. Each shard owns its own simulated disk,
// buffer pool, cache, WAL, and relations; no page, frame, or latch is
// shared between shards. Partitioning:
//
//   * ParentRel rows are hash-partitioned by parent key (ShardRouter).
//   * A shard replicates every child row referenced by a unit one of its
//     local parents uses, so retrieves never cross shards. Children in no
//     unit park on a hash-chosen shard.
//   * ClusterRel, the ISAM index, the join index, and the cache are built
//     per shard over the local rows only, in the same catalog registration
//     order as the reference build — relation ids (and therefore packed
//     OIDs) are identical on every shard and in the single-engine build.
//
// The build first runs the ordinary single-engine BuildDatabase and then
// distributes its actual rows. It never re-runs row generation, so the
// logical content is bit-identical to the unsharded database for the same
// spec — the property the differential oracle in tests/ checks.
#ifndef OBJREP_SHARD_SHARDED_DB_H_
#define OBJREP_SHARD_SHARDED_DB_H_

#include <memory>
#include <vector>

#include "objstore/database.h"
#include "shard/router.h"

namespace objrep {
namespace shard {

struct ShardedDatabase {
  DatabaseSpec spec;  ///< the logical (global) spec
  ShardRouter router{1};
  std::vector<std::unique_ptr<ComplexDatabase>> shards;
  /// Parent keys local to each shard, ascending.
  std::vector<std::vector<uint32_t>> local_parents;
  /// The single-engine build the shards were carved from. Kept for its
  /// generation ground truth (tests); the engine never touches it.
  /// Callers may reset() it to reclaim memory.
  std::unique_ptr<ComplexDatabase> reference;

  uint32_t num_shards() const {
    return static_cast<uint32_t>(shards.size());
  }
};

/// Builds the reference database for `spec`, then distributes its rows
/// across `num_shards` independent engines. Deterministic in `spec.seed`.
/// Each shard returns flushed with zeroed I/O counters, like BuildDatabase.
Status BuildShardedDatabase(const DatabaseSpec& spec, uint32_t num_shards,
                            std::unique_ptr<ShardedDatabase>* out);

}  // namespace shard
}  // namespace objrep

#endif  // OBJREP_SHARD_SHARDED_DB_H_
