// Shard routing (DESIGN.md §14).
//
// Parents are hash-partitioned: shard(p) = FNV-1a64(p) mod N. Children
// follow their users — a child row is replicated onto every shard that
// hosts a parent using a unit containing it, so each shard can answer
// retrieves for its local parents without cross-shard probes. The router
// records that placement as the *holder set* of each child OID; updates
// fan out to every holder, which is what keeps the replicas (and each
// shard's cache, via the per-shard I-lock path) coherent.
#ifndef OBJREP_SHARD_ROUTER_H_
#define OBJREP_SHARD_ROUTER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "objstore/oid.h"
#include "util/hash.h"

namespace objrep {
namespace shard {

class ShardRouter {
 public:
  explicit ShardRouter(uint32_t num_shards) : num_shards_(num_shards) {}

  uint32_t num_shards() const { return num_shards_; }

  /// Owning shard of a parent key. Pure function of (key, N) so every
  /// client and every layer computes the same answer.
  uint32_t ShardOfParent(uint32_t parent_key) const {
    return static_cast<uint32_t>(Fnv1a64(&parent_key, sizeof(parent_key)) %
                                 num_shards_);
  }

  /// Shard that parks a child referenced by no unit (an orphan — it must
  /// still live somewhere so updates have a target).
  uint32_t OrphanShardOf(uint64_t packed_oid) const {
    return static_cast<uint32_t>(Fnv1a64(&packed_oid, sizeof(packed_oid)) %
                                 num_shards_);
  }

  /// Records that `shard` holds a replica of the child OID. Idempotent;
  /// the holder list stays sorted and unique.
  void AddHolder(uint64_t packed_oid, uint32_t shard);

  /// Shards holding a replica of the child OID (sorted). Empty only for
  /// OIDs the build never saw.
  const std::vector<uint32_t>& HoldersOf(uint64_t packed_oid) const;

 private:
  uint32_t num_shards_;
  std::unordered_map<uint64_t, std::vector<uint32_t>> holders_;
  std::vector<uint32_t> no_holders_;
};

}  // namespace shard
}  // namespace objrep

#endif  // OBJREP_SHARD_ROUTER_H_
