// Scatter-gather execution over a ShardedDatabase (DESIGN.md §14).
//
// One ShardedEngine fronts N independent engine instances with the same
// Query interface the single-engine strategies expose. Routing by family:
//
//   * DFS family (DFS, DFSCACHE, DFSCLUST, DFSCLUST+CACHE, and SMART at or
//     below its threshold) — point-wise: the parent range is split into
//     runs of consecutive keys owned by the same shard and each run
//     executes on its owner. Output order is parent-ascending, identical
//     to the single engine.
//   * BFS family (BFS, BFSNODUP, BFS-JI, BFS-HASH) — scatter-gather: the
//     query fans out to every shard (each scans only its local parents in
//     range) and the per-shard OID-sorted streams are K-way merged by
//     packed OID, reproducing the single engine's sorted output. BFSNODUP
//     additionally drops cross-shard duplicates during the merge.
//   * SMART above threshold and ADAPTIVE — fan out and concatenate; their
//     output order is cache-state-dependent even on one engine, so only
//     the result multiset is defined.
//
// Each shard has its own LockManager (the scale-out lever: an update
// X-locks only its holder shards, not the whole store), its own adaptive
// planner state (per-session, per-shard AdaptiveStrategy instances with
// independent DynamicStats and calibration residuals), and its own cache.
// Updates fan out to every holder shard of each target; each holder's
// update path runs its local I-lock invalidation, which is what keeps all
// shard caches coherent — the cross-shard invalidation protocol is
// "replicas apply the same update", with no extra message type.
//
// Crash scope: per-shard WAL transactions, no two-phase commit. A crash
// mid-fanout leaves some holders updated and others not; because updates
// write absolute values, recovering the crashed shard and replaying the
// failed query converges every replica (tests/shard_oracle_test.cc).
//
// MVCC mode (spec.enable_mvcc, DESIGN.md §15): each shard owns its own
// version store and clock. Retrieves take a snapshot per shard sub-query
// and skip the shard lock manager entirely — a cross-shard retrieve is
// per-shard consistent, not globally consistent, matching the crash scope
// above (per-shard transactions, no 2PC). Updates hold striped per-OID
// mutexes across the whole holder fan-out so two conflicting updates
// commit in the same relative order on every replica shard; within a
// shard first-committer-wins still applies.
#ifndef OBJREP_SHARD_ENGINE_H_
#define OBJREP_SHARD_ENGINE_H_

#include <array>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "core/strategy.h"
#include "exec/lock_manager.h"
#include "objstore/workload.h"
#include "shard/sharded_db.h"

namespace objrep {

class Counter;

namespace shard {

class ShardedEngine {
 public:
  /// `db` must outlive the engine. Strategy sessions are created lazily
  /// per kind and pooled, like ObjService's session leases.
  ShardedEngine(ShardedDatabase* db, StrategyOptions options);

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  /// Appends values/oids to `out` (parallel vectors) and accumulates the
  /// summed per-shard cost, exactly like Strategy::ExecuteRetrieve.
  Status ExecuteRetrieve(StrategyKind kind, const Query& q,
                         RetrieveResult* out);

  /// Fans the update out to every holder shard of each target, each under
  /// its shard's X locks and WAL transaction (2PL mode) or through the
  /// shard's version store under engine-level per-OID stripes (MVCC mode).
  Status ExecuteUpdate(StrategyKind kind, const Query& q);

  /// MVCC quiescent-point fold on every shard (no-op without MVCC).
  /// Callers must ensure no retrieve/update is in flight.
  Status FoldAll();

  ShardedDatabase* db() { return db_; }
  const DatabaseSpec& spec() const { return db_->spec; }
  const StrategyOptions& options() const { return options_; }
  uint32_t num_shards() const { return db_->num_shards(); }
  LockManager* lock_manager(uint32_t k) { return locks_[k].get(); }

 private:
  /// One checked-out execution context: a strategy instance per shard.
  struct Session {
    std::vector<std::unique_ptr<Strategy>> per_shard;
  };

  class Lease {
   public:
    Lease() = default;
    Lease(ShardedEngine* engine, StrategyKind kind,
          std::unique_ptr<Session> session)
        : engine_(engine), kind_(kind), session_(std::move(session)) {}
    Lease(Lease&&) = default;
    Lease& operator=(Lease&&) = default;
    ~Lease();
    Session* session() { return session_.get(); }

   private:
    ShardedEngine* engine_ = nullptr;
    StrategyKind kind_ = StrategyKind::kDfs;
    std::unique_ptr<Session> session_;
  };

  Status Checkout(StrategyKind kind, Lease* out);
  void Return(StrategyKind kind, std::unique_ptr<Session> session);

  bool IsPointwise(StrategyKind kind, const Query& q) const;
  static bool IsSortedMerge(StrategyKind kind);

  /// Runs the sub-query on shard `k` under its lock set.
  Status RunShardRetrieve(Session* session, uint32_t k, const Query& q,
                          RetrieveResult* out);

  Status RetrievePointwise(Session* session, const Query& q,
                           RetrieveResult* out);
  Status RetrieveMerge(Session* session, const Query& q, bool dedup,
                       RetrieveResult* out);
  Status RetrieveConcat(Session* session, const Query& q,
                        RetrieveResult* out);

  ShardedDatabase* db_;
  StrategyOptions options_;
  std::vector<std::unique_ptr<LockManager>> locks_;  // one per shard

  /// MVCC update ordering across replicas: an update locks the stripe of
  /// every target OID (ascending stripe index, so no deadlock) before the
  /// holder fan-out and releases after the last holder commits. Two
  /// updates touching a common OID therefore install their versions in
  /// the same order on every holder shard, keeping replicas convergent
  /// without a cross-shard commit protocol.
  std::array<std::mutex, 64> oid_stripes_;

  std::mutex sessions_mu_;
  std::map<StrategyKind, std::vector<std::unique_ptr<Session>>>
      idle_;  // guarded by sessions_mu_

  // Per-shard work attribution ("shard.<k>.*" in the metrics registry).
  std::vector<Counter*> retrieve_subqueries_;
  std::vector<Counter*> update_subqueries_;
};

}  // namespace shard
}  // namespace objrep

#endif  // OBJREP_SHARD_ENGINE_H_
