// Hashing helpers (FNV-1a and mixing) used by the cache manager and the
// hash-file access method.
#ifndef OBJREP_UTIL_HASH_H_
#define OBJREP_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace objrep {

/// 64-bit FNV-1a over a byte range.
inline uint64_t Fnv1a64(const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline uint64_t Fnv1a64(std::string_view s) { return Fnv1a64(s.data(), s.size()); }

/// Finalizer from splitmix64; good avalanche for bucketing integer keys.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Order-independent-free combiner (boost-style, order matters).
inline uint64_t HashCombine(uint64_t seed, uint64_t v) {
  return seed ^ (Mix64(v) + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace objrep

#endif  // OBJREP_UTIL_HASH_H_
