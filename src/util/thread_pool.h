// Fixed-size thread pool with a FIFO task queue and futures.
//
// Two consumers: the execution engine's workers (the ConcurrentRunner
// submits one session closure per worker, and the throughput bench reuses
// one pool across sweep points), and the BufferPool's background prefetch
// workers (DESIGN.md §9). It lives in util — header-only, below every
// layer — so storage can own a pool without depending on exec.
//
// Tasks may block on LockManager locks; they must not submit-and-wait on
// further tasks in the same pool (no work stealing, so that would deadlock
// once all workers wait).
#ifndef OBJREP_UTIL_THREAD_POOL_H_
#define OBJREP_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "util/macros.h"

namespace objrep {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least one).
  explicit ThreadPool(uint32_t num_threads) {
    OBJREP_CHECK(num_threads > 0);
    workers_.reserve(num_threads);
    for (uint32_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  /// Equivalent to Shutdown(): drains the queue (already-submitted tasks
  /// still run), then joins all workers.
  ~ThreadPool() { Shutdown(); }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  uint32_t size() const { return static_cast<uint32_t>(workers_.size()); }

  /// Graceful draining stop (DESIGN.md §13): stops accepting new tasks —
  /// concurrent TrySubmit calls return false from this point on, they are
  /// never silently dropped — runs every already-queued task to
  /// completion, and joins the workers. Idempotent; safe to call while
  /// other threads are still racing TrySubmit against it.
  void Shutdown() {
    // Serialized so a second caller blocks until the first finished
    // joining, rather than returning while workers are still live.
    std::lock_guard<std::mutex> sl(shutdown_mu_);
    {
      std::lock_guard<std::mutex> l(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread& w : workers_) {
      if (w.joinable()) w.join();
    }
  }

  /// Enqueues `fn` unless the pool is shutting down, in which case it
  /// returns false and `fn` is not (and never will be) run — the caller
  /// must reject the work itself (e.g. respond SHUTTING_DOWN). On success
  /// `*out`, when non-null, receives the future for `fn`'s result.
  template <typename Fn, typename R = std::invoke_result_t<Fn>>
  bool TrySubmit(Fn fn, std::future<R>* out = nullptr) {
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    // Queue-wait latency: enqueue-to-dequeue, recorded by the worker. The
    // clock read costs one steady_clock call per task — tasks here are
    // whole query sessions or vectored read batches, never per-page work.
    uint64_t enqueued_us = Trace::NowMicros();
    // The submitter's trace id crosses the pool boundary with the task,
    // so spans recorded by the worker stitch to the submitting request.
    uint64_t trace_id = CurrentTraceId();
    {
      std::lock_guard<std::mutex> l(mu_);
      if (stopping_) return false;
      queue_.emplace_back(
          QueuedTask{[task] { (*task)(); }, enqueued_us, trace_id});
      QueueMetrics().depth->Set(static_cast<int64_t>(queue_.size()));
    }
    cv_.notify_one();
    if (out != nullptr) *out = task->get_future();
    return true;
  }

  /// Enqueues `fn` and returns a future for its result. An exception
  /// thrown by `fn` is captured into the future (the library itself is
  /// exception-free on data paths; this covers test code). The pool must
  /// not be shutting down — callers racing against Shutdown() use
  /// TrySubmit and handle rejection.
  template <typename Fn, typename R = std::invoke_result_t<Fn>>
  std::future<R> Submit(Fn fn) {
    std::future<R> fut;
    OBJREP_CHECK(TrySubmit(std::move(fn), &fut));
    return fut;
  }

 private:
  struct QueuedTask {
    std::function<void()> fn;
    uint64_t enqueued_us = 0;
    uint64_t trace_id = 0;  ///< submitter's request context, re-established
                            ///< around the task's run
  };

  // Registry mirrors (DESIGN.md §11), shared by all pools in the process.
  struct PoolQueueMetrics {
    Gauge* depth = MetricsRegistry::Global().GetGauge("threadpool.queue_depth");
    Histogram* queue_wait_us =
        MetricsRegistry::Global().GetHistogram("threadpool.queue_wait_us");
    Histogram* task_run_us =
        MetricsRegistry::Global().GetHistogram("threadpool.task_run_us");
  };
  static PoolQueueMetrics& QueueMetrics() {
    static PoolQueueMetrics* m = new PoolQueueMetrics();
    return *m;
  }

  void WorkerLoop() {
    for (;;) {
      QueuedTask task;
      {
        std::unique_lock<std::mutex> l(mu_);
        cv_.wait(l, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping_ with nothing left to run
        task = std::move(queue_.front());
        queue_.pop_front();
        QueueMetrics().depth->Set(static_cast<int64_t>(queue_.size()));
      }
      uint64_t start_us = Trace::NowMicros();
      QueueMetrics().queue_wait_us->Record(start_us - task.enqueued_us);
      {
        ScopedTraceId trace_scope(task.trace_id);
        task.fn();
      }
      QueueMetrics().task_run_us->Record(Trace::NowMicros() - start_us);
    }
  }

  std::mutex shutdown_mu_;  // serializes Shutdown callers
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<QueuedTask> queue_;  // guarded by mu_
  bool stopping_ = false;                    // guarded by mu_
  std::vector<std::thread> workers_;
};

}  // namespace objrep

#endif  // OBJREP_UTIL_THREAD_POOL_H_
