// Status / Result error model, in the style of RocksDB and Arrow.
//
// The library does not throw exceptions on data paths. Every fallible
// operation returns a Status (or a Result<T> when it also produces a value).
#ifndef OBJREP_UTIL_STATUS_H_
#define OBJREP_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace objrep {

/// Outcome of a fallible operation.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kNotFound,
    kInvalidArgument,
    kIOError,
    kCorruption,
    kNoSpace,
    kNotSupported,
    kInternal,
    kAborted,
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg = "") {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg = "") {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status NoSpace(std::string msg = "") {
    return Status(Code::kNoSpace, std::move(msg));
  }
  static Status NotSupported(std::string msg = "") {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg = "") {
    return Status(Code::kInternal, std::move(msg));
  }
  /// A transaction lost a first-committer-wins conflict and should retry
  /// from a fresh timestamp (src/mvcc/).
  static Status Aborted(std::string msg = "") {
    return Status(Code::kAborted, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsNoSpace() const { return code_ == Code::kNoSpace; }
  bool IsAborted() const { return code_ == Code::kAborted; }

  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Human-readable rendering, e.g. "NotFound: no such key".
  std::string ToString() const {
    if (ok()) return "OK";
    std::string name;
    switch (code_) {
      case Code::kOk: name = "OK"; break;
      case Code::kNotFound: name = "NotFound"; break;
      case Code::kInvalidArgument: name = "InvalidArgument"; break;
      case Code::kIOError: name = "IOError"; break;
      case Code::kCorruption: name = "Corruption"; break;
      case Code::kNoSpace: name = "NoSpace"; break;
      case Code::kNotSupported: name = "NotSupported"; break;
      case Code::kInternal: name = "Internal"; break;
      case Code::kAborted: name = "Aborted"; break;
    }
    if (msg_.empty()) return name;
    return name + ": " + msg_;
  }

 private:
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  Code code_;
  std::string msg_;
};

/// A value or an error. `ok()` must be checked before `value()`.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}          // NOLINT(runtime/explicit)
  Result(Status status) : v_(std::move(status)) {}   // NOLINT(runtime/explicit)

  bool ok() const { return std::holds_alternative<T>(v_); }
  const T& value() const& { return std::get<T>(v_); }
  T& value() & { return std::get<T>(v_); }
  T&& value() && { return std::get<T>(std::move(v_)); }
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(v_);
  }

 private:
  std::variant<T, Status> v_;
};

/// Propagates a non-OK Status from an expression to the caller.
#define OBJREP_RETURN_NOT_OK(expr)                  \
  do {                                              \
    ::objrep::Status _s = (expr);                   \
    if (!_s.ok()) return _s;                        \
  } while (0)

}  // namespace objrep

#endif  // OBJREP_UTIL_STATUS_H_
