// Deterministic pseudo-random number generation.
//
// Every experiment in the reproduction is seeded, so two runs with the same
// parameters produce identical I/O counts. We use xoshiro256** seeded via
// splitmix64 — fast, well distributed, and entirely self-contained.
#ifndef OBJREP_UTIL_RANDOM_H_
#define OBJREP_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

#include "util/macros.h"

namespace objrep {

/// Deterministic RNG (xoshiro256**).
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // splitmix64 expansion of the seed into the xoshiro state.
    uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) {
    OBJREP_CHECK(n > 0);
    // Lemire's nearly-divisionless bounded sampling.
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    uint64_t lo = static_cast<uint64_t>(m);
    if (lo < n) {
      uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    OBJREP_CHECK(lo <= hi);
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = Uniform(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// k distinct values sampled uniformly from [0, n) (Floyd's algorithm
  /// for small k, shuffle prefix for large k).
  std::vector<uint64_t> SampleDistinct(uint64_t n, uint64_t k);

  /// Advances the state 2^128 steps (the xoshiro256** jump polynomial).
  /// Partitions one seed's sequence into non-overlapping subsequences, so
  /// parallel workers drawing from jumped copies never correlate.
  void Jump() {
    static constexpr uint64_t kJump[4] = {
        0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
        0x39abdc4529b1661cULL};
    uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    for (uint64_t word : kJump) {
      for (int b = 0; b < 64; ++b) {
        if (word & (1ULL << b)) {
          s0 ^= s_[0];
          s1 ^= s_[1];
          s2 ^= s_[2];
          s3 ^= s_[3];
        }
        Next();
      }
    }
    s_[0] = s0;
    s_[1] = s1;
    s_[2] = s2;
    s_[3] = s3;
  }

  /// Deterministic per-worker stream: a copy of *this advanced `stream`
  /// jumps. ForStream(0) replays this generator's own sequence; distinct
  /// streams are disjoint 2^128-long segments, so a K-thread run is
  /// reproducible for any K.
  Rng ForStream(uint64_t stream) const {
    Rng r = *this;
    for (uint64_t i = 0; i < stream; ++i) r.Jump();
    return r;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

inline std::vector<uint64_t> Rng::SampleDistinct(uint64_t n, uint64_t k) {
  OBJREP_CHECK(k <= n);
  std::vector<uint64_t> out;
  out.reserve(k);
  if (k * 3 >= n) {
    std::vector<uint64_t> all(n);
    for (uint64_t i = 0; i < n; ++i) all[i] = i;
    Shuffle(&all);
    out.assign(all.begin(), all.begin() + static_cast<ptrdiff_t>(k));
    return out;
  }
  // Floyd's algorithm: O(k) expected when k << n.
  std::vector<uint64_t> seen;
  for (uint64_t j = n - k; j < n; ++j) {
    uint64_t t = Uniform(j + 1);
    bool dup = false;
    for (uint64_t s : seen) {
      if (s == t) { dup = true; break; }
    }
    uint64_t pick = dup ? j : t;
    seen.push_back(pick);
    out.push_back(pick);
  }
  return out;
}

}  // namespace objrep

#endif  // OBJREP_UTIL_RANDOM_H_
