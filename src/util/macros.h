// Assertion macros used across the library.
#ifndef OBJREP_UTIL_MACROS_H_
#define OBJREP_UTIL_MACROS_H_

#include <cstdio>
#include <cstdlib>

// Fatal invariant check; always on (the library is a measurement instrument,
// a silently corrupt simulation is worse than an abort).
#define OBJREP_CHECK(cond)                                                \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "OBJREP_CHECK failed at %s:%d: %s\n",          \
                   __FILE__, __LINE__, #cond);                            \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#define OBJREP_CHECK_MSG(cond, msg)                                       \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "OBJREP_CHECK failed at %s:%d: %s (%s)\n",     \
                   __FILE__, __LINE__, #cond, msg);                       \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#endif  // OBJREP_UTIL_MACROS_H_
