// Decomposed Storage Model (DSM) representation of the subobjects.
//
// The paper's §2 contrasts its framework with the MCC group's emphasis on
// "a decomposed storage model of complex objects" ([COPE85], [VALD86],
// [KHOS87]). Here ChildRel is decomposed into one binary relation per
// attribute — (OID, ret1), (OID, ret2), (OID, ret3), (OID, dummy) — each a
// B-tree on OID. The paper's retrieve projects a *single* ret attribute,
// which is DSM's best case: the projected column packs ~7x more entries
// per page than the 100-byte row, so both the probe (DFS) and merge-join
// (BFS) footprints shrink. The price is reconstruction: materializing the
// whole subobject touches every column. bench/dsm_comparison measures both
// sides against the paper's row storage (the n-ary storage model).
#ifndef OBJREP_CORE_DSM_H_
#define OBJREP_CORE_DSM_H_

#include <memory>

#include "core/strategy.h"
#include "objstore/database.h"

namespace objrep {

class DsmDatabase {
 public:
  /// Materializes the DSM copy of `src` on its own simulated disk (same
  /// logical content, column-wise physical design).
  static Status Build(const ComplexDatabase& src,
                      std::unique_ptr<DsmDatabase>* out);

  /// retrieve (ParentRel.children.attr): depth-first probes against the
  /// projected attribute's column only.
  Status RetrieveDfs(const Query& q, RetrieveResult* out);

  /// The same breadth-first: temp + sort + merge join with the column.
  Status RetrieveBfs(const Query& q, RetrieveResult* out);

  /// Full-subobject materialization (the paper's person.all): depth-first
  /// over *every* column — DSM's weak spot. Values of all three ret
  /// attributes are appended per subobject.
  Status RetrieveReconstruct(const Query& q, RetrieveResult* out);

  /// In-place ret1 updates touch only the ret1 column.
  Status ExecuteUpdate(const Query& q);

  DiskManager* disk() { return disk_.get(); }
  uint32_t total_pages() const { return disk_->num_pages(); }
  uint32_t column_leaf_pages(int attr_index) const {
    return columns_[attr_index].stats().leaf_pages;
  }

 private:
  DsmDatabase() = default;

  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  Table parent_rel_;
  BPlusTree columns_[3];  // ret1, ret2, ret3 (key -> int32 LE)
  BPlusTree dummy_column_;  // the pad bytes live in their own column
  uint32_t size_unit_ = 0;
};

}  // namespace objrep

#endif  // OBJREP_CORE_DSM_H_
