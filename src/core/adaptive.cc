#include "core/adaptive.h"

#include <algorithm>
#include <limits>

#include "obs/io_context.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "objstore/rows.h"
#include "storage/fault_injector.h"

namespace objrep {

CostCalibrator::CostCalibrator(DeviceModel predicted, uint32_t window)
    : device_(predicted),
      window_(window == 0 ? 1 : window),
      alpha_(2.0 / (static_cast<double>(window_) + 1.0)) {
  for (double& f : factor_) f = 1.0;
}

double CostCalibrator::Predict(StrategyKind kind, const DbShape& shape,
                               const DynamicStats& dyn, uint32_t num_top,
                               uint32_t smart_threshold) const {
  return device_.Cost(
      EstimateRetrieveDetail(kind, shape, dyn, num_top, smart_threshold));
}

double CostCalibrator::PredictCalibrated(StrategyKind kind,
                                         const DbShape& shape,
                                         const DynamicStats& dyn,
                                         uint32_t num_top,
                                         uint32_t smart_threshold) const {
  return Predict(kind, shape, dyn, num_top, smart_threshold) *
         factor_[Index(kind)];
}

void CostCalibrator::Observe(StrategyKind kind, double predicted_raw,
                             double observed, bool trial) {
  size_t i = Index(kind);
  // The ratio bound is deliberately wide: a mis-seeded device model can be
  // off by orders of magnitude (the 10x-latency convergence test), and the
  // factor must be able to cancel all of it. It only excludes degenerate
  // zero/infinite observations.
  double ratio =
      std::clamp(observed / std::max(predicted_raw, 1e-9), 1e-4, 1e4);
  double alpha = trial ? std::max(alpha_, kTrialAlpha) : alpha_;
  factor_[i] = count_[i] < kSnapObservations
                   ? ratio
                   : (1.0 - alpha) * factor_[i] + alpha * ratio;
  ++count_[i];
}

namespace {

Counter* PlanCounterFor(StrategyKind kind) {
  return MetricsRegistry::Global().GetCounter(
      std::string("adaptive.plan.") + StrategyKindName(kind));
}

}  // namespace

AdaptiveStrategy::AdaptiveStrategy(ComplexDatabase* db,
                                   const StrategyOptions& options)
    : AdaptiveStrategy(db, options,
                       DeviceModel::ForDevice(db->disk->io_latency_us(),
                                              db->disk->transfer_us())) {}

AdaptiveStrategy::AdaptiveStrategy(ComplexDatabase* db,
                                   const StrategyOptions& options,
                                   DeviceModel predicted_device)
    : Strategy(db),
      options_(options),
      shape_(DbShape::Of(*db)),
      calibrator_(predicted_device, options.calibration_window),
      observed_device_(DeviceModel::ForDevice(db->disk->io_latency_us(),
                                              db->disk->transfer_us())) {
  // Candidates are the modelled strategies the database's structures
  // support. MakeStrategy cannot fail for these: the structure checks
  // below mirror its preconditions.
  candidates_.push_back(StrategyKind::kDfs);
  candidates_.push_back(StrategyKind::kBfs);
  if (db->cache != nullptr) {
    candidates_.push_back(StrategyKind::kDfsCache);
    candidates_.push_back(StrategyKind::kSmart);
  }
  if (db->cluster_rel != nullptr) {
    candidates_.push_back(StrategyKind::kDfsClust);
  }
  for (StrategyKind k : candidates_) {
    size_t i = static_cast<size_t>(k);
    Status s = MakeStrategy(k, db, options, &execs_[i]);
    (void)s;  // structure preconditions checked above
    plan_metric_[i] = PlanCounterFor(k);
  }
}

DynamicStats AdaptiveStrategy::CurrentDynamics() {
  DynamicStats dyn;
  if (db_->cache == nullptr) return dyn;
  CacheManager::CacheStats s = db_->cache->stats();
  // RunWorkload resets cache stats at the start of each measurement
  // window; a snapshot going backwards means exactly that — re-baseline
  // instead of wrapping the deltas around.
  if (s.hits < last_cache_.hits || s.misses < last_cache_.misses ||
      s.invalidated_units < last_cache_.invalidated_units) {
    last_cache_ = CacheManager::CacheStats{};
  }
  const uint64_t dh = s.hits - last_cache_.hits;
  const uint64_t dm = s.misses - last_cache_.misses;
  const uint64_t dinv = s.invalidated_units - last_cache_.invalidated_units;
  const double alpha = 2.0 / (calibrator_.window() + 1.0);
  if (dh + dm > 0) {
    double rate = static_cast<double>(dh) / static_cast<double>(dh + dm);
    hit_ewma_ =
        hit_ewma_ < 0 ? rate : (1.0 - alpha) * hit_ewma_ + alpha * rate;
  }
  if (queries_since_dyn_ > 0) {
    double inv_per_q =
        static_cast<double>(dinv) / static_cast<double>(queries_since_dyn_);
    inval_ewma_ = (1.0 - alpha) * inval_ewma_ + alpha * inv_per_q;
  }
  touches_ewma_ = touches_ewma_ < 0
                      ? touches_accum_
                      : (1.0 - alpha) * touches_ewma_ + alpha * touches_accum_;
  touches_accum_ = 0.0;
  last_cache_ = s;
  queries_since_dyn_ = 0;
  dyn.update_unit_touches = std::max(0.0, touches_ewma_);
  dyn.cache_hit_rate = hit_ewma_ < 0 ? 0.0 : hit_ewma_;
  dyn.cache_occupancy =
      db_->cache->capacity() == 0
          ? 0.0
          : static_cast<double>(db_->cache->size()) / db_->cache->capacity();
  dyn.invalidations_per_query = inval_ewma_;
  return dyn;
}

bool AdaptiveStrategy::PinPlan(StrategyKind kind) {
  for (StrategyKind k : candidates_) {
    if (k == kind) {
      pinned_ = true;
      pinned_kind_ = kind;
      return true;
    }
  }
  return false;
}

StrategyKind AdaptiveStrategy::ChoosePlan(const DynamicStats& dyn,
                                          uint32_t num_top, bool* in_trial) {
  if (pinned_) {
    *in_trial = false;
    return pinned_kind_;
  }
  // An active trial runs to completion: trial measurements are only
  // meaningful once the candidate's structures have warmed over a few
  // consecutive queries.
  if (trial_remaining_ > 0) {
    --trial_remaining_;
    *in_trial = true;
    return trial_kind_;
  }
  // Initial trial for any candidate never observed. Unbounded steady-state
  // resampling would blow the regret budget — at the sweep extremes the
  // worst candidate costs 10-30x the best — so after this only the
  // ratio-gated staleness pass below ever diverts from the argmin.
  for (StrategyKind k : candidates_) {
    if (calibrator_.observations(k) == 0) {
      StartTrial(k, num_top);
      *in_trial = true;
      return k;
    }
  }
  double best = std::numeric_limits<double>::infinity();
  StrategyKind pick = candidates_.front();
  double incumbent = -1.0;
  for (StrategyKind k : candidates_) {
    double c = calibrator_.PredictCalibrated(k, shape_, dyn, num_top,
                                             options_.smart_threshold);
    if (c < best) {
      best = c;
      pick = k;
    }
    if (k == last_choice_) incumbent = c;
  }
  // Switch hysteresis: per-query observations are noisy (a handful of
  // integer page counts), and near-tied candidates would otherwise trade
  // the argmin back and forth on EWMA jitter, each flip paying the
  // loser's cost. The incumbent keeps the plan unless a challenger is
  // clearly (kSwitchMargin) cheaper.
  if (incumbent >= 0 && pick != last_choice_ &&
      best > (1.0 - kSwitchMargin) * incumbent) {
    pick = last_choice_;
  }
  // Staleness pass (optimism gate): a candidate whose factor has gone
  // stale is worth re-trialing only when the *uncalibrated* steady-state
  // forecast says it would displace the current pick — i.e. the model
  // sees upside a possibly cold-biased trial factor is hiding. A
  // candidate whose very forecast loses to the pick's calibrated cost
  // (BFS or DFSCLUST at a cache-friendly point, 3-6x over) can never win
  // the argmin through re-measurement, so re-trialing it is pure regret;
  // this gate is what lets the engine settle instead of cycling
  // exploration forever among plans that mutually evict each other's hot
  // pages. The executed argmin re-observes itself every query and never
  // needs this. Only where multi-query trials exist at all (small
  // NumTop): a large retrieve amortizes its own cold start, so its
  // factors are not cold-biased — and a mispredicted re-trial there
  // costs thousands of pages.
  if (retrieve_seq_ > 0 && retrieve_seq_ % kTrialRefresh == 0) {
    for (uint32_t& t : trials_started_) {
      t = std::min(t, kMaxTrials - 1);
    }
  }
  if (TrialLength(num_top) > 1) {
    StrategyKind stale_pick = pick;
    uint64_t stalest_age = 0;
    const double pick_raw = calibrator_.Predict(pick, shape_, dyn, num_top,
                                                options_.smart_threshold);
    for (StrategyKind k : candidates_) {
      const size_t i = static_cast<size_t>(k);
      uint64_t age = retrieve_seq_ - last_run_[i];
      double optimistic = calibrator_.Predict(k, shape_, dyn, num_top,
                                              options_.smart_threshold);
      // Absolute upside: the raw forecast undercuts the best calibrated
      // cost — re-measurement can change the decision outright.
      const bool upside = optimistic < (1.0 - kSwitchMargin) * best &&
                          trials_started_[i] < kMaxTrials;
      // Ordering dispute: the model's own uncalibrated ranking says this
      // candidate beats the pick, yet calibration flips it. Either the
      // factor gap is real (buffer-residency effects the model misses
      // equally for both) or the candidate's factor was learned in one
      // cold start-of-run trial while the incumbent calibrated itself
      // warm on every query. Worth exactly one re-measurement — the
      // kOrderingTrials cap is never refreshed, so a genuine factor gap
      // costs one trial ever, not one per refresh window.
      const bool dispute = optimistic < (1.0 - kSwitchMargin) * pick_raw &&
                           trials_started_[i] < kOrderingTrials;
      if (age >= kExploreInterval && (upside || dispute) &&
          age > stalest_age) {
        stalest_age = age;
        stale_pick = k;
      }
    }
    if (stale_pick != pick) {
      StartTrial(stale_pick, num_top);
      *in_trial = true;
      return stale_pick;
    }
  }
  *in_trial = false;
  return pick;
}

void AdaptiveStrategy::StartTrial(StrategyKind kind, uint32_t num_top) {
  trial_kind_ = kind;
  trial_remaining_ = TrialLength(num_top) - 1;  // this query is the first
  ++trials_started_[static_cast<size_t>(kind)];
}

Status AdaptiveStrategy::ExecuteRetrieve(const Query& q,
                                         RetrieveResult* out) {
  DynamicStats dyn = CurrentDynamics();
  bool in_trial = false;
  StrategyKind plan = ChoosePlan(dyn, q.num_top, &in_trial);
  // The ranking above used the steady-state forecast (cache warmth is an
  // investment the argmin must be allowed to believe in); the reference
  // the observation is calibrated against uses the *observed* state, so
  // the factor learns model residual, not transient coldness.
  DynamicStats observed_state = dyn;
  observed_state.steady_state = false;
  double predicted_raw = calibrator_.Predict(
      plan, shape_, observed_state, q.num_top, options_.smart_threshold);
  last_choice_ = plan;
  const size_t idx = static_cast<size_t>(plan);
  ++retrieve_seq_;
  last_run_[idx] = retrieve_seq_;
  ++plan_counts_[idx];
  if (plan_metric_[idx] != nullptr) plan_metric_[idx]->Add(1);
  Trace::Instant("plan_choice", "adaptive", "kind",
                 static_cast<uint64_t>(plan));
  if (ProfileCollector* c = ProfileCollector::Current()) {
    c->SetPlan(static_cast<int64_t>(plan));
  }

  // Observe exactly this query's physical I/O via the calling thread's
  // own counters — concurrent workers' traffic never pollutes the
  // calibration signal (DESIGN.md §12).
  ThreadIoSnapshot before = CurrentThreadIo();
  OBJREP_RETURN_NOT_OK(execs_[idx]->ExecuteRetrieve(q, out));
  ThreadIoSnapshot d = CurrentThreadIo() - before;
  IoEstimate observed;
  observed.seq_reads = static_cast<double>(d.seq_reads);
  observed.rand_reads = static_cast<double>(d.rand_reads());
  observed.writes = static_cast<double>(d.writes);
  calibrator_.Observe(plan, predicted_raw, observed_device_.Cost(observed),
                      in_trial);
  ++queries_since_dyn_;
  return Status::OK();
}

Status AdaptiveStrategy::ExecuteUpdate(const Query& q) {
  // The next retrieve may run under any candidate plan, so the update
  // must reach every representation: ChildRel in place (the base copy),
  // the ClusterRel translation when clustering is built (see
  // dfs_clust.cc), and cache invalidation when the cache is built. The
  // ConcurrentRunner's X locks already cover the target relations plus
  // ClusterRel.
  ScopedIoTag tag(IoTag::kUpdate);  // invalidation re-tags kCacheMaint
  touches_accum_ += static_cast<double>(q.update_targets.size());
  for (const Oid& oid : q.update_targets) {
    OBJREP_RETURN_NOT_OK(UpdateChildInPlace(oid, q.new_ret1));
    if (db_->cluster_rel != nullptr) {
      uint64_t cluster_key;
      Status s = db_->cluster_oid_index.Lookup(oid.Packed(), &cluster_key);
      if (!s.ok()) {
        return Status::Corruption("update target missing from cluster index");
      }
      std::vector<Value> values;
      OBJREP_RETURN_NOT_OK(db_->cluster_rel->Get(cluster_key, &values));
      values[kClusterRet1] = Value(q.new_ret1);
      std::string encoded;
      OBJREP_RETURN_NOT_OK(
          EncodeRecord(db_->cluster_rel->schema(), values, &encoded));
      OBJREP_RETURN_NOT_OK(
          db_->cluster_rel->tree().UpdateInPlace(cluster_key, encoded));
      OBJREP_RETURN_NOT_OK(
          db_->disk->fault_injector()->MaybeCrash("clust.update.mid"));
    }
    if (db_->cache != nullptr) {
      OBJREP_RETURN_NOT_OK(db_->cache->InvalidateSubobject(oid));
    }
  }
  ++queries_since_dyn_;
  return Status::OK();
}

}  // namespace objrep
