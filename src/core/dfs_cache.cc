// DFSCACHE (paper §3.2): "Check if the value of the subobjects is cached.
// If so, fetch the attribute from the cache. Otherwise, fetch the
// subobjects from the person relation (materialization), cache their
// values, and return the attribute."
//
// The cache is maintained on the retrieval path (fresh units inserted) and
// invalidated on the update path through I-locks.
#include "core/strategies_impl.h"
#include "obs/io_context.h"
#include "objstore/unit_blob.h"

namespace objrep {
namespace internal {

Status CachedDepthFirstRetrieve(ComplexDatabase* db, const Query& q,
                                RetrieveResult* out) {
  CostBreakdown& cost = out->cost;
  IoCounters start = db->disk->counters();
  OBJREP_RETURN_NOT_OK(ScanParents(
      db, q,
      [&](uint32_t /*parent_key*/, const std::vector<Oid>& unit) -> Status {
        uint64_t hashkey = CacheManager::HashKeyOf(unit);
        {
          // Atomic probe+fetch: a concurrent retriever's insert may evict
          // this unit between a residency check and the read, so the two
          // are one directory-lock hold and a miss is an answer, not an
          // error.
          IoBracket cache_bracket(db->disk.get(), &cost.cache_io);
          bool found = false;
          std::string blob;
          OBJREP_RETURN_NOT_OK(db->cache->TryFetchUnit(hashkey, &blob,
                                                       &found));
          if (found) {
            OBJREP_RETURN_NOT_OK(
                ProjectUnitBlob(db, blob, q.attr_index, &out->values));
            out->oids.insert(out->oids.end(), unit.begin(), unit.end());
            return Status::OK();
          }
        }
        // Miss: materialize the unit, then maintain the cache.
        std::vector<std::string> raws;
        {
          IoBracket child_bracket(db->disk.get(), &cost.child_io);
          OBJREP_RETURN_NOT_OK(MaterializeUnit(db, unit, q.attr_index, &raws,
                                               &out->values));
          out->oids.insert(out->oids.end(), unit.begin(), unit.end());
        }
        IoBracket cache_bracket(db->disk.get(), &cost.cache_io);
        return db->cache->InsertUnit(hashkey, unit, EncodeUnitBlob(raws));
      }));
  uint64_t total = (db->disk->counters() - start).total();
  cost.par_io = total - cost.child_io - cost.cache_io;
  return Status::OK();
}

Status DfsCacheStrategy::ExecuteRetrieve(const Query& q,
                                         RetrieveResult* out) {
  return CachedDepthFirstRetrieve(db_, q, out);
}

Status DfsCacheStrategy::ExecuteUpdate(const Query& q) {
  ScopedIoTag tag(IoTag::kUpdate);  // invalidation re-tags kCacheMaint
  for (const Oid& oid : q.update_targets) {
    OBJREP_RETURN_NOT_OK(UpdateChildInPlace(oid, q.new_ret1));
    // The update holds the subobject's page; its I-locks name the cached
    // units to invalidate (hash-relation deletes, charged as I/O).
    OBJREP_RETURN_NOT_OK(db_->cache->InvalidateSubobject(oid));
  }
  return Status::OK();
}

}  // namespace internal
}  // namespace objrep
