// BFS over a join index ([VALD86], cited by the paper's §2 as the MCC
// line of "implementation techniques for complex objects").
//
// The join index is a dense binary relation mapping (object key,
// position) -> subobject OID, B-tree-clustered on object key. A retrieve's
// OID-collection phase becomes a contiguous scan of ~20-byte entries
// instead of ~200-byte ParentRel tuples, cutting ParCost roughly by the
// width ratio; the sort + merge join phases are identical to plain BFS.
#include <cstring>
#include <map>

#include "core/strategies_impl.h"
#include "obs/io_context.h"
#include "objstore/rows.h"
#include "relational/merge_join.h"

namespace objrep {
namespace internal {

Status BfsJoinIndexStrategy::ExecuteRetrieve(const Query& q,
                                             RetrieveResult* out) {
  if (!db_->has_join_index) {
    return Status::InvalidArgument(
        "BFS-JI requires spec.build_join_index");
  }
  CostBreakdown& cost = out->cost;
  IoCounters start = db_->disk->counters();

  // Phase 1: contiguous join-index scan over the qualifying objects.
  std::map<RelationId, TempFile> temps;
  {
    // The join-index scan is this strategy's (much thinner) parent scan;
    // temp appends re-tag kTempSort inside TempFile.
    ScopedIoTag io_tag(IoTag::kParentScan);
    BPlusTree::Iterator it = db_->join_index.NewIterator();
    OBJREP_RETURN_NOT_OK(it.Seek(static_cast<uint64_t>(q.lo_parent) << 12));
    const uint64_t end =
        (static_cast<uint64_t>(q.lo_parent) + q.num_top) << 12;
    while (it.valid() && it.key() < end) {
      std::string_view v = it.value();
      if (v.size() != 8) {
        return Status::Corruption("malformed join index entry");
      }
      uint64_t packed;
      std::memcpy(&packed, v.data(), 8);
      Oid oid = Oid::FromPacked(packed);
      IoBracket temp_bracket(db_->disk.get(), &cost.temp_io);
      auto t = temps.find(oid.rel);
      if (t == temps.end()) {
        TempFile fresh;
        OBJREP_RETURN_NOT_OK(TempFile::Create(db_->pool.get(), &fresh));
        t = temps.emplace(oid.rel, std::move(fresh)).first;
      }
      OBJREP_RETURN_NOT_OK(t->second.Append(oid.key));
      OBJREP_RETURN_NOT_OK(it.Next());
    }
  }
  cost.par_io = (db_->disk->counters() - start).total() - cost.temp_io;

  // Phases 2+3: identical to BFS.
  for (auto& [rel_id, temp] : temps) {
    temp.Seal();
    TempFile sorted;
    {
      IoBracket temp_bracket(db_->disk.get(), &cost.temp_io);
      SortOptions opts;
      opts.work_mem_pages = work_mem_;
      opts.reclaim_runs = db_->spec.reclaim_temp_pages;
      OBJREP_RETURN_NOT_OK(
          ExternalSort(db_->pool.get(), temp, opts, &sorted));
      if (db_->spec.reclaim_temp_pages) {
        OBJREP_RETURN_NOT_OK(temp.FreePages());
      }
    }
    const Table* table = db_->ChildRelById(rel_id);
    if (table == nullptr) {
      return Status::Corruption("temp references unknown relation");
    }
    IoBracket child_bracket(db_->disk.get(), &cost.child_io);
    ScopedIoTag heap_tag(IoTag::kHeapFetch);
    OBJREP_RETURN_NOT_OK(MergeJoinSortedKeys(
        sorted.Read(), table->tree(),
        [&](uint64_t key, std::string_view raw) -> Status {
          int32_t v;
          OBJREP_RETURN_NOT_OK(
              DecodeChildRet(table->schema(), raw, q.attr_index, &v));
          out->values.push_back(v);
          out->oids.push_back(Oid{rel_id, static_cast<uint32_t>(key)});
          return Status::OK();
        }));
    if (db_->spec.reclaim_temp_pages) {
      IoBracket temp_bracket(db_->disk.get(), &cost.temp_io);
      OBJREP_RETURN_NOT_OK(sorted.FreePages());
    }
  }
  return Status::OK();
}

}  // namespace internal
}  // namespace objrep
