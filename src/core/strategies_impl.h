// Internal declarations of the concrete strategies. Users go through
// MakeStrategy(); tests may include this header to poke at internals.
#ifndef OBJREP_CORE_STRATEGIES_IMPL_H_
#define OBJREP_CORE_STRATEGIES_IMPL_H_

#include <functional>

#include "core/strategy.h"
#include "relational/external_sort.h"
#include "relational/temp_file.h"

namespace objrep {
namespace internal {

/// Scans ParentRel over the retrieve's OID range, delivering each parent's
/// key and decoded unit (children OID list) in key order.
Status ScanParents(
    ComplexDatabase* db, const Query& q,
    const std::function<Status(uint32_t, const std::vector<Oid>&)>& fn);

/// DFS (paper §3.1 [1]): nested-loop fetch of every subobject.
class DfsStrategy : public Strategy {
 public:
  using Strategy::Strategy;
  std::string_view name() const override { return "DFS"; }
  Status ExecuteRetrieve(const Query& q, RetrieveResult* out) override;
};

/// BFS / BFSNODUP (paper §3.1 [2], [3]): temp + sort (+ dedup) + merge join.
class BfsStrategy : public Strategy {
 public:
  BfsStrategy(ComplexDatabase* db, bool dedup, uint32_t sort_work_mem_pages)
      : Strategy(db), dedup_(dedup), work_mem_(sort_work_mem_pages) {}
  std::string_view name() const override {
    return dedup_ ? "BFSNODUP" : "BFS";
  }
  Status ExecuteRetrieve(const Query& q, RetrieveResult* out) override;

 private:
  bool dedup_;
  uint32_t work_mem_;
};

/// DFSCACHE (paper §3.2): depth-first with outside caching and maintenance.
class DfsCacheStrategy : public Strategy {
 public:
  using Strategy::Strategy;
  std::string_view name() const override { return "DFSCACHE"; }
  Status ExecuteRetrieve(const Query& q, RetrieveResult* out) override;
  Status ExecuteUpdate(const Query& q) override;
};

/// DFSCLUST (paper §3.3): depth-first over ClusterRel; subobjects clustered
/// elsewhere are fetched through the ISAM index on ClusterRel.OID.
class DfsClustStrategy : public Strategy {
 public:
  using Strategy::Strategy;
  std::string_view name() const override { return "DFSCLUST"; }
  Status ExecuteRetrieve(const Query& q, RetrieveResult* out) override;
  Status ExecuteUpdate(const Query& q) override;
};

/// DFSCLUST + outside cache — the shaded box of Figure 2, implemented so
/// the paper's §3.4 claim ("does not make sense to combine") is testable.
/// The cluster scan has already paid for the local subobjects before the
/// cache can answer, so the cache can only save the *remote* fetches while
/// still charging full maintenance — exactly the redundancy the paper
/// predicts.
class DfsClustCacheStrategy : public Strategy {
 public:
  using Strategy::Strategy;
  std::string_view name() const override { return "DFSCLUST+CACHE"; }
  Status ExecuteRetrieve(const Query& q, RetrieveResult* out) override;
  Status ExecuteUpdate(const Query& q) override;
};

/// BFS over the join index ([VALD86]): the qualifying objects' subobject
/// OIDs come from a contiguous scan of the dense (object, position) ->
/// OID relation, so the wide ParentRel tuples are never read.
class BfsJoinIndexStrategy : public Strategy {
 public:
  BfsJoinIndexStrategy(ComplexDatabase* db, uint32_t sort_work_mem_pages)
      : Strategy(db), work_mem_(sort_work_mem_pages) {}
  std::string_view name() const override { return "BFS-JI"; }
  Status ExecuteRetrieve(const Query& q, RetrieveResult* out) override;

 private:
  uint32_t work_mem_;
};

/// BFS with an in-memory hash join (extension): build side = the
/// temporary's OIDs, probe side = one sequential ChildRel scan.
class BfsHashStrategy : public Strategy {
 public:
  using Strategy::Strategy;
  std::string_view name() const override { return "BFS-HASH"; }
  Status ExecuteRetrieve(const Query& q, RetrieveResult* out) override;
};

/// SMART (paper §5.3).
class SmartStrategy : public Strategy {
 public:
  SmartStrategy(ComplexDatabase* db, uint32_t threshold,
                uint32_t sort_work_mem_pages)
      : Strategy(db), threshold_(threshold), work_mem_(sort_work_mem_pages) {}
  std::string_view name() const override { return "SMART"; }
  Status ExecuteRetrieve(const Query& q, RetrieveResult* out) override;
  Status ExecuteUpdate(const Query& q) override;

 private:
  uint32_t threshold_;
  uint32_t work_mem_;
};

/// Shared by DFSCACHE and SMART's low-NumTop path: cache probe, then
/// materialize + insert on a miss.
Status CachedDepthFirstRetrieve(ComplexDatabase* db, const Query& q,
                                RetrieveResult* out);

/// Materializes one unit from ChildRel: raw records + projected attr
/// values, in unit order. Charges child I/O only.
Status MaterializeUnit(ComplexDatabase* db, const std::vector<Oid>& unit,
                       int attr_index, std::vector<std::string>* raw_records,
                       std::vector<int32_t>* values);

/// Decodes the projected attr of every record in a cached unit blob.
Status ProjectUnitBlob(ComplexDatabase* db, std::string_view blob,
                       int attr_index, std::vector<int32_t>* values);

}  // namespace internal
}  // namespace objrep

#endif  // OBJREP_CORE_STRATEGIES_IMPL_H_
