#include "core/hierarchy.h"

#include <map>
#include <numeric>

#include "objstore/rows.h"
#include "relational/external_sort.h"
#include "relational/merge_join.h"
#include "relational/temp_file.h"
#include "util/random.h"

namespace objrep {

Status HierarchySpec::Validate() const {
  if (depth < 2) {
    return Status::InvalidArgument("hierarchy needs at least two levels");
  }
  if (depth > 8) {
    return Status::InvalidArgument("hierarchy deeper than 8 levels");
  }
  if (num_roots == 0 || size_unit == 0 || use_factor == 0) {
    return Status::InvalidArgument("spec parameters must be positive");
  }
  uint64_t n = num_roots;
  for (uint32_t l = 0; l + 1 < depth; ++l) {
    if ((n * size_unit) % use_factor != 0) {
      return Status::InvalidArgument(
          "use_factor must divide size_unit * |level| at every level");
    }
    if (n % use_factor != 0) {
      return Status::InvalidArgument(
          "use_factor must divide every level's cardinality");
    }
    n = n * size_unit / use_factor;
  }
  if (size_unit > 4095) {
    return Status::InvalidArgument("size_unit too large");
  }
  return Status::OK();
}

Status HierarchyDatabase::Build(const HierarchySpec& spec,
                                std::unique_ptr<HierarchyDatabase>* out) {
  OBJREP_RETURN_NOT_OK(spec.Validate());
  auto db = std::unique_ptr<HierarchyDatabase>(new HierarchyDatabase());
  db->spec_ = spec;
  db->disk_ = std::make_unique<DiskManager>();
  db->pool_ = std::make_unique<BufferPool>(db->disk_.get(), spec.buffer_pages);
  Rng rng(spec.seed);

  const uint32_t inner_dummy =
      ParentDummyWidth(spec.inner_tuple_bytes, spec.size_unit);
  const uint32_t leaf_dummy = ChildDummyWidth(spec.leaf_tuple_bytes);

  // Register one relation per level (top-down so rel ids ascend by level).
  for (uint32_t l = 0; l < spec.depth; ++l) {
    std::string name = "Level" + std::to_string(l);
    Schema schema = (l + 1 < spec.depth) ? MakeParentSchema(inner_dummy)
                                         : MakeChildSchema(leaf_dummy);
    db->levels_.push_back(db->catalog_.Register(std::move(name), schema));
  }

  // Generate units bottom-up is unnecessary — each level's units only need
  // the next level's cardinality. Work top-down.
  db->units_.resize(spec.depth - 1);
  db->unit_of_object_.resize(spec.depth - 1);
  for (uint32_t l = 0; l + 1 < spec.depth; ++l) {
    const uint32_t n_this = spec.LevelSize(l);
    const uint32_t n_next = spec.LevelSize(l + 1);
    const uint32_t num_units = n_this / spec.use_factor;
    OBJREP_CHECK(num_units * spec.size_unit == n_next);
    RelationId next_rel = db->levels_[l + 1]->rel_id();
    // Random partition of the next level into disjoint units.
    std::vector<uint32_t> keys(n_next);
    std::iota(keys.begin(), keys.end(), 0);
    rng.Shuffle(&keys);
    auto& units = db->units_[l];
    units.resize(num_units);
    for (uint32_t u = 0; u < num_units; ++u) {
      for (uint32_t j = 0; j < spec.size_unit; ++j) {
        units[u].push_back(Oid{next_rel, keys[u * spec.size_unit + j]});
      }
    }
    // Each unit referenced by exactly use_factor objects of this level.
    std::vector<uint32_t> assignment;
    assignment.reserve(n_this);
    for (uint32_t u = 0; u < num_units; ++u) {
      for (uint32_t i = 0; i < spec.use_factor; ++i) assignment.push_back(u);
    }
    rng.Shuffle(&assignment);
    db->unit_of_object_[l] = std::move(assignment);
  }

  // Bulk load every level.
  for (uint32_t l = 0; l < spec.depth; ++l) {
    const uint32_t n = spec.LevelSize(l);
    std::vector<std::pair<uint64_t, std::vector<Value>>> rows;
    rows.reserve(n);
    for (uint32_t k = 0; k < n; ++k) {
      if (l + 1 < spec.depth) {
        ParentRow row;
        row.oid = Oid{db->levels_[l]->rel_id(), k};
        row.ret1 = static_cast<int32_t>(rng.Uniform(1000000));
        row.ret2 = static_cast<int32_t>(rng.Uniform(1000000));
        row.ret3 = static_cast<int32_t>(rng.Uniform(1000000));
        row.children = db->units_[l][db->unit_of_object_[l][k]];
        rows.emplace_back(k, ParentRowValues(row, inner_dummy));
      } else {
        ChildRow row;
        row.oid = Oid{db->levels_[l]->rel_id(), k};
        row.ret1 = static_cast<int32_t>(rng.Uniform(1000000));
        row.ret2 = static_cast<int32_t>(rng.Uniform(1000000));
        row.ret3 = static_cast<int32_t>(rng.Uniform(1000000));
        rows.emplace_back(k, ChildRowValues(row, leaf_dummy));
      }
    }
    OBJREP_RETURN_NOT_OK(
        db->levels_[l]->BulkLoad(db->pool_.get(), rows, spec.fill_factor));
  }

  OBJREP_RETURN_NOT_OK(db->pool_->FlushAll());
  db->disk_->ResetCounters();
  *out = std::move(db);
  return Status::OK();
}

Status HierarchyDatabase::ExpandDfs(uint32_t level, const Oid& oid,
                                    int attr_index, RetrieveResult* out) {
  const Table* table = levels_[level];
  std::string raw;
  OBJREP_RETURN_NOT_OK(table->tree().Get(oid.key, &raw));
  if (level + 1 == spec_.depth) {
    int32_t v;
    OBJREP_RETURN_NOT_OK(
        DecodeChildRet(table->schema(), raw, attr_index, &v));
    out->values.push_back(v);
    return Status::OK();
  }
  Value children;
  OBJREP_RETURN_NOT_OK(
      DecodeField(table->schema(), raw, kParentChildren, &children));
  for (const Oid& child : DecodeOidList(children.as_string())) {
    OBJREP_RETURN_NOT_OK(ExpandDfs(level + 1, child, attr_index, out));
  }
  return Status::OK();
}

Status HierarchyDatabase::RetrieveDfs(const Query& q, RetrieveResult* out) {
  IoCounters start = disk_->counters();
  // Scan the qualifying roots, recursively expanding each.
  BPlusTree::Iterator it = levels_[0]->tree().NewIterator();
  OBJREP_RETURN_NOT_OK(it.Seek(q.lo_parent));
  const uint64_t end = static_cast<uint64_t>(q.lo_parent) + q.num_top;
  while (it.valid() && it.key() < end) {
    Value children;
    OBJREP_RETURN_NOT_OK(DecodeField(levels_[0]->schema(), it.value(),
                                     kParentChildren, &children));
    {
      IoBracket child_bracket(disk_.get(), &out->cost.child_io);
      for (const Oid& child : DecodeOidList(children.as_string())) {
        OBJREP_RETURN_NOT_OK(ExpandDfs(1, child, q.attr_index, out));
      }
    }
    OBJREP_RETURN_NOT_OK(it.Next());
  }
  out->cost.par_io =
      (disk_->counters() - start).total() - out->cost.child_io;
  return Status::OK();
}

Status HierarchyDatabase::RetrieveBfs(const Query& q, bool dedup,
                                      RetrieveResult* out) {
  CostBreakdown& cost = out->cost;
  IoCounters start = disk_->counters();

  // Level 0: scan qualifying roots, seeding the first temporary.
  TempFile frontier;
  OBJREP_RETURN_NOT_OK(TempFile::Create(pool_.get(), &frontier));
  {
    BPlusTree::Iterator it = levels_[0]->tree().NewIterator();
    OBJREP_RETURN_NOT_OK(it.Seek(q.lo_parent));
    const uint64_t end = static_cast<uint64_t>(q.lo_parent) + q.num_top;
    while (it.valid() && it.key() < end) {
      Value children;
      OBJREP_RETURN_NOT_OK(DecodeField(levels_[0]->schema(), it.value(),
                                       kParentChildren, &children));
      IoBracket temp_bracket(disk_.get(), &cost.temp_io);
      for (const Oid& child : DecodeOidList(children.as_string())) {
        OBJREP_RETURN_NOT_OK(frontier.Append(child.key));
      }
      OBJREP_RETURN_NOT_OK(it.Next());
    }
  }
  cost.par_io = (disk_->counters() - start).total() - cost.temp_io;

  // Levels 1..depth-1: sort the frontier, merge join, emit the next one.
  for (uint32_t level = 1; level < spec_.depth; ++level) {
    frontier.Seal();
    TempFile sorted;
    {
      IoBracket temp_bracket(disk_.get(), &cost.temp_io);
      SortOptions opts;
      opts.dedup = dedup;
      OBJREP_RETURN_NOT_OK(
          ExternalSort(pool_.get(), frontier, opts, &sorted));
    }
    const Table* table = levels_[level];
    const bool is_leaf = (level + 1 == spec_.depth);
    TempFile next;
    if (!is_leaf) {
      OBJREP_RETURN_NOT_OK(TempFile::Create(pool_.get(), &next));
    }
    IoBracket child_bracket(disk_.get(), &cost.child_io);
    OBJREP_RETURN_NOT_OK(MergeJoinSortedKeys(
        sorted.Read(), table->tree(),
        [&](uint64_t /*key*/, std::string_view raw) -> Status {
          if (is_leaf) {
            int32_t v;
            OBJREP_RETURN_NOT_OK(
                DecodeChildRet(table->schema(), raw, q.attr_index, &v));
            out->values.push_back(v);
            return Status::OK();
          }
          Value children;
          OBJREP_RETURN_NOT_OK(
              DecodeField(table->schema(), raw, kParentChildren, &children));
          for (const Oid& child : DecodeOidList(children.as_string())) {
            OBJREP_RETURN_NOT_OK(next.Append(child.key));
          }
          return Status::OK();
        }));
    if (!is_leaf) {
      frontier = std::move(next);
    }
  }
  return Status::OK();
}

}  // namespace objrep
