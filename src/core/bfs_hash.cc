// BFS with a hash join (extension beyond the paper's INGRES, which had
// iterative substitution and merge join only).
//
// Phase 1 is plain BFS (collect the qualifying objects' subobject OIDs
// into per-relation temporaries). Phase 2 loads each temporary into an
// in-memory multiset keyed by OID — charging the temp re-read, but no
// sort — and phase 3 scans the relation's leaf chain once, emitting one
// value per temp occurrence of each matching key. Wins over merge join
// when the temporary covers most leaves anyway (high NumTop): the saved
// sort passes outweigh the extra cold leaves. Loses badly at low NumTop.
#include <map>
#include <unordered_map>

#include "core/strategies_impl.h"
#include "obs/io_context.h"
#include "objstore/rows.h"

namespace objrep {
namespace internal {

Status BfsHashStrategy::ExecuteRetrieve(const Query& q, RetrieveResult* out) {
  CostBreakdown& cost = out->cost;
  IoCounters start = db_->disk->counters();

  // Phase 1: scan qualifying parents, route OIDs to per-relation temps.
  std::map<RelationId, TempFile> temps;
  OBJREP_RETURN_NOT_OK(ScanParents(
      db_, q,
      [&](uint32_t /*parent_key*/, const std::vector<Oid>& unit) -> Status {
        IoBracket temp_bracket(db_->disk.get(), &cost.temp_io);
        for (const Oid& oid : unit) {
          auto it = temps.find(oid.rel);
          if (it == temps.end()) {
            TempFile t;
            OBJREP_RETURN_NOT_OK(TempFile::Create(db_->pool.get(), &t));
            it = temps.emplace(oid.rel, std::move(t)).first;
          }
          OBJREP_RETURN_NOT_OK(it->second.Append(oid.key));
        }
        return Status::OK();
      }));
  uint64_t scan_total = (db_->disk->counters() - start).total();
  cost.par_io = scan_total - cost.temp_io;

  for (auto& [rel_id, temp] : temps) {
    temp.Seal();
    // Phase 2: build the in-memory hash table (key -> multiplicity).
    std::unordered_map<uint64_t, uint32_t> build;
    {
      IoBracket temp_bracket(db_->disk.get(), &cost.temp_io);
      build.reserve(static_cast<size_t>(temp.num_entries()));
      for (TempFile::Reader r = temp.Read(); r.valid();) {
        ++build[r.value()];
        OBJREP_RETURN_NOT_OK(r.Next());
      }
      // No sort phase here: the temp is dead once the hash table holds it.
      if (db_->spec.reclaim_temp_pages) {
        OBJREP_RETURN_NOT_OK(temp.FreePages());
      }
    }
    const Table* table = db_->ChildRelById(rel_id);
    if (table == nullptr) {
      return Status::Corruption("temp references unknown relation");
    }
    // Phase 3: one sequential probe scan over the whole relation.
    IoBracket child_bracket(db_->disk.get(), &cost.child_io);
    ScopedIoTag heap_tag(IoTag::kHeapFetch);
    BPlusTree::Iterator it = table->tree().NewIterator();
    OBJREP_RETURN_NOT_OK(it.SeekToFirst());
    while (it.valid()) {
      auto hit = build.find(it.key());
      if (hit != build.end()) {
        int32_t v;
        OBJREP_RETURN_NOT_OK(
            DecodeChildRet(table->schema(), it.value(), q.attr_index, &v));
        for (uint32_t i = 0; i < hit->second; ++i) {
          out->values.push_back(v);
          out->oids.push_back(Oid{rel_id, static_cast<uint32_t>(it.key())});
        }
      }
      OBJREP_RETURN_NOT_OK(it.Next());
    }
  }
  return Status::OK();
}

}  // namespace internal
}  // namespace objrep
