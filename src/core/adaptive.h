// Adaptive per-query strategy selection with feedback-calibrated costs
// (DESIGN.md §12).
//
// The paper's §3.1 observation — "the optimal joining strategy in this
// query depends on the sizes of the relations involved" — is implemented
// here as a working optimizer: before every retrieve the engine estimates
// each candidate strategy's cost with the analytic model (core/cost_model.h,
// fed with observed cache/cluster dynamics), weighs the estimate with a
// device model, corrects it with a per-strategy calibration factor learned
// from the actual I/O of earlier queries, and executes the argmin plan.
//
// Calibration closes the loop between model and measurement: after each
// retrieve the engine snapshots the calling thread's own physical I/O
// delta (obs/io_context.h), prices it with the *true* device weights, and
// folds observed/predicted into an exponentially-weighted factor for the
// executed strategy. The model may therefore start wrong — a bad shape
// estimate, a mis-seeded device model — and still converge to the right
// plan ordering within a few observations per candidate.
//
// Concurrency: every worker owns its own AdaptiveStrategy instance (the
// ConcurrentRunner already makes one strategy per worker), so calibration
// state is thread-confined and the observation feed is the per-thread I/O
// counters — no cross-worker races. The only shared touch points are the
// process-wide plan-choice metrics counters (atomic, registry pattern) and
// the CacheManager stats snapshot (mutex-guarded, advisory input only).
#ifndef OBJREP_CORE_ADAPTIVE_H_
#define OBJREP_CORE_ADAPTIVE_H_

#include <algorithm>
#include <memory>
#include <vector>

#include "core/cost_model.h"
#include "core/strategy.h"
#include "objstore/cache_manager.h"

namespace objrep {

class Counter;

/// Per-strategy EWMA calibration of the cost model's residual. Predictions
/// are raw model costs under the *predicted* device model; observations
/// are measured I/O priced under the true device. The ratio
/// observed/predicted converges each strategy's calibrated estimate onto
/// its measured cost, which is all the argmin needs — systematic model
/// error cancels out of the comparison.
class CostCalibrator {
 public:
  /// `window` is the query horizon over which an observation decays
  /// (EWMA alpha = 2 / (window + 1)).
  CostCalibrator(DeviceModel predicted, uint32_t window);

  /// Raw (uncalibrated) predicted cost of one retrieve under `kind`.
  double Predict(StrategyKind kind, const DbShape& shape,
                 const DynamicStats& dyn, uint32_t num_top,
                 uint32_t smart_threshold) const;

  /// Predict() corrected by the strategy's learned factor.
  double PredictCalibrated(StrategyKind kind, const DbShape& shape,
                           const DynamicStats& dyn, uint32_t num_top,
                           uint32_t smart_threshold) const;

  /// Folds one (prediction, observation) pair into `kind`'s factor. The
  /// first kSnapObservations snap the factor to the observed ratio — the
  /// earliest measurements land on a cold buffer pool and an EWMA would
  /// freeze that bias in. Later ones decay exponentially over the window,
  /// except during a trial (`trial` = true), which uses the faster
  /// kTrialAlpha so a short burst of consecutive runs can overturn a
  /// stale factor while weighting its own warmest (latest) measurements
  /// heaviest.
  void Observe(StrategyKind kind, double predicted_raw, double observed,
               bool trial = false);

  /// Observations that replace the factor outright instead of decaying.
  static constexpr uint32_t kSnapObservations = 3;
  /// EWMA weight of each observation made during an exploration trial.
  static constexpr double kTrialAlpha = 0.25;

  uint32_t observations(StrategyKind kind) const {
    return count_[Index(kind)];
  }
  double factor(StrategyKind kind) const { return factor_[Index(kind)]; }
  const DeviceModel& device() const { return device_; }
  uint32_t window() const { return window_; }

 private:
  static constexpr size_t kNumKinds = 16;  // indexed by StrategyKind value
  static size_t Index(StrategyKind kind) {
    return static_cast<size_t>(kind) % kNumKinds;
  }

  DeviceModel device_;
  uint32_t window_;
  double alpha_;
  double factor_[kNumKinds];
  uint32_t count_[kNumKinds] = {};
};

/// StrategyKind::kAdaptive: re-plans every retrieve across the candidate
/// strategies the database's structures support (DFS and BFS always;
/// DFSCACHE and SMART when the cache is built; DFSCLUST when clustering
/// is). Updates write through to every representation — ChildRel in place,
/// the ClusterRel translation, cache invalidation — so any plan the next
/// retrieve picks sees consistent data.
class AdaptiveStrategy : public Strategy {
 public:
  AdaptiveStrategy(ComplexDatabase* db, const StrategyOptions& options);
  /// Test seam: seed the calibrator with an explicit — possibly wrong —
  /// device model instead of the disk's actual knobs, to exercise
  /// calibration convergence.
  AdaptiveStrategy(ComplexDatabase* db, const StrategyOptions& options,
                   DeviceModel predicted_device);

  std::string_view name() const override { return "ADAPTIVE"; }
  Status ExecuteRetrieve(const Query& q, RetrieveResult* out) override;
  Status ExecuteUpdate(const Query& q) override;

  /// Pins every retrieve to `kind` (must be a candidate; returns false
  /// and stays unpinned otherwise). The engine keeps observing and
  /// calibrating but never re-plans. This is the regret bench's oracle
  /// seam: each candidate runs pinned, so every entrant pays the
  /// identical multi-representation update path and the comparison
  /// isolates plan choice alone.
  bool PinPlan(StrategyKind kind);

  const std::vector<StrategyKind>& candidates() const { return candidates_; }
  StrategyKind last_choice() const { return last_choice_; }
  uint64_t plan_count(StrategyKind kind) const {
    return plan_counts_[static_cast<size_t>(kind) % kMaxKinds];
  }
  const CostCalibrator& calibrator() const { return calibrator_; }
  /// Dynamics the next plan choice would see (test / driver inspection).
  DynamicStats CurrentDynamics();

 private:
  static constexpr size_t kMaxKinds = 16;
  /// Exploration runs as *trials*: a candidate executes several
  /// consecutive retrieves, because the structures the dynamic strategies
  /// lean on are investments — the cache fills, the cluster's ISAM and
  /// extent pages become buffer-resident — and a single interleaved probe
  /// measures only the cold cost of a plan nobody is committed to. The
  /// trial length shrinks as NumTop grows (TrialLength below): one
  /// 10000-object retrieve touches enough pages to reach its steady state
  /// by itself, and long trials of a bad candidate there would be the
  /// regret budget.
  static constexpr uint32_t kTrialProbes = 600;
  static constexpr uint32_t kMaxTrialLength = 8;
  /// Steady-state re-trials, gated so they cannot blow the regret budget:
  /// a candidate is re-tried only when its uncalibrated steady-state
  /// forecast undercuts the current pick by the switch margin (the
  /// optimism gate — re-measurement can only change the decision if the
  /// model sees upside), it has not run for kExploreInterval retrieves,
  /// and it has trials left (kMaxTrials, refreshed below).
  static constexpr uint32_t kExploreInterval = 64;
  static constexpr uint32_t kMaxTrials = 3;
  /// Lifetime trial budget for the ordering-dispute arm of the gate (the
  /// initial trial plus one re-measurement). Deliberately not refreshed:
  /// where the model's relative ranking disagrees with the calibrated
  /// ranking *correctly* (real factor gaps), re-trialing forever would be
  /// steady regret.
  static constexpr uint32_t kOrderingTrials = 2;
  /// Every kTrialRefresh retrieves each candidate regains one trial (up
  /// to the kMaxTrials cap). The early phase is turbulent — candidates
  /// trial back to back, each evicting the previous one's hot pages, so
  /// budgets burned there may all be cold-biased; the refresh lets a
  /// stale near-best plan be rediscovered later at a bounded long-run
  /// rate (one trial per candidate per kTrialRefresh retrieves).
  static constexpr uint32_t kTrialRefresh = 256;
  /// A challenger must beat the incumbent's calibrated cost by this
  /// margin to take over — flapping damper for near-ties.
  static constexpr double kSwitchMargin = 0.10;

  /// Trials of a tiny retrieve run longer: at NumTop of a handful each
  /// query touches only a couple of pages, so the plan's working set
  /// (child leaf pages, index leaves) takes tens of queries to become
  /// buffer-resident — an 8-query trial ends while still cold and learns
  /// a factor 2-3x the adopted steady-state cost. The extra queries are
  /// cheap at that size (a few pages each).
  static constexpr uint32_t kTinyTopTrialLength = 24;

  static uint32_t TrialLength(uint32_t num_top) {
    if (num_top <= 4) return kTinyTopTrialLength;
    uint32_t by_probes = kTrialProbes / num_top;
    return std::clamp(by_probes, 1u, kMaxTrialLength);
  }

  /// Picks the next plan: continues an active trial, starts the initial
  /// trial of a never-observed candidate, or takes the calibrated argmin
  /// (possibly diverting into a gated re-trial of a stale near-best
  /// candidate). Sets *in_trial accordingly.
  StrategyKind ChoosePlan(const DynamicStats& dyn, uint32_t num_top,
                          bool* in_trial);
  void StartTrial(StrategyKind kind, uint32_t num_top);

  StrategyOptions options_;
  DbShape shape_;
  CostCalibrator calibrator_;
  DeviceModel observed_device_;
  std::vector<StrategyKind> candidates_;
  std::unique_ptr<Strategy> execs_[kMaxKinds];
  uint64_t plan_counts_[kMaxKinds] = {};
  Counter* plan_metric_[kMaxKinds] = {};
  StrategyKind last_choice_ = StrategyKind::kDfs;
  /// Retrieve sequence number and per-candidate last-run stamp, feeding
  /// the staleness gate above.
  uint64_t retrieve_seq_ = 0;
  uint64_t last_run_[kMaxKinds] = {};
  // Active-trial state and per-candidate lifetime trial counts.
  StrategyKind trial_kind_ = StrategyKind::kDfs;
  uint32_t trial_remaining_ = 0;
  uint32_t trials_started_[kMaxKinds] = {};
  bool pinned_ = false;
  StrategyKind pinned_kind_ = StrategyKind::kDfs;

  // Cache-dynamics tracking (EWMA over per-call deltas of the shared
  // CacheManager stats; re-baselined when an external ResetStats — e.g.
  // RunWorkload's window reset — makes a snapshot go backwards).
  CacheManager::CacheStats last_cache_;
  double hit_ewma_ = -1.0;
  double inval_ewma_ = 0.0;
  uint64_t queries_since_dyn_ = 0;
  // Update-churn signal for the cache forecast (DynamicStats
  // ::update_unit_touches): units touched by updates since the last
  // retrieve, and its EWMA across retrieve windows.
  double touches_accum_ = 0.0;
  double touches_ewma_ = -1.0;
};

}  // namespace objrep

#endif  // OBJREP_CORE_ADAPTIVE_H_
