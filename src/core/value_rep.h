// Value-based primary representation (paper §2.2.1).
//
// "Subobjects are stored directly in the objects that reference them ...
// they have no associated identifiers, and hence cannot be referenced from
// elsewhere. When a subobject is shared by more than one object we need to
// replicate its value wherever required." (NF² [SCHE86], EXTRA "own"
// [CARE88].)
//
// ValueRel therefore inlines the unit's subobject values into each parent
// tuple: retrieves are a pure range scan (no joins, no probes); updates to
// a logical subobject must touch every replica, which we locate through a
// replica index (packed OID -> referencing parent keys). The paper shades
// the caching column for this representation — "caching does not add to
// the performance" — so there is none here; the representation-matrix
// bench measures its storage, retrieve and update costs against the OID
// representation.
#ifndef OBJREP_CORE_VALUE_REP_H_
#define OBJREP_CORE_VALUE_REP_H_

#include <memory>

#include "core/cost.h"
#include "core/strategy.h"
#include "objstore/database.h"
#include "objstore/workload.h"
#include "util/status.h"

namespace objrep {

class ValueRepDatabase {
 public:
  /// Materializes the value-based copy of `src` on its own simulated disk
  /// (so costs and sizes are directly comparable with the OID database).
  static Status Build(const ComplexDatabase& src,
                      std::unique_ptr<ValueRepDatabase>* out);

  /// retrieve (ParentRel.children.attr): pure scan over the inlined values.
  Status ExecuteRetrieve(const Query& q, RetrieveResult* out);

  /// Updates every replica of each target subobject.
  Status ExecuteUpdate(const Query& q);

  DiskManager* disk() { return disk_.get(); }
  BufferPool* pool() { return pool_.get(); }
  uint32_t total_pages() const { return disk_->num_pages(); }
  uint32_t value_rel_leaf_pages() const {
    return value_rel_.tree().stats().leaf_pages;
  }
  /// Replicated subobject copies stored (== num_parents * SizeUnit).
  uint64_t replica_count() const { return replica_count_; }

 private:
  ValueRepDatabase() = default;

  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  Table value_rel_;      // B-tree on parent key; row inlines child values
  BPlusTree replica_index_;  // packed child OID -> encoded parent-key list
  Schema child_schema_;  // shape of one inlined subobject record
  uint32_t size_unit_ = 0;
  uint64_t replica_count_ = 0;
};

}  // namespace objrep

#endif  // OBJREP_CORE_VALUE_REP_H_
