// BFS and BFSNODUP (paper §3.1 [2], [3]).
//
// "Collect the OID's from qualifying tuples of group into a temporary
// relation temp whose single attribute is OID", sort it, and execute
//     retrieve (person.attr) where person.OID = temp.OID
// as a merge join against ChildRel's B-tree. BFSNODUP additionally removes
// duplicate OIDs during the sort.
//
// With several child relations (paper §6.2) the scan routes each OID to a
// per-relation temporary and runs one merge join per relation encountered.
#include <map>

#include "core/strategies_impl.h"
#include "obs/io_context.h"
#include "objstore/rows.h"
#include "relational/merge_join.h"

namespace objrep {
namespace internal {

Status BfsStrategy::ExecuteRetrieve(const Query& q, RetrieveResult* out) {
  CostBreakdown& cost = out->cost;
  IoCounters start = db_->disk->counters();

  // Phase 1: scan qualifying parents, route OIDs to per-relation temps.
  // (std::map so relations are processed in a deterministic order.)
  std::map<RelationId, TempFile> temps;
  OBJREP_RETURN_NOT_OK(ScanParents(
      db_, q,
      [&](uint32_t /*parent_key*/, const std::vector<Oid>& unit) -> Status {
        IoBracket temp_bracket(db_->disk.get(), &cost.temp_io);
        for (const Oid& oid : unit) {
          auto it = temps.find(oid.rel);
          if (it == temps.end()) {
            TempFile t;
            OBJREP_RETURN_NOT_OK(TempFile::Create(db_->pool.get(), &t));
            it = temps.emplace(oid.rel, std::move(t)).first;
          }
          // ChildRel B-trees are keyed on the OID's key part (the relation
          // part is fixed per temp), so append the key: the sorted temp
          // then merge-joins directly.
          OBJREP_RETURN_NOT_OK(it->second.Append(oid.key));
        }
        return Status::OK();
      }));
  uint64_t scan_total = (db_->disk->counters() - start).total();
  cost.par_io = scan_total - cost.temp_io;

  // Phases 2+3 per relation: sort the temp, then merge join.
  for (auto& [rel_id, temp] : temps) {
    temp.Seal();
    TempFile sorted;
    {
      IoBracket temp_bracket(db_->disk.get(), &cost.temp_io);
      SortOptions opts;
      opts.work_mem_pages = work_mem_;
      opts.dedup = dedup_;
      opts.reclaim_runs = db_->spec.reclaim_temp_pages;
      OBJREP_RETURN_NOT_OK(
          ExternalSort(db_->pool.get(), temp, opts, &sorted));
      // The unsorted input is dead once the sort has consumed it.
      if (db_->spec.reclaim_temp_pages) {
        OBJREP_RETURN_NOT_OK(temp.FreePages());
      }
    }
    const Table* table = db_->ChildRelById(rel_id);
    if (table == nullptr) {
      return Status::Corruption("temp references unknown relation");
    }
    IoBracket child_bracket(db_->disk.get(), &cost.child_io);
    // Near-sequential child-leaf reads of the merge join — the BFS payoff
    // the paper trades the sort for (§5). Temp-stream reads of `sorted`
    // re-tag kTempSort inside TempFile::Reader.
    ScopedIoTag heap_tag(IoTag::kHeapFetch);
    OBJREP_RETURN_NOT_OK(MergeJoinSortedKeys(
        sorted.Read(), table->tree(),
        [&](uint64_t key, std::string_view raw) -> Status {
          int32_t v;
          OBJREP_RETURN_NOT_OK(
              DecodeChildRet(table->schema(), raw, q.attr_index, &v));
          out->values.push_back(v);
          out->oids.push_back(Oid{rel_id, static_cast<uint32_t>(key)});
          return Status::OK();
        }));
    if (db_->spec.reclaim_temp_pages) {
      IoBracket temp_bracket(db_->disk.get(), &cost.temp_io);
      OBJREP_RETURN_NOT_OK(sorted.FreePages());
    }
  }
  return Status::OK();
}

}  // namespace internal
}  // namespace objrep
