
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive.cc" "src/core/CMakeFiles/objrep_core.dir/adaptive.cc.o" "gcc" "src/core/CMakeFiles/objrep_core.dir/adaptive.cc.o.d"
  "/root/repo/src/core/bfs.cc" "src/core/CMakeFiles/objrep_core.dir/bfs.cc.o" "gcc" "src/core/CMakeFiles/objrep_core.dir/bfs.cc.o.d"
  "/root/repo/src/core/bfs_hash.cc" "src/core/CMakeFiles/objrep_core.dir/bfs_hash.cc.o" "gcc" "src/core/CMakeFiles/objrep_core.dir/bfs_hash.cc.o.d"
  "/root/repo/src/core/bfs_join_index.cc" "src/core/CMakeFiles/objrep_core.dir/bfs_join_index.cc.o" "gcc" "src/core/CMakeFiles/objrep_core.dir/bfs_join_index.cc.o.d"
  "/root/repo/src/core/cost_model.cc" "src/core/CMakeFiles/objrep_core.dir/cost_model.cc.o" "gcc" "src/core/CMakeFiles/objrep_core.dir/cost_model.cc.o.d"
  "/root/repo/src/core/dfs.cc" "src/core/CMakeFiles/objrep_core.dir/dfs.cc.o" "gcc" "src/core/CMakeFiles/objrep_core.dir/dfs.cc.o.d"
  "/root/repo/src/core/dfs_cache.cc" "src/core/CMakeFiles/objrep_core.dir/dfs_cache.cc.o" "gcc" "src/core/CMakeFiles/objrep_core.dir/dfs_cache.cc.o.d"
  "/root/repo/src/core/dfs_clust.cc" "src/core/CMakeFiles/objrep_core.dir/dfs_clust.cc.o" "gcc" "src/core/CMakeFiles/objrep_core.dir/dfs_clust.cc.o.d"
  "/root/repo/src/core/dsm.cc" "src/core/CMakeFiles/objrep_core.dir/dsm.cc.o" "gcc" "src/core/CMakeFiles/objrep_core.dir/dsm.cc.o.d"
  "/root/repo/src/core/experiment_config.cc" "src/core/CMakeFiles/objrep_core.dir/experiment_config.cc.o" "gcc" "src/core/CMakeFiles/objrep_core.dir/experiment_config.cc.o.d"
  "/root/repo/src/core/hierarchy.cc" "src/core/CMakeFiles/objrep_core.dir/hierarchy.cc.o" "gcc" "src/core/CMakeFiles/objrep_core.dir/hierarchy.cc.o.d"
  "/root/repo/src/core/procedural.cc" "src/core/CMakeFiles/objrep_core.dir/procedural.cc.o" "gcc" "src/core/CMakeFiles/objrep_core.dir/procedural.cc.o.d"
  "/root/repo/src/core/runner.cc" "src/core/CMakeFiles/objrep_core.dir/runner.cc.o" "gcc" "src/core/CMakeFiles/objrep_core.dir/runner.cc.o.d"
  "/root/repo/src/core/smart.cc" "src/core/CMakeFiles/objrep_core.dir/smart.cc.o" "gcc" "src/core/CMakeFiles/objrep_core.dir/smart.cc.o.d"
  "/root/repo/src/core/strategy.cc" "src/core/CMakeFiles/objrep_core.dir/strategy.cc.o" "gcc" "src/core/CMakeFiles/objrep_core.dir/strategy.cc.o.d"
  "/root/repo/src/core/value_rep.cc" "src/core/CMakeFiles/objrep_core.dir/value_rep.cc.o" "gcc" "src/core/CMakeFiles/objrep_core.dir/value_rep.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/objstore/CMakeFiles/objrep_objstore.dir/DependInfo.cmake"
  "/root/repo/src/relational/CMakeFiles/objrep_relational.dir/DependInfo.cmake"
  "/root/repo/src/access/CMakeFiles/objrep_access.dir/DependInfo.cmake"
  "/root/repo/src/storage/CMakeFiles/objrep_storage.dir/DependInfo.cmake"
  "/root/repo/src/obs/CMakeFiles/objrep_obs.dir/DependInfo.cmake"
  "/root/repo/src/record/CMakeFiles/objrep_record.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
