# Empty dependencies file for objrep_core.
# This may be replaced when dependencies are built.
