file(REMOVE_RECURSE
  "libobjrep_core.a"
)
