// DFSCLUST (paper §3.3): depth-first processing over ClusterRel.
//
// A retrieve's OID range maps to a contiguous ClusterRel scan (cluster# ==
// parent key), which delivers each qualifying parent *and* the subobjects
// physically clustered with it — this interleaving is the ParCost
// inflation of Figure 5(a). Subobjects whose unit is clustered elsewhere
// (non-owning parents; fragmented units when OverlapFactor > 1) are
// fetched by random access through the ISAM index on ClusterRel.OID.
#include <unordered_map>

#include "core/strategies_impl.h"
#include "obs/io_context.h"
#include "objstore/rows.h"
#include "objstore/unit_blob.h"
#include "storage/fault_injector.h"

namespace objrep {
namespace internal {

namespace {

/// Projects the retrieve attr out of a ClusterRel record.
Status ClusterRet(const Schema& schema, std::string_view raw, int attr_index,
                  int32_t* out) {
  Value v;
  OBJREP_RETURN_NOT_OK(DecodeField(
      schema, raw, kClusterRet1 + static_cast<size_t>(attr_index), &v));
  *out = v.as_int32();
  return Status::OK();
}

}  // namespace

Status DfsClustStrategy::ExecuteRetrieve(const Query& q,
                                         RetrieveResult* out) {
  CostBreakdown& cost = out->cost;
  IoCounters start = db_->disk->counters();
  const Schema& schema = db_->cluster_rel->schema();
  // Everything is ClusterRel traffic except the remote probes, which
  // re-tag kIndexProbe below.
  ScopedIoTag io_tag(IoTag::kClusterScan);

  struct Group {
    std::vector<Oid> unit;
    std::unordered_map<uint64_t, int32_t> local;  // packed OID -> attr value
    bool active = false;
  };
  Group group;

  auto finish_group = [&]() -> Status {
    if (!group.active) return Status::OK();
    for (const Oid& oid : group.unit) {
      auto it = group.local.find(oid.Packed());
      if (it != group.local.end()) {
        out->values.push_back(it->second);
        out->oids.push_back(oid);
        continue;
      }
      // Clustered elsewhere: ISAM probe, then random ClusterRel access.
      IoBracket child_bracket(db_->disk.get(), &cost.child_io);
      ScopedIoTag probe_tag(IoTag::kIndexProbe);
      uint64_t cluster_key;
      Status s = db_->cluster_oid_index.Lookup(oid.Packed(), &cluster_key);
      if (!s.ok()) {
        return Status::Corruption("subobject missing from cluster index");
      }
      std::string raw;
      OBJREP_RETURN_NOT_OK(db_->cluster_rel->tree().Get(cluster_key, &raw));
      int32_t v;
      OBJREP_RETURN_NOT_OK(ClusterRet(schema, raw, q.attr_index, &v));
      out->values.push_back(v);
      out->oids.push_back(oid);
    }
    group = Group{};
    return Status::OK();
  };

  BPlusTree::Iterator it = db_->cluster_rel->tree().NewIterator();
  const uint64_t end_key =
      ClusterKey(static_cast<uint64_t>(q.lo_parent) + q.num_top, 0);
  // The retrieve maps to one contiguous ClusterRel extent — the textbook
  // read-ahead target. Fan 0 = the full readahead budget: staged pages
  // cannot be evicted, so the window survives the remote (ISAM + random
  // ClusterRel) probes done between scan leaves (DESIGN.md §9).
  OBJREP_RETURN_NOT_OK(
      it.SeekRange(ClusterKey(q.lo_parent, 0), end_key - 1, /*fan=*/0));
  while (it.valid() && it.key() < end_key) {
    uint64_t key = it.key();
    if (ClusterSeqOf(key) == 0) {
      // Parent record: close the previous group, open a new one.
      OBJREP_RETURN_NOT_OK(finish_group());
      Value children;
      OBJREP_RETURN_NOT_OK(
          DecodeField(schema, it.value(), kClusterChildren, &children));
      group.unit = DecodeOidList(children.as_string());
      group.active = true;
    } else {
      // Locally clustered subobject of the current group.
      Value oid_val;
      OBJREP_RETURN_NOT_OK(
          DecodeField(schema, it.value(), kClusterOid, &oid_val));
      int32_t v;
      OBJREP_RETURN_NOT_OK(ClusterRet(schema, it.value(), q.attr_index, &v));
      group.local.emplace(static_cast<uint64_t>(oid_val.as_int64()), v);
    }
    OBJREP_RETURN_NOT_OK(it.Next());
  }
  OBJREP_RETURN_NOT_OK(finish_group());
  uint64_t total = (db_->disk->counters() - start).total();
  cost.par_io = total - cost.child_io;
  return Status::OK();
}

Status DfsClustCacheStrategy::ExecuteRetrieve(const Query& q,
                                              RetrieveResult* out) {
  CostBreakdown& cost = out->cost;
  IoCounters start = db_->disk->counters();
  const Schema& schema = db_->cluster_rel->schema();
  // Cache traffic self-tags inside CacheManager; remote probes re-tag
  // kIndexProbe below; the rest is the ClusterRel extent scan.
  ScopedIoTag io_tag(IoTag::kClusterScan);

  struct Group {
    std::vector<Oid> unit;
    std::unordered_map<uint64_t, std::string> local;  // packed OID -> raw row
    bool active = false;
  };
  Group group;

  auto project = [&](std::string_view raw) -> Status {
    int32_t v;
    OBJREP_RETURN_NOT_OK(ClusterRet(schema, raw, q.attr_index, &v));
    out->values.push_back(v);
    return Status::OK();
  };

  auto finish_group = [&]() -> Status {
    if (!group.active) return Status::OK();
    // ClusterRel-format blobs live in their own key space: DFSCACHE/SMART
    // cache the same units as child-relation records under the unsalted
    // key, and each side's decoder misreads the other's encoding.
    uint64_t hashkey = CacheManager::HashKeyOf(
        group.unit, CacheManager::BlobFormat::kClusterRecords);
    {
      // Atomic probe+fetch (see dfs_cache.cc): concurrent eviction must
      // read as a miss, not a NotFound error. On a hit the scan already
      // read the local rows for nothing — the structural redundancy of
      // combining the two approaches.
      IoBracket cache_bracket(db_->disk.get(), &cost.cache_io);
      bool found = false;
      std::string blob;
      OBJREP_RETURN_NOT_OK(db_->cache->TryFetchUnit(hashkey, &blob,
                                                    &found));
      if (found) {
        std::vector<std::string_view> records;
        OBJREP_RETURN_NOT_OK(DecodeUnitBlob(blob, &records));
        for (std::string_view raw : records) {
          OBJREP_RETURN_NOT_OK(project(raw));
        }
        out->oids.insert(out->oids.end(), group.unit.begin(),
                         group.unit.end());
        group = Group{};
        return Status::OK();
      }
    }
    // Miss: assemble the unit from local rows + remote fetches, project,
    // then maintain the cache.
    std::vector<std::string> raws;
    raws.reserve(group.unit.size());
    for (const Oid& oid : group.unit) {
      auto it = group.local.find(oid.Packed());
      if (it != group.local.end()) {
        raws.push_back(it->second);
        continue;
      }
      IoBracket child_bracket(db_->disk.get(), &cost.child_io);
      ScopedIoTag probe_tag(IoTag::kIndexProbe);
      uint64_t cluster_key;
      Status s = db_->cluster_oid_index.Lookup(oid.Packed(), &cluster_key);
      if (!s.ok()) {
        return Status::Corruption("subobject missing from cluster index");
      }
      std::string raw;
      OBJREP_RETURN_NOT_OK(db_->cluster_rel->tree().Get(cluster_key, &raw));
      raws.push_back(std::move(raw));
    }
    for (const std::string& raw : raws) {
      OBJREP_RETURN_NOT_OK(project(raw));
    }
    out->oids.insert(out->oids.end(), group.unit.begin(), group.unit.end());
    IoBracket cache_bracket(db_->disk.get(), &cost.cache_io);
    OBJREP_RETURN_NOT_OK(
        db_->cache->InsertUnit(hashkey, group.unit, EncodeUnitBlob(raws)));
    group = Group{};
    return Status::OK();
  };

  BPlusTree::Iterator it = db_->cluster_rel->tree().NewIterator();
  const uint64_t end_key =
      ClusterKey(static_cast<uint64_t>(q.lo_parent) + q.num_top, 0);
  OBJREP_RETURN_NOT_OK(
      it.SeekRange(ClusterKey(q.lo_parent, 0), end_key - 1, /*fan=*/0));
  while (it.valid() && it.key() < end_key) {
    if (ClusterSeqOf(it.key()) == 0) {
      OBJREP_RETURN_NOT_OK(finish_group());
      Value children;
      OBJREP_RETURN_NOT_OK(
          DecodeField(schema, it.value(), kClusterChildren, &children));
      group.unit = DecodeOidList(children.as_string());
      group.active = true;
    } else {
      Value oid_val;
      OBJREP_RETURN_NOT_OK(
          DecodeField(schema, it.value(), kClusterOid, &oid_val));
      group.local.emplace(static_cast<uint64_t>(oid_val.as_int64()),
                          std::string(it.value()));
    }
    OBJREP_RETURN_NOT_OK(it.Next());
  }
  OBJREP_RETURN_NOT_OK(finish_group());
  uint64_t total = (db_->disk->counters() - start).total();
  cost.par_io = total - cost.child_io - cost.cache_io;
  return Status::OK();
}

Status DfsClustCacheStrategy::ExecuteUpdate(const Query& q) {
  // Clustered update translation plus I-lock invalidation: both
  // maintenance bills, another §3.4 redundancy.
  ScopedIoTag tag(IoTag::kUpdate);  // invalidation re-tags kCacheMaint
  const Schema& schema = db_->cluster_rel->schema();
  for (const Oid& oid : q.update_targets) {
    uint64_t cluster_key;
    Status s = db_->cluster_oid_index.Lookup(oid.Packed(), &cluster_key);
    if (!s.ok()) {
      return Status::Corruption("update target missing from cluster index");
    }
    std::vector<Value> values;
    OBJREP_RETURN_NOT_OK(db_->cluster_rel->Get(cluster_key, &values));
    values[kClusterRet1] = Value(q.new_ret1);
    std::string encoded;
    OBJREP_RETURN_NOT_OK(EncodeRecord(schema, values, &encoded));
    OBJREP_RETURN_NOT_OK(
        db_->cluster_rel->tree().UpdateInPlace(cluster_key, encoded));
    // Crash point between the clustered write and its cache invalidation:
    // without the enclosing transaction the cache could outlive the page
    // image that made it stale.
    OBJREP_RETURN_NOT_OK(
        db_->disk->fault_injector()->MaybeCrash("clust.update.mid"));
    OBJREP_RETURN_NOT_OK(db_->cache->InvalidateSubobject(oid));
  }
  return Status::OK();
}

Status DfsClustStrategy::ExecuteUpdate(const Query& q) {
  // Updates are "translated into equivalent queries on ClusterRel"
  // (paper §4 [2]): locate the subobject through the ISAM index and modify
  // it in place wherever it is clustered.
  ScopedIoTag tag(IoTag::kUpdate);
  const Schema& schema = db_->cluster_rel->schema();
  for (const Oid& oid : q.update_targets) {
    uint64_t cluster_key;
    Status s = db_->cluster_oid_index.Lookup(oid.Packed(), &cluster_key);
    if (!s.ok()) {
      return Status::Corruption("update target missing from cluster index");
    }
    std::vector<Value> values;
    OBJREP_RETURN_NOT_OK(db_->cluster_rel->Get(cluster_key, &values));
    values[kClusterRet1] = Value(q.new_ret1);
    std::string encoded;
    OBJREP_RETURN_NOT_OK(EncodeRecord(schema, values, &encoded));
    OBJREP_RETURN_NOT_OK(
        db_->cluster_rel->tree().UpdateInPlace(cluster_key, encoded));
    OBJREP_RETURN_NOT_OK(
        db_->disk->fault_injector()->MaybeCrash("clust.update.mid"));
  }
  return Status::OK();
}

}  // namespace internal
}  // namespace objrep
