#include "core/dsm.h"

#include <cstring>
#include <map>

#include "objstore/rows.h"
#include "relational/external_sort.h"
#include "relational/merge_join.h"
#include "relational/temp_file.h"

namespace objrep {

namespace {

std::string EncodeI32(int32_t v) {
  std::string s(4, '\0');
  std::memcpy(s.data(), &v, 4);
  return s;
}

int32_t DecodeI32(std::string_view s) {
  OBJREP_CHECK(s.size() == 4);
  int32_t v;
  std::memcpy(&v, s.data(), 4);
  return v;
}

}  // namespace

Status DsmDatabase::Build(const ComplexDatabase& src,
                          std::unique_ptr<DsmDatabase>* out) {
  if (src.child_rels.size() != 1) {
    return Status::NotSupported("DSM build models a single child relation");
  }
  auto db = std::unique_ptr<DsmDatabase>(new DsmDatabase());
  db->disk_ = std::make_unique<DiskManager>();
  db->pool_ =
      std::make_unique<BufferPool>(db->disk_.get(), src.spec.buffer_pages);
  db->size_unit_ = src.spec.size_unit;

  // ParentRel is unchanged (the OID representation's referencing side).
  db->parent_rel_ = Table("ParentRel", 1,
                          MakeParentSchema(src.parent_dummy_width));
  {
    std::vector<std::pair<uint64_t, std::vector<Value>>> rows;
    rows.reserve(src.spec.num_parents);
    for (uint32_t p = 0; p < src.spec.num_parents; ++p) {
      std::vector<Value> vals;
      OBJREP_RETURN_NOT_OK(src.parent_rel->Get(p, &vals));
      rows.emplace_back(p, std::move(vals));
    }
    OBJREP_RETURN_NOT_OK(
        db->parent_rel_.BulkLoad(db->pool_.get(), rows, src.spec.fill_factor));
  }

  // Decompose ChildRel into binary relations, one per attribute.
  const auto& child_rows = src.child_rows[0];
  for (int attr = 0; attr < 3; ++attr) {
    std::vector<BPlusTree::Entry> entries;
    entries.reserve(child_rows.size());
    for (const ChildRow& row : child_rows) {
      int32_t v = attr == 0 ? row.ret1 : attr == 1 ? row.ret2 : row.ret3;
      entries.push_back(BPlusTree::Entry{row.oid.key, EncodeI32(v)});
    }
    OBJREP_RETURN_NOT_OK(BPlusTree::BulkLoad(db->pool_.get(), entries,
                                             src.spec.fill_factor,
                                             &db->columns_[attr]));
  }
  {
    std::vector<BPlusTree::Entry> entries;
    entries.reserve(child_rows.size());
    std::string pad(src.child_dummy_width, 'x');
    for (const ChildRow& row : child_rows) {
      entries.push_back(BPlusTree::Entry{row.oid.key, pad});
    }
    OBJREP_RETURN_NOT_OK(BPlusTree::BulkLoad(db->pool_.get(), entries,
                                             src.spec.fill_factor,
                                             &db->dummy_column_));
  }

  OBJREP_RETURN_NOT_OK(db->pool_->FlushAll());
  db->disk_->ResetCounters();
  *out = std::move(db);
  return Status::OK();
}

Status DsmDatabase::RetrieveDfs(const Query& q, RetrieveResult* out) {
  IoCounters start = disk_->counters();
  const BPlusTree& column = columns_[q.attr_index];
  BPlusTree::Iterator it = parent_rel_.tree().NewIterator();
  OBJREP_RETURN_NOT_OK(it.Seek(q.lo_parent));
  const uint64_t end = static_cast<uint64_t>(q.lo_parent) + q.num_top;
  while (it.valid() && it.key() < end) {
    Value children;
    OBJREP_RETURN_NOT_OK(DecodeField(parent_rel_.schema(), it.value(),
                                     kParentChildren, &children));
    IoBracket child_bracket(disk_.get(), &out->cost.child_io);
    for (const Oid& oid : DecodeOidList(children.as_string())) {
      std::string raw;
      OBJREP_RETURN_NOT_OK(column.Get(oid.key, &raw));
      out->values.push_back(DecodeI32(raw));
    }
    OBJREP_RETURN_NOT_OK(it.Next());
  }
  out->cost.par_io =
      (disk_->counters() - start).total() - out->cost.child_io;
  return Status::OK();
}

Status DsmDatabase::RetrieveBfs(const Query& q, RetrieveResult* out) {
  CostBreakdown& cost = out->cost;
  IoCounters start = disk_->counters();
  TempFile temp;
  OBJREP_RETURN_NOT_OK(TempFile::Create(pool_.get(), &temp));
  {
    BPlusTree::Iterator it = parent_rel_.tree().NewIterator();
    OBJREP_RETURN_NOT_OK(it.Seek(q.lo_parent));
    const uint64_t end = static_cast<uint64_t>(q.lo_parent) + q.num_top;
    while (it.valid() && it.key() < end) {
      Value children;
      OBJREP_RETURN_NOT_OK(DecodeField(parent_rel_.schema(), it.value(),
                                       kParentChildren, &children));
      IoBracket temp_bracket(disk_.get(), &cost.temp_io);
      for (const Oid& oid : DecodeOidList(children.as_string())) {
        OBJREP_RETURN_NOT_OK(temp.Append(oid.key));
      }
      OBJREP_RETURN_NOT_OK(it.Next());
    }
  }
  cost.par_io = (disk_->counters() - start).total() - cost.temp_io;
  temp.Seal();
  TempFile sorted;
  {
    IoBracket temp_bracket(disk_.get(), &cost.temp_io);
    OBJREP_RETURN_NOT_OK(
        ExternalSort(pool_.get(), temp, SortOptions{}, &sorted));
  }
  IoBracket child_bracket(disk_.get(), &cost.child_io);
  return MergeJoinSortedKeys(
      sorted.Read(), columns_[q.attr_index],
      [&](uint64_t /*key*/, std::string_view raw) -> Status {
        out->values.push_back(DecodeI32(raw));
        return Status::OK();
      });
}

Status DsmDatabase::RetrieveReconstruct(const Query& q, RetrieveResult* out) {
  IoCounters start = disk_->counters();
  BPlusTree::Iterator it = parent_rel_.tree().NewIterator();
  OBJREP_RETURN_NOT_OK(it.Seek(q.lo_parent));
  const uint64_t end = static_cast<uint64_t>(q.lo_parent) + q.num_top;
  while (it.valid() && it.key() < end) {
    Value children;
    OBJREP_RETURN_NOT_OK(DecodeField(parent_rel_.schema(), it.value(),
                                     kParentChildren, &children));
    IoBracket child_bracket(disk_.get(), &out->cost.child_io);
    for (const Oid& oid : DecodeOidList(children.as_string())) {
      // person.all: every column participates, including the pad bytes.
      for (auto& column : columns_) {
        std::string raw;
        OBJREP_RETURN_NOT_OK(column.Get(oid.key, &raw));
        out->values.push_back(DecodeI32(raw));
      }
      std::string pad;
      OBJREP_RETURN_NOT_OK(dummy_column_.Get(oid.key, &pad));
    }
    OBJREP_RETURN_NOT_OK(it.Next());
  }
  out->cost.par_io =
      (disk_->counters() - start).total() - out->cost.child_io;
  return Status::OK();
}

Status DsmDatabase::ExecuteUpdate(const Query& q) {
  for (const Oid& oid : q.update_targets) {
    OBJREP_RETURN_NOT_OK(
        columns_[0].UpdateInPlace(oid.key, EncodeI32(q.new_ret1)));
  }
  return Status::OK();
}

}  // namespace objrep
