#include "core/procedural.h"

#include <algorithm>
#include <numeric>

#include "objstore/unit_blob.h"
#include "util/hash.h"
#include "util/random.h"

namespace objrep {

namespace {

// ProcChild: OID, ret1..3, tag (the attribute stored queries select on),
// dummy pad. ProcParent: OID, ret1..3, dummy pad, query descriptor, and an
// inside-cache slot.
enum ProcChildField : size_t {
  kPcOid = 0,
  kPcRet1 = 1,
  kPcRet2 = 2,
  kPcRet3 = 3,
  kPcTag = 4,
  kPcDummy = 5,
};

enum ProcParentField : size_t {
  kPpOid = 0,
  kPpRet1 = 1,
  kPpRet2 = 2,
  kPpRet3 = 3,
  kPpDummy = 4,
  kPpQuery = 5,
  kPpCached = 6,
};

Schema ProcChildSchema(uint32_t dummy_width) {
  return Schema({
      {"OID", FieldType::kInt64, 0},
      {"ret1", FieldType::kInt32, 0},
      {"ret2", FieldType::kInt32, 0},
      {"ret3", FieldType::kInt32, 0},
      {"tag", FieldType::kInt32, 0},
      {"dummy", FieldType::kChar, dummy_width},
  });
}

Schema ProcParentSchema(uint32_t dummy_width) {
  return Schema({
      {"OID", FieldType::kInt64, 0},
      {"ret1", FieldType::kInt32, 0},
      {"ret2", FieldType::kInt32, 0},
      {"ret3", FieldType::kInt32, 0},
      {"dummy", FieldType::kChar, dummy_width},
      {"query", FieldType::kBytes, 0},
      {"cached", FieldType::kBytes, 0},
  });
}

// Stored query descriptor: "retrieve (ChildRel.all) where ChildRel.tag = t".
std::string EncodeQueryDescriptor(uint32_t tag) {
  std::string out(8, '\0');
  uint32_t rel = 1;
  std::memcpy(out.data(), &rel, 4);
  std::memcpy(out.data() + 4, &tag, 4);
  return out;
}

uint32_t DecodeQueryTag(std::string_view raw) {
  OBJREP_CHECK(raw.size() == 8);
  uint32_t tag;
  std::memcpy(&tag, raw.data() + 4, 4);
  return tag;
}

/// Query-identity hashkey for the outside value cache.
uint64_t QueryHashKey(uint32_t tag) { return Mix64(0x9c0ffee0u + tag); }

/// Separate hashkey space for cached OID lists, so a database could carry
/// both cached representations at once.
uint64_t OidListHashKey(uint32_t tag) {
  return Mix64(0x01d11570ULL + tag);
}

/// Cached-OID-list payload: the result's child keys, packed u32 LE.
std::string EncodeKeyList(const std::vector<uint32_t>& keys) {
  std::string out;
  out.reserve(keys.size() * 4);
  for (uint32_t k : keys) {
    out.append(reinterpret_cast<const char*>(&k), 4);
  }
  return out;
}

std::vector<uint32_t> DecodeKeyList(std::string_view raw) {
  std::vector<uint32_t> keys;
  keys.reserve(raw.size() / 4);
  for (size_t i = 0; i + 4 <= raw.size(); i += 4) {
    uint32_t k;
    std::memcpy(&k, raw.data() + i, 4);
    keys.push_back(k);
  }
  return keys;
}

}  // namespace

const char* ProcStrategyName(ProcStrategy s) {
  switch (s) {
    case ProcStrategy::kExec: return "EXEC";
    case ProcStrategy::kExecIndexed: return "EXEC-INDEXED";
    case ProcStrategy::kCacheOutside: return "CACHE-OUTSIDE";
    case ProcStrategy::kCacheOids: return "CACHE-OIDS";
    case ProcStrategy::kCacheInside: return "CACHE-INSIDE";
  }
  return "?";
}

Status ProceduralDatabase::Build(const DatabaseSpec& spec,
                                 std::unique_ptr<ProceduralDatabase>* out) {
  OBJREP_RETURN_NOT_OK(spec.Validate());
  if (spec.overlap_factor != 1) {
    return Status::InvalidArgument(
        "procedural units are defined by a predicate; they cannot overlap");
  }
  if (spec.num_child_rels != 1) {
    return Status::NotSupported(
        "procedural representation models a single child relation");
  }
  auto db = std::unique_ptr<ProceduralDatabase>(new ProceduralDatabase());
  db->spec_ = spec;
  db->disk_ = std::make_unique<DiskManager>();
  db->pool_ = std::make_unique<BufferPool>(db->disk_.get(), spec.buffer_pages);
  Rng rng(spec.seed);

  const uint32_t num_children = spec.num_children_total();
  const uint32_t num_groups = spec.num_units();
  const uint32_t child_dummy =
      spec.child_tuple_bytes > 30 ? spec.child_tuple_bytes - 30 : 1;
  const uint32_t parent_dummy =
      spec.parent_tuple_bytes > 36 ? spec.parent_tuple_bytes - 36 : 1;
  db->child_rel_ = Table("ProcChildRel", 1, ProcChildSchema(child_dummy));
  db->parent_rel_ = Table("ProcParentRel", 2, ProcParentSchema(parent_dummy));

  // Random partition of children into groups of SizeUnit.
  std::vector<uint32_t> keys(num_children);
  std::iota(keys.begin(), keys.end(), 0);
  rng.Shuffle(&keys);
  db->groups_.resize(num_groups);
  std::vector<uint32_t> tag_of_child(num_children);
  for (uint32_t g = 0; g < num_groups; ++g) {
    for (uint32_t j = 0; j < spec.size_unit; ++j) {
      uint32_t k = keys[g * spec.size_unit + j];
      db->groups_[g].push_back(k);
      tag_of_child[k] = g;
    }
  }

  // Bulk load ChildRel.
  {
    std::vector<std::pair<uint64_t, std::vector<Value>>> rows;
    rows.reserve(num_children);
    for (uint32_t k = 0; k < num_children; ++k) {
      rows.emplace_back(
          k, std::vector<Value>{
                 Value(static_cast<int64_t>(Oid{1, k}.Packed())),
                 Value(static_cast<int32_t>(rng.Uniform(1000000))),
                 Value(static_cast<int32_t>(rng.Uniform(1000000))),
                 Value(static_cast<int32_t>(rng.Uniform(1000000))),
                 Value(static_cast<int32_t>(tag_of_child[k])),
                 Value(std::string(child_dummy, 'x')),
             });
    }
    OBJREP_RETURN_NOT_OK(
        db->child_rel_.BulkLoad(db->pool_.get(), rows, spec.fill_factor));
  }

  // Assign each group to exactly UseFactor parents, then bulk load.
  std::vector<uint32_t> assignment;
  assignment.reserve(spec.num_parents);
  for (uint32_t g = 0; g < num_groups; ++g) {
    for (uint32_t i = 0; i < spec.use_factor; ++i) assignment.push_back(g);
  }
  rng.Shuffle(&assignment);
  db->group_of_parent_ = std::move(assignment);
  {
    std::vector<std::pair<uint64_t, std::vector<Value>>> rows;
    rows.reserve(spec.num_parents);
    for (uint32_t p = 0; p < spec.num_parents; ++p) {
      rows.emplace_back(
          p, std::vector<Value>{
                 Value(static_cast<int64_t>(Oid{2, p}.Packed())),
                 Value(static_cast<int32_t>(rng.Uniform(1000000))),
                 Value(static_cast<int32_t>(rng.Uniform(1000000))),
                 Value(static_cast<int32_t>(rng.Uniform(1000000))),
                 Value(std::string(parent_dummy, 'x')),
                 Value(EncodeQueryDescriptor(db->group_of_parent_[p])),
                 Value(std::string()),  // inside-cache slot, empty
             });
    }
    OBJREP_RETURN_NOT_OK(
        db->parent_rel_.BulkLoad(db->pool_.get(), rows, spec.fill_factor));
  }

  if (spec.build_cache) {
    db->outside_cache_ = std::make_unique<CacheManager>(
        db->pool_.get(), spec.size_cache, spec.cache_buckets,
        spec.cache_admission);
    OBJREP_RETURN_NOT_OK(db->outside_cache_->Init());
  }

  if (spec.build_tag_index) {
    std::vector<SecondaryIndex::Entry> entries;
    entries.reserve(num_children);
    for (uint32_t k = 0; k < num_children; ++k) {
      entries.push_back(SecondaryIndex::Entry{
          static_cast<int32_t>(tag_of_child[k]), k});
    }
    OBJREP_RETURN_NOT_OK(SecondaryIndex::Build(
        db->pool_.get(), std::move(entries), &db->tag_index_,
        spec.fill_factor));
    db->has_tag_index_ = true;
  }

  OBJREP_RETURN_NOT_OK(db->pool_->FlushAll());
  db->disk_->ResetCounters();
  *out = std::move(db);
  return Status::OK();
}

Status ProceduralDatabase::RunStoredQuery(uint32_t tag,
                                          std::vector<std::string>* records) {
  // Selection on the non-key `tag` attribute: full relation scan, exactly
  // like the paper's person.age predicate without an index.
  records->clear();
  BPlusTree::Iterator it = child_rel_.tree().NewIterator();
  OBJREP_RETURN_NOT_OK(it.SeekToFirst());
  const Schema& schema = child_rel_.schema();
  while (it.valid()) {
    Value v;
    OBJREP_RETURN_NOT_OK(DecodeField(schema, it.value(), kPcTag, &v));
    if (static_cast<uint32_t>(v.as_int32()) == tag) {
      records->emplace_back(it.value());
    }
    OBJREP_RETURN_NOT_OK(it.Next());
  }
  return Status::OK();
}

Status ProceduralDatabase::RunStoredQueryIndexed(
    uint32_t tag, std::vector<std::string>* records) {
  records->clear();
  std::vector<uint32_t> keys;
  OBJREP_RETURN_NOT_OK(
      tag_index_.LookupEqual(static_cast<int32_t>(tag), &keys));
  for (uint32_t k : keys) {
    std::string raw;
    OBJREP_RETURN_NOT_OK(child_rel_.tree().Get(k, &raw));
    records->push_back(std::move(raw));
  }
  return Status::OK();
}

Status ProceduralDatabase::ExecuteRetrieve(const Query& q,
                                           ProcStrategy strategy,
                                           RetrieveResult* out) {
  if ((strategy == ProcStrategy::kCacheOutside ||
       strategy == ProcStrategy::kCacheOids) &&
      outside_cache_ == nullptr) {
    return Status::InvalidArgument(
        "outside caching requires spec.build_cache");
  }
  if (strategy == ProcStrategy::kExecIndexed && !has_tag_index_) {
    return Status::InvalidArgument(
        "indexed execution requires spec.build_tag_index");
  }
  CostBreakdown& cost = out->cost;
  IoCounters start = disk_->counters();
  const Schema& pschema = parent_rel_.schema();
  const Schema& cschema = child_rel_.schema();

  auto project_records = [&](const std::vector<std::string_view>& records)
      -> Status {
    for (std::string_view raw : records) {
      Value v;
      OBJREP_RETURN_NOT_OK(DecodeField(
          cschema, raw, kPcRet1 + static_cast<size_t>(q.attr_index), &v));
      out->values.push_back(v.as_int32());
    }
    return Status::OK();
  };

  // The scan collects the work first (tag per parent and, for inside
  // caching, any embedded blob); rewrites of parent tuples happen after the
  // iterator moves on, so the tree is never mutated under a live cursor.
  struct ParentWork {
    uint32_t key;
    uint32_t tag;
    bool inside_hit;
    std::string blob;
  };
  std::vector<ParentWork> work;
  {
    BPlusTree::Iterator it = parent_rel_.tree().NewIterator();
    OBJREP_RETURN_NOT_OK(it.Seek(q.lo_parent));
    const uint64_t end = static_cast<uint64_t>(q.lo_parent) + q.num_top;
    while (it.valid() && it.key() < end) {
      ParentWork w;
      w.key = static_cast<uint32_t>(it.key());
      Value qd;
      OBJREP_RETURN_NOT_OK(DecodeField(pschema, it.value(), kPpQuery, &qd));
      w.tag = DecodeQueryTag(qd.as_string());
      w.inside_hit = false;
      if (strategy == ProcStrategy::kCacheInside) {
        Value cached;
        OBJREP_RETURN_NOT_OK(
            DecodeField(pschema, it.value(), kPpCached, &cached));
        if (!cached.as_string().empty()) {
          w.inside_hit = true;
          w.blob = cached.as_string();
        }
      }
      work.push_back(std::move(w));
      OBJREP_RETURN_NOT_OK(it.Next());
    }
  }
  cost.par_io = (disk_->counters() - start).total();

  for (ParentWork& w : work) {
    switch (strategy) {
      case ProcStrategy::kExec:
      case ProcStrategy::kExecIndexed: {
        IoBracket child_bracket(disk_.get(), &cost.child_io);
        std::vector<std::string> records;
        if (strategy == ProcStrategy::kExecIndexed) {
          OBJREP_RETURN_NOT_OK(RunStoredQueryIndexed(w.tag, &records));
        } else {
          OBJREP_RETURN_NOT_OK(RunStoredQuery(w.tag, &records));
        }
        std::vector<std::string_view> views(records.begin(), records.end());
        OBJREP_RETURN_NOT_OK(project_records(views));
        break;
      }
      case ProcStrategy::kCacheOutside: {
        uint64_t hk = QueryHashKey(w.tag);
        if (outside_cache_->IsCached(hk)) {
          IoBracket cache_bracket(disk_.get(), &cost.cache_io);
          std::string blob;
          OBJREP_RETURN_NOT_OK(outside_cache_->FetchUnit(hk, &blob));
          std::vector<std::string_view> records;
          OBJREP_RETURN_NOT_OK(DecodeUnitBlob(blob, &records));
          OBJREP_RETURN_NOT_OK(project_records(records));
        } else {
          std::vector<std::string> records;
          {
            IoBracket child_bracket(disk_.get(), &cost.child_io);
            OBJREP_RETURN_NOT_OK(RunStoredQuery(w.tag, &records));
          }
          std::vector<std::string_view> views(records.begin(),
                                              records.end());
          OBJREP_RETURN_NOT_OK(project_records(views));
          // Maintain the cache and drop I-locks on the group's members.
          std::vector<Oid> members;
          for (std::string_view raw : views) {
            Value oid_val;
            OBJREP_RETURN_NOT_OK(
                DecodeField(cschema, raw, kPcOid, &oid_val));
            members.push_back(
                Oid::FromPacked(static_cast<uint64_t>(oid_val.as_int64())));
          }
          IoBracket cache_bracket(disk_.get(), &cost.cache_io);
          OBJREP_RETURN_NOT_OK(
              outside_cache_->InsertUnit(hk, members, EncodeUnitBlob(records)));
        }
        break;
      }
      case ProcStrategy::kCacheOids: {
        uint64_t hk = OidListHashKey(w.tag);
        if (outside_cache_->IsCached(hk)) {
          // Hit: the cached OID list avoids the scan; the subobject
          // *values* still cost one probe each (§2.3: "Object Identifiers
          // capture the identities of the subobjects, but not their
          // contents").
          std::string blob;
          {
            IoBracket cache_bracket(disk_.get(), &cost.cache_io);
            OBJREP_RETURN_NOT_OK(outside_cache_->FetchUnit(hk, &blob));
          }
          IoBracket child_bracket(disk_.get(), &cost.child_io);
          for (uint32_t key : DecodeKeyList(blob)) {
            std::string raw;
            OBJREP_RETURN_NOT_OK(child_rel_.tree().Get(key, &raw));
            Value v;
            OBJREP_RETURN_NOT_OK(DecodeField(
                cschema, raw, kPcRet1 + static_cast<size_t>(q.attr_index),
                &v));
            out->values.push_back(v.as_int32());
          }
          break;
        }
        std::vector<std::string> records;
        {
          IoBracket child_bracket(disk_.get(), &cost.child_io);
          OBJREP_RETURN_NOT_OK(RunStoredQuery(w.tag, &records));
        }
        std::vector<std::string_view> views(records.begin(), records.end());
        OBJREP_RETURN_NOT_OK(project_records(views));
        std::vector<uint32_t> keys;
        std::vector<Oid> members;
        for (std::string_view raw : views) {
          Value oid_val;
          OBJREP_RETURN_NOT_OK(DecodeField(cschema, raw, kPcOid, &oid_val));
          Oid oid = Oid::FromPacked(static_cast<uint64_t>(oid_val.as_int64()));
          keys.push_back(oid.key);
          members.push_back(oid);
        }
        IoBracket cache_bracket(disk_.get(), &cost.cache_io);
        OBJREP_RETURN_NOT_OK(
            outside_cache_->InsertUnit(hk, members, EncodeKeyList(keys)));
        break;
      }
      case ProcStrategy::kCacheInside: {
        if (w.inside_hit) {
          std::vector<std::string_view> records;
          OBJREP_RETURN_NOT_OK(DecodeUnitBlob(w.blob, &records));
          OBJREP_RETURN_NOT_OK(project_records(records));
          break;
        }
        std::vector<std::string> records;
        {
          IoBracket child_bracket(disk_.get(), &cost.child_io);
          OBJREP_RETURN_NOT_OK(RunStoredQuery(w.tag, &records));
        }
        std::vector<std::string_view> views(records.begin(), records.end());
        OBJREP_RETURN_NOT_OK(project_records(views));
        // Cache inside the parent tuple: rewrite it with the blob. The
        // tuple grows, so this is a delete + insert, not an in-place write.
        IoBracket cache_bracket(disk_.get(), &cost.cache_io);
        std::vector<Value> row;
        OBJREP_RETURN_NOT_OK(parent_rel_.Get(w.key, &row));
        row[kPpCached] = Value(EncodeUnitBlob(records));
        std::string encoded;
        OBJREP_RETURN_NOT_OK(EncodeRecord(pschema, row, &encoded));
        OBJREP_RETURN_NOT_OK(parent_rel_.tree().Delete(w.key));
        OBJREP_RETURN_NOT_OK(parent_rel_.tree().Insert(w.key, encoded));
        for (std::string_view raw : views) {
          Value oid_val;
          OBJREP_RETURN_NOT_OK(DecodeField(cschema, raw, kPcOid, &oid_val));
          inside_locks_[Oid::FromPacked(
                            static_cast<uint64_t>(oid_val.as_int64()))
                            .key]
              .push_back(w.key);
        }
        break;
      }
    }
  }
  return Status::OK();
}

Status ProceduralDatabase::ExecuteUpdate(const Query& q,
                                         ProcStrategy strategy) {
  const Schema& pschema = parent_rel_.schema();
  for (const Oid& target : q.update_targets) {
    // In-place modification of the child's ret1.
    std::vector<Value> row;
    OBJREP_RETURN_NOT_OK(child_rel_.Get(target.key, &row));
    row[kPcRet1] = Value(q.new_ret1);
    OBJREP_RETURN_NOT_OK(child_rel_.UpdateInPlace(target.key, row));

    switch (strategy) {
      case ProcStrategy::kExec:
        break;
      case ProcStrategy::kExecIndexed:
        // The predicate attribute (tag) is immutable under the paper's
        // updates (they modify ret fields), so the index needs no
        // maintenance here; SecondaryIndex::OnUpdate covers the general
        // case.
        break;
      case ProcStrategy::kCacheOutside:
        OBJREP_RETURN_NOT_OK(
            outside_cache_->InvalidateSubobject(Oid{1, target.key}));
        break;
      case ProcStrategy::kCacheOids:
        // A value update does not change the stored query's *result set*,
        // so the cached OID list stays valid — the structural advantage
        // of caching identities over contents. (Membership-changing
        // operations would invalidate here; the paper's workload has
        // none: "there are no insertions or deletions", §4.)
        break;
      case ProcStrategy::kCacheInside: {
        // Every parent embedding this child must have its blob purged —
        // a full tuple rewrite per replica.
        auto it = inside_locks_.find(target.key);
        if (it == inside_locks_.end()) break;
        std::vector<uint32_t> holders = std::move(it->second);
        inside_locks_.erase(it);
        for (uint32_t p : holders) {
          std::vector<Value> prow;
          OBJREP_RETURN_NOT_OK(parent_rel_.Get(p, &prow));
          if (prow[kPpCached].as_string().empty()) continue;
          prow[kPpCached] = Value(std::string());
          std::string encoded;
          OBJREP_RETURN_NOT_OK(EncodeRecord(pschema, prow, &encoded));
          OBJREP_RETURN_NOT_OK(parent_rel_.tree().Delete(p));
          OBJREP_RETURN_NOT_OK(parent_rel_.tree().Insert(p, encoded));
        }
        break;
      }
    }
  }
  return Status::OK();
}

}  // namespace objrep
