// Analytic cost model for the joining strategies.
//
// The paper observes (§3.1) that "the optimal joining strategy in this
// query depends on the sizes of the relations involved": a real system
// needs an optimizer-style estimate to pick a strategy per query rather
// than a fixed NumTop threshold. This module provides closed-form
// estimates of the average retrieve I/O from the database shape —
// using the classic Cardenas/Yao expected-distinct-pages approximation for
// probe and merge-join footprints and a residency factor for the buffer —
// plus a ChooseStrategy() advisor built on them.
//
// DFS and BFS are estimated from the static shape alone. The dynamic-state
// strategies — DFSCACHE, DFSCLUST, SMART — additionally depend on runtime
// state (cache contents, I-lock invalidation pressure, clustering
// assignment); their estimates take a DynamicStats describing that state,
// defaulting to the steady-state forecast derivable from the shape. The
// estimates decompose into sequential reads / random reads / writes
// (IoEstimate) so a DeviceModel can weigh them into device time; with the
// default zero-latency device every component costs 1 and the weighted cost
// is exactly the page count, the paper's yardstick.
//
// The adaptive engine (core/adaptive.h) closes the loop: it predicts with
// this model, observes the actual per-query I/O, and calibrates the
// residual per strategy (DESIGN.md §12).
#ifndef OBJREP_CORE_COST_MODEL_H_
#define OBJREP_CORE_COST_MODEL_H_

#include "core/strategy.h"
#include "objstore/database.h"

namespace objrep {

/// Static shape of a database, extracted once (no I/O is charged).
struct DbShape {
  uint32_t parent_entries = 0;
  uint32_t parent_leaf_pages = 0;
  uint32_t num_child_rels = 0;
  uint32_t child_entries_per_rel = 0;  ///< mean across child relations
  uint32_t child_leaf_pages_per_rel = 0;  ///< mean across child relations
  uint32_t size_unit = 0;
  uint32_t buffer_pages = 0;

  // Sharing structure (paper eqn. (1)) — the steady-state forecasts for
  // the dynamic-state strategies derive from these.
  uint32_t use_factor = 1;
  uint32_t overlap_factor = 1;

  // Optional structures; 0 when absent.
  uint32_t cache_capacity = 0;       ///< spec.size_cache when the cache is built
  uint32_t cluster_entries = 0;      ///< |ClusterRel| when clustering is built
  uint32_t cluster_leaf_pages = 0;
  uint32_t cluster_index_entry_bytes = 32;  ///< ISAM on-page bytes per entry

  static DbShape Of(const ComplexDatabase& db);

  double share_factor() const {
    return static_cast<double>(use_factor) * overlap_factor;
  }
  double num_units() const {
    return use_factor == 0
               ? parent_entries
               : static_cast<double>(parent_entries) / use_factor;
  }
};

/// Runtime state the dynamic strategies depend on. The defaults mean "no
/// observation yet": forecasts fall back to the steady state implied by the
/// shape (cache hit rate from capacity vs NumUnits, remote fraction from
/// ShareFactor). The adaptive engine fills these from observed
/// CacheManager::CacheStats deltas.
struct DynamicStats {
  double cache_hit_rate = 0;           ///< observed recent hit rate [0,1]
  double cache_occupancy = 0;          ///< cached units / capacity [0,1]
  double invalidations_per_query = 0;  ///< I-lock invalidations per query
  /// Units touched by updates per retrieve-to-retrieve window (whether or
  /// not they were cached at the time). Successful invalidations alone
  /// cannot gauge churn: an empty cache shows zero invalidations no
  /// matter how hostile the update stream, so the forecast would keep
  /// promising a warm-up the updates will never allow.
  double update_unit_touches = 0;
  /// Fraction of subobject picks whose unit is clustered under a different
  /// owner (fetched via the ISAM index); < 0 = derive 1 - 1/ShareFactor.
  double cluster_remote_frac = -1.0;
  /// Steady-state estimates (the default) floor the cache hit rate by the
  /// capacity-implied rate the strategy would reach if adopted — cache
  /// warmth is an investment, and ranking plans by their cold cost would
  /// condemn DFSCACHE forever. Set false to estimate at the *observed*
  /// state instead: that is the reference the adaptive engine calibrates
  /// against, so the learned factor captures model residual rather than
  /// transient coldness (core/adaptive.cc).
  bool steady_state = true;
};

/// An estimate decomposed by access pattern, so device models with
/// different seek/transfer ratios can weigh it. pages() is the flat count
/// — the paper's metric.
struct IoEstimate {
  double seq_reads = 0;
  double rand_reads = 0;
  double writes = 0;

  double pages() const { return seq_reads + rand_reads + writes; }
  IoEstimate& operator+=(const IoEstimate& rhs) {
    seq_reads += rhs.seq_reads;
    rand_reads += rhs.rand_reads;
    writes += rhs.writes;
    return *this;
  }
};

/// Per-access-pattern cost weights of a (simulated) device. The default is
/// the pure counting model: every page costs 1, so Cost() == pages().
struct DeviceModel {
  double seq_read_cost = 1.0;
  double rand_read_cost = 1.0;
  double write_cost = 1.0;

  /// Weights implied by the simulated device knobs (DESIGN.md §9): a
  /// discontiguous I/O pays seek + transfer, a sequential read only the
  /// transfer. Zero/zero is the seed's pure counter — all weights 1. The
  /// transfer term is floored at 1us so no access pattern is ever free.
  static DeviceModel ForDevice(uint32_t io_latency_us, uint32_t transfer_us);

  double Cost(const IoEstimate& e) const {
    return e.seq_reads * seq_read_cost + e.rand_reads * rand_read_cost +
           e.writes * write_cost;
  }
};

/// Cardenas' approximation: expected number of distinct pages touched when
/// `picks` uniform random picks land on `pages` pages.
double ExpectedDistinctPages(double pages, double picks);

/// True when the model produces an estimate for `kind` (DFS, BFS,
/// BFSNODUP, DFSCACHE, DFSCLUST, SMART). The remaining strategies
/// (DFSCLUST+CACHE, BFS-JI, BFS-HASH) are unmodelled.
bool CostModelCovers(StrategyKind kind);

/// Decomposed estimate of one NumTop-object retrieve under `kind`.
/// Returns a zero estimate for strategies CostModelCovers() rejects.
/// `smart_threshold` is SMART's DFSCACHE/BFS switch point (paper §5.3).
IoEstimate EstimateRetrieveDetail(StrategyKind kind, const DbShape& shape,
                                  const DynamicStats& dyn, uint32_t num_top,
                                  uint32_t smart_threshold = 300);

/// Estimated average page I/O of one NumTop-object retrieve (flat count,
/// steady-state dynamics). -1 for strategies the model does not cover.
double EstimateRetrieveIo(StrategyKind kind, const DbShape& shape,
                          uint32_t num_top);

/// Advisor: the cheaper of DFS and BFS for this query size, per the model.
/// Ties break to BFS, consistently with PredictDfsBfsCrossover(): the
/// crossover is the first NumTop at which BFS is at least as cheap.
StrategyKind ChooseStrategy(const DbShape& shape, uint32_t num_top);

/// Model-predicted NumTop at which BFS overtakes DFS (binary search over
/// the estimates); 0 if BFS never wins within |ParentRel|.
uint32_t PredictDfsBfsCrossover(const DbShape& shape);

}  // namespace objrep

#endif  // OBJREP_CORE_COST_MODEL_H_
