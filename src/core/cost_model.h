// Analytic cost model for the primary strategies.
//
// The paper observes (§3.1) that "the optimal joining strategy in this
// query depends on the sizes of the relations involved": a real system
// needs an optimizer-style estimate to pick DFS vs BFS per query rather
// than a fixed NumTop threshold. This module provides closed-form
// estimates of the average retrieve I/O from the database shape alone —
// using the classic Cardenas/Yao expected-distinct-pages approximation for
// probe and merge-join footprints and a residency factor for the buffer —
// plus a ChooseStrategy() advisor built on them.
//
// Estimates target the cache-less, cluster-less strategies (DFS/BFS);
// DFSCACHE and DFSCLUST costs depend on dynamic state (cache contents,
// clustering assignment), which is what the experiment harness is for.
#ifndef OBJREP_CORE_COST_MODEL_H_
#define OBJREP_CORE_COST_MODEL_H_

#include "core/strategy.h"
#include "objstore/database.h"

namespace objrep {

/// Static shape of a database, extracted once (no I/O is charged).
struct DbShape {
  uint32_t parent_entries = 0;
  uint32_t parent_leaf_pages = 0;
  uint32_t num_child_rels = 0;
  uint32_t child_entries_per_rel = 0;  ///< per relation
  uint32_t child_leaf_pages_per_rel = 0;
  uint32_t size_unit = 0;
  uint32_t buffer_pages = 0;

  static DbShape Of(const ComplexDatabase& db);
};

/// Cardenas' approximation: expected number of distinct pages touched when
/// `picks` uniform random picks land on `pages` pages.
double ExpectedDistinctPages(double pages, double picks);

/// Estimated average I/O of one NumTop-object retrieve.
double EstimateRetrieveIo(StrategyKind kind, const DbShape& shape,
                          uint32_t num_top);

/// Advisor: the cheaper of DFS and BFS for this query size, per the model.
StrategyKind ChooseStrategy(const DbShape& shape, uint32_t num_top);

/// Model-predicted NumTop at which BFS overtakes DFS (binary search over
/// the estimates); 0 if BFS never wins within |ParentRel|.
uint32_t PredictDfsBfsCrossover(const DbShape& shape);

}  // namespace objrep

#endif  // OBJREP_CORE_COST_MODEL_H_
