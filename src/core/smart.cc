// SMART (paper §5.3): the hybrid that "makes the best use of caching".
//
// * NumTop <= N  — behave exactly like DFSCACHE (maintain the cache).
// * NumTop  > N  — breadth-first pass: scan the qualifying objects, serve
//   cached units from the Cache relation, collect the OIDs of uncached
//   units into temporaries, and merge-join those. "The status of the cache
//   remains invariant during the execution of the breadth-first strategy"
//   — no insertions on this path, so the merge join stays competitive.
#include <map>

#include "core/strategies_impl.h"
#include "obs/io_context.h"
#include "objstore/rows.h"
#include "objstore/unit_blob.h"
#include "relational/merge_join.h"

namespace objrep {
namespace internal {

Status SmartStrategy::ExecuteRetrieve(const Query& q, RetrieveResult* out) {
  if (q.num_top <= threshold_) {
    return CachedDepthFirstRetrieve(db_, q, out);
  }
  CostBreakdown& cost = out->cost;
  IoCounters start = db_->disk->counters();

  std::map<RelationId, TempFile> temps;
  OBJREP_RETURN_NOT_OK(ScanParents(
      db_, q,
      [&](uint32_t /*parent_key*/, const std::vector<Oid>& unit) -> Status {
        uint64_t hashkey = CacheManager::HashKeyOf(unit);
        {
          // Atomic probe+fetch (see dfs_cache.cc): concurrent eviction
          // must read as a miss, not a NotFound error.
          IoBracket cache_bracket(db_->disk.get(), &cost.cache_io);
          bool found = false;
          std::string blob;
          OBJREP_RETURN_NOT_OK(db_->cache->TryFetchUnit(hashkey, &blob,
                                                        &found));
          if (found) {
            OBJREP_RETURN_NOT_OK(
                ProjectUnitBlob(db_, blob, q.attr_index, &out->values));
            out->oids.insert(out->oids.end(), unit.begin(), unit.end());
            return Status::OK();
          }
        }
        IoBracket temp_bracket(db_->disk.get(), &cost.temp_io);
        for (const Oid& oid : unit) {
          auto it = temps.find(oid.rel);
          if (it == temps.end()) {
            TempFile t;
            OBJREP_RETURN_NOT_OK(TempFile::Create(db_->pool.get(), &t));
            it = temps.emplace(oid.rel, std::move(t)).first;
          }
          OBJREP_RETURN_NOT_OK(it->second.Append(oid.key));
        }
        return Status::OK();
      }));
  uint64_t scan_total = (db_->disk->counters() - start).total();
  cost.par_io = scan_total - cost.temp_io - cost.cache_io;

  for (auto& [rel_id, temp] : temps) {
    temp.Seal();
    TempFile sorted;
    {
      IoBracket temp_bracket(db_->disk.get(), &cost.temp_io);
      SortOptions opts;
      opts.work_mem_pages = work_mem_;
      opts.reclaim_runs = db_->spec.reclaim_temp_pages;
      OBJREP_RETURN_NOT_OK(
          ExternalSort(db_->pool.get(), temp, opts, &sorted));
      if (db_->spec.reclaim_temp_pages) {
        OBJREP_RETURN_NOT_OK(temp.FreePages());
      }
    }
    const Table* table = db_->ChildRelById(rel_id);
    if (table == nullptr) {
      return Status::Corruption("temp references unknown relation");
    }
    IoBracket child_bracket(db_->disk.get(), &cost.child_io);
    ScopedIoTag heap_tag(IoTag::kHeapFetch);
    OBJREP_RETURN_NOT_OK(MergeJoinSortedKeys(
        sorted.Read(), table->tree(),
        [&](uint64_t key, std::string_view raw) -> Status {
          int32_t v;
          OBJREP_RETURN_NOT_OK(
              DecodeChildRet(table->schema(), raw, q.attr_index, &v));
          out->values.push_back(v);
          out->oids.push_back(Oid{rel_id, static_cast<uint32_t>(key)});
          return Status::OK();
        }));
    if (db_->spec.reclaim_temp_pages) {
      IoBracket temp_bracket(db_->disk.get(), &cost.temp_io);
      OBJREP_RETURN_NOT_OK(sorted.FreePages());
    }
  }
  return Status::OK();
}

Status SmartStrategy::ExecuteUpdate(const Query& q) {
  ScopedIoTag tag(IoTag::kUpdate);  // invalidation re-tags kCacheMaint
  for (const Oid& oid : q.update_targets) {
    OBJREP_RETURN_NOT_OK(UpdateChildInPlace(oid, q.new_ret1));
    OBJREP_RETURN_NOT_OK(db_->cache->InvalidateSubobject(oid));
  }
  return Status::OK();
}

}  // namespace internal
}  // namespace objrep
