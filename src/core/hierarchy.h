// Multi-level complex objects ("multiple-dot" queries, paper §3).
//
// The paper's query
//     retrieve (group.members.name) ...
// explores one level of relationships; "queries involving more than two
// dots in the target list require more levels of relationships to be
// explored" — the VLSI hierarchy of §1 (cells -> paths -> rectangles) is
// the motivating shape. This module generalizes the OID representation to
// depth-d hierarchies and provides the recursive (DFS) and iterative
// (BFS / BFSNODUP) processing strategies for
//     retrieve (root.children. ... .children.attr).
//
// The paper claims (§5.1): "the benefits of BFSNODUP will increase with an
// increase in the number of levels explored. But our experiments have
// shown that the benefit so obtained is marginal at best."
// bench/multilevel_nodup measures exactly that.
#ifndef OBJREP_CORE_HIERARCHY_H_
#define OBJREP_CORE_HIERARCHY_H_

#include <memory>
#include <vector>

#include "core/strategy.h"
#include "objstore/oid.h"
#include "relational/table.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "util/status.h"

namespace objrep {

/// Shape of one depth-d hierarchy. Level 0 holds the roots; each object of
/// level l < depth-1 references a unit of `size_unit` objects of level
/// l+1, each unit shared by `use_factor` referencing objects (so
/// |level l+1| = |level l| * size_unit / use_factor). The last level holds
/// the leaves whose ret attributes the multi-dot query projects.
struct HierarchySpec {
  uint32_t num_roots = 10000;
  uint32_t depth = 3;            ///< number of levels (>= 2)
  uint32_t size_unit = 5;
  uint32_t use_factor = 5;
  uint32_t inner_tuple_bytes = 200;  ///< width of non-leaf tuples
  uint32_t leaf_tuple_bytes = 100;
  uint32_t buffer_pages = 100;
  double fill_factor = 1.0;
  uint64_t seed = 42;

  Status Validate() const;
  /// Cardinality of level `l`.
  uint32_t LevelSize(uint32_t l) const {
    uint64_t n = num_roots;
    for (uint32_t i = 0; i < l; ++i) n = n * size_unit / use_factor;
    return static_cast<uint32_t>(n);
  }
};

/// A generated hierarchy: one Table per level, all on one simulated disk.
class HierarchyDatabase {
 public:
  static Status Build(const HierarchySpec& spec,
                      std::unique_ptr<HierarchyDatabase>* out);

  /// retrieve (root.children^{depth-1}.attr) where lo <= root key < lo+n,
  /// depth-first ("recursion"): every subobject at every level is fetched
  /// by a random probe the moment its parent is expanded.
  Status RetrieveDfs(const Query& q, RetrieveResult* out);

  /// The same query breadth-first ("iteration"): per level, collect the
  /// next level's OIDs into a temporary, sort it (dropping duplicates when
  /// `dedup`), and merge join with that level's relation.
  Status RetrieveBfs(const Query& q, bool dedup, RetrieveResult* out);

  const HierarchySpec& spec() const { return spec_; }
  DiskManager* disk() { return disk_.get(); }
  uint64_t TotalPages() const { return disk_->num_pages(); }
  /// Ground truth for tests: unit id of each object at level l < depth-1.
  const std::vector<std::vector<uint32_t>>& unit_of_object() const {
    return unit_of_object_;
  }
  const std::vector<std::vector<std::vector<Oid>>>& units() const {
    return units_;
  }

 private:
  HierarchyDatabase() = default;

  Status ExpandDfs(uint32_t level, const Oid& oid, int attr_index,
                   RetrieveResult* out);

  HierarchySpec spec_;
  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  Catalog catalog_;
  std::vector<Table*> levels_;
  // units_[l][u] = member OIDs (level l+1 objects) of unit u at level l.
  std::vector<std::vector<std::vector<Oid>>> units_;
  std::vector<std::vector<uint32_t>> unit_of_object_;
};

}  // namespace objrep

#endif  // OBJREP_CORE_HIERARCHY_H_
