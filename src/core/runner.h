// Experiment runner: executes a query sequence under one strategy and
// reports average I/O — the paper's performance yardstick ("run a sequence
// of queries on the database and note the average I/O traffic", §4 [3]).
#ifndef OBJREP_CORE_RUNNER_H_
#define OBJREP_CORE_RUNNER_H_

#include <vector>

#include "core/strategy.h"
#include "obs/io_context.h"
#include "objstore/cache_manager.h"
#include "objstore/workload.h"
#include "storage/io_stats.h"
#include "util/status.h"

namespace objrep {

struct RunResult {
  uint32_t num_queries = 0;
  uint32_t num_retrieves = 0;
  uint32_t num_updates = 0;

  uint64_t total_io = 0;     ///< includes the end-of-run flush
  uint64_t retrieve_io = 0;
  uint64_t update_io = 0;
  uint64_t flush_io = 0;

  /// Raw counter delta over the whole run (queries + flush). io.total()
  /// == total_io; the seq/rand split feeds the driver's seq% column.
  IoCounters io;

  /// Per-component attribution of the same window (DESIGN.md §11).
  /// io_by_tag.total() == io.total() always: DiskManager bumps the tag
  /// slot and the raw counter at the same sites by the same amounts.
  IoTagBreakdown io_by_tag;

  CostBreakdown retrieve_cost;  ///< summed over retrieves

  /// Result integrity: count and sum of projected values (strategy
  /// equivalence is asserted on these by the tests).
  uint64_t result_count = 0;
  int64_t result_sum = 0;

  CacheManager::CacheStats cache_stats;  ///< zero when no cache

  double AvgIoPerQuery() const {
    return num_queries == 0 ? 0.0
                            : static_cast<double>(total_io) / num_queries;
  }
  double AvgRetrieveIo() const {
    return num_retrieves == 0
               ? 0.0
               : static_cast<double>(retrieve_io) / num_retrieves;
  }
  double AvgUpdateIo() const {
    return num_updates == 0 ? 0.0
                            : static_cast<double>(update_io) / num_updates;
  }
  double AvgParCost() const {
    return num_retrieves == 0
               ? 0.0
               : static_cast<double>(retrieve_cost.par_io) / num_retrieves;
  }
  double AvgChildCost() const {
    return num_retrieves == 0 ? 0.0
                              : static_cast<double>(
                                    retrieve_cost.child_cost()) /
                                    num_retrieves;
  }
};

/// Runs `queries` under `strategy` against the strategy's database.
/// Resets the database cache statistics at the start; flushes dirty pages
/// at the end (charged to total_io) so deferred writes are not lost.
Status RunWorkload(Strategy* strategy, ComplexDatabase* db,
                   const std::vector<Query>& queries, RunResult* out);

}  // namespace objrep

#endif  // OBJREP_CORE_RUNNER_H_
