#include "core/strategy.h"

#include <algorithm>
#include <utility>

#include "core/adaptive.h"
#include "core/strategies_impl.h"
#include "obs/io_context.h"
#include "objstore/rows.h"
#include "objstore/unit_blob.h"
#include "storage/fault_injector.h"

namespace objrep {

Status Strategy::UpdateChildInPlace(const Oid& oid, int32_t new_ret1) {
  Table* table = db_->ChildRelById(oid.rel);
  if (table == nullptr) {
    return Status::InvalidArgument("update target references unknown relation");
  }
  std::vector<Value> values;
  OBJREP_RETURN_NOT_OK(table->Get(oid.key, &values));
  values[kChildRet1] = Value(new_ret1);
  OBJREP_RETURN_NOT_OK(table->UpdateInPlace(oid.key, values));
  // Crash point between the targets of a multi-target update query: only
  // a transaction makes the query all-or-nothing.
  return db_->disk->fault_injector()->MaybeCrash("update.child");
}

Status Strategy::ExecuteUpdate(const Query& q) {
  // Index descent + heap write per target; invalidation and WAL traffic
  // inside re-tag themselves (kCacheMaint / kWal).
  ScopedIoTag tag(IoTag::kUpdate);
  for (const Oid& oid : q.update_targets) {
    OBJREP_RETURN_NOT_OK(UpdateChildInPlace(oid, q.new_ret1));
  }
  return Status::OK();
}

const char* StrategyKindName(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kDfs: return "DFS";
    case StrategyKind::kBfs: return "BFS";
    case StrategyKind::kBfsNoDup: return "BFSNODUP";
    case StrategyKind::kDfsCache: return "DFSCACHE";
    case StrategyKind::kDfsClust: return "DFSCLUST";
    case StrategyKind::kSmart: return "SMART";
    case StrategyKind::kDfsClustCache: return "DFSCLUST+CACHE";
    case StrategyKind::kBfsJoinIndex: return "BFS-JI";
    case StrategyKind::kBfsHash: return "BFS-HASH";
    case StrategyKind::kAdaptive: return "ADAPTIVE";
  }
  return "?";
}

Status MakeStrategy(StrategyKind kind, ComplexDatabase* db,
                    const StrategyOptions& options,
                    std::unique_ptr<Strategy>* out) {
  switch (kind) {
    case StrategyKind::kDfs:
      *out = std::make_unique<internal::DfsStrategy>(db);
      return Status::OK();
    case StrategyKind::kBfs:
      *out = std::make_unique<internal::BfsStrategy>(
          db, /*dedup=*/false, options.sort_work_mem_pages);
      return Status::OK();
    case StrategyKind::kBfsNoDup:
      *out = std::make_unique<internal::BfsStrategy>(
          db, /*dedup=*/true, options.sort_work_mem_pages);
      return Status::OK();
    case StrategyKind::kDfsCache:
      if (db->cache == nullptr) {
        return Status::InvalidArgument("DFSCACHE requires spec.build_cache");
      }
      *out = std::make_unique<internal::DfsCacheStrategy>(db);
      return Status::OK();
    case StrategyKind::kDfsClust:
      if (db->cluster_rel == nullptr) {
        return Status::InvalidArgument("DFSCLUST requires spec.build_cluster");
      }
      *out = std::make_unique<internal::DfsClustStrategy>(db);
      return Status::OK();
    case StrategyKind::kSmart:
      if (db->cache == nullptr) {
        return Status::InvalidArgument("SMART requires spec.build_cache");
      }
      *out = std::make_unique<internal::SmartStrategy>(
          db, options.smart_threshold, options.sort_work_mem_pages);
      return Status::OK();
    case StrategyKind::kDfsClustCache:
      if (db->cluster_rel == nullptr || db->cache == nullptr) {
        return Status::InvalidArgument(
            "DFSCLUST+CACHE requires spec.build_cluster and spec.build_cache");
      }
      *out = std::make_unique<internal::DfsClustCacheStrategy>(db);
      return Status::OK();
    case StrategyKind::kBfsJoinIndex:
      if (!db->has_join_index) {
        return Status::InvalidArgument(
            "BFS-JI requires spec.build_join_index");
      }
      *out = std::make_unique<internal::BfsJoinIndexStrategy>(
          db, options.sort_work_mem_pages);
      return Status::OK();
    case StrategyKind::kBfsHash:
      *out = std::make_unique<internal::BfsHashStrategy>(db);
      return Status::OK();
    case StrategyKind::kAdaptive:
      // No structure requirements: the candidate set adapts to whatever
      // the database has built (DFS/BFS at minimum).
      *out = std::make_unique<AdaptiveStrategy>(db, options);
      return Status::OK();
  }
  return Status::InvalidArgument("unknown strategy kind");
}

namespace internal {

Status ScanParents(
    ComplexDatabase* db, const Query& q,
    const std::function<Status(uint32_t, const std::vector<Oid>&)>& fn) {
  if (q.num_top == 0) return Status::OK();
  // The whole loop runs under kParentScan: the parent-leaf reads bill
  // here, while per-unit work inside `fn` re-tags itself (child probes are
  // kIndexProbe via MaterializeUnit, temp spills kTempSort, cache traffic
  // kCacheFetch/kCacheMaint). Innermost tag wins.
  ScopedIoTag io_tag(IoTag::kParentScan);
  BPlusTree::Iterator it = db->parent_rel->tree().NewIterator();
  const uint64_t end = static_cast<uint64_t>(q.lo_parent) + q.num_top;
  // Read ahead along the parent leaves of [lo_parent, end): every leaf in
  // the window is certain to be scanned, and staged pages are immune to
  // eviction, so the window can be the full readahead budget (fan 0) no
  // matter how much child-leaf I/O the callback does between parent
  // leaves. With prefetch disabled SeekRange is exactly Seek.
  OBJREP_RETURN_NOT_OK(it.SeekRange(q.lo_parent, end - 1, /*fan=*/0));
  const Schema& schema = db->parent_rel->schema();
  while (it.valid() && it.key() < end) {
    Value children;
    OBJREP_RETURN_NOT_OK(
        DecodeField(schema, it.value(), kParentChildren, &children));
    std::vector<Oid> unit = DecodeOidList(children.as_string());
    OBJREP_RETURN_NOT_OK(fn(static_cast<uint32_t>(it.key()), unit));
    OBJREP_RETURN_NOT_OK(it.Next());
  }
  return Status::OK();
}

namespace {

/// Read-ahead pass of MaterializeUnit: sorts the unit's OIDs into physical
/// leaf order and stages the child leaves they land in through
/// BPlusTree::HintLeavesForKeys — one vectored read per relation instead
/// of a random single-page read per child. The pass performs no probes and
/// is invisible to counts and recency, so the caller's reference-order Get
/// loop below sees bit-identical I/O to the demand-paged execution; only
/// the read *timing* moves earlier (DESIGN.md §9).
Status BatchProbeUnit(ComplexDatabase* db, const std::vector<Oid>& unit) {
  // Group per relation; each group sorted by key is one hint batch.
  std::vector<std::pair<uint64_t, RelationId>> sorted;
  sorted.reserve(unit.size());
  for (const Oid& oid : unit) {
    sorted.emplace_back(oid.key, oid.rel);
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) {
              return a.second != b.second ? a.second < b.second
                                          : a.first < b.first;
            });
  std::vector<uint64_t> keys;
  keys.reserve(sorted.size());
  size_t i = 0;
  while (i < sorted.size()) {
    RelationId rel = sorted[i].second;
    keys.clear();
    for (; i < sorted.size() && sorted[i].second == rel; ++i) {
      keys.push_back(sorted[i].first);
    }
    const Table* table = db->ChildRelById(rel);
    if (table == nullptr) {
      return Status::Corruption("child OID references unknown relation");
    }
    table->tree().HintLeavesForKeys(keys.data(), keys.size());
  }
  return Status::OK();
}

}  // namespace

Status MaterializeUnit(ComplexDatabase* db, const std::vector<Oid>& unit,
                       int attr_index, std::vector<std::string>* raw_records,
                       std::vector<int32_t>* values) {
  // Random child-index descents — the DFS family's dominant cost (paper
  // §4). Covers the hint pass too (the hint's actual disk reads re-tag
  // kPrefetch inside BufferPool::Prefetch; only timing moves, DESIGN.md §9).
  ScopedIoTag tag(IoTag::kIndexProbe);
  if (raw_records != nullptr) raw_records->clear();
  if (db->pool->prefetch_enabled() && unit.size() >= 2) {
    OBJREP_RETURN_NOT_OK(BatchProbeUnit(db, unit));
  }
  for (const Oid& oid : unit) {
    const Table* table = db->ChildRelById(oid.rel);
    if (table == nullptr) {
      return Status::Corruption("child OID references unknown relation");
    }
    std::string raw;
    OBJREP_RETURN_NOT_OK(table->tree().Get(oid.key, &raw));
    int32_t v;
    OBJREP_RETURN_NOT_OK(
        DecodeChildRet(table->schema(), raw, attr_index, &v));
    values->push_back(v);
    if (raw_records != nullptr) raw_records->push_back(std::move(raw));
  }
  return Status::OK();
}

Status ProjectUnitBlob(ComplexDatabase* db, std::string_view blob,
                       int attr_index, std::vector<int32_t>* values) {
  std::vector<std::string_view> records;
  OBJREP_RETURN_NOT_OK(DecodeUnitBlob(blob, &records));
  // All child relations share one schema shape; use the first.
  const Schema& schema = db->child_rels[0]->schema();
  for (std::string_view raw : records) {
    int32_t v;
    OBJREP_RETURN_NOT_OK(DecodeChildRet(schema, raw, attr_index, &v));
    values->push_back(v);
  }
  return Status::OK();
}

}  // namespace internal
}  // namespace objrep
