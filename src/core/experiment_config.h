// Text-format experiment configuration.
//
// The paper drove its experiments from an EQUEL/C program that "first
// generated a sequence of random queries satisfying some parameters",
// planned and ran them, and reported average I/O (§4). The objrep_driver
// tool is that program's analog; this module parses its input:
//
//     # comment
//     parents = 10000
//     size_unit = 5
//     use_factor = 5
//     overlap_factor = 1
//     child_rels = 1
//     buffer_pages = 100
//     cache = on            # builds the Cache relation
//     size_cache = 1000
//     cluster = on          # builds ClusterRel + ISAM
//     seed = 42
//
//     queries = 200
//     num_top = 20
//     pr_update = 0.1
//     update_batch = 5
//     hot_access_prob = 0.0
//
//     strategies = DFS, BFS, DFSCACHE, SMART
//
//     # I/O scheduling (DESIGN.md §9; all default to seed behaviour)
//     prefetch = on
//     readahead_pages = 8
//     prefetch_workers = 0
//     reclaim_temps = off
//     io_latency_us = 0
//     io_transfer_us = 0
//
//     # network server (DESIGN.md §13; used by objrep_driver --serve)
//     net_port = 0          # 0 = ephemeral, printed at startup
//     net_workers = 4
//     net_max_inflight = 256
//
//     # horizontal sharding (DESIGN.md §14)
//     shards = 1            # >1 = scatter-gather over N engine instances
//
// Unknown keys are an error (typos must not silently become defaults).
#ifndef OBJREP_CORE_EXPERIMENT_CONFIG_H_
#define OBJREP_CORE_EXPERIMENT_CONFIG_H_

#include <string>
#include <vector>

#include "core/strategy.h"
#include "objstore/spec.h"
#include "objstore/workload.h"
#include "util/status.h"

namespace objrep {

struct ExperimentConfig {
  DatabaseSpec db;
  WorkloadSpec workload;
  std::vector<StrategyKind> strategies;
  StrategyOptions options;

  // Network server (src/net/, DESIGN.md §13); used when the driver runs
  // with --serve. The first strategy in `strategies` becomes the server's
  // default (overridable per request by the wire strategy byte).
  uint32_t net_port = 0;           ///< net_port = N (0: ephemeral)
  uint32_t net_workers = 4;        ///< net_workers = K (pool threads)
  uint32_t net_max_inflight = 256; ///< net_max_inflight = N (admission)

  /// shards = N (src/shard/, DESIGN.md §14): hash-partition the store
  /// across N independent engine instances with scatter-gather execution.
  /// 1 (the default) is the ordinary single-engine path.
  uint32_t shards = 1;
};

/// Parses the config text (file contents). On error the Status message
/// names the offending line.
Status ParseExperimentConfig(std::string_view text, ExperimentConfig* out);

/// Parses a strategy name as written in configs ("DFS", "BFSNODUP",
/// "DFSCLUST+CACHE", case-insensitive).
Status ParseStrategyName(std::string_view name, StrategyKind* out);

}  // namespace objrep

#endif  // OBJREP_CORE_EXPERIMENT_CONFIG_H_
