#include "core/experiment_config.h"

#include <algorithm>
#include <charconv>
#include <cctype>

namespace objrep {

namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

std::string Upper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return out;
}

Status ParseU32(std::string_view v, int line_no, uint32_t* out) {
  uint32_t value = 0;
  auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), value);
  if (ec != std::errc() || ptr != v.data() + v.size()) {
    return Status::InvalidArgument("line " + std::to_string(line_no) +
                                   ": expected unsigned integer");
  }
  *out = value;
  return Status::OK();
}

Status ParseU64(std::string_view v, int line_no, uint64_t* out) {
  uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), value);
  if (ec != std::errc() || ptr != v.data() + v.size()) {
    return Status::InvalidArgument("line " + std::to_string(line_no) +
                                   ": expected unsigned integer");
  }
  *out = value;
  return Status::OK();
}

Status ParseDouble(std::string_view v, int line_no, double* out) {
  // std::from_chars for doubles is spotty across stdlibs; strtod on a
  // bounded copy is fine here.
  std::string copy(v);
  char* end = nullptr;
  double value = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size() || copy.empty()) {
    return Status::InvalidArgument("line " + std::to_string(line_no) +
                                   ": expected number");
  }
  *out = value;
  return Status::OK();
}

Status ParseOnOff(std::string_view v, int line_no, bool* out) {
  std::string u = Upper(v);
  if (u == "ON" || u == "TRUE" || u == "1") {
    *out = true;
    return Status::OK();
  }
  if (u == "OFF" || u == "FALSE" || u == "0") {
    *out = false;
    return Status::OK();
  }
  return Status::InvalidArgument("line " + std::to_string(line_no) +
                                 ": expected on/off");
}

}  // namespace

Status ParseStrategyName(std::string_view name, StrategyKind* out) {
  std::string u = Upper(Trim(name));
  if (u == "DFS") *out = StrategyKind::kDfs;
  else if (u == "BFS") *out = StrategyKind::kBfs;
  else if (u == "BFSNODUP") *out = StrategyKind::kBfsNoDup;
  else if (u == "DFSCACHE") *out = StrategyKind::kDfsCache;
  else if (u == "DFSCLUST") *out = StrategyKind::kDfsClust;
  else if (u == "SMART") *out = StrategyKind::kSmart;
  else if (u == "DFSCLUST+CACHE" || u == "DFSCLUSTCACHE")
    *out = StrategyKind::kDfsClustCache;
  else if (u == "BFS-JI" || u == "BFSJI" || u == "BFSJOININDEX")
    *out = StrategyKind::kBfsJoinIndex;
  else if (u == "BFS-HASH" || u == "BFSHASH")
    *out = StrategyKind::kBfsHash;
  else if (u == "ADAPTIVE")
    *out = StrategyKind::kAdaptive;
  else
    return Status::InvalidArgument("unknown strategy: " + std::string(name));
  return Status::OK();
}

Status ParseExperimentConfig(std::string_view text, ExperimentConfig* out) {
  *out = ExperimentConfig{};
  int line_no = 0;
  size_t pos = 0;
  bool have_strategies = false;
  while (pos <= text.size()) {
    size_t nl = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, nl == std::string_view::npos ? std::string_view::npos
                                          : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;

    size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = Trim(line);
    if (line.empty()) continue;

    size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": expected key = value");
    }
    std::string key = Upper(Trim(line.substr(0, eq)));
    std::string_view value = Trim(line.substr(eq + 1));
    if (value.empty()) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": empty value");
    }

    if (key == "PARENTS") {
      OBJREP_RETURN_NOT_OK(ParseU32(value, line_no, &out->db.num_parents));
    } else if (key == "SIZE_UNIT") {
      OBJREP_RETURN_NOT_OK(ParseU32(value, line_no, &out->db.size_unit));
    } else if (key == "USE_FACTOR") {
      OBJREP_RETURN_NOT_OK(ParseU32(value, line_no, &out->db.use_factor));
    } else if (key == "OVERLAP_FACTOR") {
      OBJREP_RETURN_NOT_OK(ParseU32(value, line_no, &out->db.overlap_factor));
    } else if (key == "CHILD_RELS") {
      OBJREP_RETURN_NOT_OK(ParseU32(value, line_no, &out->db.num_child_rels));
    } else if (key == "BUFFER_PAGES") {
      OBJREP_RETURN_NOT_OK(ParseU32(value, line_no, &out->db.buffer_pages));
    } else if (key == "CACHE") {
      OBJREP_RETURN_NOT_OK(ParseOnOff(value, line_no, &out->db.build_cache));
    } else if (key == "SIZE_CACHE") {
      OBJREP_RETURN_NOT_OK(ParseU32(value, line_no, &out->db.size_cache));
    } else if (key == "CLUSTER") {
      OBJREP_RETURN_NOT_OK(
          ParseOnOff(value, line_no, &out->db.build_cluster));
    } else if (key == "SEED") {
      OBJREP_RETURN_NOT_OK(ParseU64(value, line_no, &out->db.seed));
      out->workload.seed = out->db.seed + 1;
    } else if (key == "QUERIES") {
      OBJREP_RETURN_NOT_OK(
          ParseU32(value, line_no, &out->workload.num_queries));
    } else if (key == "NUM_TOP") {
      OBJREP_RETURN_NOT_OK(ParseU32(value, line_no, &out->workload.num_top));
    } else if (key == "PR_UPDATE") {
      OBJREP_RETURN_NOT_OK(
          ParseDouble(value, line_no, &out->workload.pr_update));
    } else if (key == "UPDATE_BATCH") {
      OBJREP_RETURN_NOT_OK(
          ParseU32(value, line_no, &out->workload.update_batch));
    } else if (key == "HOT_ACCESS_PROB") {
      OBJREP_RETURN_NOT_OK(
          ParseDouble(value, line_no, &out->workload.hot_access_prob));
    } else if (key == "HOT_REGION_FRACTION") {
      OBJREP_RETURN_NOT_OK(
          ParseDouble(value, line_no, &out->workload.hot_region_fraction));
    } else if (key == "SMART_THRESHOLD") {
      OBJREP_RETURN_NOT_OK(
          ParseU32(value, line_no, &out->options.smart_threshold));
    } else if (key == "CALIBRATION_WINDOW") {
      OBJREP_RETURN_NOT_OK(
          ParseU32(value, line_no, &out->options.calibration_window));
    } else if (key == "PREFETCH") {
      OBJREP_RETURN_NOT_OK(ParseOnOff(value, line_no, &out->db.prefetch));
    } else if (key == "READAHEAD_PAGES") {
      OBJREP_RETURN_NOT_OK(
          ParseU32(value, line_no, &out->db.readahead_pages));
    } else if (key == "PREFETCH_WORKERS") {
      OBJREP_RETURN_NOT_OK(
          ParseU32(value, line_no, &out->db.prefetch_workers));
    } else if (key == "RECLAIM_TEMPS") {
      OBJREP_RETURN_NOT_OK(
          ParseOnOff(value, line_no, &out->db.reclaim_temp_pages));
    } else if (key == "IO_LATENCY_US") {
      OBJREP_RETURN_NOT_OK(ParseU32(value, line_no, &out->db.io_latency_us));
    } else if (key == "IO_TRANSFER_US") {
      OBJREP_RETURN_NOT_OK(ParseU32(value, line_no, &out->db.io_transfer_us));
    } else if (key == "NET_PORT") {
      OBJREP_RETURN_NOT_OK(ParseU32(value, line_no, &out->net_port));
      if (out->net_port > 65535) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": net_port exceeds 65535");
      }
    } else if (key == "NET_WORKERS") {
      OBJREP_RETURN_NOT_OK(ParseU32(value, line_no, &out->net_workers));
      if (out->net_workers == 0) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": net_workers must be positive");
      }
    } else if (key == "NET_MAX_INFLIGHT") {
      OBJREP_RETURN_NOT_OK(ParseU32(value, line_no, &out->net_max_inflight));
      if (out->net_max_inflight == 0) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": net_max_inflight must be positive");
      }
    } else if (key == "SHARDS") {
      OBJREP_RETURN_NOT_OK(ParseU32(value, line_no, &out->shards));
      if (out->shards == 0) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": shards must be positive");
      }
    } else if (key == "WAL") {
      OBJREP_RETURN_NOT_OK(ParseOnOff(value, line_no, &out->db.enable_wal));
    } else if (key == "MVCC") {
      OBJREP_RETURN_NOT_OK(ParseOnOff(value, line_no, &out->db.enable_mvcc));
    } else if (key == "STRATEGIES") {
      out->strategies.clear();
      std::string_view rest = value;
      while (!rest.empty()) {
        size_t comma = rest.find(',');
        std::string_view item = rest.substr(0, comma);
        rest = comma == std::string_view::npos ? std::string_view()
                                               : rest.substr(comma + 1);
        StrategyKind kind;
        Status s = ParseStrategyName(item, &kind);
        if (!s.ok()) {
          return Status::InvalidArgument("line " + std::to_string(line_no) +
                                         ": " + s.message());
        }
        out->strategies.push_back(kind);
      }
      have_strategies = true;
    } else {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": unknown key '" + key + "'");
    }
  }
  if (!have_strategies || out->strategies.empty()) {
    return Status::InvalidArgument("config names no strategies");
  }
  // Auto-provision structures the chosen strategies need.
  for (StrategyKind k : out->strategies) {
    if (k == StrategyKind::kDfsCache || k == StrategyKind::kSmart ||
        k == StrategyKind::kDfsClustCache) {
      out->db.build_cache = true;
    }
    if (k == StrategyKind::kDfsClust || k == StrategyKind::kDfsClustCache) {
      out->db.build_cluster = true;
    }
    if (k == StrategyKind::kBfsJoinIndex) {
      out->db.build_join_index = true;
    }
  }
  return out->db.Validate();
}

}  // namespace objrep
