#include "core/runner.h"

#include "obs/trace.h"

namespace objrep {

Status RunWorkload(Strategy* strategy, ComplexDatabase* db,
                   const std::vector<Query>& queries, RunResult* out) {
  *out = RunResult{};
  // Start the measurement window clean: buffer-pool hit/miss counters and
  // cache statistics describe this sequence only, not the database build or
  // any earlier run against the same pool.
  db->pool->ResetStats();
  if (db->cache != nullptr) db->cache->ResetStats();
  IoCounters run_start = db->disk->counters();
  IoTagBreakdown tags_start = db->disk->breakdown();

  for (const Query& q : queries) {
    IoCounters before = db->disk->counters();
    if (q.kind == Query::Kind::kRetrieve) {
      TraceSpan span("retrieve", "query");
      span.SetArg("num_top", q.num_top);
      RetrieveResult result;
      OBJREP_RETURN_NOT_OK(strategy->ExecuteRetrieve(q, &result));
      uint64_t io = (db->disk->counters() - before).total();
      span.SetArg("io", io);
      out->retrieve_io += io;
      out->retrieve_cost += result.cost;
      out->result_count += result.values.size();
      for (int32_t v : result.values) out->result_sum += v;
      ++out->num_retrieves;
    } else {
      TraceSpan span("update", "query");
      span.SetArg("targets", q.update_targets.size());
      // With a WAL attached the update query is one transaction: all its
      // in-place writes (plus cache invalidations and deferred frees)
      // commit together or not at all (DESIGN.md §10). Without one this
      // is the seed's unprotected path.
      if (db->pool->wal() != nullptr) {
        OBJREP_RETURN_NOT_OK(db->pool->BeginTxn());
        Status s = strategy->ExecuteUpdate(q);
        if (s.ok()) {
          s = db->pool->CommitTxn();
        } else {
          db->pool->AbortTxn();
        }
        OBJREP_RETURN_NOT_OK(s);
      } else {
        OBJREP_RETURN_NOT_OK(strategy->ExecuteUpdate(q));
      }
      out->update_io += (db->disk->counters() - before).total();
      ++out->num_updates;
    }
    ++out->num_queries;
  }

  // Deferred dirty pages (updates, cache inserts, temps) are part of the
  // sequence's I/O bill: flush and charge them.
  IoCounters before_flush = db->disk->counters();
  {
    TraceSpan span("flush", "query");
    OBJREP_RETURN_NOT_OK(db->pool->FlushAll());
  }
  out->flush_io = (db->disk->counters() - before_flush).total();
  out->total_io = out->retrieve_io + out->update_io + out->flush_io;
  out->io = db->disk->counters() - run_start;
  out->io_by_tag = db->disk->breakdown() - tags_start;
  if (db->cache != nullptr) out->cache_stats = db->cache->stats();
  return Status::OK();
}

}  // namespace objrep
