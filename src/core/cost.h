// Cost accounting for query execution.
//
// Figure 5 of the paper splits query cost into ParCost ("accessing the
// tuples of ParentRel") and ChildCost ("fetching the subobjects"); we track
// two further components, temporary-relation I/O (BFS temp formation and
// sorting) and Cache-relation I/O, and fold them into the two paper
// buckets when printing Figure 5 (temp/cache I/O are child-fetch costs).
#ifndef OBJREP_CORE_COST_H_
#define OBJREP_CORE_COST_H_

#include <cstdint>

#include "storage/disk_manager.h"

namespace objrep {

struct CostBreakdown {
  uint64_t par_io = 0;    ///< ParentRel / ClusterRel contiguous access
  uint64_t child_io = 0;  ///< subobject fetches (probes or merge join)
  uint64_t temp_io = 0;   ///< temporary formation + sorting (BFS family)
  uint64_t cache_io = 0;  ///< Cache-relation reads/inserts

  uint64_t total() const { return par_io + child_io + temp_io + cache_io; }
  /// The paper's ChildCost: everything spent obtaining subobject values.
  uint64_t child_cost() const { return child_io + temp_io + cache_io; }

  CostBreakdown& operator+=(const CostBreakdown& o) {
    par_io += o.par_io;
    child_io += o.child_io;
    temp_io += o.temp_io;
    cache_io += o.cache_io;
    return *this;
  }
};

/// RAII bracket attributing physical I/O to one breakdown bucket.
class IoBracket {
 public:
  IoBracket(DiskManager* disk, uint64_t* bucket)
      : disk_(disk), bucket_(bucket), start_(disk->counters()) {}
  ~IoBracket() { Stop(); }

  IoBracket(const IoBracket&) = delete;
  IoBracket& operator=(const IoBracket&) = delete;

  void Stop() {
    if (disk_ != nullptr) {
      *bucket_ += (disk_->counters() - start_).total();
      disk_ = nullptr;
    }
  }

 private:
  DiskManager* disk_;
  uint64_t* bucket_;
  IoCounters start_;
};

}  // namespace objrep

#endif  // OBJREP_CORE_COST_H_
