#include "core/cost_model.h"

#include <algorithm>
#include <cmath>

#include "relational/temp_file.h"
#include "storage/page.h"

namespace objrep {

namespace {

// Fraction of the buffer realistically available for one relation's hot
// leaf pages (the rest holds internal nodes, the parent scan, temps).
constexpr double kBufferShare = 0.8;

/// Steady-state probability that a random leaf probe of a relation with
/// `leaf_pages` leaves hits the buffer.
double LeafResidency(double leaf_pages, double buffer_pages) {
  if (leaf_pages <= 0) return 1.0;
  return std::min(1.0, kBufferShare * buffer_pages / leaf_pages);
}

/// Random-probe footprint of `picks` uniform picks against a relation with
/// `leaf_pages` leaves: distinct leaves touched, discounted by buffer
/// residency, floored by the per-pick miss cost at tiny pick counts (each
/// pick is a separate descent there and the distinct approximation
/// underestimates).
double ProbeCost(double leaf_pages, double picks, double residency,
                 double fanout_rels) {
  if (picks <= 0 || leaf_pages <= 0) return 0;
  double per_rel = picks / fanout_rels;
  double distinct = ExpectedDistinctPages(leaf_pages, per_rel);
  double cost = fanout_rels * distinct * (1.0 - residency * 0.9);
  return std::max(cost, picks * (1.0 - residency) * 0.8);
}

/// Forecast cache hit rate: the observed recent rate when the cache is
/// warm, floored by the steady-state rate implied by capacity vs NumUnits
/// so a cold cache does not condemn DFSCACHE forever (the optimism that
/// lets the adaptive engine warm it). Invalidation pressure damps the
/// steady state: every I-lock invalidation forces a re-materialization of
/// a unit a NumTop-object retrieve would otherwise have found cached.
double CacheHitForecast(const DbShape& shape, const DynamicStats& dyn,
                        uint32_t num_top) {
  if (shape.cache_capacity == 0 || !dyn.steady_state) {
    return std::clamp(dyn.cache_hit_rate, 0.0, 1.0);
  }
  double p_cached =
      std::min(1.0, shape.cache_capacity / std::max(1.0, shape.num_units()));
  double damp =
      1.0 + dyn.invalidations_per_query / std::max(1u, num_top);
  // Churn-limited equilibrium: per retrieve window the retrieve installs
  // (references) NumTop units while updates touch update_unit_touches
  // units, evicting any that were cached. A unit is cached iff its last
  // reference beat its last update, so the steady-state cached fraction
  // cannot exceed NumTop / (NumTop + touches) regardless of capacity —
  // at a 95%-update mix this is what keeps the forecast from promising a
  // warm cache the update stream will never allow.
  double churn_cap =
      dyn.update_unit_touches > 0
          ? num_top / (num_top + dyn.update_unit_touches)
          : 1.0;
  double hit_ss = std::min(p_cached, churn_cap) / damp;
  // Occupancy-scaled projection: under LRU with a stationary access skew
  // the hit rate grows roughly linearly with occupancy, so the rate a
  // partially-filled cache shows understates what full adoption would
  // reach. Project to the achievable steady occupancy (bounded by how
  // many units exist); the projection converges onto the observed rate
  // as occupancy approaches steady state, so transient over-optimism
  // self-corrects. Below 5% occupancy the ratio is noise — the capacity
  // floor carries the forecast there.
  double occ_ss = std::min(
      1.0, shape.num_units() / std::max(1.0, double(shape.cache_capacity)));
  double projected =
      dyn.cache_occupancy > 0.05
          ? dyn.cache_hit_rate * occ_ss / dyn.cache_occupancy / damp
          : 0.0;
  projected = std::min(projected, churn_cap / damp);
  return std::clamp(std::max({dyn.cache_hit_rate, hit_ss, projected}), 0.0,
                    1.0);
}

}  // namespace

DbShape DbShape::Of(const ComplexDatabase& db) {
  DbShape s;
  s.parent_entries =
      static_cast<uint32_t>(db.parent_rel->tree().stats().num_entries);
  s.parent_leaf_pages = db.parent_rel->tree().stats().leaf_pages;
  s.num_child_rels = static_cast<uint32_t>(db.child_rels.size());
  if (s.num_child_rels > 0) {
    // Mean across the child relations (round to nearest): heterogeneous
    // fanouts would bias any single relation's stats.
    uint64_t entries = 0;
    uint64_t leaves = 0;
    for (const Table* t : db.child_rels) {
      entries += t->tree().stats().num_entries;
      leaves += t->tree().stats().leaf_pages;
    }
    const uint64_t n = s.num_child_rels;
    s.child_entries_per_rel = static_cast<uint32_t>((entries + n / 2) / n);
    s.child_leaf_pages_per_rel = static_cast<uint32_t>((leaves + n / 2) / n);
  }
  s.size_unit = db.spec.size_unit;
  s.buffer_pages = db.spec.buffer_pages;
  s.use_factor = db.spec.use_factor;
  s.overlap_factor = db.spec.overlap_factor;
  if (db.cache != nullptr) s.cache_capacity = db.spec.size_cache;
  if (db.cluster_rel != nullptr) {
    s.cluster_entries =
        static_cast<uint32_t>(db.cluster_rel->tree().stats().num_entries);
    s.cluster_leaf_pages = db.cluster_rel->tree().stats().leaf_pages;
    s.cluster_index_entry_bytes = db.spec.cluster_index_entry_bytes;
  }
  return s;
}

double ExpectedDistinctPages(double pages, double picks) {
  if (pages <= 0 || picks <= 0) return 0;
  // pages * (1 - (1 - 1/pages)^picks), numerically via expm1/log1p.
  return pages * -std::expm1(picks * std::log1p(-1.0 / pages));
}

DeviceModel DeviceModel::ForDevice(uint32_t io_latency_us,
                                   uint32_t transfer_us) {
  DeviceModel m;
  if (io_latency_us == 0 && transfer_us == 0) return m;  // pure counter
  double t = transfer_us > 0 ? transfer_us : 1.0;
  m.seq_read_cost = t;
  m.rand_read_cost = io_latency_us + t;
  m.write_cost = io_latency_us + t;
  return m;
}

bool CostModelCovers(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kDfs:
    case StrategyKind::kBfs:
    case StrategyKind::kBfsNoDup:
    case StrategyKind::kDfsCache:
    case StrategyKind::kDfsClust:
    case StrategyKind::kSmart:
      return true;
    default:
      return false;
  }
}

IoEstimate EstimateRetrieveDetail(StrategyKind kind, const DbShape& shape,
                                  const DynamicStats& dyn, uint32_t num_top,
                                  uint32_t smart_threshold) {
  IoEstimate e;
  const double parents_per_page =
      static_cast<double>(shape.parent_entries) /
      std::max(1u, shape.parent_leaf_pages);
  // Contiguous scan of the qualifying objects (every strategy but
  // DFSCLUST pays it; DFSCLUST scans ClusterRel instead).
  const double par_cost = num_top / parents_per_page + 1.0;

  const double total_picks = static_cast<double>(num_top) * shape.size_unit;
  // A value-representation database has no child relations: the retrieve
  // is the parent scan alone, and every child term below must vanish
  // instead of dividing by zero (the NaN regression).
  const bool childless = shape.num_child_rels == 0;
  const double ncr = std::max(1u, shape.num_child_rels);
  const double picks_per_rel = total_picks / ncr;
  const double leaf_pages = shape.child_leaf_pages_per_rel;
  const double residency = LeafResidency(leaf_pages, shape.buffer_pages);

  // Cache terms shared by DFSCACHE and SMART: each hit unit is one random
  // hash-file fetch; each miss materializes the unit and installs it (one
  // bucket read-modify-write, the write deferred but billed here — it
  // surfaces as eviction write-back in steady state).
  const double hit = CacheHitForecast(shape, dyn, num_top);

  switch (kind) {
    case StrategyKind::kDfs: {
      e.seq_reads = par_cost;
      if (childless) return e;
      e.rand_reads = ProbeCost(leaf_pages, total_picks, residency, ncr);
      return e;
    }
    case StrategyKind::kBfs:
    case StrategyKind::kBfsNoDup: {
      e.seq_reads = par_cost;
      if (childless) return e;
      // Temp formation + external sort: with the default work-mem a
      // sequence is one sorted run (write + read) plus the input pages
      // (write + read).
      const double temp_pages =
          std::ceil(total_picks / TempFile::kEntriesPerPage);
      e.writes += 2.0 * temp_pages;
      e.seq_reads += 2.0 * temp_pages + shape.num_child_rels;
      // Merge join: distinct child leaves touched, read once each
      // (minus whatever the buffer retains).
      double distinct_keys =
          kind == StrategyKind::kBfsNoDup
              ? ExpectedDistinctPages(shape.child_entries_per_rel,
                                      picks_per_rel)
              : picks_per_rel;
      double join_leaves = ExpectedDistinctPages(leaf_pages, distinct_keys);
      e.rand_reads += ncr * join_leaves * (1.0 - residency * 0.9);
      return e;
    }
    case StrategyKind::kDfsCache: {
      e.seq_reads = par_cost;
      if (childless) return e;
      e.rand_reads += hit * num_top;  // hash-file fetch per cached unit
      e.rand_reads += ProbeCost(leaf_pages, (1.0 - hit) * total_picks,
                                residency, ncr);
      // Maintenance per missed unit: bucket read + deferred install write.
      e.rand_reads += (1.0 - hit) * num_top;
      e.writes += (1.0 - hit) * num_top;
      return e;
    }
    case StrategyKind::kDfsClust: {
      if (shape.cluster_leaf_pages == 0) {
        // No clustered representation: behaves like DFS over ChildRel.
        return EstimateRetrieveDetail(StrategyKind::kDfs, shape, dyn,
                                      num_top, smart_threshold);
      }
      // Contiguous ClusterRel extent covering the qualifying parents and
      // their locally clustered subobjects — the ParCost inflation of
      // Figure 5(a).
      e.seq_reads = shape.cluster_leaf_pages *
                        (static_cast<double>(num_top) /
                         std::max(1u, shape.parent_entries)) +
                    1.0;
      // Subobjects clustered under another owner: ISAM descent plus a
      // random ClusterRel access each.
      double remote_frac = dyn.cluster_remote_frac >= 0
                               ? dyn.cluster_remote_frac
                               : 1.0 - 1.0 / std::max(1.0, shape.share_factor());
      double remote = total_picks * std::clamp(remote_frac, 0.0, 1.0);
      if (remote > 0) {
        double cl_residency =
            LeafResidency(shape.cluster_leaf_pages, shape.buffer_pages);
        e.rand_reads += ProbeCost(shape.cluster_leaf_pages, remote,
                                  cl_residency, 1.0);
        double isam_pages = shape.cluster_entries *
                            static_cast<double>(shape.cluster_index_entry_bytes) /
                            kPageSize;
        double isam_residency = LeafResidency(isam_pages, shape.buffer_pages);
        e.rand_reads += ExpectedDistinctPages(isam_pages, remote) *
                        (1.0 - isam_residency * 0.9);
      }
      return e;
    }
    case StrategyKind::kSmart: {
      if (num_top <= smart_threshold) {
        return EstimateRetrieveDetail(StrategyKind::kDfsCache, shape, dyn,
                                      num_top, smart_threshold);
      }
      // Cache-aware BFS (paper §5.3): cached units answer from the hash
      // file, the uncached remainder goes through temp + sort + merge
      // join; the cache is not maintained on this path.
      e.seq_reads = par_cost;
      if (childless) return e;
      e.rand_reads += hit * num_top;
      const double miss_picks = (1.0 - hit) * total_picks;
      const double temp_pages =
          std::ceil(miss_picks / TempFile::kEntriesPerPage);
      e.writes += 2.0 * temp_pages;
      e.seq_reads += 2.0 * temp_pages + shape.num_child_rels;
      double join_leaves =
          ExpectedDistinctPages(leaf_pages, miss_picks / ncr);
      e.rand_reads += ncr * join_leaves * (1.0 - residency * 0.9);
      return e;
    }
    default:
      return e;  // unmodelled: zero estimate (see CostModelCovers)
  }
}

double EstimateRetrieveIo(StrategyKind kind, const DbShape& shape,
                          uint32_t num_top) {
  if (!CostModelCovers(kind)) return -1.0;
  return EstimateRetrieveDetail(kind, shape, DynamicStats{}, num_top).pages();
}

StrategyKind ChooseStrategy(const DbShape& shape, uint32_t num_top) {
  double dfs = EstimateRetrieveIo(StrategyKind::kDfs, shape, num_top);
  double bfs = EstimateRetrieveIo(StrategyKind::kBfs, shape, num_top);
  // Ties break to BFS so the crossover (first NumTop where BFS is at
  // least as cheap) is exact at an equal-estimate boundary.
  return dfs < bfs ? StrategyKind::kDfs : StrategyKind::kBfs;
}

uint32_t PredictDfsBfsCrossover(const DbShape& shape) {
  uint32_t lo = 1, hi = shape.parent_entries;
  if (ChooseStrategy(shape, hi) == StrategyKind::kDfs) return 0;
  if (ChooseStrategy(shape, lo) == StrategyKind::kBfs) return 1;
  while (lo + 1 < hi) {
    uint32_t mid = lo + (hi - lo) / 2;
    if (ChooseStrategy(shape, mid) == StrategyKind::kDfs) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

}  // namespace objrep
