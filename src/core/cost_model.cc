#include "core/cost_model.h"

#include <algorithm>
#include <cmath>

#include "relational/temp_file.h"

namespace objrep {

namespace {

// Fraction of the buffer realistically available for one relation's hot
// leaf pages (the rest holds internal nodes, the parent scan, temps).
constexpr double kBufferShare = 0.8;

/// Steady-state probability that a random leaf probe of a relation with
/// `leaf_pages` leaves hits the buffer.
double LeafResidency(double leaf_pages, double buffer_pages) {
  if (leaf_pages <= 0) return 1.0;
  return std::min(1.0, kBufferShare * buffer_pages / leaf_pages);
}

}  // namespace

DbShape DbShape::Of(const ComplexDatabase& db) {
  DbShape s;
  s.parent_entries =
      static_cast<uint32_t>(db.parent_rel->tree().stats().num_entries);
  s.parent_leaf_pages = db.parent_rel->tree().stats().leaf_pages;
  s.num_child_rels = static_cast<uint32_t>(db.child_rels.size());
  if (s.num_child_rels > 0) {
    s.child_entries_per_rel = static_cast<uint32_t>(
        db.child_rels[0]->tree().stats().num_entries);
    s.child_leaf_pages_per_rel = db.child_rels[0]->tree().stats().leaf_pages;
  }
  s.size_unit = db.spec.size_unit;
  s.buffer_pages = db.spec.buffer_pages;
  return s;
}

double ExpectedDistinctPages(double pages, double picks) {
  if (pages <= 0 || picks <= 0) return 0;
  // pages * (1 - (1 - 1/pages)^picks), numerically via expm1/log1p.
  return pages * -std::expm1(picks * std::log1p(-1.0 / pages));
}

double EstimateRetrieveIo(StrategyKind kind, const DbShape& shape,
                          uint32_t num_top) {
  const double parents_per_page =
      static_cast<double>(shape.parent_entries) /
      std::max(1u, shape.parent_leaf_pages);
  // Contiguous scan of the qualifying objects (both strategies pay it).
  const double par_cost = num_top / parents_per_page + 1.0;

  const double total_picks = static_cast<double>(num_top) * shape.size_unit;
  const double picks_per_rel = total_picks / shape.num_child_rels;
  const double leaf_pages = shape.child_leaf_pages_per_rel;
  const double residency = LeafResidency(leaf_pages, shape.buffer_pages);

  switch (kind) {
    case StrategyKind::kDfs: {
      // One random probe per subobject; internal nodes are hot, each
      // missing leaf costs one read. Repeat picks of a hot leaf are free:
      // approximate with distinct leaves touched per query, floored by
      // buffer residency for re-touches across queries.
      double distinct =
          ExpectedDistinctPages(leaf_pages, picks_per_rel);
      double probe_cost =
          shape.num_child_rels * distinct * (1.0 - residency * 0.9);
      // At tiny NumTop the distinct approximation underestimates the
      // probe count (each pick is a separate descent): lower-bound it.
      probe_cost = std::max(probe_cost,
                            total_picks * (1.0 - residency) * 0.8);
      return par_cost + probe_cost;
    }
    case StrategyKind::kBfs:
    case StrategyKind::kBfsNoDup: {
      // Temp formation + external sort: with the default work-mem a
      // sequence is one sorted run (write + read) plus the input pages
      // (write + read).
      const double temp_pages =
          std::ceil(total_picks / TempFile::kEntriesPerPage);
      double temp_cost = 4.0 * temp_pages + shape.num_child_rels;
      // Merge join: distinct child leaves touched, read once each
      // (minus whatever the buffer retains).
      double distinct_keys =
          kind == StrategyKind::kBfsNoDup
              ? ExpectedDistinctPages(shape.child_entries_per_rel,
                                      picks_per_rel)
              : picks_per_rel;
      double join_leaves = ExpectedDistinctPages(
          leaf_pages, distinct_keys);
      double join_cost =
          shape.num_child_rels * join_leaves * (1.0 - residency * 0.9);
      return par_cost + temp_cost + join_cost;
    }
    default:
      // Dynamic-state strategies are not analytically modelled.
      return -1.0;
  }
}

StrategyKind ChooseStrategy(const DbShape& shape, uint32_t num_top) {
  double dfs = EstimateRetrieveIo(StrategyKind::kDfs, shape, num_top);
  double bfs = EstimateRetrieveIo(StrategyKind::kBfs, shape, num_top);
  return dfs <= bfs ? StrategyKind::kDfs : StrategyKind::kBfs;
}

uint32_t PredictDfsBfsCrossover(const DbShape& shape) {
  uint32_t lo = 1, hi = shape.parent_entries;
  if (ChooseStrategy(shape, hi) == StrategyKind::kDfs) return 0;
  if (ChooseStrategy(shape, lo) == StrategyKind::kBfs) return 1;
  while (lo + 1 < hi) {
    uint32_t mid = lo + (hi - lo) / 2;
    if (ChooseStrategy(shape, mid) == StrategyKind::kDfs) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

}  // namespace objrep
