// DFS (paper §3.1 [1]): "For each OID of 'elders', fetch the corresponding
// subobject from the relation person, and return its name."
//
// A nested-loop join between ParentRel and ChildRel: every subobject costs
// a random B-tree probe, which is why DFS loses to a merge join once
// NumTop grows past a few tens of objects (Figure 3).
#include "core/strategies_impl.h"

namespace objrep {
namespace internal {

Status DfsStrategy::ExecuteRetrieve(const Query& q, RetrieveResult* out) {
  CostBreakdown& cost = out->cost;
  IoCounters start = db_->disk->counters();
  OBJREP_RETURN_NOT_OK(ScanParents(
      db_, q,
      [&](uint32_t /*parent_key*/, const std::vector<Oid>& unit) -> Status {
        IoBracket child_bracket(db_->disk.get(), &cost.child_io);
        OBJREP_RETURN_NOT_OK(MaterializeUnit(
            db_, unit, q.attr_index, /*raw_records=*/nullptr, &out->values));
        out->oids.insert(out->oids.end(), unit.begin(), unit.end());
        return Status::OK();
      }));
  uint64_t total = (db_->disk->counters() - start).total();
  cost.par_io = total - cost.child_io;
  return Status::OK();
}

}  // namespace internal
}  // namespace objrep
