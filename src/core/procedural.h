// Procedural primary representation (paper §2.1.1), with the caching
// alternatives of [JHIN88] — the representation matrix's first column.
//
// "The set of subobjects associated with an object is identified by a
// procedure, which, when executed, evaluates to the corresponding
// subobjects" — e.g. elders = retrieve (person.all) where person.age >= 60.
//
// We model the stored query as a selection on a non-key attribute (`tag`)
// of ChildRel, so executing it costs a full relation scan, exactly like
// the paper's age predicate on an unindexed attribute. Caching options:
//
//   kExec         — run the stored query every time (cached representation
//                   "none").
//   kCacheOutside — materialized values cached in a shared hash relation
//                   keyed on the query; objects storing the same query
//                   share the entry; I-locks invalidate on update.
//   kCacheInside  — materialized values cached *inside* the referencing
//                   object's tuple; no sharing; the object grows, which
//                   inflates ParentRel and makes invalidation a tuple
//                   rewrite. [JHIN88]: outside caching wins over most of
//                   the parameter space — bench/procedural_caching
//                   reproduces that.
#ifndef OBJREP_CORE_PROCEDURAL_H_
#define OBJREP_CORE_PROCEDURAL_H_

#include <memory>
#include <unordered_map>

#include "access/secondary_index.h"
#include "core/cost.h"
#include "core/strategy.h"
#include "objstore/cache_manager.h"
#include "objstore/spec.h"
#include "objstore/workload.h"
#include "relational/table.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "util/status.h"

namespace objrep {

enum class ProcStrategy {
  kExec,          ///< run the stored query as a full scan every time
  kExecIndexed,   ///< run it through a secondary index on the predicate
                  ///< attribute (requires spec.build_tag_index)
  kCacheOutside,  ///< shared cache of materialized result *values*
  kCacheOids,     ///< shared cache of the result's *OIDs* (§2.3's other
                  ///< cached representation): hits re-probe the subobjects
                  ///< by identifier, but value updates never invalidate —
                  ///< the result's membership is unchanged
  kCacheInside,   ///< result values embedded in the referencing tuple
};

const char* ProcStrategyName(ProcStrategy s);

class ProceduralDatabase {
 public:
  /// Generates a procedural database per `spec` (overlap_factor must be 1:
  /// a stored predicate defines the unit, so units cannot overlap).
  static Status Build(const DatabaseSpec& spec,
                      std::unique_ptr<ProceduralDatabase>* out);

  Status ExecuteRetrieve(const Query& q, ProcStrategy strategy,
                         RetrieveResult* out);
  Status ExecuteUpdate(const Query& q, ProcStrategy strategy);

  DiskManager* disk() { return disk_.get(); }
  CacheManager* outside_cache() { return outside_cache_.get(); }
  uint32_t parent_leaf_pages() const {
    return parent_rel_.tree().stats().leaf_pages;
  }
  /// Ground truth for tests: the member keys of each group.
  const std::vector<std::vector<uint32_t>>& groups() const { return groups_; }
  const std::vector<uint32_t>& group_of_parent() const {
    return group_of_parent_;
  }

 private:
  ProceduralDatabase() = default;

  /// Runs the stored query of group `tag`: full ChildRel scan.
  Status RunStoredQuery(uint32_t tag, std::vector<std::string>* records);
  /// Runs it through the tag index: one range lookup + key probes.
  Status RunStoredQueryIndexed(uint32_t tag,
                               std::vector<std::string>* records);

  DatabaseSpec spec_;
  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  Table parent_rel_;
  Table child_rel_;
  SecondaryIndex tag_index_;  // on ChildRel.tag, when spec.build_tag_index
  bool has_tag_index_ = false;
  std::unique_ptr<CacheManager> outside_cache_;

  // Inside-cache bookkeeping: which parents currently embed a blob that
  // contains a given child (child key -> parent keys). The information
  // itself lives with the data (the blob is in the parent tuple); the map
  // mirrors the I-lock bookkeeping of the outside cache.
  std::unordered_map<uint32_t, std::vector<uint32_t>> inside_locks_;

  std::vector<std::vector<uint32_t>> groups_;   // group -> child keys
  std::vector<uint32_t> group_of_parent_;
};

}  // namespace objrep

#endif  // OBJREP_CORE_PROCEDURAL_H_
