#include "core/value_rep.h"

#include <algorithm>

#include "objstore/rows.h"
#include "objstore/unit_blob.h"

namespace objrep {

namespace {

Schema MakeValueRelSchema(uint32_t parent_dummy_width) {
  return Schema({
      {"OID", FieldType::kInt64, 0},
      {"ret1", FieldType::kInt32, 0},
      {"ret2", FieldType::kInt32, 0},
      {"ret3", FieldType::kInt32, 0},
      {"dummy", FieldType::kChar, parent_dummy_width},
      {"values", FieldType::kBytes, 0},  // inlined subobject records
  });
}

constexpr size_t kValueBlobField = 5;

std::string EncodeParentList(const std::vector<uint32_t>& parents) {
  std::string out;
  out.reserve(parents.size() * 4);
  for (uint32_t p : parents) {
    out.append(reinterpret_cast<const char*>(&p), 4);
  }
  return out;
}

std::vector<uint32_t> DecodeParentList(std::string_view raw) {
  std::vector<uint32_t> out;
  out.reserve(raw.size() / 4);
  for (size_t i = 0; i + 4 <= raw.size(); i += 4) {
    uint32_t p;
    std::memcpy(&p, raw.data() + i, 4);
    out.push_back(p);
  }
  return out;
}

}  // namespace

Status ValueRepDatabase::Build(const ComplexDatabase& src,
                               std::unique_ptr<ValueRepDatabase>* out) {
  auto db = std::unique_ptr<ValueRepDatabase>(new ValueRepDatabase());
  db->disk_ = std::make_unique<DiskManager>();
  db->pool_ =
      std::make_unique<BufferPool>(db->disk_.get(), src.spec.buffer_pages);
  db->child_schema_ = src.child_rels[0]->schema();
  db->size_unit_ = src.spec.size_unit;
  db->value_rel_ = Table("ValueRel", 1,
                         MakeValueRelSchema(src.parent_dummy_width));

  // One encoded record per (relation, key) child, reused across replicas.
  auto encode_child = [&](const Oid& oid, std::string* raw) -> Status {
    for (size_t r = 0; r < src.child_rels.size(); ++r) {
      if (src.child_rels[r]->rel_id() != oid.rel) continue;
      return EncodeRecord(
          db->child_schema_,
          ChildRowValues(src.child_rows[r][oid.key], src.child_dummy_width),
          raw);
    }
    return Status::Corruption("child OID references unknown relation");
  };

  std::vector<std::pair<uint64_t, std::vector<Value>>> rows;
  rows.reserve(src.spec.num_parents);
  std::unordered_map<uint64_t, std::vector<uint32_t>> replicas;
  for (uint32_t p = 0; p < src.spec.num_parents; ++p) {
    std::vector<Value> parent_vals;
    OBJREP_RETURN_NOT_OK(src.parent_rel->Get(p, &parent_vals));
    const std::vector<Oid>& unit = src.units[src.unit_of_parent[p]];
    std::vector<std::string> records;
    records.reserve(unit.size());
    for (const Oid& oid : unit) {
      std::string raw;
      OBJREP_RETURN_NOT_OK(encode_child(oid, &raw));
      records.push_back(std::move(raw));
      replicas[oid.Packed()].push_back(p);
      ++db->replica_count_;
    }
    rows.emplace_back(
        p, std::vector<Value>{parent_vals[kParentOid],
                              parent_vals[kParentRet1],
                              parent_vals[kParentRet2],
                              parent_vals[kParentRet3],
                              parent_vals[kParentDummy],
                              Value(EncodeUnitBlob(records))});
  }
  OBJREP_RETURN_NOT_OK(
      db->value_rel_.BulkLoad(db->pool_.get(), rows, src.spec.fill_factor));

  // Replica index: packed child OID -> list of referencing parents.
  std::vector<BPlusTree::Entry> index_entries;
  index_entries.reserve(replicas.size());
  for (const auto& [packed, parents] : replicas) {
    index_entries.push_back(
        BPlusTree::Entry{packed, EncodeParentList(parents)});
  }
  std::sort(index_entries.begin(), index_entries.end(),
            [](const BPlusTree::Entry& a, const BPlusTree::Entry& b) {
              return a.key < b.key;
            });
  OBJREP_RETURN_NOT_OK(BPlusTree::BulkLoad(db->pool_.get(), index_entries,
                                           src.spec.fill_factor,
                                           &db->replica_index_));

  OBJREP_RETURN_NOT_OK(db->pool_->FlushAll());
  db->disk_->ResetCounters();
  *out = std::move(db);
  return Status::OK();
}

Status ValueRepDatabase::ExecuteRetrieve(const Query& q,
                                         RetrieveResult* out) {
  IoCounters start = disk_->counters();
  BPlusTree::Iterator it = value_rel_.tree().NewIterator();
  OBJREP_RETURN_NOT_OK(it.Seek(q.lo_parent));
  const uint64_t end = static_cast<uint64_t>(q.lo_parent) + q.num_top;
  while (it.valid() && it.key() < end) {
    Value blob;
    OBJREP_RETURN_NOT_OK(DecodeField(value_rel_.schema(), it.value(),
                                     kValueBlobField, &blob));
    std::vector<std::string_view> records;
    OBJREP_RETURN_NOT_OK(DecodeUnitBlob(blob.as_string(), &records));
    for (std::string_view raw : records) {
      int32_t v;
      OBJREP_RETURN_NOT_OK(DecodeChildRet(child_schema_, raw, q.attr_index,
                                          &v));
      out->values.push_back(v);
    }
    OBJREP_RETURN_NOT_OK(it.Next());
  }
  // Value-based retrieval is one contiguous scan: all ParCost.
  out->cost.par_io = (disk_->counters() - start).total();
  return Status::OK();
}

Status ValueRepDatabase::ExecuteUpdate(const Query& q) {
  for (const Oid& target : q.update_targets) {
    std::string raw_list;
    Status s = replica_index_.Get(target.Packed(), &raw_list);
    if (s.IsNotFound()) continue;  // unreferenced subobject: no replicas
    OBJREP_RETURN_NOT_OK(s);
    for (uint32_t p : DecodeParentList(raw_list)) {
      std::vector<Value> row;
      OBJREP_RETURN_NOT_OK(value_rel_.Get(p, &row));
      std::vector<std::string_view> records;
      OBJREP_RETURN_NOT_OK(
          DecodeUnitBlob(row[kValueBlobField].as_string(), &records));
      std::vector<std::string> rebuilt;
      rebuilt.reserve(records.size());
      bool changed = false;
      for (std::string_view rec : records) {
        Value oid_val;
        OBJREP_RETURN_NOT_OK(
            DecodeField(child_schema_, rec, kChildOid, &oid_val));
        if (static_cast<uint64_t>(oid_val.as_int64()) == target.Packed()) {
          std::vector<Value> fields;
          OBJREP_RETURN_NOT_OK(DecodeRecord(child_schema_, rec, &fields));
          fields[kChildRet1] = Value(q.new_ret1);
          std::string re;
          OBJREP_RETURN_NOT_OK(EncodeRecord(child_schema_, fields, &re));
          rebuilt.push_back(std::move(re));
          changed = true;
        } else {
          rebuilt.emplace_back(rec);
        }
      }
      if (!changed) {
        return Status::Corruption("replica index points at a non-replica");
      }
      row[kValueBlobField] = Value(EncodeUnitBlob(rebuilt));
      OBJREP_RETURN_NOT_OK(value_rel_.UpdateInPlace(p, row));
    }
  }
  return Status::OK();
}

}  // namespace objrep
