// Query-processing strategies over the OID representation (paper §3, Fig 2).
//
//   DFS       — per-object nested-loop probing of subobjects
//   BFS       — temp of OIDs, sort, merge join (the competitive form)
//   BFSNODUP  — BFS with duplicate elimination before the join
//   DFSCACHE  — DFS against the outside cache, with cache maintenance
//   DFSCLUST  — depth-first over the clustered relation
//   SMART     — DFSCACHE below a NumTop threshold, cache-aware BFS above,
//               never maintaining the cache on the BFS path (paper §5.3)
//
// A strategy executes both query kinds of the workload: retrieves produce
// the projected attribute values of the selected objects' subobjects (in
// reference order for depth-first strategies), updates modify ChildRel
// tuples in place — translated to ClusterRel under clustering, and
// invalidating I-locked units under caching.
#ifndef OBJREP_CORE_STRATEGY_H_
#define OBJREP_CORE_STRATEGY_H_

#include <memory>
#include <string_view>
#include <vector>

#include "core/cost.h"
#include "objstore/database.h"
#include "objstore/workload.h"
#include "util/status.h"

namespace objrep {

/// Output of one retrieve. `oids[i]` names the subobject that produced
/// `values[i]` — the two vectors are always parallel. The scatter-gather
/// layer (src/shard/) depends on this: BFS-family per-shard streams are
/// merged by packed OID, and BFSNODUP dedups across shards by OID.
struct RetrieveResult {
  std::vector<int32_t> values;
  std::vector<Oid> oids;
  CostBreakdown cost;
};

class Strategy {
 public:
  explicit Strategy(ComplexDatabase* db) : db_(db) {}
  virtual ~Strategy() = default;

  Strategy(const Strategy&) = delete;
  Strategy& operator=(const Strategy&) = delete;

  virtual std::string_view name() const = 0;

  virtual Status ExecuteRetrieve(const Query& q, RetrieveResult* out) = 0;

  /// Default: in-place ChildRel update (paper §4 [1]). Overridden by
  /// clustering (translate to ClusterRel) and caching (invalidate).
  virtual Status ExecuteUpdate(const Query& q);

 protected:
  /// Applies one in-place ret1 modification to the base ChildRel copy.
  Status UpdateChildInPlace(const Oid& oid, int32_t new_ret1);

  ComplexDatabase* db_;
};

/// Which strategy to instantiate. kDfsClustCache combines clustering with
/// caching — the representation matrix box the paper *shades out* (§3.4:
/// "it does not make sense to combine the two"); it exists here so that
/// claim can be verified experimentally (bench/ablation_clustcache).
enum class StrategyKind {
  kDfs,
  kBfs,
  kBfsNoDup,
  kDfsCache,
  kDfsClust,
  kSmart,
  kDfsClustCache,
  /// BFS whose OID-collection phase scans the dense join index ([VALD86])
  /// instead of the wide ParentRel tuples. Requires spec.build_join_index.
  kBfsJoinIndex,
  /// BFS with a hash join instead of sort + merge join (extension; INGRES
  /// 5 had no hash join): the temporary is loaded into an in-memory hash
  /// table and ChildRel is scanned sequentially once. No sort cost, but
  /// the probe side reads *every* leaf — the classic trade against the
  /// merge join, which §3.1's "optimal joining strategy depends on the
  /// sizes" reasoning extends to naturally.
  kBfsHash,
  /// Re-plans every retrieve: estimates each supported strategy with the
  /// analytic cost model fed by observed cache/cluster dynamics, corrects
  /// the estimates with feedback calibration from measured per-query I/O,
  /// and executes the argmin plan (core/adaptive.h, DESIGN.md §12).
  kAdaptive,
};

struct StrategyOptions {
  /// SMART's NumTop threshold N (paper §5.3: N = 300).
  uint32_t smart_threshold = 300;
  /// Working memory for BFS-family external sorts (pages).
  uint32_t sort_work_mem_pages = 16;
  /// ADAPTIVE's calibration horizon: queries over which an I/O
  /// observation decays (EWMA alpha = 2 / (window + 1)). Long enough that
  /// one noisy per-query measurement (a lucky buffer-hit streak, an
  /// unlucky miss) cannot reorder the plans by itself; exploration trials
  /// converge faster than this (CostCalibrator::kTrialAlpha).
  uint32_t calibration_window = 32;
};

/// Factory. Fails if `db` lacks a structure the strategy requires
/// (ClusterRel for DFSCLUST, the Cache for DFSCACHE/SMART).
Status MakeStrategy(StrategyKind kind, ComplexDatabase* db,
                    const StrategyOptions& options,
                    std::unique_ptr<Strategy>* out);

const char* StrategyKindName(StrategyKind kind);

}  // namespace objrep

#endif  // OBJREP_CORE_STRATEGY_H_
