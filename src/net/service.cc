#include "net/service.h"

#include <string>
#include <utility>

#include "exec/query_locks.h"
#include "mvcc/engine.h"
#include "obs/heat_map.h"
#include "obs/io_context.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "storage/buffer_pool.h"

namespace objrep {
namespace net {

namespace {

Response ErrorResponse(const Request& req, RespStatus status,
                       std::string msg) {
  Response resp;
  resp.status = status;
  resp.verb = req.verb;
  resp.id = req.id;
  resp.error = std::move(msg);
  return resp;
}

}  // namespace

ObjService::ObjService(ComplexDatabase* db, StrategyKind default_strategy,
                       StrategyOptions options)
    : db_(db),
      engine_(nullptr),
      default_strategy_(default_strategy),
      options_(options) {}

ObjService::ObjService(shard::ShardedEngine* engine,
                       StrategyKind default_strategy, StrategyOptions options)
    : db_(nullptr),
      engine_(engine),
      default_strategy_(default_strategy),
      options_(options) {}

ObjService::SessionLease::~SessionLease() {
  if (service == nullptr || strategy == nullptr) return;
  std::lock_guard<std::mutex> l(service->sessions_mu_);
  service->idle_[kind].push_back(std::move(strategy));
}

Status ObjService::Checkout(StrategyKind kind, SessionLease* lease) {
  lease->kind = kind;
  {
    std::lock_guard<std::mutex> l(sessions_mu_);
    auto it = idle_.find(kind);
    if (it != idle_.end() && !it->second.empty()) {
      lease->strategy = std::move(it->second.back());
      it->second.pop_back();
      lease->service = this;
      return Status::OK();
    }
  }
  // Built outside the pool mutex: MakeStrategy may read the database
  // (shape probes), and holding sessions_mu_ across that would serialize
  // unrelated checkouts.
  OBJREP_RETURN_NOT_OK(MakeStrategy(kind, db_, options_, &lease->strategy));
  lease->service = this;
  return Status::OK();
}

Response ObjService::Execute(const Request& req) {
  if (req.verb != Verb::kRetrieve && req.verb != Verb::kUpdate) {
    return ErrorResponse(req, RespStatus::kBadRequest,
                         "verb is not executable against the database");
  }

  StrategyKind kind;
  if (Status s = StrategyFromByte(req.strategy, default_strategy_, &kind);
      !s.ok()) {
    return ErrorResponse(req, RespStatus::kBadRequest, s.ToString());
  }
  SessionLease lease;
  if (db_ != nullptr) {
    // The sharded engine pools its own sessions; only the single-db
    // backend checks one out here.
    if (Status s = Checkout(kind, &lease); !s.ok()) {
      // The database lacks a structure this strategy needs (no Cache, no
      // ClusterRel): a client error, not a server fault.
      return ErrorResponse(req, RespStatus::kBadRequest,
                           "strategy unavailable: " + s.ToString());
    }
  }

  Response resp;
  resp.verb = req.verb;
  resp.id = req.id;

  // Profile collection: installed when the client asked (PROFILE flag) or
  // whenever the slow-query ring is armed — the layers below report into
  // the thread-local collector only while one is installed, so the
  // un-profiled path costs one thread-local load per hook.
  const bool want_profile = req.verb == Verb::kRetrieve &&
                            (req.flags & kReqFlagProfile) != 0;
  const bool collect = want_profile || SlowQueryRing::Global().armed();
  ProfileCollector collector;
  std::unique_ptr<ProfileCollector::Scope> scope;
  uint64_t start_us = 0;
  IoTagBreakdown tags_before;
  uint64_t hits_before = 0, misses_before = 0;
  if (collect) {
    collector.profile.trace_id = CurrentTraceId();
    collector.profile.verb =
        req.verb == Verb::kRetrieve ? "retrieve" : "update";
    scope = std::make_unique<ProfileCollector::Scope>(&collector);
    start_us = Trace::NowMicros();
    tags_before = CurrentThreadIoTags();
    const IoThreadState& st = CurrentIoThreadState();
    hits_before = st.cache_hits;
    misses_before = st.cache_misses;
  }

  Status s = req.verb == Verb::kRetrieve
                 ? DoRetrieve(req, kind, lease.strategy.get(), &resp)
                 : DoUpdate(req, kind, lease.strategy.get(), &resp);

  if (collect) {
    collector.profile.total_us = Trace::NowMicros() - start_us;
    collector.profile.io = CurrentThreadIoTags() - tags_before;
    const IoThreadState& st = CurrentIoThreadState();
    collector.profile.cache_hits = st.cache_hits - hits_before;
    collector.profile.cache_misses = st.cache_misses - misses_before;
    collector.profile.rows = resp.values.size();
    scope.reset();
    SlowQueryRing::Global().MaybeRecord(collector.profile);
    if (want_profile && s.ok()) {
      resp.profile_json = collector.profile.ToJson();
    }
  }

  if (!s.ok()) {
    RespStatus rs = s.IsInvalidArgument() ? RespStatus::kBadRequest
                                          : RespStatus::kError;
    return ErrorResponse(req, rs, s.ToString());
  }
  return resp;
}

Status ObjService::DoRetrieve(const Request& req, StrategyKind kind,
                              Strategy* session, Response* resp) {
  if (req.num_top == 0) {
    return Status::InvalidArgument("retrieve: num_top must be positive");
  }
  if (req.lo_parent >= spec().num_parents ||
      req.num_top > spec().num_parents - req.lo_parent) {
    return Status::InvalidArgument(
        "retrieve: parent range exceeds |ParentRel|");
  }
  if (req.attr_index > 2) {
    return Status::InvalidArgument("retrieve: attr_index out of [0, 2]");
  }
  Query q;
  q.kind = Query::Kind::kRetrieve;
  q.lo_parent = req.lo_parent;
  q.num_top = req.num_top;
  q.attr_index = req.attr_index;

  TraceSpan span("retrieve", "query");
  span.SetArg("num_top", q.num_top);
  RetrieveResult result;
  if (engine_ != nullptr) {
    // Per-shard locks are taken inside the engine, one sub-query at a
    // time — the whole point of sharding the lock manager. The engine
    // also reports per-shard timing/IO slices into any installed
    // profile collector.
    OBJREP_RETURN_NOT_OK(engine_->ExecuteRetrieve(kind, q, &result));
  } else if (db_->mvcc != nullptr) {
    // Snapshot read — no table S lock; the wire protocol is unchanged,
    // MVCC is purely a server-side execution mode.
    OBJREP_RETURN_NOT_OK(mvcc::SnapshotRetrieve(session, db_, q, &result));
  } else {
    const uint64_t lock_t0 = Trace::NowMicros();
    ScopedLockSet held(&locks_, LockRequestsFor(*db_, q));
    if (ProfileCollector* c = ProfileCollector::Current()) {
      c->AddLockWait(Trace::NowMicros() - lock_t0);
    }
    OBJREP_RETURN_NOT_OK(session->ExecuteRetrieve(q, &result));
  }

  // Traffic heat: the parent range this request walked, and the child
  // relations its subobjects came from (one relaxed add per relation).
  HeatMap& heat = HeatMap::Global();
  if (heat.enabled()) {
    heat.TouchParents(q.lo_parent, q.num_top);
    uint64_t rel_counts[HeatMap::kRelSlots] = {};
    for (const Oid& oid : result.oids) {
      ++rel_counts[oid.rel % HeatMap::kRelSlots];
    }
    for (size_t r = 0; r < HeatMap::kRelSlots; ++r) {
      if (rel_counts[r] != 0) {
        heat.TouchRel(static_cast<uint32_t>(r), rel_counts[r]);
      }
    }
  }
  resp->values = std::move(result.values);
  return Status::OK();
}

Status ObjService::DoUpdate(const Request& req, StrategyKind kind,
                            Strategy* session, Response* resp) {
  if (req.update_targets.empty()) {
    return Status::InvalidArgument("update: empty OID list");
  }
  const uint32_t children_per_rel =
      spec().num_children_total() / spec().num_child_rels;
  // Relation ids are identical on every shard (same registration order),
  // so shard 0's catalog answers for the whole sharded store.
  const ComplexDatabase* catalog_db =
      db_ != nullptr ? db_ : engine_->db()->shards[0].get();
  for (const Oid& oid : req.update_targets) {
    if (catalog_db->ChildRelById(oid.rel) == nullptr) {
      return Status::InvalidArgument("update: OID names no child relation");
    }
    if (oid.key >= children_per_rel) {
      return Status::InvalidArgument("update: OID key out of range");
    }
  }
  Query q;
  q.kind = Query::Kind::kUpdate;
  q.update_targets = req.update_targets;
  q.new_ret1 = req.new_ret1;

  TraceSpan span("update", "query");
  span.SetArg("targets", q.update_targets.size());
  HeatMap& heat = HeatMap::Global();
  if (heat.enabled()) {
    for (const Oid& oid : req.update_targets) heat.TouchRel(oid.rel);
  }
  if (engine_ != nullptr) {
    // The engine fans out to every holder shard, each under its own X
    // locks and WAL transaction.
    OBJREP_RETURN_NOT_OK(engine_->ExecuteUpdate(kind, q));
    resp->updated = static_cast<uint32_t>(q.update_targets.size());
    return Status::OK();
  }
  if (db_->mvcc != nullptr) {
    // Version-store commit: no table X lock, conflicts only on
    // overlapping targets (first-committer-wins, retried internally).
    const uint64_t commit_t0 = Trace::NowMicros();
    OBJREP_RETURN_NOT_OK(mvcc::MvccUpdate(db_, q));
    if (ProfileCollector* c = ProfileCollector::Current()) {
      c->AddCommitWait(Trace::NowMicros() - commit_t0);
    }
    resp->updated = static_cast<uint32_t>(q.update_targets.size());
    return Status::OK();
  }
  const uint64_t lock_t0 = Trace::NowMicros();
  ScopedLockSet held(&locks_, LockRequestsFor(*db_, q));
  if (ProfileCollector* c = ProfileCollector::Current()) {
    c->AddLockWait(Trace::NowMicros() - lock_t0);
  }
  // One WAL transaction per update, the ConcurrentRunner's idiom: the X
  // table locks are already held, so wal_mu_ ranks below them (DESIGN.md
  // §10 latch order).
  if (db_->pool->wal() != nullptr) {
    OBJREP_RETURN_NOT_OK(db_->pool->BeginTxn());
    Status s = session->ExecuteUpdate(q);
    if (s.ok()) {
      s = db_->pool->CommitTxn();
    } else {
      db_->pool->AbortTxn();
    }
    OBJREP_RETURN_NOT_OK(s);
  } else {
    OBJREP_RETURN_NOT_OK(session->ExecuteUpdate(q));
  }
  resp->updated = static_cast<uint32_t>(q.update_targets.size());
  return Status::OK();
}

}  // namespace net
}  // namespace objrep
