#include "net/protocol.h"

#include <cstring>

namespace objrep {
namespace net {

namespace {

// Encoding helpers mirror net/frame.cc: explicit little-endian bytes, so
// the wire format is identical across hosts.
void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  char b[4];
  b[0] = static_cast<char>(v & 0xFF);
  b[1] = static_cast<char>((v >> 8) & 0xFF);
  b[2] = static_cast<char>((v >> 16) & 0xFF);
  b[3] = static_cast<char>((v >> 24) & 0xFF);
  out->append(b, 4);
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v & 0xFFFFFFFFu));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

void PutI32(std::string* out, int32_t v) {
  PutU32(out, static_cast<uint32_t>(v));
}

void PutBytes(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

/// Bounds-checked cursor over a payload.
class Reader {
 public:
  explicit Reader(std::string_view data) : p_(data.data()), n_(data.size()) {}

  Status U8(uint8_t* out) {
    if (off_ + 1 > n_) return Truncated();
    *out = static_cast<uint8_t>(p_[off_++]);
    return Status::OK();
  }
  Status U32(uint32_t* out) {
    if (off_ + 4 > n_) return Truncated();
    *out = static_cast<uint32_t>(static_cast<unsigned char>(p_[off_])) |
           static_cast<uint32_t>(static_cast<unsigned char>(p_[off_ + 1]))
               << 8 |
           static_cast<uint32_t>(static_cast<unsigned char>(p_[off_ + 2]))
               << 16 |
           static_cast<uint32_t>(static_cast<unsigned char>(p_[off_ + 3]))
               << 24;
    off_ += 4;
    return Status::OK();
  }
  Status U64(uint64_t* out) {
    uint32_t lo, hi;
    OBJREP_RETURN_NOT_OK(U32(&lo));
    OBJREP_RETURN_NOT_OK(U32(&hi));
    *out = static_cast<uint64_t>(lo) | static_cast<uint64_t>(hi) << 32;
    return Status::OK();
  }
  Status I32(int32_t* out) {
    uint32_t v;
    OBJREP_RETURN_NOT_OK(U32(&v));
    *out = static_cast<int32_t>(v);
    return Status::OK();
  }
  Status Bytes(std::string* out) {
    uint32_t len;
    OBJREP_RETURN_NOT_OK(U32(&len));
    if (off_ + len > n_) return Truncated();
    out->assign(p_ + off_, len);
    off_ += len;
    return Status::OK();
  }
  Status Done() const {
    if (off_ != n_) return Status::Corruption("message: trailing bytes");
    return Status::OK();
  }
  size_t remaining() const { return n_ - off_; }

 private:
  static Status Truncated() {
    return Status::Corruption("message: truncated payload");
  }
  const char* p_;
  size_t n_;
  size_t off_ = 0;
};

}  // namespace

std::string EncodeRequest(const Request& req) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(req.verb));
  PutU8(&out, req.strategy);
  PutU8(&out, req.flags);
  PutU64(&out, req.id);
  switch (req.verb) {
    case Verb::kRetrieve:
      PutU32(&out, req.lo_parent);
      PutU32(&out, req.num_top);
      PutU8(&out, req.attr_index);
      break;
    case Verb::kUpdate:
      PutI32(&out, req.new_ret1);
      PutU32(&out, static_cast<uint32_t>(req.update_targets.size()));
      for (const Oid& oid : req.update_targets) PutU64(&out, oid.Packed());
      break;
    case Verb::kPing:
    case Verb::kStats:
    case Verb::kShutdown:
      break;
  }
  return out;
}

std::string EncodeResponse(const Response& resp) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(resp.status));
  PutU8(&out, static_cast<uint8_t>(resp.verb));
  PutU64(&out, resp.id);
  if (resp.status != RespStatus::kOk) {
    PutBytes(&out, resp.error);
    return out;
  }
  switch (resp.verb) {
    case Verb::kRetrieve:
      PutU32(&out, static_cast<uint32_t>(resp.values.size()));
      for (int32_t v : resp.values) PutI32(&out, v);
      // Empty unless the request asked for a profile; always framed so
      // the decoder needs no out-of-band flag knowledge.
      PutBytes(&out, resp.profile_json);
      break;
    case Verb::kUpdate:
      PutU32(&out, resp.updated);
      break;
    case Verb::kStats:
      PutBytes(&out, resp.stats_json);
      break;
    case Verb::kPing:
    case Verb::kShutdown:
      break;
  }
  return out;
}

Status DecodeRequest(std::string_view payload, Request* out) {
  *out = Request{};
  Reader r(payload);
  uint8_t verb;
  OBJREP_RETURN_NOT_OK(r.U8(&verb));
  if (verb < static_cast<uint8_t>(Verb::kRetrieve) ||
      verb > static_cast<uint8_t>(Verb::kShutdown)) {
    return Status::Corruption("request: unknown verb");
  }
  out->verb = static_cast<Verb>(verb);
  OBJREP_RETURN_NOT_OK(r.U8(&out->strategy));
  OBJREP_RETURN_NOT_OK(r.U8(&out->flags));
  if ((out->flags & ~kReqFlagProfile) != 0) {
    return Status::Corruption("request: unknown flag bits");
  }
  OBJREP_RETURN_NOT_OK(r.U64(&out->id));
  switch (out->verb) {
    case Verb::kRetrieve: {
      OBJREP_RETURN_NOT_OK(r.U32(&out->lo_parent));
      OBJREP_RETURN_NOT_OK(r.U32(&out->num_top));
      OBJREP_RETURN_NOT_OK(r.U8(&out->attr_index));
      break;
    }
    case Verb::kUpdate: {
      OBJREP_RETURN_NOT_OK(r.I32(&out->new_ret1));
      uint32_t n;
      OBJREP_RETURN_NOT_OK(r.U32(&n));
      if (static_cast<size_t>(n) * 8 != r.remaining()) {
        return Status::Corruption("request: OID list length mismatch");
      }
      out->update_targets.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        uint64_t packed;
        OBJREP_RETURN_NOT_OK(r.U64(&packed));
        out->update_targets.push_back(Oid::FromPacked(packed));
      }
      break;
    }
    case Verb::kPing:
    case Verb::kStats:
    case Verb::kShutdown:
      break;
  }
  return r.Done();
}

Status DecodeResponse(std::string_view payload, Response* out) {
  *out = Response{};
  Reader r(payload);
  uint8_t status, verb;
  OBJREP_RETURN_NOT_OK(r.U8(&status));
  if (status > static_cast<uint8_t>(RespStatus::kError)) {
    return Status::Corruption("response: unknown status");
  }
  OBJREP_RETURN_NOT_OK(r.U8(&verb));
  if (verb < static_cast<uint8_t>(Verb::kRetrieve) ||
      verb > static_cast<uint8_t>(Verb::kShutdown)) {
    return Status::Corruption("response: unknown verb");
  }
  out->status = static_cast<RespStatus>(status);
  out->verb = static_cast<Verb>(verb);
  OBJREP_RETURN_NOT_OK(r.U64(&out->id));
  if (out->status != RespStatus::kOk) {
    OBJREP_RETURN_NOT_OK(r.Bytes(&out->error));
    return r.Done();
  }
  switch (out->verb) {
    case Verb::kRetrieve: {
      uint32_t n;
      OBJREP_RETURN_NOT_OK(r.U32(&n));
      // Values are followed by the (possibly empty) length-prefixed
      // profile JSON, so the list must leave at least that prefix.
      if (static_cast<size_t>(n) * 4 + 4 > r.remaining()) {
        return Status::Corruption("response: value list length mismatch");
      }
      out->values.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        int32_t v;
        OBJREP_RETURN_NOT_OK(r.I32(&v));
        out->values.push_back(v);
      }
      OBJREP_RETURN_NOT_OK(r.Bytes(&out->profile_json));
      break;
    }
    case Verb::kUpdate:
      OBJREP_RETURN_NOT_OK(r.U32(&out->updated));
      break;
    case Verb::kStats:
      OBJREP_RETURN_NOT_OK(r.Bytes(&out->stats_json));
      break;
    case Verb::kPing:
    case Verb::kShutdown:
      break;
  }
  return r.Done();
}

Status StrategyFromByte(uint8_t byte, StrategyKind fallback,
                        StrategyKind* out) {
  if (byte == kDefaultStrategyByte) {
    *out = fallback;
    return Status::OK();
  }
  if (byte > static_cast<uint8_t>(StrategyKind::kAdaptive)) {
    return Status::InvalidArgument("unknown strategy byte");
  }
  *out = static_cast<StrategyKind>(byte);
  return Status::OK();
}

const char* VerbName(Verb v) {
  switch (v) {
    case Verb::kRetrieve: return "RETRIEVE";
    case Verb::kUpdate: return "UPDATE";
    case Verb::kPing: return "PING";
    case Verb::kStats: return "STATS";
    case Verb::kShutdown: return "SHUTDOWN";
  }
  return "?";
}

const char* RespStatusName(RespStatus s) {
  switch (s) {
    case RespStatus::kOk: return "OK";
    case RespStatus::kServerBusy: return "SERVER_BUSY";
    case RespStatus::kBadRequest: return "BAD_REQUEST";
    case RespStatus::kShuttingDown: return "SHUTTING_DOWN";
    case RespStatus::kError: return "ERROR";
  }
  return "?";
}

}  // namespace net
}  // namespace objrep
