// Synchronous client for the object server (DESIGN.md §13).
//
// One ObjClient is one TCP connection, used from one thread at a time
// (open several clients for concurrency — the server multiplexes them).
// Call() is strict request/response: it frames and writes the request,
// then blocks reading frames until the response with the matching id
// arrives. Because this client never pipelines, matching is trivial; the
// id is still checked so a desynced server (or a buggy one) is detected
// instead of silently mis-pairing answers.
//
// All failures come back as Status — a refused connection, a short read
// on a dying socket, a corrupt frame — and any of them leaves the client
// closed (the stream cannot be trusted after a framing error).
#ifndef OBJREP_NET_CLIENT_H_
#define OBJREP_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/frame.h"
#include "net/protocol.h"
#include "objstore/oid.h"
#include "util/status.h"

namespace objrep {
namespace net {

class ObjClient {
 public:
  ObjClient() = default;
  ~ObjClient() { Close(); }

  ObjClient(const ObjClient&) = delete;
  ObjClient& operator=(const ObjClient&) = delete;
  ObjClient(ObjClient&& other) noexcept;
  ObjClient& operator=(ObjClient&& other) noexcept;

  /// Connects (blocking) to host:port. TCP_NODELAY is set: requests are
  /// small and latency-bound.
  Status Connect(const std::string& host, uint16_t port);

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Sends `req` and blocks for its response. The request id is assigned
  /// automatically (monotonic per client) unless `req.id` is nonzero.
  /// A transport or framing failure closes the connection; a server-side
  /// rejection (SERVER_BUSY, BAD_REQUEST, ...) is a *successful* call —
  /// inspect `out->status`.
  ///
  /// Tracing: each call mints a trace id (or adopts the ambient one when
  /// the caller already established a ScopedTraceId) and carries it in
  /// the v3 frame header, so the client_call span and every server-side
  /// span for this request share one id. Read it back via last_trace_id().
  Status Call(Request req, Response* out);

  /// Trace id carried by the most recent Call() (0 before the first).
  uint64_t last_trace_id() const { return last_trace_id_; }

  // Convenience wrappers. Each returns non-OK either on transport failure
  // or when the server answered with a non-OK RespStatus (the response is
  // still filled in when `out`/`resp` is non-null, so callers that care
  // can distinguish SERVER_BUSY from a dead socket).

  /// RETRIEVE [lo_parent, lo_parent+num_top) on ret<attr_index+1>.
  Status Retrieve(uint32_t lo_parent, uint32_t num_top, uint8_t attr_index,
                  std::vector<int32_t>* values,
                  uint8_t strategy = kDefaultStrategyByte,
                  Response* resp = nullptr);
  /// RETRIEVE with the PROFILE flag: on success `*profile_json` holds the
  /// server's RetrieveProfile (EXPLAIN ANALYZE) for this one request.
  Status RetrieveProfiled(uint32_t lo_parent, uint32_t num_top,
                          uint8_t attr_index, std::vector<int32_t>* values,
                          std::string* profile_json,
                          uint8_t strategy = kDefaultStrategyByte);
  /// UPDATE: set ret1 of every OID in `targets` to `new_ret1`.
  Status Update(const std::vector<Oid>& targets, int32_t new_ret1,
                uint8_t strategy = kDefaultStrategyByte,
                Response* resp = nullptr);
  Status Ping();
  Status Stats(std::string* stats_json);
  /// Asks the server to drain and exit (it answers OK first).
  Status Shutdown();

 private:
  Status WriteAll(const char* data, size_t len);
  Status ReadResponse(Response* out);

  int fd_ = -1;
  uint64_t next_id_ = 1;
  uint64_t last_trace_id_ = 0;
  FrameDecoder decoder_;
};

}  // namespace net
}  // namespace objrep

#endif  // OBJREP_NET_CLIENT_H_
