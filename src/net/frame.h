// Frame codec: length-prefixed, checksummed message boundaries over a
// byte stream (DESIGN.md §13).
//
// Wire layout of one frame (all little-endian):
//
//     offset  size  field
//     0       4     magic 'OBJ1' (0x314A424F)
//     4       2     protocol version (kProtocolVersion)
//     6       2     reserved, must be zero
//     8       4     payload length N (bytes; 0 <= N <= kMaxPayload)
//     12      8     trace id (request identity; 0 = untraced)
//     20      8     FNV-1a 64 checksum of trace-id bytes + payload bytes
//     28      N     payload (net/protocol.h message)
//
// The version field exists because every request — including PING and
// STATS, which the server answers in-loop without ever reaching the
// protocol layer — must fail fast against a peer speaking a different
// frame dialect, instead of being misparsed. Version 1 had no version
// field; its 16-byte header is rejected by construction (the bytes at
// offset 4 read back as a version mismatch). Version 2 was this header
// without the trace-id field.
//
// The trace id lives in the frame header, not the protocol payload, so
// the identity of a request is known the moment the frame is parsed —
// before admission control, before protocol decode, and even for verbs
// the server answers in-loop. The checksum covers the trace-id bytes as
// well as the payload, so corruption of the id poisons the frame instead
// of silently mis-stitching two requests' spans.
//
// The decoder is incremental: Feed() arbitrary chunks as the socket
// produces them (a frame may arrive one byte at a time, or many frames in
// one read), then drain complete frames with Next(). Corruption — wrong
// magic, version mismatch, nonzero reserved bytes, oversized length,
// checksum mismatch — is detected at the frame boundary and poisons the
// decoder: once the stream has lost sync there is no way to trust any
// later framing, so the connection must be torn down after one final
// error response.
#ifndef OBJREP_NET_FRAME_H_
#define OBJREP_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace objrep {
namespace net {

inline constexpr uint32_t kFrameMagic = 0x314A424Fu;  // "OBJ1"
/// Bumped on any incompatible frame or protocol change. 3 = this header
/// (trace-id field) + the flags/profile protocol additions; 2 = the
/// 20-byte header without a trace id; 1 = the historical 16-byte header.
inline constexpr uint16_t kProtocolVersion = 3;
inline constexpr size_t kFrameHeaderBytes = 28;
/// Largest accepted payload. Bounds per-connection memory against a
/// hostile or corrupt length field; generous enough for a full-database
/// RETRIEVE response (4 MiB = one million i32 values).
inline constexpr uint32_t kMaxPayload = 4u << 20;

/// Wraps `payload` in a frame (header + copy of the payload), carrying
/// `trace_id` as the request identity (0 = untraced).
std::string EncodeFrame(std::string_view payload, uint64_t trace_id = 0);

/// Incremental frame parser over a connection's inbound byte stream.
class FrameDecoder {
 public:
  /// Appends raw socket bytes to the pending buffer.
  void Feed(const void* data, size_t n);

  /// Extracts the next complete frame's payload into `*payload`, setting
  /// `*ready` = true and (when `trace_id` is non-null) the frame's trace
  /// id. Sets `*ready` = false (payload untouched) when the buffered
  /// bytes end mid-header or mid-payload — feed more and retry. Returns
  /// Corruption on bad magic / protocol version mismatch / nonzero
  /// reserved bytes / oversized length / checksum mismatch; every later
  /// call returns the same error (poisoned).
  Status Next(std::string* payload, bool* ready, uint64_t* trace_id = nullptr);

  /// Bytes buffered but not yet returned (mid-frame tail).
  size_t pending_bytes() const { return buf_.size() - consumed_; }

  /// True once a corrupt frame poisoned the stream.
  bool poisoned() const { return !error_.ok(); }

 private:
  std::string buf_;
  size_t consumed_ = 0;  // prefix of buf_ already returned as frames
  Status error_;
};

}  // namespace net
}  // namespace objrep

#endif  // OBJREP_NET_FRAME_H_
