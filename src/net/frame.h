// Frame codec: length-prefixed, checksummed message boundaries over a
// byte stream (DESIGN.md §13).
//
// Wire layout of one frame (all little-endian):
//
//     offset  size  field
//     0       4     magic 'OBJ1' (0x314A424F)
//     4       2     protocol version (kProtocolVersion)
//     6       2     reserved, must be zero
//     8       4     payload length N (bytes; 0 <= N <= kMaxPayload)
//     12      8     FNV-1a 64 checksum of the payload bytes
//     20      N     payload (net/protocol.h message)
//
// The version field exists because every request — including PING and
// STATS, which the server answers in-loop without ever reaching the
// protocol layer — must fail fast against a peer speaking a different
// frame dialect, instead of being misparsed. Version 1 had no version
// field; its 16-byte header is rejected by construction (the bytes at
// offset 4 read back as a version mismatch).
//
// The decoder is incremental: Feed() arbitrary chunks as the socket
// produces them (a frame may arrive one byte at a time, or many frames in
// one read), then drain complete frames with Next(). Corruption — wrong
// magic, version mismatch, nonzero reserved bytes, oversized length,
// checksum mismatch — is detected at the frame boundary and poisons the
// decoder: once the stream has lost sync there is no way to trust any
// later framing, so the connection must be torn down after one final
// error response.
#ifndef OBJREP_NET_FRAME_H_
#define OBJREP_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace objrep {
namespace net {

inline constexpr uint32_t kFrameMagic = 0x314A424Fu;  // "OBJ1"
/// Bumped on any incompatible frame or protocol change. 2 = this header
/// (version + reserved fields); 1 = the historical 16-byte header.
inline constexpr uint16_t kProtocolVersion = 2;
inline constexpr size_t kFrameHeaderBytes = 20;
/// Largest accepted payload. Bounds per-connection memory against a
/// hostile or corrupt length field; generous enough for a full-database
/// RETRIEVE response (4 MiB = one million i32 values).
inline constexpr uint32_t kMaxPayload = 4u << 20;

/// Wraps `payload` in a frame (header + copy of the payload).
std::string EncodeFrame(std::string_view payload);

/// Incremental frame parser over a connection's inbound byte stream.
class FrameDecoder {
 public:
  /// Appends raw socket bytes to the pending buffer.
  void Feed(const void* data, size_t n);

  /// Extracts the next complete frame's payload into `*payload`, setting
  /// `*ready` = true. Sets `*ready` = false (payload untouched) when the
  /// buffered bytes end mid-header or mid-payload — feed more and retry.
  /// Returns Corruption on bad magic / protocol version mismatch /
  /// nonzero reserved bytes / oversized length / checksum mismatch; every
  /// later call returns the same error (poisoned).
  Status Next(std::string* payload, bool* ready);

  /// Bytes buffered but not yet returned (mid-frame tail).
  size_t pending_bytes() const { return buf_.size() - consumed_; }

  /// True once a corrupt frame poisoned the stream.
  bool poisoned() const { return !error_.ok(); }

 private:
  std::string buf_;
  size_t consumed_ = 0;  // prefix of buf_ already returned as frames
  Status error_;
};

}  // namespace net
}  // namespace objrep

#endif  // OBJREP_NET_FRAME_H_
