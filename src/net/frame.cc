#include "net/frame.h"

#include <cstring>

#include "util/hash.h"

namespace objrep {
namespace net {

namespace {

void PutU32(std::string* out, uint32_t v) {
  char b[4];
  b[0] = static_cast<char>(v & 0xFF);
  b[1] = static_cast<char>((v >> 8) & 0xFF);
  b[2] = static_cast<char>((v >> 16) & 0xFF);
  b[3] = static_cast<char>((v >> 24) & 0xFF);
  out->append(b, 4);
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v & 0xFFFFFFFFu));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

void PutU16(std::string* out, uint16_t v) {
  char b[2];
  b[0] = static_cast<char>(v & 0xFF);
  b[1] = static_cast<char>((v >> 8) & 0xFF);
  out->append(b, 2);
}

uint16_t GetU16(const char* p) {
  return static_cast<uint16_t>(
      static_cast<uint16_t>(static_cast<unsigned char>(p[0])) |
      static_cast<uint16_t>(static_cast<unsigned char>(p[1])) << 8);
}

uint32_t GetU32(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

uint64_t GetU64(const char* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         static_cast<uint64_t>(GetU32(p + 4)) << 32;
}

/// FNV-1a continued from a prior state — the frame checksum chains the
/// trace-id bytes and the payload without concatenating them.
uint64_t Fnv1a64Continue(uint64_t h, const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t FrameChecksum(const char* trace_bytes, const char* payload,
                       size_t len) {
  return Fnv1a64Continue(Fnv1a64(trace_bytes, 8), payload, len);
}

}  // namespace

std::string EncodeFrame(std::string_view payload, uint64_t trace_id) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  PutU32(&out, kFrameMagic);
  PutU16(&out, kProtocolVersion);
  PutU16(&out, 0);  // reserved
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  PutU64(&out, trace_id);
  PutU64(&out, FrameChecksum(out.data() + 12, payload.data(),
                             payload.size()));
  out.append(payload.data(), payload.size());
  return out;
}

void FrameDecoder::Feed(const void* data, size_t n) {
  if (n == 0 || poisoned()) return;
  // Compact before growing: drop the consumed prefix once it dominates
  // the buffer, so a long-lived connection's memory stays proportional to
  // the unparsed tail, not the total bytes ever received.
  if (consumed_ > 0 && consumed_ >= buf_.size() / 2) {
    buf_.erase(0, consumed_);
    consumed_ = 0;
  }
  buf_.append(static_cast<const char*>(data), n);
}

Status FrameDecoder::Next(std::string* payload, bool* ready,
                          uint64_t* trace_id) {
  *ready = false;
  if (poisoned()) return error_;
  const size_t avail = buf_.size() - consumed_;
  if (avail < kFrameHeaderBytes) return Status::OK();
  const char* h = buf_.data() + consumed_;
  const uint32_t magic = GetU32(h);
  if (magic != kFrameMagic) {
    error_ = Status::Corruption("frame: bad magic");
    return error_;
  }
  const uint16_t version = GetU16(h + 4);
  if (version != kProtocolVersion) {
    error_ = Status::Corruption("frame: protocol version mismatch");
    return error_;
  }
  // Reserved bytes must be zero so a future dialect cannot smuggle state
  // past an old decoder — and so every corrupted header byte is detected.
  if (GetU16(h + 6) != 0) {
    error_ = Status::Corruption("frame: nonzero reserved header bytes");
    return error_;
  }
  const uint32_t len = GetU32(h + 8);
  if (len > kMaxPayload) {
    error_ = Status::Corruption("frame: oversized payload length");
    return error_;
  }
  if (avail < kFrameHeaderBytes + len) return Status::OK();  // mid-payload
  const uint64_t want = GetU64(h + 20);
  const char* body = h + kFrameHeaderBytes;
  // The checksum covers the trace-id bytes too: a corrupted request
  // identity must poison the frame, not mis-stitch another request.
  if (FrameChecksum(h + 12, body, len) != want) {
    error_ = Status::Corruption("frame: payload checksum mismatch");
    return error_;
  }
  if (trace_id != nullptr) *trace_id = GetU64(h + 12);
  payload->assign(body, len);
  consumed_ += kFrameHeaderBytes + len;
  *ready = true;
  return Status::OK();
}

}  // namespace net
}  // namespace objrep
