#include "net/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "obs/trace.h"
#include "obs/trace_context.h"

namespace objrep {
namespace net {

namespace {

Status Errno(const char* what) {
  return Status::IOError(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

ObjClient::ObjClient(ObjClient&& other) noexcept
    : fd_(other.fd_),
      next_id_(other.next_id_),
      last_trace_id_(other.last_trace_id_),
      decoder_(std::move(other.decoder_)) {
  other.fd_ = -1;
}

ObjClient& ObjClient::operator=(ObjClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    next_id_ = other.next_id_;
    last_trace_id_ = other.last_trace_id_;
    decoder_ = std::move(other.decoder_);
    other.fd_ = -1;
  }
  return *this;
}

Status ObjClient::Connect(const std::string& host, uint16_t port) {
  if (fd_ >= 0) return Status::InvalidArgument("client already connected");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad host address: " + host);
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status s = Errno("connect");
    ::close(fd);
    return s;
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  decoder_ = FrameDecoder();
  return Status::OK();
}

void ObjClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status ObjClient::WriteAll(const char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    ssize_t n = ::send(fd_, data + off, len - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status ObjClient::ReadResponse(Response* out) {
  char buf[65536];
  for (;;) {
    std::string payload;
    bool ready = false;
    OBJREP_RETURN_NOT_OK(decoder_.Next(&payload, &ready));
    if (ready) return DecodeResponse(payload, out);
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    if (n == 0) {
      return Status::IOError("connection closed mid-response");
    }
    decoder_.Feed(buf, static_cast<size_t>(n));
  }
}

Status ObjClient::Call(Request req, Response* out) {
  if (fd_ < 0) return Status::InvalidArgument("client not connected");
  if (req.id == 0) req.id = next_id_++;
  const uint64_t want_id = req.id;

  // The client owns trace identity: adopt the ambient id when the caller
  // already opened one (a driver loop tracing several calls as one
  // request), otherwise mint a fresh one. The id rides the frame header,
  // so the server-side spans stitch to this client_call span by id.
  uint64_t trace_id = CurrentTraceId();
  if (trace_id == 0) trace_id = TraceIdGen::Next();
  last_trace_id_ = trace_id;
  ScopedTraceId trace_scope(trace_id);
  TraceSpan span("client_call", "client");
  span.SetArg("verb", static_cast<uint64_t>(req.verb));

  std::string frame = EncodeFrame(EncodeRequest(req), trace_id);
  Status s = WriteAll(frame.data(), frame.size());
  if (s.ok()) s = ReadResponse(out);
  if (s.ok() && out->id != want_id) {
    s = Status::Corruption("response id mismatch (stream desynced)");
  }
  if (!s.ok()) {
    // Transport or framing failure: the byte stream can no longer be
    // trusted to carry aligned frames.
    Close();
  }
  return s;
}

namespace {

/// Convenience-wrapper contract: a non-OK RespStatus becomes a non-OK
/// Status carrying the server's error text.
Status AsStatus(const Response& resp) {
  if (resp.status == RespStatus::kOk) return Status::OK();
  std::string msg = std::string(RespStatusName(resp.status)) +
                    (resp.error.empty() ? "" : ": " + resp.error);
  return resp.status == RespStatus::kBadRequest
             ? Status::InvalidArgument(std::move(msg))
             : Status::IOError(std::move(msg));
}

}  // namespace

Status ObjClient::Retrieve(uint32_t lo_parent, uint32_t num_top,
                           uint8_t attr_index, std::vector<int32_t>* values,
                           uint8_t strategy, Response* resp) {
  Request req;
  req.verb = Verb::kRetrieve;
  req.strategy = strategy;
  req.lo_parent = lo_parent;
  req.num_top = num_top;
  req.attr_index = attr_index;
  Response local;
  Response* r = resp != nullptr ? resp : &local;
  OBJREP_RETURN_NOT_OK(Call(std::move(req), r));
  OBJREP_RETURN_NOT_OK(AsStatus(*r));
  if (values != nullptr) *values = std::move(r->values);
  return Status::OK();
}

Status ObjClient::RetrieveProfiled(uint32_t lo_parent, uint32_t num_top,
                                   uint8_t attr_index,
                                   std::vector<int32_t>* values,
                                   std::string* profile_json,
                                   uint8_t strategy) {
  Request req;
  req.verb = Verb::kRetrieve;
  req.strategy = strategy;
  req.flags = kReqFlagProfile;
  req.lo_parent = lo_parent;
  req.num_top = num_top;
  req.attr_index = attr_index;
  Response resp;
  OBJREP_RETURN_NOT_OK(Call(std::move(req), &resp));
  OBJREP_RETURN_NOT_OK(AsStatus(resp));
  if (values != nullptr) *values = std::move(resp.values);
  if (profile_json != nullptr) *profile_json = std::move(resp.profile_json);
  return Status::OK();
}

Status ObjClient::Update(const std::vector<Oid>& targets, int32_t new_ret1,
                         uint8_t strategy, Response* resp) {
  Request req;
  req.verb = Verb::kUpdate;
  req.strategy = strategy;
  req.update_targets = targets;
  req.new_ret1 = new_ret1;
  Response local;
  Response* r = resp != nullptr ? resp : &local;
  OBJREP_RETURN_NOT_OK(Call(std::move(req), r));
  return AsStatus(*r);
}

Status ObjClient::Ping() {
  Request req;
  req.verb = Verb::kPing;
  Response resp;
  OBJREP_RETURN_NOT_OK(Call(std::move(req), &resp));
  return AsStatus(resp);
}

Status ObjClient::Stats(std::string* stats_json) {
  Request req;
  req.verb = Verb::kStats;
  Response resp;
  OBJREP_RETURN_NOT_OK(Call(std::move(req), &resp));
  OBJREP_RETURN_NOT_OK(AsStatus(resp));
  if (stats_json != nullptr) *stats_json = std::move(resp.stats_json);
  return Status::OK();
}

Status ObjClient::Shutdown() {
  Request req;
  req.verb = Verb::kShutdown;
  Response resp;
  OBJREP_RETURN_NOT_OK(Call(std::move(req), &resp));
  return AsStatus(resp);
}

}  // namespace net
}  // namespace objrep
