// Request execution behind the wire boundary (DESIGN.md §13).
//
// ObjService owns everything a request needs besides the socket: the
// shared ComplexDatabase, the table-level LockManager (same 2PL
// discipline as the in-process ConcurrentRunner), and a pool of reusable
// strategy *sessions*. A session is one Strategy instance; strategies are
// stateful (DFSCACHE holds I-locks, ADAPTIVE carries calibration state),
// so sessions are checked out for exactly one request and returned —
// never shared between concurrent requests. Pooling instead of
// per-request construction matters for ADAPTIVE: its calibrator keeps
// learning across the requests it serves, the same way a ConcurrentRunner
// worker's session learns across its slice.
//
// Execute() is thread-safe and is called from the server's worker pool;
// it is also usable without any server at all (tests drive it directly).
#ifndef OBJREP_NET_SERVICE_H_
#define OBJREP_NET_SERVICE_H_

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "core/strategy.h"
#include "exec/lock_manager.h"
#include "net/protocol.h"
#include "objstore/database.h"
#include "shard/engine.h"

namespace objrep {
namespace net {

class ObjService {
 public:
  /// `db` must outlive the service. `default_strategy` serves requests
  /// whose strategy byte is kDefaultStrategyByte.
  ObjService(ComplexDatabase* db, StrategyKind default_strategy,
             StrategyOptions options);

  /// Sharded backend: requests execute through the scatter-gather engine
  /// instead of a single database. The engine owns per-shard locks, WAL
  /// transactions, and strategy sessions, so this service keeps no lock
  /// manager or session pool of its own. `engine` must outlive the
  /// service.
  ObjService(shard::ShardedEngine* engine, StrategyKind default_strategy,
             StrategyOptions options);

  ObjService(const ObjService&) = delete;
  ObjService& operator=(const ObjService&) = delete;

  /// Executes one RETRIEVE or UPDATE (the verbs that touch the database;
  /// PING/STATS/SHUTDOWN are answered by the server's event loop).
  /// Returns a fully-populated response — execution failures become
  /// kBadRequest/kError responses, never a crash.
  Response Execute(const Request& req);

  StrategyKind default_strategy() const { return default_strategy_; }

 private:
  /// A pooled session, returned to the free list on destruction.
  struct SessionLease {
    ObjService* service = nullptr;
    StrategyKind kind{};
    std::unique_ptr<Strategy> strategy;
    ~SessionLease();
  };

  Status Checkout(StrategyKind kind, SessionLease* lease);
  Status DoRetrieve(const Request& req, StrategyKind kind, Strategy* session,
                    Response* resp);
  Status DoUpdate(const Request& req, StrategyKind kind, Strategy* session,
                  Response* resp);
  const DatabaseSpec& spec() const {
    return db_ != nullptr ? db_->spec : engine_->spec();
  }

  ComplexDatabase* const db_;  // null when fronting a sharded engine
  shard::ShardedEngine* const engine_;  // null for the single-db backend
  const StrategyKind default_strategy_;
  const StrategyOptions options_;
  LockManager locks_;

  std::mutex sessions_mu_;
  std::map<StrategyKind, std::vector<std::unique_ptr<Strategy>>> idle_;
};

}  // namespace net
}  // namespace objrep

#endif  // OBJREP_NET_SERVICE_H_
