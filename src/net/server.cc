#include "net/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/frame.h"
#include "obs/heat_map.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "util/thread_pool.h"

namespace objrep {
namespace net {

namespace {

using Clock = std::chrono::steady_clock;

Status Errno(const char* what) {
  return Status::IOError(std::string(what) + ": " + std::strerror(errno));
}

/// Registry mirrors, process-wide (the registry pattern of DESIGN.md §11:
/// look up once, cache the pointers).
struct NetMetrics {
  Counter* accepted = MetricsRegistry::Global().GetCounter("net.accepted");
  Counter* closed = MetricsRegistry::Global().GetCounter("net.conn_closed");
  Counter* requests = MetricsRegistry::Global().GetCounter("net.requests");
  Counter* responses = MetricsRegistry::Global().GetCounter("net.responses");
  Counter* busy = MetricsRegistry::Global().GetCounter("net.busy_rejected");
  Counter* shutdown_rejected =
      MetricsRegistry::Global().GetCounter("net.shutdown_rejected");
  Counter* bad_frames =
      MetricsRegistry::Global().GetCounter("net.bad_frames");
  Counter* pings = MetricsRegistry::Global().GetCounter("net.pings");
  Counter* bytes_in = MetricsRegistry::Global().GetCounter("net.bytes_in");
  Counter* bytes_out = MetricsRegistry::Global().GetCounter("net.bytes_out");
  Gauge* connections =
      MetricsRegistry::Global().GetGauge("net.connections");
  Gauge* inflight = MetricsRegistry::Global().GetGauge("net.inflight");
  Histogram* retrieve_us =
      MetricsRegistry::Global().GetHistogram("net.request_us.RETRIEVE");
  Histogram* update_us =
      MetricsRegistry::Global().GetHistogram("net.request_us.UPDATE");
};

NetMetrics& Metrics() {
  static NetMetrics* m = new NetMetrics();
  return *m;
}

}  // namespace

struct ObjServer::Impl {
  /// One client connection. Every field except the shared_ptr refcount is
  /// owned by the event loop; workers only ever hold the shared_ptr and
  /// hand it back through the completion queue.
  struct Connection {
    int fd = -1;
    FrameDecoder decoder;
    std::deque<std::string> outq;  // encoded frames awaiting write
    size_t out_off = 0;            // bytes of outq.front() already written
    uint32_t inflight = 0;         // admitted requests not yet answered
    bool throttled = false;        // EPOLLIN dropped at max_conn_inflight
    bool want_write = false;       // EPOLLOUT armed
    bool close_after_flush = false;
    bool closed = false;
  };
  using ConnPtr = std::shared_ptr<Connection>;

  struct Completion {
    ConnPtr conn;
    std::string frame;  // encoded response frame
  };

  ComplexDatabase* db;  // null when fronting a sharded engine
  shard::ShardedEngine* engine;  // null for the single-db backend
  ServerConfig config;
  ObjService service;
  std::atomic<uint32_t> max_inflight;

  int listen_fd = -1;
  int epoll_fd = -1;
  int wake_fd = -1;  // eventfd: worker completions + stop requests

  std::unique_ptr<ThreadPool> pool;
  std::thread loop_thread;

  // Worker -> loop handoff.
  std::mutex comp_mu;
  std::vector<Completion> completions;  // guarded by comp_mu

  // Loop-owned connection table.
  std::unordered_map<int, ConnPtr> conns;

  std::atomic<bool> stop_requested{false};
  bool draining = false;  // loop-owned
  Clock::time_point drain_deadline{};

  // Lifecycle.
  std::mutex lifecycle_mu;
  std::condition_variable lifecycle_cv;
  bool started = false;       // guarded by lifecycle_mu
  bool loop_done = false;     // guarded by lifecycle_mu
  bool torn_down = false;     // guarded by lifecycle_mu

  // Stats (atomics: written by loop/workers, read from any thread).
  std::atomic<uint64_t> accepted{0}, closed_count{0}, admitted{0},
      responses{0}, busy_rejected{0}, shutdown_rejected{0}, bad_frames{0},
      pings{0};
  std::atomic<int64_t> inflight_total{0};

  Impl(ComplexDatabase* database, ServerConfig cfg)
      : db(database),
        engine(nullptr),
        config(std::move(cfg)),
        service(database, cfg.default_strategy, cfg.strategy_options),
        max_inflight(cfg.max_inflight == 0 ? 1 : cfg.max_inflight) {}

  Impl(shard::ShardedEngine* eng, ServerConfig cfg)
      : db(nullptr),
        engine(eng),
        config(std::move(cfg)),
        service(eng, cfg.default_strategy, cfg.strategy_options),
        max_inflight(cfg.max_inflight == 0 ? 1 : cfg.max_inflight) {}

  // --- Event-loop helpers (loop thread only, unless noted). ---

  Status SetNonBlocking(int fd) {
    int flags = fcntl(fd, F_GETFL, 0);
    if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
      return Errno("fcntl");
    }
    return Status::OK();
  }

  void UpdateEvents(const ConnPtr& c) {
    epoll_event ev{};
    ev.data.fd = c->fd;
    ev.events = 0;
    if (!c->throttled && !c->close_after_flush) ev.events |= EPOLLIN;
    if (c->want_write) ev.events |= EPOLLOUT;
    epoll_ctl(epoll_fd, EPOLL_CTL_MOD, c->fd, &ev);
  }

  void CloseConn(const ConnPtr& c) {
    if (c->closed) return;
    epoll_ctl(epoll_fd, EPOLL_CTL_DEL, c->fd, nullptr);
    ::close(c->fd);
    c->closed = true;
    conns.erase(c->fd);
    closed_count.fetch_add(1, std::memory_order_relaxed);
    Metrics().closed->Add();
    Metrics().connections->Sub();
  }

  void EnqueueResponse(const ConnPtr& c, const Response& resp,
                       uint64_t trace_id = 0) {
    // Responses echo the request's trace id so the client can pair its
    // own spans with the server's without protocol-level plumbing.
    EnqueueFrame(c, EncodeFrame(EncodeResponse(resp), trace_id));
  }

  void EnqueueFrame(const ConnPtr& c, std::string frame) {
    if (c->closed) return;
    c->outq.push_back(std::move(frame));
    FlushConn(c);
  }

  /// Writes as much buffered output as the socket accepts; arms EPOLLOUT
  /// for the rest, closes on fatal error or completed close_after_flush.
  void FlushConn(const ConnPtr& c) {
    while (!c->outq.empty()) {
      const std::string& front = c->outq.front();
      ssize_t n = ::send(c->fd, front.data() + c->out_off,
                         front.size() - c->out_off, MSG_NOSIGNAL);
      if (n > 0) {
        Metrics().bytes_out->Add(static_cast<uint64_t>(n));
        c->out_off += static_cast<size_t>(n);
        if (c->out_off == front.size()) {
          c->outq.pop_front();
          c->out_off = 0;
        }
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      CloseConn(c);  // peer vanished mid-write
      return;
    }
    bool need_write = !c->outq.empty();
    if (need_write != c->want_write) {
      c->want_write = need_write;
      UpdateEvents(c);
    }
    if (c->outq.empty() && c->close_after_flush) CloseConn(c);
  }

  void Accept() {
    for (;;) {
      sockaddr_in addr{};
      socklen_t len = sizeof(addr);
      int fd = ::accept4(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                         &len, SOCK_NONBLOCK);
      if (fd < 0) return;  // EAGAIN, or transient (ECONNABORTED, EMFILE)
      int one = 1;
      setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      auto c = std::make_shared<Connection>();
      c->fd = fd;
      epoll_event ev{};
      ev.data.fd = fd;
      ev.events = EPOLLIN;
      if (epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev) < 0) {
        ::close(fd);
        continue;
      }
      conns.emplace(fd, std::move(c));
      accepted.fetch_add(1, std::memory_order_relaxed);
      Metrics().accepted->Add();
      Metrics().connections->Add();
    }
  }

  std::string BuildStatsJson() {
    // STATS doubles as the heat map's decay clock: self-limited to one
    // decay per HeatMap::kDecayIntervalUs however often clients poll.
    HeatMap::Global().MaybeDecay();
    std::ostringstream os;
    // The "db" section is the client's schema bootstrap: a load generator
    // needs |ParentRel| and the child relation ids to form valid
    // RETRIEVE ranges and UPDATE OIDs without sharing the server's config.
    // The sharded backend reports the logical (global) shape — clients
    // address the whole store; the router is the server's business.
    const DatabaseSpec& spec = db != nullptr ? db->spec : engine->spec();
    const ComplexDatabase* catalog_db =
        db != nullptr ? db : engine->db()->shards[0].get();
    os << "{\"db\":{"
       << "\"num_parents\":" << spec.num_parents
       << ",\"children_per_rel\":"
       << spec.num_children_total() / spec.num_child_rels
       << ",\"child_rels\":[";
    for (size_t r = 0; r < catalog_db->child_rels.size(); ++r) {
      if (r > 0) os << ",";
      os << catalog_db->child_rels[r]->rel_id();
    }
    os << "]}";
    if (engine != nullptr) {
      // Each shard's slice of the heat ranking: the global top parents
      // routed back to their owning shard, so a reclusterer (or operator)
      // can see which shards carry the skew.
      std::vector<HeatMap::ParentHeat> hot =
          HeatMap::Global().TopParents(64);
      os << ",\"shards\":[";
      for (uint32_t k = 0; k < engine->num_shards(); ++k) {
        const ComplexDatabase& sdb = *engine->db()->shards[k];
        IoCounters io = sdb.disk->counters();
        if (k > 0) os << ",";
        os << "{\"parents\":" << engine->db()->local_parents[k].size()
           << ",\"pages\":" << sdb.TotalPages()
           << ",\"disk_reads\":" << io.reads
           << ",\"disk_writes\":" << io.writes;
        if (sdb.cache != nullptr) {
          CacheManager::CacheStats cs = sdb.cache->stats();
          os << ",\"cache_hits\":" << cs.hits
             << ",\"cache_invalidated_units\":" << cs.invalidated_units;
        }
        os << ",\"hot_parents\":[";
        size_t listed = 0;
        for (const HeatMap::ParentHeat& p : hot) {
          if (engine->db()->router.ShardOfParent(
                  static_cast<uint32_t>(p.parent)) != k) {
            continue;
          }
          if (listed++ > 0) os << ",";
          char buf[64];
          std::snprintf(buf, sizeof(buf),
                        "{\"parent\":%llu,\"heat\":%.3f}",
                        static_cast<unsigned long long>(p.parent), p.heat);
          os << buf;
          if (listed >= 8) break;
        }
        os << "]}";
      }
      os << "]";
    }
    os << ",\"server\":{"
       << "\"accepted\":" << accepted.load(std::memory_order_relaxed)
       << ",\"closed\":" << closed_count.load(std::memory_order_relaxed)
       << ",\"connections\":" << conns.size()
       << ",\"requests_admitted\":"
       << admitted.load(std::memory_order_relaxed)
       << ",\"responses\":" << responses.load(std::memory_order_relaxed)
       << ",\"busy_rejected\":"
       << busy_rejected.load(std::memory_order_relaxed)
       << ",\"shutdown_rejected\":"
       << shutdown_rejected.load(std::memory_order_relaxed)
       << ",\"bad_frames\":" << bad_frames.load(std::memory_order_relaxed)
       << ",\"pings\":" << pings.load(std::memory_order_relaxed)
       << ",\"inflight\":" << inflight_total.load(std::memory_order_relaxed)
       << ",\"max_inflight\":" << max_inflight.load(std::memory_order_relaxed)
       << ",\"default_strategy\":\""
       << StrategyKindName(service.default_strategy()) << "\""
       << "},\"heat\":" << HeatMap::Global().ToJson(16)
       << ",\"slow_queries\":{\"threshold_us\":"
       << SlowQueryRing::Global().threshold_us()
       << ",\"captured\":" << SlowQueryRing::Global().captured()
       << ",\"entries\":" << SlowQueryRing::Global().ToJson()
       << "},\"metrics\":" << MetricsRegistry::Global().ToJson() << "}";
    return os.str();
  }

  void BeginDrain() {
    if (draining) return;
    draining = true;
    drain_deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(
                               config.drain_timeout_s));
    if (listen_fd >= 0) {
      epoll_ctl(epoll_fd, EPOLL_CTL_DEL, listen_fd, nullptr);
      ::close(listen_fd);
      listen_fd = -1;
    }
    Trace::Instant("net_drain_begin", "net");
  }

  /// Dispatches one parsed request. Loop thread. `trace_id` is the frame
  /// header's request identity; bare clients that sent 0 get one minted
  /// here (admission is the earliest point that owns the request).
  void HandleRequest(const ConnPtr& c, Request req, uint64_t trace_id) {
    if (trace_id == 0) trace_id = TraceIdGen::Next();
    switch (req.verb) {
      case Verb::kPing: {
        pings.fetch_add(1, std::memory_order_relaxed);
        Metrics().pings->Add();
        Response resp;
        resp.verb = Verb::kPing;
        resp.id = req.id;
        EnqueueResponse(c, resp, trace_id);
        return;
      }
      case Verb::kStats: {
        Response resp;
        resp.verb = Verb::kStats;
        resp.id = req.id;
        resp.stats_json = BuildStatsJson();
        EnqueueResponse(c, resp, trace_id);
        return;
      }
      case Verb::kShutdown: {
        Response resp;
        resp.verb = Verb::kShutdown;
        resp.id = req.id;
        EnqueueResponse(c, resp, trace_id);
        BeginDrain();
        return;
      }
      case Verb::kRetrieve:
      case Verb::kUpdate:
        break;
    }

    Metrics().requests->Add();
    if (draining) {
      shutdown_rejected.fetch_add(1, std::memory_order_relaxed);
      Metrics().shutdown_rejected->Add();
      Response resp;
      resp.status = RespStatus::kShuttingDown;
      resp.verb = req.verb;
      resp.id = req.id;
      resp.error = "server is draining";
      EnqueueResponse(c, resp, trace_id);
      return;
    }
    if (inflight_total.load(std::memory_order_relaxed) >=
        static_cast<int64_t>(max_inflight.load(std::memory_order_relaxed))) {
      busy_rejected.fetch_add(1, std::memory_order_relaxed);
      Metrics().busy->Add();
      Trace::Instant("net_busy_rejected", "net");
      Response resp;
      resp.status = RespStatus::kServerBusy;
      resp.verb = req.verb;
      resp.id = req.id;
      resp.error = "in-flight budget exhausted";
      EnqueueResponse(c, resp, trace_id);
      return;
    }

    inflight_total.fetch_add(1, std::memory_order_relaxed);
    Metrics().inflight->Add();
    c->inflight++;
    const Verb verb = req.verb;
    bool submitted = pool->TrySubmit(
        [this, c, verb, trace_id, req = std::move(req)]() mutable {
          // Establish the request context before the first span so every
          // event this request records — here, in the service, in the
          // shard engines, in MVCC/WAL — carries the same trace id.
          ScopedTraceId trace_scope(trace_id);
          TraceSpan span("net_request", "net");
          span.SetArg("verb", static_cast<uint64_t>(verb));
          uint64_t t0 = Trace::NowMicros();
          Response resp = service.Execute(req);
          uint64_t us = Trace::NowMicros() - t0;
          (verb == Verb::kRetrieve ? Metrics().retrieve_us
                                   : Metrics().update_us)
              ->Record(us);
          Completion done{c, EncodeFrame(EncodeResponse(resp), trace_id)};
          {
            std::lock_guard<std::mutex> l(comp_mu);
            completions.push_back(std::move(done));
          }
          Wake();
        });
    if (!submitted) {
      // Pool already draining (Stop racing a late dispatch): reject
      // cleanly instead of abandoning the request.
      inflight_total.fetch_sub(1, std::memory_order_relaxed);
      Metrics().inflight->Sub();
      c->inflight--;
      shutdown_rejected.fetch_add(1, std::memory_order_relaxed);
      Metrics().shutdown_rejected->Add();
      Response resp;
      resp.status = RespStatus::kShuttingDown;
      resp.verb = verb;
      resp.id = req.id;
      resp.error = "server is draining";
      EnqueueResponse(c, resp, trace_id);
      return;
    }
    admitted.fetch_add(1, std::memory_order_relaxed);
  }

  /// Parses and handles every complete frame buffered for `c`, stopping
  /// at the throttle cap. Loop thread.
  void ParseFrames(const ConnPtr& c) {
    while (!c->closed && !c->throttled) {
      std::string payload;
      bool ready = false;
      uint64_t trace_id = 0;
      Status s = c->decoder.Next(&payload, &ready, &trace_id);
      if (!s.ok()) {
        // Desynced stream: one final error response, then close. The
        // response still frames correctly — it is the inbound direction
        // that lost sync.
        bad_frames.fetch_add(1, std::memory_order_relaxed);
        Metrics().bad_frames->Add();
        Trace::Instant("net_bad_frame", "net");
        Response resp;
        resp.status = RespStatus::kBadRequest;
        resp.verb = Verb::kPing;
        resp.error = s.ToString();
        c->close_after_flush = true;
        UpdateEvents(c);  // stop reading a poisoned stream
        EnqueueResponse(c, resp);
        return;
      }
      if (!ready) return;
      Request req;
      s = DecodeRequest(payload, &req);
      if (!s.ok()) {
        bad_frames.fetch_add(1, std::memory_order_relaxed);
        Metrics().bad_frames->Add();
        Response resp;
        resp.status = RespStatus::kBadRequest;
        resp.verb = Verb::kPing;
        resp.error = s.ToString();
        c->close_after_flush = true;
        UpdateEvents(c);
        EnqueueResponse(c, resp);
        return;
      }
      HandleRequest(c, std::move(req), trace_id);
      if (c->inflight >= config.max_conn_inflight && !c->throttled) {
        c->throttled = true;
        UpdateEvents(c);
      }
    }
  }

  void HandleReadable(const ConnPtr& c) {
    char buf[65536];
    size_t total = 0;
    for (;;) {
      ssize_t n = ::recv(c->fd, buf, sizeof(buf), 0);
      if (n > 0) {
        Metrics().bytes_in->Add(static_cast<uint64_t>(n));
        c->decoder.Feed(buf, static_cast<size_t>(n));
        total += static_cast<size_t>(n);
        // Fairness bound: one connection's burst yields to the rest of
        // the loop; level-triggered epoll re-fires for the remainder.
        if (total >= 262144) break;
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n == 0 && c->decoder.pending_bytes() > 0 &&
          !c->decoder.poisoned()) {
        // Peer closed mid-frame: a truncated frame, rejected like any
        // other corruption (there is no one left to answer).
        bad_frames.fetch_add(1, std::memory_order_relaxed);
        Metrics().bad_frames->Add();
        Trace::Instant("net_truncated_frame", "net");
      }
      // n == 0 (orderly close) or a hard error. In-flight responses for
      // this connection are dropped at completion time.
      CloseConn(c);
      return;
    }
    ParseFrames(c);
  }

  /// Moves worker completions into connection write buffers. Loop thread.
  void DrainCompletions() {
    std::vector<Completion> batch;
    {
      std::lock_guard<std::mutex> l(comp_mu);
      batch.swap(completions);
    }
    for (Completion& done : batch) {
      inflight_total.fetch_sub(1, std::memory_order_relaxed);
      Metrics().inflight->Sub();
      responses.fetch_add(1, std::memory_order_relaxed);
      Metrics().responses->Add();
      ConnPtr& c = done.conn;
      if (c->closed) continue;  // client left before the answer
      c->inflight--;
      EnqueueFrame(c, std::move(done.frame));
      if (c->throttled && c->inflight < config.max_conn_inflight &&
          !c->closed && !c->close_after_flush) {
        c->throttled = false;
        UpdateEvents(c);
        ParseFrames(c);  // frames buffered while throttled
      }
    }
  }

  void Wake() {
    uint64_t one = 1;
    // Signal-safe: RequestStop may run inside a signal handler.
    [[maybe_unused]] ssize_t n = ::write(wake_fd, &one, sizeof(one));
  }

  bool DrainComplete() {
    if (!draining) return false;
    if (Clock::now() >= drain_deadline) return true;
    if (inflight_total.load(std::memory_order_relaxed) != 0) return false;
    {
      std::lock_guard<std::mutex> l(comp_mu);
      if (!completions.empty()) return false;
    }
    for (const auto& [fd, c] : conns) {
      if (!c->outq.empty()) return false;
    }
    return true;
  }

  void Loop() {
    std::vector<epoll_event> events(1024);
    for (;;) {
      if (stop_requested.load(std::memory_order_relaxed)) BeginDrain();
      if (DrainComplete()) break;
      int timeout_ms = draining ? 20 : -1;
      int n = epoll_wait(epoll_fd, events.data(),
                         static_cast<int>(events.size()), timeout_ms);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;  // epoll itself failed; tear down
      }
      for (int i = 0; i < n; ++i) {
        const epoll_event& ev = events[i];
        if (ev.data.fd == wake_fd) {
          uint64_t tmp;
          while (::read(wake_fd, &tmp, sizeof(tmp)) > 0) {
          }
          continue;
        }
        if (ev.data.fd == listen_fd) {
          Accept();
          continue;
        }
        auto it = conns.find(ev.data.fd);
        if (it == conns.end()) continue;
        ConnPtr c = it->second;  // keep alive across handlers
        if (ev.events & (EPOLLHUP | EPOLLERR)) {
          CloseConn(c);
          continue;
        }
        if (ev.events & EPOLLOUT) FlushConn(c);
        if (!c->closed && (ev.events & EPOLLIN)) HandleReadable(c);
      }
      DrainCompletions();
    }
    // Drain finished (or deadline): close every remaining connection.
    while (!conns.empty()) CloseConn(conns.begin()->second);
    {
      std::lock_guard<std::mutex> l(lifecycle_mu);
      loop_done = true;
    }
    lifecycle_cv.notify_all();
  }
};

ObjServer::ObjServer(ComplexDatabase* db, ServerConfig config)
    : impl_(std::make_unique<Impl>(db, std::move(config))) {}

ObjServer::ObjServer(shard::ShardedEngine* engine, ServerConfig config)
    : impl_(std::make_unique<Impl>(engine, std::move(config))) {}

ObjServer::~ObjServer() { Stop(); }

Status ObjServer::Start() {
  Impl& im = *impl_;
  {
    std::lock_guard<std::mutex> l(im.lifecycle_mu);
    if (im.started) return Status::InvalidArgument("server already started");
    im.started = true;
  }

  // Observability knobs are process-global (the trackers are shared with
  // the embedded engine); the serving config is their natural owner.
  SlowQueryRing::Global().set_threshold_us(im.config.slow_query_us);
  HeatMap::Global().SetEnabled(im.config.enable_heat);

  im.listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (im.listen_fd < 0) return Errno("socket");
  int one = 1;
  setsockopt(im.listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(im.config.port);
  if (inet_pton(AF_INET, im.config.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad host address: " + im.config.host);
  }
  if (::bind(im.listen_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    return Errno("bind");
  }
  if (::listen(im.listen_fd, 4096) < 0) return Errno("listen");
  socklen_t len = sizeof(addr);
  if (getsockname(im.listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    return Errno("getsockname");
  }
  port_.store(ntohs(addr.sin_port), std::memory_order_relaxed);

  im.epoll_fd = epoll_create1(0);
  if (im.epoll_fd < 0) return Errno("epoll_create1");
  im.wake_fd = eventfd(0, EFD_NONBLOCK);
  if (im.wake_fd < 0) return Errno("eventfd");

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = im.listen_fd;
  if (epoll_ctl(im.epoll_fd, EPOLL_CTL_ADD, im.listen_fd, &ev) < 0) {
    return Errno("epoll_ctl(listen)");
  }
  ev.data.fd = im.wake_fd;
  if (epoll_ctl(im.epoll_fd, EPOLL_CTL_ADD, im.wake_fd, &ev) < 0) {
    return Errno("epoll_ctl(eventfd)");
  }

  im.pool = std::make_unique<ThreadPool>(
      im.config.num_workers == 0 ? 1 : im.config.num_workers);
  im.loop_thread = std::thread([this] { impl_->Loop(); });
  return Status::OK();
}

void ObjServer::RequestStop() {
  impl_->stop_requested.store(true, std::memory_order_relaxed);
  if (impl_->wake_fd >= 0) impl_->Wake();
}

void ObjServer::Wait() {
  Impl& im = *impl_;
  std::unique_lock<std::mutex> l(im.lifecycle_mu);
  im.lifecycle_cv.wait(l, [&im] { return im.loop_done || !im.started; });
}

void ObjServer::Stop() {
  Impl& im = *impl_;
  {
    std::lock_guard<std::mutex> l(im.lifecycle_mu);
    if (!im.started || im.torn_down) return;
    im.torn_down = true;
  }
  RequestStop();
  if (im.loop_thread.joinable()) im.loop_thread.join();
  if (im.pool != nullptr) im.pool->Shutdown();
  // Late completions from force-closed drains: free the buffers, settle
  // the gauge.
  {
    std::lock_guard<std::mutex> l(im.comp_mu);
    for (size_t i = 0; i < im.completions.size(); ++i) {
      im.inflight_total.fetch_sub(1, std::memory_order_relaxed);
      Metrics().inflight->Sub();
    }
    im.completions.clear();
  }
  if (im.listen_fd >= 0) {
    ::close(im.listen_fd);
    im.listen_fd = -1;
  }
  if (im.epoll_fd >= 0) {
    ::close(im.epoll_fd);
    im.epoll_fd = -1;
  }
  if (im.wake_fd >= 0) {
    ::close(im.wake_fd);
    im.wake_fd = -1;
  }
  {
    std::lock_guard<std::mutex> l(im.lifecycle_mu);
    im.loop_done = true;
  }
  im.lifecycle_cv.notify_all();
}

void ObjServer::set_max_inflight(uint32_t n) {
  impl_->max_inflight.store(n == 0 ? 1 : n, std::memory_order_relaxed);
}

ObjServer::Stats ObjServer::stats() const {
  const Impl& im = *impl_;
  Stats s;
  s.accepted = im.accepted.load(std::memory_order_relaxed);
  s.closed = im.closed_count.load(std::memory_order_relaxed);
  s.requests_admitted = im.admitted.load(std::memory_order_relaxed);
  s.responses = im.responses.load(std::memory_order_relaxed);
  s.busy_rejected = im.busy_rejected.load(std::memory_order_relaxed);
  s.shutdown_rejected =
      im.shutdown_rejected.load(std::memory_order_relaxed);
  s.bad_frames = im.bad_frames.load(std::memory_order_relaxed);
  s.pings = im.pings.load(std::memory_order_relaxed);
  s.connections = static_cast<int64_t>(s.accepted) -
                  static_cast<int64_t>(s.closed);
  s.inflight = im.inflight_total.load(std::memory_order_relaxed);
  return s;
}

}  // namespace net
}  // namespace objrep
