// Async network server for the object store (DESIGN.md §13).
//
// One epoll event-loop thread multiplexes every connection: it accepts,
// reads, frames (net/frame.h), and parses requests, then dispatches
// RETRIEVE/UPDATE work onto a ThreadPool shared with the execution
// engine's idiom; responses come back through a completion queue and are
// flushed from per-connection write buffers. PING and STATS are answered
// directly on the loop — liveness and introspection must keep working
// while the pool is saturated.
//
// Admission control (overload degrades, never collapses):
//   * a global in-flight budget (`max_inflight`): requests beyond it get
//     an immediate SERVER_BUSY response and are NOT executed — the
//     queue to the pool is bounded, so admitted requests see bounded
//     queueing delay;
//   * a per-connection in-flight cap (`max_conn_inflight`): a connection
//     at its cap stops being *read* (EPOLLIN is dropped), pushing
//     backpressure into the kernel socket buffer and from there to the
//     client — one firehose connection cannot monopolize the budget or
//     the server's memory;
//   * frame and payload sizes are bounded by the codec; a corrupt frame
//     draws one final error response and the connection is closed (a
//     desynced stream cannot be trusted for framing).
//
// Shutdown is a graceful drain: stop accepting, reject newly-arriving
// requests with SHUTTING_DOWN, run every admitted request to completion,
// flush every response, then close. The drain deadline bounds how long a
// stuck client can pin the process. The SHUTDOWN verb triggers the same
// path from the wire.
#ifndef OBJREP_NET_SERVER_H_
#define OBJREP_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "core/strategy.h"
#include "net/service.h"
#include "util/status.h"

namespace objrep {
namespace net {

struct ServerConfig {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  ///< 0 = ephemeral; read the bound port with port()
  /// Worker threads executing RETRIEVE/UPDATE against the database.
  uint32_t num_workers = 4;
  /// Global admitted-but-unfinished request budget (>= 1). Beyond it,
  /// SERVER_BUSY.
  uint32_t max_inflight = 256;
  /// Per-connection in-flight cap; at the cap the connection's reads are
  /// throttled instead of rejected.
  uint32_t max_conn_inflight = 32;
  /// Strategy for requests that do not override it.
  StrategyKind default_strategy = StrategyKind::kDfs;
  StrategyOptions strategy_options;
  /// Graceful-drain bound: after Stop()/SHUTDOWN, connections that still
  /// cannot flush after this long are force-closed.
  double drain_timeout_s = 10.0;
  /// Arms the slow-query ring: requests at or above this latency get their
  /// full RetrieveProfile captured and exposed through STATS. 0 = off.
  uint64_t slow_query_us = 0;
  /// Keeps the traffic heat map recording while serving (the tracker is
  /// cheap enough to leave on — see bench/obs_overhead).
  bool enable_heat = true;
};

class ObjServer {
 public:
  /// `db` must outlive the server.
  ObjServer(ComplexDatabase* db, ServerConfig config);

  /// Sharded backend: the server fronts an N-shard scatter-gather engine;
  /// STATS gains a per-shard section. `engine` must outlive the server.
  ObjServer(shard::ShardedEngine* engine, ServerConfig config);
  ~ObjServer();  ///< Stop()s if still running.

  ObjServer(const ObjServer&) = delete;
  ObjServer& operator=(const ObjServer&) = delete;

  /// Binds, listens, and starts the event loop + worker pool.
  Status Start();

  /// Port actually bound (differs from config.port when that was 0).
  uint16_t port() const { return port_; }

  /// Async-signal-safe graceful-stop request (atomic store + eventfd
  /// write): begins the drain but does not wait. Safe from any thread and
  /// from signal handlers.
  void RequestStop();

  /// Blocks until the event loop has drained and exited — after a
  /// RequestStop(), a SHUTDOWN verb, or a Stop() elsewhere.
  void Wait();

  /// Graceful drain then full teardown (joins loop + workers). Idempotent.
  void Stop();

  /// Runtime-adjustable admission budget (benches sweep overload points
  /// against one server).
  void set_max_inflight(uint32_t n);

  /// Monotonic counters since Start() (mirrored into the process metrics
  /// registry under net.*).
  struct Stats {
    uint64_t accepted = 0;
    uint64_t closed = 0;
    uint64_t requests_admitted = 0;   ///< dispatched to the pool
    uint64_t responses = 0;           ///< pool completions returned
    uint64_t busy_rejected = 0;       ///< SERVER_BUSY sent
    uint64_t shutdown_rejected = 0;   ///< SHUTTING_DOWN sent
    uint64_t bad_frames = 0;          ///< corrupt/truncated frames seen
    uint64_t pings = 0;
    int64_t connections = 0;          ///< currently open
    int64_t inflight = 0;             ///< admitted, response not yet queued
  };
  Stats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::atomic<uint16_t> port_{0};
};

}  // namespace net
}  // namespace objrep

#endif  // OBJREP_NET_SERVER_H_
