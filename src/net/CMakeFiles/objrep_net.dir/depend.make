# Empty dependencies file for objrep_net.
# This may be replaced when dependencies are built.
