file(REMOVE_RECURSE
  "libobjrep_net.a"
)
