file(REMOVE_RECURSE
  "CMakeFiles/objrep_net.dir/client.cc.o"
  "CMakeFiles/objrep_net.dir/client.cc.o.d"
  "CMakeFiles/objrep_net.dir/frame.cc.o"
  "CMakeFiles/objrep_net.dir/frame.cc.o.d"
  "CMakeFiles/objrep_net.dir/protocol.cc.o"
  "CMakeFiles/objrep_net.dir/protocol.cc.o.d"
  "CMakeFiles/objrep_net.dir/server.cc.o"
  "CMakeFiles/objrep_net.dir/server.cc.o.d"
  "CMakeFiles/objrep_net.dir/service.cc.o"
  "CMakeFiles/objrep_net.dir/service.cc.o.d"
  "libobjrep_net.a"
  "libobjrep_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/objrep_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
