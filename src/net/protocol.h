// Binary request/response protocol for the object server (DESIGN.md §13).
//
// Messages travel inside checksummed frames (net/frame.h); this module
// defines what the payload bytes mean. Five verbs:
//
//   RETRIEVE  — the paper's retrieve: parents [lo_parent, lo_parent +
//               num_top) projected on ret<attr_index+1>; returns the
//               subobject values.
//   UPDATE    — in-place ret1 modification of an OID list (translated to
//               ClusterRel / cache invalidation by structure-aware
//               strategies, exactly like the embedded engine).
//   PING      — liveness; answered from the event loop, bypassing
//               admission control, so it stays responsive under overload.
//   STATS     — server + metrics-registry snapshot as JSON.
//   SHUTDOWN  — asks the server to drain and stop (responds OK first).
//
// Every request carries a per-request strategy override byte: 0xFF means
// "server default", any other value is a StrategyKind (including
// kAdaptive), so one connection can compare plans against one database.
//
// All integers are little-endian. Decoding is bounds-checked and returns
// Status::Corruption on any malformed payload — a frame that passed the
// codec's checksum can still carry a semantically truncated message (a
// hand-rolled client, a version skew), and the server must reject it
// cleanly rather than read past the buffer.
#ifndef OBJREP_NET_PROTOCOL_H_
#define OBJREP_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/strategy.h"
#include "objstore/oid.h"
#include "util/status.h"

namespace objrep {
namespace net {

enum class Verb : uint8_t {
  kRetrieve = 1,
  kUpdate = 2,
  kPing = 3,
  kStats = 4,
  kShutdown = 5,
};

/// First response byte. Everything except kOk carries an error string.
enum class RespStatus : uint8_t {
  kOk = 0,
  /// Admission control shed this request (DESIGN.md §13): the in-flight
  /// budget was exhausted. The request was NOT executed; retry later.
  kServerBusy = 1,
  /// Malformed or out-of-range request (bad verb, bad strategy byte, OID
  /// outside the database). Never retried.
  kBadRequest = 2,
  /// The server is draining; the request was not executed.
  kShuttingDown = 3,
  /// Execution failed server-side (I/O error, lock timeout, ...).
  kError = 4,
};

/// Strategy-override byte meaning "use the server's default".
inline constexpr uint8_t kDefaultStrategyByte = 0xFF;

/// Request.flags bit: return a RetrieveProfile (EXPLAIN ANALYZE) with the
/// response — per-tag I/O, cache hits, waits, plan choice, per-shard
/// timing for this one request (DESIGN.md §16).
inline constexpr uint8_t kReqFlagProfile = 0x1;

struct Request {
  Verb verb = Verb::kPing;
  /// Client-chosen correlation id, echoed verbatim in the response.
  /// Responses on one connection may arrive out of submission order
  /// (requests execute concurrently on the worker pool).
  uint64_t id = 0;
  uint8_t strategy = kDefaultStrategyByte;
  uint8_t flags = 0;  ///< kReqFlag* bits; unknown bits are rejected

  // kRetrieve
  uint32_t lo_parent = 0;
  uint32_t num_top = 0;
  uint8_t attr_index = 0;

  // kUpdate
  std::vector<Oid> update_targets;
  int32_t new_ret1 = 0;
};

struct Response {
  RespStatus status = RespStatus::kOk;
  Verb verb = Verb::kPing;
  uint64_t id = 0;

  std::vector<int32_t> values;  ///< kRetrieve: projected attribute values
  uint32_t updated = 0;         ///< kUpdate: targets applied
  std::string stats_json;       ///< kStats: server + registry snapshot
  std::string profile_json;     ///< kRetrieve: RetrieveProfile JSON when
                                ///< the request set kReqFlagProfile
  std::string error;            ///< non-kOk: human-readable reason
};

/// Serializes a request/response into a frame payload (not yet framed —
/// pass the result to EncodeFrame).
std::string EncodeRequest(const Request& req);
std::string EncodeResponse(const Response& resp);

/// Parses a frame payload. Returns Corruption on malformed bytes; on
/// error `*out` is unspecified.
Status DecodeRequest(std::string_view payload, Request* out);
Status DecodeResponse(std::string_view payload, Response* out);

/// Maps the wire strategy byte to a StrategyKind. `fallback` substitutes
/// for kDefaultStrategyByte. InvalidArgument on unknown values.
Status StrategyFromByte(uint8_t byte, StrategyKind fallback,
                        StrategyKind* out);

const char* VerbName(Verb v);
const char* RespStatusName(RespStatus s);

}  // namespace net
}  // namespace objrep

#endif  // OBJREP_NET_PROTOCOL_H_
