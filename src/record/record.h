// Record (tuple) serialization.
//
// Encoding, per field in schema order:
//   kInt32  -> 4 bytes little-endian
//   kInt64  -> 8 bytes little-endian
//   kChar   -> u16 length + bytes with trailing blanks stripped
//              (INGRES "compressed" char fields [RTI86]; this is what makes
//               the paper's 200 B / 100 B tuples variable-length)
//   kBytes  -> u16 length + raw bytes
//
// Decoding re-pads kChar fields to their declared width, so the logical
// value round-trips while the stored size reflects compression.
#ifndef OBJREP_RECORD_RECORD_H_
#define OBJREP_RECORD_RECORD_H_

#include <string>
#include <vector>

#include "record/schema.h"
#include "record/value.h"
#include "util/status.h"

namespace objrep {

/// Serializes `values` (one per schema field) into `out`.
Status EncodeRecord(const Schema& schema, const std::vector<Value>& values,
                    std::string* out);

/// Parses `data` into one Value per schema field.
Status DecodeRecord(const Schema& schema, std::string_view data,
                    std::vector<Value>* out);

/// Decodes only field `index` without materializing the others (projection
/// fast path used by the retrieve queries).
Status DecodeField(const Schema& schema, std::string_view data, size_t index,
                   Value* out);

}  // namespace objrep

#endif  // OBJREP_RECORD_RECORD_H_
