file(REMOVE_RECURSE
  "libobjrep_record.a"
)
