# Empty dependencies file for objrep_record.
# This may be replaced when dependencies are built.
