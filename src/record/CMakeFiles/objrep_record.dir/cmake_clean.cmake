file(REMOVE_RECURSE
  "CMakeFiles/objrep_record.dir/record.cc.o"
  "CMakeFiles/objrep_record.dir/record.cc.o.d"
  "libobjrep_record.a"
  "libobjrep_record.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/objrep_record.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
