// Typed field values.
#ifndef OBJREP_RECORD_VALUE_H_
#define OBJREP_RECORD_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "record/schema.h"
#include "util/macros.h"

namespace objrep {

/// A single field value. kChar and kBytes both carry std::string payloads.
class Value {
 public:
  Value() : v_(int64_t{0}) {}
  explicit Value(int32_t v) : v_(v) {}
  explicit Value(int64_t v) : v_(v) {}
  explicit Value(std::string v) : v_(std::move(v)) {}

  bool is_int32() const { return std::holds_alternative<int32_t>(v_); }
  bool is_int64() const { return std::holds_alternative<int64_t>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }

  int32_t as_int32() const { return std::get<int32_t>(v_); }
  int64_t as_int64() const { return std::get<int64_t>(v_); }
  const std::string& as_string() const { return std::get<std::string>(v_); }

  bool operator==(const Value& other) const { return v_ == other.v_; }

 private:
  std::variant<int32_t, int64_t, std::string> v_;
};

}  // namespace objrep

#endif  // OBJREP_RECORD_VALUE_H_
