#include "record/record.h"

#include <cstring>

namespace objrep {

namespace {

void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

bool GetU16(std::string_view* in, uint16_t* v) {
  if (in->size() < 2) return false;
  *v = static_cast<uint16_t>(static_cast<unsigned char>((*in)[0]) |
                             (static_cast<unsigned char>((*in)[1]) << 8));
  in->remove_prefix(2);
  return true;
}

bool GetU32(std::string_view* in, uint32_t* v) {
  if (in->size() < 4) return false;
  uint32_t r = 0;
  for (int i = 0; i < 4; ++i) r |= static_cast<uint32_t>(static_cast<unsigned char>((*in)[i])) << (8 * i);
  *v = r;
  in->remove_prefix(4);
  return true;
}

bool GetU64(std::string_view* in, uint64_t* v) {
  if (in->size() < 8) return false;
  uint64_t r = 0;
  for (int i = 0; i < 8; ++i) r |= static_cast<uint64_t>(static_cast<unsigned char>((*in)[i])) << (8 * i);
  *v = r;
  in->remove_prefix(8);
  return true;
}

std::string_view StripTrailingBlanks(std::string_view s) {
  size_t end = s.size();
  while (end > 0 && s[end - 1] == ' ') --end;
  return s.substr(0, end);
}

// Skips one encoded field; returns false on truncation.
bool SkipField(FieldType type, std::string_view* in) {
  switch (type) {
    case FieldType::kInt32: {
      if (in->size() < 4) return false;
      in->remove_prefix(4);
      return true;
    }
    case FieldType::kInt64: {
      if (in->size() < 8) return false;
      in->remove_prefix(8);
      return true;
    }
    case FieldType::kChar:
    case FieldType::kBytes: {
      uint16_t len;
      if (!GetU16(in, &len) || in->size() < len) return false;
      in->remove_prefix(len);
      return true;
    }
  }
  return false;
}

Status DecodeOneField(const FieldDef& def, std::string_view* in, Value* out) {
  switch (def.type) {
    case FieldType::kInt32: {
      uint32_t raw;
      if (!GetU32(in, &raw)) return Status::Corruption("truncated int32");
      *out = Value(static_cast<int32_t>(raw));
      return Status::OK();
    }
    case FieldType::kInt64: {
      uint64_t raw;
      if (!GetU64(in, &raw)) return Status::Corruption("truncated int64");
      *out = Value(static_cast<int64_t>(raw));
      return Status::OK();
    }
    case FieldType::kChar: {
      uint16_t len;
      if (!GetU16(in, &len) || in->size() < len) {
        return Status::Corruption("truncated char field");
      }
      std::string s(in->substr(0, len));
      in->remove_prefix(len);
      s.resize(def.width, ' ');  // re-pad to declared width
      *out = Value(std::move(s));
      return Status::OK();
    }
    case FieldType::kBytes: {
      uint16_t len;
      if (!GetU16(in, &len) || in->size() < len) {
        return Status::Corruption("truncated bytes field");
      }
      std::string s(in->substr(0, len));
      in->remove_prefix(len);
      *out = Value(std::move(s));
      return Status::OK();
    }
  }
  return Status::Corruption("unknown field type");
}

}  // namespace

Status EncodeRecord(const Schema& schema, const std::vector<Value>& values,
                    std::string* out) {
  if (values.size() != schema.num_fields()) {
    return Status::InvalidArgument("value count does not match schema");
  }
  out->clear();
  for (size_t i = 0; i < values.size(); ++i) {
    const FieldDef& def = schema.field(i);
    const Value& v = values[i];
    switch (def.type) {
      case FieldType::kInt32:
        if (!v.is_int32()) return Status::InvalidArgument("expected int32");
        PutU32(out, static_cast<uint32_t>(v.as_int32()));
        break;
      case FieldType::kInt64:
        if (!v.is_int64()) return Status::InvalidArgument("expected int64");
        PutU64(out, static_cast<uint64_t>(v.as_int64()));
        break;
      case FieldType::kChar: {
        if (!v.is_string()) return Status::InvalidArgument("expected string");
        std::string_view s = v.as_string();
        if (s.size() > def.width) {
          return Status::InvalidArgument("char value exceeds declared width");
        }
        std::string_view stripped = StripTrailingBlanks(s);
        if (stripped.size() > UINT16_MAX) {
          return Status::InvalidArgument("char field too long");
        }
        PutU16(out, static_cast<uint16_t>(stripped.size()));
        out->append(stripped);
        break;
      }
      case FieldType::kBytes: {
        if (!v.is_string()) return Status::InvalidArgument("expected bytes");
        const std::string& s = v.as_string();
        if (s.size() > UINT16_MAX) {
          return Status::InvalidArgument("bytes field too long");
        }
        PutU16(out, static_cast<uint16_t>(s.size()));
        out->append(s);
        break;
      }
    }
  }
  return Status::OK();
}

Status DecodeRecord(const Schema& schema, std::string_view data,
                    std::vector<Value>* out) {
  out->clear();
  out->reserve(schema.num_fields());
  for (size_t i = 0; i < schema.num_fields(); ++i) {
    Value v;
    OBJREP_RETURN_NOT_OK(DecodeOneField(schema.field(i), &data, &v));
    out->push_back(std::move(v));
  }
  if (!data.empty()) return Status::Corruption("trailing bytes after record");
  return Status::OK();
}

Status DecodeField(const Schema& schema, std::string_view data, size_t index,
                   Value* out) {
  if (index >= schema.num_fields()) {
    return Status::InvalidArgument("field index out of range");
  }
  for (size_t i = 0; i < index; ++i) {
    if (!SkipField(schema.field(i).type, &data)) {
      return Status::Corruption("truncated record");
    }
  }
  return DecodeOneField(schema.field(index), &data, out);
}

}  // namespace objrep
