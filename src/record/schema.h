// Relation schemas.
//
// Field types mirror what the paper's relations need: integer ret fields,
// "compressed" fixed-width character fields (INGRES blank compression,
// giving variable-length records), and raw byte fields for OID lists and
// cached unit values.
#ifndef OBJREP_RECORD_SCHEMA_H_
#define OBJREP_RECORD_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/macros.h"

namespace objrep {

enum class FieldType : uint8_t {
  kInt32,   // 4-byte signed integer
  kInt64,   // 8-byte signed integer (also used for packed OIDs)
  kChar,    // fixed declared width, trailing blanks compressed on disk
  kBytes,   // variable-length byte string (length-prefixed)
};

/// One column of a relation.
struct FieldDef {
  std::string name;
  FieldType type;
  /// Declared width for kChar (bytes before compression); unused otherwise.
  uint32_t width = 0;
};

/// An ordered list of fields. Immutable after construction.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<FieldDef> fields) : fields_(std::move(fields)) {}

  size_t num_fields() const { return fields_.size(); }
  const FieldDef& field(size_t i) const { return fields_[i]; }

  /// Index of the field named `name`; aborts if absent (schema mismatches
  /// are programming errors, not runtime conditions).
  size_t FieldIndex(const std::string& name) const {
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (fields_[i].name == name) return i;
    }
    OBJREP_CHECK_MSG(false, ("no such field: " + name).c_str());
    return 0;
  }

 private:
  std::vector<FieldDef> fields_;
};

}  // namespace objrep

#endif  // OBJREP_RECORD_SCHEMA_H_
