file(REMOVE_RECURSE
  "CMakeFiles/objrep_objstore.dir/builder.cc.o"
  "CMakeFiles/objrep_objstore.dir/builder.cc.o.d"
  "CMakeFiles/objrep_objstore.dir/cache_manager.cc.o"
  "CMakeFiles/objrep_objstore.dir/cache_manager.cc.o.d"
  "CMakeFiles/objrep_objstore.dir/recovery.cc.o"
  "CMakeFiles/objrep_objstore.dir/recovery.cc.o.d"
  "CMakeFiles/objrep_objstore.dir/rows.cc.o"
  "CMakeFiles/objrep_objstore.dir/rows.cc.o.d"
  "CMakeFiles/objrep_objstore.dir/workload.cc.o"
  "CMakeFiles/objrep_objstore.dir/workload.cc.o.d"
  "libobjrep_objstore.a"
  "libobjrep_objstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/objrep_objstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
