# Empty dependencies file for objrep_objstore.
# This may be replaced when dependencies are built.
