
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/objstore/builder.cc" "src/objstore/CMakeFiles/objrep_objstore.dir/builder.cc.o" "gcc" "src/objstore/CMakeFiles/objrep_objstore.dir/builder.cc.o.d"
  "/root/repo/src/objstore/cache_manager.cc" "src/objstore/CMakeFiles/objrep_objstore.dir/cache_manager.cc.o" "gcc" "src/objstore/CMakeFiles/objrep_objstore.dir/cache_manager.cc.o.d"
  "/root/repo/src/objstore/recovery.cc" "src/objstore/CMakeFiles/objrep_objstore.dir/recovery.cc.o" "gcc" "src/objstore/CMakeFiles/objrep_objstore.dir/recovery.cc.o.d"
  "/root/repo/src/objstore/rows.cc" "src/objstore/CMakeFiles/objrep_objstore.dir/rows.cc.o" "gcc" "src/objstore/CMakeFiles/objrep_objstore.dir/rows.cc.o.d"
  "/root/repo/src/objstore/workload.cc" "src/objstore/CMakeFiles/objrep_objstore.dir/workload.cc.o" "gcc" "src/objstore/CMakeFiles/objrep_objstore.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/relational/CMakeFiles/objrep_relational.dir/DependInfo.cmake"
  "/root/repo/src/access/CMakeFiles/objrep_access.dir/DependInfo.cmake"
  "/root/repo/src/storage/CMakeFiles/objrep_storage.dir/DependInfo.cmake"
  "/root/repo/src/obs/CMakeFiles/objrep_obs.dir/DependInfo.cmake"
  "/root/repo/src/record/CMakeFiles/objrep_record.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
