file(REMOVE_RECURSE
  "libobjrep_objstore.a"
)
