#include "objstore/cache_manager.h"

#include <algorithm>

#include "obs/io_context.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/hash.h"
#include "util/macros.h"

namespace objrep {

namespace {

// Cumulative registry mirrors (DESIGN.md §11); per-run deltas come from
// CacheStats via ResetStats.
struct CacheMetrics {
  Counter* hits = MetricsRegistry::Global().GetCounter("cache.hits");
  Counter* misses = MetricsRegistry::Global().GetCounter("cache.misses");
  Counter* inserts = MetricsRegistry::Global().GetCounter("cache.inserts");
  Counter* invalidated =
      MetricsRegistry::Global().GetCounter("cache.invalidated_units");
  Counter* ilocks = MetricsRegistry::Global().GetCounter("cache.ilocks");
};

CacheMetrics& Metrics() {
  static CacheMetrics* m = new CacheMetrics();
  return *m;
}

}  // namespace

CacheManager::CacheManager(BufferPool* pool, uint32_t size_cache_units,
                           uint32_t num_buckets, CacheAdmission admission)
    : pool_(pool),
      size_cache_(size_cache_units),
      num_buckets_(num_buckets),
      admission_(admission) {}

Status CacheManager::Init() {
  // Building the cache's hash relation is maintenance traffic.
  ScopedIoTag tag(IoTag::kCacheMaint);
  return HashFile::Create(pool_, num_buckets_, &hash_);
}

uint64_t CacheManager::HashKeyOf(const std::vector<Oid>& unit_oids,
                                 BlobFormat format) {
  // Hash of the concatenation of the OIDs as stored in the object — the
  // paper's definition. (Not sorted: the stored order identifies the unit.)
  // The format salt keeps incompatibly-encoded blobs of the same unit in
  // disjoint key spaces (see BlobFormat in the header).
  uint64_t h = 0xcbf29ce484222325ULL ^ static_cast<uint64_t>(format);
  for (const Oid& oid : unit_oids) {
    h = HashCombine(h, oid.Packed());
  }
  return h;
}

bool CacheManager::IsCached(uint64_t hashkey) {
  std::lock_guard<std::mutex> l(mu_);
  bool cached = dir_.find(hashkey) != dir_.end();
  if (!cached) {
    ++stats_.misses;
    ++CurrentIoThreadState().cache_misses;
    Metrics().misses->Add(1);
  }
  return cached;
}

Status CacheManager::FetchUnit(uint64_t hashkey, std::string* blob) {
  // Hit-path hash-relation reads are the cache paying for itself.
  ScopedIoTag tag(IoTag::kCacheFetch);
  std::lock_guard<std::mutex> l(mu_);
  auto it = dir_.find(hashkey);
  if (it == dir_.end()) {
    ++stats_.misses;
    ++CurrentIoThreadState().cache_misses;
    Metrics().misses->Add(1);
    return Status::NotFound("unit not cached");
  }
  OBJREP_RETURN_NOT_OK(hash_.Lookup(hashkey, blob));
  // Refresh recency.
  lru_.erase(it->second);
  lru_.push_back(hashkey);
  it->second = std::prev(lru_.end());
  ++stats_.hits;
  ++CurrentIoThreadState().cache_hits;
  Metrics().hits->Add(1);
  return Status::OK();
}

Status CacheManager::TryFetchUnit(uint64_t hashkey, std::string* blob,
                                  bool* found) {
  ScopedIoTag tag(IoTag::kCacheFetch);
  std::lock_guard<std::mutex> l(mu_);
  auto it = dir_.find(hashkey);
  if (it == dir_.end()) {
    *found = false;
    ++stats_.misses;
    ++CurrentIoThreadState().cache_misses;
    Metrics().misses->Add(1);
    return Status::OK();
  }
  OBJREP_RETURN_NOT_OK(hash_.Lookup(hashkey, blob));
  lru_.erase(it->second);
  lru_.push_back(hashkey);
  it->second = std::prev(lru_.end());
  *found = true;
  ++stats_.hits;
  ++CurrentIoThreadState().cache_hits;
  Metrics().hits->Add(1);
  return Status::OK();
}

void CacheManager::ForgetUnitLocked(uint64_t hashkey) {
  auto it = dir_.find(hashkey);
  OBJREP_CHECK(it != dir_.end());
  lru_.erase(it->second);
  dir_.erase(it);
  auto mem_it = unit_members_.find(hashkey);
  OBJREP_CHECK(mem_it != unit_members_.end());
  for (uint64_t packed : mem_it->second) {
    auto lt = lock_table_.find(packed);
    if (lt == lock_table_.end()) continue;
    auto& held = lt->second;
    held.erase(std::remove(held.begin(), held.end(), hashkey), held.end());
    if (held.empty()) lock_table_.erase(lt);
  }
  unit_members_.erase(mem_it);
}

Status CacheManager::InsertUnit(uint64_t hashkey,
                                const std::vector<Oid>& unit_oids,
                                std::string_view blob) {
  // A unit install touches multiple hash-relation pages (a possible
  // eviction's delete, the insert, maybe a fresh overflow page): one WAL
  // transaction. Order matters for latches (wal_mu_ before the cache
  // latch, same as an update query's runner-level transaction) and for
  // abort safety (all hash I/O before any memory mutation, so a failed
  // transaction leaves directory and hash relation agreeing).
  // Everything an install touches — victim delete, insert, overflow-page
  // allocation, and the commit's deferred write-backs via dirty_tag — is
  // cache maintenance, the DFSCACHE overhead the paper charges (§6).
  ScopedIoTag tag(IoTag::kCacheMaint);
  OBJREP_RETURN_NOT_OK(pool_->BeginTxn());
  std::lock_guard<std::mutex> l(mu_);
  Status s = [&]() -> Status {
    if (dir_.find(hashkey) != dir_.end()) {
      return Status::OK();  // outside cache: already present, shared entry
    }
    uint64_t victim = 0;
    bool have_victim = false;
    if (dir_.size() >= size_cache_) {
      if (admission_ == CacheAdmission::kRejectWhenFull) {
        ++stats_.rejections;
        return Status::OK();
      }
      // Evict the least recently used unit.
      OBJREP_CHECK(!lru_.empty());
      victim = lru_.front();
      have_victim = true;
    }
    if (have_victim) {
      OBJREP_RETURN_NOT_OK(hash_.Delete(victim));
    }
    OBJREP_RETURN_NOT_OK(
        pool_->disk()->fault_injector()->MaybeCrash("cache.install.mid"));
    OBJREP_RETURN_NOT_OK(hash_.Insert(hashkey, blob));
    // All I/O done; the memory structures below cannot fail.
    if (have_victim) {
      ForgetUnitLocked(victim);
      ++stats_.evictions;
    }
    lru_.push_back(hashkey);
    dir_[hashkey] = std::prev(lru_.end());
    auto& members = unit_members_[hashkey];
    members.reserve(unit_oids.size());
    for (const Oid& oid : unit_oids) {
      members.push_back(oid.Packed());
      lock_table_[oid.Packed()].push_back(hashkey);
    }
    Metrics().ilocks->Add(unit_oids.size());
    ++stats_.inserts;
    Metrics().inserts->Add(1);
    return Status::OK();
  }();
  if (s.ok()) {
    s = pool_->CommitTxn();
  } else {
    pool_->AbortTxn();
  }
  return s;
}

Status CacheManager::InvalidateSubobject(const Oid& oid) {
  // Inside an update query this joins the runner-level transaction
  // (reentrant BeginTxn); on its own (tests) it is one transaction.
  ScopedIoTag tag(IoTag::kCacheMaint);
  OBJREP_RETURN_NOT_OK(pool_->BeginTxn());
  std::lock_guard<std::mutex> l(mu_);
  Status s = [&]() -> Status {
    auto it = lock_table_.find(oid.Packed());
    if (it == lock_table_.end()) return Status::OK();
    // The forget pass mutates the lock table; work from a copy.
    std::vector<uint64_t> held = it->second;
    FaultInjector* fi = pool_->disk()->fault_injector();
    for (uint64_t hashkey : held) {
      OBJREP_RETURN_NOT_OK(hash_.Delete(hashkey));
      OBJREP_RETURN_NOT_OK(fi->MaybeCrash("cache.invalidate.mid"));
    }
    for (uint64_t hashkey : held) {
      ForgetUnitLocked(hashkey);
      ++stats_.invalidated_units;
    }
    Metrics().invalidated->Add(held.size());
    Trace::Instant("ilock_invalidate", "cache", "units", held.size());
    return Status::OK();
  }();
  if (s.ok()) {
    s = pool_->CommitTxn();
  } else {
    pool_->AbortTxn();
  }
  return s;
}

Status CacheManager::ResetForRecovery() {
  ScopedIoTag tag(IoTag::kCacheMaint);
  std::lock_guard<std::mutex> l(mu_);
  OBJREP_RETURN_NOT_OK(hash_.Destroy());
  OBJREP_RETURN_NOT_OK(HashFile::Create(pool_, num_buckets_, &hash_));
  lru_.clear();
  dir_.clear();
  unit_members_.clear();
  lock_table_.clear();
  stats_ = CacheStats{};
  return Status::OK();
}

Status CacheManager::CheckInvariants() {
  std::lock_guard<std::mutex> l(mu_);
  if (dir_.size() != lru_.size()) {
    return Status::Internal("cache directory and LRU disagree");
  }
  if (dir_.size() != unit_members_.size()) {
    return Status::Internal("cache directory and member table disagree");
  }
  if (hash_.num_entries() != dir_.size()) {
    return Status::Internal("cache directory and hash relation disagree");
  }
  for (const auto& [packed, held] : lock_table_) {
    (void)packed;
    if (held.empty()) return Status::Internal("empty I-lock list");
    for (uint64_t hk : held) {
      if (dir_.find(hk) == dir_.end()) {
        return Status::Internal("I-lock on uncached unit");
      }
    }
  }
  for (const auto& [hk, members] : unit_members_) {
    for (uint64_t packed : members) {
      auto lt = lock_table_.find(packed);
      if (lt == lock_table_.end() ||
          std::find(lt->second.begin(), lt->second.end(), hk) ==
              lt->second.end()) {
        return Status::Internal("cached unit member missing its I-lock");
      }
    }
    bool found = false;
    OBJREP_RETURN_NOT_OK(hash_.Contains(hk, &found));
    if (!found) {
      return Status::Internal("cached unit missing from hash relation");
    }
  }
  return Status::OK();
}

}  // namespace objrep
