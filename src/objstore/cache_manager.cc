#include "objstore/cache_manager.h"

#include <algorithm>

#include "util/hash.h"
#include "util/macros.h"

namespace objrep {

CacheManager::CacheManager(BufferPool* pool, uint32_t size_cache_units,
                           uint32_t num_buckets, CacheAdmission admission)
    : pool_(pool),
      size_cache_(size_cache_units),
      num_buckets_(num_buckets),
      admission_(admission) {}

Status CacheManager::Init() {
  return HashFile::Create(pool_, num_buckets_, &hash_);
}

uint64_t CacheManager::HashKeyOf(const std::vector<Oid>& unit_oids) {
  // Hash of the concatenation of the OIDs as stored in the object — the
  // paper's definition. (Not sorted: the stored order identifies the unit.)
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const Oid& oid : unit_oids) {
    h = HashCombine(h, oid.Packed());
  }
  return h;
}

bool CacheManager::IsCached(uint64_t hashkey) {
  std::lock_guard<std::mutex> l(mu_);
  bool cached = dir_.find(hashkey) != dir_.end();
  if (!cached) ++stats_.misses;
  return cached;
}

Status CacheManager::FetchUnit(uint64_t hashkey, std::string* blob) {
  std::lock_guard<std::mutex> l(mu_);
  auto it = dir_.find(hashkey);
  if (it == dir_.end()) {
    ++stats_.misses;
    return Status::NotFound("unit not cached");
  }
  OBJREP_RETURN_NOT_OK(hash_.Lookup(hashkey, blob));
  // Refresh recency.
  lru_.erase(it->second);
  lru_.push_back(hashkey);
  it->second = std::prev(lru_.end());
  ++stats_.hits;
  return Status::OK();
}

Status CacheManager::RemoveUnitLocked(uint64_t hashkey) {
  auto it = dir_.find(hashkey);
  OBJREP_CHECK(it != dir_.end());
  OBJREP_RETURN_NOT_OK(hash_.Delete(hashkey));
  lru_.erase(it->second);
  dir_.erase(it);
  auto mem_it = unit_members_.find(hashkey);
  OBJREP_CHECK(mem_it != unit_members_.end());
  for (uint64_t packed : mem_it->second) {
    auto lt = lock_table_.find(packed);
    if (lt == lock_table_.end()) continue;
    auto& held = lt->second;
    held.erase(std::remove(held.begin(), held.end(), hashkey), held.end());
    if (held.empty()) lock_table_.erase(lt);
  }
  unit_members_.erase(mem_it);
  return Status::OK();
}

Status CacheManager::InsertUnit(uint64_t hashkey,
                                const std::vector<Oid>& unit_oids,
                                std::string_view blob) {
  std::lock_guard<std::mutex> l(mu_);
  if (dir_.find(hashkey) != dir_.end()) {
    return Status::OK();  // outside cache: already present, shared entry
  }
  if (dir_.size() >= size_cache_) {
    if (admission_ == CacheAdmission::kRejectWhenFull) {
      ++stats_.rejections;
      return Status::OK();
    }
    // Evict the least recently used unit.
    OBJREP_CHECK(!lru_.empty());
    uint64_t victim = lru_.front();
    OBJREP_RETURN_NOT_OK(RemoveUnitLocked(victim));
    ++stats_.evictions;
  }
  OBJREP_RETURN_NOT_OK(hash_.Insert(hashkey, blob));
  lru_.push_back(hashkey);
  dir_[hashkey] = std::prev(lru_.end());
  auto& members = unit_members_[hashkey];
  members.reserve(unit_oids.size());
  for (const Oid& oid : unit_oids) {
    members.push_back(oid.Packed());
    lock_table_[oid.Packed()].push_back(hashkey);
  }
  ++stats_.inserts;
  return Status::OK();
}

Status CacheManager::InvalidateSubobject(const Oid& oid) {
  std::lock_guard<std::mutex> l(mu_);
  auto it = lock_table_.find(oid.Packed());
  if (it == lock_table_.end()) return Status::OK();
  // RemoveUnitLocked mutates the lock table; work from a copy of the list.
  std::vector<uint64_t> held = it->second;
  for (uint64_t hashkey : held) {
    OBJREP_RETURN_NOT_OK(RemoveUnitLocked(hashkey));
    ++stats_.invalidated_units;
  }
  return Status::OK();
}

}  // namespace objrep
