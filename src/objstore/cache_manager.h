// Outside cache of materialized units (paper §3.2).
//
// The Cache relation is a hash file keyed on `hashkey`, "a function of the
// concatenation of the OID's in that unit". Because the hashkey identifies
// the unit's OID list, two objects referencing the same unit share one
// cache entry — that is what makes the caching "outside".
//
// Invalidation follows the paper's I-lock scheme: each subobject holds an
// invalidation lock for every cached unit it belongs to; an update to the
// subobject invalidates (deletes) those units. The paper stores I-locks
// with the subobjects themselves — the page an update already touches — so
// reading the locks costs no extra I/O; we keep the same information in a
// memory-resident lock table and charge only the hash-relation deletes,
// preserving the cost model (DESIGN.md §5.6).
//
// Under the concurrent execution engine the I-locks are real cross-thread
// invalidation: every cache operation (probe, fetch, insert, invalidate)
// runs under one internal latch, so an updater's InvalidateSubobject is
// atomic with respect to a concurrent retriever's probe-fetch or
// materialize-insert. Combined with the exec-layer table locks (a
// retriever holds S on the child relations for its whole query, an updater
// holds X), no stale unit can be re-inserted after its invalidation.
// Latch order: table locks -> cache latch -> buffer-pool latches.
//
// The directory of cached hashkeys (at most SizeCache = 1000 entries) is
// likewise memory-resident: strategies may *test* residency for free, but
// fetching, inserting, or invalidating unit values costs hash-file I/O.
#ifndef OBJREP_OBJSTORE_CACHE_MANAGER_H_
#define OBJREP_OBJSTORE_CACHE_MANAGER_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "access/hash_file.h"
#include "objstore/oid.h"
#include "objstore/spec.h"
#include "storage/buffer_pool.h"
#include "util/status.h"

namespace objrep {

class CacheManager {
 public:
  struct CacheStats {
    uint64_t hits = 0;          ///< FetchUnit calls that found the unit
    uint64_t misses = 0;        ///< IsCached probes that answered "no"
    uint64_t inserts = 0;
    uint64_t evictions = 0;     ///< LRU evictions (kEvictLru)
    uint64_t rejections = 0;    ///< inserts dropped (kRejectWhenFull)
    uint64_t invalidated_units = 0;
  };

  CacheManager(BufferPool* pool, uint32_t size_cache_units,
               uint32_t num_buckets, CacheAdmission admission);

  /// Creates the on-disk hash relation. Must be called once before use.
  Status Init();

  /// Record encoding held in a cached unit's value blob. Strategies that
  /// assemble units from the child relations (DFSCACHE, SMART) cache raw
  /// child-relation records; DFSCLUST+CACHE caches ClusterRel records.
  /// The two encodings are mutually unreadable — projecting one with the
  /// other's schema yields garbage values, not an error — so the format
  /// is part of the unit's cache identity: the same unit cached in both
  /// formats occupies two entries, and a strategy can never fetch a blob
  /// it cannot decode. Invalidation is unaffected (I-locks are per
  /// inserted hashkey, so an update drops both formats' entries).
  enum class BlobFormat : uint64_t {
    kChildRecords = 0,
    kClusterRecords = 0x9e3779b97f4a7c15ULL,  // odd salt, full avalanche
  };

  /// Unit identity: hash of the packed, as-stored OID list, salted by the
  /// blob format the caller stores/expects.
  static uint64_t HashKeyOf(const std::vector<Oid>& unit_oids,
                            BlobFormat format = BlobFormat::kChildRecords);

  /// Free residency test against the in-memory directory (counts a miss
  /// when absent). Does not touch the LRU order.
  bool IsCached(uint64_t hashkey);

  /// Reads the unit's value blob from the Cache relation (hash-file I/O);
  /// refreshes LRU recency. NotFound if not cached.
  Status FetchUnit(uint64_t hashkey, std::string* blob);

  /// Atomic IsCached + FetchUnit: one directory-lock hold, so a concurrent
  /// insert's eviction cannot turn a positive residency probe into a
  /// NotFound (`*found = false` is the miss answer, not an error). Counts
  /// a hit or a miss accordingly. Strategies under the concurrent engine
  /// must use this instead of the check-then-fetch pair.
  Status TryFetchUnit(uint64_t hashkey, std::string* blob, bool* found);

  /// Inserts a freshly materialized unit, evicting or rejecting per the
  /// admission policy, and registers I-locks on its subobjects.
  Status InsertUnit(uint64_t hashkey, const std::vector<Oid>& unit_oids,
                    std::string_view blob);

  /// Update hook: invalidates every cached unit holding an I-lock of `oid`
  /// (each invalidation is a hash-relation delete, which costs I/O).
  Status InvalidateSubobject(const Oid& oid);

  /// Crash recovery: the cache is soft state (DESIGN.md §10). Frees the
  /// old hash relation's pages, re-creates it empty, and clears the
  /// directory, LRU, and I-lock table. Call after the pool was emptied
  /// and the WAL redone.
  Status ResetForRecovery();

  /// Structural consistency check for tests: directory, LRU, I-lock
  /// table, and hash relation must all describe the same set of units.
  /// Costs hash-file I/O (one Contains per cached unit).
  Status CheckInvariants();

  uint32_t size() const {
    std::lock_guard<std::mutex> l(mu_);
    return static_cast<uint32_t>(dir_.size());
  }
  uint32_t capacity() const { return size_cache_; }
  CacheStats stats() const {
    std::lock_guard<std::mutex> l(mu_);
    return stats_;
  }
  void ResetStats() {
    std::lock_guard<std::mutex> l(mu_);
    stats_ = CacheStats{};
  }
  const HashFile& hash_file() const { return hash_; }

 private:
  /// Memory-only removal: directory, LRU, members, I-locks. Caller holds
  /// mu_ and has already deleted (or is abandoning) the hash entry. Kept
  /// separate from the hash I/O so mutations can be ordered I/O-first:
  /// an aborted transaction then leaves the memory directory untouched
  /// and consistent with the rolled-back hash relation.
  void ForgetUnitLocked(uint64_t hashkey);

  /// Serializes every cache operation: directory, LRU, I-lock table, and
  /// the hash-relation I/O they imply. Held across buffer-pool calls
  /// (latch order: cache latch before pool latches, never the reverse).
  mutable std::mutex mu_;

  BufferPool* pool_;
  uint32_t size_cache_;
  uint32_t num_buckets_;
  CacheAdmission admission_;
  HashFile hash_;

  // LRU order (front = coldest) and directory hashkey -> LRU position.
  std::list<uint64_t> lru_;
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> dir_;
  // hashkey -> member OIDs (needed to release I-locks on removal).
  std::unordered_map<uint64_t, std::vector<uint64_t>> unit_members_;
  // packed subobject OID -> hashkeys of cached units holding an I-lock.
  std::unordered_map<uint64_t, std::vector<uint64_t>> lock_table_;

  CacheStats stats_;
};

}  // namespace objrep

#endif  // OBJREP_OBJSTORE_CACHE_MANAGER_H_
