// Crash recovery (DESIGN.md §10).
//
// The recovery invariant: after RecoverDatabase the base relations hold
// exactly the committed prefix of the update history. Everything else —
// buffer-pool frames, the Cache relation, I-locks — is soft state and is
// rebuilt empty rather than recovered:
//
//   1. Clear the injector's crashed state so I/O works again (the simulated
//      volume "comes back up"; rates and armed crash points are kept so a
//      test can re-arm without reconfiguring).
//   2. Drop every buffer-pool frame without writing back. Uncommitted dirty
//      frames must not reach the disk; committed ones were written through
//      at commit, so dropping loses nothing.
//   3. Redo the WAL: rewrite the page images and replay the frees of every
//      committed-but-unapplied transaction (there is at most one — commits
//      are serialized and apply runs inside commit).
//   4. Rebuild the cache relation empty and clear the directory, LRU, and
//      I-lock table. A cached unit whose install raced the crash may or
//      may not have committed; starting cold is always correct because the
//      cache only ever re-derives data from the base relations.
//   5. Under MVCC (DESIGN.md §15): replay the committed-but-unapplied
//      kMvccUpdate records through the table layer, in log order (== commit
//      order; commits are serialized), each as its own redo-logged pool
//      transaction. Values are absolute, so the replay is idempotent even
//      over a base some earlier fold already updated. Then reset the
//      version store — chains are soft state once folded to base — with
//      the clock restored past the newest replayed commit so timestamps
//      stay monotonic across the crash.
#include <algorithm>
#include <memory>
#include <vector>

#include "mvcc/apply.h"
#include "objstore/database.h"
#include "storage/fault_injector.h"
#include "util/macros.h"

namespace objrep {

Status RecoverDatabase(ComplexDatabase* db, RecoveryReport* report) {
  if (db->wal == nullptr) {
    return Status::InvalidArgument("recovery requires spec.enable_wal");
  }
  RecoveryReport local;
  RecoveryReport* rep = report != nullptr ? report : &local;
  *rep = RecoveryReport{};

  db->disk->fault_injector()->ClearCrash();
  rep->frames_dropped = db->pool->DropAllFrames();
  std::vector<WalMvccRedo> mvcc_redo;
  OBJREP_RETURN_NOT_OK(db->wal->Recover(&rep->wal, &mvcc_redo));
  db->wal->Reset();
  if (db->cache != nullptr) {
    OBJREP_RETURN_NOT_OK(db->cache->ResetForRecovery());
    rep->cache_reset = true;
  }
  if (db->mvcc != nullptr) {
    uint64_t restored_clock = db->mvcc->clock();
    for (const WalMvccRedo& rec : mvcc_redo) {
      OBJREP_RETURN_NOT_OK(db->pool->BeginTxn());
      for (const auto& [packed, value] : rec.updates) {
        Status s =
            mvcc::ApplyCommittedValue(db, Oid::FromPacked(packed), value);
        if (!s.ok()) {
          db->pool->AbortTxn();
          return s;
        }
      }
      OBJREP_RETURN_NOT_OK(db->pool->CommitTxn());
      restored_clock = std::max(restored_clock, rec.commit_ts);
      ++rep->mvcc_txns_redone;
    }
    db->mvcc->ResetForRecovery(restored_clock);
  }
  return Status::OK();
}

}  // namespace objrep
