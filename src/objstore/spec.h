// All generation parameters of the simulated complex-object database
// (paper §4, "Experimental Setup").
#ifndef OBJREP_OBJSTORE_SPEC_H_
#define OBJREP_OBJSTORE_SPEC_H_

#include <cstdint>

#include "util/status.h"

namespace objrep {

/// What happens when a unit is inserted into a full cache.
enum class CacheAdmission {
  /// Evict the least-recently-used unit (default; ablation A1 compares).
  kEvictLru,
  /// Reject the insertion, leaving the cache unchanged.
  kRejectWhenFull,
};

struct DatabaseSpec {
  // --- Paper §4 data parameters. ---
  uint32_t num_parents = 10000;   ///< |ParentRel|
  uint32_t size_unit = 5;         ///< expected subobjects per unit
  uint32_t use_factor = 5;        ///< expected objects sharing a unit
  uint32_t overlap_factor = 1;    ///< expected units sharing a subobject
  uint32_t num_child_rels = 1;    ///< NumChildRel (paper §6.2)
  uint32_t parent_tuple_bytes = 200;
  uint32_t child_tuple_bytes = 100;

  // --- Environment. ---
  uint32_t buffer_pages = 100;    ///< INGRES main-memory buffer (paper §4)
  double fill_factor = 1.0;       ///< B-tree leaf packing at load time

  // --- Cache (paper §4 [3]). ---
  bool build_cache = false;
  uint32_t size_cache = 1000;     ///< max cached units
  uint32_t cache_buckets = 512;   ///< primary buckets of the hash relation
  CacheAdmission cache_admission = CacheAdmission::kEvictLru;

  // --- Clustering (paper §3.3). ---
  bool build_cluster = false;
  /// On-page bytes per entry of the ISAM index on ClusterRel.OID. INGRES
  /// keyed this index on a char-encoded OID plus a TID and per-entry
  /// overhead (~32 bytes), so the index competes for buffer space; 16 is
  /// the packed minimum (see access/isam.h).
  uint32_t cluster_index_entry_bytes = 32;

  // --- Join index ([VALD86], cited in §2 for complex-object
  //     implementation techniques). ---
  /// Materialize the object -> subobject mapping as a dense binary
  /// relation (B-tree on (parent key, position)), so breadth-first
  /// strategies can collect a retrieve's OIDs without scanning the wide
  /// ParentRel tuples (StrategyKind::kBfsJoinIndex).
  bool build_join_index = false;

  // --- Procedural representation only (core/procedural.h). ---
  /// Build a secondary index on the predicate attribute so stored queries
  /// can run as index lookups instead of full scans (ProcStrategy::
  /// kExecIndexed).
  bool build_tag_index = false;

  // --- I/O scheduling (DESIGN.md §9). All default to the seed behaviour:
  //     no read-ahead, zero-latency device, temps never reclaimed. ---
  /// Enable buffer-pool read-ahead (vectored batch reads of exactly-known
  /// upcoming pages). With a zero-latency device every I/O count is
  /// bit-identical to prefetch off; with latency it overlaps and amortizes
  /// seeks.
  bool prefetch = false;
  /// Max pages per read-ahead batch.
  uint32_t readahead_pages = 8;
  /// Background I/O workers servicing read-ahead hints. 0 == synchronous
  /// (deterministic; required for count comparisons). Nonzero overlaps
  /// read-ahead with execution — throughput runs only.
  uint32_t prefetch_workers = 0;
  /// Return the pages of consumed temporaries (BFS temps, sort runs) to
  /// the disk free list so long workloads have bounded footprint. Changes
  /// which dirty pages remain for end-of-run flushes, hence off for the
  /// paper experiments.
  bool reclaim_temp_pages = false;
  /// Simulated seek time per discontiguous read segment / per write
  /// (microseconds). 0 == pure counter, no sleeping.
  uint32_t io_latency_us = 0;
  /// Simulated per-page transfer time (microseconds).
  uint32_t io_transfer_us = 0;

  // --- Durability (DESIGN.md §10). ---
  /// Attach a page-level write-ahead commit log to the buffer pool and run
  /// every multi-page mutation (update queries, cache unit installs and
  /// invalidations, temp-file reclaim) as a redo-logged transaction, so a
  /// crash at any registered fault point is recoverable. Off for the paper
  /// experiments: logging adds no simulated I/O, but the txn latches
  /// serialize mutators, which is not part of the paper's cost model.
  bool enable_wal = false;

  // --- MVCC snapshot isolation (DESIGN.md §15). ---
  /// Attach a version store so concurrent retrieves read a consistent
  /// snapshot at their begin timestamp without table S locks, and updates
  /// install versions (first-committer-wins on overlapping targets)
  /// instead of writing base pages in place. Base pages stay frozen until
  /// a quiescent fold applies the newest versions. With enable_wal the
  /// commit point is a logical kMvccUpdate WAL record; without it MVCC is
  /// memory-only. Off for the paper experiments.
  bool enable_mvcc = false;

  uint64_t seed = 42;

  // --- Derived quantities (paper eqn. (1) and following). ---
  uint32_t share_factor() const { return use_factor * overlap_factor; }
  /// |ChildRel| summed over all child relations.
  uint32_t num_children_total() const {
    return num_parents * size_unit / share_factor();
  }
  /// NumUnits = |ParentRel| / UseFactor.
  uint32_t num_units() const { return num_parents / use_factor; }

  Status Validate() const {
    if (num_parents == 0 || size_unit == 0 || use_factor == 0 ||
        overlap_factor == 0 || num_child_rels == 0) {
      return Status::InvalidArgument("spec parameters must be positive");
    }
    if (num_parents % use_factor != 0) {
      return Status::InvalidArgument("use_factor must divide num_parents");
    }
    if (num_children_total() % num_child_rels != 0) {
      return Status::InvalidArgument(
          "num_child_rels must divide |ChildRel|");
    }
    if (overlap_factor == 1 &&
        num_units() * size_unit != num_children_total() * 1u) {
      // With disjoint units the partition must be exact (it always is,
      // algebraically, when the divisibility constraints above hold).
      return Status::InvalidArgument("unit partition is not exact");
    }
    if (num_units() % num_child_rels != 0) {
      return Status::InvalidArgument("num_child_rels must divide NumUnits");
    }
    if (size_unit > 4095) {
      return Status::InvalidArgument("size_unit exceeds cluster seq field");
    }
    return Status::OK();
  }
};

}  // namespace objrep

#endif  // OBJREP_OBJSTORE_SPEC_H_
