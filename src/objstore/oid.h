// Object identifiers.
//
// The paper uses "the simplest OID's that provide location transparency —
// the concatenation of the relation identifier and the primary key of a
// tuple" (§2.2). Packed into a u64 so OIDs order first by relation, then
// by key — which is what makes a sorted temporary merge-joinable against
// one ChildRel's B-tree at a time.
#ifndef OBJREP_OBJSTORE_OID_H_
#define OBJREP_OBJSTORE_OID_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/macros.h"

namespace objrep {

struct Oid {
  uint32_t rel = 0;
  uint32_t key = 0;

  uint64_t Packed() const {
    return (static_cast<uint64_t>(rel) << 32) | key;
  }
  static Oid FromPacked(uint64_t packed) {
    return Oid{static_cast<uint32_t>(packed >> 32),
               static_cast<uint32_t>(packed & 0xffffffffu)};
  }

  friend bool operator==(const Oid&, const Oid&) = default;
  friend auto operator<=>(const Oid& a, const Oid& b) {
    return a.Packed() <=> b.Packed();
  }
};

/// Serializes an OID list into the `children` attribute payload.
inline std::string EncodeOidList(const std::vector<Oid>& oids) {
  std::string out;
  out.reserve(oids.size() * 8);
  for (const Oid& oid : oids) {
    uint64_t packed = oid.Packed();
    out.append(reinterpret_cast<const char*>(&packed), 8);
  }
  return out;
}

/// Parses a `children` attribute payload.
inline std::vector<Oid> DecodeOidList(std::string_view payload) {
  OBJREP_CHECK(payload.size() % 8 == 0);
  std::vector<Oid> oids;
  oids.reserve(payload.size() / 8);
  for (size_t i = 0; i < payload.size(); i += 8) {
    uint64_t packed;
    std::memcpy(&packed, payload.data() + i, 8);
    oids.push_back(Oid::FromPacked(packed));
  }
  return oids;
}

}  // namespace objrep

#endif  // OBJREP_OBJSTORE_OID_H_
