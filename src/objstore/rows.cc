#include "objstore/rows.h"

namespace objrep {

namespace {

// Encoded sizes per field kind (record.cc layout).
constexpr uint32_t kInt32Bytes = 4;
constexpr uint32_t kInt64Bytes = 8;
constexpr uint32_t kVarHeader = 2;  // u16 length prefix

std::string DummyPayload(uint32_t width) {
  // Non-blank filler so blank compression stores exactly `width` bytes.
  return std::string(width, 'x');
}

}  // namespace

Schema MakeParentSchema(uint32_t dummy_width) {
  return Schema({
      {"OID", FieldType::kInt64, 0},
      {"ret1", FieldType::kInt32, 0},
      {"ret2", FieldType::kInt32, 0},
      {"ret3", FieldType::kInt32, 0},
      {"dummy", FieldType::kChar, dummy_width},
      {"children", FieldType::kBytes, 0},
  });
}

Schema MakeChildSchema(uint32_t dummy_width) {
  return Schema({
      {"OID", FieldType::kInt64, 0},
      {"ret1", FieldType::kInt32, 0},
      {"ret2", FieldType::kInt32, 0},
      {"ret3", FieldType::kInt32, 0},
      {"dummy", FieldType::kChar, dummy_width},
  });
}

Schema MakeClusterSchema(uint32_t dummy_width) {
  return Schema({
      {"cluster", FieldType::kInt64, 0},
      {"OID", FieldType::kInt64, 0},
      {"ret1", FieldType::kInt32, 0},
      {"ret2", FieldType::kInt32, 0},
      {"ret3", FieldType::kInt32, 0},
      {"dummy", FieldType::kChar, dummy_width},
      {"children", FieldType::kBytes, 0},
  });
}

uint32_t ParentDummyWidth(uint32_t target_bytes, uint32_t size_unit) {
  // OID + 3 rets + dummy header + children header + children payload.
  uint32_t fixed = kInt64Bytes + 3 * kInt32Bytes + kVarHeader + kVarHeader +
                   8 * size_unit;
  return target_bytes > fixed + 1 ? target_bytes - fixed : 1;
}

uint32_t ChildDummyWidth(uint32_t target_bytes) {
  uint32_t fixed = kInt64Bytes + 3 * kInt32Bytes + kVarHeader;
  return target_bytes > fixed + 1 ? target_bytes - fixed : 1;
}

std::vector<Value> ParentRowValues(const ParentRow& row,
                                   uint32_t dummy_width) {
  return {
      Value(static_cast<int64_t>(row.oid.Packed())),
      Value(row.ret1),
      Value(row.ret2),
      Value(row.ret3),
      Value(DummyPayload(dummy_width)),
      Value(EncodeOidList(row.children)),
  };
}

std::vector<Value> ChildRowValues(const ChildRow& row, uint32_t dummy_width) {
  return {
      Value(static_cast<int64_t>(row.oid.Packed())),
      Value(row.ret1),
      Value(row.ret2),
      Value(row.ret3),
      Value(DummyPayload(dummy_width)),
  };
}

std::vector<Value> ClusterParentValues(const ParentRow& row,
                                       uint32_t parent_dummy_width) {
  return {
      Value(static_cast<int64_t>(row.oid.key)),  // cluster# == parent key
      Value(static_cast<int64_t>(row.oid.Packed())),
      Value(row.ret1),
      Value(row.ret2),
      Value(row.ret3),
      Value(DummyPayload(parent_dummy_width)),
      Value(EncodeOidList(row.children)),
  };
}

std::vector<Value> ClusterChildValues(const ChildRow& row,
                                      uint32_t child_dummy_width) {
  return {
      Value(int64_t{0}),  // cluster# filled by the builder via the key
      Value(static_cast<int64_t>(row.oid.Packed())),
      Value(row.ret1),
      Value(row.ret2),
      Value(row.ret3),
      Value(DummyPayload(child_dummy_width)),
      Value(std::string()),
  };
}

Status DecodeChildRet(const Schema& schema, std::string_view raw,
                      int attr_index, int32_t* out) {
  if (attr_index < 0 || attr_index > 2) {
    return Status::InvalidArgument("attr index must be 0..2");
  }
  Value v;
  OBJREP_RETURN_NOT_OK(
      DecodeField(schema, raw, kChildRet1 + static_cast<size_t>(attr_index),
                  &v));
  *out = v.as_int32();
  return Status::OK();
}

}  // namespace objrep
