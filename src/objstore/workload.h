// Query-sequence generation (paper §4).
//
// A sequence mixes retrieves
//     retrieve (ParentRel.children.attr) where val1 <= ParentRel.OID <= val2
// with attr drawn at random from {ret1, ret2, ret3}, and updates that
// modify a fixed number of ChildRel tuples in place. Pr(UPDATE) is the
// update fraction; NumTop = val2 - val1 + 1 objects per retrieve, with
// val1 uniform so "each complex object has an equal likelihood of being
// accessed".
#ifndef OBJREP_OBJSTORE_WORKLOAD_H_
#define OBJREP_OBJSTORE_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "objstore/database.h"
#include "objstore/oid.h"
#include "util/status.h"

namespace objrep {

struct Query {
  enum class Kind { kRetrieve, kUpdate };
  Kind kind = Kind::kRetrieve;

  // kRetrieve: parents [lo_parent, lo_parent + num_top) and the projected
  // ret attribute (0 => ret1, 1 => ret2, 2 => ret3).
  uint32_t lo_parent = 0;
  uint32_t num_top = 0;
  int attr_index = 0;

  // kUpdate: subobjects modified in place, and the new ret1 value.
  std::vector<Oid> update_targets;
  int32_t new_ret1 = 0;
};

struct WorkloadSpec {
  uint32_t num_queries = 100;   ///< sequence length (paper: ~1000 retrieves)
  double pr_update = 0.0;       ///< Pr(UPDATE)
  uint32_t num_top = 10;        ///< NumTop
  uint32_t update_batch = 5;    ///< ChildRel tuples modified per update
  uint64_t seed = 7;

  // Access skew (extension; the paper's accesses are uniform — "each
  // complex object has an equal likelihood of being accessed"). With
  // probability `hot_access_prob` a retrieve's range is drawn from the
  // first `hot_region_fraction` of ParentRel instead of uniformly.
  double hot_access_prob = 0.0;
  double hot_region_fraction = 0.1;
};

/// Generates a deterministic query sequence against `db`.
Status GenerateWorkload(const WorkloadSpec& spec, const ComplexDatabase& db,
                        std::vector<Query>* out);

}  // namespace objrep

#endif  // OBJREP_OBJSTORE_WORKLOAD_H_
