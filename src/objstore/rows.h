// Row shapes of the paper's four relations (§4):
//
//   ParentRel (OID, ret1, ret2, ret3, dummy, children)
//   ChildRel  (OID, ret1, ret2, ret3, dummy)
//   ClusterRel(cluster#, OID, ret1, ret2, ret3, dummy, children)
//   Cache     (hashkey, value)            -- a HashFile, not a Table
//
// ret1..3 are the integers the retrieve queries project; dummy pads each
// tuple to its target width (blank-compressed, so actual stored size is
// the target); children is the packed OID list of the parent's unit.
#ifndef OBJREP_OBJSTORE_ROWS_H_
#define OBJREP_OBJSTORE_ROWS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "objstore/oid.h"
#include "record/record.h"
#include "record/schema.h"
#include "util/status.h"

namespace objrep {

/// Field order in ParentRel and ClusterRel; ChildRel stops at kDummy.
enum ParentField : size_t {
  kParentOid = 0,
  kParentRet1 = 1,
  kParentRet2 = 2,
  kParentRet3 = 3,
  kParentDummy = 4,
  kParentChildren = 5,
};

enum ChildField : size_t {
  kChildOid = 0,
  kChildRet1 = 1,
  kChildRet2 = 2,
  kChildRet3 = 3,
  kChildDummy = 4,
};

enum ClusterField : size_t {
  kClusterNo = 0,
  kClusterOid = 1,
  kClusterRet1 = 2,
  kClusterRet2 = 3,
  kClusterRet3 = 4,
  kClusterDummy = 5,
  kClusterChildren = 6,
};

/// Builds the ParentRel schema with `dummy_width` chars of padding.
Schema MakeParentSchema(uint32_t dummy_width);
/// Builds the ChildRel schema.
Schema MakeChildSchema(uint32_t dummy_width);
/// Builds the ClusterRel schema (union of parent and child attributes).
Schema MakeClusterSchema(uint32_t dummy_width);

/// Dummy width that pads an encoded parent tuple to `target_bytes`.
uint32_t ParentDummyWidth(uint32_t target_bytes, uint32_t size_unit);
/// Dummy width that pads an encoded child tuple to `target_bytes`.
uint32_t ChildDummyWidth(uint32_t target_bytes);

struct ParentRow {
  Oid oid;
  int32_t ret1 = 0;
  int32_t ret2 = 0;
  int32_t ret3 = 0;
  std::vector<Oid> children;
};

struct ChildRow {
  Oid oid;
  int32_t ret1 = 0;
  int32_t ret2 = 0;
  int32_t ret3 = 0;
};

/// Values vector for a parent row under `MakeParentSchema(dummy_width)`.
std::vector<Value> ParentRowValues(const ParentRow& row,
                                   uint32_t dummy_width);
std::vector<Value> ChildRowValues(const ChildRow& row, uint32_t dummy_width);

/// Cluster rows: seq 0 is the parent record, seq >= 1 its claimed children.
std::vector<Value> ClusterParentValues(const ParentRow& row,
                                       uint32_t parent_dummy_width);
std::vector<Value> ClusterChildValues(const ChildRow& row,
                                      uint32_t child_dummy_width);

/// Composite ClusterRel key: cluster number in the high bits, sequence
/// within the cluster in the low 12 bits. All records of one cluster are
/// therefore contiguous in the B-tree on cluster#.
inline uint64_t ClusterKey(uint64_t cluster_no, uint32_t seq) {
  return (cluster_no << 12) | seq;
}
inline uint64_t ClusterNoOf(uint64_t cluster_key) { return cluster_key >> 12; }
inline uint32_t ClusterSeqOf(uint64_t cluster_key) {
  return static_cast<uint32_t>(cluster_key & 0xfff);
}

/// Decoded-field helpers (projection fast paths used by the strategies).
Status DecodeChildRet(const Schema& schema, std::string_view raw,
                      int attr_index /* 0..2 */, int32_t* out);

}  // namespace objrep

#endif  // OBJREP_OBJSTORE_ROWS_H_
