// Database generation (paper §4).
//
// |ChildRel| = |ParentRel| * SizeUnit / ShareFactor            (eqn. 1)
// NumUnits  = |ParentRel| / UseFactor
//
// Units are "randomly generated" from the subobjects and "randomly
// assigned" to objects. Concretely:
//   * OverlapFactor == 1 — the subobjects are randomly partitioned into
//     disjoint units (paper §3.3 case [2]: subobjects shared "in units").
//   * OverlapFactor  > 1 — each unit samples SizeUnit distinct subobjects
//     uniformly; the expected number of units sharing a subobject is then
//     exactly OverlapFactor (paper §3.3 case [3]: random sharing).
//   * Each unit is assigned to exactly UseFactor objects (a random
//     perfect replication, so sharing is uniform as in the paper).
//
// Clustering assignment (spec.build_cluster): every unit's owner is a
// uniformly random parent among its UseFactor users ("o should be randomly
// chosen from UseFactor possibilities"); units claim their not-yet-placed
// subobjects in random unit order, reproducing the fragmentation the paper
// describes for OverlapFactor > 1 (§3.3 case [3]).
#include <algorithm>
#include <numeric>

#include "objstore/database.h"
#include "util/random.h"

namespace objrep {

namespace {

Status BuildClusterRel(ComplexDatabase* db, Rng* rng) {
  const DatabaseSpec& spec = db->spec;
  const uint32_t num_units = spec.num_units();

  // 1. Pick each unit's owner uniformly among its users.
  std::vector<std::vector<uint32_t>> users_of_unit(num_units);
  for (uint32_t p = 0; p < spec.num_parents; ++p) {
    users_of_unit[db->unit_of_parent[p]].push_back(p);
  }
  db->unit_owner.assign(num_units, 0);
  for (uint32_t u = 0; u < num_units; ++u) {
    const auto& users = users_of_unit[u];
    OBJREP_CHECK(!users.empty());
    db->unit_owner[u] = users[rng->Uniform(users.size())];
  }

  // 2. Claim subobjects in random unit order: a subobject is physically
  //    placed with the first unit that claims it.
  std::vector<uint32_t> unit_order(num_units);
  std::iota(unit_order.begin(), unit_order.end(), 0);
  rng->Shuffle(&unit_order);
  std::unordered_map<uint64_t, bool> placed;
  std::vector<std::vector<Oid>> claimed_children(spec.num_parents);
  for (uint32_t u : unit_order) {
    uint32_t owner = db->unit_owner[u];
    for (const Oid& oid : db->units[u]) {
      auto [it, inserted] = placed.emplace(oid.Packed(), true);
      if (inserted) {
        claimed_children[owner].push_back(oid);
      }
    }
  }

  // 3. Emit cluster rows in composite-key order:
  //    (parent key, 0) = parent record, (parent key, 1..) = its claim.
  std::vector<std::pair<uint64_t, std::vector<Value>>> rows;
  rows.reserve(spec.num_parents * (1 + spec.size_unit));
  const Schema& cluster_schema = db->cluster_rel->schema();
  (void)cluster_schema;
  std::vector<IsamIndex::Entry> isam_entries;

  auto child_row_of = [db](const Oid& oid) -> const ChildRow& {
    // Child rel index from catalog id: child_rels are registered in order.
    for (size_t r = 0; r < db->child_rels.size(); ++r) {
      if (db->child_rels[r]->rel_id() == oid.rel) {
        return db->child_rows[r][oid.key];
      }
    }
    OBJREP_CHECK_MSG(false, "child OID references unknown relation");
    return db->child_rows[0][0];
  };

  for (uint32_t p = 0; p < spec.num_parents; ++p) {
    ParentRow prow;
    prow.oid = Oid{db->parent_rel->rel_id(), p};
    // ret values for the cluster copy of the parent mirror ParentRel.
    std::vector<Value> parent_vals;
    OBJREP_RETURN_NOT_OK(db->parent_rel->Get(p, &parent_vals));
    prow.ret1 = parent_vals[kParentRet1].as_int32();
    prow.ret2 = parent_vals[kParentRet2].as_int32();
    prow.ret3 = parent_vals[kParentRet3].as_int32();
    prow.children = db->units[db->unit_of_parent[p]];
    std::vector<Value> vals = ClusterParentValues(prow, db->parent_dummy_width);
    rows.emplace_back(ClusterKey(p, 0), std::move(vals));
    uint32_t seq = 1;
    for (const Oid& oid : claimed_children[p]) {
      const ChildRow& crow = child_row_of(oid);
      std::vector<Value> cvals =
          ClusterChildValues(crow, db->child_dummy_width);
      cvals[kClusterNo] = Value(static_cast<int64_t>(p));
      uint64_t key = ClusterKey(p, seq++);
      isam_entries.push_back(IsamIndex::Entry{oid.Packed(), key});
      rows.emplace_back(key, std::move(cvals));
    }
  }

  // 4. Orphan subobjects (possible when OverlapFactor > 1 leaves a child in
  //    no unit): parked in trailing clusters past the last parent. They are
  //    unreferenced, so they cost space but never I/O.
  uint64_t orphan_cluster = spec.num_parents;
  uint32_t orphan_seq = 0;
  for (size_t r = 0; r < db->child_rels.size(); ++r) {
    for (const ChildRow& crow : db->child_rows[r]) {
      if (placed.find(crow.oid.Packed()) != placed.end()) continue;
      if (orphan_seq == spec.size_unit) {
        ++orphan_cluster;
        orphan_seq = 0;
      }
      std::vector<Value> cvals =
          ClusterChildValues(crow, db->child_dummy_width);
      cvals[kClusterNo] = Value(static_cast<int64_t>(orphan_cluster));
      uint64_t key = ClusterKey(orphan_cluster, orphan_seq++);
      isam_entries.push_back(IsamIndex::Entry{crow.oid.Packed(), key});
      rows.emplace_back(key, std::move(cvals));
    }
  }

  OBJREP_RETURN_NOT_OK(
      db->cluster_rel->BulkLoad(db->pool.get(), rows, spec.fill_factor));

  std::sort(isam_entries.begin(), isam_entries.end(),
            [](const IsamIndex::Entry& a, const IsamIndex::Entry& b) {
              return a.key < b.key;
            });
  return IsamIndex::Build(db->pool.get(), isam_entries,
                          &db->cluster_oid_index,
                          spec.cluster_index_entry_bytes);
}

}  // namespace

Status BuildDatabase(const DatabaseSpec& spec,
                     std::unique_ptr<ComplexDatabase>* out) {
  OBJREP_RETURN_NOT_OK(spec.Validate());
  auto db = std::make_unique<ComplexDatabase>();
  db->spec = spec;
  db->disk = std::make_unique<DiskManager>();
  db->pool = std::make_unique<BufferPool>(db->disk.get(), spec.buffer_pages);
  Rng rng(spec.seed);

  db->parent_dummy_width =
      ParentDummyWidth(spec.parent_tuple_bytes, spec.size_unit);
  db->child_dummy_width = ChildDummyWidth(spec.child_tuple_bytes);

  db->parent_rel =
      db->catalog.Register("ParentRel", MakeParentSchema(db->parent_dummy_width));
  for (uint32_t r = 0; r < spec.num_child_rels; ++r) {
    std::string name = spec.num_child_rels == 1
                           ? std::string("ChildRel")
                           : "ChildRel" + std::to_string(r);
    db->child_rels.push_back(
        db->catalog.Register(std::move(name),
                             MakeChildSchema(db->child_dummy_width)));
  }
  if (spec.build_cluster) {
    db->cluster_rel = db->catalog.Register(
        "ClusterRel",
        MakeClusterSchema(std::max(db->parent_dummy_width,
                                   db->child_dummy_width)));
  }

  // --- Generate subobjects. ---
  const uint32_t children_per_rel =
      spec.num_children_total() / spec.num_child_rels;
  db->child_rows.resize(spec.num_child_rels);
  for (uint32_t r = 0; r < spec.num_child_rels; ++r) {
    auto& rows = db->child_rows[r];
    rows.reserve(children_per_rel);
    for (uint32_t k = 0; k < children_per_rel; ++k) {
      ChildRow row;
      row.oid = Oid{db->child_rels[r]->rel_id(), k};
      row.ret1 = static_cast<int32_t>(rng.Uniform(1000000));
      row.ret2 = static_cast<int32_t>(rng.Uniform(1000000));
      row.ret3 = static_cast<int32_t>(rng.Uniform(1000000));
      rows.push_back(row);
    }
  }

  // --- Generate units (per child relation). ---
  const uint32_t num_units = spec.num_units();
  const uint32_t units_per_rel = num_units / spec.num_child_rels;
  db->units.reserve(num_units);
  for (uint32_t r = 0; r < spec.num_child_rels; ++r) {
    RelationId rel_id = db->child_rels[r]->rel_id();
    if (spec.overlap_factor == 1) {
      // Disjoint units: random partition of this relation's subobjects.
      std::vector<uint32_t> keys(children_per_rel);
      std::iota(keys.begin(), keys.end(), 0);
      rng.Shuffle(&keys);
      OBJREP_CHECK(units_per_rel * spec.size_unit == children_per_rel);
      for (uint32_t u = 0; u < units_per_rel; ++u) {
        std::vector<Oid> unit;
        unit.reserve(spec.size_unit);
        for (uint32_t j = 0; j < spec.size_unit; ++j) {
          unit.push_back(Oid{rel_id, keys[u * spec.size_unit + j]});
        }
        db->units.push_back(std::move(unit));
      }
    } else {
      // Overlapping units: uniform sampling; E[units per subobject] ==
      // OverlapFactor by construction.
      for (uint32_t u = 0; u < units_per_rel; ++u) {
        std::vector<uint64_t> keys =
            rng.SampleDistinct(children_per_rel, spec.size_unit);
        std::vector<Oid> unit;
        unit.reserve(spec.size_unit);
        for (uint64_t k : keys) {
          unit.push_back(Oid{rel_id, static_cast<uint32_t>(k)});
        }
        db->units.push_back(std::move(unit));
      }
    }
  }

  // --- Assign units to parents: each unit used by exactly UseFactor
  //     objects, in random placement. ---
  std::vector<uint32_t> assignment;
  assignment.reserve(spec.num_parents);
  for (uint32_t u = 0; u < num_units; ++u) {
    for (uint32_t i = 0; i < spec.use_factor; ++i) {
      assignment.push_back(u);
    }
  }
  OBJREP_CHECK(assignment.size() == spec.num_parents);
  rng.Shuffle(&assignment);
  db->unit_of_parent = std::move(assignment);

  // --- Bulk load ParentRel. ---
  {
    std::vector<std::pair<uint64_t, std::vector<Value>>> rows;
    rows.reserve(spec.num_parents);
    for (uint32_t p = 0; p < spec.num_parents; ++p) {
      ParentRow row;
      row.oid = Oid{db->parent_rel->rel_id(), p};
      row.ret1 = static_cast<int32_t>(rng.Uniform(1000000));
      row.ret2 = static_cast<int32_t>(rng.Uniform(1000000));
      row.ret3 = static_cast<int32_t>(rng.Uniform(1000000));
      row.children = db->units[db->unit_of_parent[p]];
      rows.emplace_back(p, ParentRowValues(row, db->parent_dummy_width));
    }
    OBJREP_RETURN_NOT_OK(
        db->parent_rel->BulkLoad(db->pool.get(), rows, spec.fill_factor));
  }

  // --- Bulk load each ChildRel. ---
  for (uint32_t r = 0; r < spec.num_child_rels; ++r) {
    std::vector<std::pair<uint64_t, std::vector<Value>>> rows;
    rows.reserve(children_per_rel);
    for (uint32_t k = 0; k < children_per_rel; ++k) {
      rows.emplace_back(
          k, ChildRowValues(db->child_rows[r][k], db->child_dummy_width));
    }
    OBJREP_RETURN_NOT_OK(
        db->child_rels[r]->BulkLoad(db->pool.get(), rows, spec.fill_factor));
  }

  if (spec.build_cluster) {
    OBJREP_RETURN_NOT_OK(BuildClusterRel(db.get(), &rng));
  }

  if (spec.build_join_index) {
    // Dense (object, position) -> subobject OID mapping, in object order.
    std::vector<BPlusTree::Entry> entries;
    entries.reserve(static_cast<size_t>(spec.num_parents) * spec.size_unit);
    for (uint32_t p = 0; p < spec.num_parents; ++p) {
      const std::vector<Oid>& unit = db->units[db->unit_of_parent[p]];
      for (uint32_t j = 0; j < unit.size(); ++j) {
        uint64_t packed = unit[j].Packed();
        entries.push_back(BPlusTree::Entry{
            (static_cast<uint64_t>(p) << 12) | j,
            std::string(reinterpret_cast<const char*>(&packed), 8)});
      }
    }
    OBJREP_RETURN_NOT_OK(BPlusTree::BulkLoad(db->pool.get(), entries,
                                             spec.fill_factor,
                                             &db->join_index));
    db->has_join_index = true;
  }

  if (spec.build_cache) {
    db->cache = std::make_unique<CacheManager>(
        db->pool.get(), spec.size_cache, spec.cache_buckets,
        spec.cache_admission);
    OBJREP_RETURN_NOT_OK(db->cache->Init());
  }

  // Attach the WAL only now: the build is a single-owner bulk load with
  // nothing to recover to, so logging it would only slow it down. From here
  // on every multi-page mutation runs as a redo-logged transaction.
  if (spec.enable_wal) {
    db->wal = std::make_unique<Wal>(db->disk.get());
    db->pool->AttachWal(db->wal.get());
  }
  if (spec.enable_mvcc) {
    db->mvcc = std::make_unique<MvccManager>(db->wal.get());
  }

  // Apply the I/O scheduling policy only now: the build itself always runs
  // with the seed's plain demand paging, so on-disk layout and build-time
  // counters are independent of the prefetch configuration.
  db->disk->set_io_latency_us(spec.io_latency_us);
  db->disk->set_transfer_us(spec.io_transfer_us);
  db->pool->SetPrefetchOptions(PrefetchOptions{
      spec.prefetch, spec.readahead_pages, spec.prefetch_workers});

  // Start measurements from a flushed, zeroed state.
  OBJREP_RETURN_NOT_OK(db->pool->FlushAll());
  db->disk->ResetCounters();
  *out = std::move(db);
  return Status::OK();
}

}  // namespace objrep
