// The simulated complex-object database (paper §4).
//
// One ComplexDatabase owns a simulated disk, a buffer pool, and the
// relations of one experimental configuration:
//   * ParentRel           — the complex objects (B-tree on OID key)
//   * ChildRel[0..n)      — the subobjects (B-tree on OID key each)
//   * ClusterRel + ISAM   — when clustering is enabled (paper §3.3)
//   * Cache (hash file)   — when caching is enabled (paper §3.2)
//
// The builder also retains generation ground truth (units, assignments,
// row values) so tests can verify strategy results independently.
#ifndef OBJREP_OBJSTORE_DATABASE_H_
#define OBJREP_OBJSTORE_DATABASE_H_

#include <memory>
#include <vector>

#include "access/isam.h"
#include "mvcc/version_store.h"
#include "objstore/cache_manager.h"
#include "objstore/oid.h"
#include "objstore/rows.h"
#include "objstore/spec.h"
#include "relational/table.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/wal.h"
#include "util/status.h"

namespace objrep {

struct ComplexDatabase {
  DatabaseSpec spec;

  std::unique_ptr<DiskManager> disk;
  std::unique_ptr<BufferPool> pool;
  std::unique_ptr<Wal> wal;  // null unless spec.enable_wal
  /// Version store for snapshot reads (DESIGN.md §15); null unless
  /// spec.enable_mvcc. When set, executors bypass table locking: retrieves
  /// run under mvcc::SnapshotRetrieve and updates under mvcc::MvccUpdate.
  std::unique_ptr<MvccManager> mvcc;
  Catalog catalog;

  Table* parent_rel = nullptr;
  std::vector<Table*> child_rels;
  Table* cluster_rel = nullptr;            // null unless spec.build_cluster
  IsamIndex cluster_oid_index;             // packed child OID -> ClusterRel key
  std::unique_ptr<CacheManager> cache;     // null unless spec.build_cache
  /// Join index ([VALD86]): key (parent key << 12 | position) -> packed
  /// child OID. Built when spec.build_join_index.
  BPlusTree join_index;
  bool has_join_index = false;

  uint32_t parent_dummy_width = 0;
  uint32_t child_dummy_width = 0;

  // --- Generation ground truth (verification only; strategies must read
  //     everything they use from the relations). ---
  std::vector<std::vector<Oid>> units;       // unit id -> member OIDs
  std::vector<uint32_t> unit_of_parent;      // parent key -> unit id
  std::vector<uint32_t> unit_owner;          // unit id -> owning parent key
                                             // (clustering only)
  std::vector<std::vector<ChildRow>> child_rows;  // per child rel, by key

  /// Child relation whose catalog id is `rel_id`; null if unknown.
  const Table* ChildRelById(RelationId rel_id) const {
    for (const Table* t : child_rels) {
      if (t->rel_id() == rel_id) return t;
    }
    return nullptr;
  }
  Table* ChildRelById(RelationId rel_id) {
    for (Table* t : child_rels) {
      if (t->rel_id() == rel_id) return t;
    }
    return nullptr;
  }

  /// Total pages occupied on the simulated disk (allocated minus freed).
  uint64_t TotalPages() const {
    return disk->num_pages() - disk->num_free_pages();
  }
};

/// Generates and bulk-loads a database per `spec`. Deterministic in
/// `spec.seed`. On return the buffer pool is flushed and the I/O counters
/// reset, so measurements start clean.
Status BuildDatabase(const DatabaseSpec& spec,
                     std::unique_ptr<ComplexDatabase>* out);

/// What Recover did, for tests and the driver's crash demo.
struct RecoveryReport {
  WalRecoveryStats wal;
  uint64_t frames_dropped = 0;  ///< pool frames discarded (soft state)
  bool cache_reset = false;     ///< Cache relation rebuilt empty
  uint64_t mvcc_txns_redone = 0;///< kMvccUpdate commits replayed to base
};

/// Crash recovery (DESIGN.md §10). Clears the injector's crashed state,
/// discards every buffer-pool frame, redoes the WAL's committed-but-
/// unapplied transactions against the disk, and rebuilds the cache (soft
/// state) empty. Requires spec.enable_wal. After it returns the base
/// relations hold exactly the committed prefix of the update history.
Status RecoverDatabase(ComplexDatabase* db, RecoveryReport* report = nullptr);

}  // namespace objrep

#endif  // OBJREP_OBJSTORE_DATABASE_H_
