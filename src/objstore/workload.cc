#include "objstore/workload.h"

#include <algorithm>

#include "util/random.h"

namespace objrep {

Status GenerateWorkload(const WorkloadSpec& spec, const ComplexDatabase& db,
                        std::vector<Query>* out) {
  if (spec.num_top == 0 || spec.num_top > db.spec.num_parents) {
    return Status::InvalidArgument("num_top out of range");
  }
  Rng rng(spec.seed);
  out->clear();
  out->reserve(spec.num_queries);
  const uint32_t children_per_rel =
      db.spec.num_children_total() / db.spec.num_child_rels;
  for (uint32_t i = 0; i < spec.num_queries; ++i) {
    Query q;
    if (rng.Bernoulli(spec.pr_update)) {
      q.kind = Query::Kind::kUpdate;
      q.update_targets.reserve(spec.update_batch);
      for (uint32_t j = 0; j < spec.update_batch; ++j) {
        uint32_t r = static_cast<uint32_t>(rng.Uniform(db.spec.num_child_rels));
        uint32_t k = static_cast<uint32_t>(rng.Uniform(children_per_rel));
        q.update_targets.push_back(Oid{db.child_rels[r]->rel_id(), k});
      }
      q.new_ret1 = static_cast<int32_t>(rng.Uniform(1000000));
    } else {
      q.kind = Query::Kind::kRetrieve;
      q.num_top = spec.num_top;
      uint32_t span = db.spec.num_parents - spec.num_top + 1;
      if (spec.hot_access_prob > 0.0 &&
          rng.Bernoulli(spec.hot_access_prob)) {
        uint32_t hot_span = std::max<uint32_t>(
            1, static_cast<uint32_t>(span * spec.hot_region_fraction));
        q.lo_parent = static_cast<uint32_t>(rng.Uniform(hot_span));
      } else {
        q.lo_parent = static_cast<uint32_t>(rng.Uniform(span));
      }
      q.attr_index = static_cast<int>(rng.Uniform(3));
    }
    out->push_back(std::move(q));
  }
  return Status::OK();
}

}  // namespace objrep
