// Cached-unit value blobs.
//
// "It is best to cache the values of the subobjects of a unit together in
// one place, since they will often be needed together" (paper §3.2). A
// blob is the concatenation of the unit's encoded subobject records, each
// with a u16 length prefix, in unit order.
#ifndef OBJREP_OBJSTORE_UNIT_BLOB_H_
#define OBJREP_OBJSTORE_UNIT_BLOB_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace objrep {

/// Concatenates encoded subobject records into a unit blob.
inline std::string EncodeUnitBlob(const std::vector<std::string>& records) {
  std::string blob;
  size_t total = 0;
  for (const std::string& r : records) total += 2 + r.size();
  blob.reserve(total);
  for (const std::string& r : records) {
    uint16_t len = static_cast<uint16_t>(r.size());
    blob.push_back(static_cast<char>(len & 0xff));
    blob.push_back(static_cast<char>((len >> 8) & 0xff));
    blob.append(r);
  }
  return blob;
}

/// Splits a unit blob back into record views (into `blob`'s storage).
inline Status DecodeUnitBlob(std::string_view blob,
                             std::vector<std::string_view>* records) {
  records->clear();
  while (!blob.empty()) {
    if (blob.size() < 2) return Status::Corruption("truncated unit blob");
    uint16_t len = static_cast<uint16_t>(
        static_cast<unsigned char>(blob[0]) |
        (static_cast<unsigned char>(blob[1]) << 8));
    blob.remove_prefix(2);
    if (blob.size() < len) return Status::Corruption("truncated unit blob");
    records->push_back(blob.substr(0, len));
    blob.remove_prefix(len);
  }
  return Status::OK();
}

}  // namespace objrep

#endif  // OBJREP_OBJSTORE_UNIT_BLOB_H_
