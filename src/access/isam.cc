#include "access/isam.h"

#include <cstring>

#include "util/macros.h"

namespace objrep {

uint16_t IsamIndex::Count(const Page& p) const {
  uint16_t v;
  std::memcpy(&v, p.data, 2);
  return v;
}

IsamIndex::Entry IsamIndex::At(const Page& p, uint16_t i) const {
  Entry e;
  std::memcpy(&e.key, p.data + kHeader + i * entry_stride_, 8);
  std::memcpy(&e.payload, p.data + kHeader + i * entry_stride_ + 8, 8);
  return e;
}

uint16_t IsamIndex::UpperBound(const Page& p, uint64_t key) const {
  uint16_t lo = 0, hi = Count(p);
  while (lo < hi) {
    uint16_t mid = static_cast<uint16_t>((lo + hi) / 2);
    if (At(p, mid).key <= key) {
      lo = static_cast<uint16_t>(mid + 1);
    } else {
      hi = mid;
    }
  }
  return lo;  // number of entries with key <= `key`
}

Status IsamIndex::Build(BufferPool* pool, const std::vector<Entry>& entries,
                        IsamIndex* out, uint32_t entry_stride) {
  if (entry_stride < 16 || entry_stride > kPageSize - kHeader) {
    return Status::InvalidArgument("isam entry stride out of range");
  }
  for (size_t i = 1; i < entries.size(); ++i) {
    if (entries[i - 1].key >= entries[i].key) {
      return Status::InvalidArgument("isam build input not strictly sorted");
    }
  }
  out->pool_ = pool;
  out->entry_stride_ = entry_stride;
  out->leaf_pages_ = 0;
  out->index_pages_ = 0;
  const uint32_t capacity = (kPageSize - kHeader) / entry_stride;

  auto write_level = [pool, entry_stride, capacity](
                         const std::vector<Entry>& level_entries,
                         std::vector<Entry>* parent,
                         uint32_t* pages) -> Status {
    parent->clear();
    size_t i = 0;
    if (level_entries.empty()) {
      // Materialize one empty page so lookups have somewhere to land.
      PageGuard guard;
      OBJREP_RETURN_NOT_OK(pool->NewPage(&guard));
      std::memset(guard.page()->data, 0, kHeader);
      guard.MarkDirty();
      parent->push_back(Entry{0, guard.page_id()});
      ++*pages;
      return Status::OK();
    }
    while (i < level_entries.size()) {
      size_t take = std::min<size_t>(capacity, level_entries.size() - i);
      PageGuard guard;
      OBJREP_RETURN_NOT_OK(pool->NewPage(&guard));
      Page* p = guard.page();
      std::memset(p->data, 0, kHeader);
      uint16_t n = static_cast<uint16_t>(take);
      std::memcpy(p->data, &n, 2);
      for (size_t j = 0; j < take; ++j) {
        const Entry& e = level_entries[i + j];
        std::memcpy(p->data + kHeader + j * entry_stride, &e.key, 8);
        std::memcpy(p->data + kHeader + j * entry_stride + 8, &e.payload, 8);
      }
      guard.MarkDirty();
      parent->push_back(Entry{level_entries[i].key, guard.page_id()});
      ++*pages;
      i += take;
    }
    return Status::OK();
  };

  std::vector<Entry> level;
  OBJREP_RETURN_NOT_OK(write_level(entries, &level, &out->leaf_pages_));
  out->height_ = 1;
  while (level.size() > 1) {
    std::vector<Entry> parent;
    OBJREP_RETURN_NOT_OK(write_level(level, &parent, &out->index_pages_));
    level.swap(parent);
    ++out->height_;
  }
  out->root_ = static_cast<PageId>(level[0].payload);
  return Status::OK();
}

Status IsamIndex::Lookup(uint64_t key, uint64_t* payload) const {
  OBJREP_CHECK(pool_ != nullptr);
  PageId pid = root_;
  for (uint32_t depth = 1; depth < height_; ++depth) {
    PageGuard guard;
    OBJREP_RETURN_NOT_OK(pool_->FetchPage(pid, &guard));
    const Page& p = *guard.page();
    uint16_t ub = UpperBound(p, key);
    if (ub == 0) return Status::NotFound();  // key below the level minimum
    pid = static_cast<PageId>(At(p, static_cast<uint16_t>(ub - 1)).payload);
  }
  PageGuard guard;
  OBJREP_RETURN_NOT_OK(pool_->FetchPage(pid, &guard));
  const Page& p = *guard.page();
  uint16_t ub = UpperBound(p, key);
  if (ub == 0) return Status::NotFound();
  Entry e = At(p, static_cast<uint16_t>(ub - 1));
  if (e.key != key) return Status::NotFound();
  *payload = e.payload;
  return Status::OK();
}

}  // namespace objrep
