// Static-bucket hash file with overflow chains: u64 key -> byte-string value.
//
// This is the Cache relation's structure in the paper ("maintained as a
// hash relation, hashed on hashkey"). Keys are unique; the cache manager
// guarantees that by construction (a unit's hashkey identifies its OID list).
#ifndef OBJREP_ACCESS_HASH_FILE_H_
#define OBJREP_ACCESS_HASH_FILE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "access/slotted_page.h"
#include "storage/buffer_pool.h"
#include "util/status.h"

namespace objrep {

class HashFile {
 public:
  HashFile() = default;

  /// Creates a hash file with `num_buckets` primary bucket pages.
  static Status Create(BufferPool* pool, uint32_t num_buckets, HashFile* out);

  /// Inserts (key, value). InvalidArgument if the key is already present.
  Status Insert(uint64_t key, std::string_view value);

  /// Fetches the value for `key`; NotFound if absent.
  Status Lookup(uint64_t key, std::string* value) const;

  /// True in `*found` if the key exists (same I/O as a lookup without the
  /// value copy).
  Status Contains(uint64_t key, bool* found) const;

  /// Removes the key; NotFound if absent.
  Status Delete(uint64_t key);

  /// Frees every page of the file (buckets and overflow pages alike) and
  /// resets the object to empty. Crash recovery uses this to rebuild the
  /// cache relation from scratch — the cache is soft state (DESIGN.md §10).
  Status Destroy();

  uint32_t num_buckets() const { return num_buckets_; }
  uint32_t num_pages() const { return num_pages_; }
  uint64_t num_entries() const { return num_entries_; }
  /// Every page the file owns, buckets first then overflow, in
  /// allocation order.
  const std::vector<PageId>& pages() const { return pages_; }

 private:
  uint32_t BucketOf(uint64_t key) const;

  BufferPool* pool_ = nullptr;
  uint32_t num_buckets_ = 0;
  uint32_t num_pages_ = 0;
  uint64_t num_entries_ = 0;
  std::vector<PageId> buckets_;
  std::vector<PageId> pages_;  // buckets_ plus overflow pages
};

}  // namespace objrep

#endif  // OBJREP_ACCESS_HASH_FILE_H_
