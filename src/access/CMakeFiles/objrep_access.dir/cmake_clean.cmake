file(REMOVE_RECURSE
  "CMakeFiles/objrep_access.dir/btree.cc.o"
  "CMakeFiles/objrep_access.dir/btree.cc.o.d"
  "CMakeFiles/objrep_access.dir/hash_file.cc.o"
  "CMakeFiles/objrep_access.dir/hash_file.cc.o.d"
  "CMakeFiles/objrep_access.dir/heap_file.cc.o"
  "CMakeFiles/objrep_access.dir/heap_file.cc.o.d"
  "CMakeFiles/objrep_access.dir/isam.cc.o"
  "CMakeFiles/objrep_access.dir/isam.cc.o.d"
  "CMakeFiles/objrep_access.dir/secondary_index.cc.o"
  "CMakeFiles/objrep_access.dir/secondary_index.cc.o.d"
  "libobjrep_access.a"
  "libobjrep_access.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/objrep_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
