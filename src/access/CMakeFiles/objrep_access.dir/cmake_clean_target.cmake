file(REMOVE_RECURSE
  "libobjrep_access.a"
)
