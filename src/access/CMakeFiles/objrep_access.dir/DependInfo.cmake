
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/access/btree.cc" "src/access/CMakeFiles/objrep_access.dir/btree.cc.o" "gcc" "src/access/CMakeFiles/objrep_access.dir/btree.cc.o.d"
  "/root/repo/src/access/hash_file.cc" "src/access/CMakeFiles/objrep_access.dir/hash_file.cc.o" "gcc" "src/access/CMakeFiles/objrep_access.dir/hash_file.cc.o.d"
  "/root/repo/src/access/heap_file.cc" "src/access/CMakeFiles/objrep_access.dir/heap_file.cc.o" "gcc" "src/access/CMakeFiles/objrep_access.dir/heap_file.cc.o.d"
  "/root/repo/src/access/isam.cc" "src/access/CMakeFiles/objrep_access.dir/isam.cc.o" "gcc" "src/access/CMakeFiles/objrep_access.dir/isam.cc.o.d"
  "/root/repo/src/access/secondary_index.cc" "src/access/CMakeFiles/objrep_access.dir/secondary_index.cc.o" "gcc" "src/access/CMakeFiles/objrep_access.dir/secondary_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/storage/CMakeFiles/objrep_storage.dir/DependInfo.cmake"
  "/root/repo/src/record/CMakeFiles/objrep_record.dir/DependInfo.cmake"
  "/root/repo/src/obs/CMakeFiles/objrep_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
