# Empty dependencies file for objrep_access.
# This may be replaced when dependencies are built.
