#include "access/hash_file.h"

#include <cstring>

#include "util/hash.h"
#include "util/macros.h"

namespace objrep {

namespace {

// Cell = [u64 key][value bytes].
std::string MakeCell(uint64_t key, std::string_view value) {
  std::string cell;
  cell.reserve(8 + value.size());
  cell.append(reinterpret_cast<const char*>(&key), 8);
  cell.append(value);
  return cell;
}

uint64_t CellKey(std::string_view cell) {
  OBJREP_CHECK(cell.size() >= 8);
  uint64_t key;
  std::memcpy(&key, cell.data(), 8);
  return key;
}

}  // namespace

uint32_t HashFile::BucketOf(uint64_t key) const {
  return static_cast<uint32_t>(Mix64(key) % num_buckets_);
}

Status HashFile::Create(BufferPool* pool, uint32_t num_buckets,
                        HashFile* out) {
  if (num_buckets == 0) {
    return Status::InvalidArgument("hash file needs at least one bucket");
  }
  out->pool_ = pool;
  out->num_buckets_ = num_buckets;
  out->num_pages_ = num_buckets;
  out->num_entries_ = 0;
  out->buckets_.clear();
  out->buckets_.reserve(num_buckets);
  out->pages_.clear();
  for (uint32_t i = 0; i < num_buckets; ++i) {
    PageGuard guard;
    OBJREP_RETURN_NOT_OK(pool->NewPage(&guard));
    SlottedPage sp(guard.page());
    sp.Init();
    guard.MarkDirty();
    out->buckets_.push_back(guard.page_id());
    out->pages_.push_back(guard.page_id());
  }
  return Status::OK();
}

Status HashFile::Insert(uint64_t key, std::string_view value) {
  std::string cell = MakeCell(key, value);
  PageId pid = buckets_[BucketOf(key)];
  PageGuard guard;
  for (;;) {
    OBJREP_RETURN_NOT_OK(pool_->FetchPage(pid, &guard));
    SlottedPage sp(guard.page());
    for (uint16_t i = 0; i < sp.num_slots(); ++i) {
      if (!sp.IsDeleted(i) && CellKey(sp.Get(i)) == key) {
        return Status::InvalidArgument("duplicate key in hash file");
      }
    }
    if (cell.size() <= sp.FreeSpace() ||
        (sp.Compact(), cell.size() <= sp.FreeSpace())) {
      OBJREP_CHECK(sp.Insert(cell) != SlottedPage::kInvalidSlot);
      guard.MarkDirty();
      ++num_entries_;
      return Status::OK();
    }
    PageId next = sp.next_page();
    if (next == kInvalidPageId) {
      // Extend the overflow chain.
      PageGuard fresh;
      OBJREP_RETURN_NOT_OK(pool_->NewPage(&fresh));
      SlottedPage nsp(fresh.page());
      nsp.Init();
      if (nsp.Insert(cell) == SlottedPage::kInvalidSlot) {
        return Status::NoSpace("hash value larger than a page");
      }
      fresh.MarkDirty();
      sp.set_next_page(fresh.page_id());
      guard.MarkDirty();
      pages_.push_back(fresh.page_id());
      ++num_pages_;
      ++num_entries_;
      return Status::OK();
    }
    pid = next;
  }
}

Status HashFile::Lookup(uint64_t key, std::string* value) const {
  PageId pid = buckets_[BucketOf(key)];
  while (pid != kInvalidPageId) {
    PageGuard guard;
    OBJREP_RETURN_NOT_OK(pool_->FetchPage(pid, &guard));
    SlottedPage sp(guard.page());
    for (uint16_t i = 0; i < sp.num_slots(); ++i) {
      if (sp.IsDeleted(i)) continue;
      std::string_view cell = sp.Get(i);
      if (CellKey(cell) == key) {
        value->assign(cell.substr(8));
        return Status::OK();
      }
    }
    pid = sp.next_page();
  }
  return Status::NotFound();
}

Status HashFile::Contains(uint64_t key, bool* found) const {
  std::string scratch;
  Status s = Lookup(key, &scratch);
  if (s.ok()) {
    *found = true;
    return Status::OK();
  }
  if (s.IsNotFound()) {
    *found = false;
    return Status::OK();
  }
  return s;
}

Status HashFile::Delete(uint64_t key) {
  PageId pid = buckets_[BucketOf(key)];
  while (pid != kInvalidPageId) {
    PageGuard guard;
    OBJREP_RETURN_NOT_OK(pool_->FetchPage(pid, &guard));
    SlottedPage sp(guard.page());
    for (uint16_t i = 0; i < sp.num_slots(); ++i) {
      if (sp.IsDeleted(i)) continue;
      if (CellKey(sp.Get(i)) == key) {
        sp.Delete(i);
        guard.MarkDirty();
        --num_entries_;
        return Status::OK();
      }
    }
    pid = sp.next_page();
  }
  return Status::NotFound();
}

Status HashFile::Destroy() {
  for (PageId pid : pages_) {
    if (!pool_->FreePage(pid)) {
      return Status::Internal("hash file page pinned during Destroy");
    }
  }
  pages_.clear();
  buckets_.clear();
  num_buckets_ = 0;
  num_pages_ = 0;
  num_entries_ = 0;
  return Status::OK();
}

}  // namespace objrep
