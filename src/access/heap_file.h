// Unordered heap file: a chain of slotted pages with append-at-tail insert.
//
// Used for temporary relations, the value-based representation (ValueRel),
// and anywhere a sequential-scan-only structure suffices.
#ifndef OBJREP_ACCESS_HEAP_FILE_H_
#define OBJREP_ACCESS_HEAP_FILE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "access/slotted_page.h"
#include "storage/buffer_pool.h"
#include "util/status.h"

namespace objrep {

/// Record address within a heap file.
struct Rid {
  PageId page_id = kInvalidPageId;
  uint16_t slot = 0;

  bool operator==(const Rid&) const = default;
};

class HeapFile {
 public:
  /// Creates an empty heap file (allocates its first page).
  static Status Create(BufferPool* pool, HeapFile* out);

  /// Opens an existing heap file rooted at `first_page`.
  static HeapFile Open(BufferPool* pool, PageId first_page, PageId last_page,
                       uint32_t num_pages);

  HeapFile() = default;

  /// Appends a record, growing the chain as needed.
  Status Append(std::string_view rec, Rid* rid = nullptr);

  /// Reads the record at `rid` into `out`.
  Status Get(const Rid& rid, std::string* out) const;

  /// In-place same-size update.
  Status UpdateInPlace(const Rid& rid, std::string_view rec);

  PageId first_page() const { return first_page_; }
  uint32_t num_pages() const { return num_pages_; }

  /// Forward scan over all live records.
  class Iterator {
   public:
    Iterator(BufferPool* pool, PageId first_page);

    bool valid() const { return valid_; }
    std::string_view record() const { return rec_; }
    Rid rid() const { return Rid{current_pid_, slot_}; }

    /// Advances to the next live record.
    Status Next();

   private:
    Status LoadPage(PageId pid);
    Status Advance();

    BufferPool* pool_;
    PageGuard guard_;
    PageId current_pid_ = kInvalidPageId;
    uint16_t slot_ = 0;
    uint16_t num_slots_ = 0;
    bool valid_ = false;
    bool started_ = false;
    std::string_view rec_;
  };

  Iterator Scan() const { return Iterator(pool_, first_page_); }

 private:
  HeapFile(BufferPool* pool, PageId first, PageId last, uint32_t n)
      : pool_(pool), first_page_(first), last_page_(last), num_pages_(n) {}

  BufferPool* pool_ = nullptr;
  PageId first_page_ = kInvalidPageId;
  PageId last_page_ = kInvalidPageId;
  uint32_t num_pages_ = 0;
};

}  // namespace objrep

#endif  // OBJREP_ACCESS_HEAP_FILE_H_
