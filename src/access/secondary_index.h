// Secondary index: non-key int32 attribute -> primary keys.
//
// INGRES supported secondary indexes on non-key attributes; the paper's
// stored procedural queries ("retrieve persons where person.age >= 60")
// run as full scans without one and as index lookups with one. The index
// is a B+-tree over the composite key (attribute value ⧺ primary key), so
// duplicates are naturally ordered and a value lookup is a range scan.
#ifndef OBJREP_ACCESS_SECONDARY_INDEX_H_
#define OBJREP_ACCESS_SECONDARY_INDEX_H_

#include <cstdint>
#include <vector>

#include "access/btree.h"
#include "storage/buffer_pool.h"
#include "util/status.h"

namespace objrep {

class SecondaryIndex {
 public:
  struct Entry {
    int32_t attr_value;
    uint32_t primary_key;
  };

  SecondaryIndex() = default;

  /// Builds the index from (value, key) pairs in any order.
  static Status Build(BufferPool* pool, std::vector<Entry> entries,
                      SecondaryIndex* out, double fill_factor = 1.0);

  /// Primary keys of all rows with attr == `value`, ascending.
  Status LookupEqual(int32_t value, std::vector<uint32_t>* keys) const;

  /// Primary keys of all rows with lo <= attr <= hi, in (attr, key) order.
  Status LookupRange(int32_t lo, int32_t hi,
                     std::vector<uint32_t>* keys) const;

  /// Maintenance for in-place attribute updates.
  Status OnUpdate(int32_t old_value, int32_t new_value, uint32_t primary_key);

  uint32_t leaf_pages() const { return tree_.stats().leaf_pages; }

 private:
  /// Composite key: biased attribute value in the high half so signed
  /// int32 order matches unsigned u64 order.
  static uint64_t CompositeKey(int32_t value, uint32_t primary_key) {
    uint64_t biased =
        static_cast<uint64_t>(static_cast<int64_t>(value) + 0x80000000LL);
    return (biased << 32) | primary_key;
  }

  BPlusTree tree_;
};

}  // namespace objrep

#endif  // OBJREP_ACCESS_SECONDARY_INDEX_H_
