#include "access/btree.h"

#include <algorithm>
#include <cstring>

#include "util/macros.h"

namespace objrep {

namespace {

// Leaf cell = [u64 key][value bytes].
std::string MakeLeafCell(uint64_t key, std::string_view value) {
  std::string cell;
  cell.reserve(8 + value.size());
  cell.append(reinterpret_cast<const char*>(&key), 8);
  cell.append(value);
  return cell;
}

}  // namespace

uint64_t BPlusTree::LeafKeyAt(const SlottedPage& sp, uint16_t slot) {
  std::string_view cell = sp.Get(slot);
  OBJREP_CHECK(cell.size() >= 8);
  uint64_t key;
  std::memcpy(&key, cell.data(), 8);
  return key;
}

std::string_view BPlusTree::LeafValueAt(const SlottedPage& sp, uint16_t slot) {
  std::string_view cell = sp.Get(slot);
  OBJREP_CHECK(cell.size() >= 8);
  return cell.substr(8);
}

uint16_t BPlusTree::LeafLowerBound(const SlottedPage& sp, uint64_t key) {
  // Slot array is maintained in key order with no interior deleted slots
  // (Delete uses RemoveAt), so plain binary search applies.
  uint16_t lo = 0, hi = sp.num_slots();
  while (lo < hi) {
    uint16_t mid = static_cast<uint16_t>((lo + hi) / 2);
    if (LeafKeyAt(sp, mid) < key) {
      lo = static_cast<uint16_t>(mid + 1);
    } else {
      hi = mid;
    }
  }
  return lo;
}

uint16_t BPlusTree::InternalCount(const Page& p) {
  uint16_t v;
  std::memcpy(&v, p.data + 8, 2);
  return v;
}

void BPlusTree::SetInternalCount(Page* p, uint16_t n) {
  std::memcpy(p->data + 8, &n, 2);
}

PageId BPlusTree::InternalChild(const Page& p, uint16_t index) {
  if (index == 0) {
    PageId pid;
    std::memcpy(&pid, p.data + 12, 4);
    return pid;
  }
  PageId pid;
  std::memcpy(&pid,
              p.data + kInternalHeader +
                  (index - 1) * kInternalEntrySize + 8,
              4);
  return pid;
}

uint64_t BPlusTree::InternalKey(const Page& p, uint16_t entry) {
  uint64_t key;
  std::memcpy(&key, p.data + kInternalHeader + entry * kInternalEntrySize, 8);
  return key;
}

void BPlusTree::InternalSet(Page* p, uint16_t entry, uint64_t key,
                            PageId child) {
  char* base = p->data + kInternalHeader + entry * kInternalEntrySize;
  std::memcpy(base, &key, 8);
  std::memcpy(base + 8, &child, 4);
}

void BPlusTree::SetLeftmost(Page* p, PageId child) {
  std::memcpy(p->data + 12, &child, 4);
}

uint16_t BPlusTree::InternalSearch(const Page& p, uint64_t key) {
  // Returns the child index (0 == leftmost) whose subtree may contain `key`:
  // the largest i such that key >= key[i-1], i.e. upper_bound.
  uint16_t count = InternalCount(p);
  uint16_t lo = 0, hi = count;
  while (lo < hi) {
    uint16_t mid = static_cast<uint16_t>((lo + hi) / 2);
    if (InternalKey(p, mid) <= key) {
      lo = static_cast<uint16_t>(mid + 1);
    } else {
      hi = mid;
    }
  }
  return lo;  // child index: 0..count
}

Status BPlusTree::Create(BufferPool* pool, BPlusTree* out) {
  PageGuard guard;
  OBJREP_RETURN_NOT_OK(pool->NewPage(&guard));
  SlottedPage sp(guard.page());
  sp.Init();
  sp.set_aux(kLeafMarker);
  guard.MarkDirty();
  out->pool_ = pool;
  out->root_ = guard.page_id();
  out->first_leaf_ = guard.page_id();
  out->stats_ = Stats{1, 1, 0, 0};
  return Status::OK();
}

Status BPlusTree::BulkLoad(BufferPool* pool,
                           const std::vector<Entry>& entries,
                           double fill_factor, BPlusTree* out) {
  if (fill_factor <= 0.0 || fill_factor > 1.0) {
    return Status::InvalidArgument("fill factor must be in (0, 1]");
  }
  if (entries.empty()) {
    return Create(pool, out);
  }
  for (size_t i = 1; i < entries.size(); ++i) {
    if (entries[i - 1].key >= entries[i].key) {
      return Status::InvalidArgument("bulk load input not strictly sorted");
    }
  }

  out->pool_ = pool;
  out->stats_ = Stats{};

  // --- Build the leaf level. ---
  // A page is "full enough" once used cell space exceeds
  // fill_factor * usable bytes.
  const uint32_t usable = kPageSize - 64;  // conservative slack for header
  const uint32_t budget = static_cast<uint32_t>(usable * fill_factor);

  std::vector<std::pair<uint64_t, PageId>> level;  // (first key, page)
  PageGuard leaf;
  OBJREP_RETURN_NOT_OK(pool->NewPage(&leaf));
  SlottedPage sp(leaf.page());
  sp.Init();
  sp.set_aux(kLeafMarker);
  leaf.MarkDirty();
  out->first_leaf_ = leaf.page_id();
  uint32_t used = 0;
  uint64_t page_first_key = entries[0].key;
  bool page_empty = true;
  ++out->stats_.leaf_pages;

  for (const Entry& e : entries) {
    std::string cell = MakeLeafCell(e.key, e.value);
    uint32_t cost = static_cast<uint32_t>(cell.size()) + 4;
    if (!page_empty && (used + cost > budget ||
                        cell.size() > sp.FreeSpace())) {
      // Seal this leaf, start the next one.
      level.emplace_back(page_first_key, leaf.page_id());
      PageGuard next;
      OBJREP_RETURN_NOT_OK(pool->NewPage(&next));
      SlottedPage nsp(next.page());
      nsp.Init();
      nsp.set_aux(kLeafMarker);
      next.MarkDirty();
      sp = SlottedPage(leaf.page());
      sp.set_next_page(next.page_id());
      leaf = std::move(next);
      sp = SlottedPage(leaf.page());
      used = 0;
      page_empty = true;
      ++out->stats_.leaf_pages;
    }
    if (page_empty) {
      page_first_key = e.key;
      page_empty = false;
    }
    uint16_t slot = sp.Insert(cell);
    if (slot == SlottedPage::kInvalidSlot) {
      return Status::NoSpace("bulk load: record larger than a page");
    }
    used += cost;
    ++out->stats_.num_entries;
  }
  level.emplace_back(page_first_key, leaf.page_id());
  leaf.Release();

  // --- Build internal levels bottom-up. ---
  uint32_t height = 1;
  const uint32_t internal_budget = std::max<uint32_t>(
      2, static_cast<uint32_t>(kInternalCapacity * fill_factor));
  while (level.size() > 1) {
    std::vector<std::pair<uint64_t, PageId>> parent_level;
    size_t i = 0;
    while (i < level.size()) {
      size_t take = std::min<size_t>(internal_budget + 1, level.size() - i);
      // An internal node holds `take` children => take-1 keys; avoid a
      // dangling single-child node at the end.
      if (level.size() - i - take == 1) {
        --take;
      }
      PageGuard node;
      OBJREP_RETURN_NOT_OK(pool->NewPage(&node));
      Page* p = node.page();
      std::memset(p->data, 0, kInternalHeader);
      uint32_t marker = kInternalMarker;
      std::memcpy(p->data + 4, &marker, 4);
      SetLeftmost(p, level[i].second);
      for (size_t j = 1; j < take; ++j) {
        InternalSet(p, static_cast<uint16_t>(j - 1), level[i + j].first,
                    level[i + j].second);
      }
      SetInternalCount(p, static_cast<uint16_t>(take - 1));
      node.MarkDirty();
      parent_level.emplace_back(level[i].first, node.page_id());
      ++out->stats_.internal_pages;
      i += take;
    }
    level.swap(parent_level);
    ++height;
  }
  out->root_ = level[0].second;
  out->stats_.height = height;
  return Status::OK();
}

Status BPlusTree::DescendToLeaf(uint64_t key, PageGuard* leaf,
                                std::vector<PathEntry>* path) const {
  PageId pid = root_;
  for (uint32_t depth = 1; depth < stats_.height; ++depth) {
    PageGuard guard;
    OBJREP_RETURN_NOT_OK(pool_->FetchPage(pid, &guard));
    const Page& p = *guard.page();
    uint16_t child_index = InternalSearch(p, key);
    if (path != nullptr) {
      path->push_back(PathEntry{pid, child_index});
    }
    pid = InternalChild(p, child_index);
  }
  return pool_->FetchPage(pid, leaf);
}

Status BPlusTree::DescendToLeafProbe(uint64_t key, const uint64_t* upcoming,
                                     size_t n, PageGuard* leaf) const {
  if (!pool_->prefetch_enabled() || n == 0 || stats_.height < 2) {
    return DescendToLeaf(key, leaf, nullptr);
  }
  const uint32_t cap = pool_->prefetch_options().readahead_pages;
  PageId pid = root_;
  // Exclusive upper bound of the current subtree's key range, inherited
  // from the ancestors' separators. Needed at the leaf level: a probe for
  // a key past this bound re-descends from the root into the *next*
  // subtree, so hinting this node's last child for it would stage a page
  // the walk never reads (a §9 exactness violation).
  uint64_t subtree_end = UINT64_MAX;
  for (uint32_t depth = 1; depth < stats_.height; ++depth) {
    PageGuard guard;
    OBJREP_RETURN_NOT_OK(pool_->FetchPage(pid, &guard));
    const Page& p = *guard.page();
    uint16_t child_index = InternalSearch(p, key);
    if (depth + 1 == stats_.height) {
      // The children are leaves. Batch the target leaf with the leaves the
      // upcoming (sorted) keys land in — identities read straight off this
      // node, so the batch is exact: every page in it is about to be
      // demand-fetched by the probe walk.
      uint16_t count = InternalCount(p);
      std::vector<PageId> hint;
      hint.reserve(cap);
      hint.push_back(InternalChild(p, child_index));
      size_t ki = 0;
      for (uint16_t j = child_index + 1; j <= count && hint.size() < cap;
           ++j) {
        uint64_t low = InternalKey(p, j - 1);
        while (ki < n && upcoming[ki] < low) ++ki;
        if (ki == n) break;
        uint64_t high = j == count ? subtree_end : InternalKey(p, j);
        if (upcoming[ki] < high) {
          hint.push_back(InternalChild(p, j));
        }
      }
      if (hint.size() > 1) {
        pool_->PrefetchHint(hint.data(), hint.size());
      }
    }
    if (child_index < InternalCount(p)) {
      subtree_end = InternalKey(p, child_index);
    }
    pid = InternalChild(p, child_index);
  }
  return pool_->FetchPage(pid, leaf);
}

Status BPlusTree::DescendToLeafRange(uint64_t key, uint64_t end_key,
                                     uint32_t fan,
                                     std::vector<PageId>* siblings,
                                     PageGuard* leaf) const {
  siblings->clear();
  PageId pid = root_;
  for (uint32_t depth = 1; depth < stats_.height; ++depth) {
    PageGuard guard;
    OBJREP_RETURN_NOT_OK(pool_->FetchPage(pid, &guard));
    const Page& p = *guard.page();
    uint16_t child_index = InternalSearch(p, key);
    if (depth + 1 == stats_.height) {
      uint16_t count = InternalCount(p);
      for (uint16_t j = child_index + 1; j <= count; ++j) {
        if (InternalKey(p, j - 1) > end_key) break;
        siblings->push_back(InternalChild(p, j));
      }
      // First read-ahead window: the target leaf plus its next `fan`
      // scan-order siblings, all certain to be read by a scan to end_key.
      if (!siblings->empty()) {
        std::vector<PageId> hint;
        hint.reserve(1 + fan);
        hint.push_back(InternalChild(p, child_index));
        for (size_t j = 0; j < siblings->size() && hint.size() < 1 + fan;
             ++j) {
          hint.push_back((*siblings)[j]);
        }
        pool_->PrefetchHint(hint.data(), hint.size());
      }
    }
    pid = InternalChild(p, child_index);
  }
  return pool_->FetchPage(pid, leaf);
}

Status BPlusTree::ProbeBatch(
    const uint64_t* keys, size_t n,
    const std::function<Status(size_t index, std::string_view value)>&
        on_found) const {
  Iterator it(this);
  for (size_t i = 0; i < n; ++i) {
    if (i == 0) {
      OBJREP_RETURN_NOT_OK(it.SeekHinted(keys[0], keys + 1, n - 1));
    } else if (keys[i] != keys[i - 1]) {
      OBJREP_RETURN_NOT_OK(
          it.SeekForwardHinted(keys[i], keys + i + 1, n - i - 1));
    }
    // Duplicate keys reuse the cursor position untouched.
    if (!it.valid()) break;  // past the last entry: the rest are absent
    if (it.key() == keys[i]) {
      OBJREP_RETURN_NOT_OK(on_found(i, it.value()));
    }
  }
  return Status::OK();
}

void BPlusTree::HintLeavesForKeys(const uint64_t* keys, size_t n) const {
  if (!pool_->prefetch_enabled() || n == 0 || stats_.height < 2) return;
  const uint32_t cap = pool_->prefetch_options().readahead_pages;
  std::vector<PageId> hint;
  hint.reserve(cap);
  size_t ki = 0;
  while (ki < n && hint.size() < cap) {
    // Stampless resident-only descent to the leaf parent covering keys[ki],
    // tracking the subtree's exclusive upper bound so keys belonging to the
    // next subtree are never attributed to this node's last child.
    uint64_t subtree_end = UINT64_MAX;
    PageId pid = root_;
    PageGuard g;
    bool resident = true;
    for (uint32_t depth = 1; depth + 1 < stats_.height; ++depth) {
      if (!pool_->TryFetchResident(pid, &g)) {
        resident = false;
        break;
      }
      const Page& p = *g.page();
      uint16_t child_index = InternalSearch(p, keys[ki]);
      if (child_index < InternalCount(p)) {
        subtree_end = InternalKey(p, child_index);
      }
      pid = InternalChild(p, child_index);
    }
    if (!resident || !pool_->TryFetchResident(pid, &g)) break;
    const Page& p = *g.page();
    const uint16_t count = InternalCount(p);
    const size_t ki_before = ki;
    for (uint16_t j = InternalSearch(p, keys[ki]);
         j <= count && ki < n && hint.size() < cap; ++j) {
      uint64_t high = j == count ? subtree_end : InternalKey(p, j);
      bool any = false;
      while (ki < n && keys[ki] < high) {
        any = true;
        ++ki;
      }
      if (any) hint.push_back(InternalChild(p, j));
    }
    if (ki == ki_before) break;  // key >= subtree_end == UINT64_MAX
  }
  if (!hint.empty()) {
    pool_->PrefetchHint(hint.data(), hint.size());
  }
}

Status BPlusTree::Get(uint64_t key, std::string* value) const {
  PageGuard leaf;
  OBJREP_RETURN_NOT_OK(DescendToLeaf(key, &leaf, nullptr));
  SlottedPage sp(leaf.page());
  uint16_t slot = LeafLowerBound(sp, key);
  if (slot >= sp.num_slots() || LeafKeyAt(sp, slot) != key) {
    return Status::NotFound();
  }
  value->assign(LeafValueAt(sp, slot));
  return Status::OK();
}

Status BPlusTree::UpdateInPlace(uint64_t key, std::string_view value) {
  PageGuard leaf;
  OBJREP_RETURN_NOT_OK(DescendToLeaf(key, &leaf, nullptr));
  SlottedPage sp(leaf.page());
  uint16_t slot = LeafLowerBound(sp, key);
  if (slot >= sp.num_slots() || LeafKeyAt(sp, slot) != key) {
    return Status::NotFound();
  }
  std::string cell = MakeLeafCell(key, value);
  if (!sp.UpdateInPlace(slot, cell)) {
    return Status::InvalidArgument("in-place update size mismatch");
  }
  leaf.MarkDirty();
  return Status::OK();
}

Status BPlusTree::InsertIntoParent(std::vector<PathEntry>* path,
                                   uint64_t sep_key, PageId new_child) {
  while (true) {
    if (path->empty()) {
      // Split reached the root: grow the tree by one level.
      PageGuard node;
      OBJREP_RETURN_NOT_OK(pool_->NewPage(&node));
      Page* p = node.page();
      std::memset(p->data, 0, kInternalHeader);
      uint32_t marker = kInternalMarker;
      std::memcpy(p->data + 4, &marker, 4);
      SetLeftmost(p, root_);
      InternalSet(p, 0, sep_key, new_child);
      SetInternalCount(p, 1);
      node.MarkDirty();
      root_ = node.page_id();
      ++stats_.height;
      ++stats_.internal_pages;
      return Status::OK();
    }
    PathEntry pe = path->back();
    path->pop_back();
    PageGuard guard;
    OBJREP_RETURN_NOT_OK(pool_->FetchPage(pe.pid, &guard));
    Page* p = guard.page();
    uint16_t count = InternalCount(*p);
    if (count < kInternalCapacity) {
      // Shift entries at >= pe.child_index up by one and insert.
      for (uint16_t i = count; i > pe.child_index; --i) {
        InternalSet(p, i, InternalKey(*p, i - 1), InternalChild(*p, i));
      }
      InternalSet(p, pe.child_index, sep_key, new_child);
      SetInternalCount(p, static_cast<uint16_t>(count + 1));
      guard.MarkDirty();
      return Status::OK();
    }
    // Split the internal node. Build the combined entry list in memory.
    struct Ent { uint64_t key; PageId child; };
    std::vector<Ent> ents;
    ents.reserve(count + 1);
    for (uint16_t i = 0; i < count; ++i) {
      ents.push_back(Ent{InternalKey(*p, i), InternalChild(*p, i + 1)});
    }
    ents.insert(ents.begin() + pe.child_index, Ent{sep_key, new_child});
    PageId leftmost = InternalChild(*p, 0);

    uint16_t total = static_cast<uint16_t>(ents.size());
    uint16_t left_n = total / 2;          // entries staying left
    uint64_t up_key = ents[left_n].key;   // pushed to the parent
    PageId right_leftmost = ents[left_n].child;

    // Rewrite the left node.
    SetLeftmost(p, leftmost);
    for (uint16_t i = 0; i < left_n; ++i) {
      InternalSet(p, i, ents[i].key, ents[i].child);
    }
    SetInternalCount(p, left_n);
    guard.MarkDirty();

    // Build the right node.
    PageGuard right;
    OBJREP_RETURN_NOT_OK(pool_->NewPage(&right));
    Page* rp = right.page();
    std::memset(rp->data, 0, kInternalHeader);
    uint32_t marker = kInternalMarker;
    std::memcpy(rp->data + 4, &marker, 4);
    SetLeftmost(rp, right_leftmost);
    uint16_t right_n = static_cast<uint16_t>(total - left_n - 1);
    for (uint16_t i = 0; i < right_n; ++i) {
      InternalSet(rp, i, ents[left_n + 1 + i].key, ents[left_n + 1 + i].child);
    }
    SetInternalCount(rp, right_n);
    right.MarkDirty();
    ++stats_.internal_pages;

    sep_key = up_key;
    new_child = right.page_id();
    // Loop: insert (sep_key, new_child) into the next ancestor.
  }
}

Status BPlusTree::SplitLeafAndInsert(PageGuard* leaf, uint64_t key,
                                     std::string_view value,
                                     std::vector<PathEntry>* path) {
  SlottedPage sp(leaf->page());
  // Materialize all cells plus the new one, in key order.
  struct Cell { uint64_t key; std::string cell; };
  std::vector<Cell> cells;
  uint16_t n = sp.num_slots();
  cells.reserve(n + 1);
  for (uint16_t i = 0; i < n; ++i) {
    std::string_view c = sp.Get(i);
    cells.push_back(Cell{LeafKeyAt(sp, i), std::string(c)});
  }
  std::string new_cell = MakeLeafCell(key, value);
  auto it = std::lower_bound(
      cells.begin(), cells.end(), key,
      [](const Cell& c, uint64_t k) { return c.key < k; });
  cells.insert(it, Cell{key, std::move(new_cell)});

  // Split by bytes, half-and-half.
  size_t total_bytes = 0;
  for (const Cell& c : cells) total_bytes += c.cell.size() + 4;
  size_t left_bytes = 0;
  size_t split = 0;
  while (split < cells.size() - 1 && left_bytes < total_bytes / 2) {
    left_bytes += cells[split].cell.size() + 4;
    ++split;
  }

  PageId old_next = sp.next_page();
  // Rewrite the left page.
  sp.Init();
  sp.set_aux(kLeafMarker);
  for (size_t i = 0; i < split; ++i) {
    OBJREP_CHECK(sp.Insert(cells[i].cell) != SlottedPage::kInvalidSlot);
  }
  // Build the right page.
  PageGuard right;
  OBJREP_RETURN_NOT_OK(pool_->NewPage(&right));
  SlottedPage rsp(right.page());
  rsp.Init();
  rsp.set_aux(kLeafMarker);
  for (size_t i = split; i < cells.size(); ++i) {
    OBJREP_CHECK(rsp.Insert(cells[i].cell) != SlottedPage::kInvalidSlot);
  }
  rsp.set_next_page(old_next);
  sp.set_next_page(right.page_id());
  leaf->MarkDirty();
  right.MarkDirty();
  ++stats_.leaf_pages;

  uint64_t sep_key = cells[split].key;
  PageId right_pid = right.page_id();
  right.Release();
  leaf->Release();
  return InsertIntoParent(path, sep_key, right_pid);
}

Status BPlusTree::Insert(uint64_t key, std::string_view value) {
  std::vector<PathEntry> path;
  PageGuard leaf;
  OBJREP_RETURN_NOT_OK(DescendToLeaf(key, &leaf, &path));
  SlottedPage sp(leaf.page());
  uint16_t pos = LeafLowerBound(sp, key);
  if (pos < sp.num_slots() && LeafKeyAt(sp, pos) == key) {
    return Status::InvalidArgument("duplicate key");
  }
  std::string cell = MakeLeafCell(key, value);
  if (sp.InsertAt(pos, cell)) {
    leaf.MarkDirty();
    ++stats_.num_entries;
    return Status::OK();
  }
  // Try reclaiming dead cell space before splitting.
  sp.Compact();
  pos = LeafLowerBound(sp, key);
  if (sp.InsertAt(pos, cell)) {
    leaf.MarkDirty();
    ++stats_.num_entries;
    return Status::OK();
  }
  OBJREP_RETURN_NOT_OK(SplitLeafAndInsert(&leaf, key, value, &path));
  ++stats_.num_entries;
  return Status::OK();
}

Status BPlusTree::Delete(uint64_t key) {
  PageGuard leaf;
  OBJREP_RETURN_NOT_OK(DescendToLeaf(key, &leaf, nullptr));
  SlottedPage sp(leaf.page());
  uint16_t slot = LeafLowerBound(sp, key);
  if (slot >= sp.num_slots() || LeafKeyAt(sp, slot) != key) {
    return Status::NotFound();
  }
  sp.RemoveAt(slot);
  leaf.MarkDirty();
  --stats_.num_entries;
  return Status::OK();
}

Status BPlusTree::Iterator::Seek(uint64_t key) {
  range_mode_ = false;
  refill_pending_ = false;
  valid_ = false;
  guard_.Release();
  PageGuard leaf;
  OBJREP_RETURN_NOT_OK(tree_->DescendToLeaf(key, &leaf, nullptr));
  guard_ = std::move(leaf);
  SlottedPage sp(guard_.page());
  slot_ = LeafLowerBound(sp, key);
  valid_ = true;
  return SkipDeletedForward();
}

Status BPlusTree::Iterator::SeekRange(uint64_t key, uint64_t end_key,
                                      uint32_t fan) {
  range_mode_ = false;
  refill_pending_ = false;
  upcoming_leaves_.clear();
  upcoming_pos_ = 0;
  if (!tree_->pool_->prefetch_enabled() || tree_->stats_.height < 2) {
    return Seek(key);
  }
  range_mode_ = true;
  end_key_ = end_key;
  fan_ = fan == 0 ? tree_->pool_->prefetch_options().readahead_pages : fan;
  valid_ = false;
  guard_.Release();
  PageGuard leaf;
  OBJREP_RETURN_NOT_OK(tree_->DescendToLeafRange(key, end_key, fan_,
                                                 &upcoming_leaves_, &leaf));
  guard_ = std::move(leaf);
  SlottedPage sp(guard_.page());
  slot_ = LeafLowerBound(sp, key);
  valid_ = true;
  return SkipDeletedForward();
}

Status BPlusTree::Iterator::SeekHinted(uint64_t key, const uint64_t* upcoming,
                                       size_t n) {
  range_mode_ = false;
  refill_pending_ = false;
  valid_ = false;
  guard_.Release();
  PageGuard leaf;
  OBJREP_RETURN_NOT_OK(tree_->DescendToLeafProbe(key, upcoming, n, &leaf));
  guard_ = std::move(leaf);
  SlottedPage sp(guard_.page());
  slot_ = LeafLowerBound(sp, key);
  valid_ = true;
  return SkipDeletedForward();
}

Status BPlusTree::Iterator::SeekForwardHinted(uint64_t key,
                                              const uint64_t* upcoming,
                                              size_t n) {
  if (!valid_) return Status::OK();
  SlottedPage sp(guard_.page());
  uint16_t cnt = sp.num_slots();
  if (slot_ < cnt && LeafKeyAt(sp, slot_) >= key) {
    return Status::OK();  // already positioned
  }
  if (cnt > 0 && LeafKeyAt(sp, static_cast<uint16_t>(cnt - 1)) >= key) {
    slot_ = LeafLowerBound(sp, key);
    return SkipDeletedForward();
  }
  return SeekHinted(key, upcoming, n);
}

void BPlusTree::Iterator::MaybeHintChain(PageId next) {
  if (upcoming_pos_ < upcoming_leaves_.size() &&
      upcoming_leaves_[upcoming_pos_] == next) {
    // `next` is the expected sibling: slide the read-ahead window past it.
    ++upcoming_pos_;
    size_t len =
        std::min<size_t>(fan_, upcoming_leaves_.size() - upcoming_pos_);
    if (len > 0) {
      tree_->pool_->PrefetchHint(upcoming_leaves_.data() + upcoming_pos_,
                                 len);
    }
  } else {
    // List exhausted (crossing into the next internal node's subtree) or
    // stale (tree mutated): rebuild it once the next leaf is loaded.
    upcoming_leaves_.clear();
    upcoming_pos_ = 0;
    refill_pending_ = true;
  }
}

Status BPlusTree::Iterator::RefillRangeHints() {
  refill_pending_ = false;
  SlottedPage sp(guard_.page());
  if (sp.num_slots() == 0) {
    refill_pending_ = true;  // empty leaf: retry on the next one
    return Status::OK();
  }
  uint64_t key0 = LeafKeyAt(sp, 0);
  if (key0 > end_key_) {
    range_mode_ = false;  // past the range: the scan is about to stop
    return Status::OK();
  }
  // Re-walk the internal levels to find this leaf's scan-order siblings.
  // Resident-only pins: the walk must never add I/O of its own, so if an
  // internal node fell out of the buffer we simply skip this window and
  // retry at the next leaf crossing.
  upcoming_leaves_.clear();
  upcoming_pos_ = 0;
  PageId pid = tree_->root_;
  for (uint32_t depth = 1; depth < tree_->stats_.height; ++depth) {
    PageGuard g;
    if (!tree_->pool_->TryFetchResident(pid, &g)) {
      return Status::OK();
    }
    const Page& p = *g.page();
    uint16_t child_index = InternalSearch(p, key0);
    if (depth + 1 == tree_->stats_.height) {
      uint16_t count = InternalCount(p);
      for (uint16_t j = child_index + 1; j <= count; ++j) {
        if (InternalKey(p, j - 1) > end_key_) break;
        upcoming_leaves_.push_back(InternalChild(p, j));
      }
    }
    pid = InternalChild(p, child_index);
  }
  size_t len = std::min<size_t>(fan_, upcoming_leaves_.size());
  if (len > 0) {
    tree_->pool_->PrefetchHint(upcoming_leaves_.data(), len);
  }
  return Status::OK();
}

Status BPlusTree::Iterator::SeekForward(uint64_t key) {
  if (!valid_) return Status::OK();
  SlottedPage sp(guard_.page());
  uint16_t n = sp.num_slots();
  if (slot_ < n && LeafKeyAt(sp, slot_) >= key) {
    return Status::OK();  // already positioned
  }
  if (n > 0 && LeafKeyAt(sp, static_cast<uint16_t>(n - 1)) >= key) {
    // Target is on this leaf: binary search in place.
    slot_ = LeafLowerBound(sp, key);
    return SkipDeletedForward();
  }
  // Beyond this leaf: re-descend. For a dense stream this happens once per
  // leaf and the internal pages are buffer-hot, so it costs the same one
  // leaf read that stepping the chain would; for a sparse stream it skips
  // the untouched leaves entirely.
  return Seek(key);
}

Status BPlusTree::Iterator::SeekToFirst() {
  valid_ = false;
  guard_.Release();
  OBJREP_RETURN_NOT_OK(tree_->pool_->FetchPage(tree_->first_leaf_, &guard_));
  slot_ = 0;
  valid_ = true;
  return SkipDeletedForward();
}

Status BPlusTree::Iterator::SkipDeletedForward() {
  // Moves to the first existing slot at or after (guard_, slot_), following
  // the leaf chain; clears valid_ at end of tree.
  while (true) {
    SlottedPage sp(guard_.page());
    if (slot_ < sp.num_slots()) {
      return Status::OK();
    }
    PageId next = sp.next_page();
    if (next == kInvalidPageId) {
      valid_ = false;
      guard_.Release();
      return Status::OK();
    }
    if (range_mode_) {
      MaybeHintChain(next);
    }
    OBJREP_RETURN_NOT_OK(tree_->pool_->FetchPage(next, &guard_));
    slot_ = 0;
    if (range_mode_ && refill_pending_) {
      OBJREP_RETURN_NOT_OK(RefillRangeHints());
    }
  }
}

Status BPlusTree::Iterator::Next() {
  if (!valid_) return Status::OK();
  ++slot_;
  return SkipDeletedForward();
}

uint64_t BPlusTree::Iterator::key() const {
  SlottedPage sp(const_cast<Page*>(guard_.page()));
  return LeafKeyAt(sp, slot_);
}

std::string_view BPlusTree::Iterator::value() const {
  SlottedPage sp(const_cast<Page*>(guard_.page()));
  return LeafValueAt(sp, slot_);
}

}  // namespace objrep
