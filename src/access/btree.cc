#include "access/btree.h"

#include <algorithm>
#include <cstring>

#include "util/macros.h"

namespace objrep {

namespace {

// Leaf cell = [u64 key][value bytes].
std::string MakeLeafCell(uint64_t key, std::string_view value) {
  std::string cell;
  cell.reserve(8 + value.size());
  cell.append(reinterpret_cast<const char*>(&key), 8);
  cell.append(value);
  return cell;
}

}  // namespace

uint64_t BPlusTree::LeafKeyAt(const SlottedPage& sp, uint16_t slot) {
  std::string_view cell = sp.Get(slot);
  OBJREP_CHECK(cell.size() >= 8);
  uint64_t key;
  std::memcpy(&key, cell.data(), 8);
  return key;
}

std::string_view BPlusTree::LeafValueAt(const SlottedPage& sp, uint16_t slot) {
  std::string_view cell = sp.Get(slot);
  OBJREP_CHECK(cell.size() >= 8);
  return cell.substr(8);
}

uint16_t BPlusTree::LeafLowerBound(const SlottedPage& sp, uint64_t key) {
  // Slot array is maintained in key order with no interior deleted slots
  // (Delete uses RemoveAt), so plain binary search applies.
  uint16_t lo = 0, hi = sp.num_slots();
  while (lo < hi) {
    uint16_t mid = static_cast<uint16_t>((lo + hi) / 2);
    if (LeafKeyAt(sp, mid) < key) {
      lo = static_cast<uint16_t>(mid + 1);
    } else {
      hi = mid;
    }
  }
  return lo;
}

uint16_t BPlusTree::InternalCount(const Page& p) {
  uint16_t v;
  std::memcpy(&v, p.data + 8, 2);
  return v;
}

void BPlusTree::SetInternalCount(Page* p, uint16_t n) {
  std::memcpy(p->data + 8, &n, 2);
}

PageId BPlusTree::InternalChild(const Page& p, uint16_t index) {
  if (index == 0) {
    PageId pid;
    std::memcpy(&pid, p.data + 12, 4);
    return pid;
  }
  PageId pid;
  std::memcpy(&pid,
              p.data + kInternalHeader +
                  (index - 1) * kInternalEntrySize + 8,
              4);
  return pid;
}

uint64_t BPlusTree::InternalKey(const Page& p, uint16_t entry) {
  uint64_t key;
  std::memcpy(&key, p.data + kInternalHeader + entry * kInternalEntrySize, 8);
  return key;
}

void BPlusTree::InternalSet(Page* p, uint16_t entry, uint64_t key,
                            PageId child) {
  char* base = p->data + kInternalHeader + entry * kInternalEntrySize;
  std::memcpy(base, &key, 8);
  std::memcpy(base + 8, &child, 4);
}

void BPlusTree::SetLeftmost(Page* p, PageId child) {
  std::memcpy(p->data + 12, &child, 4);
}

uint16_t BPlusTree::InternalSearch(const Page& p, uint64_t key) {
  // Returns the child index (0 == leftmost) whose subtree may contain `key`:
  // the largest i such that key >= key[i-1], i.e. upper_bound.
  uint16_t count = InternalCount(p);
  uint16_t lo = 0, hi = count;
  while (lo < hi) {
    uint16_t mid = static_cast<uint16_t>((lo + hi) / 2);
    if (InternalKey(p, mid) <= key) {
      lo = static_cast<uint16_t>(mid + 1);
    } else {
      hi = mid;
    }
  }
  return lo;  // child index: 0..count
}

Status BPlusTree::Create(BufferPool* pool, BPlusTree* out) {
  PageGuard guard;
  OBJREP_RETURN_NOT_OK(pool->NewPage(&guard));
  SlottedPage sp(guard.page());
  sp.Init();
  sp.set_aux(kLeafMarker);
  guard.MarkDirty();
  out->pool_ = pool;
  out->root_ = guard.page_id();
  out->first_leaf_ = guard.page_id();
  out->stats_ = Stats{1, 1, 0, 0};
  return Status::OK();
}

Status BPlusTree::BulkLoad(BufferPool* pool,
                           const std::vector<Entry>& entries,
                           double fill_factor, BPlusTree* out) {
  if (fill_factor <= 0.0 || fill_factor > 1.0) {
    return Status::InvalidArgument("fill factor must be in (0, 1]");
  }
  if (entries.empty()) {
    return Create(pool, out);
  }
  for (size_t i = 1; i < entries.size(); ++i) {
    if (entries[i - 1].key >= entries[i].key) {
      return Status::InvalidArgument("bulk load input not strictly sorted");
    }
  }

  out->pool_ = pool;
  out->stats_ = Stats{};

  // --- Build the leaf level. ---
  // A page is "full enough" once used cell space exceeds
  // fill_factor * usable bytes.
  const uint32_t usable = kPageSize - 64;  // conservative slack for header
  const uint32_t budget = static_cast<uint32_t>(usable * fill_factor);

  std::vector<std::pair<uint64_t, PageId>> level;  // (first key, page)
  PageGuard leaf;
  OBJREP_RETURN_NOT_OK(pool->NewPage(&leaf));
  SlottedPage sp(leaf.page());
  sp.Init();
  sp.set_aux(kLeafMarker);
  leaf.MarkDirty();
  out->first_leaf_ = leaf.page_id();
  uint32_t used = 0;
  uint64_t page_first_key = entries[0].key;
  bool page_empty = true;
  ++out->stats_.leaf_pages;

  for (const Entry& e : entries) {
    std::string cell = MakeLeafCell(e.key, e.value);
    uint32_t cost = static_cast<uint32_t>(cell.size()) + 4;
    if (!page_empty && (used + cost > budget ||
                        cell.size() > sp.FreeSpace())) {
      // Seal this leaf, start the next one.
      level.emplace_back(page_first_key, leaf.page_id());
      PageGuard next;
      OBJREP_RETURN_NOT_OK(pool->NewPage(&next));
      SlottedPage nsp(next.page());
      nsp.Init();
      nsp.set_aux(kLeafMarker);
      next.MarkDirty();
      sp = SlottedPage(leaf.page());
      sp.set_next_page(next.page_id());
      leaf = std::move(next);
      sp = SlottedPage(leaf.page());
      used = 0;
      page_empty = true;
      ++out->stats_.leaf_pages;
    }
    if (page_empty) {
      page_first_key = e.key;
      page_empty = false;
    }
    uint16_t slot = sp.Insert(cell);
    if (slot == SlottedPage::kInvalidSlot) {
      return Status::NoSpace("bulk load: record larger than a page");
    }
    used += cost;
    ++out->stats_.num_entries;
  }
  level.emplace_back(page_first_key, leaf.page_id());
  leaf.Release();

  // --- Build internal levels bottom-up. ---
  uint32_t height = 1;
  const uint32_t internal_budget = std::max<uint32_t>(
      2, static_cast<uint32_t>(kInternalCapacity * fill_factor));
  while (level.size() > 1) {
    std::vector<std::pair<uint64_t, PageId>> parent_level;
    size_t i = 0;
    while (i < level.size()) {
      size_t take = std::min<size_t>(internal_budget + 1, level.size() - i);
      // An internal node holds `take` children => take-1 keys; avoid a
      // dangling single-child node at the end.
      if (level.size() - i - take == 1) {
        --take;
      }
      PageGuard node;
      OBJREP_RETURN_NOT_OK(pool->NewPage(&node));
      Page* p = node.page();
      std::memset(p->data, 0, kInternalHeader);
      uint32_t marker = kInternalMarker;
      std::memcpy(p->data + 4, &marker, 4);
      SetLeftmost(p, level[i].second);
      for (size_t j = 1; j < take; ++j) {
        InternalSet(p, static_cast<uint16_t>(j - 1), level[i + j].first,
                    level[i + j].second);
      }
      SetInternalCount(p, static_cast<uint16_t>(take - 1));
      node.MarkDirty();
      parent_level.emplace_back(level[i].first, node.page_id());
      ++out->stats_.internal_pages;
      i += take;
    }
    level.swap(parent_level);
    ++height;
  }
  out->root_ = level[0].second;
  out->stats_.height = height;
  return Status::OK();
}

Status BPlusTree::DescendToLeaf(uint64_t key, PageGuard* leaf,
                                std::vector<PathEntry>* path) const {
  PageId pid = root_;
  for (uint32_t depth = 1; depth < stats_.height; ++depth) {
    PageGuard guard;
    OBJREP_RETURN_NOT_OK(pool_->FetchPage(pid, &guard));
    const Page& p = *guard.page();
    uint16_t child_index = InternalSearch(p, key);
    if (path != nullptr) {
      path->push_back(PathEntry{pid, child_index});
    }
    pid = InternalChild(p, child_index);
  }
  return pool_->FetchPage(pid, leaf);
}

Status BPlusTree::Get(uint64_t key, std::string* value) const {
  PageGuard leaf;
  OBJREP_RETURN_NOT_OK(DescendToLeaf(key, &leaf, nullptr));
  SlottedPage sp(leaf.page());
  uint16_t slot = LeafLowerBound(sp, key);
  if (slot >= sp.num_slots() || LeafKeyAt(sp, slot) != key) {
    return Status::NotFound();
  }
  value->assign(LeafValueAt(sp, slot));
  return Status::OK();
}

Status BPlusTree::UpdateInPlace(uint64_t key, std::string_view value) {
  PageGuard leaf;
  OBJREP_RETURN_NOT_OK(DescendToLeaf(key, &leaf, nullptr));
  SlottedPage sp(leaf.page());
  uint16_t slot = LeafLowerBound(sp, key);
  if (slot >= sp.num_slots() || LeafKeyAt(sp, slot) != key) {
    return Status::NotFound();
  }
  std::string cell = MakeLeafCell(key, value);
  if (!sp.UpdateInPlace(slot, cell)) {
    return Status::InvalidArgument("in-place update size mismatch");
  }
  leaf.MarkDirty();
  return Status::OK();
}

Status BPlusTree::InsertIntoParent(std::vector<PathEntry>* path,
                                   uint64_t sep_key, PageId new_child) {
  while (true) {
    if (path->empty()) {
      // Split reached the root: grow the tree by one level.
      PageGuard node;
      OBJREP_RETURN_NOT_OK(pool_->NewPage(&node));
      Page* p = node.page();
      std::memset(p->data, 0, kInternalHeader);
      uint32_t marker = kInternalMarker;
      std::memcpy(p->data + 4, &marker, 4);
      SetLeftmost(p, root_);
      InternalSet(p, 0, sep_key, new_child);
      SetInternalCount(p, 1);
      node.MarkDirty();
      root_ = node.page_id();
      ++stats_.height;
      ++stats_.internal_pages;
      return Status::OK();
    }
    PathEntry pe = path->back();
    path->pop_back();
    PageGuard guard;
    OBJREP_RETURN_NOT_OK(pool_->FetchPage(pe.pid, &guard));
    Page* p = guard.page();
    uint16_t count = InternalCount(*p);
    if (count < kInternalCapacity) {
      // Shift entries at >= pe.child_index up by one and insert.
      for (uint16_t i = count; i > pe.child_index; --i) {
        InternalSet(p, i, InternalKey(*p, i - 1), InternalChild(*p, i));
      }
      InternalSet(p, pe.child_index, sep_key, new_child);
      SetInternalCount(p, static_cast<uint16_t>(count + 1));
      guard.MarkDirty();
      return Status::OK();
    }
    // Split the internal node. Build the combined entry list in memory.
    struct Ent { uint64_t key; PageId child; };
    std::vector<Ent> ents;
    ents.reserve(count + 1);
    for (uint16_t i = 0; i < count; ++i) {
      ents.push_back(Ent{InternalKey(*p, i), InternalChild(*p, i + 1)});
    }
    ents.insert(ents.begin() + pe.child_index, Ent{sep_key, new_child});
    PageId leftmost = InternalChild(*p, 0);

    uint16_t total = static_cast<uint16_t>(ents.size());
    uint16_t left_n = total / 2;          // entries staying left
    uint64_t up_key = ents[left_n].key;   // pushed to the parent
    PageId right_leftmost = ents[left_n].child;

    // Rewrite the left node.
    SetLeftmost(p, leftmost);
    for (uint16_t i = 0; i < left_n; ++i) {
      InternalSet(p, i, ents[i].key, ents[i].child);
    }
    SetInternalCount(p, left_n);
    guard.MarkDirty();

    // Build the right node.
    PageGuard right;
    OBJREP_RETURN_NOT_OK(pool_->NewPage(&right));
    Page* rp = right.page();
    std::memset(rp->data, 0, kInternalHeader);
    uint32_t marker = kInternalMarker;
    std::memcpy(rp->data + 4, &marker, 4);
    SetLeftmost(rp, right_leftmost);
    uint16_t right_n = static_cast<uint16_t>(total - left_n - 1);
    for (uint16_t i = 0; i < right_n; ++i) {
      InternalSet(rp, i, ents[left_n + 1 + i].key, ents[left_n + 1 + i].child);
    }
    SetInternalCount(rp, right_n);
    right.MarkDirty();
    ++stats_.internal_pages;

    sep_key = up_key;
    new_child = right.page_id();
    // Loop: insert (sep_key, new_child) into the next ancestor.
  }
}

Status BPlusTree::SplitLeafAndInsert(PageGuard* leaf, uint64_t key,
                                     std::string_view value,
                                     std::vector<PathEntry>* path) {
  SlottedPage sp(leaf->page());
  // Materialize all cells plus the new one, in key order.
  struct Cell { uint64_t key; std::string cell; };
  std::vector<Cell> cells;
  uint16_t n = sp.num_slots();
  cells.reserve(n + 1);
  for (uint16_t i = 0; i < n; ++i) {
    std::string_view c = sp.Get(i);
    cells.push_back(Cell{LeafKeyAt(sp, i), std::string(c)});
  }
  std::string new_cell = MakeLeafCell(key, value);
  auto it = std::lower_bound(
      cells.begin(), cells.end(), key,
      [](const Cell& c, uint64_t k) { return c.key < k; });
  cells.insert(it, Cell{key, std::move(new_cell)});

  // Split by bytes, half-and-half.
  size_t total_bytes = 0;
  for (const Cell& c : cells) total_bytes += c.cell.size() + 4;
  size_t left_bytes = 0;
  size_t split = 0;
  while (split < cells.size() - 1 && left_bytes < total_bytes / 2) {
    left_bytes += cells[split].cell.size() + 4;
    ++split;
  }

  PageId old_next = sp.next_page();
  // Rewrite the left page.
  sp.Init();
  sp.set_aux(kLeafMarker);
  for (size_t i = 0; i < split; ++i) {
    OBJREP_CHECK(sp.Insert(cells[i].cell) != SlottedPage::kInvalidSlot);
  }
  // Build the right page.
  PageGuard right;
  OBJREP_RETURN_NOT_OK(pool_->NewPage(&right));
  SlottedPage rsp(right.page());
  rsp.Init();
  rsp.set_aux(kLeafMarker);
  for (size_t i = split; i < cells.size(); ++i) {
    OBJREP_CHECK(rsp.Insert(cells[i].cell) != SlottedPage::kInvalidSlot);
  }
  rsp.set_next_page(old_next);
  sp.set_next_page(right.page_id());
  leaf->MarkDirty();
  right.MarkDirty();
  ++stats_.leaf_pages;

  uint64_t sep_key = cells[split].key;
  PageId right_pid = right.page_id();
  right.Release();
  leaf->Release();
  return InsertIntoParent(path, sep_key, right_pid);
}

Status BPlusTree::Insert(uint64_t key, std::string_view value) {
  std::vector<PathEntry> path;
  PageGuard leaf;
  OBJREP_RETURN_NOT_OK(DescendToLeaf(key, &leaf, &path));
  SlottedPage sp(leaf.page());
  uint16_t pos = LeafLowerBound(sp, key);
  if (pos < sp.num_slots() && LeafKeyAt(sp, pos) == key) {
    return Status::InvalidArgument("duplicate key");
  }
  std::string cell = MakeLeafCell(key, value);
  if (sp.InsertAt(pos, cell)) {
    leaf.MarkDirty();
    ++stats_.num_entries;
    return Status::OK();
  }
  // Try reclaiming dead cell space before splitting.
  sp.Compact();
  pos = LeafLowerBound(sp, key);
  if (sp.InsertAt(pos, cell)) {
    leaf.MarkDirty();
    ++stats_.num_entries;
    return Status::OK();
  }
  OBJREP_RETURN_NOT_OK(SplitLeafAndInsert(&leaf, key, value, &path));
  ++stats_.num_entries;
  return Status::OK();
}

Status BPlusTree::Delete(uint64_t key) {
  PageGuard leaf;
  OBJREP_RETURN_NOT_OK(DescendToLeaf(key, &leaf, nullptr));
  SlottedPage sp(leaf.page());
  uint16_t slot = LeafLowerBound(sp, key);
  if (slot >= sp.num_slots() || LeafKeyAt(sp, slot) != key) {
    return Status::NotFound();
  }
  sp.RemoveAt(slot);
  leaf.MarkDirty();
  --stats_.num_entries;
  return Status::OK();
}

Status BPlusTree::Iterator::Seek(uint64_t key) {
  valid_ = false;
  guard_.Release();
  PageGuard leaf;
  OBJREP_RETURN_NOT_OK(tree_->DescendToLeaf(key, &leaf, nullptr));
  guard_ = std::move(leaf);
  SlottedPage sp(guard_.page());
  slot_ = LeafLowerBound(sp, key);
  valid_ = true;
  return SkipDeletedForward();
}

Status BPlusTree::Iterator::SeekForward(uint64_t key) {
  if (!valid_) return Status::OK();
  SlottedPage sp(guard_.page());
  uint16_t n = sp.num_slots();
  if (slot_ < n && LeafKeyAt(sp, slot_) >= key) {
    return Status::OK();  // already positioned
  }
  if (n > 0 && LeafKeyAt(sp, static_cast<uint16_t>(n - 1)) >= key) {
    // Target is on this leaf: binary search in place.
    slot_ = LeafLowerBound(sp, key);
    return SkipDeletedForward();
  }
  // Beyond this leaf: re-descend. For a dense stream this happens once per
  // leaf and the internal pages are buffer-hot, so it costs the same one
  // leaf read that stepping the chain would; for a sparse stream it skips
  // the untouched leaves entirely.
  return Seek(key);
}

Status BPlusTree::Iterator::SeekToFirst() {
  valid_ = false;
  guard_.Release();
  OBJREP_RETURN_NOT_OK(tree_->pool_->FetchPage(tree_->first_leaf_, &guard_));
  slot_ = 0;
  valid_ = true;
  return SkipDeletedForward();
}

Status BPlusTree::Iterator::SkipDeletedForward() {
  // Moves to the first existing slot at or after (guard_, slot_), following
  // the leaf chain; clears valid_ at end of tree.
  while (true) {
    SlottedPage sp(guard_.page());
    if (slot_ < sp.num_slots()) {
      return Status::OK();
    }
    PageId next = sp.next_page();
    if (next == kInvalidPageId) {
      valid_ = false;
      guard_.Release();
      return Status::OK();
    }
    OBJREP_RETURN_NOT_OK(tree_->pool_->FetchPage(next, &guard_));
    slot_ = 0;
  }
}

Status BPlusTree::Iterator::Next() {
  if (!valid_) return Status::OK();
  ++slot_;
  return SkipDeletedForward();
}

uint64_t BPlusTree::Iterator::key() const {
  SlottedPage sp(const_cast<Page*>(guard_.page()));
  return LeafKeyAt(sp, slot_);
}

std::string_view BPlusTree::Iterator::value() const {
  SlottedPage sp(const_cast<Page*>(guard_.page()));
  return LeafValueAt(sp, slot_);
}

}  // namespace objrep
