// B+-tree keyed on uint64 with variable-length values.
//
// This is the primary structure of ParentRel, ChildRel and ClusterRel in
// the paper ("structured as B-trees on OID" / "on cluster#"), so it carries
// most of the study's I/O. Leaves are slotted pages whose slot arrays are
// kept in key order and chained for range scans; internal nodes are packed
// (key, child) arrays. Relations are bulk loaded once per experiment;
// incremental insert/delete exist for library completeness and for the
// cache-free temporaries in tests.
#ifndef OBJREP_ACCESS_BTREE_H_
#define OBJREP_ACCESS_BTREE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "access/slotted_page.h"
#include "storage/buffer_pool.h"
#include "util/status.h"

namespace objrep {

class BPlusTree {
 public:
  /// One (key, value) pair for bulk loading.
  struct Entry {
    uint64_t key;
    std::string value;
  };

  /// Shape statistics (filled by bulk load; maintained approximately by
  /// incremental inserts).
  struct Stats {
    uint32_t height = 0;       // 1 == root is a leaf
    uint32_t leaf_pages = 0;
    uint32_t internal_pages = 0;
    uint64_t num_entries = 0;
  };

  BPlusTree() = default;

  /// Creates an empty tree (a single empty leaf).
  static Status Create(BufferPool* pool, BPlusTree* out);

  /// Builds a tree from entries sorted by strictly increasing key.
  /// `fill_factor` in (0, 1] bounds how full each leaf is packed.
  static Status BulkLoad(BufferPool* pool, const std::vector<Entry>& entries,
                         double fill_factor, BPlusTree* out);

  /// Point lookup. NotFound if absent.
  Status Get(uint64_t key, std::string* value) const;

  /// Inserts a new key. InvalidArgument if the key already exists.
  Status Insert(uint64_t key, std::string_view value);

  /// Overwrites the value of an existing key with a same-length value.
  Status UpdateInPlace(uint64_t key, std::string_view value);

  /// Removes a key (lazy: no page merging; space reclaimed on page rebuild).
  Status Delete(uint64_t key);

  /// Looks up `keys[0..n)` (sorted ascending, duplicates allowed) in one
  /// coordinated forward pass, invoking `on_found(i, value)` for each key
  /// present. Probes sharing a leaf reuse the pinned page, and each
  /// re-descent offers the upcoming keys' leaves to the buffer pool as a
  /// read-ahead batch (one vectored read instead of n single-page reads).
  /// With prefetch disabled this costs exactly the same disk I/O as n
  /// Get() calls; callers gate on pool()->prefetch_enabled() anyway so
  /// disabled runs keep the seed's Get()-loop code path bit-for-bit.
  Status ProbeBatch(
      const uint64_t* keys, size_t n,
      const std::function<Status(size_t index, std::string_view value)>&
          on_found) const;

  /// Offers the leaves that `keys[0..n)` (sorted ascending) land in to the
  /// buffer pool as a read-ahead batch, without performing the probes.
  /// Entirely invisible to the demand path: the walk pins only resident
  /// internal nodes, counts no hits or misses, and leaves every LRU stamp
  /// untouched, so a caller that afterwards Get()s the keys in *any* order
  /// sees bit-identical I/O counts to not calling this at all — the only
  /// change is that the leaf reads happen here, batched and sorted
  /// (DESIGN.md §9). Best-effort: stops at the first non-resident internal
  /// node or when the hint window (readahead_pages) fills. No-op when
  /// prefetch is disabled.
  void HintLeavesForKeys(const uint64_t* keys, size_t n) const;

  const Stats& stats() const { return stats_; }
  PageId root() const { return root_; }
  PageId first_leaf() const { return first_leaf_; }
  BufferPool* pool() const { return pool_; }

  /// Forward cursor over leaf entries in key order.
  class Iterator {
   public:
    explicit Iterator(const BPlusTree* tree) : tree_(tree) {}

    /// Positions at the first entry with key >= `key`.
    Status Seek(uint64_t key);
    /// Forward-only reposition to the first entry with key >= `key`,
    /// assuming `key` is >= the current position. Stays on the current
    /// leaf when possible (sequential merge-join behaviour), re-descends
    /// from the root only when the target lies beyond this leaf. A cursor
    /// already past the end stays invalid.
    Status SeekForward(uint64_t key);
    Status SeekToFirst();
    /// Advances; `valid()` turns false past the last entry.
    Status Next();

    /// Seek(key) for a scan that will stop at `end_key` (inclusive): the
    /// iterator learns the upcoming leaves from the internal nodes (exact
    /// page identities, never guesses) and offers them to the buffer pool
    /// as read-ahead while the scan walks the leaf chain. `fan` caps how
    /// many leaves ahead each hint reaches (0 == the pool's
    /// readahead_pages); callers whose per-entry work touches many other
    /// pages pass a small fan so read-ahead never alters eviction
    /// (DESIGN.md §9). Identical to Seek() when prefetch is disabled.
    Status SeekRange(uint64_t key, uint64_t end_key, uint32_t fan = 0);
    /// Seek(key) that also offers the leaves of `upcoming[0..n)` (sorted
    /// ascending, all >= key) as read-ahead during the descent.
    Status SeekHinted(uint64_t key, const uint64_t* upcoming, size_t n);
    /// SeekForward(key) whose re-descents hint `upcoming` like SeekHinted.
    Status SeekForwardHinted(uint64_t key, const uint64_t* upcoming,
                             size_t n);

    bool valid() const { return valid_; }
    uint64_t key() const;
    std::string_view value() const;

   private:
    Status SkipDeletedForward();
    /// Chain-walk hook of a SeekRange scan: hints the window after `next`
    /// and notices when the precomputed leaf list goes stale.
    void MaybeHintChain(PageId next);
    /// Recomputes the upcoming-leaf list from the internal level for the
    /// (just loaded, non-empty) current leaf, then hints the first window.
    Status RefillRangeHints();

    const BPlusTree* tree_;
    PageGuard guard_;
    uint16_t slot_ = 0;
    bool valid_ = false;

    // SeekRange state (inert unless range_mode_).
    bool range_mode_ = false;
    bool refill_pending_ = false;
    uint64_t end_key_ = 0;
    uint32_t fan_ = 0;
    std::vector<PageId> upcoming_leaves_;
    size_t upcoming_pos_ = 0;
  };

  Iterator NewIterator() const { return Iterator(this); }

 private:
  friend class Iterator;

  // Internal node layout:
  //   aux == kInternalMarker
  //   u16 count      @ 8
  //   u32 leftmost   @ 12
  //   entries        @ 16: count * (u64 key, u32 child)
  // Subtree `child[i]` holds keys >= key[i]; `leftmost` holds keys < key[0].
  static constexpr uint32_t kInternalMarker = 0x1e7e4a11;
  static constexpr uint32_t kLeafMarker = 0x1eafbeef;
  static constexpr uint32_t kInternalHeader = 16;
  static constexpr uint32_t kInternalEntrySize = 12;
  static constexpr uint32_t kInternalCapacity =
      (kPageSize - kInternalHeader) / kInternalEntrySize;

  struct PathEntry {
    PageId pid;
    uint16_t child_index;  // index into (leftmost, entries...) == entry idx+1
  };

  static uint64_t LeafKeyAt(const SlottedPage& sp, uint16_t slot);
  static std::string_view LeafValueAt(const SlottedPage& sp, uint16_t slot);
  /// First slot with key >= `key` (among live slots).
  static uint16_t LeafLowerBound(const SlottedPage& sp, uint64_t key);

  static uint16_t InternalCount(const Page& p);
  static void SetInternalCount(Page* p, uint16_t n);
  static PageId InternalChild(const Page& p, uint16_t index);  // 0 = leftmost
  static uint64_t InternalKey(const Page& p, uint16_t entry);
  static void InternalSet(Page* p, uint16_t entry, uint64_t key, PageId child);
  static void SetLeftmost(Page* p, PageId child);
  /// Child index to follow for `key`.
  static uint16_t InternalSearch(const Page& p, uint64_t key);

  Status DescendToLeaf(uint64_t key, PageGuard* leaf,
                       std::vector<PathEntry>* path) const;
  /// DescendToLeaf that, at the last internal level, offers the target
  /// leaf plus the leaves holding `upcoming[0..n)` (sorted, >= key) as one
  /// read-ahead batch. Falls back to a plain descent when prefetch is off.
  Status DescendToLeafProbe(uint64_t key, const uint64_t* upcoming, size_t n,
                            PageGuard* leaf) const;
  /// DescendToLeafProbe for a range scan: collects into `siblings` every
  /// later child of the last internal node whose key range intersects
  /// [key, end_key] (uncapped — the scan consumes them window by window)
  /// and hints the first `fan`-leaf window.
  Status DescendToLeafRange(uint64_t key, uint64_t end_key, uint32_t fan,
                            std::vector<PageId>* siblings,
                            PageGuard* leaf) const;
  Status InsertIntoParent(std::vector<PathEntry>* path, uint64_t sep_key,
                          PageId new_child);
  Status SplitLeafAndInsert(PageGuard* leaf, uint64_t key,
                            std::string_view value,
                            std::vector<PathEntry>* path);

  BufferPool* pool_ = nullptr;
  PageId root_ = kInvalidPageId;
  PageId first_leaf_ = kInvalidPageId;
  Stats stats_;
};

}  // namespace objrep

#endif  // OBJREP_ACCESS_BTREE_H_
