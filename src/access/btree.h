// B+-tree keyed on uint64 with variable-length values.
//
// This is the primary structure of ParentRel, ChildRel and ClusterRel in
// the paper ("structured as B-trees on OID" / "on cluster#"), so it carries
// most of the study's I/O. Leaves are slotted pages whose slot arrays are
// kept in key order and chained for range scans; internal nodes are packed
// (key, child) arrays. Relations are bulk loaded once per experiment;
// incremental insert/delete exist for library completeness and for the
// cache-free temporaries in tests.
#ifndef OBJREP_ACCESS_BTREE_H_
#define OBJREP_ACCESS_BTREE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "access/slotted_page.h"
#include "storage/buffer_pool.h"
#include "util/status.h"

namespace objrep {

class BPlusTree {
 public:
  /// One (key, value) pair for bulk loading.
  struct Entry {
    uint64_t key;
    std::string value;
  };

  /// Shape statistics (filled by bulk load; maintained approximately by
  /// incremental inserts).
  struct Stats {
    uint32_t height = 0;       // 1 == root is a leaf
    uint32_t leaf_pages = 0;
    uint32_t internal_pages = 0;
    uint64_t num_entries = 0;
  };

  BPlusTree() = default;

  /// Creates an empty tree (a single empty leaf).
  static Status Create(BufferPool* pool, BPlusTree* out);

  /// Builds a tree from entries sorted by strictly increasing key.
  /// `fill_factor` in (0, 1] bounds how full each leaf is packed.
  static Status BulkLoad(BufferPool* pool, const std::vector<Entry>& entries,
                         double fill_factor, BPlusTree* out);

  /// Point lookup. NotFound if absent.
  Status Get(uint64_t key, std::string* value) const;

  /// Inserts a new key. InvalidArgument if the key already exists.
  Status Insert(uint64_t key, std::string_view value);

  /// Overwrites the value of an existing key with a same-length value.
  Status UpdateInPlace(uint64_t key, std::string_view value);

  /// Removes a key (lazy: no page merging; space reclaimed on page rebuild).
  Status Delete(uint64_t key);

  const Stats& stats() const { return stats_; }
  PageId root() const { return root_; }
  PageId first_leaf() const { return first_leaf_; }

  /// Forward cursor over leaf entries in key order.
  class Iterator {
   public:
    explicit Iterator(const BPlusTree* tree) : tree_(tree) {}

    /// Positions at the first entry with key >= `key`.
    Status Seek(uint64_t key);
    /// Forward-only reposition to the first entry with key >= `key`,
    /// assuming `key` is >= the current position. Stays on the current
    /// leaf when possible (sequential merge-join behaviour), re-descends
    /// from the root only when the target lies beyond this leaf. A cursor
    /// already past the end stays invalid.
    Status SeekForward(uint64_t key);
    Status SeekToFirst();
    /// Advances; `valid()` turns false past the last entry.
    Status Next();

    bool valid() const { return valid_; }
    uint64_t key() const;
    std::string_view value() const;

   private:
    Status SkipDeletedForward();

    const BPlusTree* tree_;
    PageGuard guard_;
    uint16_t slot_ = 0;
    bool valid_ = false;
  };

  Iterator NewIterator() const { return Iterator(this); }

 private:
  friend class Iterator;

  // Internal node layout:
  //   aux == kInternalMarker
  //   u16 count      @ 8
  //   u32 leftmost   @ 12
  //   entries        @ 16: count * (u64 key, u32 child)
  // Subtree `child[i]` holds keys >= key[i]; `leftmost` holds keys < key[0].
  static constexpr uint32_t kInternalMarker = 0x1e7e4a11;
  static constexpr uint32_t kLeafMarker = 0x1eafbeef;
  static constexpr uint32_t kInternalHeader = 16;
  static constexpr uint32_t kInternalEntrySize = 12;
  static constexpr uint32_t kInternalCapacity =
      (kPageSize - kInternalHeader) / kInternalEntrySize;

  struct PathEntry {
    PageId pid;
    uint16_t child_index;  // index into (leftmost, entries...) == entry idx+1
  };

  static uint64_t LeafKeyAt(const SlottedPage& sp, uint16_t slot);
  static std::string_view LeafValueAt(const SlottedPage& sp, uint16_t slot);
  /// First slot with key >= `key` (among live slots).
  static uint16_t LeafLowerBound(const SlottedPage& sp, uint64_t key);

  static uint16_t InternalCount(const Page& p);
  static void SetInternalCount(Page* p, uint16_t n);
  static PageId InternalChild(const Page& p, uint16_t index);  // 0 = leftmost
  static uint64_t InternalKey(const Page& p, uint16_t entry);
  static void InternalSet(Page* p, uint16_t entry, uint64_t key, PageId child);
  static void SetLeftmost(Page* p, PageId child);
  /// Child index to follow for `key`.
  static uint16_t InternalSearch(const Page& p, uint64_t key);

  Status DescendToLeaf(uint64_t key, PageGuard* leaf,
                       std::vector<PathEntry>* path) const;
  Status InsertIntoParent(std::vector<PathEntry>* path, uint64_t sep_key,
                          PageId new_child);
  Status SplitLeafAndInsert(PageGuard* leaf, uint64_t key,
                            std::string_view value,
                            std::vector<PathEntry>* path);

  BufferPool* pool_ = nullptr;
  PageId root_ = kInvalidPageId;
  PageId first_leaf_ = kInvalidPageId;
  Stats stats_;
};

}  // namespace objrep

#endif  // OBJREP_ACCESS_BTREE_H_
