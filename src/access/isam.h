// Static ISAM index: u64 key -> u64 payload.
//
// The paper keeps the index on ClusterRel.OID "as an isam structure"
// because the clustered relation sees no inserts or deletes during a run.
// The structure is a packed, immutable multi-level index built once from
// sorted pairs; lookups descend height pages (upper levels are hot in the
// buffer pool, so a probe typically costs one leaf I/O).
#ifndef OBJREP_ACCESS_ISAM_H_
#define OBJREP_ACCESS_ISAM_H_

#include <cstdint>
#include <vector>

#include "storage/buffer_pool.h"
#include "util/status.h"

namespace objrep {

class IsamIndex {
 public:
  struct Entry {
    uint64_t key;
    uint64_t payload;
  };

  IsamIndex() = default;

  /// Builds the index from entries sorted by strictly increasing key.
  /// `entry_stride` is the on-page bytes per entry (>= 16). The INGRES
  /// isam the paper used keys on a char-encoded OID plus a TID and
  /// per-entry overhead — around 32 bytes per entry — so the index is a
  /// substantial on-disk object that competes for the 100-page buffer;
  /// the default preserves that behaviour (DESIGN.md §2).
  static Status Build(BufferPool* pool, const std::vector<Entry>& entries,
                      IsamIndex* out, uint32_t entry_stride = 32);

  /// Point lookup; NotFound if absent.
  Status Lookup(uint64_t key, uint64_t* payload) const;

  uint32_t height() const { return height_; }
  uint32_t leaf_pages() const { return leaf_pages_; }
  uint32_t index_pages() const { return index_pages_; }

 private:
  // Page layout (both levels):
  //   u16 count @ 0, entries @ 8: count * entry_stride bytes, of which the
  //   first 16 are (u64 key, u64 value) and the rest is INGRES-style
  //   overhead padding.
  // In index pages the value is a child PageId widened to u64; entry i
  // covers keys >= key[i] (entry 0's key is the level's minimum).
  static constexpr uint32_t kHeader = 8;

  uint16_t Count(const Page& p) const;
  Entry At(const Page& p, uint16_t i) const;
  /// Index of the last entry with key <= `key`, or count if key < all.
  uint16_t UpperBound(const Page& p, uint64_t key) const;

  BufferPool* pool_ = nullptr;
  PageId root_ = kInvalidPageId;
  uint32_t height_ = 0;
  uint32_t leaf_pages_ = 0;
  uint32_t index_pages_ = 0;
  uint32_t entry_stride_ = 32;
};

}  // namespace objrep

#endif  // OBJREP_ACCESS_ISAM_H_
