#include "access/secondary_index.h"

#include <algorithm>

namespace objrep {

Status SecondaryIndex::Build(BufferPool* pool, std::vector<Entry> entries,
                             SecondaryIndex* out, double fill_factor) {
  std::vector<BPlusTree::Entry> tree_entries;
  tree_entries.reserve(entries.size());
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              return CompositeKey(a.attr_value, a.primary_key) <
                     CompositeKey(b.attr_value, b.primary_key);
            });
  for (const Entry& e : entries) {
    tree_entries.push_back(
        BPlusTree::Entry{CompositeKey(e.attr_value, e.primary_key), ""});
  }
  return BPlusTree::BulkLoad(pool, tree_entries, fill_factor, &out->tree_);
}

Status SecondaryIndex::LookupEqual(int32_t value,
                                   std::vector<uint32_t>* keys) const {
  return LookupRange(value, value, keys);
}

Status SecondaryIndex::LookupRange(int32_t lo, int32_t hi,
                                   std::vector<uint32_t>* keys) const {
  keys->clear();
  if (lo > hi) return Status::OK();
  BPlusTree::Iterator it = tree_.NewIterator();
  OBJREP_RETURN_NOT_OK(it.Seek(CompositeKey(lo, 0)));
  const uint64_t end = CompositeKey(hi, 0xffffffffu);
  while (it.valid() && it.key() <= end) {
    keys->push_back(static_cast<uint32_t>(it.key() & 0xffffffffu));
    OBJREP_RETURN_NOT_OK(it.Next());
  }
  return Status::OK();
}

Status SecondaryIndex::OnUpdate(int32_t old_value, int32_t new_value,
                                uint32_t primary_key) {
  if (old_value == new_value) return Status::OK();
  OBJREP_RETURN_NOT_OK(tree_.Delete(CompositeKey(old_value, primary_key)));
  return tree_.Insert(CompositeKey(new_value, primary_key), "");
}

}  // namespace objrep
