#include "access/heap_file.h"

namespace objrep {

Status HeapFile::Create(BufferPool* pool, HeapFile* out) {
  PageGuard guard;
  OBJREP_RETURN_NOT_OK(pool->NewPage(&guard));
  SlottedPage sp(guard.page());
  sp.Init();
  guard.MarkDirty();
  *out = HeapFile(pool, guard.page_id(), guard.page_id(), 1);
  return Status::OK();
}

HeapFile HeapFile::Open(BufferPool* pool, PageId first_page, PageId last_page,
                        uint32_t num_pages) {
  return HeapFile(pool, first_page, last_page, num_pages);
}

Status HeapFile::Append(std::string_view rec, Rid* rid) {
  PageGuard guard;
  OBJREP_RETURN_NOT_OK(pool_->FetchPage(last_page_, &guard));
  SlottedPage sp(guard.page());
  uint16_t slot = sp.Insert(rec);
  if (slot != SlottedPage::kInvalidSlot) {
    guard.MarkDirty();
    if (rid != nullptr) *rid = Rid{last_page_, slot};
    return Status::OK();
  }
  // Tail page full: extend the chain.
  PageGuard fresh;
  OBJREP_RETURN_NOT_OK(pool_->NewPage(&fresh));
  SlottedPage nsp(fresh.page());
  nsp.Init();
  slot = nsp.Insert(rec);
  if (slot == SlottedPage::kInvalidSlot) {
    return Status::NoSpace("record larger than a page");
  }
  fresh.MarkDirty();
  sp.set_next_page(fresh.page_id());
  guard.MarkDirty();
  last_page_ = fresh.page_id();
  ++num_pages_;
  if (rid != nullptr) *rid = Rid{last_page_, slot};
  return Status::OK();
}

Status HeapFile::Get(const Rid& rid, std::string* out) const {
  PageGuard guard;
  OBJREP_RETURN_NOT_OK(pool_->FetchPage(rid.page_id, &guard));
  SlottedPage sp(guard.page());
  std::string_view rec = sp.Get(rid.slot);
  if (rec.empty() && sp.IsDeleted(rid.slot)) {
    return Status::NotFound("record deleted");
  }
  out->assign(rec);
  return Status::OK();
}

Status HeapFile::UpdateInPlace(const Rid& rid, std::string_view rec) {
  PageGuard guard;
  OBJREP_RETURN_NOT_OK(pool_->FetchPage(rid.page_id, &guard));
  SlottedPage sp(guard.page());
  if (!sp.UpdateInPlace(rid.slot, rec)) {
    return Status::InvalidArgument("in-place update size mismatch");
  }
  guard.MarkDirty();
  return Status::OK();
}

HeapFile::Iterator::Iterator(BufferPool* pool, PageId first_page)
    : pool_(pool), current_pid_(first_page) {
  Status s = LoadPage(first_page);
  if (s.ok()) {
    s = Advance();
  }
  valid_ = s.ok() && valid_;
}

Status HeapFile::Iterator::LoadPage(PageId pid) {
  OBJREP_RETURN_NOT_OK(pool_->FetchPage(pid, &guard_));
  current_pid_ = pid;
  slot_ = 0;
  SlottedPage sp(guard_.page());
  num_slots_ = sp.num_slots();
  started_ = false;
  return Status::OK();
}

Status HeapFile::Iterator::Advance() {
  for (;;) {
    SlottedPage sp(guard_.page());
    uint16_t next_slot = started_ ? static_cast<uint16_t>(slot_ + 1) : 0;
    while (next_slot < num_slots_ && sp.IsDeleted(next_slot)) {
      ++next_slot;
    }
    if (next_slot < num_slots_) {
      slot_ = next_slot;
      started_ = true;
      rec_ = sp.Get(slot_);
      valid_ = true;
      return Status::OK();
    }
    PageId next = sp.next_page();
    if (next == kInvalidPageId) {
      valid_ = false;
      guard_.Release();
      return Status::OK();
    }
    OBJREP_RETURN_NOT_OK(LoadPage(next));
  }
}

Status HeapFile::Iterator::Next() {
  if (!valid_) return Status::OK();
  return Advance();
}

}  // namespace objrep
