// Slotted-page layout for variable-length records.
//
// Layout (offsets in bytes):
//   [0..4)   next_page  (PageId; chain pointer for heap files / leaf chains)
//   [4..8)   aux        (u32 scratch word for the owning access method)
//   [8..10)  num_slots  (u16)
//   [10..12) free_end   (u16; cell data grows down from kPageSize to here)
//   [12..)   slot array (u16 offset, u16 len per slot), grows up
//
// A deleted slot has len == kDeletedLen; its space is not reclaimed until
// Compact() (the paper's environment has no deletes inside a run, so the
// simple scheme is faithful and cheap).
#ifndef OBJREP_ACCESS_SLOTTED_PAGE_H_
#define OBJREP_ACCESS_SLOTTED_PAGE_H_

#include <cstdint>
#include <cstring>
#include <string_view>

#include "storage/page.h"
#include "util/macros.h"

namespace objrep {

/// A view over a Page imposing the slotted layout. Does not own the page.
class SlottedPage {
 public:
  static constexpr uint16_t kInvalidSlot = 0xffff;
  static constexpr uint16_t kDeletedLen = 0xffff;

  explicit SlottedPage(Page* page) : page_(page) {}

  /// Formats a fresh page.
  void Init() {
    set_next_page(kInvalidPageId);
    set_aux(0);
    set_num_slots(0);
    set_free_end(kPageSize);
  }

  PageId next_page() const { return Load32(0); }
  void set_next_page(PageId pid) { Store32(0, pid); }

  uint32_t aux() const { return Load32(4); }
  void set_aux(uint32_t v) { Store32(4, v); }

  uint16_t num_slots() const { return Load16(8); }

  /// Bytes available for one more record (including its slot entry).
  uint32_t FreeSpace() const {
    uint32_t slots_end = kHeaderSize + 4u * num_slots();
    uint32_t fe = free_end();
    if (fe < slots_end + 4) return 0;
    return fe - slots_end - 4;  // reserve 4 bytes for the new slot
  }

  /// Appends a record; returns its slot index or kInvalidSlot if full.
  uint16_t Insert(std::string_view rec) {
    if (rec.size() > FreeSpace()) return kInvalidSlot;
    uint16_t n = num_slots();
    uint16_t fe = static_cast<uint16_t>(free_end() - rec.size());
    std::memcpy(page_->data + fe, rec.data(), rec.size());
    SetSlot(n, fe, static_cast<uint16_t>(rec.size()));
    set_num_slots(static_cast<uint16_t>(n + 1));
    set_free_end(fe);
    return n;
  }

  /// Inserts a record so that it occupies slot index `pos`, shifting later
  /// slots up by one. Lets an access method keep the slot array in key
  /// order (B-tree leaves). Returns false if the page is full.
  bool InsertAt(uint16_t pos, std::string_view rec) {
    uint16_t n = num_slots();
    OBJREP_CHECK(pos <= n);
    if (rec.size() > FreeSpace()) return false;
    uint16_t fe = static_cast<uint16_t>(free_end() - rec.size());
    std::memcpy(page_->data + fe, rec.data(), rec.size());
    // Shift slot entries [pos, n) up by one position.
    for (uint16_t i = n; i > pos; --i) {
      uint16_t off, len;
      GetSlot(static_cast<uint16_t>(i - 1), &off, &len);
      SetSlot(i, off, len);
    }
    SetSlot(pos, fe, static_cast<uint16_t>(rec.size()));
    set_num_slots(static_cast<uint16_t>(n + 1));
    set_free_end(fe);
    return true;
  }

  /// Removes slot `pos` entirely, shifting later slots down (cell space is
  /// reclaimed lazily by Compact()).
  void RemoveAt(uint16_t pos) {
    uint16_t n = num_slots();
    OBJREP_CHECK(pos < n);
    for (uint16_t i = pos; i + 1 < n; ++i) {
      uint16_t off, len;
      GetSlot(static_cast<uint16_t>(i + 1), &off, &len);
      SetSlot(i, off, len);
    }
    set_num_slots(static_cast<uint16_t>(n - 1));
  }

  /// Reads the record in `slot`; returns empty view if the slot is deleted.
  std::string_view Get(uint16_t slot) const {
    OBJREP_CHECK(slot < num_slots());
    uint16_t off, len;
    GetSlot(slot, &off, &len);
    if (len == kDeletedLen) return {};
    return std::string_view(page_->data + off, len);
  }

  bool IsDeleted(uint16_t slot) const {
    uint16_t off, len;
    GetSlot(slot, &off, &len);
    return len == kDeletedLen;
  }

  /// Overwrites the record in place. The new record must have the same
  /// length (the paper's updates modify fixed-width ret fields in place;
  /// blank-compressed fields keep their stored size when the padding does).
  bool UpdateInPlace(uint16_t slot, std::string_view rec) {
    OBJREP_CHECK(slot < num_slots());
    uint16_t off, len;
    GetSlot(slot, &off, &len);
    if (len == kDeletedLen || rec.size() != len) return false;
    std::memcpy(page_->data + off, rec.data(), rec.size());
    return true;
  }

  /// Marks the slot deleted (space reclaimed only by Compact()).
  void Delete(uint16_t slot) {
    OBJREP_CHECK(slot < num_slots());
    uint16_t off, len;
    GetSlot(slot, &off, &len);
    SetSlot(slot, off, kDeletedLen);
  }

  /// Rewrites live records contiguously, keeping slot numbering compact.
  /// Returns the number of live records.
  uint16_t Compact() {
    char tmp[kPageSize];
    uint16_t live = 0;
    uint16_t write_end = kPageSize;
    // First pass: copy live records into a scratch image.
    struct Entry { uint16_t off; uint16_t len; };
    Entry entries[kPageSize / 4];
    uint16_t n = num_slots();
    for (uint16_t i = 0; i < n; ++i) {
      uint16_t off, len;
      GetSlot(i, &off, &len);
      if (len == kDeletedLen) continue;
      write_end = static_cast<uint16_t>(write_end - len);
      std::memcpy(tmp + write_end, page_->data + off, len);
      entries[live] = Entry{write_end, len};
      ++live;
    }
    std::memcpy(page_->data + write_end, tmp + write_end,
                kPageSize - write_end);
    for (uint16_t i = 0; i < live; ++i) {
      SetSlot(i, entries[i].off, entries[i].len);
    }
    set_num_slots(live);
    set_free_end(write_end);
    return live;
  }

 private:
  static constexpr uint32_t kHeaderSize = 12;

  uint16_t free_end() const { return Load16(10); }
  void set_free_end(uint16_t v) { Store16(10, v); }
  void set_num_slots(uint16_t v) { Store16(8, v); }

  void GetSlot(uint16_t slot, uint16_t* off, uint16_t* len) const {
    uint32_t base = kHeaderSize + 4u * slot;
    *off = Load16(base);
    *len = Load16(base + 2);
  }
  void SetSlot(uint16_t slot, uint16_t off, uint16_t len) {
    uint32_t base = kHeaderSize + 4u * slot;
    Store16(base, off);
    Store16(base + 2, len);
  }

  uint16_t Load16(uint32_t off) const {
    uint16_t v;
    std::memcpy(&v, page_->data + off, 2);
    return v;
  }
  void Store16(uint32_t off, uint16_t v) {
    std::memcpy(page_->data + off, &v, 2);
  }
  uint32_t Load32(uint32_t off) const {
    uint32_t v;
    std::memcpy(&v, page_->data + off, 4);
    return v;
  }
  void Store32(uint32_t off, uint32_t v) {
    std::memcpy(page_->data + off, &v, 4);
  }

  Page* page_;
};

}  // namespace objrep

#endif  // OBJREP_ACCESS_SLOTTED_PAGE_H_
