// Table-lock footprint of one query, shared by every execution front end
// (the in-process ConcurrentRunner and the network service): retrieves
// hold S on every relation their strategy may read subobjects from (all
// child relations, plus ClusterRel when built); updates hold X on the
// relations containing their targets (plus ClusterRel, where clustering
// strategies place the subobjects). ParentRel and the join index are
// never written, so they need no lock. ScopedLockSet sorts and dedups,
// giving the ordered-acquisition deadlock freedom of DESIGN.md §8.
#ifndef OBJREP_EXEC_QUERY_LOCKS_H_
#define OBJREP_EXEC_QUERY_LOCKS_H_

#include <utility>
#include <vector>

#include "exec/lock_manager.h"
#include "objstore/database.h"
#include "objstore/workload.h"

namespace objrep {

inline std::vector<std::pair<LockId, LockMode>> LockRequestsFor(
    const ComplexDatabase& db, const Query& q) {
  std::vector<std::pair<LockId, LockMode>> reqs;
  if (q.kind == Query::Kind::kRetrieve) {
    reqs.reserve(db.child_rels.size() + 1);
    for (const Table* t : db.child_rels) {
      reqs.emplace_back(t->rel_id(), LockMode::kShared);
    }
    if (db.cluster_rel != nullptr) {
      reqs.emplace_back(db.cluster_rel->rel_id(), LockMode::kShared);
    }
  } else {
    reqs.reserve(q.update_targets.size() + 1);
    for (const Oid& oid : q.update_targets) {
      reqs.emplace_back(oid.rel, LockMode::kExclusive);
    }
    if (db.cluster_rel != nullptr) {
      reqs.emplace_back(db.cluster_rel->rel_id(), LockMode::kExclusive);
    }
  }
  return reqs;
}

}  // namespace objrep

#endif  // OBJREP_EXEC_QUERY_LOCKS_H_
