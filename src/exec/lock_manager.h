// Table-level shared/exclusive lock manager.
//
// Granularity follows the paper's workload: retrieves read whole relations
// through indexes (S), updates modify tuples of named relations in place
// (X). The conflict matrix is the classical one — S is compatible with S;
// X is compatible with nothing.
//
// Deadlock freedom by ordered acquisition: a session acquires all locks
// for one query up front, in ascending LockId order, holds them for the
// query, and releases them together (strict per-query 2PL). Because no
// session ever waits while holding a higher-ordered lock, the waits-for
// graph is acyclic. ScopedLockSet encodes this discipline.
//
// Writer preference: a pending X blocks new S grants on that resource, so
// updaters are not starved by a stream of overlapping retrieves.
#ifndef OBJREP_EXEC_LOCK_MANAGER_H_
#define OBJREP_EXEC_LOCK_MANAGER_H_

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace objrep {

using LockId = uint64_t;

enum class LockMode { kShared, kExclusive };

class LockManager {
 public:
  LockManager() = default;
  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Blocks until the lock is granted.
  void Acquire(LockId id, LockMode mode);

  /// Non-blocking variant; returns whether the lock was granted.
  bool TryAcquire(LockId id, LockMode mode);

  /// Releases a previously granted lock.
  void Release(LockId id, LockMode mode);

  /// Snapshot for tests/introspection: current holders of `id`.
  struct HolderCounts {
    uint32_t readers = 0;
    bool writer = false;
    uint32_t waiting_writers = 0;
  };
  HolderCounts Holders(LockId id) const;

 private:
  struct LockState {
    uint32_t readers = 0;
    bool writer = false;
    uint32_t waiting_writers = 0;
  };

  bool GrantableLocked(const LockState& s, LockMode mode) const {
    if (mode == LockMode::kExclusive) return s.readers == 0 && !s.writer;
    return !s.writer && s.waiting_writers == 0;
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<LockId, LockState> table_;  // guarded by mu_
};

/// One query's lock set: deduplicated (X absorbs S on the same id), sorted
/// ascending, acquired in order on construction, released on destruction.
class ScopedLockSet {
 public:
  ScopedLockSet() = default;
  ScopedLockSet(LockManager* lm,
                std::vector<std::pair<LockId, LockMode>> requests);
  ~ScopedLockSet() { ReleaseAll(); }

  ScopedLockSet(const ScopedLockSet&) = delete;
  ScopedLockSet& operator=(const ScopedLockSet&) = delete;
  ScopedLockSet(ScopedLockSet&& other) noexcept { *this = std::move(other); }
  ScopedLockSet& operator=(ScopedLockSet&& other) noexcept {
    if (this != &other) {
      ReleaseAll();
      lm_ = other.lm_;
      held_ = std::move(other.held_);
      other.lm_ = nullptr;
      other.held_.clear();
    }
    return *this;
  }

  /// Explicit early release (end of query).
  void ReleaseAll();

  size_t size() const { return held_.size(); }

 private:
  LockManager* lm_ = nullptr;
  std::vector<std::pair<LockId, LockMode>> held_;
};

}  // namespace objrep

#endif  // OBJREP_EXEC_LOCK_MANAGER_H_
