// The ThreadPool moved to util/thread_pool.h so the BufferPool's prefetch
// workers (storage layer, below exec) can use it; this header remains for
// the execution engine's includes.
#ifndef OBJREP_EXEC_THREAD_POOL_H_
#define OBJREP_EXEC_THREAD_POOL_H_

#include "util/thread_pool.h"  // IWYU pragma: export

#endif  // OBJREP_EXEC_THREAD_POOL_H_
