#include "exec/thread_pool.h"

namespace objrep {

ThreadPool::ThreadPool(uint32_t num_threads) {
  OBJREP_CHECK(num_threads > 0);
  workers_.reserve(num_threads);
  for (uint32_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> l(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> l(mu_);
      cv_.wait(l, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace objrep
