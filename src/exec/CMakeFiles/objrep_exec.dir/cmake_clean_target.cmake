file(REMOVE_RECURSE
  "libobjrep_exec.a"
)
