file(REMOVE_RECURSE
  "CMakeFiles/objrep_exec.dir/concurrent_runner.cc.o"
  "CMakeFiles/objrep_exec.dir/concurrent_runner.cc.o.d"
  "CMakeFiles/objrep_exec.dir/lock_manager.cc.o"
  "CMakeFiles/objrep_exec.dir/lock_manager.cc.o.d"
  "libobjrep_exec.a"
  "libobjrep_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/objrep_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
