# Empty dependencies file for objrep_exec.
# This may be replaced when dependencies are built.
