#include "exec/lock_manager.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace objrep {

namespace {

// Cumulative registry mirrors (DESIGN.md §11).
struct LockMetrics {
  Counter* acquisitions =
      MetricsRegistry::Global().GetCounter("lock.acquisitions");
  Counter* waits = MetricsRegistry::Global().GetCounter("lock.waits");
  Histogram* wait_us =
      MetricsRegistry::Global().GetHistogram("lock.wait_us");
};

LockMetrics& Metrics() {
  static LockMetrics* m = new LockMetrics();
  return *m;
}

}  // namespace

void LockManager::Acquire(LockId id, LockMode mode) {
  std::unique_lock<std::mutex> l(mu_);
  Metrics().acquisitions->Add(1);
  // A wait is counted (and its duration recorded) only when the lock is
  // not immediately grantable — the uncontended path stays one map lookup.
  bool blocked = !GrantableLocked(table_[id], mode);
  uint64_t wait_start = blocked ? Trace::NowMicros() : 0;
  // Re-look up the entry on every wakeup: Release() erases fully-free
  // entries, so a reference cached across the wait could dangle. A waiting
  // writer pins its entry via waiting_writers, but a blocked *reader*
  // registers nothing, and its entry can be erased (and re-created) while
  // it sleeps.
  if (mode == LockMode::kExclusive) {
    ++table_[id].waiting_writers;
    cv_.wait(l, [&] {
      const LockState& s = table_[id];
      return s.readers == 0 && !s.writer;
    });
    LockState& s = table_[id];
    --s.waiting_writers;
    s.writer = true;
  } else {
    cv_.wait(l,
             [&] { return GrantableLocked(table_[id], LockMode::kShared); });
    ++table_[id].readers;
  }
  if (blocked) {
    uint64_t waited = Trace::NowMicros() - wait_start;
    Metrics().waits->Add(1);
    Metrics().wait_us->Record(waited);
    Trace::Complete("lock_wait", "lock", wait_start, waited, "lock_id", id);
  }
}

bool LockManager::TryAcquire(LockId id, LockMode mode) {
  std::lock_guard<std::mutex> l(mu_);
  LockState& s = table_[id];
  if (!GrantableLocked(s, mode)) return false;
  if (mode == LockMode::kExclusive) {
    s.writer = true;
  } else {
    ++s.readers;
  }
  return true;
}

void LockManager::Release(LockId id, LockMode mode) {
  {
    std::lock_guard<std::mutex> l(mu_);
    auto it = table_.find(id);
    if (it == table_.end()) return;  // release of a never-granted lock
    LockState& s = it->second;
    if (mode == LockMode::kExclusive) {
      s.writer = false;
    } else if (s.readers > 0) {
      --s.readers;
    }
    if (s.readers == 0 && !s.writer && s.waiting_writers == 0) {
      table_.erase(it);
    }
  }
  // One release can unblock many readers or one writer; wake everyone and
  // let the predicates sort it out (the table is a handful of relations).
  cv_.notify_all();
}

LockManager::HolderCounts LockManager::Holders(LockId id) const {
  std::lock_guard<std::mutex> l(mu_);
  auto it = table_.find(id);
  HolderCounts out;
  if (it != table_.end()) {
    out.readers = it->second.readers;
    out.writer = it->second.writer;
    out.waiting_writers = it->second.waiting_writers;
  }
  return out;
}

ScopedLockSet::ScopedLockSet(
    LockManager* lm, std::vector<std::pair<LockId, LockMode>> requests)
    : lm_(lm) {
  // Sort ascending by id; within one id an exclusive request sorts first
  // and absorbs any shared request on the same id.
  std::sort(requests.begin(), requests.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second == LockMode::kExclusive &&
                     b.second == LockMode::kShared;
            });
  held_.reserve(requests.size());
  for (const auto& [id, mode] : requests) {
    if (!held_.empty() && held_.back().first == id) continue;  // deduped
    lm_->Acquire(id, mode);
    held_.emplace_back(id, mode);
  }
}

void ScopedLockSet::ReleaseAll() {
  if (lm_ == nullptr) return;
  for (auto it = held_.rbegin(); it != held_.rend(); ++it) {
    lm_->Release(it->first, it->second);
  }
  held_.clear();
  lm_ = nullptr;
}

}  // namespace objrep
