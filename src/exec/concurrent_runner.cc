#include "exec/concurrent_runner.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>

#include "exec/lock_manager.h"
#include "exec/query_locks.h"
#include "exec/thread_pool.h"
#include "mvcc/apply.h"
#include "mvcc/engine.h"
#include "obs/trace.h"
#include "util/random.h"

namespace objrep {

namespace {

using Clock = std::chrono::steady_clock;

double PercentileSorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  if (rank == 0) rank = 1;
  return sorted[std::min(rank - 1, sorted.size() - 1)];
}

/// Per-worker execution state and tallies (owned by exactly one thread;
/// aggregated by the caller after the join — no shared mutable state).
struct WorkerResult {
  Status status;
  uint32_t num_queries = 0;
  uint32_t num_retrieves = 0;
  uint32_t num_updates = 0;
  uint64_t result_count = 0;
  int64_t result_sum = 0;
  std::vector<double> latencies_us;
  std::vector<double> retrieve_latencies_us;
};

Status ExecuteOne(Strategy* strategy, ComplexDatabase* db, const Query& q,
                  WorkerResult* wr) {
  if (q.kind == Query::Kind::kRetrieve) {
    TraceSpan span("retrieve", "query");
    span.SetArg("num_top", q.num_top);
    RetrieveResult result;
    if (db->mvcc != nullptr) {
      OBJREP_RETURN_NOT_OK(mvcc::SnapshotRetrieve(strategy, db, q, &result));
    } else {
      OBJREP_RETURN_NOT_OK(strategy->ExecuteRetrieve(q, &result));
    }
    wr->result_count += result.values.size();
    for (int32_t v : result.values) wr->result_sum += v;
    ++wr->num_retrieves;
  } else {
    TraceSpan span("update", "query");
    span.SetArg("targets", q.update_targets.size());
    // One WAL transaction per update query; the worker already holds X
    // table locks, so wal_mu_ ranks below them (DESIGN.md §10 latch
    // order) and cannot deadlock against another worker's query.
    if (db->mvcc != nullptr) {
      // MVCC commit: version install + logical WAL record; base pages
      // stay frozen until the post-run fold.
      OBJREP_RETURN_NOT_OK(mvcc::MvccUpdate(db, q));
    } else if (db->pool->wal() != nullptr) {
      OBJREP_RETURN_NOT_OK(db->pool->BeginTxn());
      Status s = strategy->ExecuteUpdate(q);
      if (s.ok()) {
        s = db->pool->CommitTxn();
      } else {
        db->pool->AbortTxn();
      }
      OBJREP_RETURN_NOT_OK(s);
    } else {
      OBJREP_RETURN_NOT_OK(strategy->ExecuteUpdate(q));
    }
    ++wr->num_updates;
  }
  ++wr->num_queries;
  return Status::OK();
}

void RunWorker(Strategy* strategy, ComplexDatabase* db, LockManager* locks,
               const std::vector<const Query*>& slice,
               const ConcurrentRunOptions& options, uint32_t worker_index,
               WorkerResult* wr) {
  if (slice.empty()) return;
  Rng rng = Rng(options.seed).ForStream(worker_index);
  Clock::time_point deadline{};
  const bool timed = options.duration_seconds > 0;
  if (timed) {
    deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                  std::chrono::duration<double>(
                                      options.duration_seconds));
  }
  size_t next = 0;
  for (;;) {
    const Query* q;
    if (timed) {
      if (Clock::now() >= deadline) break;
      q = slice[rng.Uniform(slice.size())];
    } else {
      if (next >= slice.size()) break;
      q = slice[next++];
    }
    Clock::time_point t0 = Clock::now();
    if (db->mvcc != nullptr) {
      // Snapshot isolation replaces table locking entirely: retrieves
      // read the frozen base + version overlay, updates conflict only on
      // overlapping targets inside the version store.
      wr->status = ExecuteOne(strategy, db, *q, wr);
    } else {
      ScopedLockSet held(locks, LockRequestsFor(*db, *q));
      wr->status = ExecuteOne(strategy, db, *q, wr);
    }
    if (!wr->status.ok()) return;
    double us = std::chrono::duration<double, std::micro>(Clock::now() - t0)
                    .count();
    wr->latencies_us.push_back(us);
    if (q->kind == Query::Kind::kRetrieve) {
      wr->retrieve_latencies_us.push_back(us);
    }
  }
}

}  // namespace

LatencySummary SummarizeLatencies(std::vector<double>* samples_us) {
  LatencySummary s;
  if (samples_us->empty()) return s;
  std::sort(samples_us->begin(), samples_us->end());
  s.count = samples_us->size();
  double sum = 0;
  for (double v : *samples_us) sum += v;
  s.mean_us = sum / static_cast<double>(s.count);
  s.p50_us = PercentileSorted(*samples_us, 50);
  s.p95_us = PercentileSorted(*samples_us, 95);
  s.p99_us = PercentileSorted(*samples_us, 99);
  s.max_us = samples_us->back();
  return s;
}

Status RunConcurrentWorkload(StrategyKind kind,
                             const StrategyOptions& strategy_options,
                             ComplexDatabase* db,
                             const std::vector<Query>& queries,
                             const ConcurrentRunOptions& options,
                             ConcurrentRunResult* out) {
  *out = ConcurrentRunResult{};
  const uint32_t k = options.num_threads == 0 ? 1 : options.num_threads;
  out->num_threads = k;

  // One session (strategy instance) per worker, all over the shared db.
  std::vector<std::unique_ptr<Strategy>> sessions(k);
  for (uint32_t w = 0; w < k; ++w) {
    OBJREP_RETURN_NOT_OK(MakeStrategy(kind, db, strategy_options,
                                      &sessions[w]));
  }

  // Round-robin partition: query i -> worker i mod K, order preserved.
  std::vector<std::vector<const Query*>> slices(k);
  for (size_t i = 0; i < queries.size(); ++i) {
    slices[i % k].push_back(&queries[i]);
  }

  db->pool->ResetStats();
  if (db->cache != nullptr) db->cache->ResetStats();
  LockManager locks;
  std::vector<WorkerResult> results(k);
  IoCounters io_start = db->disk->counters();
  IoTagBreakdown tags_start = db->disk->breakdown();

  Clock::time_point wall0 = Clock::now();
  {
    ThreadPool pool(k);
    std::vector<std::future<void>> futures;
    futures.reserve(k);
    for (uint32_t w = 0; w < k; ++w) {
      futures.push_back(pool.Submit([&, w] {
        RunWorker(sessions[w].get(), db, &locks, slices[w], options, w,
                  &results[w]);
      }));
    }
    for (auto& f : futures) f.get();
  }
  out->wall_seconds =
      std::chrono::duration<double>(Clock::now() - wall0).count();

  uint64_t run_io = (db->disk->counters() - io_start).total();

  RunResult& r = out->combined;
  std::vector<double> all_lat, ret_lat;
  for (WorkerResult& wr : results) {
    OBJREP_RETURN_NOT_OK(wr.status);
    r.num_queries += wr.num_queries;
    r.num_retrieves += wr.num_retrieves;
    r.num_updates += wr.num_updates;
    r.result_count += wr.result_count;
    r.result_sum += wr.result_sum;
    all_lat.insert(all_lat.end(), wr.latencies_us.begin(),
                   wr.latencies_us.end());
    ret_lat.insert(ret_lat.end(), wr.retrieve_latencies_us.begin(),
                   wr.retrieve_latencies_us.end());
  }

  // Quiescent point: every worker has joined, so fold the committed
  // versions onto base pages. After this a plain scan (and the flush
  // below) observes every committed update. Skipped on worker error —
  // the aggregation loop above already returned, and after a crash the
  // pool needs recovery before it can run the fold's transaction.
  if (db->mvcc != nullptr) {
    OBJREP_RETURN_NOT_OK(mvcc::FoldMvcc(db));
  }

  // Deferred dirty pages are part of the run's I/O bill, as in the
  // sequential runner.
  IoCounters before_flush = db->disk->counters();
  OBJREP_RETURN_NOT_OK(db->pool->FlushAll());
  r.flush_io = (db->disk->counters() - before_flush).total();
  r.total_io = run_io + r.flush_io;
  r.io = db->disk->counters() - io_start;
  r.io_by_tag = db->disk->breakdown() - tags_start;
  if (db->cache != nullptr) r.cache_stats = db->cache->stats();

  out->queries_per_sec =
      out->wall_seconds > 0
          ? static_cast<double>(r.num_queries) / out->wall_seconds
          : 0;
  out->avg_io_per_query = r.AvgIoPerQuery();
  out->latency = SummarizeLatencies(&all_lat);
  out->retrieve_latency = SummarizeLatencies(&ret_lat);
  return Status::OK();
}

}  // namespace objrep
