// Multi-client workload runner: one shared ComplexDatabase, K worker
// sessions, table-level 2PL, race-free result aggregation.
//
// The paper measures a single query stream; this engine is the step the
// ROADMAP asks for — retrieves and updates racing against one database,
// which is what actually stresses DFSCACHE's I-lock invalidation (§3.3)
// and the update/retrieve mix of Figure 7. The yardstick grows from
// average I/O per query to throughput (queries/sec) and latency
// percentiles, while the aggregate I/O bill stays comparable to the
// sequential runner's.
//
// Determinism: the query stream is partitioned round-robin (query i goes
// to worker i mod K), each worker executes its slice in order, and each
// worker owns a deterministic Rng stream (Rng::ForStream). For a
// read-only stream the aggregated result_count/result_sum are therefore
// identical for every K — asserted per strategy by
// tests/concurrent_runner_test.cc. With updates in the mix the *set* of
// retrieved subobjects (result_count) is still invariant — updates modify
// values in place, never structure — but result_sum depends on the
// interleaving, as it would on any real server.
#ifndef OBJREP_EXEC_CONCURRENT_RUNNER_H_
#define OBJREP_EXEC_CONCURRENT_RUNNER_H_

#include <cstdint>
#include <vector>

#include "core/runner.h"
#include "core/strategy.h"
#include "objstore/workload.h"
#include "util/status.h"

namespace objrep {

/// Latency distribution over one run, microseconds.
struct LatencySummary {
  uint64_t count = 0;
  double mean_us = 0;
  double p50_us = 0;
  double p95_us = 0;
  double p99_us = 0;
  double max_us = 0;
};

/// Sorts `samples_us` in place and summarizes it. Percentiles use the
/// nearest-rank method; an empty sample set yields all zeros.
LatencySummary SummarizeLatencies(std::vector<double>* samples_us);

struct ConcurrentRunOptions {
  uint32_t num_threads = 1;
  /// 0 = one pass over the stream (result-deterministic). > 0 = each
  /// worker re-draws queries from its slice (via its Rng stream) until the
  /// deadline — the throughput-measurement mode.
  double duration_seconds = 0;
  /// Base seed for the per-worker Rng streams (duration mode only).
  uint64_t seed = 1;
};

struct ConcurrentRunResult {
  uint32_t num_threads = 1;

  /// Aggregated counters across workers. Per-query I/O attribution
  /// (retrieve_io/update_io/retrieve_cost) is meaningless when streams
  /// interleave on shared counters, so those fields stay zero; total_io
  /// and flush_io are exact for the whole run.
  RunResult combined;

  double wall_seconds = 0;       ///< worker phase only (excludes flush)
  double queries_per_sec = 0;
  double avg_io_per_query = 0;   ///< total_io / num_queries, the paper axis

  LatencySummary latency;           ///< all queries
  LatencySummary retrieve_latency;  ///< retrieves only
};

/// Runs `queries` under `kind` with `options.num_threads` worker sessions
/// sharing `db`. Each worker gets its own Strategy instance; queries take
/// table-level locks (retrieve: S on every child relation it may read,
/// plus ClusterRel; update: X on the target relations, plus ClusterRel).
/// Flushes dirty pages at the end, charged to combined.total_io, exactly
/// like the sequential RunWorkload.
Status RunConcurrentWorkload(StrategyKind kind,
                             const StrategyOptions& strategy_options,
                             ComplexDatabase* db,
                             const std::vector<Query>& queries,
                             const ConcurrentRunOptions& options,
                             ConcurrentRunResult* out);

}  // namespace objrep

#endif  // OBJREP_EXEC_CONCURRENT_RUNNER_H_
