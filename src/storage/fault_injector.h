// Deterministic fault injection for the simulated disk (DESIGN.md §10).
//
// Two failure modes, both seeded and replayable:
//
//  1. Rate faults: every physical read/write rolls a Bernoulli trial on a
//     seeded xoshiro stream and fails with Status::IOError at the
//     configured rate. Same seed + same I/O sequence = same faults.
//
//  2. Crash points: named program locations (the fixed registry in
//     fault_injector.cc) call MaybeCrash("name"). Arming a point makes its
//     Nth hit "crash" the volume: the call returns an error, the injector
//     enters the crashed state, and every subsequent disk I/O fails until
//     ClearCrash() — the software analogue of yanking the power cord.
//     Torn behavior is a property of the *site*, encoded in the point name:
//     DiskManager::WritePage honors `disk.write.torn` by transferring a
//     prefix of the page before the crash lands, and Wal::Sync honors
//     `wal.sync.torn` by making only part of the unsynced tail durable —
//     so a sweep over the registry exercises torn writes for free.
//
// Thread safety: `enabled_` / `crashed_` are atomics so the disabled fast
// path is one relaxed load; all mutable decision state (rng, armed point,
// hit counters) lives behind a mutex taken only when injection is enabled.
#ifndef OBJREP_STORAGE_FAULT_INJECTOR_H_
#define OBJREP_STORAGE_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/random.h"
#include "util/status.h"

namespace objrep {

/// Deterministic fault source owned by the DiskManager.
class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// All crash-point names a test sweep should iterate. The registry is a
  /// fixed table (fault_injector.cc), so sweeps cannot silently miss a
  /// point hidden behind a dropped static initializer.
  static const std::vector<std::string>& RegisteredCrashPoints();

  /// Enables seeded rate faults. Each rate applies independently to every
  /// physical read/write; 0 disables rolls but keeps crash machinery armed.
  void Configure(uint64_t seed, double read_fault_rate,
                 double write_fault_rate);

  /// Arms `point` (must be registered) to crash on its `hit`-th execution
  /// (1-based). Implicitly enables the injector. One point at a time.
  void ArmCrash(const std::string& point, uint32_t hit = 1);

  /// Disables everything: rate faults, armed crash, crashed state.
  void Reset();

  /// Clears only the crashed state + armed point — recovery's first step.
  /// Rate faults stay configured (a recovering system may fault again).
  void ClearCrash();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  bool crashed() const { return crashed_.load(std::memory_order_relaxed); }

  /// Hook for DiskManager::ReadPage(s)/WritePage. Returns non-OK when the
  /// volume is crashed or the rate roll fails; `n` pages roll `n` trials.
  Status OnRead(size_t n_pages);
  Status OnWrite();

  /// Crash-point hook. Returns OK when the point is not armed here (or is
  /// armed for a later hit); otherwise marks the volume crashed and
  /// returns the crash error. Sites with torn semantics perform their
  /// partial transfer before calling / upon seeing the error — see the
  /// header comment.
  Status MaybeCrash(const char* point);

  /// Times MaybeCrash(point) has executed while enabled (armed or not) —
  /// lets tests assert a sweep actually reached a point.
  uint64_t HitCount(const std::string& point) const;

  /// Name of the point whose crash fired ("" if none) — for reports.
  std::string CrashedAt() const;

  /// Total injected rate faults, for leak-sweep accounting.
  uint64_t injected_read_faults() const {
    return read_faults_.load(std::memory_order_relaxed);
  }
  uint64_t injected_write_faults() const {
    return write_faults_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<bool> crashed_{false};
  std::atomic<uint64_t> read_faults_{0};
  std::atomic<uint64_t> write_faults_{0};

  mutable std::mutex mu_;
  Rng rng_{0};                  // guarded by mu_
  double read_fault_rate_ = 0;  // guarded by mu_
  double write_fault_rate_ = 0;
  std::string armed_point_;  // empty = no armed crash
  uint32_t armed_hit_ = 0;
  std::string crashed_at_;
  std::vector<uint64_t> hits_;  // parallel to RegisteredCrashPoints()
};

}  // namespace objrep

#endif  // OBJREP_STORAGE_FAULT_INJECTOR_H_
