#include "storage/fault_injector.h"

#include <algorithm>

#include "obs/trace.h"
#include "util/macros.h"

namespace objrep {

namespace {

// The crash-point registry. A fixed table, not distributed registration:
// every site that calls MaybeCrash must name an entry here (checked
// fatally), and every entry must be reachable from the wal_recovery_test
// workload — the sweep asserts each point actually fired.
//
// Ordering is roughly the lifetime of one committed transaction.
constexpr const char* kCrashPoints[] = {
    "disk.write.torn",          // WritePage transfers a prefix, then dies
    "wal.commit.begin",         // before anything is logged
    "wal.commit.before_sync",   // commit record appended, tail not durable
    "wal.sync.torn",            // sync makes only part of the tail durable
    "wal.commit.after_sync",    // commit durable, nothing applied yet
    "wal.apply.page",           // before each write-through page install
    "wal.apply.free",           // before each deferred page free applies
    "wal.applied.before_sync",  // applied record appended, not yet durable
    "cache.install.mid",        // CacheManager::InsertUnit, mid-install
    "cache.invalidate.mid",     // CacheManager::InvalidateSubobject, mid
    "update.child",             // Strategy::UpdateChildInPlace, per target
    "clust.update.mid",         // DFSCLUST update translation, per target
    "temp.reclaim.mid",         // TempFile::FreePages, mid-reclaim
};

int IndexOfPoint(const char* point) {
  for (size_t i = 0; i < sizeof(kCrashPoints) / sizeof(kCrashPoints[0]); ++i) {
    // Sites pass string literals; compare contents, not addresses.
    if (std::string_view(kCrashPoints[i]) == point) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

}  // namespace

const std::vector<std::string>& FaultInjector::RegisteredCrashPoints() {
  static const std::vector<std::string>* points = [] {
    auto* v = new std::vector<std::string>;
    for (const char* p : kCrashPoints) v->emplace_back(p);
    return v;
  }();
  return *points;
}

void FaultInjector::Configure(uint64_t seed, double read_fault_rate,
                              double write_fault_rate) {
  std::lock_guard<std::mutex> l(mu_);
  rng_ = Rng(seed);
  read_fault_rate_ = read_fault_rate;
  write_fault_rate_ = write_fault_rate;
  enabled_.store(true, std::memory_order_relaxed);
}

void FaultInjector::ArmCrash(const std::string& point, uint32_t hit) {
  OBJREP_CHECK_MSG(IndexOfPoint(point.c_str()) >= 0,
                   "ArmCrash of unregistered crash point");
  OBJREP_CHECK_MSG(hit >= 1, "crash hit counts are 1-based");
  std::lock_guard<std::mutex> l(mu_);
  armed_point_ = point;
  armed_hit_ = hit;
  enabled_.store(true, std::memory_order_relaxed);
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> l(mu_);
  read_fault_rate_ = 0;
  write_fault_rate_ = 0;
  armed_point_.clear();
  armed_hit_ = 0;
  crashed_at_.clear();
  hits_.clear();
  read_faults_.store(0, std::memory_order_relaxed);
  write_faults_.store(0, std::memory_order_relaxed);
  crashed_.store(false, std::memory_order_relaxed);
  enabled_.store(false, std::memory_order_relaxed);
}

void FaultInjector::ClearCrash() {
  std::lock_guard<std::mutex> l(mu_);
  armed_point_.clear();
  armed_hit_ = 0;
  crashed_.store(false, std::memory_order_relaxed);
  // Leave enabled_ as-is: rate faults (if configured) keep applying, and a
  // re-armed point can target the post-recovery run.
}

Status FaultInjector::OnRead(size_t n_pages) {
  if (crashed_.load(std::memory_order_relaxed)) {
    return Status::IOError("simulated crash: volume is down");
  }
  std::lock_guard<std::mutex> l(mu_);
  if (read_fault_rate_ <= 0) return Status::OK();
  for (size_t i = 0; i < n_pages; ++i) {
    if (rng_.Bernoulli(read_fault_rate_)) {
      read_faults_.fetch_add(1, std::memory_order_relaxed);
      return Status::IOError("injected read fault");
    }
  }
  return Status::OK();
}

Status FaultInjector::OnWrite() {
  if (crashed_.load(std::memory_order_relaxed)) {
    return Status::IOError("simulated crash: volume is down");
  }
  std::lock_guard<std::mutex> l(mu_);
  if (write_fault_rate_ <= 0) return Status::OK();
  if (rng_.Bernoulli(write_fault_rate_)) {
    write_faults_.fetch_add(1, std::memory_order_relaxed);
    return Status::IOError("injected write fault");
  }
  return Status::OK();
}

Status FaultInjector::MaybeCrash(const char* point) {
  // Disabled fast path: one relaxed load, no mutex, no registry scan.
  if (!enabled_.load(std::memory_order_relaxed)) return Status::OK();
  int idx = IndexOfPoint(point);
  OBJREP_CHECK_MSG(idx >= 0, "MaybeCrash at unregistered crash point");
  std::lock_guard<std::mutex> l(mu_);
  if (hits_.empty()) hits_.resize(RegisteredCrashPoints().size(), 0);
  ++hits_[static_cast<size_t>(idx)];
  // `point` is a registered literal (checked above), so its lifetime
  // satisfies the trace buffer's static-string contract.
  Trace::Instant(point, "fault", "hit", hits_[static_cast<size_t>(idx)]);
  if (crashed_.load(std::memory_order_relaxed)) {
    return Status::IOError("simulated crash: volume is down");
  }
  if (armed_point_.empty() || armed_point_ != point) return Status::OK();
  if (hits_[static_cast<size_t>(idx)] < armed_hit_) return Status::OK();
  crashed_at_ = armed_point_;
  armed_point_.clear();
  crashed_.store(true, std::memory_order_relaxed);
  Trace::Instant("crash", "fault");
  return Status::IOError("simulated crash at " + crashed_at_);
}

uint64_t FaultInjector::HitCount(const std::string& point) const {
  int idx = IndexOfPoint(point.c_str());
  OBJREP_CHECK_MSG(idx >= 0, "HitCount of unregistered crash point");
  std::lock_guard<std::mutex> l(mu_);
  if (hits_.empty()) return 0;
  return hits_[static_cast<size_t>(idx)];
}

std::string FaultInjector::CrashedAt() const {
  std::lock_guard<std::mutex> l(mu_);
  return crashed_at_;
}

}  // namespace objrep
