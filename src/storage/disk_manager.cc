#include "storage/disk_manager.h"

#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>

#include "obs/metrics.h"
#include "util/macros.h"

namespace objrep {

namespace {

// Process-wide registry mirrors, looked up once and cached (DESIGN.md §11).
// These are cumulative across all volumes; per-volume/per-run accounting
// stays in the DiskManager's own counters.
struct DiskMetrics {
  Counter* reads = MetricsRegistry::Global().GetCounter("disk.reads");
  Counter* writes = MetricsRegistry::Global().GetCounter("disk.writes");
  Counter* seq_reads = MetricsRegistry::Global().GetCounter("disk.seq_reads");
  Counter* rand_reads =
      MetricsRegistry::Global().GetCounter("disk.rand_reads");
  Counter* device_us = MetricsRegistry::Global().GetCounter("disk.device_us");
};

DiskMetrics& Metrics() {
  static DiskMetrics* m = new DiskMetrics();
  return *m;
}

}  // namespace

uint64_t DiskManager::NextSerial() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

void DiskManager::SimulateLatency(uint64_t seeks, uint64_t pages) const {
  uint64_t seek_us = io_latency_us_.load(std::memory_order_relaxed);
  uint64_t xfer_us = transfer_us_.load(std::memory_order_relaxed);
  uint64_t total = seeks * seek_us + pages * xfer_us;
  if (total != 0) {
    Metrics().device_us->Add(total);
    std::this_thread::sleep_for(std::chrono::microseconds(total));
  }
}

uint64_t DiskManager::AccountReadRun(PageId first, uint64_t n) {
  // The run [first, first + n) is contiguous on the platter; whether its
  // head page costs a seek depends on where this *thread* left the arm on
  // this volume. The arm is thread-local (keyed by the volume's serial):
  // two interleaved sequential scanners each see their own run as
  // sequential, instead of a global arm turning both random. The price is
  // per-thread arms on one volume ignoring each other — the simulated
  // device is optimistic about cross-thread locality, which is the right
  // bias for a diagnostic split (DESIGN.md §11).
  IoThreadState& st = CurrentIoThreadState();
  uint64_t prev = st.arm_serial == serial_ ? st.last_read : UINT64_MAX;
  st.arm_serial = serial_;
  st.last_read = static_cast<uint64_t>(first) + n - 1;
  bool head_seq = prev != UINT64_MAX && static_cast<uint64_t>(first) == prev + 1;
  uint64_t seeks = head_seq ? 0 : 1;
  st.seq_reads += n - seeks;
  seq_reads_.fetch_add(n - seeks, std::memory_order_relaxed);
  rand_reads_.fetch_add(seeks, std::memory_order_relaxed);
  Metrics().seq_reads->Add(n - seeks);
  Metrics().rand_reads->Add(seeks);
  return seeks;
}

PageId DiskManager::AllocatePage() {
  std::unique_lock<std::shared_mutex> l(mu_);
  if (!free_list_.empty()) {
    PageId pid = free_list_.back();
    free_list_.pop_back();
    page_is_free_[pid] = 0;
    pages_[pid]->Zero();
    return pid;
  }
  auto page = std::make_unique<Page>();
  page->Zero();
  pages_.push_back(std::move(page));
  page_is_free_.push_back(0);
  return static_cast<PageId>(pages_.size() - 1);
}

void DiskManager::FreePage(PageId page_id) {
  std::unique_lock<std::shared_mutex> l(mu_);
  OBJREP_CHECK_MSG(page_id < pages_.size(), "free of unallocated page");
  OBJREP_CHECK_MSG(!page_is_free_[page_id], "double free of page");
  page_is_free_[page_id] = 1;
  free_list_.push_back(page_id);
}

Status DiskManager::ReadPage(PageId page_id, Page* out) {
  if (injector_.enabled()) {
    OBJREP_RETURN_NOT_OK(injector_.OnRead(1));
  }
  {
    std::shared_lock<std::shared_mutex> l(mu_);
    if (page_id >= pages_.size()) {
      return Status::IOError("read of unallocated page");
    }
    std::memcpy(out->data, pages_[page_id]->data, kPageSize);
  }
  reads_.fetch_add(1, std::memory_order_relaxed);
  AttributeReads(1);
  Metrics().reads->Add(1);
  uint64_t seeks = AccountReadRun(page_id, 1);
  SimulateLatency(seeks, 1);
  return Status::OK();
}

Status DiskManager::ReadPages(const PageId* page_ids, size_t n,
                              Page* const* outs) {
  if (n == 0) return Status::OK();
  // All-or-nothing like the unallocated-id check: a fault anywhere in the
  // batch fails the whole vectored read with no reads charged. This is the
  // path async prefetch workers take, so injected faults reach them too.
  if (injector_.enabled()) {
    OBJREP_RETURN_NOT_OK(injector_.OnRead(n));
  }
  {
    std::shared_lock<std::shared_mutex> l(mu_);
    for (size_t i = 0; i < n; ++i) {
      if (page_ids[i] >= pages_.size()) {
        return Status::IOError("read of unallocated page");
      }
    }
    for (size_t i = 0; i < n; ++i) {
      std::memcpy(outs[i]->data, pages_[page_ids[i]]->data, kPageSize);
    }
  }
  reads_.fetch_add(n, std::memory_order_relaxed);
  AttributeReads(n);
  Metrics().reads->Add(n);
  // Charge one seek per discontiguous segment of the batch: the counters
  // are identical to n single ReadPage calls (n reads; the same pages are
  // sequential in the same order), only the simulated arm time amortizes.
  uint64_t seeks = 0;
  size_t run_start = 0;
  for (size_t i = 1; i <= n; ++i) {
    if (i == n || page_ids[i] != page_ids[i - 1] + 1) {
      seeks += AccountReadRun(page_ids[run_start], i - run_start);
      run_start = i;
    }
  }
  SimulateLatency(seeks, n);
  return Status::OK();
}

Status DiskManager::WritePage(PageId page_id, const Page& in) {
  if (injector_.enabled()) {
    OBJREP_RETURN_NOT_OK(injector_.OnWrite());
    Status torn = injector_.MaybeCrash("disk.write.torn");
    if (!torn.ok()) {
      // Torn sector: half the page lands on the platter, then the crash.
      // The partial transfer below makes the damage real; recovery must
      // restore the page from a durable WAL image, never trust it.
      std::shared_lock<std::shared_mutex> l(mu_);
      if (page_id < pages_.size()) {
        std::memcpy(pages_[page_id]->data, in.data, kPageSize / 2);
      }
      return torn;
    }
  }
  {
    std::shared_lock<std::shared_mutex> l(mu_);
    if (page_id >= pages_.size()) {
      return Status::IOError("write of unallocated page");
    }
    std::memcpy(pages_[page_id]->data, in.data, kPageSize);
  }
  writes_.fetch_add(1, std::memory_order_relaxed);
  AttributeWrite();
  Metrics().writes->Add(1);
  // Writes always pay the seek (eviction writebacks are scattered), and
  // they move the calling thread's arm off its read position.
  {
    IoThreadState& st = CurrentIoThreadState();
    st.arm_serial = serial_;
    st.last_read = UINT64_MAX;
  }
  SimulateLatency(1, 1);
  return Status::OK();
}

Status DiskManager::ReadPageRaw(PageId page_id, Page* out) const {
  std::shared_lock<std::shared_mutex> l(mu_);
  if (page_id >= pages_.size()) {
    return Status::IOError("raw read of unallocated page");
  }
  std::memcpy(out->data, pages_[page_id]->data, kPageSize);
  return Status::OK();
}

void DiskManager::WritePageRaw(PageId page_id, const Page& in) {
  std::shared_lock<std::shared_mutex> l(mu_);
  OBJREP_CHECK_MSG(page_id < pages_.size(), "raw write of unallocated page");
  std::memcpy(pages_[page_id]->data, in.data, kPageSize);
}

bool DiskManager::PageIsAllocated(PageId page_id) const {
  std::shared_lock<std::shared_mutex> l(mu_);
  return page_id < pages_.size() && !page_is_free_[page_id];
}

bool DiskManager::TryFreePage(PageId page_id) {
  std::unique_lock<std::shared_mutex> l(mu_);
  OBJREP_CHECK_MSG(page_id < pages_.size(), "try-free of unallocated page");
  if (page_is_free_[page_id]) return false;
  page_is_free_[page_id] = 1;
  free_list_.push_back(page_id);
  return true;
}

}  // namespace objrep
