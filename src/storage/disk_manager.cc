#include "storage/disk_manager.h"

#include <cstring>

namespace objrep {

PageId DiskManager::AllocatePage() {
  auto page = std::make_unique<Page>();
  page->Zero();
  pages_.push_back(std::move(page));
  return static_cast<PageId>(pages_.size() - 1);
}

Status DiskManager::ReadPage(PageId page_id, Page* out) {
  if (page_id >= pages_.size()) {
    return Status::IOError("read of unallocated page");
  }
  std::memcpy(out->data, pages_[page_id]->data, kPageSize);
  ++counters_.reads;
  return Status::OK();
}

Status DiskManager::WritePage(PageId page_id, const Page& in) {
  if (page_id >= pages_.size()) {
    return Status::IOError("write of unallocated page");
  }
  std::memcpy(pages_[page_id]->data, in.data, kPageSize);
  ++counters_.writes;
  return Status::OK();
}

}  // namespace objrep
