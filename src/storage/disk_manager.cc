#include "storage/disk_manager.h"

#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>

namespace objrep {

void DiskManager::SimulateLatency() const {
  uint32_t us = io_latency_us_.load(std::memory_order_relaxed);
  if (us != 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(us));
  }
}

PageId DiskManager::AllocatePage() {
  auto page = std::make_unique<Page>();
  page->Zero();
  std::unique_lock<std::shared_mutex> l(mu_);
  pages_.push_back(std::move(page));
  return static_cast<PageId>(pages_.size() - 1);
}

Status DiskManager::ReadPage(PageId page_id, Page* out) {
  {
    std::shared_lock<std::shared_mutex> l(mu_);
    if (page_id >= pages_.size()) {
      return Status::IOError("read of unallocated page");
    }
    std::memcpy(out->data, pages_[page_id]->data, kPageSize);
  }
  reads_.fetch_add(1, std::memory_order_relaxed);
  SimulateLatency();
  return Status::OK();
}

Status DiskManager::WritePage(PageId page_id, const Page& in) {
  {
    std::shared_lock<std::shared_mutex> l(mu_);
    if (page_id >= pages_.size()) {
      return Status::IOError("write of unallocated page");
    }
    std::memcpy(pages_[page_id]->data, in.data, kPageSize);
  }
  writes_.fetch_add(1, std::memory_order_relaxed);
  SimulateLatency();
  return Status::OK();
}

}  // namespace objrep
