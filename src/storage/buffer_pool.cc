#include "storage/buffer_pool.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "obs/metrics.h"
#include "storage/wal.h"
#include "util/macros.h"

namespace objrep {

namespace {

// Cumulative process-wide registry mirrors (DESIGN.md §11); per-run deltas
// come from the pool's own counters via ResetStats.
struct PoolMetrics {
  Counter* hits = MetricsRegistry::Global().GetCounter("pool.hits");
  Counter* misses = MetricsRegistry::Global().GetCounter("pool.misses");
  Counter* evictions = MetricsRegistry::Global().GetCounter("pool.evictions");
  Counter* eviction_writes =
      MetricsRegistry::Global().GetCounter("pool.eviction_writes");
  Counter* prefetched =
      MetricsRegistry::Global().GetCounter("pool.prefetch.pages");
  Counter* promoted =
      MetricsRegistry::Global().GetCounter("pool.prefetch.promoted");
  Counter* wasted =
      MetricsRegistry::Global().GetCounter("pool.prefetch.wasted");
  Counter* coalesced =
      MetricsRegistry::Global().GetCounter("pool.miss.coalesced");
  Counter* inflight_waits =
      MetricsRegistry::Global().GetCounter("pool.miss.inflight_waits");
  Counter* staging_cv_waits =
      MetricsRegistry::Global().GetCounter("pool.staging.cv_waits");
};

PoolMetrics& Metrics() {
  static PoolMetrics* m = new PoolMetrics();
  return *m;
}

// Spin budget before WaitStagingReady falls back to a condvar sleep. Hint
// reads usually land within microseconds; a fault-stalled or heavily
// delayed one must not burn a core at 100% (the seed's unbounded yield()
// loop did exactly that).
constexpr uint32_t kStagingSpinIters = 64;

}  // namespace

BufferPool::BufferPool(DiskManager* disk, uint32_t capacity)
    : disk_(disk), capacity_(capacity), frames_(capacity) {
  OBJREP_CHECK(capacity > 0);
  free_frames_.reserve(capacity);
  for (uint32_t i = 0; i < capacity; ++i) {
    free_frames_.push_back(capacity - 1 - i);
  }
}

BufferPool::~BufferPool() {
  // Join prefetch workers before frames_ tears down.
  prefetch_workers_.reset();
}

void BufferPool::SetPrefetchOptions(const PrefetchOptions& options) {
  prefetch_workers_.reset();  // join in-flight hints before reprovisioning
  if (staging_count_ > 0) DropStagedPages();
  prefetch_ = options;
  staging_count_ =
      prefetch_.enabled ? prefetch_.readahead_pages * kStagingPerWindow : 0;
  staging_.reset();
  free_staging_.clear();
  retired_staging_.clear();
  retired_count_.store(0, std::memory_order_relaxed);
  if (staging_count_ > 0) {
    staging_ = std::make_unique<StagingFrame[]>(staging_count_);
    free_staging_.reserve(staging_count_);
    for (uint32_t i = 0; i < staging_count_; ++i) {
      free_staging_.push_back(staging_count_ - 1 - i);
    }
  }
  if (prefetch_.enabled && prefetch_.io_workers > 0) {
    prefetch_workers_ = std::make_unique<ThreadPool>(prefetch_.io_workers);
  }
}

void BufferPool::ReleaseStagingFrame(uint32_t st_idx) {
  staging_[st_idx].pid = kInvalidPageId;
  std::lock_guard<std::mutex> l(staging_mu_);
  free_staging_.push_back(st_idx);
}

void BufferPool::RecycleRetiredStagingLocked() {
  if (retired_count_.load(std::memory_order_acquire) == 0) return;
  std::lock_guard<std::mutex> l(staging_mu_);
  for (uint32_t st : retired_staging_) free_staging_.push_back(st);
  retired_staging_.clear();
  retired_count_.store(0, std::memory_order_release);
}

std::vector<PageId> BufferPool::StagedPageIds() {
  std::vector<PageId> out;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> l(shard.mu);
    for (const auto& [pid, slot] : shard.map) {
      if (slot >= capacity_) out.push_back(pid);
    }
  }
  return out;
}

void BufferPool::DropStagedPages() {
  // Unmap under the bucket latches; wait out in-flight hint reads and
  // recycle outside them (a hint thread may be claiming pages in the same
  // shard before issuing its read — waiting under the latch would deadlock).
  std::vector<uint32_t> dropped;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> l(shard.mu);
    for (auto it = shard.map.begin(); it != shard.map.end();) {
      if (it->second >= capacity_) {
        dropped.push_back(it->second - capacity_);
        it = shard.map.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (uint32_t st : dropped) {
    WaitStagingReady(st);
    ReleaseStagingFrame(st);
  }
  prefetch_wasted_.fetch_add(dropped.size(), std::memory_order_relaxed);
  Metrics().wasted->Add(dropped.size());
}

void BufferPool::WaitStagingReady(uint32_t st_idx) {
  StagingFrame& st = staging_[st_idx];
  for (uint32_t spin = 0; spin < kStagingSpinIters; ++spin) {
    if (st.ready.load(std::memory_order_acquire)) return;
    std::this_thread::yield();
  }
  std::unique_lock<std::mutex> l(st.mu);
  if (st.ready.load(std::memory_order_acquire)) return;
  staging_cv_waits_.fetch_add(1, std::memory_order_relaxed);
  Metrics().staging_cv_waits->Add(1);
  st.cv.wait(l, [&] { return st.ready.load(std::memory_order_acquire); });
}

void BufferPool::MarkStagingReady(uint32_t st_idx) {
  StagingFrame& st = staging_[st_idx];
  {
    // Taking st.mu here closes the race with a waiter that checked `ready`
    // under the lock but has not yet blocked on the condvar.
    std::lock_guard<std::mutex> l(st.mu);
    st.ready.store(true, std::memory_order_release);
  }
  st.cv.notify_all();
}

void BufferPool::Unpin(uint32_t frame, bool restamp) {
  Frame& f = frames_[frame];
  // Stamp while the pin is still held: once pin_count reaches 0 an evictor
  // may claim and reuse the frame, so the stamp must land first. Nested
  // pins overwrite each other; the final (1 -> 0) unpin writes last, which
  // is exactly the old push-to-LRU-on-last-release order. No-restamp
  // releases (TryFetchResident) leave the recency untouched.
  if (restamp) {
    f.last_unpin.store(clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                       std::memory_order_relaxed);
  }
  int prev = f.pin_count.fetch_sub(1, std::memory_order_release);
  OBJREP_CHECK(prev > 0);
}

Status BufferPool::ReclaimFrame(std::unique_lock<std::mutex>& lk,
                                uint32_t frame) {
  Frame& f = frames_[frame];
  // Write back *before* unmapping, while the frame is still intact: if the
  // device fails the write (fault injection makes that path real), restore
  // the claim and leave the page resident + dirty, so an eviction can never
  // silently drop committed bytes. Hit-path waiters that saw the kEvicting
  // claim spin without the bucket latch, so they cannot block the unmap and
  // simply re-probe once the claim resolves either way.
  if (f.dirty.load(std::memory_order_relaxed)) {
    // Attribute the deferred write-back to the component that dirtied the
    // page (temp append, cache install, update...), not to whatever query
    // happened to trigger this reclaim.
    ScopedIoTag tag(f.dirty_tag.load(std::memory_order_relaxed));
    // The kEvicting claim already makes the frame invisible to other
    // evictors and un-pinnable, and the mapping left in place keeps
    // readers of the victim page spinning instead of loading a stale image
    // from disk — so the device write itself needs no pool latch. Release
    // evict_mu_ around it (§17) so concurrent misses keep flowing while
    // the write-back sleeps in the simulated device.
    const bool drop_latch =
        !serialize_miss_io_.load(std::memory_order_relaxed);
    if (drop_latch) lk.unlock();
    Status s = disk_->WritePage(f.pid, f.page);
    if (drop_latch) lk.lock();
    if (!s.ok()) {
      f.pin_count.store(0, std::memory_order_release);  // un-claim; intact
      return s;
    }
    f.dirty.store(false, std::memory_order_relaxed);
    eviction_writes_.fetch_add(1, std::memory_order_relaxed);
    Metrics().eviction_writes->Add(1);
  }
  // Unmap: after the erase no hit path can reach the frame, so the claimed
  // pin_count can be dropped without a window for false pins. Erase only
  // this frame's own mapping — after a page id was freed and reallocated,
  // a stale frame can coexist briefly with the id's live mapping, and
  // reclaiming the stale one must not unmap the live one.
  {
    Shard& shard = ShardFor(f.pid);
    std::lock_guard<std::mutex> l(shard.mu);
    auto it = shard.map.find(f.pid);
    if (it != shard.map.end() && it->second == frame) {
      shard.map.erase(it);
    }
  }
  f.in_use = false;
  f.pid = kInvalidPageId;
  f.pin_count.store(0, std::memory_order_release);
  return Status::OK();
}

Status BufferPool::AllocateFrames(std::unique_lock<std::mutex>& lk, size_t k,
                                  std::vector<uint32_t>* frames_out) {
  frames_out->clear();
  frames_out->reserve(k);
  // One LRU scan selects all remaining victims; reclaiming oldest-first
  // evicts the same frames in the same order as repeated single-victim
  // scans would, so write-back order (and thus every I/O count) matches
  // the one-page-at-a-time path exactly. A dirty reclaim releases
  // evict_mu_ around its device write (§17), after which both the free
  // list and the scan are redone: single-threaded the stamps have not
  // moved, so the victim sequence is bit-identical to the fully-latched
  // path; under concurrency the fresh scan never acts on candidates that
  // went stale during the window.
  std::vector<std::pair<uint64_t, uint32_t>> candidates;
  while (frames_out->size() < k) {
    while (frames_out->size() < k && !free_frames_.empty()) {
      frames_out->push_back(free_frames_.back());
      free_frames_.pop_back();
    }
    if (frames_out->size() == k) break;
    candidates.clear();
    for (uint32_t i = 0; i < frames_.size(); ++i) {
      Frame& f = frames_[i];
      if (!f.in_use || f.pin_count.load(std::memory_order_relaxed) != 0) {
        continue;
      }
      candidates.emplace_back(f.last_unpin.load(std::memory_order_relaxed), i);
    }
    if (candidates.empty()) {
      // Roll back: the batch is all-or-nothing.
      for (uint32_t fr : *frames_out) free_frames_.push_back(fr);
      frames_out->clear();
      return Status::NoSpace("buffer pool exhausted: all frames pinned");
    }
    std::sort(candidates.begin(), candidates.end());
    for (const auto& [stamp, victim] : candidates) {
      if (frames_out->size() == k) break;
      int expected = 0;
      if (!frames_[victim].pin_count.compare_exchange_strong(
              expected, kEvicting, std::memory_order_acquire)) {
        continue;  // raced with a concurrent pin; maybe rescan
      }
      const bool was_dirty =
          frames_[victim].dirty.load(std::memory_order_relaxed);
      Status s = ReclaimFrame(lk, victim);
      if (!s.ok()) {
        // The victim's write-back failed: ReclaimFrame restored it
        // (still resident, still dirty), so only the frames already taken
        // roll back to the free list.
        for (uint32_t fr : *frames_out) free_frames_.push_back(fr);
        frames_out->clear();
        return s;
      }
      evictions_.fetch_add(1, std::memory_order_relaxed);
      Metrics().evictions->Add(1);
      frames_out->push_back(victim);
      if (was_dirty && !serialize_miss_io_.load(std::memory_order_relaxed)) {
        break;  // evict_mu_ was released mid-write: rescan before continuing
      }
    }
  }
  return Status::OK();
}

Status BufferPool::AllocateFrame(std::unique_lock<std::mutex>& lk,
                                 uint32_t* frame_out) {
  std::vector<uint32_t> one;
  OBJREP_RETURN_NOT_OK(AllocateFrames(lk, 1, &one));
  *frame_out = one[0];
  return Status::OK();
}

void BufferPool::AbandonFrameLocked(uint32_t frame) {
  Frame& f = frames_[frame];
  f.in_use = false;
  f.pid = kInvalidPageId;
  f.dirty.store(false, std::memory_order_relaxed);
  f.pin_count.store(0, std::memory_order_relaxed);
  free_frames_.push_back(frame);
}

Status BufferPool::PromoteStaged(std::unique_lock<std::mutex>& lk,
                                 uint32_t st_idx, PageId pid, bool* stale,
                                 PageGuard* out) {
  // The mapping may be *pending*: an async hint publishes before its
  // vectored read lands. Wait it out (we hold evict_mu_ but no bucket
  // latch, so the hint thread can finish claiming and read). If the read
  // failed, the hint retired the frame (pid reset, mapping erased) — report
  // stale so the caller demand-loads instead. The caller owns `pid`'s
  // in-flight claim, so nobody else can consume the staged frame across
  // this wait or the allocation's transient evict_mu_ release.
  *stale = false;
  WaitStagingReady(st_idx);
  if (staging_[st_idx].pid != pid) {
    *stale = true;
    return Status::OK();
  }
  // The victim is chosen here, at first demand access — the same frame, at
  // the same moment, that the demand-paged run's miss would evict. The
  // staged bytes substitute for the disk read, which already happened (and
  // was already counted) at hint time. This is what keeps every I/O count
  // bit-identical to running with prefetch off (DESIGN.md §9).
  uint32_t frame;
  OBJREP_RETURN_NOT_OK(AllocateFrame(lk, &frame));
  Frame& f = frames_[frame];
  f.page = staging_[st_idx].page;
  f.pid = pid;
  f.pin_count.store(1, std::memory_order_relaxed);
  f.dirty.store(false, std::memory_order_relaxed);
  f.in_use = true;
  {
    Shard& shard = ShardFor(pid);
    std::lock_guard<std::mutex> l(shard.mu);
    shard.map[pid] = frame;  // overwrites the staged mapping
  }
  ReleaseStagingFrame(st_idx);
  prefetch_promoted_.fetch_add(1, std::memory_order_relaxed);
  Metrics().promoted->Add(1);
  *out = PageGuard(this, frame, pid);
  return Status::OK();
}

void BufferPool::EraseInflight(PageId pid,
                               const std::shared_ptr<InflightRead>& entry) {
  Shard& shard = ShardFor(pid);
  std::lock_guard<std::mutex> l(shard.mu);
  auto it = shard.inflight.find(pid);
  if (it != shard.inflight.end() && it->second == entry) {
    shard.inflight.erase(it);
  }
}

void BufferPool::FinishInflight(const std::shared_ptr<InflightRead>& entry) {
  {
    // Taking entry->mu closes the race with a waiter that checked `done`
    // under the lock but has not yet blocked on the condvar.
    std::lock_guard<std::mutex> l(entry->mu);
    entry->done = true;
  }
  entry->cv.notify_all();
}

Status BufferPool::LoadPageMiss(PageId pid, PageGuard* out) {
  for (;;) {
    std::shared_ptr<InflightRead> theirs;
    std::shared_ptr<InflightRead> mine;
    uint32_t staged_hint = UINT32_MAX;
    bool evicting = false;
    {
      Shard& shard = ShardFor(pid);
      std::lock_guard<std::mutex> l(shard.mu);
      auto it = shard.map.find(pid);
      if (it != shard.map.end() && it->second < capacity_) {
        Frame& f = frames_[it->second];
        int c = f.pin_count.load(std::memory_order_relaxed);
        while (c >= 0) {
          if (f.pin_count.compare_exchange_weak(c, c + 1,
                                                std::memory_order_acquire)) {
            // A concurrent loader won the race after our hit probe missed:
            // the miss is already counted, but the physical read was
            // theirs — a coalesced miss, not a second read.
            coalesced_misses_.fetch_add(1, std::memory_order_relaxed);
            Metrics().coalesced->Add(1);
            *out = PageGuard(this, it->second, pid);
            return Status::OK();
          }
        }
        evicting = true;  // claimed mid-eviction; re-probe once it resolves
      } else {
        if (it != shard.map.end()) staged_hint = it->second - capacity_;
        auto in = shard.inflight.find(pid);
        if (in != shard.inflight.end()) {
          theirs = in->second;
        } else {
          mine = std::make_shared<InflightRead>();
          shard.inflight.emplace(pid, mine);
        }
      }
    }
    if (evicting) {
      std::this_thread::yield();
      continue;
    }
    if (theirs != nullptr) {
      // Another thread's read is in flight: sleep on its claim instead of
      // issuing a duplicate. On success the re-probe pins the published
      // frame (a coalesced miss); on failure the re-probe finds neither
      // mapping nor claim, so exactly one waiter becomes the new loader
      // and the rest coalesce on *its* claim.
      inflight_waits_.fetch_add(1, std::memory_order_relaxed);
      Metrics().inflight_waits->Add(1);
      std::unique_lock<std::mutex> l(theirs->mu);
      theirs->cv.wait(l, [&] { return theirs->done; });
      continue;
    }
    // We own pid's claim. A staged copy seen at claim time may still have
    // its hint read in flight — wait it out *before* taking evict_mu_, so
    // the rest of the pool keeps evicting while that read lands. (The
    // fresh staging index is re-probed under the latch: the hint may have
    // failed and its frame been retired, recycled, even re-staged.)
    if (staged_hint != UINT32_MAX) WaitStagingReady(staged_hint);
    Status s = LoadClaimedPage(pid, out);
    // Publication (on success) happened before the claim retires, so a
    // prober always sees the mapping, the claim, or — only once the read
    // truly failed — neither.
    EraseInflight(pid, mine);
    FinishInflight(mine);
    return s;
  }
}

Status BufferPool::LoadClaimedPage(PageId pid, PageGuard* out) {
  std::unique_lock<std::mutex> big(evict_mu_);
  RecycleRetiredStagingLocked();
  uint32_t staged = UINT32_MAX;
  {
    Shard& shard = ShardFor(pid);
    std::lock_guard<std::mutex> l(shard.mu);
    auto it = shard.map.find(pid);
    if (it != shard.map.end()) {
      OBJREP_CHECK_MSG(it->second >= capacity_,
                       "page resident while its miss claim is held");
      staged = it->second - capacity_;
    }
  }
  if (staged != UINT32_MAX) {
    bool stale = false;
    OBJREP_RETURN_NOT_OK(PromoteStaged(big, staged, pid, &stale, out));
    if (!stale) return Status::OK();
    // The hint's read failed and its frame was retired; fall through to
    // a demand load of our own.
  }
  uint32_t frame;
  OBJREP_RETURN_NOT_OK(AllocateFrame(big, &frame));
  Frame& f = frames_[frame];
  f.pid = pid;
  f.pin_count.store(1, std::memory_order_relaxed);
  f.dirty.store(false, std::memory_order_relaxed);
  f.in_use = true;
  // The claim keeps the frame private (unmapped, and same-page missers
  // sleep on the claim), so the read itself needs no pool latch — this is
  // the §17 fix: concurrent misses overlap their device time instead of
  // queueing behind evict_mu_ for the duration of every read.
  if (!serialize_miss_io_.load(std::memory_order_relaxed)) big.unlock();
  Status s = disk_->ReadPage(pid, &f.page);
  if (!s.ok()) {
    if (!big.owns_lock()) big.lock();
    AbandonFrameLocked(frame);
    return s;
  }
  uint32_t redundant_staged = UINT32_MAX;
  {
    Shard& shard = ShardFor(pid);
    std::lock_guard<std::mutex> l(shard.mu);
    auto it = shard.map.find(pid);
    if (it != shard.map.end() && it->second >= capacity_) {
      // An async hint staged `pid` while we read it: the staged copy is
      // redundant now.
      redundant_staged = it->second - capacity_;
    }
    shard.map[pid] = frame;
  }
  if (big.owns_lock()) big.unlock();
  if (redundant_staged != UINT32_MAX) {
    // Recycle outside the bucket latch: the hint's read may still be in
    // flight, and the hint thread may need this shard's latch to finish
    // claiming its batch before it issues that read.
    WaitStagingReady(redundant_staged);
    ReleaseStagingFrame(redundant_staged);
    prefetch_wasted_.fetch_add(1, std::memory_order_relaxed);
    Metrics().wasted->Add(1);
  }
  *out = PageGuard(this, frame, pid);
  return Status::OK();
}

Status BufferPool::PinNewFrame(PageId pid, PageGuard* out) {
  std::unique_lock<std::mutex> big(evict_mu_);
  RecycleRetiredStagingLocked();
  uint32_t frame;
  OBJREP_RETURN_NOT_OK(AllocateFrame(big, &frame));
  Frame& f = frames_[frame];
  f.pid = pid;
  f.pin_count.store(1, std::memory_order_relaxed);
  f.dirty.store(true, std::memory_order_relaxed);
  f.in_use = true;
  f.page.Zero();
  uint32_t redundant_staged = UINT32_MAX;
  {
    Shard& shard = ShardFor(pid);
    std::lock_guard<std::mutex> l(shard.mu);
    auto it = shard.map.find(pid);
    if (it != shard.map.end() && it->second >= capacity_) {
      // An async hint staged a stale image of this recycled page id; the
      // fresh zeroed frame supersedes it.
      redundant_staged = it->second - capacity_;
    }
    shard.map[pid] = frame;
  }
  big.unlock();
  if (redundant_staged != UINT32_MAX) {
    WaitStagingReady(redundant_staged);
    ReleaseStagingFrame(redundant_staged);
    prefetch_wasted_.fetch_add(1, std::memory_order_relaxed);
    Metrics().wasted->Add(1);
  }
  *out = PageGuard(this, frame, pid);
  return Status::OK();
}

bool BufferPool::TryPinResident(PageId pid, PageGuard* out) {
  Shard& shard = ShardFor(pid);
  for (;;) {
    bool claimed = false;
    {
      std::lock_guard<std::mutex> l(shard.mu);
      auto it = shard.map.find(pid);
      if (it == shard.map.end()) return false;  // miss
      if (it->second >= capacity_) {
        // Staged copy: not a hit. The miss path promotes it, charging the
        // miss the demand-paged run would take here.
        return false;
      }
      Frame& f = frames_[it->second];
      int c = f.pin_count.load(std::memory_order_relaxed);
      while (c >= 0) {
        if (f.pin_count.compare_exchange_weak(c, c + 1,
                                              std::memory_order_acquire)) {
          *out = PageGuard(this, it->second, pid);
          return true;
        }
      }
      // pin_count == kEvicting: an evictor claimed the frame and is about
      // to erase this mapping (it needs our bucket latch to do so).
      claimed = true;
    }
    if (claimed) {
      std::this_thread::yield();  // let the evictor finish, then re-probe
    }
  }
}

Status BufferPool::FetchPage(PageId pid, PageGuard* out) {
  if (TryPinResident(pid, out)) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    Metrics().hits->Add(1);
    return Status::OK();
  }
  // The miss is counted here, before the load resolves: even when a racing
  // loader wins and this thread never touches the disk, the access *was* a
  // miss — the divergence from the disk's flat read counter is what
  // coalesced_misses() accounts for (misses == demand reads + promoted +
  // coalesced, fault-free).
  misses_.fetch_add(1, std::memory_order_relaxed);
  Metrics().misses->Add(1);
  return LoadPageMiss(pid, out);
}

Status BufferPool::FetchPages(const PageId* pids, size_t n,
                              std::vector<PageGuard>* out) {
  out->clear();
  out->resize(n);
  std::vector<size_t> missing;
  for (size_t i = 0; i < n; ++i) {
    if (TryPinResident(pids[i], &(*out)[i])) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      Metrics().hits->Add(1);
    } else {
      missing.push_back(i);
    }
  }
  if (missing.empty()) return Status::OK();
  misses_.fetch_add(missing.size(), std::memory_order_relaxed);
  Metrics().misses->Add(missing.size());

  // Claim pass (no evict_mu_): sort the batch's misses into pages this
  // call will load (`need`, each with our in-flight claim), duplicates of
  // those (`alias`), pages that became resident since the hit probe
  // (pinned here — the racing loader's read serves our miss, a coalesced
  // miss), and pages another loader or evictor currently owns (`deferred`,
  // resolved one-by-one after the batch: sleeping on a foreign claim while
  // holding our own batch's claims could deadlock two interleaved batches).
  struct Need {
    size_t pos;
    std::shared_ptr<InflightRead> claim;
  };
  std::vector<Need> need;
  std::vector<size_t> alias;     // positions duplicating a `need` pid
  std::vector<size_t> deferred;  // positions racing a foreign claim
  std::unordered_map<PageId, uint32_t> loading;  // pid -> frame (ours)
  std::vector<uint32_t> staged_hints;  // possibly-pending hint reads
  for (size_t i : missing) {
    PageId pid = pids[i];
    if (loading.count(pid) != 0) {
      alias.push_back(i);
      continue;
    }
    bool resolved = false;
    bool defer = false;
    uint32_t staged = UINT32_MAX;
    std::shared_ptr<InflightRead> mine;
    {
      Shard& shard = ShardFor(pid);
      std::lock_guard<std::mutex> l(shard.mu);
      auto it = shard.map.find(pid);
      if (it != shard.map.end() && it->second < capacity_) {
        Frame& f = frames_[it->second];
        int c = f.pin_count.load(std::memory_order_relaxed);
        while (c >= 0) {
          if (f.pin_count.compare_exchange_weak(c, c + 1,
                                                std::memory_order_acquire)) {
            coalesced_misses_.fetch_add(1, std::memory_order_relaxed);
            Metrics().coalesced->Add(1);
            (*out)[i] = PageGuard(this, it->second, pid);
            resolved = true;
            break;
          }
        }
        if (!resolved) defer = true;  // claimed mid-eviction
      } else {
        if (it != shard.map.end()) staged = it->second - capacity_;
        if (shard.inflight.count(pid) != 0) {
          defer = true;
        } else {
          mine = std::make_shared<InflightRead>();
          shard.inflight.emplace(pid, mine);
        }
      }
    }
    if (resolved) continue;
    if (defer) {
      deferred.push_back(i);
      continue;
    }
    loading.emplace(pid, 0);
    if (staged != UINT32_MAX) staged_hints.push_back(staged);
    need.push_back(Need{i, std::move(mine)});
  }

  Status s = Status::OK();
  if (!need.empty()) {
    // Wait out possibly-pending hint reads before taking evict_mu_ — our
    // claims make the staged copies stable, and the fresh staging index is
    // re-probed under the latch below (the hint may have failed and its
    // frame been retired, recycled, even re-staged meanwhile).
    for (uint32_t st : staged_hints) WaitStagingReady(st);

    // Frames for all owned misses are allocated in batch-position order —
    // the same frames, in the same order, n sequential FetchPage calls
    // would take. Staged pages are promoted (copy in place of a read);
    // absent pages are vector-loaded with one ReadPages, issued after
    // evict_mu_ is released (§17) since the claims keep every allocated
    // frame private until publication.
    std::vector<uint32_t> frames;
    std::unique_lock<std::mutex> big(evict_mu_);
    RecycleRetiredStagingLocked();
    s = AllocateFrames(big, need.size(), &frames);
    if (s.ok()) {
      std::vector<PageId> load_pids;
      std::vector<Page*> ptrs;
      load_pids.reserve(need.size());
      ptrs.reserve(need.size());
      for (size_t j = 0; j < need.size(); ++j) {
        size_t i = need[j].pos;
        PageId pid = pids[i];
        Frame& f = frames_[frames[j]];
        f.pid = pid;
        f.pin_count.store(1, std::memory_order_relaxed);
        f.dirty.store(false, std::memory_order_relaxed);
        f.in_use = true;
        loading[pid] = frames[j];
        uint32_t st = UINT32_MAX;
        {
          Shard& shard = ShardFor(pid);
          std::lock_guard<std::mutex> l(shard.mu);
          auto it = shard.map.find(pid);
          if (it != shard.map.end() && it->second >= capacity_) {
            st = it->second - capacity_;
          }
        }
        if (st != UINT32_MAX) {
          // Usually instant (pre-waited above); a hint that landed after
          // the claim pass waits here. A retired frame (failed hint read)
          // falls back to our own load.
          WaitStagingReady(st);
          if (staging_[st].pid == pid) {
            f.page = staging_[st].page;
            prefetch_promoted_.fetch_add(1, std::memory_order_relaxed);
            Metrics().promoted->Add(1);
            continue;
          }
        }
        load_pids.push_back(pid);
        ptrs.push_back(&f.page);
      }
      if (!serialize_miss_io_.load(std::memory_order_relaxed)) big.unlock();
      if (!load_pids.empty()) {
        s = disk_->ReadPages(load_pids.data(), load_pids.size(), ptrs.data());
      }
      if (s.ok()) {
        std::vector<uint32_t> consumed_staging;
        for (size_t j = 0; j < need.size(); ++j) {
          size_t i = need[j].pos;
          PageId pid = pids[i];
          Shard& shard = ShardFor(pid);
          std::lock_guard<std::mutex> l(shard.mu);
          auto it = shard.map.find(pid);
          if (it != shard.map.end() && it->second >= capacity_) {
            // The staged copy we promoted, or one a racing async hint
            // published mid-load; either way it is spent now.
            consumed_staging.push_back(it->second - capacity_);
          }
          shard.map[pid] = loading[pid];
          (*out)[i] = PageGuard(this, loading[pid], pid);
        }
        if (big.owns_lock()) big.unlock();
        for (uint32_t st : consumed_staging) {
          WaitStagingReady(st);  // a racing hint's read may be in flight
          ReleaseStagingFrame(st);
        }
        for (size_t i : alias) {
          uint32_t fr = loading[pids[i]];
          frames_[fr].pin_count.fetch_add(1, std::memory_order_relaxed);
          // A duplicate id shares the first occurrence's read: a miss with
          // no physical read of its own, same as losing a cross-thread
          // load race.
          coalesced_misses_.fetch_add(1, std::memory_order_relaxed);
          Metrics().coalesced->Add(1);
          (*out)[i] = PageGuard(this, fr, pids[i]);
        }
      } else {
        if (!big.owns_lock()) big.lock();
        for (uint32_t fr : frames) AbandonFrameLocked(fr);
      }
    }
    if (big.owns_lock()) big.unlock();
    // Retire the batch's claims. On success every mapping is already
    // published, so probers never see a gap; on failure the claims simply
    // vanish and the first retrying waiter becomes the new loader.
    for (const Need& nd : need) {
      EraseInflight(pids[nd.pos], nd.claim);
      FinishInflight(nd.claim);
    }
  }
  if (s.ok()) {
    // Pages another loader or evictor owned at claim time: resolve each
    // through the one-page miss path (usually a coalesced pin on the
    // loader's published frame).
    for (size_t i : deferred) {
      s = LoadPageMiss(pids[i], &(*out)[i]);
      if (!s.ok()) break;
    }
  }
  if (!s.ok()) out->clear();  // releases every pin taken above
  return s;
}

Status BufferPool::Prefetch(const PageId* pids, size_t n) {
  if (n == 0 || staging_count_ == 0) return Status::OK();
  // Claim-and-publish pass (order-preserving, duplicates dropped): ids
  // already resident or staged are skipped; the rest get a staging frame
  // and a *pending* mapping (ready == false) before the read is issued.
  // Publishing first means a concurrent demand fetch of an in-flight page
  // waits for this one read instead of paying a redundant one of its own.
  // If staging runs short the batch's tail is dropped — the earliest pages
  // are the ones consumed soonest. No pool frame is touched: read-ahead
  // never evicts.
  std::vector<PageId> want;
  std::vector<uint32_t> claimed;
  want.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    PageId pid = pids[i];
    if (std::find(want.begin(), want.end(), pid) != want.end()) continue;
    bool exhausted = false;
    {
      Shard& shard = ShardFor(pid);
      std::lock_guard<std::mutex> l(shard.mu);
      if (shard.map.count(pid) != 0) continue;
      uint32_t st_idx = 0;
      {
        std::lock_guard<std::mutex> ls(staging_mu_);
        if (free_staging_.empty()) {
          exhausted = true;
        } else {
          st_idx = free_staging_.back();
          free_staging_.pop_back();
        }
      }
      if (!exhausted) {
        StagingFrame& st = staging_[st_idx];
        st.pid = pid;
        st.ready.store(false, std::memory_order_relaxed);
        shard.map[pid] = capacity_ + st_idx;
        want.push_back(pid);
        claimed.push_back(st_idx);
      }
    }
    if (exhausted) break;
  }
  if (want.empty()) return Status::OK();
  std::vector<Page*> ptrs(claimed.size());
  for (size_t j = 0; j < claimed.size(); ++j) {
    ptrs[j] = &staging_[claimed[j]].page;
  }
  Status s;
  {
    // Read-ahead reads are their own traffic class, whatever the hinting
    // thread was doing (and async workers have no tag of their own).
    ScopedIoTag tag(IoTag::kPrefetch);
    s = disk_->ReadPages(want.data(), want.size(), ptrs.data());
  }
  if (!s.ok()) {
    // Unpublish and *retire*. The frames cannot go straight back to
    // free_staging_: a waiter that read the pending mapping before the
    // erase may still inspect the frame, and a reuse could hand it fresh
    // bytes under a matching pid (ABA). Retired frames are recycled at the
    // top of a later evict_mu_ section — every staged-frame consumer
    // inspects frames only inside evict_mu_, so the recycle can never
    // interleave with an inspection. Without the recycle, every injected
    // hint-read fault would permanently leak a staging frame and
    // eventually disable read-ahead altogether.
    for (size_t j = 0; j < claimed.size(); ++j) {
      {
        Shard& shard = ShardFor(want[j]);
        std::lock_guard<std::mutex> l(shard.mu);
        auto it = shard.map.find(want[j]);
        if (it != shard.map.end() && it->second == capacity_ + claimed[j]) {
          shard.map.erase(it);
        }
      }
      staging_[claimed[j]].pid = kInvalidPageId;
      MarkStagingReady(claimed[j]);
    }
    {
      std::lock_guard<std::mutex> ls(staging_mu_);
      for (uint32_t st : claimed) retired_staging_.push_back(st);
      retired_count_.store(static_cast<uint32_t>(retired_staging_.size()),
                           std::memory_order_release);
    }
    prefetch_wasted_.fetch_add(claimed.size(), std::memory_order_relaxed);
    Metrics().wasted->Add(claimed.size());
    return s;
  }
  for (size_t j = 0; j < claimed.size(); ++j) {
    MarkStagingReady(claimed[j]);
  }
  prefetched_.fetch_add(want.size(), std::memory_order_relaxed);
  Metrics().prefetched->Add(want.size());
  return Status::OK();
}

void BufferPool::PrefetchHint(const PageId* pids, size_t n) {
  if (!prefetch_.enabled || n == 0) return;
  n = std::min<size_t>(n, prefetch_.readahead_pages);
  if (prefetch_workers_ != nullptr) {
    std::vector<PageId> batch(pids, pids + n);
    prefetch_workers_->Submit([this, batch = std::move(batch)] {
      (void)Prefetch(batch.data(), batch.size());
    });
    return;
  }
  (void)Prefetch(pids, n);
}

Status BufferPool::NewPage(PageGuard* out) {
  PageId pid = disk_->AllocatePage();
  Status s = PinNewFrame(pid, out);
  if (!s.ok()) {
    // Undo the allocation — without this, every failed NewPage (pool
    // exhausted, all frames pinned) leaked a disk page forever.
    disk_->FreePage(pid);
    return s;
  }
  // Route the initial dirtying through MarkDirty so a fresh page created
  // inside a transaction is captured like any other touched page (a hash
  // overflow page allocated mid-install must be redo-logged, or recovery
  // would resurrect a bucket chain pointing at zeroed bytes).
  out->MarkDirty();
  return Status::OK();
}

bool BufferPool::FreePage(PageId pid) {
  if (wal_ != nullptr && InTxn()) {
    // Deferred to commit: the page stays allocated (and resident) until
    // the transaction's outcome is durable, so an abort simply forgets
    // the free and a crash can never have reused the page uncommitted.
    txn_frees_.push_back(pid);
    return true;
  }
  return DoFreePage(pid);
}

bool BufferPool::DoFreePage(PageId pid) {
  std::unique_lock<std::mutex> big(evict_mu_);
  RecycleRetiredStagingLocked();
  uint32_t frame = UINT32_MAX;
  uint32_t staged = UINT32_MAX;
  {
    Shard& shard = ShardFor(pid);
    std::lock_guard<std::mutex> l(shard.mu);
    auto it = shard.map.find(pid);
    if (it != shard.map.end()) {
      if (it->second >= capacity_) {
        // Unconsumed staged copy: never dirty, just drop it. Unmap here;
        // recycle below, after evict_mu_ is released (the hint's read may
        // still be in flight, and the unmapped frame is exclusively ours).
        staged = it->second - capacity_;
        shard.map.erase(it);
      } else {
        frame = it->second;
      }
    }
  }
  if (frame != UINT32_MAX) {
    int expected = 0;
    if (!frames_[frame].pin_count.compare_exchange_strong(
            expected, kEvicting, std::memory_order_acquire)) {
      return false;  // pinned: the caller keeps the page
    }
    // Write-back if dirty: the same write that eviction or the end-of-run
    // flush would charge, so freeing never hides an I/O. If the device
    // fails the write the frame is restored intact and the page stays
    // allocated — the caller keeps it, same contract as the pinned case.
    if (!ReclaimFrame(big, frame).ok()) return false;
    free_frames_.push_back(frame);
  }
  big.unlock();
  if (staged != UINT32_MAX) {
    WaitStagingReady(staged);  // the hint's read may still be in flight
    ReleaseStagingFrame(staged);
    prefetch_wasted_.fetch_add(1, std::memory_order_relaxed);
    Metrics().wasted->Add(1);
  }
  disk_->FreePage(pid);
  return true;
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::mutex> big(evict_mu_);
  for (Frame& f : frames_) {
    if (f.in_use && f.dirty.load(std::memory_order_relaxed)) {
      // Flush writes carry the tag of the component that dirtied the page,
      // same as eviction write-backs.
      ScopedIoTag tag(f.dirty_tag.load(std::memory_order_relaxed));
      OBJREP_RETURN_NOT_OK(disk_->WritePage(f.pid, f.page));
      f.dirty.store(false, std::memory_order_relaxed);
    }
  }
  return Status::OK();
}

void BufferPool::InvalidateAllClean() {
  std::unique_lock<std::mutex> big(evict_mu_);
  if (staging_count_ > 0) DropStagedPages();
  for (uint32_t i = 0; i < frames_.size(); ++i) {
    Frame& f = frames_[i];
    if (!f.in_use || f.dirty.load(std::memory_order_relaxed)) continue;
    int expected = 0;
    if (!f.pin_count.compare_exchange_strong(expected, kEvicting,
                                             std::memory_order_acquire)) {
      continue;  // pinned
    }
    // Clean by the check above; ReclaimFrame will not write (and therefore
    // never releases evict_mu_).
    OBJREP_CHECK(ReclaimFrame(big, i).ok());
    free_frames_.push_back(i);
  }
}

void BufferPool::ResetStats() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  prefetched_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  eviction_writes_.store(0, std::memory_order_relaxed);
  prefetch_promoted_.store(0, std::memory_order_relaxed);
  prefetch_wasted_.store(0, std::memory_order_relaxed);
  coalesced_misses_.store(0, std::memory_order_relaxed);
  inflight_waits_.store(0, std::memory_order_relaxed);
  staging_cv_waits_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Transactions (DESIGN.md §10). No-steal + write-through + redo-only WAL.

Status BufferPool::BeginTxn() {
  if (wal_ == nullptr) return Status::OK();
  if (InTxn()) {
    ++txn_depth_;
    return Status::OK();
  }
  if (needs_recovery_.load(std::memory_order_acquire)) {
    // A committed transaction's write-through apply failed. Until redo
    // recovery runs, a new commit could be partially rolled back by that
    // redo (its pages may share frames with the unapplied transaction's),
    // so refuse to open one.
    return Status::IOError("volume needs recovery before new transactions");
  }
  wal_mu_.lock();
  txn_owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  txn_active_.store(true, std::memory_order_release);
  txn_depth_ = 1;
  txn_failed_ = false;
  txn_id_ = wal_->Begin();
  txn_frames_.clear();
  txn_frees_.clear();
  return Status::OK();
}

void BufferPool::NoteTxnWrite(uint32_t frame) {
  // Owner thread only; the caller holds a pin, so frame -> pid is stable.
  // Transactions touch at most a few dozen pages; linear dedup is fine.
  for (uint32_t f : txn_frames_) {
    if (f == frame) return;
  }
  // The no-steal pin: while the transaction is open the frame cannot be
  // evicted, so no uncommitted image can ever reach the volume.
  frames_[frame].pin_count.fetch_add(1, std::memory_order_relaxed);
  txn_frames_.push_back(frame);
}

Status BufferPool::CommitTxn() {
  if (wal_ == nullptr) return Status::OK();
  OBJREP_CHECK_MSG(InTxn(), "CommitTxn without an owned transaction");
  if (txn_depth_ > 1) {
    --txn_depth_;
    return Status::OK();
  }
  Status s;
  if (txn_failed_) {
    // A nested scope aborted; the outer commit cannot resurrect it.
    DropTxnFrames();
    s = Status::Internal("transaction aborted by nested scope");
  } else {
    s = DoCommit();
  }
  EndTxnState();
  return s;
}

void BufferPool::AbortTxn() {
  if (wal_ == nullptr) return;
  OBJREP_CHECK_MSG(InTxn(), "AbortTxn without an owned transaction");
  if (txn_depth_ > 1) {
    // Defer to the outermost scope, poisoning its commit.
    --txn_depth_;
    txn_failed_ = true;
    return;
  }
  DropTxnFrames();
  EndTxnState();
}

Status BufferPool::DoCommit() {
  if (txn_frames_.empty() && txn_frees_.empty()) return Status::OK();
  FaultInjector* fi = disk_->fault_injector();

  Status s = fi->MaybeCrash("wal.commit.begin");
  if (s.ok()) {
    // Log after-images in page-id order: the log content of a transaction
    // is then a function of *what* it touched, not of guard access order.
    std::sort(txn_frames_.begin(), txn_frames_.end(),
              [this](uint32_t a, uint32_t b) {
                return frames_[a].pid < frames_[b].pid;
              });
    for (uint32_t fr : txn_frames_) {
      wal_->AppendPageImage(txn_id_, frames_[fr].pid, frames_[fr].page);
    }
    for (PageId pid : txn_frees_) {
      wal_->AppendFreePage(txn_id_, pid);
    }
    s = wal_->Commit(txn_id_);
  }
  if (!s.ok()) {
    // Never reached the commit point: the transaction is simply gone.
    // Drop its frames; the volume holds the last committed image of every
    // touched page (no-steal + write-through induction).
    DropTxnFrames();
    return s;
  }

  // Durable. Write through so the volume converges to the committed state
  // immediately; a crash anywhere in here is repaired by WAL redo.
  // Write-through traffic is the WAL protocol's, not the mutating
  // component's — the component's own tag would double-bill it for pages
  // the no-WAL run writes lazily at eviction/flush.
  ScopedIoTag wal_tag(IoTag::kWal);
  Status apply = Status::OK();
  for (uint32_t fr : txn_frames_) {
    if (apply.ok()) apply = fi->MaybeCrash("wal.apply.page");
    if (apply.ok()) apply = disk_->WritePage(frames_[fr].pid, frames_[fr].page);
    if (apply.ok()) frames_[fr].dirty.store(false, std::memory_order_relaxed);
  }
  // Release the no-steal pins regardless of apply outcome: the content is
  // committed either way. Frames whose write-through failed stay dirty, so
  // a later eviction/flush (or recovery redo) still converges the volume.
  // No restamp — the extra pin was invisible to the LRU.
  for (uint32_t fr : txn_frames_) {
    Unpin(fr, /*restamp=*/false);
  }
  txn_frames_.clear();
  if (apply.ok()) {
    for (PageId pid : txn_frees_) {
      apply = fi->MaybeCrash("wal.apply.free");
      if (!apply.ok()) break;
      DoFreePage(pid);
    }
  }
  txn_frees_.clear();
  if (apply.ok()) apply = wal_->AppendApplied(txn_id_);
  if (!apply.ok()) {
    // Committed but not (provably) fully applied: the volume must be
    // redone before the next transaction (see BeginTxn).
    needs_recovery_.store(true, std::memory_order_release);
  }
  return apply;
}

void BufferPool::DropTxnFrames() {
  std::unique_lock<std::mutex> big(evict_mu_);
  for (uint32_t fr : txn_frames_) {
    Frame& f = frames_[fr];
    // By commit/abort time every guard is released (RAII scopes inside the
    // strategy) and the LockManager isolates writers, so the no-steal pin
    // is the only one left. Claim it and drop the frame without write-back.
    int expected = 1;
    OBJREP_CHECK_MSG(f.pin_count.compare_exchange_strong(
                         expected, kEvicting, std::memory_order_acquire),
                     "transaction frame still pinned at abort");
    f.dirty.store(false, std::memory_order_relaxed);
    OBJREP_CHECK(ReclaimFrame(big, fr).ok());  // clean: cannot fail
    free_frames_.push_back(fr);
  }
  txn_frames_.clear();
  txn_frees_.clear();
}

void BufferPool::EndTxnState() {
  txn_frames_.clear();
  txn_frees_.clear();
  txn_depth_ = 0;
  txn_failed_ = false;
  txn_active_.store(false, std::memory_order_release);
  txn_owner_.store(std::thread::id(), std::memory_order_relaxed);
  wal_mu_.unlock();
}

uint64_t BufferPool::DropAllFrames() {
  std::unique_lock<std::mutex> big(evict_mu_);
  OBJREP_CHECK_MSG(!txn_active_.load(std::memory_order_acquire),
                   "DropAllFrames during an active transaction");
  // The caller is the recovery path; WAL redo follows and repairs any
  // committed-but-unapplied transaction.
  needs_recovery_.store(false, std::memory_order_release);
  if (staging_count_ > 0) DropStagedPages();
  RecycleRetiredStagingLocked();
  uint64_t dropped = 0;
  for (uint32_t i = 0; i < frames_.size(); ++i) {
    Frame& f = frames_[i];
    if (!f.in_use) continue;
    int expected = 0;
    OBJREP_CHECK_MSG(f.pin_count.compare_exchange_strong(
                         expected, kEvicting, std::memory_order_acquire),
                     "DropAllFrames with pinned frames");
    f.dirty.store(false, std::memory_order_relaxed);
    OBJREP_CHECK(ReclaimFrame(big, i).ok());  // forced clean: cannot fail
    free_frames_.push_back(i);
    ++dropped;
  }
  return dropped;
}

}  // namespace objrep
