#include "storage/buffer_pool.h"

#include <thread>

#include "util/macros.h"

namespace objrep {

BufferPool::BufferPool(DiskManager* disk, uint32_t capacity)
    : disk_(disk), capacity_(capacity), frames_(capacity) {
  OBJREP_CHECK(capacity > 0);
  free_frames_.reserve(capacity);
  for (uint32_t i = 0; i < capacity; ++i) {
    free_frames_.push_back(capacity - 1 - i);
  }
}

void BufferPool::Unpin(uint32_t frame) {
  Frame& f = frames_[frame];
  // Stamp while the pin is still held: once pin_count reaches 0 an evictor
  // may claim and reuse the frame, so the stamp must land first. Nested
  // pins overwrite each other; the final (1 -> 0) unpin writes last, which
  // is exactly the old push-to-LRU-on-last-release order.
  f.last_unpin.store(clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                     std::memory_order_relaxed);
  int prev = f.pin_count.fetch_sub(1, std::memory_order_release);
  OBJREP_CHECK(prev > 0);
}

Status BufferPool::ReclaimFrameLocked(uint32_t frame) {
  Frame& f = frames_[frame];
  // Unmap first: after the erase no hit path can reach the frame, so the
  // claimed pin_count can be dropped without a window for false pins.
  {
    Shard& shard = ShardFor(f.pid);
    std::lock_guard<std::mutex> l(shard.mu);
    shard.map.erase(f.pid);
  }
  Status s = Status::OK();
  if (f.dirty.load(std::memory_order_relaxed)) {
    s = disk_->WritePage(f.pid, f.page);
    f.dirty.store(false, std::memory_order_relaxed);
  }
  f.in_use = false;
  f.pid = kInvalidPageId;
  f.pin_count.store(0, std::memory_order_release);
  return s;
}

Status BufferPool::AllocateFrameLocked(uint32_t* frame_out) {
  if (!free_frames_.empty()) {
    *frame_out = free_frames_.back();
    free_frames_.pop_back();
    return Status::OK();
  }
  for (;;) {
    // Strict LRU: the unpinned in-use frame with the oldest last unpin.
    uint32_t victim = UINT32_MAX;
    uint64_t oldest = UINT64_MAX;
    for (uint32_t i = 0; i < frames_.size(); ++i) {
      Frame& f = frames_[i];
      if (!f.in_use || f.pin_count.load(std::memory_order_relaxed) != 0) {
        continue;
      }
      uint64_t stamp = f.last_unpin.load(std::memory_order_relaxed);
      if (stamp < oldest) {
        oldest = stamp;
        victim = i;
      }
    }
    if (victim == UINT32_MAX) {
      return Status::NoSpace("buffer pool exhausted: all frames pinned");
    }
    int expected = 0;
    if (!frames_[victim].pin_count.compare_exchange_strong(
            expected, kEvicting, std::memory_order_acquire)) {
      continue;  // raced with a concurrent pin; rescan
    }
    OBJREP_RETURN_NOT_OK(ReclaimFrameLocked(victim));
    *frame_out = victim;
    return Status::OK();
  }
}

Status BufferPool::PinFrameFor(PageId pid, bool load_from_disk,
                               PageGuard* out) {
  std::lock_guard<std::mutex> big(evict_mu_);
  if (load_from_disk) {
    // Another thread may have loaded `pid` while we waited for evict_mu_.
    // No evictor can run concurrently (we hold evict_mu_), so a mapped
    // frame is pinnable with a plain increment.
    Shard& shard = ShardFor(pid);
    std::lock_guard<std::mutex> l(shard.mu);
    auto it = shard.map.find(pid);
    if (it != shard.map.end()) {
      frames_[it->second].pin_count.fetch_add(1, std::memory_order_acquire);
      *out = PageGuard(this, it->second, pid);
      return Status::OK();
    }
  }
  uint32_t frame;
  OBJREP_RETURN_NOT_OK(AllocateFrameLocked(&frame));
  Frame& f = frames_[frame];
  f.pid = pid;
  f.pin_count.store(1, std::memory_order_relaxed);
  f.dirty.store(!load_from_disk, std::memory_order_relaxed);
  f.in_use = true;
  if (load_from_disk) {
    Status s = disk_->ReadPage(pid, &f.page);
    if (!s.ok()) {
      f.in_use = false;
      f.pid = kInvalidPageId;
      f.pin_count.store(0, std::memory_order_relaxed);
      free_frames_.push_back(frame);
      return s;
    }
  } else {
    f.page.Zero();
  }
  {
    Shard& shard = ShardFor(pid);
    std::lock_guard<std::mutex> l(shard.mu);
    shard.map[pid] = frame;
  }
  *out = PageGuard(this, frame, pid);
  return Status::OK();
}

Status BufferPool::FetchPage(PageId pid, PageGuard* out) {
  Shard& shard = ShardFor(pid);
  for (;;) {
    bool claimed = false;
    {
      std::lock_guard<std::mutex> l(shard.mu);
      auto it = shard.map.find(pid);
      if (it == shard.map.end()) break;  // miss
      Frame& f = frames_[it->second];
      int c = f.pin_count.load(std::memory_order_relaxed);
      while (c >= 0) {
        if (f.pin_count.compare_exchange_weak(c, c + 1,
                                              std::memory_order_acquire)) {
          hits_.fetch_add(1, std::memory_order_relaxed);
          *out = PageGuard(this, it->second, pid);
          return Status::OK();
        }
      }
      // pin_count == kEvicting: an evictor claimed the frame and is about
      // to erase this mapping (it needs our bucket latch to do so).
      claimed = true;
    }
    if (!claimed) break;
    std::this_thread::yield();  // let the evictor finish, then re-probe
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return PinFrameFor(pid, /*load_from_disk=*/true, out);
}

Status BufferPool::NewPage(PageGuard* out) {
  PageId pid = disk_->AllocatePage();
  return PinFrameFor(pid, /*load_from_disk=*/false, out);
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::mutex> big(evict_mu_);
  for (Frame& f : frames_) {
    if (f.in_use && f.dirty.load(std::memory_order_relaxed)) {
      OBJREP_RETURN_NOT_OK(disk_->WritePage(f.pid, f.page));
      f.dirty.store(false, std::memory_order_relaxed);
    }
  }
  return Status::OK();
}

void BufferPool::InvalidateAllClean() {
  std::lock_guard<std::mutex> big(evict_mu_);
  for (uint32_t i = 0; i < frames_.size(); ++i) {
    Frame& f = frames_[i];
    if (!f.in_use || f.dirty.load(std::memory_order_relaxed)) continue;
    int expected = 0;
    if (!f.pin_count.compare_exchange_strong(expected, kEvicting,
                                             std::memory_order_acquire)) {
      continue;  // pinned
    }
    // Clean by the check above; ReclaimFrameLocked will not write.
    OBJREP_CHECK(ReclaimFrameLocked(i).ok());
    free_frames_.push_back(i);
  }
}

void BufferPool::ResetStats() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

}  // namespace objrep
