#include "storage/buffer_pool.h"

#include "util/macros.h"

namespace objrep {

BufferPool::BufferPool(DiskManager* disk, uint32_t capacity)
    : disk_(disk), capacity_(capacity), frames_(capacity) {
  OBJREP_CHECK(capacity > 0);
  free_frames_.reserve(capacity);
  for (uint32_t i = 0; i < capacity; ++i) {
    free_frames_.push_back(capacity - 1 - i);
  }
}

void BufferPool::LruPushBack(uint32_t frame) {
  Frame& f = frames_[frame];
  OBJREP_CHECK(!f.in_lru);
  f.in_lru = true;
  f.lru_prev = lru_tail_;
  f.lru_next = UINT32_MAX;
  if (lru_tail_ != UINT32_MAX) {
    frames_[lru_tail_].lru_next = frame;
  } else {
    lru_head_ = frame;
  }
  lru_tail_ = frame;
}

void BufferPool::LruRemove(uint32_t frame) {
  Frame& f = frames_[frame];
  OBJREP_CHECK(f.in_lru);
  f.in_lru = false;
  if (f.lru_prev != UINT32_MAX) {
    frames_[f.lru_prev].lru_next = f.lru_next;
  } else {
    lru_head_ = f.lru_next;
  }
  if (f.lru_next != UINT32_MAX) {
    frames_[f.lru_next].lru_prev = f.lru_prev;
  } else {
    lru_tail_ = f.lru_prev;
  }
  f.lru_prev = f.lru_next = UINT32_MAX;
}

void BufferPool::Unpin(uint32_t frame) {
  Frame& f = frames_[frame];
  OBJREP_CHECK(f.pin_count > 0);
  if (--f.pin_count == 0) {
    LruPushBack(frame);
  }
}

Status BufferPool::Evict(uint32_t* frame_out) {
  if (lru_head_ == UINT32_MAX) {
    return Status::NoSpace("buffer pool exhausted: all frames pinned");
  }
  uint32_t victim = lru_head_;
  LruRemove(victim);
  Frame& f = frames_[victim];
  if (f.dirty) {
    OBJREP_RETURN_NOT_OK(disk_->WritePage(f.pid, f.page));
    f.dirty = false;
  }
  table_.erase(f.pid);
  f.in_use = false;
  f.pid = kInvalidPageId;
  *frame_out = victim;
  return Status::OK();
}

Status BufferPool::PinFrameFor(PageId pid, bool load_from_disk,
                               uint32_t* frame_out) {
  uint32_t frame;
  if (!free_frames_.empty()) {
    frame = free_frames_.back();
    free_frames_.pop_back();
  } else {
    OBJREP_RETURN_NOT_OK(Evict(&frame));
  }
  Frame& f = frames_[frame];
  f.pid = pid;
  f.pin_count = 1;
  f.dirty = false;
  f.in_use = true;
  if (load_from_disk) {
    Status s = disk_->ReadPage(pid, &f.page);
    if (!s.ok()) {
      f.in_use = false;
      f.pin_count = 0;
      free_frames_.push_back(frame);
      return s;
    }
  } else {
    f.page.Zero();
  }
  table_[pid] = frame;
  *frame_out = frame;
  return Status::OK();
}

Status BufferPool::FetchPage(PageId pid, PageGuard* out) {
  auto it = table_.find(pid);
  if (it != table_.end()) {
    ++hits_;
    uint32_t frame = it->second;
    Frame& f = frames_[frame];
    if (f.pin_count++ == 0) {
      LruRemove(frame);
    }
    *out = PageGuard(this, frame, pid);
    return Status::OK();
  }
  ++misses_;
  uint32_t frame;
  OBJREP_RETURN_NOT_OK(PinFrameFor(pid, /*load_from_disk=*/true, &frame));
  *out = PageGuard(this, frame, pid);
  return Status::OK();
}

Status BufferPool::NewPage(PageGuard* out) {
  PageId pid = disk_->AllocatePage();
  uint32_t frame;
  OBJREP_RETURN_NOT_OK(PinFrameFor(pid, /*load_from_disk=*/false, &frame));
  frames_[frame].dirty = true;
  *out = PageGuard(this, frame, pid);
  return Status::OK();
}

Status BufferPool::FlushAll() {
  for (Frame& f : frames_) {
    if (f.in_use && f.dirty) {
      OBJREP_RETURN_NOT_OK(disk_->WritePage(f.pid, f.page));
      f.dirty = false;
    }
  }
  return Status::OK();
}

void BufferPool::InvalidateAllClean() {
  for (uint32_t i = 0; i < frames_.size(); ++i) {
    Frame& f = frames_[i];
    if (f.in_use && f.pin_count == 0 && !f.dirty) {
      LruRemove(i);
      table_.erase(f.pid);
      f.in_use = false;
      f.pid = kInvalidPageId;
      free_frames_.push_back(i);
    }
  }
}

}  // namespace objrep
