#include "storage/wal.h"

#include <cstring>
#include <unordered_map>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/disk_manager.h"
#include "storage/fault_injector.h"
#include "util/hash.h"
#include "util/macros.h"

namespace objrep {

namespace {

// Cumulative registry mirrors (DESIGN.md §11).
struct WalMetrics {
  Counter* records = MetricsRegistry::Global().GetCounter("wal.records");
  Counter* bytes = MetricsRegistry::Global().GetCounter("wal.bytes");
  Counter* syncs = MetricsRegistry::Global().GetCounter("wal.syncs");
  Counter* commits = MetricsRegistry::Global().GetCounter("wal.commits");
  Counter* recoveries =
      MetricsRegistry::Global().GetCounter("wal.recovery.runs");
  Counter* txns_redone =
      MetricsRegistry::Global().GetCounter("wal.recovery.txns_redone");
  Counter* pages_redone =
      MetricsRegistry::Global().GetCounter("wal.recovery.pages_redone");
};

WalMetrics& Metrics() {
  static WalMetrics* m = new WalMetrics();
  return *m;
}

// Record framing:  [u8 type][u64 txn][u32 payload_len] payload [u64 fnv]
// The checksum covers header + payload; a record whose framing runs past
// the durable watermark or whose checksum mismatches is a torn tail and
// ends the recoverable log.
constexpr size_t kHeaderBytes = 1 + 8 + 4;
constexpr size_t kTrailerBytes = 8;

template <typename T>
T LoadLE(const uint8_t* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

template <typename T>
void StoreLE(std::vector<uint8_t>* buf, T v) {
  const auto* p = reinterpret_cast<const uint8_t*>(&v);
  buf->insert(buf->end(), p, p + sizeof(T));
}

}  // namespace

uint64_t Wal::Begin() {
  std::lock_guard<std::mutex> guard(mu_);
  return next_txn_++;
}

void Wal::AppendRecord(RecordType type, uint64_t txn, const uint8_t* payload,
                       uint32_t payload_len) {
  size_t start = log_.size();
  log_.push_back(static_cast<uint8_t>(type));
  StoreLE<uint64_t>(&log_, txn);
  StoreLE<uint32_t>(&log_, payload_len);
  if (payload_len != 0) {
    log_.insert(log_.end(), payload, payload + payload_len);
  }
  uint64_t crc = Fnv1a64(log_.data() + start, kHeaderBytes + payload_len);
  StoreLE<uint64_t>(&log_, crc);
  Metrics().records->Add(1);
  Metrics().bytes->Add(log_.size() - start);
}

void Wal::AppendPageImage(uint64_t txn, PageId pid, const Page& image) {
  uint8_t payload[4 + kPageSize];
  std::memcpy(payload, &pid, 4);
  std::memcpy(payload + 4, image.data, kPageSize);
  std::lock_guard<std::mutex> guard(mu_);
  AppendRecord(kPageImage, txn, payload, sizeof(payload));
}

void Wal::AppendFreePage(uint64_t txn, PageId pid) {
  uint8_t payload[4];
  std::memcpy(payload, &pid, 4);
  std::lock_guard<std::mutex> guard(mu_);
  AppendRecord(kFreePage, txn, payload, sizeof(payload));
}

void Wal::AppendMvccUpdate(uint64_t txn, uint64_t commit_ts,
                           const std::vector<std::pair<uint64_t, int32_t>>&
                               updates) {
  // Payload: [u64 commit_ts][u32 count] + count x [u64 packed_oid][i32 v].
  std::vector<uint8_t> payload;
  payload.reserve(12 + updates.size() * 12);
  StoreLE<uint64_t>(&payload, commit_ts);
  StoreLE<uint32_t>(&payload, static_cast<uint32_t>(updates.size()));
  for (const auto& [oid, value] : updates) {
    StoreLE<uint64_t>(&payload, oid);
    StoreLE<int32_t>(&payload, value);
  }
  std::lock_guard<std::mutex> guard(mu_);
  AppendRecord(kMvccUpdate, txn, payload.data(),
               static_cast<uint32_t>(payload.size()));
}

Status Wal::Sync() {
  FaultInjector* fi = disk_->fault_injector();
  Status torn = fi->MaybeCrash("wal.sync.torn");
  if (!torn.ok()) {
    // The device persisted part of the tail before dying. Cut roughly in
    // half — always making progress, and for multi-record tails always
    // landing inside a record so recovery must checksum-reject it.
    durable_ += (log_.size() - durable_ + 1) / 2;
    return torn;
  }
  durable_ = log_.size();
  Metrics().syncs->Add(1);
  return Status::OK();
}

Status Wal::Commit(uint64_t txn) {
  // The span opens before the mutex, so wal_mu_ queueing is charged to
  // the request that paid it — under the trace id it inherited from the
  // worker's ScopedTraceId.
  TraceSpan span("wal_commit", "wal");
  span.SetArg("txn", txn);
  std::lock_guard<std::mutex> guard(mu_);
  FaultInjector* fi = disk_->fault_injector();
  AppendRecord(kCommit, txn, nullptr, 0);
  OBJREP_RETURN_NOT_OK(fi->MaybeCrash("wal.commit.before_sync"));
  OBJREP_RETURN_NOT_OK(Sync());  // <- the commit point
  ++committed_txns_;
  ++open_applies_;
  Metrics().commits->Add(1);
  return fi->MaybeCrash("wal.commit.after_sync");
}

Status Wal::AppendApplied(uint64_t txn) {
  TraceSpan span("wal_applied", "wal");
  span.SetArg("txn", txn);
  std::lock_guard<std::mutex> guard(mu_);
  FaultInjector* fi = disk_->fault_injector();
  AppendRecord(kApplied, txn, nullptr, 0);
  OBJREP_RETURN_NOT_OK(fi->MaybeCrash("wal.applied.before_sync"));
  OBJREP_RETURN_NOT_OK(Sync());
  OBJREP_CHECK_MSG(open_applies_ > 0, "applied record without open commit");
  if (--open_applies_ == 0) {
    // Every committed transaction is written through: the entire log is
    // redo-dead. Truncating here is the (free) checkpoint.
    log_.clear();
    durable_ = 0;
  }
  return Status::OK();
}

Status Wal::Recover(WalRecoveryStats* stats,
                    std::vector<WalMvccRedo>* mvcc_redo) {
  std::lock_guard<std::mutex> guard(mu_);
  WalRecoveryStats local;
  WalRecoveryStats* st = stats != nullptr ? stats : &local;
  *st = WalRecoveryStats{};
  if (mvcc_redo != nullptr) mvcc_redo->clear();

  struct TxnRecords {
    std::vector<std::pair<PageId, size_t>> images;  // pid, payload offset
    std::vector<PageId> frees;
    std::vector<size_t> mvcc;  // payload offsets of kMvccUpdate records
    bool committed = false;
    bool applied = false;
  };
  // Commit order == log order (the pool serializes transactions), so an
  // insertion-ordered vector with an id index is enough.
  std::vector<std::pair<uint64_t, TxnRecords>> txns;
  std::unordered_map<uint64_t, size_t> index;
  auto txn_of = [&](uint64_t id) -> TxnRecords& {
    auto it = index.find(id);
    if (it == index.end()) {
      index.emplace(id, txns.size());
      txns.emplace_back(id, TxnRecords{});
      return txns.back().second;
    }
    return txns[it->second].second;
  };

  // Parse the durable prefix, stopping at the first torn/corrupt record.
  size_t pos = 0;
  while (pos + kHeaderBytes + kTrailerBytes <= durable_) {
    uint8_t type = log_[pos];
    uint64_t txn = LoadLE<uint64_t>(log_.data() + pos + 1);
    uint32_t len = LoadLE<uint32_t>(log_.data() + pos + 9);
    if (type < kPageImage || type > kMvccUpdate) break;
    size_t rec_end = pos + kHeaderBytes + len + kTrailerBytes;
    if (rec_end > durable_) break;  // framing runs past the watermark: torn
    uint64_t crc = LoadLE<uint64_t>(log_.data() + pos + kHeaderBytes + len);
    if (Fnv1a64(log_.data() + pos, kHeaderBytes + len) != crc) break;
    const uint8_t* payload = log_.data() + pos + kHeaderBytes;
    switch (static_cast<RecordType>(type)) {
      case kPageImage: {
        OBJREP_CHECK_MSG(len == 4 + kPageSize, "bad page-image record");
        PageId pid = LoadLE<PageId>(payload);
        txn_of(txn).images.emplace_back(pid, pos + kHeaderBytes + 4);
        break;
      }
      case kFreePage: {
        OBJREP_CHECK_MSG(len == 4, "bad free-page record");
        txn_of(txn).frees.push_back(LoadLE<PageId>(payload));
        break;
      }
      case kCommit:
        txn_of(txn).committed = true;
        break;
      case kApplied:
        txn_of(txn).applied = true;
        break;
      case kMvccUpdate: {
        OBJREP_CHECK_MSG(len >= 12, "bad mvcc-update record");
        uint32_t count = LoadLE<uint32_t>(payload + 8);
        OBJREP_CHECK_MSG(len == 12 + count * 12ull, "bad mvcc-update record");
        txn_of(txn).mvcc.push_back(pos + kHeaderBytes);
        break;
      }
    }
    pos = rec_end;
  }
  st->torn_bytes = durable_ - pos;

  // Redo committed-but-unapplied transactions in log order. Page image
  // rewrites are idempotent; frees are re-applied idempotently because a
  // crash can land between the individual frees of one transaction.
  for (const auto& [id, recs] : txns) {
    (void)id;
    if (!recs.committed) continue;  // never reached the commit point: lost
    ++st->txns_seen;
    if (recs.applied) continue;
    ++st->txns_redone;
    for (const auto& [pid, off] : recs.images) {
      Page img;
      std::memcpy(img.data, log_.data() + off, kPageSize);
      disk_->WritePageRaw(pid, img);
      ++st->pages_redone;
    }
    for (PageId pid : recs.frees) {
      if (disk_->TryFreePage(pid)) ++st->frees_redone;
    }
    // Logical MVCC records are not page images; hand them back for the
    // objstore layer to replay through the table layer (absolute values,
    // so the replay is idempotent).
    for (size_t off : recs.mvcc) {
      if (mvcc_redo == nullptr) break;
      WalMvccRedo redo;
      redo.txn = id;
      redo.commit_ts = LoadLE<uint64_t>(log_.data() + off);
      uint32_t count = LoadLE<uint32_t>(log_.data() + off + 8);
      redo.updates.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        const uint8_t* p = log_.data() + off + 12 + i * 12ull;
        redo.updates.emplace_back(LoadLE<uint64_t>(p),
                                  LoadLE<int32_t>(p + 8));
      }
      mvcc_redo->push_back(std::move(redo));
    }
  }
  Metrics().recoveries->Add(1);
  Metrics().txns_redone->Add(st->txns_redone);
  Metrics().pages_redone->Add(st->pages_redone);
  return Status::OK();
}

void Wal::Reset() {
  std::lock_guard<std::mutex> guard(mu_);
  log_.clear();
  durable_ = 0;
  committed_txns_ = 0;
  open_applies_ = 0;
}

}  // namespace objrep
