// Page-level write-ahead commit log (DESIGN.md §10).
//
// Modeled on an append-only commit log: fixed-header records with a
// trailing FNV-1a checksum, appended to a byte buffer with an explicit
// durable watermark. Everything past the watermark is lost in a crash;
// Sync() advances it (and is where the `wal.sync.torn` crash point can
// leave a half-record durable, which recovery must detect and discard).
//
// Redo-only protocol — there are no before-images because the buffer pool
// runs the companion no-steal policy (txn-dirtied frames hold an extra pin
// until commit, so uncommitted data never reaches disk):
//
//   BeginTxn                       (BufferPool, one writer at a time)
//     ... strategy mutates pages through PageGuards ...
//   CommitTxn:
//     append kPageImage for every touched page, kFreePage for every
//       deferred free, then kCommit; Sync()           <- commit point
//     write-through: WritePage every image to the volume, apply frees
//     append kApplied; Sync()     <- marks redo unnecessary
//
// Recovery replays, in log order, every transaction whose kCommit record
// is durable and intact but whose kApplied record is not: page images are
// rewritten (idempotent) and frees re-applied (idempotently — a crash can
// land between individual frees). Transactions without a durable commit
// record are ignored; the no-steal pool guarantees none of their pages hit
// the volume. Once every committed transaction is applied the whole log is
// dead weight, so AppendApplied truncates it — the checkpoint is free
// because apply is write-through.
//
// MVCC commits (DESIGN.md §15) ride the same framing with a *logical*
// record, kMvccUpdate: absolute (oid, ret1) pairs plus the commit
// timestamp. Unlike page transactions, an MVCC commit does not write base
// pages through — the version only lands on base pages at the next fold —
// so its kApplied is deferred until FoldMvcc. Recover() hands the
// committed-but-unapplied MVCC records back to the caller in log order
// (== commit-timestamp order; commits are serialized) and the objstore
// layer replays them through the table layer, which is idempotent because
// the values are absolute.
//
// Thread safety: all public methods lock an internal mutex. The BufferPool
// still serializes *page* transactions on wal_mu_, but MVCC commits (and
// the cache-install pool transactions that run during lock-free snapshot
// retrieves) interleave with them on this log. Records of different
// transactions may interleave; framing is per-record and recovery groups
// by transaction id, so interleaving is harmless.
#ifndef OBJREP_STORAGE_WAL_H_
#define OBJREP_STORAGE_WAL_H_

#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "storage/page.h"
#include "util/status.h"

namespace objrep {

class DiskManager;
class FaultInjector;

/// Outcome of Wal::Recover, for reports and test assertions.
struct WalRecoveryStats {
  uint64_t txns_seen = 0;      ///< committed txns found in the durable log
  uint64_t txns_redone = 0;    ///< committed-but-unapplied txns replayed
  uint64_t pages_redone = 0;   ///< page images rewritten to the volume
  uint64_t frees_redone = 0;   ///< deferred frees re-applied
  uint64_t torn_bytes = 0;     ///< durable bytes discarded as torn tail
};

/// One committed-but-unapplied MVCC commit found by Recover, in log order.
struct WalMvccRedo {
  uint64_t txn = 0;
  uint64_t commit_ts = 0;
  /// Absolute new ret1 per packed child OID.
  std::vector<std::pair<uint64_t, int32_t>> updates;
};

/// In-memory write-ahead commit log with an explicit durable watermark.
class Wal {
 public:
  explicit Wal(DiskManager* disk) : disk_(disk) {}
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Starts a new transaction; returns its id (monotonic from 1).
  uint64_t Begin();

  /// Appends the after-image of `pid` for `txn`. Not yet durable.
  void AppendPageImage(uint64_t txn, PageId pid, const Page& image);

  /// Appends a deferred free of `pid` for `txn`. Not yet durable.
  void AppendFreePage(uint64_t txn, PageId pid);

  /// Appends the logical MVCC-commit record for `txn`: the commit
  /// timestamp and the absolute (packed OID, new ret1) pairs. Not yet
  /// durable — follow with Commit(txn). The matching AppendApplied is
  /// deferred to the fold that writes the versions onto base pages.
  void AppendMvccUpdate(uint64_t txn, uint64_t commit_ts,
                        const std::vector<std::pair<uint64_t, int32_t>>&
                            updates);

  /// Appends the commit record and makes the log durable — the commit
  /// point. Crash points: wal.commit.before_sync / wal.sync.torn /
  /// wal.commit.after_sync.
  Status Commit(uint64_t txn);

  /// Appends the applied record (txn fully written through) and syncs.
  /// When no committed transaction remains unapplied, truncates the log.
  /// Crash point: wal.applied.before_sync.
  Status AppendApplied(uint64_t txn);

  /// Redo pass over the durable prefix: validates record framing +
  /// checksums (stopping at the first torn/corrupt record), then replays
  /// committed-but-unapplied transactions in log order onto the volume.
  /// Call with the injector's crash state already cleared. MVCC records of
  /// committed-but-unapplied transactions are not replayed here (they are
  /// logical, not page images); they are appended to `mvcc_redo` in log
  /// order for the objstore layer to re-apply through the table layer.
  Status Recover(WalRecoveryStats* stats,
                 std::vector<WalMvccRedo>* mvcc_redo = nullptr);

  /// Drops all log state (post-recovery, or tests). Txn ids keep rising.
  void Reset();

  /// Bytes currently held by the log (durable or not).
  uint64_t size_bytes() const {
    std::lock_guard<std::mutex> guard(mu_);
    return log_.size();
  }
  uint64_t durable_bytes() const {
    std::lock_guard<std::mutex> guard(mu_);
    return durable_;
  }
  uint64_t committed_txns() const {
    std::lock_guard<std::mutex> guard(mu_);
    return committed_txns_;
  }

 private:
  enum RecordType : uint8_t {
    kPageImage = 1,
    kFreePage = 2,
    kCommit = 3,
    kApplied = 4,
    kMvccUpdate = 5,
  };

  void AppendRecord(RecordType type, uint64_t txn, const uint8_t* payload,
                    uint32_t payload_len);
  /// Advances the durable watermark to the log end (crash points apply).
  Status Sync();

  mutable std::mutex mu_;
  DiskManager* disk_;
  std::vector<uint8_t> log_;
  uint64_t durable_ = 0;  ///< log_[0, durable_) survives a crash
  uint64_t next_txn_ = 1;
  uint64_t committed_txns_ = 0;
  uint64_t open_applies_ = 0;  ///< committed txns whose kApplied isn't logged
};

}  // namespace objrep

#endif  // OBJREP_STORAGE_WAL_H_
