// Page-level write-ahead commit log (DESIGN.md §10).
//
// Modeled on an append-only commit log: fixed-header records with a
// trailing FNV-1a checksum, appended to a byte buffer with an explicit
// durable watermark. Everything past the watermark is lost in a crash;
// Sync() advances it (and is where the `wal.sync.torn` crash point can
// leave a half-record durable, which recovery must detect and discard).
//
// Redo-only protocol — there are no before-images because the buffer pool
// runs the companion no-steal policy (txn-dirtied frames hold an extra pin
// until commit, so uncommitted data never reaches disk):
//
//   BeginTxn                       (BufferPool, one writer at a time)
//     ... strategy mutates pages through PageGuards ...
//   CommitTxn:
//     append kPageImage for every touched page, kFreePage for every
//       deferred free, then kCommit; Sync()           <- commit point
//     write-through: WritePage every image to the volume, apply frees
//     append kApplied; Sync()     <- marks redo unnecessary
//
// Recovery replays, in log order, every transaction whose kCommit record
// is durable and intact but whose kApplied record is not: page images are
// rewritten (idempotent) and frees re-applied (idempotently — a crash can
// land between individual frees). Transactions without a durable commit
// record are ignored; the no-steal pool guarantees none of their pages hit
// the volume. Once every committed transaction is applied the whole log is
// dead weight, so AppendApplied truncates it — the checkpoint is free
// because apply is write-through.
//
// Thread safety: none needed here. The BufferPool serializes transactions
// on wal_mu_ and recovery is single-threaded by contract.
#ifndef OBJREP_STORAGE_WAL_H_
#define OBJREP_STORAGE_WAL_H_

#include <cstdint>
#include <vector>

#include "storage/page.h"
#include "util/status.h"

namespace objrep {

class DiskManager;
class FaultInjector;

/// Outcome of Wal::Recover, for reports and test assertions.
struct WalRecoveryStats {
  uint64_t txns_seen = 0;      ///< committed txns found in the durable log
  uint64_t txns_redone = 0;    ///< committed-but-unapplied txns replayed
  uint64_t pages_redone = 0;   ///< page images rewritten to the volume
  uint64_t frees_redone = 0;   ///< deferred frees re-applied
  uint64_t torn_bytes = 0;     ///< durable bytes discarded as torn tail
};

/// In-memory write-ahead commit log with an explicit durable watermark.
class Wal {
 public:
  explicit Wal(DiskManager* disk) : disk_(disk) {}
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Starts a new transaction; returns its id (monotonic from 1).
  uint64_t Begin();

  /// Appends the after-image of `pid` for `txn`. Not yet durable.
  void AppendPageImage(uint64_t txn, PageId pid, const Page& image);

  /// Appends a deferred free of `pid` for `txn`. Not yet durable.
  void AppendFreePage(uint64_t txn, PageId pid);

  /// Appends the commit record and makes the log durable — the commit
  /// point. Crash points: wal.commit.before_sync / wal.sync.torn /
  /// wal.commit.after_sync.
  Status Commit(uint64_t txn);

  /// Appends the applied record (txn fully written through) and syncs.
  /// When no committed transaction remains unapplied, truncates the log.
  /// Crash point: wal.applied.before_sync.
  Status AppendApplied(uint64_t txn);

  /// Redo pass over the durable prefix: validates record framing +
  /// checksums (stopping at the first torn/corrupt record), then replays
  /// committed-but-unapplied transactions in log order onto the volume.
  /// Call with the injector's crash state already cleared.
  Status Recover(WalRecoveryStats* stats);

  /// Drops all log state (post-recovery, or tests). Txn ids keep rising.
  void Reset();

  /// Bytes currently held by the log (durable or not).
  uint64_t size_bytes() const { return log_.size(); }
  uint64_t durable_bytes() const { return durable_; }
  uint64_t committed_txns() const { return committed_txns_; }

 private:
  enum RecordType : uint8_t {
    kPageImage = 1,
    kFreePage = 2,
    kCommit = 3,
    kApplied = 4,
  };

  void AppendRecord(RecordType type, uint64_t txn, const uint8_t* payload,
                    uint32_t payload_len);
  /// Advances the durable watermark to the log end (crash points apply).
  Status Sync();

  DiskManager* disk_;
  std::vector<uint8_t> log_;
  uint64_t durable_ = 0;  ///< log_[0, durable_) survives a crash
  uint64_t next_txn_ = 1;
  uint64_t committed_txns_ = 0;
  uint64_t open_applies_ = 0;  ///< committed txns whose kApplied isn't logged
};

}  // namespace objrep

#endif  // OBJREP_STORAGE_WAL_H_
