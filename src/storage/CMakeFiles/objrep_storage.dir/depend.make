# Empty dependencies file for objrep_storage.
# This may be replaced when dependencies are built.
