file(REMOVE_RECURSE
  "CMakeFiles/objrep_storage.dir/buffer_pool.cc.o"
  "CMakeFiles/objrep_storage.dir/buffer_pool.cc.o.d"
  "CMakeFiles/objrep_storage.dir/disk_manager.cc.o"
  "CMakeFiles/objrep_storage.dir/disk_manager.cc.o.d"
  "CMakeFiles/objrep_storage.dir/fault_injector.cc.o"
  "CMakeFiles/objrep_storage.dir/fault_injector.cc.o.d"
  "CMakeFiles/objrep_storage.dir/wal.cc.o"
  "CMakeFiles/objrep_storage.dir/wal.cc.o.d"
  "libobjrep_storage.a"
  "libobjrep_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/objrep_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
