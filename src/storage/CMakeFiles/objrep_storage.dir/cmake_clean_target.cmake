file(REMOVE_RECURSE
  "libobjrep_storage.a"
)
