// LRU buffer pool, safe for concurrent use by the execution engine.
//
// The paper fixes a main-memory buffer of 100 INGRES data pages for every
// experiment; the buffer pool is therefore a first-class part of the cost
// model — B-tree roots and hot leaves hit in memory, cold leaves cost one
// physical read, and dirty pages cost one physical write when evicted (or
// at end-of-run flush).
//
// Concurrency design (DESIGN.md §8, §17):
//   * The page table is sharded into kNumShards hash buckets, each behind
//     its own latch, so concurrent hits on different pages do not contend.
//   * Pins are per-frame atomics (a pin is taken by CAS under the bucket
//     latch; releases are latch-free). A frame with pin_count == kEvicting
//     is claimed by an evictor; the hit path retries around the claim.
//   * Replacement is exact strict LRU: each frame records the global clock
//     stamp of its last unpin, and victim selection (serialized by
//     `evict_mu_`, which also covers FlushAll and InvalidateAllClean)
//     picks the unpinned in-use frame with the smallest stamp. This is
//     bit-identical to the seed's intrusive-list LRU for single-threaded
//     runs, so all paper figures are unchanged.
//   * Demand-miss I/O runs *outside* evict_mu_ (DESIGN.md §17). A misser
//     claims the page in its bucket's in-flight table (probe-or-claim is
//     atomic under the bucket latch), holds evict_mu_ only long enough to
//     pick a victim frame, reads from disk with no pool latch held, and
//     publishes the mapping under the bucket latch (atomically retiring
//     the claim). Concurrent missers of the same page block on the claim
//     instead of issuing duplicate reads — miss coalescing: one physical
//     read serves every storm thread, and the latecomers count a
//     coalesced miss (see coalesced_misses()). A failed read wakes all
//     waiters with no mapping published; each retries from the top, so
//     exactly one of them re-issues the read and the rest coalesce on the
//     new claim, while the failing loader propagates its error.
//   * Dirty-victim write-back also runs outside evict_mu_: the kEvicting
//     claim keeps the frame invisible to other evictors and un-pinnable,
//     and the page-table mapping stays in place until after the write, so
//     a concurrent reader of the victim page spins briefly instead of
//     reading a stale image from disk. The no-steal pin means a frame
//     dirtied inside a WAL transaction is never a victim, so this moves
//     no write across a commit boundary. Consequence: holding evict_mu_
//     no longer excludes an in-flight eviction, so paths that probe the
//     table under evict_mu_ must treat a claimed frame as "retry later",
//     never spin on it (the claimant needs evict_mu_ to finish).
//   * hits()/misses() are monotonic relaxed atomics: totals are exact once
//     the pool is quiescent, but a concurrent reader may observe them
//     mid-update (approximate while workers run).
//
// Batched I/O (DESIGN.md §9): FetchPages pins a whole batch with one
// evict_mu_ pass — victims for all missing pages are selected in one LRU
// scan (oldest first, the same victims the one-at-a-time path would pick)
// — and reads the missing pages with a single vectored DiskManager::
// ReadPages issued after evict_mu_ is released (the batch's in-flight
// claims keep the unpublished frames private).
//
// Read-ahead runs through dedicated *staging frames*, never the pool
// proper: Prefetch vector-reads absent pages into staging frames (map
// entries >= capacity_ denote staged copies), evicting nothing. The first
// demand access of a staged page counts as a miss and *promotes* it —
// allocating a pool frame through the very same free-list/LRU decision the
// demand-paged run would make at that instant, then copying the staged
// bytes in place of the disk read (which already happened, and was already
// counted, at hint time). By induction the pool's frame contents, LRU
// stamps, victims, and every hit/miss/read/write count are bit-identical
// to running with prefetch off; only the *timing* of reads moves earlier,
// which is what turns random single-page reads into sequential vectored
// segments. PrefetchHint is the gated entry point consumers use: a no-op
// until SetPrefetchOptions enables it, so the default pool behaves
// bit-identically to the seed. With io_workers > 0 hints run on background
// threads and overlap with query execution (throughput mode). Hints
// publish their staged mappings *before* reading, so a demand fetch racing
// an in-flight hint waits for that one read rather than issuing its own;
// the only residual count drift is a hint racing a demand load already
// mid-read (the demand path publishes after its read, so the hint's read
// is redundant).
//
// Transactions (DESIGN.md §10): with a Wal attached, Begin/Commit/Abort
// bracket multi-page mutations. The pool runs a no-steal policy — every
// frame dirtied inside a transaction takes one extra pin until the
// transaction resolves, so uncommitted bytes never reach the volume — and
// commit is write-through (log after-images, sync, then WritePage each),
// so after every commit the volume holds exactly the committed state and
// abort is simply dropping the touched frames without write-back.
// FreePage calls inside a transaction are deferred to commit. One
// transaction runs at a time (wal_mu_, reentrant on the owner thread).
//
// Latch order: wal_mu_ -> evict_mu_ -> bucket latch -> staging_mu_. The
// hit path takes only a bucket latch; no path takes two bucket latches at
// once. Prefetch itself takes no evict_mu_ at all, so background
// read-ahead never blocks the demand path. The in-flight and staging
// condvar mutexes are leaves, locked with no pool latch held (waiting on
// either is forbidden under a bucket latch; waiting on a *hint* read under
// evict_mu_ is allowed — hints complete without evict_mu_).
#ifndef OBJREP_STORAGE_BUFFER_POOL_H_
#define OBJREP_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "storage/disk_manager.h"
#include "storage/page.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace objrep {

class BufferPool;
class Wal;

/// RAII pin on a buffered page. Move-only; unpins on destruction.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, uint32_t frame, PageId pid)
      : pool_(pool), frame_(frame), pid_(pid) {}
  ~PageGuard() { Release(); }

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept {
    if (this != &other) {
      Release();
      pool_ = other.pool_;
      frame_ = other.frame_;
      pid_ = other.pid_;
      stamp_on_release_ = other.stamp_on_release_;
      other.pool_ = nullptr;
    }
    return *this;
  }

  bool valid() const { return pool_ != nullptr; }
  PageId page_id() const { return pid_; }

  /// Makes Release() skip the LRU restamp, leaving the frame's recency
  /// exactly as it was before this pin. Read-ahead bookkeeping peeks
  /// (TryFetchResident) use this so they cannot rescue a page from an
  /// eviction the demand-paged run would have taken (DESIGN.md §9).
  void DisableStampOnRelease() { stamp_on_release_ = false; }

  Page* page();
  const Page* page() const;

  /// Marks the page dirty; it will be written back on eviction or flush.
  void MarkDirty();

  /// Explicitly unpins early.
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  uint32_t frame_ = 0;
  PageId pid_ = kInvalidPageId;
  bool stamp_on_release_ = true;
};

/// Read-ahead policy of a pool. Default-constructed == disabled, which is
/// the seed's behavior; every consumer-side hint routes through
/// PrefetchHint and therefore vanishes when disabled.
struct PrefetchOptions {
  /// Master switch for PrefetchHint.
  bool enabled = false;
  /// Cap on pages per hint (a consumer may offer more; the rest are
  /// dropped, not queued). The pool provisions 4x this many staging
  /// frames, so a few consumers' windows can be in flight at once.
  uint32_t readahead_pages = 8;
  /// Background I/O workers servicing hints. 0 == synchronous: the hint
  /// loads its pages before returning, which keeps single-threaded runs
  /// deterministic. Nonzero overlaps read-ahead with query execution.
  uint32_t io_workers = 0;
};

/// Fixed-capacity page cache with strict LRU replacement among unpinned
/// frames. All page traffic in the library flows through here. Concurrent
/// FetchPage/NewPage/guard use is safe; writers of page *content* must be
/// isolated from readers of the same relation by the exec-layer
/// LockManager (the pool latches frames, not tuples).
class BufferPool {
 public:
  BufferPool(DiskManager* disk, uint32_t capacity);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins page `pid`, reading it from disk on a miss.
  Status FetchPage(PageId pid, PageGuard* out);

  /// Pins `pid` only if it is already resident in the pool proper (staged
  /// copies do not count). Never touches the disk, does not count a hit or
  /// a miss, and the release does not restamp the LRU — read-ahead
  /// bookkeeping (e.g. the B-tree re-walking buffer-hot internal nodes to
  /// learn upcoming leaf ids) uses this to stay completely invisible to
  /// both the I/O accounting and the replacement order.
  bool TryFetchResident(PageId pid, PageGuard* out) {
    if (!TryPinResident(pid, out)) return false;
    out->DisableStampOnRelease();
    return true;
  }

  /// Pins all of `pids[0..n)` (duplicates allowed), reading the missing
  /// ones with one vectored disk read under a single evict_mu_ pass.
  /// Counts one hit/miss per element, exactly as n FetchPage calls would.
  /// On error no pins are retained. Fails with NoSpace when the misses
  /// need more frames than can be evicted (n may not exceed capacity).
  Status FetchPages(const PageId* pids, size_t n,
                    std::vector<PageGuard>* out);

  /// Vector-reads the absent pages of `pids[0..n)` into staging frames.
  /// Evicts nothing and does not touch hits()/misses(); the staged copy is
  /// promoted into a pool frame (counting the miss the demand run would
  /// take) on first demand access. Pages that cannot get a staging frame
  /// are silently skipped — prefetch is advisory.
  Status Prefetch(const PageId* pids, size_t n);

  /// Gated, capped, possibly-async Prefetch — the only entry point
  /// consumers call. No-op unless prefetch is enabled; caps at
  /// readahead_pages; with io_workers > 0 runs on a background worker.
  /// Errors are swallowed (a failed read-ahead surfaces later as an
  /// ordinary demand-fetch error).
  void PrefetchHint(const PageId* pids, size_t n);

  /// Replaces the prefetch policy and (re)provisions the staging frames,
  /// dropping any staged pages. Not thread-safe against in-flight hints:
  /// call while the pool is quiescent (between runs).
  void SetPrefetchOptions(const PrefetchOptions& options);
  const PrefetchOptions& prefetch_options() const { return prefetch_; }
  bool prefetch_enabled() const { return prefetch_.enabled; }

  /// Pages actually loaded (not already resident) by Prefetch calls.
  uint64_t prefetched_pages() const {
    return prefetched_.load(std::memory_order_relaxed);
  }

  /// Page ids currently sitting in staging frames (hinted, read, but not
  /// yet promoted by a demand access). Quiescent use only — tests and
  /// debugging; a long-lived entry here means some consumer hinted a page
  /// it never read, violating the §9 exactness invariant.
  std::vector<PageId> StagedPageIds();

  /// Allocates a new zeroed page on disk and pins it (dirty).
  Status NewPage(PageGuard* out);

  /// Discards `pid` from the pool (writing it back first if dirty — the
  /// same write eviction or FlushAll would charge) and returns it to the
  /// disk's free list. Returns false and does nothing if the page is
  /// currently pinned. Only temp relations free pages (DESIGN.md §9).
  bool FreePage(PageId pid);

  /// Writes back every dirty frame (each costs one physical write).
  /// Requires quiescence: no concurrent guard may be mutating content.
  Status FlushAll();

  /// Drops every unpinned frame without writing it back. Only used by tests.
  void InvalidateAllClean();

  /// Zeroes every pool statistic (hits, misses, prefetched, evictions,
  /// eviction writes, prefetch promoted/wasted). RunWorkload calls this at
  /// the start of every measured sequence so the counters describe the run,
  /// not whatever happened since construction (database build, warmup,
  /// earlier runs) — and so per-run deltas can never go negative.
  void ResetStats();

  /// Attaches a write-ahead log, enabling Begin/Commit/AbortTxn. Without
  /// one the three are no-ops and the pool behaves exactly as the seed.
  void AttachWal(Wal* wal) { wal_ = wal; }
  Wal* wal() const { return wal_; }

  /// Opens a transaction (blocks while another thread's is active).
  /// Reentrant on the owner thread: nested Begin/Commit pairs join the
  /// outer transaction, which alone decides the outcome.
  Status BeginTxn();
  /// Commit point + write-through apply. On any failure (injected fault,
  /// crash point) the touched frames are dropped and the volume is left
  /// on the last committed state — unless the commit record became
  /// durable first, in which case recovery will redo the transaction.
  Status CommitTxn();
  /// Drops every frame the transaction dirtied, without write-back, and
  /// forgets its deferred frees. The volume already holds the last
  /// committed image of each touched page (no-steal + write-through).
  void AbortTxn();
  /// True when the calling thread owns the active transaction.
  bool InTxn() const {
    return txn_active_.load(std::memory_order_acquire) &&
           txn_owner_.load(std::memory_order_relaxed) ==
               std::this_thread::get_id();
  }
  /// True after a durable commit whose write-through apply failed; BeginTxn
  /// refuses new transactions until recovery (DropAllFrames + WAL redo).
  bool needs_recovery() const {
    return needs_recovery_.load(std::memory_order_acquire);
  }

  /// Empties the pool without writing anything back — the simulated loss
  /// of volatile state. First step of crash recovery; requires no pinned
  /// frames and no active transaction (fatal otherwise). Returns the
  /// number of resident frames discarded.
  uint64_t DropAllFrames();

  uint32_t capacity() const { return capacity_; }
  /// Monotonic; exact when quiescent, approximate while workers run.
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  /// LRU victims reclaimed for a demand miss (free-list takes excluded).
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// Dirty reclaims that stalled on a write-back (eviction or free).
  uint64_t eviction_writes() const {
    return eviction_writes_.load(std::memory_order_relaxed);
  }
  /// Staged pages consumed by a demand access (the prefetch "hits").
  uint64_t prefetch_promoted() const {
    return prefetch_promoted_.load(std::memory_order_relaxed);
  }
  /// Staged pages dropped, freed, failed, or made redundant by a racing
  /// demand load — read-ahead work that saved nothing.
  uint64_t prefetch_wasted() const {
    return prefetch_wasted_.load(std::memory_order_relaxed);
  }
  /// Misses whose physical read was performed by another thread: the
  /// misser lost the race to a concurrent loader of the same page (or to
  /// a duplicate id earlier in its own FetchPages batch) and pinned that
  /// loader's frame instead of touching the disk. Fault-free invariant
  /// (see DESIGN.md §17):
  ///   misses == demand reads + prefetch_promoted + coalesced_misses
  /// where demand reads == disk reads - prefetched_pages.
  uint64_t coalesced_misses() const {
    return coalesced_misses_.load(std::memory_order_relaxed);
  }
  /// Times a misser blocked on another thread's in-flight read (a subset
  /// of the coalesced misses: a lost race detected before the read landed
  /// rather than after).
  uint64_t inflight_waits() const {
    return inflight_waits_.load(std::memory_order_relaxed);
  }
  /// Times WaitStagingReady exhausted its bounded spin and slept on the
  /// staging frame's condvar (a hint read stalled or slow).
  uint64_t staging_cv_waits() const {
    return staging_cv_waits_.load(std::memory_order_relaxed);
  }
  /// Benchmark/test knob reproducing the pre-§17 serialized miss path:
  /// demand-miss reads and dirty-victim write-backs run while holding
  /// evict_mu_, so every miss in the process queues behind one mutex.
  /// bench/read_concurrency uses this as its A/B baseline; real consumers
  /// never touch it.
  void SetSerializeMissIo(bool on) {
    serialize_miss_io_.store(on, std::memory_order_relaxed);
  }
  DiskManager* disk() const { return disk_; }

 private:
  friend class PageGuard;

  static constexpr uint32_t kNumShards = 16;
  /// pin_count value marking a frame claimed by an evictor.
  static constexpr int kEvicting = -1;

  struct Frame {
    Page page;
    PageId pid = kInvalidPageId;
    std::atomic<int> pin_count{0};
    std::atomic<bool> dirty{false};
    /// IoTag of the thread that last dirtied the page. Deferred write-backs
    /// (eviction, free, flush) re-enter this tag around their WritePage, so
    /// the physical write is attributed to the component that *produced*
    /// the bytes, not whichever query happened to trigger the eviction
    /// (last writer wins on multiply-dirtied pages). Relaxed atomic: set
    /// under a pin, read under evict_mu_ with pin_count == 0.
    std::atomic<IoTag> dirty_tag{IoTag::kNone};
    bool in_use = false;  // guarded by evict_mu_
    /// Global clock stamp of the last unpin; eviction takes the minimum
    /// over unpinned frames — exactly the old intrusive-list LRU order.
    std::atomic<uint64_t> last_unpin{0};
  };

  /// A read-ahead buffer outside the pool. Liveness is defined by the page
  /// table: a staged copy is mapped as capacity_ + index. Staged pages are
  /// never pinned, never dirty, and never eviction candidates.
  ///
  /// Hints publish the mapping *before* the disk read (`ready` false until
  /// the bytes land), so a concurrent demand fetch of an in-flight page
  /// waits for the one read already underway instead of issuing its own —
  /// the promotion then still counts the same single read the demand run
  /// would have. `pid` is rechecked after the ready wait: a mismatch means
  /// the hint failed or the frame was recycled, and the waiter falls back
  /// to a plain demand read.
  struct StagingFrame {
    Page page;
    PageId pid = kInvalidPageId;
    std::atomic<bool> ready{false};
    /// Backs WaitStagingReady's slow path: `ready` transitions to true
    /// under `mu` with a notify, so a waiter that exhausted its bounded
    /// spin sleeps instead of burning a core on yield() (the seed's spin
    /// was unbounded — a fault-stalled hint read pinned a CPU forever).
    std::mutex mu;
    std::condition_variable cv;
  };

  /// Staging frames provisioned per readahead_pages (see PrefetchOptions).
  static constexpr uint32_t kStagingPerWindow = 4;

  /// One demand-miss read in flight (DESIGN.md §17). The loader creates
  /// the entry under its bucket latch, performs the read with no pool
  /// latch held, and resolves the entry when the frame is published (or
  /// the read failed). Concurrent missers of the same page sleep on `cv`
  /// instead of issuing duplicate reads.
  struct InflightRead {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;  // guarded by mu
  };

  struct Shard {
    std::mutex mu;
    std::unordered_map<PageId, uint32_t> map;  // >= capacity_: staged
    /// Demand-miss reads in flight, keyed by page id. An entry exists
    /// from claim to publication; sharing `mu` with the page table makes
    /// probe-or-claim atomic, so at most one loader per page exists and a
    /// waiter that finds neither a mapping nor a claim is guaranteed the
    /// read is not underway.
    std::unordered_map<PageId, std::shared_ptr<InflightRead>> inflight;
  };

  Shard& ShardFor(PageId pid) {
    // Pages ids are sequential; spread neighbors across shards.
    return shards_[(pid * 0x9e3779b1u >> 16) & (kNumShards - 1)];
  }

  void Unpin(uint32_t frame, bool restamp = true);
  /// PageGuard::MarkDirty lands here: sets the dirty flag and, when the
  /// calling thread owns the active transaction, captures the frame into
  /// it (NoteTxnWrite). Non-owner threads (concurrent temp writers) are
  /// deliberately not captured — their pages are not transactional.
  void MarkFrameDirty(uint32_t frame) {
    frames_[frame].dirty.store(true, std::memory_order_relaxed);
    frames_[frame].dirty_tag.store(CurrentIoTag(), std::memory_order_relaxed);
    if (txn_active_.load(std::memory_order_acquire) &&
        txn_owner_.load(std::memory_order_relaxed) ==
            std::this_thread::get_id()) {
      NoteTxnWrite(frame);
    }
  }
  /// Owner thread only. Takes the no-steal extra pin on first capture.
  void NoteTxnWrite(uint32_t frame);
  /// Releases the transaction's frames without write-back (abort, or
  /// commit that failed before the commit point). Takes evict_mu_.
  void DropTxnFrames();
  /// Clears transaction state and releases wal_mu_.
  void EndTxnState();
  /// The full commit protocol; called with wal_mu_ held, depth at 0.
  Status DoCommit();
  /// FreePage without transactional deferral (also the commit-apply path).
  bool DoFreePage(PageId pid);
  /// Under evict_mu_: returns staging frames retired by failed hint reads
  /// to the free list. Safe only under evict_mu_ — every staged-frame
  /// consumer inspects frames inside an evict_mu_ section, so a recycle
  /// at the top of a later section can never interleave with one.
  void RecycleRetiredStagingLocked();
  /// Hit path of FetchPage without the miss fallback: pins `pid` if it is
  /// mapped (retrying around in-flight evictions). Returns false on miss.
  bool TryPinResident(PageId pid, PageGuard* out);
  /// The demand-miss path (DESIGN.md §17); the miss is already counted.
  /// Loops: pin if resident (a coalesced miss), wait if another loader's
  /// claim is in flight, else claim the page, load it with the disk read
  /// outside every pool latch, and publish.
  Status LoadPageMiss(PageId pid, PageGuard* out);
  /// Loads `pid` while owning its in-flight claim: promotes a staged copy
  /// if one exists, else allocates a victim under evict_mu_ and reads the
  /// page with the latch released. Publishes the mapping on success; the
  /// caller retires the claim afterwards.
  Status LoadClaimedPage(PageId pid, PageGuard* out);
  /// Removes `pid`'s in-flight claim if it is `entry` (the caller's own).
  void EraseInflight(PageId pid, const std::shared_ptr<InflightRead>& entry);
  /// Marks `entry` resolved and wakes every waiter. Call *after* the
  /// mapping is published (success) or the claim erased (failure).
  static void FinishInflight(const std::shared_ptr<InflightRead>& entry);
  /// Takes a free frame or evicts the strict-LRU victim. `lk` holds
  /// evict_mu_ on entry and exit but may be released around a dirty
  /// victim's write-back (see ReclaimFrame).
  Status AllocateFrame(std::unique_lock<std::mutex>& lk, uint32_t* frame_out);
  /// Takes/evicts `k` frames at once — free frames first, then the k
  /// oldest unpinned victims scanned oldest-first (the same victims, same
  /// write-back order, as k AllocateFrame calls). A dirty reclaim drops
  /// evict_mu_ around the device write, after which the LRU scan is redone
  /// (stamps are stable single-threaded, so the victim sequence is
  /// bit-identical to the fully-latched path; under concurrency a fresh
  /// scan never acts on stale candidates). On failure nothing is
  /// allocated.
  Status AllocateFrames(std::unique_lock<std::mutex>& lk, size_t k,
                        std::vector<uint32_t>* frames_out);
  /// Claims + unmaps one evictable frame, writing it back if dirty. `lk`
  /// holds evict_mu_ on entry and exit; a dirty write-back releases it
  /// around the device write — the kEvicting claim keeps the frame
  /// invisible to other evictors, and the still-present mapping keeps
  /// readers of the victim page off the disk until the write lands.
  Status ReclaimFrame(std::unique_lock<std::mutex>& lk, uint32_t frame);
  /// NewPage's pin path: allocates a frame for freshly-allocated page
  /// `pid` (no disk read — the page is zeroed in place).
  Status PinNewFrame(PageId pid, PageGuard* out);
  /// Under evict_mu_: resets a frame that was allocated but whose disk
  /// read failed, returning it to the free list.
  void AbandonFrameLocked(uint32_t frame);
  /// Moves staged page `pid` (staging index `st_idx`) into a pool frame —
  /// allocating the victim now, exactly as the demand miss would — and
  /// returns the pinned guard. `lk` holds evict_mu_ (released transiently
  /// by AllocateFrame). Waits for an in-flight hint read to land first;
  /// if the staged copy turns out stale (failed or recycled hint), sets
  /// *stale and allocates nothing. Caller must own `pid`'s in-flight
  /// claim, which is what makes the staged frame stable across the waits.
  Status PromoteStaged(std::unique_lock<std::mutex>& lk, uint32_t st_idx,
                       PageId pid, bool* stale, PageGuard* out);
  /// Blocks until staging frame `st_idx` finishes its in-flight read:
  /// bounded spin first (hint reads are usually microseconds away), then
  /// a condvar sleep — a stalled read never burns a core. Never called
  /// while holding a bucket latch — the hint thread needs bucket latches
  /// to make progress.
  void WaitStagingReady(uint32_t st_idx);
  /// Publishes `ready` on staging frame `st_idx` and wakes its waiters.
  void MarkStagingReady(uint32_t st_idx);
  /// Returns a staging frame to the free list.
  void ReleaseStagingFrame(uint32_t st_idx);
  /// Drops every staged mapping (requires quiescence: no in-flight hints).
  void DropStagedPages();

  DiskManager* disk_;
  uint32_t capacity_;
  std::vector<Frame> frames_;

  std::mutex evict_mu_;                // victim selection, flush, recovery
  std::vector<uint32_t> free_frames_;  // guarded by evict_mu_
  Shard shards_[kNumShards];

  std::atomic<uint64_t> clock_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> prefetched_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> eviction_writes_{0};
  std::atomic<uint64_t> prefetch_promoted_{0};
  std::atomic<uint64_t> prefetch_wasted_{0};
  std::atomic<uint64_t> coalesced_misses_{0};
  std::atomic<uint64_t> inflight_waits_{0};
  std::atomic<uint64_t> staging_cv_waits_{0};
  /// See SetSerializeMissIo.
  std::atomic<bool> serialize_miss_io_{false};

  PrefetchOptions prefetch_;  // written only by SetPrefetchOptions
  uint32_t staging_count_ = 0;
  std::unique_ptr<StagingFrame[]> staging_;
  std::mutex staging_mu_;               // guards free_staging_/retired_
  std::vector<uint32_t> free_staging_;  // claimable staging frames
  /// Staging frames whose hint read failed; recycled under evict_mu_.
  std::vector<uint32_t> retired_staging_;
  std::atomic<uint32_t> retired_count_{0};

  // Transaction state. wal_mu_ is held from BeginTxn to Commit/AbortTxn;
  // the vectors and txn_id_/txn_depth_/txn_failed_ are touched only by
  // the owner thread while it holds wal_mu_.
  Wal* wal_ = nullptr;
  std::mutex wal_mu_;
  std::atomic<bool> txn_active_{false};
  std::atomic<std::thread::id> txn_owner_{};
  int txn_depth_ = 0;
  bool txn_failed_ = false;
  uint64_t txn_id_ = 0;
  std::vector<uint32_t> txn_frames_;  // captured frames, one extra pin each
  std::vector<PageId> txn_frees_;     // deferred FreePage calls
  /// Set when a durable commit's write-through apply failed: redo recovery
  /// must run before the next transaction, or its redo could roll back
  /// pages a later commit also touched. Cleared by DropAllFrames.
  std::atomic<bool> needs_recovery_{false};
  // Declared last: destroyed (joined) first, so no worker touches a frame
  // after the pool starts tearing down.
  std::unique_ptr<ThreadPool> prefetch_workers_;
};

inline Page* PageGuard::page() { return &pool_->frames_[frame_].page; }
inline const Page* PageGuard::page() const {
  return &pool_->frames_[frame_].page;
}
inline void PageGuard::MarkDirty() { pool_->MarkFrameDirty(frame_); }
inline void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_, stamp_on_release_);
    pool_ = nullptr;
    stamp_on_release_ = true;
  }
}

}  // namespace objrep

#endif  // OBJREP_STORAGE_BUFFER_POOL_H_
