// LRU buffer pool, safe for concurrent use by the execution engine.
//
// The paper fixes a main-memory buffer of 100 INGRES data pages for every
// experiment; the buffer pool is therefore a first-class part of the cost
// model — B-tree roots and hot leaves hit in memory, cold leaves cost one
// physical read, and dirty pages cost one physical write when evicted (or
// at end-of-run flush).
//
// Concurrency design (DESIGN.md §8):
//   * The page table is sharded into kNumShards hash buckets, each behind
//     its own latch, so concurrent hits on different pages do not contend.
//   * Pins are per-frame atomics (a pin is taken by CAS under the bucket
//     latch; releases are latch-free). A frame with pin_count == kEvicting
//     is claimed by an evictor and behaves as absent.
//   * Replacement is exact strict LRU: each frame records the global clock
//     stamp of its last unpin, and eviction (serialized by `evict_mu_`,
//     which also covers the miss path, FlushAll, and InvalidateAllClean)
//     picks the unpinned in-use frame with the smallest stamp. This is
//     bit-identical to the seed's intrusive-list LRU for single-threaded
//     runs, so all paper figures are unchanged.
//   * hits()/misses() are monotonic relaxed atomics: totals are exact once
//     the pool is quiescent, but a concurrent reader may observe them
//     mid-update (approximate while workers run).
//
// Latch order: evict_mu_ -> bucket latch. The hit path takes only a bucket
// latch; no path takes two bucket latches at once.
#ifndef OBJREP_STORAGE_BUFFER_POOL_H_
#define OBJREP_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "storage/disk_manager.h"
#include "storage/page.h"
#include "util/status.h"

namespace objrep {

class BufferPool;

/// RAII pin on a buffered page. Move-only; unpins on destruction.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, uint32_t frame, PageId pid)
      : pool_(pool), frame_(frame), pid_(pid) {}
  ~PageGuard() { Release(); }

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept {
    if (this != &other) {
      Release();
      pool_ = other.pool_;
      frame_ = other.frame_;
      pid_ = other.pid_;
      other.pool_ = nullptr;
    }
    return *this;
  }

  bool valid() const { return pool_ != nullptr; }
  PageId page_id() const { return pid_; }

  Page* page();
  const Page* page() const;

  /// Marks the page dirty; it will be written back on eviction or flush.
  void MarkDirty();

  /// Explicitly unpins early.
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  uint32_t frame_ = 0;
  PageId pid_ = kInvalidPageId;
};

/// Fixed-capacity page cache with strict LRU replacement among unpinned
/// frames. All page traffic in the library flows through here. Concurrent
/// FetchPage/NewPage/guard use is safe; writers of page *content* must be
/// isolated from readers of the same relation by the exec-layer
/// LockManager (the pool latches frames, not tuples).
class BufferPool {
 public:
  BufferPool(DiskManager* disk, uint32_t capacity);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins page `pid`, reading it from disk on a miss.
  Status FetchPage(PageId pid, PageGuard* out);

  /// Allocates a new zeroed page on disk and pins it (dirty).
  Status NewPage(PageGuard* out);

  /// Writes back every dirty frame (each costs one physical write).
  /// Requires quiescence: no concurrent guard may be mutating content.
  Status FlushAll();

  /// Drops every unpinned frame without writing it back. Only used by tests.
  void InvalidateAllClean();

  /// Zeroes hits()/misses(). RunWorkload calls this at the start of every
  /// measured sequence so the counters describe the run, not whatever
  /// happened since construction (database build, warmup, earlier runs).
  void ResetStats();

  uint32_t capacity() const { return capacity_; }
  /// Monotonic; exact when quiescent, approximate while workers run.
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  DiskManager* disk() const { return disk_; }

 private:
  friend class PageGuard;

  static constexpr uint32_t kNumShards = 16;
  /// pin_count value marking a frame claimed by an evictor.
  static constexpr int kEvicting = -1;

  struct Frame {
    Page page;
    PageId pid = kInvalidPageId;
    std::atomic<int> pin_count{0};
    std::atomic<bool> dirty{false};
    bool in_use = false;  // guarded by evict_mu_
    /// Global clock stamp of the last unpin; eviction takes the minimum
    /// over unpinned frames — exactly the old intrusive-list LRU order.
    std::atomic<uint64_t> last_unpin{0};
  };

  struct Shard {
    std::mutex mu;
    std::unordered_map<PageId, uint32_t> map;
  };

  Shard& ShardFor(PageId pid) {
    // Pages ids are sequential; spread neighbors across shards.
    return shards_[(pid * 0x9e3779b1u >> 16) & (kNumShards - 1)];
  }

  void Unpin(uint32_t frame);
  /// Under evict_mu_: takes a free frame or evicts the strict-LRU victim.
  Status AllocateFrameLocked(uint32_t* frame_out);
  /// Under evict_mu_: claims + unmaps one evictable frame, writing it back
  /// if dirty. Used by AllocateFrameLocked and InvalidateAllClean.
  Status ReclaimFrameLocked(uint32_t frame);
  Status PinFrameFor(PageId pid, bool load_from_disk, PageGuard* out);

  DiskManager* disk_;
  uint32_t capacity_;
  std::vector<Frame> frames_;

  std::mutex evict_mu_;                // miss path, eviction, flush
  std::vector<uint32_t> free_frames_;  // guarded by evict_mu_
  Shard shards_[kNumShards];

  std::atomic<uint64_t> clock_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

inline Page* PageGuard::page() { return &pool_->frames_[frame_].page; }
inline const Page* PageGuard::page() const {
  return &pool_->frames_[frame_].page;
}
inline void PageGuard::MarkDirty() {
  pool_->frames_[frame_].dirty.store(true, std::memory_order_relaxed);
}
inline void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
  }
}

}  // namespace objrep

#endif  // OBJREP_STORAGE_BUFFER_POOL_H_
