// LRU buffer pool.
//
// The paper fixes a main-memory buffer of 100 INGRES data pages for every
// experiment; the buffer pool is therefore a first-class part of the cost
// model — B-tree roots and hot leaves hit in memory, cold leaves cost one
// physical read, and dirty pages cost one physical write when evicted (or
// at end-of-run flush).
#ifndef OBJREP_STORAGE_BUFFER_POOL_H_
#define OBJREP_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "storage/disk_manager.h"
#include "storage/page.h"
#include "util/status.h"

namespace objrep {

class BufferPool;

/// RAII pin on a buffered page. Move-only; unpins on destruction.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, uint32_t frame, PageId pid)
      : pool_(pool), frame_(frame), pid_(pid) {}
  ~PageGuard() { Release(); }

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept {
    if (this != &other) {
      Release();
      pool_ = other.pool_;
      frame_ = other.frame_;
      pid_ = other.pid_;
      other.pool_ = nullptr;
    }
    return *this;
  }

  bool valid() const { return pool_ != nullptr; }
  PageId page_id() const { return pid_; }

  Page* page();
  const Page* page() const;

  /// Marks the page dirty; it will be written back on eviction or flush.
  void MarkDirty();

  /// Explicitly unpins early.
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  uint32_t frame_ = 0;
  PageId pid_ = kInvalidPageId;
};

/// Fixed-capacity page cache with strict LRU replacement among unpinned
/// frames. All page traffic in the library flows through here.
class BufferPool {
 public:
  BufferPool(DiskManager* disk, uint32_t capacity);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins page `pid`, reading it from disk on a miss.
  Status FetchPage(PageId pid, PageGuard* out);

  /// Allocates a new zeroed page on disk and pins it (dirty).
  Status NewPage(PageGuard* out);

  /// Writes back every dirty frame (each costs one physical write).
  Status FlushAll();

  /// Drops every unpinned frame without writing it back. Only used by tests.
  void InvalidateAllClean();

  uint32_t capacity() const { return capacity_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  DiskManager* disk() const { return disk_; }

 private:
  friend class PageGuard;

  struct Frame {
    Page page;
    PageId pid = kInvalidPageId;
    int pin_count = 0;
    bool dirty = false;
    bool in_use = false;
    // Intrusive LRU list links (indices into frames_, UINT32_MAX = none).
    uint32_t lru_prev = UINT32_MAX;
    uint32_t lru_next = UINT32_MAX;
    bool in_lru = false;
  };

  void Unpin(uint32_t frame);
  void LruPushBack(uint32_t frame);
  void LruRemove(uint32_t frame);
  /// Frees an unpinned frame for reuse; writes it back if dirty.
  Status Evict(uint32_t* frame_out);
  Status PinFrameFor(PageId pid, bool load_from_disk, uint32_t* frame_out);

  DiskManager* disk_;
  uint32_t capacity_;
  std::vector<Frame> frames_;
  std::vector<uint32_t> free_frames_;
  std::unordered_map<PageId, uint32_t> table_;
  uint32_t lru_head_ = UINT32_MAX;
  uint32_t lru_tail_ = UINT32_MAX;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

inline Page* PageGuard::page() { return &pool_->frames_[frame_].page; }
inline const Page* PageGuard::page() const {
  return &pool_->frames_[frame_].page;
}
inline void PageGuard::MarkDirty() { pool_->frames_[frame_].dirty = true; }
inline void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
  }
}

}  // namespace objrep

#endif  // OBJREP_STORAGE_BUFFER_POOL_H_
