// Fixed-size page abstraction.
//
// The paper's substrate is commercial INGRES with 2 KB data pages; every
// cost in the study is a count of page reads/writes. We keep the page a
// dumb byte container — structure (slots, B-tree nodes, hash buckets) is
// imposed by the access methods.
#ifndef OBJREP_STORAGE_PAGE_H_
#define OBJREP_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>

namespace objrep {

/// INGRES-era data page size (bytes). See DESIGN.md §6.
inline constexpr uint32_t kPageSize = 2048;

using PageId = uint32_t;

/// Sentinel for "no page".
inline constexpr PageId kInvalidPageId = 0xffffffffu;

/// A raw page of kPageSize bytes.
struct Page {
  char data[kPageSize];

  void Zero() { std::memset(data, 0, kPageSize); }

  template <typename T>
  T* As(uint32_t offset = 0) {
    return reinterpret_cast<T*>(data + offset);
  }
  template <typename T>
  const T* As(uint32_t offset = 0) const {
    return reinterpret_cast<const T*>(data + offset);
  }
};

static_assert(sizeof(Page) == kPageSize, "Page must be exactly kPageSize");

}  // namespace objrep

#endif  // OBJREP_STORAGE_PAGE_H_
